// Serving a materialized view to concurrent clients: one ViewServer
// owns the database and a maintenance thread; producers push write ops
// through the backpressured ingest queue while readers pick their
// consistency point on the staleness/latency spectrum --
//
//   ReadStale: returns the last published epoch immediately
//              (with per-table watermarks so the client knows HOW
//              stale);
//   ReadFresh: triggers the paper's on-demand refresh (residue <= C),
//              and concurrent callers coalesce onto ONE flush.
//
// Build & run:  ./build/examples/serve_demo

#include <atomic>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/online.h"
#include "cost/cost_function.h"
#include "serve/view_server.h"
#include "tpc/tpc_gen.h"
#include "tpc/views.h"

using namespace abivm;  // examples only

// A self-contained write op: picks a live PARTSUPP row (at apply time,
// on the maintenance thread) and rewrites its supplycost.
serve::WriteOp SupplycostUpdate(uint64_t seed) {
  return [seed](Database& db) -> Status {
    Rng rng(seed);
    Table& partsupp = db.table(kPartSupp);
    const RowId id = partsupp.SampleLiveRow(rng);
    Row row = partsupp.RowAt(id).row;
    row[partsupp.schema().ColumnIndex("ps_supplycost")] =
        Value(rng.UniformDouble(1.0, 1000.0));
    auto applied = db.TryApplyUpdate(partsupp, id, std::move(row));
    return applied.ok() ? Status::Ok() : applied.status();
  };
}

int main() {
  auto db = std::make_unique<Database>();
  TpcGenOptions gen;
  gen.scale_factor = 0.002;
  GenerateTpcDatabase(db.get(), gen);
  CreatePaperIndexes(db.get());

  serve::ServeOptions options;
  options.budget_c = 1.0;
  options.ingest_high_watermark = 256;
  serve::ViewServer server(std::move(db), options);

  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.002, 0.01),
      std::make_shared<LinearCost>(0.01, 0.40),
      std::make_shared<LinearCost>(1e-6, 0.0),
      std::make_shared<LinearCost>(1e-6, 0.0)};
  const size_t view = server.AddView(MakePaperMinView(),
                                     std::make_unique<OnlinePolicy>(),
                                     CostModel(std::move(fns)));
  server.Start();

  // A producer streams updates while three clients read fresh
  // concurrently -- watch serve.flushes stay well below
  // serve.fresh_served: that gap is the coalescing.
  std::thread producer([&server] {
    for (uint64_t i = 0; i < 200; ++i) {
      if (!server.Ingest(SupplycostUpdate(i)).ok()) break;
    }
  });
  std::atomic<uint64_t> fresh_reads{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&server, &fresh_reads, view] {
      for (int i = 0; i < 25; ++i) {
        auto fresh = server.ReadFresh(view);
        if (fresh.ok()) fresh_reads.fetch_add(1);
      }
    });
  }
  producer.join();
  for (std::thread& t : clients) t.join();

  // A stale read is one shared_ptr copy; its snapshot says how far
  // behind each base table it is.
  serve::SnapshotPtr stale = server.ReadStale(view);
  std::cout << "stale epoch " << stale->epoch << ", positions consumed:";
  for (size_t pos : stale->positions) std::cout << " " << pos;
  std::cout << "\n";

  auto fresh = server.ReadFresh(view);
  std::cout << "fresh epoch " << fresh.value()->epoch << " ("
            << fresh.value()->state.NumKeys() << " groups)\n";

  server.Stop();
  auto& m = server.metrics();
  std::cout << fresh_reads.load() << " fresh reads served by "
            << m.counter("serve.flushes").value() << " flushes ("
            << m.counter("serve.publishes").value() << " publishes, "
            << m.counter("serve.ingest_ops").value() << " ops ingested)\n";
  return 0;
}
