// Data-warehouse scenario: a sales summary view (SUM of order totals per
// market segment) maintained under deferred/batch maintenance while order
// streams arrive in bursts (business hours) separated by quiet periods.
// Compares the symmetric NAIVE strategy against ONLINE and a precomputed
// optimal LGM plan on the same workload.
//
// Build & run:  ./build/examples/warehouse_refresh

#include <iostream>
#include <memory>

#include "core/astar.h"
#include "core/naive.h"
#include "core/online.h"
#include "core/plan_policies.h"
#include "sim/engine_runner.h"
#include "sim/report.h"
#include "tpc/arrivals_gen.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

using namespace abivm;  // examples only

namespace {

struct Warehouse {
  std::unique_ptr<Database> db = std::make_unique<Database>();
  std::unique_ptr<ViewMaintainer> view;
  std::unique_ptr<TpcUpdater> updater;

  Warehouse() {
    TpcGenOptions gen;
    gen.scale_factor = 0.002;
    gen.include_sales_pipeline = true;
    GenerateTpcDatabase(db.get(), gen);
    db->table(kCustomer).CreateHashIndex("c_custkey");
    view = std::make_unique<ViewMaintainer>(db.get(),
                                            MakeSalesBySegmentView());
    updater = std::make_unique<TpcUpdater>(db.get(), 7);
  }

  ModificationDriver Driver() {
    return [this](size_t table_index) {
      if (table_index == 0) {
        updater->InsertOrder();  // orders is the view's table 0
      } else {
        updater->UpdateCustomerSegment();
      }
    };
  }
};

}  // namespace

int main() {
  // Bursty arrivals: 8 steps of load (5 orders + 1 customer change per
  // step), then 16 quiet steps; one business week of 480 steps.
  const TimeStep horizon = 479;
  ArrivalSequence orders_bursts =
      MakeBurstyArrivals(1, horizon, /*on=*/8, /*off=*/16, /*rate_on=*/5);
  std::vector<StateVec> steps;
  for (TimeStep t = 0; t <= horizon; ++t) {
    const Count orders = orders_bursts.At(t)[0];
    steps.push_back({orders, orders > 0 ? Count{1} : Count{0}});
  }
  const ArrivalSequence arrivals{std::move(steps)};

  // Cost model: order deltas probe the customer index (per-item);
  // customer deltas scan orders (setup-heavy, batchable).
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.05, 0.05),
      std::make_shared<LinearCost>(0.02, 3.0)};
  const CostModel model(std::move(fns));
  const double budget_c = 6.0;
  const ProblemInstance instance{model, arrivals, budget_c};

  ReportTable table({"strategy", "modelled_cost", "engine_ms", "actions",
                     "violations"});
  auto run = [&](Policy& policy, const std::string& name) {
    Warehouse warehouse;
    const ModificationDriver driver = warehouse.Driver();
    const EngineTrace trace = RunOnEngine(*warehouse.view, arrivals, model,
                                          budget_c, policy, driver);
    table.AddRow({name, ReportTable::Num(trace.total_model_cost, 2),
                  ReportTable::Num(trace.total_actual_ms, 2),
                  std::to_string(trace.action_count),
                  std::to_string(trace.violations)});
    // Show the final content once (identical across strategies).
    if (name == "NAIVE") {
      std::cout << "final view content (SUM(o_totalprice) by segment):\n";
      for (const auto& [key, group] : warehouse.view->state().Snapshot()) {
        std::cout << "  " << key[0].AsString() << ": "
                  << ReportTable::Num(group.sum, 0) << " (" << group.count
                  << " orders)\n";
      }
      std::cout << "\n";
    }
  };

  {
    NaivePolicy naive;
    run(naive, "NAIVE");
  }
  {
    OnlinePolicy online;
    run(online, "ONLINE");
  }
  {
    const PlanSearchResult optimal = FindOptimalLgmPlan(instance);
    PrecomputedPlanPolicy policy(optimal.plan, "OPT_LGM");
    run(policy, "OPT_LGM");
  }
  table.PrintAligned(std::cout);
  std::cout << "\nAll strategies refresh the same view and respect the "
               "response-time budget C = "
            << budget_c
            << "; the asymmetric ones batch the scan-heavy customer "
               "deltas across bursts and pay less.\n";
  return 0;
}
