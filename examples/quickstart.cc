// Quickstart: define a materialized view over two tables, stream
// modifications into the base tables, and let the ONLINE scheduler decide
// when to process which delta table so the view can always be refreshed
// within a response-time budget.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/online.h"
#include "ivm/explain.h"
#include "ivm/maintainer.h"
#include "sim/engine_runner.h"
#include "storage/database.h"

using namespace abivm;  // examples only; library code never does this

int main() {
  // ------------------------------------------------------------------
  // 1. Create base tables: products and their daily prices.
  Database db;
  Table& products = db.CreateTable(
      "products", Schema({{"product_id", ValueType::kInt64},
                          {"category", ValueType::kString}}));
  Table& prices = db.CreateTable(
      "prices", Schema({{"product_id", ValueType::kInt64},
                        {"price", ValueType::kDouble}}));
  for (int64_t p = 0; p < 100; ++p) {
    db.BulkLoad(products,
                {Value(p), Value(p % 2 == 0 ? "gadgets" : "widgets")});
    db.BulkLoad(prices, {Value(p), Value(10.0 + static_cast<double>(p))});
  }
  // An index on the products join key: price deltas will probe it
  // (cheap), while product deltas must scan the prices table (expensive
  // but batchable) -- the cost asymmetry this library exploits.
  products.CreateHashIndex("product_id");

  // ------------------------------------------------------------------
  // 2. Define the view: MIN(price) per category.
  ViewDef def;
  def.name = "min_price_by_category";
  def.tables = {"prices", "products"};
  def.joins = {{{"products", "product_id"}, {"prices", "product_id"}}};
  def.group_by = {{"products", "category"}};
  def.aggregate = AggregateDef{AggKind::kMin, {"prices", "price"}};

  ViewMaintainer maintainer(&db, def);
  std::cout << "maintenance pipelines (EXPLAIN):\n"
            << ExplainView(maintainer.binding()) << "\n";
  std::cout << "initial MIN(price) for gadgets: "
            << maintainer.state().GroupMin({Value("gadgets")})->ToString()
            << "\n";

  // ------------------------------------------------------------------
  // 3. Declare the maintenance cost model (normally measured; see the
  //    cost_calibration example) and a response-time budget C.
  std::vector<CostFunctionPtr> costs = {
      std::make_shared<LinearCost>(0.2, 0.1),   // price deltas: per-item
      std::make_shared<LinearCost>(0.05, 5.0)};  // product deltas: setup
  const CostModel model(std::move(costs));
  const double budget_c = 9.0;  // refresh must always fit in 9 cost units

  // ------------------------------------------------------------------
  // 4. Stream modifications and let the ONLINE policy schedule
  //    maintenance; every step the view stays refreshable within C.
  Rng rng(1);
  ModificationDriver driver = [&](size_t table_index) {
    if (table_index == 0) {  // a price change
      const RowId id = prices.SampleLiveRow(rng);
      Row row = prices.RowAt(id).row;
      row[1] = Value(rng.UniformDouble(5.0, 120.0));
      db.ApplyUpdate(prices, id, std::move(row));
    } else {  // a product recategorization
      const RowId id = products.SampleLiveRow(rng);
      Row row = products.RowAt(id).row;
      row[1] = Value(rng.Bernoulli(0.5) ? "gadgets" : "widgets");
      db.ApplyUpdate(products, id, std::move(row));
    }
  };

  OnlinePolicy policy;
  const ArrivalSequence arrivals = ArrivalSequence::Uniform({2, 1}, 199);
  const EngineTrace trace = RunOnEngine(maintainer, arrivals, model,
                                        budget_c, policy, driver);

  std::cout << "processed " << arrivals.Total(0) << " price + "
            << arrivals.Total(1) << " product modifications in "
            << trace.action_count << " maintenance actions\n";
  std::cout << "modelled maintenance cost: " << trace.total_model_cost
            << " units (budget per refresh: " << budget_c << ")\n";
  std::cout << "constraint violations: " << trace.violations << "\n";
  std::cout << "final MIN(price) for gadgets: "
            << maintainer.state().GroupMin({Value("gadgets")})->ToString()
            << "\n";
  std::cout << "view consistent with base tables: "
            << (maintainer.IsConsistent() ? "yes" : "no") << "\n";
  return 0;
}
