// The paper's motivating application: a publish/subscribe system whose
// subscription content query is a materialized view. The subscriber is
// notified whenever its notification condition fires, and the system
// guarantees that bringing the content up to date at that moment never
// exceeds a processing-delay budget C.
//
// Subscription: "tell me the cheapest Middle-East supply cost" -- exactly
// the paper's TPC-R evaluation view. Base data changes continuously
// (supplycost updates, supplier relocations); notifications fire when the
// minimum has drifted by more than 5% since the last report (the paper's
// "oil price changed by more than 10%" pattern).
//
// Build & run:  ./build/examples/pubsub_notifications

#include <cmath>
#include <iostream>

#include "common/stopwatch.h"
#include "core/online.h"
#include "sim/report.h"
#include "tpc/tpc_gen.h"
#include "ivm/maintainer.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

using namespace abivm;  // examples only

int main() {
  // TPC-R database with the paper's index layout.
  Database db;
  TpcGenOptions gen;
  gen.scale_factor = 0.01;  // 100 suppliers / 8000 partsupp rows
  GenerateTpcDatabase(&db, gen);
  CreatePaperIndexes(&db);

  ViewMaintainer subscription(&db, MakePaperMinView());
  TpcUpdater updater(&db, 2026);

  // Cost model for the two modified tables (values in milliseconds,
  // shaped like the calibrated curves; see bench/fig04).
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.002, 0.01),  // partsupp deltas
      std::make_shared<LinearCost>(0.01, 0.40),   // supplier deltas
      std::make_shared<LinearCost>(1e-6, 0.0),    // nation (static)
      std::make_shared<LinearCost>(1e-6, 0.0)};   // region (static)
  const CostModel model(std::move(fns));
  const double budget_c = 1.0;  // notification delay guarantee: 1 ms

  OnlinePolicy policy;
  policy.Reset(model, budget_c);

  double last_reported = subscription.state().ScalarMin().has_value()
                             ? subscription.state().ScalarMin()->AsDouble()
                             : 0.0;
  std::cout << "subscribed: MIN(ps_supplycost) in MIDDLE EAST = "
            << last_reported << "\n\n";

  ReportTable log({"t", "event", "min_supplycost", "refresh_ms",
                   "within_guarantee"});
  int notifications = 0;
  uint64_t violations = 0;
  for (TimeStep t = 0; t < 2000; ++t) {
    // Continuous base-data churn: 3 supplycost updates + 1 relocation
    // per step.
    for (int i = 0; i < 3; ++i) updater.UpdatePartSuppSupplycost();
    updater.UpdateSupplierNationkey();

    // Deferred, asymmetric maintenance keeps the refresh obligation
    // under budget at all times.
    const StateVec pending = subscription.PendingVec();
    const StateVec action = policy.Act(t, pending, {3, 1, 0, 0});
    for (size_t i = 0; i < action.size(); ++i) {
      if (action[i] > 0) {
        subscription.ProcessBatch(i, static_cast<size_t>(action[i]));
      }
    }
    if (model.IsFull(subscription.PendingVec(), budget_c)) ++violations;

    // Notification condition: check every 100 steps whether the minimum
    // drifted by > 5%. Refreshing on demand is the moment the guarantee
    // matters: the remaining backlog must fit in C.
    if ((t + 1) % 100 == 0) {
      const double refresh_cost_bound =
          model.TotalCost(subscription.PendingVec());
      Stopwatch watch;
      subscription.RefreshAll();
      const double actual_ms = watch.ElapsedMs();
      const double current =
          subscription.state().ScalarMin().has_value()
              ? subscription.state().ScalarMin()->AsDouble()
              : 0.0;
      if (last_reported == 0.0 ||
          std::abs(current - last_reported) / last_reported > 0.05) {
        ++notifications;
        log.AddRow({std::to_string(t + 1), "NOTIFY",
                    ReportTable::Num(current, 2),
                    ReportTable::Num(actual_ms, 3),
                    refresh_cost_bound <= budget_c ? "yes" : "NO"});
        last_reported = current;
      }
    }
  }
  log.PrintAligned(std::cout);
  std::cout << "\nnotifications sent: " << notifications
            << ", modelled-guarantee violations: " << violations << "\n";
  std::cout << "(every on-demand refresh had modelled cost <= C = "
            << budget_c << " ms because the scheduler never let the "
            << "backlog exceed the budget)\n";
  return 0;
}
