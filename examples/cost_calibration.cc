// How to obtain the cost functions the scheduler needs: measure the real
// engine's batch-maintenance cost at several batch sizes, fit models, and
// inspect what the scheduler derives from them (max batch within the
// budget, heuristic batch bounds). Section 2 of the paper: "the cost
// functions can be provided by a database optimizer, or measured by
// experiments or from past experience."
//
// Build & run:  ./build/examples/cost_calibration

#include <iostream>

#include "cost/adaptive_cost.h"
#include "ivm/calibrator.h"
#include "sim/report.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

using namespace abivm;  // examples only

int main() {
  Database db;
  TpcGenOptions gen;
  gen.scale_factor = 0.01;
  GenerateTpcDatabase(&db, gen);
  CreatePaperIndexes(&db);

  ViewMaintainer maintainer(&db, MakePaperMinView());
  TpcUpdater updater(&db, 99);

  // Queue up modifications WITHOUT processing them; calibration runs
  // dry (measures, then discards) so the view stays untouched.
  for (int i = 0; i < 400; ++i) {
    updater.UpdatePartSuppSupplycost();
    updater.UpdateSupplierNationkey();
  }

  const std::vector<uint64_t> sizes = {1, 10, 50, 100, 200, 400};
  const CalibrationResult partsupp =
      CalibrateTableCost(maintainer, 0, sizes);
  const CalibrationResult supplier =
      CalibrateTableCost(maintainer, 1, sizes);

  ReportTable table({"batch", "partsupp_ms", "ps_probes", "supplier_ms",
                     "s_rows_scanned"});
  for (size_t i = 0; i < sizes.size(); ++i) {
    table.AddRow({std::to_string(sizes[i]),
                  ReportTable::Num(partsupp.samples[i].median_ms, 4),
                  std::to_string(partsupp.samples[i].stats.index_probes),
                  ReportTable::Num(supplier.samples[i].median_ms, 4),
                  std::to_string(supplier.samples[i].stats.rows_scanned)});
  }
  table.PrintAligned(std::cout);

  std::cout << "\nfitted linear models (f(k) = a*k + b):\n";
  std::cout << "  partsupp: a=" << partsupp.fit.slope
            << " b=" << partsupp.fit.intercept
            << " r2=" << partsupp.fit.r_squared << "\n";
  std::cout << "  supplier: a=" << supplier.fit.slope
            << " b=" << supplier.fit.intercept
            << " r2=" << supplier.fit.r_squared << "\n";

  const CostFunctionPtr ps_fn = partsupp.AsLinearCost();
  const CostFunctionPtr s_fn = supplier.AsLinearCost();
  const CostFunctionPtr s_table = supplier.AsTableDrivenCost();
  std::cout << "\nscheduler-facing views of the supplier model:\n";
  for (double budget : {0.5, 1.0, 2.0, 5.0}) {
    std::cout << "  max supplier batch within C=" << budget
              << " ms:  linear-fit=" << s_fn->MaxBatchWithin(budget)
              << "  table-driven=" << s_table->MaxBatchWithin(budget)
              << "\n";
  }
  std::cout << "\nper-item asymmetry: supplier batch of 400 costs "
            << ReportTable::Num(s_fn->Cost(400) / ps_fn->Cost(400), 1)
            << "x a partsupp batch of 400 -- the ratio the asymmetric "
               "scheduler exploits.\n";

  // Nothing was actually processed:
  std::cout << "\npending after calibration (untouched): partsupp="
            << maintainer.PendingCount(0)
            << " supplier=" << maintainer.PendingCount(1) << "\n";

  // ------------------------------------------------------------------
  // Online recalibration: AdaptiveLinearCost ingests every measured
  // batch and tracks drift -- here we grow partsupp by 50% and watch the
  // supplier-side intercept (the scan cost) follow.
  AdaptiveLinearCost live_model;
  auto feed = [&](int batches) {
    for (int i = 0; i < batches; ++i) {
      const size_t k = 5 + static_cast<size_t>(i % 20) * 10;
      while (maintainer.PendingCount(1) < k) {
        updater.UpdateSupplierNationkey();
      }
      const BatchResult r = maintainer.ProcessBatch(1, k, /*dry_run=*/true);
      live_model.Observe(k, r.wall_ms);
    }
  };
  feed(60);
  const double intercept_before = live_model.b();
  Table& partsupp_table = db.table(kPartSupp);
  const size_t grow = partsupp_table.live_row_count() / 2;
  for (size_t i = 0; i < grow; ++i) updater.InsertPartSupp();
  maintainer.RefreshAll();  // advance the watermark past the growth
  feed(60);
  std::cout << "\nadaptive model tracked table growth: supplier scan "
               "intercept "
            << intercept_before << " ms -> " << live_model.b()
            << " ms after partsupp grew 1.5x ("
            << live_model.observations() << " observations)\n";
  return 0;
}
