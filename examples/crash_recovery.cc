// Crash-and-recover demonstration tool, driven end-to-end by
// scripts/crash_restart_smoke.sh against a REAL process death: when an
// armed durability failpoint aborts the run, the process dies on the
// spot with std::_Exit -- no destructors, no flushes -- leaving exactly
// the on-disk state a SIGKILL at that instant would.
//
//   crash_recovery --dir D
//       Durable run to the horizon; prints "digest <hex>"; exit 0.
//   crash_recovery --dir D --site log.append --skip 7
//       Same run with the failpoint armed; dies mid-run; exit 42.
//   crash_recovery --dir D --recover
//       Rebuilds the run from D alone, checks the recovered view
//       against the recompute oracle, resumes to the horizon, prints
//       the stitched-trace "digest <hex>"; exit 0.
//   crash_recovery --dir D --bytes-guard [--min-ratio R]
//       Runs the same workload twice -- incremental checkpoints vs
//       full-image-only -- and requires steady-state checkpoint bytes
//       (everything after the seq-0 image) to shrink by at least R
//       (default 5); prints both totals and the ratio; exit 0/1.
//
// Runs carry the ONLINE policy's decision-state snapshot in every
// image (DurabilityOptions::save_policy), so the WAL is trimmed below
// each publish -- the trimmed-recovery path is what the smoke script
// exercises, including at the `ckpt.delta` and `wal.trim` sites.
//
// The smoke script compares the clean run's digest with the
// crash+recover digest: equal means the resumed run reproduced the
// uninterrupted one bit-for-bit.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "ckpt/manager.h"
#include "ckpt/recovery.h"
#include "ckpt/serde.h"
#include "core/online.h"
#include "fault/failpoint.h"
#include "sim/engine_runner.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

using namespace abivm;  // examples only

namespace {

CostModel PaperLikeModel() {
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0),
      std::make_shared<LinearCost>(0.1, 0.1),
      std::make_shared<LinearCost>(0.1, 0.1)};
  return CostModel(std::move(fns));
}

ArrivalSequence SmokeArrivals() {
  return ArrivalSequence::Uniform({2, 1, 0, 0}, 19);
}

constexpr double kBudget = 15.0;

/// Raw-bit digest of the final view content plus the trace's
/// deterministic totals: equal digests mean the runs are bit-identical
/// where determinism is promised.
std::string Digest(const ViewState& state, const EngineTrace& trace) {
  std::ostringstream oss;
  for (const auto& [key, group] : state.Snapshot()) {
    uint64_t sum_bits = 0;
    std::memcpy(&sum_bits, &group.sum, sizeof(sum_bits));
    oss << RowToString(key) << '|' << group.count << '|' << sum_bits;
    for (const auto& [value, mult] : group.values) {
      oss << '|' << value.ToString() << '*' << mult;
    }
    oss << '\n';
  }
  uint64_t cost_bits = 0;
  std::memcpy(&cost_bits, &trace.total_model_cost, sizeof(cost_bits));
  oss << cost_bits << '|' << trace.violations << '|' << trace.action_count
      << '|' << trace.failures << '|' << trace.retries << '\n';
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(ckpt::Checksum(oss.str())));
  return hex;
}

const char* FlagValue(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

int RunDurable(const std::string& dir, const char* site, uint64_t skip) {
  Database db;
  TpcGenOptions gen;
  gen.scale_factor = 0.001;
  GenerateTpcDatabase(&db, gen);
  CreatePaperIndexes(&db);
  ViewMaintainer maintainer(&db, MakePaperMinView());
  TpcUpdater updater(&db, 99);
  ModificationDriver driver = [&](size_t table_index) {
    if (table_index == 0) {
      updater.UpdatePartSuppSupplycost();
    } else {
      updater.UpdateSupplierNationkey();
    }
  };

  OnlinePolicy policy;
  ckpt::DurabilityOptions durability;
  durability.save_policy = [&policy] { return policy.SaveState(); };
  auto mgr = ckpt::DurabilityManager::Start(
      dir, &db, &maintainer, [&] { return updater.SaveState(); },
      durability);
  if (!mgr.ok()) {
    std::cerr << "start failed: " << mgr.status().ToString() << "\n";
    return 1;
  }
  // Arm AFTER Start so the seq-0 checkpoint is never the victim.
  std::unique_ptr<fault::ScopedFailpoint> guard;
  if (site != nullptr) {
    guard = std::make_unique<fault::ScopedFailpoint>(
        fault::ScopedFailpoint::Once(site, skip));
  }

  EngineRunnerOptions options;
  options.durability = (*mgr).get();
  const EngineTrace trace =
      RunOnEngine(maintainer, SmokeArrivals(), PaperLikeModel(), kBudget,
                  policy, driver, options);
  if (trace.aborted) {
    std::cerr << "died at step " << trace.aborted_at << ": "
              << trace.abort_reason << "\n";
    // A real crash: no destructors, no flushes. The durability dir must
    // carry the recovery on its own.
    std::_Exit(site != nullptr ? 42 : 1);
  }
  if (site != nullptr) {
    std::cerr << "failpoint never fired -- lower --skip\n";
    return 1;
  }
  std::cout << "digest " << Digest(maintainer.state(), trace) << "\n";
  return 0;
}

int Recover(const std::string& dir) {
  const CostModel model = PaperLikeModel();
  OnlinePolicy policy;
  auto rec =
      ckpt::RecoverFromDir(dir, MakePaperMinView(), model, kBudget, &policy);
  if (!rec.ok()) {
    std::cerr << "recovery failed: " << rec.status().ToString() << "\n";
    return 1;
  }
  ckpt::RecoveredRun& run = *rec;
  std::cerr << "recovered: resuming at step " << run.resume.first_step
            << (run.resume.mid_step ? " (mid-step)" : "") << ", "
            << run.trace_prefix.size() << " completed steps replayed\n";
  if (!run.maintainer->state().SameContents(
          run.maintainer->RecomputeAtWatermarks())) {
    std::cerr << "recovered view != recompute oracle\n";
    return 1;
  }

  TpcUpdater updater(run.db.get(), /*seed=*/0);  // state restored below
  updater.RestoreState(run.driver_blob);
  ModificationDriver driver = [&](size_t table_index) {
    if (table_index == 0) {
      updater.UpdatePartSuppSupplycost();
    } else {
      updater.UpdateSupplierNationkey();
    }
  };
  ckpt::DurabilityOptions durability;
  durability.save_policy = [&policy] { return policy.SaveState(); };
  auto mgr = ckpt::DurabilityManager::Resume(
      dir, run.db.get(), run.maintainer.get(),
      [&] { return updater.SaveState(); }, run.handle, durability);
  if (!mgr.ok()) {
    std::cerr << "resume failed: " << mgr.status().ToString() << "\n";
    return 1;
  }
  EngineRunnerOptions options;
  options.durability = (*mgr).get();
  options.resume = &run.resume;
  const EngineTrace resumed =
      RunOnEngine(*run.maintainer, SmokeArrivals(), model, kBudget, policy,
                  driver, options);
  if (resumed.aborted || !resumed.ended_consistent) {
    std::cerr << "resumed run failed: " << resumed.abort_reason << "\n";
    return 1;
  }
  const EngineTrace full = ckpt::StitchTrace(run.trace_prefix, resumed);
  std::cout << "digest " << Digest(run.maintainer->state(), full) << "\n";
  return 0;
}

/// One measured durable run; returns steady-state checkpoint bytes
/// (everything after the seq-0 image) or UINT64_MAX on failure.
uint64_t MeasureSteadyStateBytes(const std::string& dir, bool incremental,
                                 uint64_t* deltas_out) {
  Database db;
  TpcGenOptions gen;
  gen.scale_factor = 0.001;
  GenerateTpcDatabase(&db, gen);
  CreatePaperIndexes(&db);
  ViewMaintainer maintainer(&db, MakePaperMinView());
  TpcUpdater updater(&db, 99);
  ModificationDriver driver = [&](size_t table_index) {
    if (table_index == 0) {
      updater.UpdatePartSuppSupplycost();
    } else {
      updater.UpdateSupplierNationkey();
    }
  };
  obs::MetricRegistry metrics;
  OnlinePolicy policy;
  ckpt::DurabilityOptions durability;
  durability.incremental = incremental;
  durability.save_policy = [&policy] { return policy.SaveState(); };
  auto mgr = ckpt::DurabilityManager::Start(
      dir, &db, &maintainer, [&] { return updater.SaveState(); },
      durability, &metrics);
  if (!mgr.ok()) {
    std::cerr << "start failed: " << mgr.status().ToString() << "\n";
    return UINT64_MAX;
  }
  const uint64_t seq0_bytes =
      metrics.Snapshot().counters.at("ckpt.bytes_written");
  EngineRunnerOptions options;
  options.durability = (*mgr).get();
  const EngineTrace trace =
      RunOnEngine(maintainer, SmokeArrivals(), PaperLikeModel(), kBudget,
                  policy, driver, options);
  if (trace.aborted) {
    std::cerr << "measured run died: " << trace.abort_reason << "\n";
    return UINT64_MAX;
  }
  *deltas_out = (*mgr)->deltas_published();
  return metrics.Snapshot().counters.at("ckpt.bytes_written") - seq0_bytes;
}

/// Incremental vs full-image-only on the identical workload: the
/// steady-state byte total must shrink by at least `min_ratio` (the
/// whole point of delta checkpoints -- bytes proportional to churn, not
/// to table size).
int BytesGuard(const std::string& dir, double min_ratio) {
  uint64_t inc_deltas = 0;
  uint64_t full_deltas = 0;
  const uint64_t inc_bytes =
      MeasureSteadyStateBytes(dir + "/incremental", true, &inc_deltas);
  const uint64_t full_bytes =
      MeasureSteadyStateBytes(dir + "/full", false, &full_deltas);
  if (inc_bytes == UINT64_MAX || full_bytes == UINT64_MAX) return 1;
  if (inc_deltas == 0 || full_deltas != 0 || inc_bytes == 0) {
    std::cerr << "bytes-guard: unexpected publish mix (incremental run "
              << inc_deltas << " deltas, full run " << full_deltas
              << ")\n";
    return 1;
  }
  const double ratio =
      static_cast<double>(full_bytes) / static_cast<double>(inc_bytes);
  std::cout << "steady-state checkpoint bytes: full=" << full_bytes
            << " incremental=" << inc_bytes << " ratio=" << ratio << "\n";
  if (ratio < min_ratio) {
    std::cerr << "bytes-guard: ratio " << ratio << " below required "
              << min_ratio << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* dir = FlagValue(argc, argv, "--dir");
  if (dir == nullptr) {
    std::cerr << "usage: crash_recovery --dir D [--site S [--skip N]] "
                 "[--recover] [--bytes-guard [--min-ratio R]]\n";
    return 1;
  }
  if (HasFlag(argc, argv, "--recover")) return Recover(dir);
  if (HasFlag(argc, argv, "--bytes-guard")) {
    const char* ratio = FlagValue(argc, argv, "--min-ratio");
    return BytesGuard(dir,
                      ratio != nullptr ? std::strtod(ratio, nullptr) : 5.0);
  }
  const char* site = FlagValue(argc, argv, "--site");
  const char* skip = FlagValue(argc, argv, "--skip");
  return RunDurable(dir, site,
                    skip != nullptr ? std::strtoull(skip, nullptr, 10) : 0);
}
