// Defining subscriptions in SQL, managing many views over one database
// (ViewGroup), garbage-collecting consumed history, and exporting results
// to CSV -- the operational surface around the scheduling core.
//
// Build & run:  ./build/examples/sql_views

#include <iostream>
#include <sstream>

#include "ivm/sql_parser.h"
#include "ivm/view_group.h"
#include "storage/csv.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

using namespace abivm;  // examples only

int main() {
  Database db;
  TpcGenOptions gen;
  gen.scale_factor = 0.005;
  GenerateTpcDatabase(&db, gen);
  CreatePaperIndexes(&db);

  // ------------------------------------------------------------------
  // Three subscriptions, all defined in SQL.
  ViewGroup subscriptions(&db);
  struct Subscription {
    const char* name;
    const char* sql;
  };
  const Subscription defs[] = {
      {"cheapest_middle_east",
       "SELECT MIN(ps_supplycost) FROM partsupp, supplier, nation, region "
       "WHERE s_suppkey = ps_suppkey AND s_nationkey = n_nationkey "
       "AND n_regionkey = r_regionkey AND r_name = 'MIDDLE EAST'"},
      {"avg_cost_by_region",
       "SELECT r_name, AVG(ps_supplycost) "
       "FROM partsupp, supplier, nation, region "
       "WHERE s_suppkey = ps_suppkey AND s_nationkey = n_nationkey "
       "AND n_regionkey = r_regionkey GROUP BY r_name"},
      {"big_stock_count",
       "SELECT COUNT(*) FROM partsupp WHERE ps_availqty >= 5000"},
  };
  for (const Subscription& sub : defs) {
    Result<ViewDef> parsed = ParseViewSql(db, sub.name, sub.sql);
    if (!parsed.ok()) {
      std::cerr << "failed to parse " << sub.name << ": "
                << parsed.status().ToString() << "\n";
      return 1;
    }
    subscriptions.AddView(std::move(parsed.value()));
    std::cout << "registered subscription '" << sub.name << "'\n";
  }

  // ------------------------------------------------------------------
  // Stream modifications; each subscription batches independently.
  TpcUpdater updater(&db, 7);
  for (int i = 0; i < 500; ++i) {
    updater.UpdatePartSuppSupplycost();
    if (i % 5 == 0) updater.UpdateSupplierNationkey();
    if (i % 7 == 0) updater.InsertPartSupp();
  }
  // The MIN subscription keeps up eagerly; the others defer.
  ViewMaintainer* cheapest =
      subscriptions.FindView("cheapest_middle_east");
  cheapest->RefreshAll();
  std::cout << "\ncheapest Middle-East supply cost right now: "
            << cheapest->state().ScalarMin()->ToString() << "\n";
  ViewMaintainer* counts = subscriptions.FindView("big_stock_count");
  std::cout << "big_stock_count backlog before refresh: "
            << counts->PendingCount(0) << " modifications\n";

  // Reclaim the history only the laggards still pin.
  const size_t reclaimed_early = subscriptions.VacuumConsumed();
  subscriptions.RefreshAll();
  const size_t reclaimed_late = subscriptions.VacuumConsumed();
  std::cout << "vacuum reclaimed " << reclaimed_early << " + "
            << reclaimed_late << " superseded row versions\n";

  // ------------------------------------------------------------------
  // Report: AVG per region, plus a CSV export of the region catalog.
  ViewMaintainer* averages = subscriptions.FindView("avg_cost_by_region");
  std::cout << "\nAVG(ps_supplycost) by region:\n";
  for (const auto& [key, group] : averages->state().Snapshot()) {
    std::cout << "  " << key[0].AsString() << ": "
              << group.sum / static_cast<double>(group.count) << "  ("
              << group.count << " partsupp rows)\n";
  }

  std::ostringstream csv;
  WriteTableCsv(db.table(kRegion), db.current_version(), csv);
  std::cout << "\nregion table as CSV:\n" << csv.str();
  return 0;
}
