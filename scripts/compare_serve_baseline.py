#!/usr/bin/env python3
"""Guards the serving bench against its checked-in baseline.

Usage: compare_serve_baseline.py CURRENT.json BASELINE.json
                                 [--throughput-tol X] [--latency-tol Y]

The load shape (thread counts, read/write op counts) is deterministic
and must match the baseline exactly, so the scenario grid itself is
pinned. Perf fields are wall-clock and only fail beyond a tolerance
factor: reads_per_sec is a FLOOR (current may not drop below baseline /
tol) and the p99 latencies are CEILINGS (current may not exceed baseline
* tol). Default tolerance is 3.0x for both -- the serving path is
multithreaded and scheduler-sensitive, so the guard is meant to catch
order-of-magnitude regressions (a lost wakeup turning coalesced flushes
into serial ones, a reader taking the writer's lock), not percent-level
drift.

Structural invariants are checked on the CURRENT run alone and are
tolerance-free: every fresh read must be covered by a flush that is no
newer than it (fresh_served >= flushes whenever fresh reads ran -- the
coalescing contract: k concurrent fresh readers share one flush, never
the reverse), and publishes >= flushes (each flush republishes).

Scenarios present in only one file fail the check.
"""

import json
import sys

SHAPE_FIELDS = ("stale_readers", "fresh_readers", "producers", "reads",
                "writes")
P99_FIELDS = ("stale_p99_ms", "fresh_p99_ms")


def main(argv):
    if len(argv) < 3:
        sys.stderr.write(__doc__)
        return 2
    throughput_tol = 3.0
    if "--throughput-tol" in argv:
        throughput_tol = float(argv[argv.index("--throughput-tol") + 1])
    latency_tol = 3.0
    if "--latency-tol" in argv:
        latency_tol = float(argv[argv.index("--latency-tol") + 1])

    with open(argv[1]) as f:
        current = {s["name"]: s for s in json.load(f)["scenarios"]}
    with open(argv[2]) as f:
        baseline = {s["name"]: s for s in json.load(f)["scenarios"]}

    failures = []
    for name in sorted(set(current) | set(baseline)):
        if name not in current:
            failures.append(f"{name}: missing from current run")
            continue
        if name not in baseline:
            failures.append(f"{name}: not in baseline (grid changed?)")
            continue
        cur, base = current[name], baseline[name]
        for field in SHAPE_FIELDS:
            if cur[field] != base[field]:
                failures.append(
                    f"{name}.{field}: {cur[field]} != baseline "
                    f"{base[field]}"
                )
        floor = base["reads_per_sec"] / throughput_tol
        if cur["reads_per_sec"] < floor:
            failures.append(
                f"{name}.reads_per_sec: {cur['reads_per_sec']:.0f} < "
                f"baseline {base['reads_per_sec']:.0f} / {throughput_tol}"
            )
        for field in P99_FIELDS:
            if base[field] <= 0.0:
                continue  # scenario ran no reads of this kind
            if cur[field] > base[field] * latency_tol:
                failures.append(
                    f"{name}.{field}: {cur[field]:.4f} ms > "
                    f"{latency_tol}x baseline {base[field]:.4f} ms"
                )
        # Coalescing contract, current run only (counter-exact).
        if cur["fresh_served"] > 0 and cur["flushes"] > cur["fresh_served"]:
            failures.append(
                f"{name}: {cur['flushes']} flushes for "
                f"{cur['fresh_served']} fresh reads -- coalescing broken"
            )
        if cur["publishes"] < cur["flushes"]:
            failures.append(
                f"{name}: {cur['publishes']} publishes < "
                f"{cur['flushes']} flushes"
            )

    if failures:
        for line in failures:
            print(f"[serve-baseline] REGRESSION {line}")
        return 1
    print(f"[serve-baseline] {len(current)} scenarios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
