#!/usr/bin/env python3
"""Guards the substrate micro-bench against its checked-in baseline.

Usage: compare_substrate_baseline.py CURRENT.json BASELINE.json [--wall-tol X]

The point of this guard is the UNOBSERVED path: plain ProcessBatch /
join-operator runs with no profiling and a null metrics registry must not
pay for the per-operator attribution machinery. Inputs are google-benchmark
JSON (--benchmark_out_format=json). The benchmark grid is pinned -- a name
present in only one file fails -- and each benchmark's real_time may not
exceed the baseline by more than the tolerance factor (default 2.0x, wide
enough for machine noise, narrow enough to catch an accidentally-always-on
profiling path). Faster-than-baseline never fails.

Tiers that export a `warm_grow_events` counter (the warm-workspace join
and ProcessBatch tiers) are additionally pinned to EXACTLY 0: after the
in-benchmark warmup, the pooled PipelineWorkspace must not grow any
buffer during the timed loop. This is deterministic (capacity accounting,
not wall clock), so there is no tolerance -- a single grow event on the
warm path fails the guard. The counter grid itself is pinned too: a tier
that exported the counter in the baseline must still export it.
"""

import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    # Skip aggregate rows (mean/median/stddev) if repetitions were used.
    return {
        b["name"]: b
        for b in data["benchmarks"]
        if b.get("run_type", "iteration") == "iteration"
    }


def main(argv):
    if len(argv) < 3:
        sys.stderr.write(__doc__)
        return 2
    wall_tol = 2.0
    if "--wall-tol" in argv:
        wall_tol = float(argv[argv.index("--wall-tol") + 1])

    current = load(argv[1])
    baseline = load(argv[2])

    failures = []
    for name in sorted(set(current) | set(baseline)):
        if name not in current:
            failures.append(f"{name}: missing from current run")
            continue
        if name not in baseline:
            failures.append(f"{name}: not in baseline (grid changed?)")
            continue
        cur, base = current[name], baseline[name]
        if cur.get("time_unit") != base.get("time_unit"):
            failures.append(
                f"{name}: time_unit {cur.get('time_unit')} != baseline "
                f"{base.get('time_unit')}"
            )
            continue
        if cur["real_time"] > base["real_time"] * wall_tol:
            failures.append(
                f"{name}.real_time: {cur['real_time']:.1f} "
                f"{cur.get('time_unit', 'ns')} > {wall_tol}x baseline "
                f"{base['real_time']:.1f}"
            )
        if "warm_grow_events" in base and "warm_grow_events" not in cur:
            failures.append(
                f"{name}: warm_grow_events counter disappeared "
                f"(no-alloc signal no longer exported)"
            )
        if cur.get("warm_grow_events", 0) != 0:
            failures.append(
                f"{name}.warm_grow_events: {cur['warm_grow_events']:.0f} "
                f"!= 0 (workspace grew on the warm path)"
            )

    if failures:
        for line in failures:
            print(f"[substrate-baseline] REGRESSION {line}")
        return 1
    print(f"[substrate-baseline] {len(current)} benchmarks within "
          f"{wall_tol}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
