#!/usr/bin/env bash
# Regenerates every paper figure and ablation into bench_output.txt and
# the full test log into test_output.txt (repository root).
set -u
cd "$(dirname "$0")/.."
cmake -B build -G Ninja && cmake --build build || exit 1
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && { echo "##### $(basename "$b")"; "$b"; }
done 2>&1 | tee bench_output.txt
