#!/usr/bin/env python3
"""Guards the planner bench against its checked-in baseline.

Usage: compare_planner_baseline.py CURRENT.json BASELINE.json [--wall-tol X]
                                   [--warm-tol Y]

Search-work fields (cost, nodes_expanded, nodes_generated, reexpansions)
are deterministic and must match the baseline exactly; wall_ms_best may
drift with machine load and only fails beyond the tolerance factor
(default 2.0x). Instances present in only one file fail the check, so the
grid itself is pinned too.

Replan-tier records (those carrying wall_ms_cold_best) additionally
guard workspace reuse: warm_grow_events is deterministic and must match
the baseline exactly AND stay below searches (the warm path must run
some searches without growing any buffer), and the warm sequence may not
be slower than the cold one beyond --warm-tol (default 1.1; warm and
cold are timed seconds apart in the same process, so this comparison is
far more stable than cross-run wall clocks).
"""

import json
import sys

EXACT_FIELDS = ("cost", "nodes_expanded", "nodes_generated", "reexpansions")
REPLAN_EXACT_FIELDS = ("searches", "warm_grow_events")


def main(argv):
    if len(argv) < 3:
        sys.stderr.write(__doc__)
        return 2
    wall_tol = 2.0
    if "--wall-tol" in argv:
        wall_tol = float(argv[argv.index("--wall-tol") + 1])
    warm_tol = 1.1
    if "--warm-tol" in argv:
        warm_tol = float(argv[argv.index("--warm-tol") + 1])

    with open(argv[1]) as f:
        current = {i["name"]: i for i in json.load(f)["instances"]}
    with open(argv[2]) as f:
        baseline = {i["name"]: i for i in json.load(f)["instances"]}

    failures = []
    for name in sorted(set(current) | set(baseline)):
        if name not in current:
            failures.append(f"{name}: missing from current run")
            continue
        if name not in baseline:
            failures.append(f"{name}: not in baseline (grid changed?)")
            continue
        cur, base = current[name], baseline[name]
        for field in EXACT_FIELDS:
            if cur[field] != base[field]:
                failures.append(
                    f"{name}.{field}: {cur[field]} != baseline "
                    f"{base[field]}"
                )
        if cur["wall_ms_best"] > base["wall_ms_best"] * wall_tol:
            failures.append(
                f"{name}.wall_ms_best: {cur['wall_ms_best']:.3f} ms > "
                f"{wall_tol}x baseline {base['wall_ms_best']:.3f} ms"
            )
        if "wall_ms_cold_best" in base:
            if "wall_ms_cold_best" not in cur:
                failures.append(f"{name}: replan-tier fields missing")
                continue
            for field in REPLAN_EXACT_FIELDS:
                if cur[field] != base[field]:
                    failures.append(
                        f"{name}.{field}: {cur[field]} != baseline "
                        f"{base[field]}"
                    )
            if cur["warm_grow_events"] >= cur["searches"]:
                failures.append(
                    f"{name}: warm path grew buffers on every search "
                    f"({cur['warm_grow_events']}/{cur['searches']}) -- "
                    "workspace reuse is not amortizing allocations"
                )
            if cur["wall_ms_best"] > cur["wall_ms_cold_best"] * warm_tol:
                failures.append(
                    f"{name}: warm sequence {cur['wall_ms_best']:.3f} ms "
                    f"> {warm_tol}x its own cold run "
                    f"{cur['wall_ms_cold_best']:.3f} ms"
                )

    if failures:
        for line in failures:
            print(f"[planner-baseline] REGRESSION {line}")
        return 1
    print(f"[planner-baseline] {len(current)} instances match baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
