#!/usr/bin/env bash
# Kill-and-restart smoke over a REAL process: runs examples/crash_recovery
# with a durability failpoint armed so the process dies mid-run via
# std::_Exit -- no destructors, no flushes; the durability directory holds
# exactly what a SIGKILL at that instant would leave. Then recovers from
# the directory alone, resumes to the horizon, and requires the stitched
# digest to equal a clean uninterrupted run's digest bit-for-bit.
#
# The driven runs publish incremental checkpoint chains with policy-state
# blobs and trim the WAL below each image, so useful sites include the
# delta publish (`ckpt.delta`) and the segment trim (`wal.trim`) in
# addition to the write/fsync/rename/manifest/log sites.
#
#   scripts/crash_restart_smoke.sh [build_dir] [site] [skip]
#   scripts/crash_restart_smoke.sh build ckpt.fsync 2
#   scripts/crash_restart_smoke.sh build ckpt.delta 1
#   scripts/crash_restart_smoke.sh build wal.trim 1
set -u
cd "$(dirname "$0")/.."

build="${1:-build}"
site="${2:-log.append}"
skip="${3:-7}"
bin="$build/examples/crash_recovery"

if [ ! -x "$bin" ]; then
  cmake --build "$build" --target crash_recovery -j "$(nproc)" || exit 1
fi

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

echo "=== crash_restart_smoke: site=$site skip=$skip ==="

# 1. Uninterrupted durable run: the reference digest.
ref="$("$bin" --dir "$work/clean" | awk '/^digest /{print $2}')"
if [ -z "$ref" ]; then
  echo "crash_restart_smoke: clean run failed"
  exit 1
fi

# 2. The doomed run: must die (exit 42), not finish and not error out.
"$bin" --dir "$work/crash" --site "$site" --skip "$skip"
rc=$?
if [ "$rc" -ne 42 ]; then
  echo "crash_restart_smoke: expected the run to die (42), got $rc"
  exit 1
fi

# 3. Recover + resume in a fresh process; the stitched digest must match.
got="$("$bin" --dir "$work/crash" --recover | awk '/^digest /{print $2}')"
if [ -z "$got" ]; then
  echo "crash_restart_smoke: recovery failed"
  exit 1
fi
if [ "$got" != "$ref" ]; then
  echo "crash_restart_smoke: digest mismatch: clean=$ref recovered=$got"
  exit 1
fi
echo "crash_restart_smoke: OK (digest $got)"
