#!/usr/bin/env bash
# Sanitizer gate: builds and runs the full test suite under ASan+UBSan
# and again under TSan (with explicit passes over the fault-injection,
# recovery, and serving suites under each), smoke-runs the parallel
# bench drivers under TSan, and guards the release planner, substrate,
# and serving benches against their checked-in baselines (the substrate
# guard pins the unobserved null-registry ProcessBatch path; the serving
# guard pins stale-read throughput, fresh-read p99, and coalescing). Use before merging
# anything that touches threading, memory management, the failpoint
# wiring, or the observability hooks.
#
#   scripts/check.sh            # asan suite + tsan suite + bench guard
#   scripts/check.sh --fast     # skip the asan suite, tsan only
set -u
cd "$(dirname "$0")/.."

# NOTE: `ctest -j` with no value swallows the next argument, so always
# pass the count explicitly.
jobs="$(nproc)"

fast=0
for arg in "$@"; do
  [ "$arg" = "--fast" ] && fast=1
done

fail=0

if [ "$fast" -eq 0 ]; then
  echo "=== ASan + UBSan: full test suite ==="
  cmake --preset asan || exit 1
  cmake --build --preset asan -j "$jobs" || exit 1
  ctest --preset asan -j "$jobs" || fail=1
  # Fault-injection suite on its own: injected faults drive the error
  # paths (staged-then-abandoned batches, retry loops), exactly where a
  # leak or use-after-free would hide from the happy path. This label
  # includes the fault-armed substrate tests (flat-index growth edge,
  # partitioned-probe cancellation, thread-count invariance).
  ctest --preset asan -j "$jobs" -L fault || fail=1
  # Recovery suite on its own: checkpoint serde round-trips, WAL torn
  # tails, and the kill-and-restart torture all shuttle whole tables
  # through byte buffers and rebuild them -- exactly where an overrun or
  # use-after-free in the image/restore path would hide.
  ctest --preset asan -j "$jobs" -L recovery || fail=1
  # Serving suite on its own: the concurrent torture (producers +
  # stale/fresh readers vs. the maintenance writer) and the failpoint
  # degradation tests allocate snapshots on one thread and release them
  # on many -- where a double-free or use-after-publish would hide.
  ctest --preset asan -j "$jobs" -L serve || fail=1
  # Substrate hot path under ASan: the flat open-addressing index and the
  # pooled join workspace do manual slot/chain arithmetic over flat
  # buffers; the warm tiers re-fill pooled rows in place, where a stale
  # slot read or overrun would hide.
  (cd build-asan/bench && ./micro_substrate \
      --benchmark_filter='BM_FlatIndexProbe|BM_IndexNestedLoopJoin|BM_HashJoinScan|BM_PartitionedProbe' \
      --benchmark_min_time=0.05 >/dev/null) || fail=1
  # Planner hot path: the arena/intern-table A* does manual index
  # arithmetic over flat buffers, exactly what ASan exists to vet.
  # micro_planner's smoke grid includes the replan tier, which runs warm
  # sequences on a pooled PlannerWorkspace -- reuse of grown arenas is
  # where a stale-slice read would hide.
  (cd build-asan/bench && ./micro_planner --smoke=1 >/dev/null) || fail=1
  # Replanning sweep under workspace reuse: ReplanningPolicy jobs (each
  # holding a pooled workspace across ~999 steps of replans) running
  # concurrently with plan jobs.
  (cd build-asan/bench && ./abl_replanning --threads=4 >/dev/null) || fail=1
fi

echo "=== TSan: full test suite ==="
cmake --preset tsan || exit 1
cmake --build --preset tsan -j "$jobs" || exit 1
# The thread pool and sweep engine are where data races would live; the
# bench smoke runs exercise the pool under the real drivers.
ctest --preset tsan -j "$jobs" || fail=1
# Fault suite under TSan: thread-local failpoint registries + the
# fault-injected parallel sweep must stay race-free -- including the
# armed partitioned-probe tests (per-partition output slots and stats
# must stay thread-confined).
ctest --preset tsan -j "$jobs" -L fault || fail=1
# Recovery suite under TSan: durable runs install a Database apply
# listener and run inside sweep worker threads elsewhere; the suite must
# stay race-free when tests run concurrently.
ctest --preset tsan -j "$jobs" -L recovery || fail=1
# Serving suite under TSan: the subsystem's whole claim is that readers
# never race the maintenance writer (epoch publication behind per-slot
# locks, MPSC ingest queue, coalescing generation tickets);
# the torture test's recompute-oracle publish hook makes any racy
# publish visible as a digest mismatch, and TSan sees the rest.
ctest --preset tsan -j "$jobs" -L serve || fail=1
# Partitioned scan-side probe under TSan: the one substrate path that
# fans out across the thread pool (per-partition slots, barrier, then
# partition-order concatenation on the caller thread).
(cd build-tsan/bench && ./micro_substrate \
    --benchmark_filter='BM_PartitionedProbe' \
    --benchmark_min_time=0.05 >/dev/null) || fail=1
(cd build-tsan/bench && ./abl_tightness --threads=4 >/dev/null) || fail=1
(cd build-tsan/bench && ./abl_cost_shapes --threads=4 >/dev/null) || fail=1
(cd build-tsan/bench && ./micro_planner --smoke=1 >/dev/null) || fail=1
# Replanning sweep under workspace reuse: per-job pooled workspaces must
# stay thread-confined (one workspace per policy/closure, never shared).
(cd build-tsan/bench && ./abl_replanning --threads=4 >/dev/null) || fail=1
# Serving load generator under TSan: the closed-loop bench drives the
# real producer/reader thread mix (including the 4-fresh-reader
# coalescing scenario) rather than the tests' choreographed interleaving.
(cd build-tsan/bench && ./micro_serve --smoke=1 \
    --out=BENCH_serve_smoke.json >/dev/null) || fail=1

echo "=== Crash/restart smoke: real process death + recovery ==="
# A real process dies (std::_Exit at an armed durability failpoint, no
# cleanup) and a fresh process recovers from the directory alone; the
# stitched digest must equal a clean run's. One mid-step WAL death, one
# checkpoint-publish death.
cmake --preset default >/dev/null || exit 1
cmake --build --preset default -j "$jobs" >/dev/null || exit 1
bash scripts/crash_restart_smoke.sh build log.append 7 || fail=1
bash scripts/crash_restart_smoke.sh build ckpt.fsync 2 || fail=1
# Incremental-chain sites: death at a delta publish and death mid
# WAL-segment trim (after the image that obsoleted the segments is
# already live) must both recover bit-for-bit.
bash scripts/crash_restart_smoke.sh build ckpt.delta 1 || fail=1
bash scripts/crash_restart_smoke.sh build wal.trim 1 || fail=1

echo "=== Incremental checkpoint bytes guard ==="
# Steady-state checkpoint bytes must be proportional to churn, not table
# size: the incremental run's post-seq-0 byte total must be at least 5x
# smaller than the full-image-only run's on the identical workload.
guard_dir="$(mktemp -d)"
./build/examples/crash_recovery --dir "$guard_dir" --bytes-guard \
  --min-ratio 5 || fail=1
rm -rf "$guard_dir"

echo "=== Release bench guard: planner vs baseline ==="
# Failpoints are disarmed (one relaxed load per site) in the default
# release build and sit outside the planner's libraries entirely; the
# planner bench must therefore reproduce its checked-in baseline: search
# work exactly, wall-clock within tolerance.
cmake --preset default >/dev/null || exit 1
cmake --build --preset default -j "$jobs" >/dev/null || exit 1
(cd build/bench && ./micro_planner >/dev/null) || fail=1
python3 scripts/compare_planner_baseline.py \
  build/bench/BENCH_planner.json bench/baselines/BENCH_planner.json \
  || fail=1

echo "=== Release bench guard: substrate unobserved path vs baseline ==="
# Per-operator profiling must stay free when off: the plain ProcessBatch
# and join-operator benchmarks run with profiling disabled and a null
# metrics registry, and must reproduce their checked-in wall-clock within
# tolerance. An accidentally-always-on attribution path fails here.
(cd build/bench && ./micro_substrate \
    --benchmark_out=BENCH_substrate.json --benchmark_out_format=json \
    >/dev/null) || fail=1
python3 scripts/compare_substrate_baseline.py \
  build/bench/BENCH_substrate.json bench/baselines/BENCH_substrate.json \
  || fail=1

echo "=== Release bench guard: serving throughput/latency vs baseline ==="
# Closed-loop serving load: stale-read throughput may not fall below the
# baseline floor, fresh-read p99 may not exceed the baseline ceiling, and
# the coalescing contract (flushes <= fresh reads) is counter-exact. A
# reader that starts taking the writer's lock, or a lost wakeup that
# serializes coalesced flushes, fails here before any test notices.
(cd build/bench && ./micro_serve >/dev/null) || fail=1
python3 scripts/compare_serve_baseline.py \
  build/bench/BENCH_serve.json bench/baselines/BENCH_serve.json \
  || fail=1

if [ "$fail" -ne 0 ]; then
  echo "check.sh: FAILURES (see above)"
  exit 1
fi
echo "check.sh: all clean"
