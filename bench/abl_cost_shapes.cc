// Ablation: how the cost-function shape changes the value of asymmetric
// batching. Same arrival schedule and budget regime, four shapes for the
// "expensive" table (the cheap table stays linear-through-origin):
//   linear   -- a*k + b (the paper's Section 3.3 workhorse)
//   capped   -- linear then flat (Figure 4's PARTSUPP shape)
//   step     -- ceil(k/B)*c (subadditive, non-concave)
//   concave  -- a*sqrt(k) + b
// Reports NAIVE / OPT_LGM / ONLINE and, where tractable, the true OPT over
// all lazy plans (step costs are where LGM can lose up to 2x).
//
// The (shape, treatment) points run as one parallel sweep (--threads=N);
// per-job metrics land in BENCH_abl_cost_shapes_metrics.json.

#include <deque>
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "core/astar.h"
#include "core/exhaustive.h"
#include "core/naive.h"
#include "core/online.h"
#include "sim/report.h"
#include "sim/sweep.h"
#include "sim/sweep_values.h"

namespace abivm {
namespace {

void Run(int argc, char** argv) {
  const SweepOptions sweep = bench::SweepFromFlags(argc, argv);
  std::cout << "=== Cost-shape ablation (table0 = shape below, table1 = "
               "linear 1.0*k; 1+1 arrivals/step) ===\n\n";
  struct Shape {
    const char* label;
    CostFunctionPtr fn;
  };
  const Shape shapes[] = {
      {"linear", std::make_shared<LinearCost>(0.05, 8.0)},
      {"capped", std::make_shared<AffineCappedCost>(0.5, 4.0, 12)},
      {"step", std::make_shared<StepCost>(6, 4.0)},
      {"concave", std::make_shared<ConcaveCost>(2.5, 2.0)},
  };
  const double budget = 12.0;
  const TimeStep horizon = 59;  // short enough for the full-space oracle

  std::deque<ProblemInstance> instances;
  std::vector<SweepJob> jobs;
  for (const Shape& shape : shapes) {
    std::vector<CostFunctionPtr> fns = {
        shape.fn, std::make_shared<LinearCost>(1.0, 0.0)};
    const ProblemInstance& instance = instances.emplace_back(
        ProblemInstance{CostModel(std::move(fns)),
                        ArrivalSequence::Uniform({1, 1}, horizon), budget});
    jobs.push_back(MakeSimulateJob(
        shape.label, "NAIVE", instance,
        [] { return std::make_unique<NaivePolicy>(); },
        {.record_steps = false}));
    jobs.push_back(MakeSimulateJob(
        shape.label, "ONLINE", instance,
        [] { return std::make_unique<OnlinePolicy>(); },
        {.record_steps = false}));
    // LGM planner + full-space oracle in one job (both over the same
    // instance; the oracle has no metrics of its own).
    SweepJob oracle;
    oracle.scenario = shape.label;
    oracle.label = "OPT";
    oracle.run = [&instance](obs::MetricRegistry& registry,
                             SweepJobResult& result) {
      AStarOptions options;
      options.metrics = &registry;
      const PlanSearchResult lgm = FindOptimalLgmPlan(instance, options);
      const MaintenancePlan opt = ExhaustiveOptimalPlan(instance);
      result.total_cost = lgm.cost;
      sweep_values::kOptCost.Set(result, opt.TotalCost(instance.cost_model));
    };
    jobs.push_back(std::move(oracle));
  }
  const std::vector<SweepJobResult> results =
      bench::RunReportedSweep(jobs, sweep);

  ReportTable table({"shape", "NAIVE", "ONLINE", "OPT_LGM", "OPT(lazy)",
                     "LGM/OPT"});
  for (size_t i = 0; i + 2 < results.size(); i += 3) {
    const double lgm_cost = results[i + 2].total_cost;
    const double opt_cost = sweep_values::kOptCost.Get(results[i + 2]);
    table.AddRow({shapes[i / 3].label,
                  ReportTable::Num(results[i].total_cost, 2),
                  ReportTable::Num(results[i + 1].total_cost, 2),
                  ReportTable::Num(lgm_cost, 2),
                  ReportTable::Num(opt_cost, 2),
                  ReportTable::Num(lgm_cost / opt_cost, 4)});
  }
  table.PrintAligned(std::cout);
  bench::WriteBenchMetrics("abl_cost_shapes", results);
  std::cout << "\nExpected: OPT_LGM = OPT for linear costs (Theorem 2); "
               "LGM/OPT in [1, 2] for all shapes (Theorem 1); asymmetric "
               "plans beat NAIVE most when the expensive table's cost is "
               "flattest (capped/step).\n";
}

}  // namespace
}  // namespace abivm

int main(int argc, char** argv) {
  abivm::Run(argc, argv);
  return 0;
}
