// Ablation: how the cost-function shape changes the value of asymmetric
// batching. Same arrival schedule and budget regime, four shapes for the
// "expensive" table (the cheap table stays linear-through-origin):
//   linear   -- a*k + b (the paper's Section 3.3 workhorse)
//   capped   -- linear then flat (Figure 4's PARTSUPP shape)
//   step     -- ceil(k/B)*c (subadditive, non-concave)
//   concave  -- a*sqrt(k) + b
// Reports NAIVE / OPT_LGM / ONLINE and, where tractable, the true OPT over
// all lazy plans (step costs are where LGM can lose up to 2x).

#include <iostream>
#include <memory>

#include "core/astar.h"
#include "core/exhaustive.h"
#include "core/naive.h"
#include "core/online.h"
#include "sim/report.h"
#include "sim/simulator.h"

namespace abivm {
namespace {

void Run() {
  std::cout << "=== Cost-shape ablation (table0 = shape below, table1 = "
               "linear 1.0*k; 1+1 arrivals/step) ===\n\n";
  struct Shape {
    const char* label;
    CostFunctionPtr fn;
  };
  const Shape shapes[] = {
      {"linear", std::make_shared<LinearCost>(0.05, 8.0)},
      {"capped", std::make_shared<AffineCappedCost>(0.5, 4.0, 12)},
      {"step", std::make_shared<StepCost>(6, 4.0)},
      {"concave", std::make_shared<ConcaveCost>(2.5, 2.0)},
  };
  const double budget = 12.0;
  const TimeStep horizon = 59;  // short enough for the full-space oracle

  ReportTable table({"shape", "NAIVE", "ONLINE", "OPT_LGM", "OPT(lazy)",
                     "LGM/OPT"});
  for (const Shape& shape : shapes) {
    std::vector<CostFunctionPtr> fns = {
        shape.fn, std::make_shared<LinearCost>(1.0, 0.0)};
    const ProblemInstance instance{
        CostModel(std::move(fns)),
        ArrivalSequence::Uniform({1, 1}, horizon), budget};

    NaivePolicy naive;
    const double naive_cost =
        Simulate(instance, naive, {.record_steps = false}).total_cost;
    OnlinePolicy online;
    const double online_cost =
        Simulate(instance, online, {.record_steps = false}).total_cost;
    const PlanSearchResult lgm = FindOptimalLgmPlan(instance);
    const MaintenancePlan opt = ExhaustiveOptimalPlan(instance);
    const double opt_cost = opt.TotalCost(instance.cost_model);

    table.AddRow({shape.label, ReportTable::Num(naive_cost, 2),
                  ReportTable::Num(online_cost, 2),
                  ReportTable::Num(lgm.cost, 2),
                  ReportTable::Num(opt_cost, 2),
                  ReportTable::Num(lgm.cost / opt_cost, 4)});
  }
  table.PrintAligned(std::cout);
  std::cout << "\nExpected: OPT_LGM = OPT for linear costs (Theorem 2); "
               "LGM/OPT in [1, 2] for all shapes (Theorem 1); asymmetric "
               "plans beat NAIVE most when the expensive table's cost is "
               "flattest (capped/step).\n";
}

}  // namespace
}  // namespace abivm

int main() {
  abivm::Run();
  return 0;
}
