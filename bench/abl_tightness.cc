// Ablation / theory check: the Section 3.2 lower-bound instance.
//
// With the paper's gap cost function and 2/eps + 1 arrivals per step, the
// best LGM plan is forced to flush every step while a non-LGM plan can
// stay ahead by pre-processing one modification. The OPT_LGM / OPT ratio
// approaches 2 as eps -> 0 (Theorem 1 is tight).
//
// Each epsilon point (one A* search + one exhaustive search) is an
// independent sweep job; metrics land in BENCH_abl_tightness_metrics.json.

#include <deque>
#include <iostream>

#include "bench/bench_util.h"
#include "core/astar.h"
#include "core/exhaustive.h"
#include "sim/report.h"
#include "sim/sweep.h"
#include "sim/sweep_values.h"

namespace abivm {
namespace {

void Run(int argc, char** argv) {
  const SweepOptions sweep = bench::SweepFromFlags(argc, argv);
  std::cout << "=== Theorem 1 tightness: OPT_LGM / OPT on the Section 3.2 "
               "instance ===\n\n";
  const double c = 10.0;
  const double epsilons[] = {1.0, 0.5, 0.25, 0.125};

  std::deque<ProblemInstance> instances;
  std::vector<SweepJob> jobs;
  for (double eps : epsilons) {
    const auto per_step = static_cast<Count>(2.0 / eps) + 1;
    const TimeStep horizon = 5;  // m = 3 periods
    std::vector<CostFunctionPtr> fns = {MakePaperGapCost(eps, c)};
    const ProblemInstance& instance = instances.emplace_back(
        ProblemInstance{CostModel(std::move(fns)),
                        ArrivalSequence::Uniform({per_step}, horizon), c});
    SweepJob job;
    job.scenario = "eps=" + ReportTable::Num(eps, 3);
    job.label = "LGM_vs_OPT";
    job.run = [&instance](obs::MetricRegistry& registry,
                          SweepJobResult& result) {
      AStarOptions options;
      options.metrics = &registry;
      const PlanSearchResult lgm = FindOptimalLgmPlan(instance, options);
      const MaintenancePlan opt = ExhaustiveOptimalPlan(instance);
      result.total_cost = lgm.cost;
      sweep_values::kOptCost.Set(result, opt.TotalCost(instance.cost_model));
    };
    jobs.push_back(std::move(job));
  }
  const std::vector<SweepJobResult> results =
      bench::RunReportedSweep(jobs, sweep);

  ReportTable table({"epsilon", "arrivals/step", "OPT_LGM", "OPT",
                     "ratio", "2-eps"});
  for (size_t i = 0; i < results.size(); ++i) {
    const double eps = epsilons[i];
    const auto per_step = static_cast<Count>(2.0 / eps) + 1;
    const double opt_cost = sweep_values::kOptCost.Get(results[i]);
    table.AddRow({ReportTable::Num(eps, 3), std::to_string(per_step),
                  ReportTable::Num(results[i].total_cost, 2),
                  ReportTable::Num(opt_cost, 2),
                  ReportTable::Num(results[i].total_cost / opt_cost, 4),
                  ReportTable::Num(2.0 - eps, 3)});
  }
  table.PrintAligned(std::cout);
  bench::WriteBenchMetrics("abl_tightness", results);
  std::cout << "\nExpected: ratio >= 2 - eps for every row (and always "
               "<= 2, Theorem 1).\n";
}

}  // namespace
}  // namespace abivm

int main(int argc, char** argv) {
  abivm::Run(argc, argv);
  return 0;
}
