// Ablation / theory check: the Section 3.2 lower-bound instance.
//
// With the paper's gap cost function and 2/eps + 1 arrivals per step, the
// best LGM plan is forced to flush every step while a non-LGM plan can
// stay ahead by pre-processing one modification. The OPT_LGM / OPT ratio
// approaches 2 as eps -> 0 (Theorem 1 is tight).

#include <iostream>

#include "core/astar.h"
#include "core/exhaustive.h"
#include "sim/report.h"

namespace abivm {
namespace {

void Run() {
  std::cout << "=== Theorem 1 tightness: OPT_LGM / OPT on the Section 3.2 "
               "instance ===\n\n";
  const double c = 10.0;
  ReportTable table({"epsilon", "arrivals/step", "OPT_LGM", "OPT",
                     "ratio", "2-eps"});
  for (double eps : {1.0, 0.5, 0.25, 0.125}) {
    const auto per_step = static_cast<Count>(2.0 / eps) + 1;
    const TimeStep horizon = 5;  // m = 3 periods
    std::vector<CostFunctionPtr> fns = {MakePaperGapCost(eps, c)};
    const ProblemInstance instance{
        CostModel(std::move(fns)),
        ArrivalSequence::Uniform({per_step}, horizon), c};

    const PlanSearchResult lgm = FindOptimalLgmPlan(instance);
    const MaintenancePlan opt = ExhaustiveOptimalPlan(instance);
    const double opt_cost = opt.TotalCost(instance.cost_model);
    table.AddRow({ReportTable::Num(eps, 3), std::to_string(per_step),
                  ReportTable::Num(lgm.cost, 2),
                  ReportTable::Num(opt_cost, 2),
                  ReportTable::Num(lgm.cost / opt_cost, 4),
                  ReportTable::Num(2.0 - eps, 3)});
  }
  table.PrintAligned(std::cout);
  std::cout << "\nExpected: ratio >= 2 - eps for every row (and always "
               "<= 2, Theorem 1).\n";
}

}  // namespace
}  // namespace abivm

int main() {
  abivm::Run();
  return 0;
}
