// Figure 6: total maintenance cost vs refresh time.
//
// Setup mirrors Section 5: one update to each of the two modified base
// tables arrives at every time step; the refresh time varies from 100 to
// 1000; the response-time constraint is fixed. Plans:
//   NAIVE    -- flush everything whenever the constraint trips;
//   OPT_LGM  -- A* plan, full knowledge of arrivals and T (per T);
//   ADAPT    -- the OPT_LGM plan for T0 = 500 adapted to each actual T;
//   ONLINE   -- the heuristic with no advance knowledge.
// Two cost configurations are reported (see EXPERIMENTS.md):
//   * paper-digitized: the cost functions the paper publishes for its
//     Figure 1 with the matching constraint C = 350 ms (the paper itself
//     simulates plans against measured cost functions);
//   * engine-calibrated: functions measured and fitted from our engine.
// Paper's shape to reproduce: NAIVE clearly worst; ADAPT and ONLINE very
// close to OPT_LGM across the whole range.

#include <iostream>

#include "bench/bench_util.h"
#include "core/astar.h"
#include "core/naive.h"
#include "core/online.h"
#include "core/plan_policies.h"
#include "sim/report.h"
#include "sim/simulator.h"

namespace abivm {
namespace {

void RunConfig(const std::string& title, const CostModel& model,
               double budget) {
  std::cout << "--- " << title << " (C = " << ReportTable::Num(budget, 2)
            << " ms) ---\n";
  // ADAPT's base plan: optimized for T0 = 500 with uniform arrivals.
  const TimeStep t0 = 500;
  const ProblemInstance base{
      model, ArrivalSequence::Uniform({1, 1}, t0), budget};
  const PlanSearchResult plan_t0 = FindOptimalLgmPlan(base);

  ReportTable table({"refresh_T", "NAIVE", "OPT_LGM", "ADAPT(T0=500)",
                     "ONLINE", "NAIVE/OPT"});
  for (TimeStep horizon = 100; horizon <= 1000; horizon += 100) {
    const ProblemInstance instance{
        model, ArrivalSequence::Uniform({1, 1}, horizon), budget};

    NaivePolicy naive;
    const double naive_cost =
        Simulate(instance, naive, {.record_steps = false}).total_cost;
    const PlanSearchResult optimal = FindOptimalLgmPlan(instance);
    AdaptPolicy adapt(plan_t0.plan);
    const double adapt_cost =
        Simulate(instance, adapt, {.record_steps = false}).total_cost;
    OnlinePolicy online;
    const double online_cost =
        Simulate(instance, online, {.record_steps = false}).total_cost;

    table.AddRow({std::to_string(horizon), ReportTable::Num(naive_cost, 2),
                  ReportTable::Num(optimal.cost, 2),
                  ReportTable::Num(adapt_cost, 2),
                  ReportTable::Num(online_cost, 2),
                  ReportTable::Num(naive_cost / optimal.cost, 3)});
  }
  table.PrintAligned(std::cout);
  std::cout << "\n";
}

void Run(int argc, char** argv) {
  const double sf = bench::FlagOr(argc, argv, "sf", 0.02);
  const auto seed =
      static_cast<uint64_t>(bench::FlagOr(argc, argv, "seed", 42));

  std::cout << "=== Figure 6: total cost vs refresh time "
            << "(1 + 1 updates per step) ===\n\n";

  {
    std::vector<CostFunctionPtr> fns = {MakePaperFig1LinearSideCost(),
                                        MakePaperFig1ScanSideCost()};
    RunConfig("paper-digitized cost functions", CostModel(std::move(fns)),
              kPaperFig1BudgetMs);
  }
  {
    bench::PaperFixture fx =
        bench::PaperFixture::Make(sf, seed, /*four_way=*/true);
    const bench::CalibratedCosts costs = bench::CalibratePaperCosts(
        fx, 600, {1, 25, 50, 100, 200, 400, 600});
    const CostModel model = bench::ModelFromCalibration(costs, 2);
    RunConfig("engine-calibrated cost functions (4-way MIN view, sf=" +
                  ReportTable::Num(sf, 3) + ")",
              model, model.TotalCost({25, 25}));
  }
  std::cout << "Paper's shape: NAIVE is clearly outperformed by all other "
               "approaches; ADAPT and ONLINE track OPT_LGM closely even "
               "with less advance knowledge.\n";
}

}  // namespace
}  // namespace abivm

int main(int argc, char** argv) {
  abivm::Run(argc, argv);
  return 0;
}
