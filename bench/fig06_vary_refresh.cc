// Figure 6: total maintenance cost vs refresh time.
//
// Setup mirrors Section 5: one update to each of the two modified base
// tables arrives at every time step; the refresh time varies from 100 to
// 1000; the response-time constraint is fixed. Plans:
//   NAIVE    -- flush everything whenever the constraint trips;
//   OPT_LGM  -- A* plan, full knowledge of arrivals and T (per T);
//   ADAPT    -- the OPT_LGM plan for T0 = 500 adapted to each actual T;
//   ONLINE   -- the heuristic with no advance knowledge.
// Two cost configurations are reported (see EXPERIMENTS.md):
//   * paper-digitized: the cost functions the paper publishes for its
//     Figure 1 with the matching constraint C = 350 ms (the paper itself
//     simulates plans against measured cost functions);
//   * engine-calibrated: functions measured and fitted from our engine.
// Paper's shape to reproduce: NAIVE clearly worst; ADAPT and ONLINE very
// close to OPT_LGM across the whole range.
//
// All (T, policy) points are independent, so they run as one parallel
// sweep (--threads=N, 0 = auto); per-job planner/policy metrics land in
// BENCH_fig06_metrics.json.

#include <deque>
#include <iostream>
#include <iterator>
#include <memory>

#include "bench/bench_util.h"
#include "core/astar.h"
#include "core/naive.h"
#include "core/online.h"
#include "core/plan_policies.h"
#include "sim/report.h"
#include "sim/sweep.h"

namespace abivm {
namespace {

std::vector<SweepJobResult> RunConfig(const std::string& title,
                                      const std::string& scenario_prefix,
                                      const CostModel& model, double budget,
                                      const SweepOptions& sweep) {
  std::cout << "--- " << title << " (C = " << ReportTable::Num(budget, 2)
            << " ms) ---\n";
  // ADAPT's base plan: optimized for T0 = 500 with uniform arrivals.
  const TimeStep t0 = 500;
  const ProblemInstance base{
      model, ArrivalSequence::Uniform({1, 1}, t0), budget};
  const PlanSearchResult plan_t0 = FindOptimalLgmPlan(base);

  // One job per (T, policy) point; instances live in the deque until the
  // sweep returns (jobs hold references).
  std::deque<ProblemInstance> instances;
  std::vector<SweepJob> jobs;
  for (TimeStep horizon = 100; horizon <= 1000; horizon += 100) {
    const ProblemInstance& instance = instances.emplace_back(ProblemInstance{
        model, ArrivalSequence::Uniform({1, 1}, horizon), budget});
    const std::string scenario =
        scenario_prefix + "/T=" + std::to_string(horizon);
    jobs.push_back(MakeSimulateJob(
        scenario, "NAIVE", instance,
        [] { return std::make_unique<NaivePolicy>(); },
        {.record_steps = false}));
    jobs.push_back(MakePlanJob(scenario, "OPT_LGM", instance));
    jobs.push_back(MakeSimulateJob(
        scenario, "ADAPT", instance,
        [&plan_t0] { return std::make_unique<AdaptPolicy>(plan_t0.plan); },
        {.record_steps = false}));
    jobs.push_back(MakeSimulateJob(
        scenario, "ONLINE", instance,
        [] { return std::make_unique<OnlinePolicy>(); },
        {.record_steps = false}));
  }
  const std::vector<SweepJobResult> results =
      bench::RunReportedSweep(jobs, sweep);

  ReportTable table({"refresh_T", "NAIVE", "OPT_LGM", "ADAPT(T0=500)",
                     "ONLINE", "NAIVE/OPT"});
  for (size_t i = 0; i + 3 < results.size(); i += 4) {
    const double naive_cost = results[i].total_cost;
    const double opt_cost = results[i + 1].total_cost;
    const TimeStep horizon = 100 + 100 * static_cast<TimeStep>(i / 4);
    table.AddRow({std::to_string(horizon), ReportTable::Num(naive_cost, 2),
                  ReportTable::Num(opt_cost, 2),
                  ReportTable::Num(results[i + 2].total_cost, 2),
                  ReportTable::Num(results[i + 3].total_cost, 2),
                  ReportTable::Num(naive_cost / opt_cost, 3)});
  }
  table.PrintAligned(std::cout);
  std::cout << "\n";
  return results;
}

void Run(int argc, char** argv) {
  const double sf = bench::FlagOr(argc, argv, "sf", 0.02);
  const auto seed =
      static_cast<uint64_t>(bench::FlagOr(argc, argv, "seed", 42));
  const SweepOptions sweep = bench::SweepFromFlags(argc, argv);

  std::cout << "=== Figure 6: total cost vs refresh time "
            << "(1 + 1 updates per step) ===\n\n";

  std::vector<SweepJobResult> all;
  {
    std::vector<CostFunctionPtr> fns = {MakePaperFig1LinearSideCost(),
                                        MakePaperFig1ScanSideCost()};
    std::vector<SweepJobResult> results =
        RunConfig("paper-digitized cost functions", "paper",
                  CostModel(std::move(fns)), kPaperFig1BudgetMs, sweep);
    all.insert(all.end(), std::make_move_iterator(results.begin()),
               std::make_move_iterator(results.end()));
  }
  {
    bench::PaperFixture fx =
        bench::PaperFixture::Make(sf, seed, /*four_way=*/true);
    const bench::CalibratedCosts costs = bench::CalibratePaperCosts(
        fx, 600, {1, 25, 50, 100, 200, 400, 600});
    const CostModel model = bench::ModelFromCalibration(costs, 2);
    std::vector<SweepJobResult> results = RunConfig(
        "engine-calibrated cost functions (4-way MIN view, sf=" +
            ReportTable::Num(sf, 3) + ")",
        "calibrated", model, model.TotalCost({25, 25}), sweep);
    all.insert(all.end(), std::make_move_iterator(results.begin()),
               std::make_move_iterator(results.end()));
  }
  bench::WriteBenchMetrics("fig06", all);
  std::cout << "Paper's shape: NAIVE is clearly outperformed by all other "
               "approaches; ADAPT and ONLINE track OPT_LGM closely even "
               "with less advance knowledge.\n";
}

}  // namespace
}  // namespace abivm

int main(int argc, char** argv) {
  abivm::Run(argc, argv);
  return 0;
}
