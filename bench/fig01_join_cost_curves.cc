// Figure 1 + the introduction example.
//
// Part 1 reproduces Figure 1: the batch-maintenance cost functions of the
// two delta tables of a two-way join R |x| S where one side's join column
// is indexed and the other's is not. In our engine R = part (indexed
// p_partkey) and S = partsupp (no index on ps_partkey):
//   * partsupp deltas probe the part index     -> linear in batch size
//     (the paper's c_dS, "indexed nested-loop join");
//   * part deltas hash-scan partsupp           -> high fixed cost, almost
//     flat in batch size (the paper's c_dR, "scanning S once").
//
// Part 2 reproduces the introduction's comparison: under a response-time
// constraint set where the flat curve crosses it (the paper's 0.35 s at
// ~600 modifications), the symmetric NAIVE strategy pays much more per
// modification than an asymmetric plan that flushes the linear table
// eagerly and batches the other.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/check.h"
#include "core/astar.h"
#include "core/naive.h"
#include "core/online.h"
#include "sim/report.h"
#include "sim/simulator.h"

namespace abivm {
namespace {

void Run(int argc, char** argv) {
  const double sf = bench::FlagOr(argc, argv, "sf", 0.05);
  const auto seed = static_cast<uint64_t>(
      bench::FlagOr(argc, argv, "seed", 42));

  std::cout << "=== Figure 1: cost functions c_dR / c_dS over "
            << "part |x| partsupp (sf=" << sf << ") ===\n";
  std::cout << "(c_dS: partsupp deltas via part index, linear;\n"
            << " c_dR: part deltas via partsupp scan, near-flat)\n\n";

  bench::PaperFixture fx =
      bench::PaperFixture::Make(sf, seed, /*four_way=*/false);
  const std::vector<uint64_t> sizes = {1,   50,  100, 200, 300, 400,
                                       500, 600, 700, 800, 900, 1000};
  const bench::CalibratedCosts costs =
      bench::CalibratePaperCosts(fx, 1000, sizes);

  ReportTable table({"batch_size", "c_dS_partsupp_ms", "c_dR_part_ms"});
  for (size_t i = 0; i < sizes.size(); ++i) {
    table.AddRow({std::to_string(sizes[i]),
                  ReportTable::Num(costs.table0.samples[i].median_ms, 4),
                  ReportTable::Num(costs.table1.samples[i].median_ms, 4)});
  }
  table.PrintAligned(std::cout);
  std::cout << "\nlinear fits: c_dS ~ " << costs.table0.fit.slope
            << "*k + " << costs.table0.fit.intercept
            << "  (r2=" << costs.table0.fit.r_squared << ")\n"
            << "             c_dR ~ " << costs.table1.fit.slope << "*k + "
            << costs.table1.fit.intercept
            << "  (r2=" << costs.table1.fit.r_squared << ")\n\n";

  // The paper's cost-shape regime must survive substrate changes; these
  // are wide-margin invariants (the measured margins are 5-20x larger),
  // so a failure means the asymmetry itself broke, not machine noise.
  const auto& ds = costs.table0;  // index side, samples aligned to sizes
  const auto& dr = costs.table1;  // scan side
  // Linear index path: good linear fit, and cost keeps growing with k.
  ABIVM_CHECK_MSG(ds.fit.r_squared > 0.8,
                  "c_dS is no longer linear in the batch size");
  ABIVM_CHECK_MSG(
      ds.samples.back().median_ms > 5.0 * ds.samples[2].median_ms,
      "c_dS lost its linear growth (k=1000 should dwarf k=100)");
  // The scan-side margins depend on scale: the per-batch intercept is the
  // partsupp scan, so a smoke-sized table (ctest runs --sf=0.002, ~1600
  // rows) does not exhibit the paper's regime. Only assert them when the
  // scanned table is big enough that the intercept dominates.
  const uint64_t scan_rows = fx.db->table(kPartSupp).live_row_count();
  constexpr uint64_t kShapeCheckMinScanRows = 5000;
  if (scan_rows >= kShapeCheckMinScanRows) {
    // Amortized scan path: the per-modification cost collapses with k.
    ABIVM_CHECK_MSG(dr.samples[0].median_ms >
                        20.0 * (dr.samples.back().median_ms / 1000.0),
                    "c_dR per-modification cost no longer amortizes");
    // Asymmetry: at k = 1 the scan side dominates the index side.
    ABIVM_CHECK_MSG(
        dr.samples[0].median_ms > 5.0 * ds.samples[0].median_ms,
        "scan side no longer dominates the index side at k=1");
    std::cout << "[shape-check] c_dS linear, c_dR amortized-flat: OK\n\n";
  } else {
    std::cout << "[shape-check] c_dS linear: OK; scan-side margins "
                 "skipped (partsupp has " << scan_rows << " rows, < "
              << kShapeCheckMinScanRows << " -- smoke scale)\n\n";
  }

  // ---- Part 2: the introduction example ----
  // Two cost configurations (see EXPERIMENTS.md):
  //   * "paper-digitized": the cost functions the paper publishes for its
  //     Figure 1 (c_dS = 0.25k, c_dR rising to ~350 ms at 600 mods), with
  //     the paper's constraint C = 0.35 s. The paper evaluates plans by
  //     simulating against measured cost functions, so this reproduces
  //     the introduction's 0.97 vs 0.42 ms/modification numbers exactly.
  //   * "engine-calibrated": the functions fitted above from OUR engine.
  auto run_intro = [&](const std::string& title, const CostModel& model,
                       double budget) {
    const TimeStep horizon = 3599;  // 1 modification per table per step
    const ProblemInstance instance{
        model, ArrivalSequence::Uniform({1, 1}, horizon), budget};
    const Count total_mods = 2 * static_cast<Count>(horizon + 1);

    NaivePolicy naive;
    const Trace naive_trace =
        Simulate(instance, naive, {.record_steps = false});
    OnlinePolicy online;
    const Trace online_trace =
        Simulate(instance, online, {.record_steps = false});
    const PlanSearchResult optimal = FindOptimalLgmPlan(instance);

    std::cout << "=== Intro example [" << title
              << "], C = " << ReportTable::Num(budget, 3) << " ms ===\n";
    ReportTable intro({"strategy", "total_cost_ms", "ms_per_modification"});
    auto add = [&](const std::string& name, double cost) {
      intro.AddRow({name, ReportTable::Num(cost, 2),
                    ReportTable::Num(
                        cost / static_cast<double>(total_mods), 4)});
    };
    add("NAIVE (symmetric)", naive_trace.total_cost);
    add("ONLINE (asymmetric)", online_trace.total_cost);
    add("OPT_LGM (asymmetric)", optimal.cost);
    intro.PrintAligned(std::cout);
    std::cout << "\n";
  };

  {
    std::vector<CostFunctionPtr> paper_fns = {
        MakePaperFig1LinearSideCost(), MakePaperFig1ScanSideCost()};
    run_intro("paper-digitized cost functions",
              CostModel(std::move(paper_fns)), kPaperFig1BudgetMs);
    std::cout << "Paper's numbers: NAIVE 0.97 ms/mod, asymmetric "
                 "0.42 ms/mod -- the rows above must match closely.\n\n";
  }
  {
    const CostModel model = bench::ModelFromCalibration(costs, 2);
    run_intro("engine-calibrated cost functions", model,
              model.Cost(1, 600));
    std::cout << "Engine-calibrated note: our in-memory scan side is "
                 "less flat than the paper's disk-based system, so the "
                 "asymmetric gain is smaller but same-signed.\n";
  }
}

}  // namespace
}  // namespace abivm

int main(int argc, char** argv) {
  abivm::Run(argc, argv);
  return 0;
}
