// google-benchmark micro-benchmarks of the substrate: join operators,
// batch maintenance, and the A* planner.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/astar.h"
#include "exec/operators.h"
#include "exec/pipeline_workspace.h"

namespace abivm {
namespace {

bench::PaperFixture& SharedFixture() {
  static bench::PaperFixture* fx = [] {
    auto* fixture = new bench::PaperFixture(
        bench::PaperFixture::Make(0.005, 42, /*four_way=*/true));
    return fixture;
  }();
  return *fx;
}

// The join tiers measure the operators the way the maintainer runs them:
// on a held PipelineWorkspace, warm after a couple of calls. Each records
// `warm_grow_events` -- pooled-capacity growth during the timed loop,
// after an explicit warmup -- which the baseline guard pins to exactly 0
// (the deterministic no-alloc-on-warm-path signal).
constexpr int kWorkspaceWarmupIters = 3;

void BM_IndexNestedLoopJoin(benchmark::State& state) {
  bench::PaperFixture& fx = SharedFixture();
  const Table& partsupp = fx.db->table(kPartSupp);
  const Table& supplier = fx.db->table(kSupplier);
  // A batch of partsupp rows joined against the supplier index.
  ExecStats stats;
  DeltaBatch batch = ScanToBatch(partsupp, 0, &stats).value();
  batch.resize(static_cast<size_t>(state.range(0)));
  const size_t key = partsupp.schema().ColumnIndex("ps_suppkey");
  PipelineWorkspace ws;
  PooledBatch out;
  const auto run = [&] {
    ws.BeginBatch();
    ExecStats s;
    (void)JoinBatchInto(batch.data(), batch.size(), key, supplier, 0, {3},
                        0, ws, &out, &s);
    benchmark::DoNotOptimize(out.size());
    ws.FinishBatch();
  };
  for (int i = 0; i < kWorkspaceWarmupIters; ++i) run();
  const uint64_t grow0 = ws.grow_events();
  for (auto _ : state) run();
  state.counters["warm_grow_events"] =
      static_cast<double>(ws.grow_events() - grow0);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_IndexNestedLoopJoin)->Arg(16)->Arg(256)->Arg(1024);

// Pure probe cost of the flat open-addressing index: no output rows are
// materialized, so this isolates the hash + bucket walk + visibility
// check that IndexNestedLoopJoin pays per input row.
void BM_FlatIndexProbe(benchmark::State& state) {
  bench::PaperFixture& fx = SharedFixture();
  const Table& partsupp = fx.db->table(kPartSupp);
  const Table& supplier = fx.db->table(kSupplier);
  ExecStats stats;
  DeltaBatch batch = ScanToBatch(partsupp, 0, &stats).value();
  batch.resize(static_cast<size_t>(state.range(0)));
  const Table::FlatIndex* index = supplier.IndexOn(0);
  uint64_t matches = 0;
  for (auto _ : state) {
    for (const DeltaRow& delta : batch) {
      const Value& key = delta.row[1];  // ps_suppkey
      supplier.ProbeIndexHashed(*index, index->HashOf(key), key, 0,
                                [&](RowId, const Row&) { ++matches; });
    }
  }
  benchmark::DoNotOptimize(matches);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_FlatIndexProbe)->Arg(256)->Arg(1024);

void BM_HashJoinScan(benchmark::State& state) {
  bench::PaperFixture& fx = SharedFixture();
  const Table& partsupp = fx.db->table(kPartSupp);
  const Table& supplier = fx.db->table(kSupplier);
  // A batch of supplier rows joined against partsupp (no index: scan).
  ExecStats stats;
  DeltaBatch batch = ScanToBatch(supplier, 0, &stats).value();
  batch.resize(std::min<size_t>(batch.size(),
                                static_cast<size_t>(state.range(0))));
  const size_t ps_key = partsupp.schema().ColumnIndex("ps_suppkey");
  PipelineWorkspace ws;
  PooledBatch out;
  const auto run = [&] {
    ws.BeginBatch();
    ExecStats s;
    (void)JoinBatchInto(batch.data(), batch.size(), 0, partsupp, ps_key,
                        {3}, 0, ws, &out, &s);
    benchmark::DoNotOptimize(out.size());
    ws.FinishBatch();
  };
  for (int i = 0; i < kWorkspaceWarmupIters; ++i) run();
  const uint64_t grow0 = ws.grow_events();
  for (auto _ : state) run();
  state.counters["warm_grow_events"] =
      static_cast<double>(ws.grow_events() - grow0);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_HashJoinScan)->Arg(1)->Arg(16)->Arg(50);

// The same join on a COLD workspace every iteration: the price of losing
// the pool. Warm (BM_HashJoinScan) must not be slower than this tier;
// the gap is what PipelineWorkspace buys.
void BM_HashJoinScanColdWorkspace(benchmark::State& state) {
  bench::PaperFixture& fx = SharedFixture();
  const Table& partsupp = fx.db->table(kPartSupp);
  const Table& supplier = fx.db->table(kSupplier);
  ExecStats stats;
  DeltaBatch batch = ScanToBatch(supplier, 0, &stats).value();
  batch.resize(std::min<size_t>(batch.size(),
                                static_cast<size_t>(state.range(0))));
  const size_t ps_key = partsupp.schema().ColumnIndex("ps_suppkey");
  for (auto _ : state) {
    PipelineWorkspace ws;
    PooledBatch out;
    ExecStats s;
    (void)JoinBatchInto(batch.data(), batch.size(), 0, partsupp, ps_key,
                        {3}, 0, ws, &out, &s);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_HashJoinScanColdWorkspace)->Arg(16)->Arg(50);

// Partitioned scan-side probe at Arg(0) threads (= partitions), forced on
// regardless of table size. Output is bit-identical to the sequential
// tier; the baseline guard only pins this tier against itself.
void BM_PartitionedProbe(benchmark::State& state) {
  bench::PaperFixture& fx = SharedFixture();
  const Table& partsupp = fx.db->table(kPartSupp);
  const Table& supplier = fx.db->table(kSupplier);
  ExecStats stats;
  DeltaBatch batch = ScanToBatch(supplier, 0, &stats).value();
  batch.resize(std::min<size_t>(batch.size(), size_t{16}));
  const size_t ps_key = partsupp.schema().ColumnIndex("ps_suppkey");
  const auto threads = static_cast<size_t>(state.range(0));
  ThreadPool pool(threads);
  PipelineWorkspace ws;
  ws.EnableParallelProbe(&pool, threads, /*min_rows=*/0);
  PooledBatch out;
  for (auto _ : state) {
    ws.BeginBatch();
    ExecStats s;
    (void)JoinBatchInto(batch.data(), batch.size(), 0, partsupp, ps_key,
                        {3}, 0, ws, &out, &s);
    benchmark::DoNotOptimize(out.size());
    ws.FinishBatch();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_PartitionedProbe)->Arg(1)->Arg(4);

void BM_ProcessBatchPartsupp(benchmark::State& state) {
  bench::PaperFixture& fx = SharedFixture();
  const auto k = static_cast<size_t>(state.range(0));
  while (fx.maintainer->PendingCount(0) < k) {
    fx.updater->UpdatePartSuppSupplycost();
  }
  for (int i = 0; i < kWorkspaceWarmupIters; ++i) {
    fx.maintainer->ProcessBatch(0, k, /*dry_run=*/true);
  }
  const uint64_t grow0 = fx.maintainer->workspace().grow_events();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.maintainer->ProcessBatch(0, k, /*dry_run=*/true));
  }
  state.counters["warm_grow_events"] = static_cast<double>(
      fx.maintainer->workspace().grow_events() - grow0);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(k));
}
BENCHMARK(BM_ProcessBatchPartsupp)->Arg(1)->Arg(64)->Arg(512);

void BM_ProcessBatchSupplier(benchmark::State& state) {
  bench::PaperFixture& fx = SharedFixture();
  const auto k = static_cast<size_t>(state.range(0));
  while (fx.maintainer->PendingCount(1) < k) {
    fx.updater->UpdateSupplierNationkey();
  }
  for (int i = 0; i < kWorkspaceWarmupIters; ++i) {
    fx.maintainer->ProcessBatch(1, k, /*dry_run=*/true);
  }
  const uint64_t grow0 = fx.maintainer->workspace().grow_events();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.maintainer->ProcessBatch(1, k, /*dry_run=*/true));
  }
  state.counters["warm_grow_events"] = static_cast<double>(
      fx.maintainer->workspace().grow_events() - grow0);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(k));
}
BENCHMARK(BM_ProcessBatchSupplier)->Arg(1)->Arg(16)->Arg(64);

void BM_ProcessBatchPartsuppProfiled(benchmark::State& state) {
  // Same work as BM_ProcessBatchPartsupp but with per-operator profiling
  // on; the delta vs the plain run is the price of attribution (per-stage
  // clock reads + StageStats slices). The plain runs above stay on the
  // null-registry fast path and are the regression guard for it.
  bench::PaperFixture& fx = SharedFixture();
  const auto k = static_cast<size_t>(state.range(0));
  while (fx.maintainer->PendingCount(0) < k) {
    fx.updater->UpdatePartSuppSupplycost();
  }
  fx.maintainer->EnableProfiling(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.maintainer->ProcessBatch(0, k, /*dry_run=*/true));
  }
  // SharedFixture is shared across benchmarks: leave profiling off.
  fx.maintainer->EnableProfiling(false);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(k));
}
BENCHMARK(BM_ProcessBatchPartsuppProfiled)->Arg(64)->Arg(512);

void BM_AStarPlanner(benchmark::State& state) {
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0)};
  const ProblemInstance instance{
      CostModel(std::move(fns)),
      ArrivalSequence::Uniform({1, 1}, state.range(0)), 15.0};
  uint64_t nodes = 0;
  for (auto _ : state) {
    const PlanSearchResult result = FindOptimalLgmPlan(instance);
    nodes += result.nodes_expanded;
    benchmark::DoNotOptimize(result.cost);
  }
  state.counters["nodes/run"] =
      static_cast<double>(nodes) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_AStarPlanner)->Arg(100)->Arg(400)->Arg(1600);

void BM_RecomputeFromScratch(benchmark::State& state) {
  bench::PaperFixture& fx = SharedFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.maintainer->RecomputeAtWatermarks());
  }
}
BENCHMARK(BM_RecomputeFromScratch);

}  // namespace
}  // namespace abivm

BENCHMARK_MAIN();
