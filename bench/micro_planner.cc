// Planner hot-path micro-benchmark: times FindOptimalLgmPlan across a
// grid of instance sizes and cost shapes and writes BENCH_planner.json
// (per-instance best/mean wall ms, nodes expanded, peak frontier) plus a
// geometric-mean summary over the largest tier. This file is the tracked
// perf baseline for the planner: run it before and after any change to
// core/astar.* and compare the "large" geomean.
//
//   micro_planner                # full grid, best-of-5 timing
//   micro_planner --reps=9      # more repetitions per point
//   micro_planner --smoke=1     # tiny grid; used by scripts/check.sh
//                               # under asan/tsan to exercise the
//                               # planner's scratch-buffer reuse
//                               # (writes BENCH_planner_smoke.json)
//   micro_planner --out-suffix=1  # write BENCH_planner_baseline.json
//
// The reference result (this machine, default build) is committed at
// bench/baselines/BENCH_planner.json.

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/astar.h"
#include "obs/json.h"

namespace abivm {
namespace {

struct GridPoint {
  std::string name;
  std::string tier;  // "small" | "medium" | "large"
  ProblemInstance instance;
};

struct PointResult {
  std::string name;
  std::string tier;
  size_t n = 0;
  TimeStep horizon = 0;
  double wall_ms_best = 0.0;
  double wall_ms_mean = 0.0;
  double cost = 0.0;
  uint64_t nodes_expanded = 0;
  uint64_t nodes_generated = 0;
  uint64_t reexpansions = 0;
  uint64_t frontier_peak = 0;
};

// The grid spans the shapes the figure/ablation drivers actually plan
// over: symmetric and asymmetric linear costs, a capped scan side, and a
// non-concave step function (which disables the closed set's heuristic
// fast path for that table but must stay correct).
std::vector<GridPoint> MakeGrid(bool smoke) {
  std::vector<GridPoint> grid;
  auto add = [&grid](std::string name, std::string tier,
                     std::vector<CostFunctionPtr> fns, StateVec rates,
                     TimeStep horizon, double budget) {
    grid.push_back(GridPoint{
        std::move(name), std::move(tier),
        ProblemInstance{CostModel(std::move(fns)),
                        ArrivalSequence::Uniform(std::move(rates), horizon),
                        budget}});
  };

  const TimeStep t_small = smoke ? 40 : 200;
  const TimeStep t_medium = smoke ? 80 : 800;
  const TimeStep t_large = smoke ? 120 : 3200;

  add("lin1_small", "small", {std::make_shared<LinearCost>(1.0, 0.0)}, {1},
      t_small, 5.0);
  add("asym2_small", "small",
      {std::make_shared<LinearCost>(0.01, 10.0),
       std::make_shared<LinearCost>(1.0, 0.0)},
      {1, 1}, t_small, 14.0);
  add("asym2_medium", "medium",
      {std::make_shared<LinearCost>(0.3, 0.5),
       std::make_shared<LinearCost>(0.2, 6.0)},
      {1, 1}, t_medium, 15.0);
  add("capped2_medium", "medium",
      {std::make_shared<AffineCappedCost>(0.107, 2.857, 600),
       std::make_shared<LinearCost>(0.25, 0.0)},
      {3, 2}, t_medium, 6.0);
  add("asym2_large", "large",
      {std::make_shared<LinearCost>(0.3, 0.5),
       std::make_shared<LinearCost>(0.2, 6.0)},
      {1, 1}, t_large, 15.0);
  add("capped2_large", "large",
      {std::make_shared<AffineCappedCost>(0.107, 2.857, 600),
       std::make_shared<LinearCost>(0.25, 0.0)},
      {3, 2}, t_large, 6.0);
  add("step2_large", "large",
      {std::make_shared<StepCost>(4, 1.0),
       std::make_shared<LinearCost>(0.5, 1.0)},
      {2, 1}, t_large, 9.0);
  add("tri3_large", "large",
      {std::make_shared<LinearCost>(0.05, 4.0),
       std::make_shared<LinearCost>(0.8, 0.0),
       std::make_shared<ConcaveCost>(1.5, 0.5)},
      {1, 2, 1}, smoke ? 100 : 1200, 16.0);
  return grid;
}

PointResult RunPoint(const GridPoint& point, int reps) {
  PointResult out;
  out.name = point.name;
  out.tier = point.tier;
  out.n = point.instance.n();
  out.horizon = point.instance.horizon();
  out.wall_ms_best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const Stopwatch watch;
    const PlanSearchResult result = FindOptimalLgmPlan(point.instance);
    const double ms = watch.ElapsedMs();
    out.wall_ms_best = std::min(out.wall_ms_best, ms);
    out.wall_ms_mean += ms / reps;
    out.cost = result.cost;
    out.nodes_expanded = result.nodes_expanded;
    out.nodes_generated = result.nodes_generated;
    out.reexpansions = result.reexpansions;
    out.frontier_peak = result.frontier_peak;
  }
  return out;
}

double GeomeanWallMs(const std::vector<PointResult>& results,
                     const std::string& tier) {
  double log_sum = 0.0;
  size_t count = 0;
  for (const PointResult& r : results) {
    if (r.tier != tier) continue;
    log_sum += std::log(std::max(r.wall_ms_best, 1e-6));
    ++count;
  }
  return count == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(count));
}

void WriteJson(std::ostream& os, const std::vector<PointResult>& results,
               int reps, bool smoke) {
  obs::JsonWriter writer(os);
  writer.BeginObject();
  writer.Field("bench", "micro_planner");
  writer.Field("smoke", smoke);
  writer.Field("reps", static_cast<int64_t>(reps));
  writer.Key("instances");
  writer.BeginArray();
  for (const PointResult& r : results) {
    writer.BeginObject();
    writer.Field("name", r.name);
    writer.Field("tier", r.tier);
    writer.Field("n", static_cast<uint64_t>(r.n));
    writer.Field("horizon", static_cast<int64_t>(r.horizon));
    writer.Field("wall_ms_best", r.wall_ms_best);
    writer.Field("wall_ms_mean", r.wall_ms_mean);
    writer.Field("cost", r.cost);
    writer.Field("nodes_expanded", r.nodes_expanded);
    writer.Field("nodes_generated", r.nodes_generated);
    writer.Field("reexpansions", r.reexpansions);
    writer.Field("frontier_peak", r.frontier_peak);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("geomean_wall_ms_best");
  writer.BeginObject();
  for (const char* tier : {"small", "medium", "large"}) {
    writer.Field(tier, GeomeanWallMs(results, tier));
  }
  writer.EndObject();
  writer.EndObject();
}

int Main(int argc, char** argv) {
  const bool smoke = bench::FlagOr(argc, argv, "smoke", 0.0) != 0.0;
  const int reps = static_cast<int>(
      bench::FlagOr(argc, argv, "reps", smoke ? 2.0 : 5.0));
  const bool baseline =
      bench::FlagOr(argc, argv, "out-suffix", 0.0) != 0.0;

  const std::vector<GridPoint> grid = MakeGrid(smoke);
  std::vector<PointResult> results;
  results.reserve(grid.size());
  for (const GridPoint& point : grid) {
    PointResult r = RunPoint(point, reps);
    std::printf("[micro_planner] %-14s tier=%-6s T=%-5lld best %8.3f ms  "
                "expanded %llu  reexp %llu\n",
                r.name.c_str(), r.tier.c_str(),
                static_cast<long long>(r.horizon), r.wall_ms_best,
                static_cast<unsigned long long>(r.nodes_expanded),
                static_cast<unsigned long long>(r.reexpansions));
    results.push_back(std::move(r));
  }
  std::printf("[micro_planner] geomean wall_ms_best: small %.3f  "
              "medium %.3f  large %.3f\n",
              GeomeanWallMs(results, "small"),
              GeomeanWallMs(results, "medium"),
              GeomeanWallMs(results, "large"));

  // Smoke runs (ctest / check.sh) write to their own file so a CI pass
  // never clobbers a real benchmark result sitting in the build dir.
  const std::string path = smoke      ? "BENCH_planner_smoke.json"
                           : baseline ? "BENCH_planner_baseline.json"
                                      : "BENCH_planner.json";
  std::ofstream out(path);
  WriteJson(out, results, reps, smoke);
  out << "\n";
  std::cout << "[micro_planner] wrote " << results.size()
            << " instance records to " << path << "\n";
  return 0;
}

}  // namespace
}  // namespace abivm

int main(int argc, char** argv) { return abivm::Main(argc, argv); }
