// Planner hot-path micro-benchmark: times FindOptimalLgmPlan across a
// grid of instance sizes and cost shapes and writes BENCH_planner.json
// (per-instance best/mean wall ms, nodes expanded, peak frontier) plus a
// geometric-mean summary over the largest tier. This file is the tracked
// perf baseline for the planner: run it before and after any change to
// core/astar.* and compare the "large" geomean.
//
// The "replan" tier times SEQUENCES of small projected instances (the
// ReplanningPolicy workload) warm -- one PlannerWorkspace across the
// sequence -- against cold (scratch workspace per search), CHECKs the two
// are bit-identical, and records the warm path's grow_events so the
// baseline guard can pin "reuse stops allocating" deterministically.
//
//   micro_planner                # full grid, best-of-5 timing
//   micro_planner --reps=9      # more repetitions per point
//   micro_planner --smoke=1     # tiny grid; used by scripts/check.sh
//                               # under asan/tsan to exercise the
//                               # planner's scratch-buffer reuse
//                               # (writes BENCH_planner_smoke.json)
//   micro_planner --out-suffix=1  # write BENCH_planner_baseline.json
//
// The reference result (this machine, default build) is committed at
// bench/baselines/BENCH_planner.json.

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "core/astar.h"
#include "core/astar_workspace.h"
#include "obs/json.h"

namespace abivm {
namespace {

struct GridPoint {
  std::string name;
  std::string tier;  // "small" | "medium" | "large"
  ProblemInstance instance;
};

struct PointResult {
  std::string name;
  std::string tier;
  size_t n = 0;
  TimeStep horizon = 0;
  double wall_ms_best = 0.0;
  double wall_ms_mean = 0.0;
  double cost = 0.0;
  uint64_t nodes_expanded = 0;
  uint64_t nodes_generated = 0;
  uint64_t reexpansions = 0;
  uint64_t frontier_peak = 0;
  // Replan-tier extras: the tier times a SEQUENCE of searches, warm
  // (one PlannerWorkspace across the sequence, reported as
  // wall_ms_best/mean) against cold (scratch workspace per search).
  double wall_ms_cold_best = 0.0;
  uint64_t searches = 0;
  // Warm-path searches during which some pooled buffer grew; after the
  // sequence's first few shapes this must go quiet -- the deterministic
  // "reuse actually avoids allocation" signal the baseline guard pins.
  uint64_t warm_grow_events = 0;
};

// The grid spans the shapes the figure/ablation drivers actually plan
// over: symmetric and asymmetric linear costs, a capped scan side, and a
// non-concave step function (which disables the closed set's heuristic
// fast path for that table but must stay correct).
std::vector<GridPoint> MakeGrid(bool smoke) {
  std::vector<GridPoint> grid;
  auto add = [&grid](std::string name, std::string tier,
                     std::vector<CostFunctionPtr> fns, StateVec rates,
                     TimeStep horizon, double budget) {
    grid.push_back(GridPoint{
        std::move(name), std::move(tier),
        ProblemInstance{CostModel(std::move(fns)),
                        ArrivalSequence::Uniform(std::move(rates), horizon),
                        budget}});
  };

  const TimeStep t_small = smoke ? 40 : 200;
  const TimeStep t_medium = smoke ? 80 : 800;
  const TimeStep t_large = smoke ? 120 : 3200;

  add("lin1_small", "small", {std::make_shared<LinearCost>(1.0, 0.0)}, {1},
      t_small, 5.0);
  add("asym2_small", "small",
      {std::make_shared<LinearCost>(0.01, 10.0),
       std::make_shared<LinearCost>(1.0, 0.0)},
      {1, 1}, t_small, 14.0);
  add("asym2_medium", "medium",
      {std::make_shared<LinearCost>(0.3, 0.5),
       std::make_shared<LinearCost>(0.2, 6.0)},
      {1, 1}, t_medium, 15.0);
  add("capped2_medium", "medium",
      {std::make_shared<AffineCappedCost>(0.107, 2.857, 600),
       std::make_shared<LinearCost>(0.25, 0.0)},
      {3, 2}, t_medium, 6.0);
  add("asym2_large", "large",
      {std::make_shared<LinearCost>(0.3, 0.5),
       std::make_shared<LinearCost>(0.2, 6.0)},
      {1, 1}, t_large, 15.0);
  add("capped2_large", "large",
      {std::make_shared<AffineCappedCost>(0.107, 2.857, 600),
       std::make_shared<LinearCost>(0.25, 0.0)},
      {3, 2}, t_large, 6.0);
  add("step2_large", "large",
      {std::make_shared<StepCost>(4, 1.0),
       std::make_shared<LinearCost>(0.5, 1.0)},
      {2, 1}, t_large, 9.0);
  add("tri3_large", "large",
      {std::make_shared<LinearCost>(0.05, 4.0),
       std::make_shared<LinearCost>(0.8, 0.0),
       std::make_shared<ConcaveCost>(1.5, 0.5)},
      {1, 2, 1}, smoke ? 100 : 1200, 16.0);
  return grid;
}

// A replanning-shaped workload: many small projected instances of one
// family, exactly what ReplanningPolicy hands the planner every window --
// step 0 carries the accumulated backlog, the tail is a rate projection.
struct ReplanPoint {
  std::string name;
  std::vector<ProblemInstance> instances;
};

std::vector<ReplanPoint> MakeReplanSequences(bool smoke) {
  const size_t seq_len = smoke ? 8 : 64;
  const TimeStep horizon = smoke ? 20 : 40;
  std::vector<ReplanPoint> points;

  auto add = [&](std::string name, std::vector<CostFunctionPtr> fns,
                 StateVec rates, double budget) {
    ReplanPoint point;
    point.name = std::move(name);
    const size_t n = rates.size();
    for (size_t s = 0; s < seq_len; ++s) {
      // Deterministic per-window backlog: what accumulated since the
      // last replan varies window to window but stays modest.
      StateVec backlog(n, 0);
      for (size_t i = 0; i < n; ++i) {
        backlog[i] = static_cast<Count>((s * (i + 2) + i) % 5);
      }
      std::vector<StateVec> steps;
      steps.reserve(static_cast<size_t>(horizon) + 1);
      steps.push_back(std::move(backlog));
      for (TimeStep t = 1; t <= horizon; ++t) steps.push_back(rates);
      // CostModel is cheap to copy (shared_ptr cost functions).
      std::vector<CostFunctionPtr> fns_copy = fns;
      point.instances.push_back(ProblemInstance{
          CostModel(std::move(fns_copy)), ArrivalSequence(std::move(steps)),
          budget});
    }
    points.push_back(std::move(point));
  };

  add("replan_asym2",
      {std::make_shared<LinearCost>(0.3, 0.5),
       std::make_shared<LinearCost>(0.2, 6.0)},
      {1, 1}, 15.0);
  add("replan_capped2",
      {std::make_shared<AffineCappedCost>(0.107, 2.857, 600),
       std::make_shared<LinearCost>(0.25, 0.0)},
      {3, 2}, 6.0);
  return points;
}

PointResult RunReplanPoint(const ReplanPoint& point, int reps) {
  PointResult out;
  out.name = point.name;
  out.tier = "replan";
  out.n = point.instances.front().n();
  out.horizon = point.instances.front().horizon();
  out.searches = point.instances.size();
  out.wall_ms_best = 1e300;
  out.wall_ms_cold_best = 1e300;

  for (int rep = 0; rep < reps; ++rep) {
    // Warm pass: one workspace across the whole sequence (the
    // ReplanningPolicy usage pattern). Fresh per rep so growth is
    // deterministic and the cold/warm comparison stays fair.
    PlannerWorkspace workspace;
    std::vector<PlanSearchResult> warm;
    warm.reserve(point.instances.size());
    const Stopwatch warm_watch;
    for (const ProblemInstance& instance : point.instances) {
      warm.push_back(FindOptimalLgmPlan(instance, {}, workspace));
    }
    const double warm_ms = warm_watch.ElapsedMs();

    // Cold pass: scratch workspace per search.
    std::vector<PlanSearchResult> cold;
    cold.reserve(point.instances.size());
    const Stopwatch cold_watch;
    for (const ProblemInstance& instance : point.instances) {
      cold.push_back(FindOptimalLgmPlan(instance));
    }
    const double cold_ms = cold_watch.ElapsedMs();

    // Reuse must not change one bit of any search in the sequence.
    for (size_t s = 0; s < point.instances.size(); ++s) {
      ABIVM_CHECK_MSG(
          warm[s].cost == cold[s].cost &&
              warm[s].nodes_expanded == cold[s].nodes_expanded &&
              warm[s].nodes_generated == cold[s].nodes_generated &&
              warm[s].reexpansions == cold[s].reexpansions &&
              warm[s].plan.actions() == cold[s].plan.actions(),
          "warm search diverged from cold at " << point.name << "[" << s
                                               << "]");
    }

    out.wall_ms_best = std::min(out.wall_ms_best, warm_ms);
    out.wall_ms_cold_best = std::min(out.wall_ms_cold_best, cold_ms);
    out.wall_ms_mean += warm_ms / reps;
    out.warm_grow_events = workspace.grow_events();
    out.cost = 0.0;
    out.nodes_expanded = out.nodes_generated = out.reexpansions = 0;
    for (const PlanSearchResult& r : warm) {
      out.cost += r.cost;
      out.nodes_expanded += r.nodes_expanded;
      out.nodes_generated += r.nodes_generated;
      out.reexpansions += r.reexpansions;
      out.frontier_peak = std::max(out.frontier_peak, r.frontier_peak);
    }
  }
  return out;
}

PointResult RunPoint(const GridPoint& point, int reps) {
  PointResult out;
  out.name = point.name;
  out.tier = point.tier;
  out.n = point.instance.n();
  out.horizon = point.instance.horizon();
  out.wall_ms_best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const Stopwatch watch;
    const PlanSearchResult result = FindOptimalLgmPlan(point.instance);
    const double ms = watch.ElapsedMs();
    out.wall_ms_best = std::min(out.wall_ms_best, ms);
    out.wall_ms_mean += ms / reps;
    out.cost = result.cost;
    out.nodes_expanded = result.nodes_expanded;
    out.nodes_generated = result.nodes_generated;
    out.reexpansions = result.reexpansions;
    out.frontier_peak = result.frontier_peak;
  }
  return out;
}

double GeomeanWallMs(const std::vector<PointResult>& results,
                     const std::string& tier) {
  double log_sum = 0.0;
  size_t count = 0;
  for (const PointResult& r : results) {
    if (r.tier != tier) continue;
    log_sum += std::log(std::max(r.wall_ms_best, 1e-6));
    ++count;
  }
  return count == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(count));
}

void WriteJson(std::ostream& os, const std::vector<PointResult>& results,
               int reps, bool smoke) {
  obs::JsonWriter writer(os);
  writer.BeginObject();
  writer.Field("bench", "micro_planner");
  writer.Field("smoke", smoke);
  writer.Field("reps", static_cast<int64_t>(reps));
  writer.Key("instances");
  writer.BeginArray();
  for (const PointResult& r : results) {
    writer.BeginObject();
    writer.Field("name", r.name);
    writer.Field("tier", r.tier);
    writer.Field("n", static_cast<uint64_t>(r.n));
    writer.Field("horizon", static_cast<int64_t>(r.horizon));
    writer.Field("wall_ms_best", r.wall_ms_best);
    writer.Field("wall_ms_mean", r.wall_ms_mean);
    writer.Field("cost", r.cost);
    writer.Field("nodes_expanded", r.nodes_expanded);
    writer.Field("nodes_generated", r.nodes_generated);
    writer.Field("reexpansions", r.reexpansions);
    writer.Field("frontier_peak", r.frontier_peak);
    if (r.tier == "replan") {
      writer.Field("wall_ms_cold_best", r.wall_ms_cold_best);
      writer.Field("searches", r.searches);
      writer.Field("warm_grow_events", r.warm_grow_events);
    }
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("geomean_wall_ms_best");
  writer.BeginObject();
  for (const char* tier : {"small", "medium", "large", "replan"}) {
    writer.Field(tier, GeomeanWallMs(results, tier));
  }
  writer.EndObject();
  // Warm-over-cold wall-clock ratio across the replan tier (< 1.0 means
  // workspace reuse pays for itself on the replanning-shaped workload).
  double log_ratio = 0.0;
  size_t ratio_count = 0;
  for (const PointResult& r : results) {
    if (r.tier != "replan" || r.wall_ms_cold_best <= 0.0) continue;
    log_ratio += std::log(std::max(r.wall_ms_best, 1e-6) /
                          r.wall_ms_cold_best);
    ++ratio_count;
  }
  writer.Field("geomean_warm_over_cold",
               ratio_count == 0
                   ? 0.0
                   : std::exp(log_ratio / static_cast<double>(ratio_count)));
  writer.EndObject();
}

int Main(int argc, char** argv) {
  const bool smoke = bench::FlagOr(argc, argv, "smoke", 0.0) != 0.0;
  const int reps = static_cast<int>(
      bench::FlagOr(argc, argv, "reps", smoke ? 2.0 : 5.0));
  const bool baseline =
      bench::FlagOr(argc, argv, "out-suffix", 0.0) != 0.0;

  const std::vector<GridPoint> grid = MakeGrid(smoke);
  std::vector<PointResult> results;
  results.reserve(grid.size());
  for (const GridPoint& point : grid) {
    PointResult r = RunPoint(point, reps);
    std::printf("[micro_planner] %-14s tier=%-6s T=%-5lld best %8.3f ms  "
                "expanded %llu  reexp %llu\n",
                r.name.c_str(), r.tier.c_str(),
                static_cast<long long>(r.horizon), r.wall_ms_best,
                static_cast<unsigned long long>(r.nodes_expanded),
                static_cast<unsigned long long>(r.reexpansions));
    results.push_back(std::move(r));
  }
  for (const ReplanPoint& point : MakeReplanSequences(smoke)) {
    PointResult r = RunReplanPoint(point, reps);
    std::printf("[micro_planner] %-14s tier=replan S=%-5llu warm %8.3f ms  "
                "cold %8.3f ms  grow %llu/%llu\n",
                r.name.c_str(),
                static_cast<unsigned long long>(r.searches), r.wall_ms_best,
                r.wall_ms_cold_best,
                static_cast<unsigned long long>(r.warm_grow_events),
                static_cast<unsigned long long>(r.searches));
    results.push_back(std::move(r));
  }
  std::printf("[micro_planner] geomean wall_ms_best: small %.3f  "
              "medium %.3f  large %.3f  replan %.3f\n",
              GeomeanWallMs(results, "small"),
              GeomeanWallMs(results, "medium"),
              GeomeanWallMs(results, "large"),
              GeomeanWallMs(results, "replan"));

  // Smoke runs (ctest / check.sh) write to their own file so a CI pass
  // never clobbers a real benchmark result sitting in the build dir.
  const std::string path = smoke      ? "BENCH_planner_smoke.json"
                           : baseline ? "BENCH_planner_baseline.json"
                                      : "BENCH_planner.json";
  std::ofstream out(path);
  WriteJson(out, results, reps, smoke);
  out << "\n";
  std::cout << "[micro_planner] wrote " << results.size()
            << " instance records to " << path << "\n";
  return 0;
}

}  // namespace
}  // namespace abivm

int main(int argc, char** argv) { return abivm::Main(argc, argv); }
