// Figure 5: validation of the simulation methodology.
//
// The paper evaluates plans by simulating them against measured cost
// functions, and validates the simulation by also running the same plans
// on the real system. We do the same: calibrate cost functions from the
// live engine, then run NAIVE / ONLINE / OPT_LGM both through the
// cost-model simulator and on the real engine, comparing total costs.
// The paper's finding to reproduce: "negligible difference between the
// simulated costs and the actual ones" (same ranking, ratios near 1).

#include <iostream>

#include "bench/bench_util.h"
#include "core/astar.h"
#include "core/naive.h"
#include "core/online.h"
#include "core/plan_policies.h"
#include "sim/report.h"
#include "sim/simulator.h"

namespace abivm {
namespace {

ArrivalSequence PaperArrivals(size_t n, TimeStep horizon) {
  StateVec rates(n, 0);
  rates[0] = 1;
  rates[1] = 1;
  return ArrivalSequence::Uniform(rates, horizon);
}

void Run(int argc, char** argv) {
  const double sf = bench::FlagOr(argc, argv, "sf", 0.005);
  const auto seed =
      static_cast<uint64_t>(bench::FlagOr(argc, argv, "seed", 42));
  const auto horizon = static_cast<TimeStep>(
      bench::FlagOr(argc, argv, "t", 400));

  std::cout << "=== Figure 5: simulated vs actual plan cost (sf=" << sf
            << ", T=" << horizon << ") ===\n\n";

  // Calibrate on a scratch fixture so the measured run starts clean.
  bench::PaperFixture calibration_fx =
      bench::PaperFixture::Make(sf, seed, /*four_way=*/true);
  const bench::CalibratedCosts costs = bench::CalibratePaperCosts(
      calibration_fx, 600, {1, 25, 50, 100, 200, 400, 600});
  const size_t n = calibration_fx.n();
  const CostModel model = bench::ModelFromCalibration(costs, n);
  // Budget that lets roughly 25 modifications of each table accumulate.
  const double budget = model.TotalCost([&] {
    StateVec v(n, 0);
    v[0] = 25;
    v[1] = 25;
    return v;
  }());
  const ProblemInstance instance{model, PaperArrivals(n, horizon), budget};

  ReportTable table({"plan", "simulated_cost_ms", "actual_engine_ms",
                     "actual/simulated"});
  auto run_both = [&](Policy& sim_policy, Policy& engine_policy,
                      const std::string& name) {
    const Trace sim =
        Simulate(instance, sim_policy, {.record_steps = false});
    bench::PaperFixture fx =
        bench::PaperFixture::Make(sf, seed, /*four_way=*/true);
    const EngineTrace engine =
        RunOnEngine(*fx.maintainer, instance.arrivals, model, budget,
                    engine_policy, fx.driver, {.record_steps = false});
    table.AddRow({name, ReportTable::Num(sim.total_cost, 2),
                  ReportTable::Num(engine.total_actual_ms, 2),
                  ReportTable::Num(
                      engine.total_actual_ms / sim.total_cost, 3)});
  };

  {
    NaivePolicy a, b;
    run_both(a, b, "NAIVE");
  }
  {
    OnlinePolicy a, b;
    run_both(a, b, "ONLINE");
  }
  {
    const PlanSearchResult optimal = FindOptimalLgmPlan(instance);
    PrecomputedPlanPolicy a(optimal.plan, "OPT_LGM");
    PrecomputedPlanPolicy b(optimal.plan, "OPT_LGM");
    run_both(a, b, "OPT_LGM");
  }
  table.PrintAligned(std::cout);
  std::cout << "\nPaper's shape: simulated and actual costs nearly "
               "coincide for every plan (their Figure 5 shows negligible "
               "differences), so ranking plans by simulated cost is "
               "sound.\n";
}

}  // namespace
}  // namespace abivm

int main(int argc, char** argv) {
  abivm::Run(argc, argv);
  return 0;
}
