// Figure 5: validation of the simulation methodology.
//
// The paper evaluates plans by simulating them against measured cost
// functions, and validates the simulation by also running the same plans
// on the real system. We do the same: calibrate cost functions from the
// live engine, then run NAIVE / ONLINE / OPT_LGM both through the
// cost-model simulator and on the real engine, comparing total costs.
// The paper's finding to reproduce: "negligible difference between the
// simulated costs and the actual ones" (same ranking, ratios near 1).
//
// The six runs (3 plans x {simulator, engine}) are independent: each
// engine job builds its own database fixture from the same seed, so the
// sweep is deterministic for any --threads value. Per-job metrics land in
// BENCH_fig05_metrics.json.

#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "core/astar.h"
#include "core/naive.h"
#include "core/online.h"
#include "core/plan_policies.h"
#include "sim/report.h"
#include "sim/sweep.h"
#include "sim/sweep_values.h"

namespace abivm {
namespace {

ArrivalSequence PaperArrivals(size_t n, TimeStep horizon) {
  StateVec rates(n, 0);
  rates[0] = 1;
  rates[1] = 1;
  return ArrivalSequence::Uniform(rates, horizon);
}

/// Job that replays the policy on the real engine; records `engine.*`
/// metrics and stores the measured total under sweep_values::kActualMs.
SweepJob MakeEngineJob(const std::string& label,
                       const ProblemInstance& instance, double sf,
                       uint64_t seed, PolicyFactory factory) {
  SweepJob job;
  job.scenario = "engine";
  job.label = label;
  job.run = [&instance, sf, seed, factory = std::move(factory)](
                obs::MetricRegistry& registry, SweepJobResult& result) {
    bench::PaperFixture fx =
        bench::PaperFixture::Make(sf, seed, /*four_way=*/true);
    std::unique_ptr<Policy> policy = factory();
    EngineRunnerOptions options;
    options.record_steps = false;
    options.metrics = &registry;
    const EngineTrace trace = RunOnEngine(
        *fx.maintainer, instance.arrivals, instance.cost_model,
        instance.budget, *policy, fx.driver, options);
    policy->ExportMetrics(registry);
    result.total_cost = trace.total_model_cost;
    result.violations = trace.violations;
    result.action_count = trace.action_count;
    sweep_values::kActualMs.Set(result, trace.total_actual_ms);
    sweep_values::kAbandonedModelCost.Set(result,
                                          trace.abandoned_model_cost);
    sweep_values::kAttemptedMs.Set(result, trace.total_attempted_ms);
    sweep_values::kAttemptedBatches.Set(
        result, static_cast<double>(trace.attempted_batches));
    // Per-operator wall totals (the asymmetry made visible: probe-bound
    // pipelines vs the one HASH+SCAN stage).
    for (const PipelineProfile& profile : trace.operator_profiles) {
      for (const StageStats& stage : profile.stages) {
        sweep_values::OpMs(profile.pipeline, stage.slug)
            .Add(result, stage.wall_ms);
      }
    }
  };
  return job;
}

void Run(int argc, char** argv) {
  const double sf = bench::FlagOr(argc, argv, "sf", 0.005);
  const auto seed =
      static_cast<uint64_t>(bench::FlagOr(argc, argv, "seed", 42));
  const auto horizon = static_cast<TimeStep>(
      bench::FlagOr(argc, argv, "t", 400));
  const SweepOptions sweep = bench::SweepFromFlags(argc, argv);

  std::cout << "=== Figure 5: simulated vs actual plan cost (sf=" << sf
            << ", T=" << horizon << ") ===\n\n";

  // Calibrate on a scratch fixture so the measured run starts clean.
  bench::PaperFixture calibration_fx =
      bench::PaperFixture::Make(sf, seed, /*four_way=*/true);
  const bench::CalibratedCosts costs = bench::CalibratePaperCosts(
      calibration_fx, 600, {1, 25, 50, 100, 200, 400, 600});
  const size_t n = calibration_fx.n();
  const CostModel model = bench::ModelFromCalibration(costs, n);
  // Budget that lets roughly 25 modifications of each table accumulate.
  const double budget = model.TotalCost([&] {
    StateVec v(n, 0);
    v[0] = 25;
    v[1] = 25;
    return v;
  }());
  const ProblemInstance instance{model, PaperArrivals(n, horizon), budget};
  const PlanSearchResult optimal = FindOptimalLgmPlan(instance);

  struct Treatment {
    const char* label;
    PolicyFactory factory;
  };
  const Treatment treatments[] = {
      {"NAIVE", [] { return std::make_unique<NaivePolicy>(); }},
      {"ONLINE", [] { return std::make_unique<OnlinePolicy>(); }},
      {"OPT_LGM",
       [&optimal] {
         return std::make_unique<PrecomputedPlanPolicy>(optimal.plan,
                                                        "OPT_LGM");
       }},
  };

  std::vector<SweepJob> jobs;
  for (const Treatment& treatment : treatments) {
    jobs.push_back(MakeSimulateJob("simulator", treatment.label, instance,
                                   treatment.factory,
                                   {.record_steps = false}));
    jobs.push_back(MakeEngineJob(treatment.label, instance, sf, seed,
                                 treatment.factory));
  }
  const std::vector<SweepJobResult> results =
      bench::RunReportedSweep(jobs, sweep);

  ReportTable table({"plan", "simulated_cost_ms", "actual_engine_ms",
                     "actual/simulated"});
  for (size_t i = 0; i + 1 < results.size(); i += 2) {
    const double simulated = results[i].total_cost;
    const double actual = sweep_values::kActualMs.Get(results[i + 1]);
    table.AddRow({results[i].label, ReportTable::Num(simulated, 2),
                  ReportTable::Num(actual, 2),
                  ReportTable::Num(actual / simulated, 3)});
  }
  table.PrintAligned(std::cout);
  bench::WriteBenchMetrics("fig05", results);
  std::cout << "\nPaper's shape: simulated and actual costs nearly "
               "coincide for every plan (their Figure 5 shows negligible "
               "differences), so ranking plans by simulated cost is "
               "sound.\n";
}

}  // namespace
}  // namespace abivm

int main(int argc, char** argv) {
  abivm::Run(argc, argv);
  return 0;
}
