// Ablation: the engine-side planner choices that shape the measured cost
// functions. Measures the supplier-delta cost curve of the paper's 4-way
// MIN view in four planner configurations:
//   full        -- join reorder + projection pushdown (default);
//   no_reorder  -- definition-order joins (big partsupp scan first, before
//                  the region filter can shrink the delta stream);
//   no_pushdown -- joins materialize full rows (comment strings included);
//   neither     -- both off.
// The differences explain why DESIGN.md calls these out: without them the
// scanned side's cost becomes output-dominated (steeper slope), weakening
// the asymmetry the scheduler exploits.

#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "sim/report.h"

namespace abivm {
namespace {

void Run(int argc, char** argv) {
  const double sf = bench::FlagOr(argc, argv, "sf", 0.01);
  const auto seed =
      static_cast<uint64_t>(bench::FlagOr(argc, argv, "seed", 42));

  std::cout << "=== Engine planner ablation: supplier-delta cost of the "
               "4-way MIN view (sf=" << sf << ") ===\n\n";

  struct Config {
    const char* label;
    BindingOptions options;
  };
  const Config configs[] = {
      {"full", {true, true}},
      {"no_reorder", {false, true}},
      {"no_pushdown", {true, false}},
      {"neither", {false, false}},
  };
  const std::vector<uint64_t> sizes = {1, 50, 200, 500, 1000};

  std::vector<std::string> header = {"config"};
  for (uint64_t k : sizes) header.push_back("k=" + std::to_string(k));
  header.push_back("fit a (ms/mod)");
  header.push_back("fit b (ms)");
  ReportTable table(header);

  for (const Config& config : configs) {
    Database db;
    TpcGenOptions gen;
    gen.scale_factor = sf;
    gen.seed = seed;
    GenerateTpcDatabase(&db, gen);
    CreatePaperIndexes(&db);
    ViewMaintainer maintainer(&db, MakePaperMinView(), config.options);
    TpcUpdater updater(&db, seed + 1);
    for (uint64_t i = 0; i < sizes.back(); ++i) {
      updater.UpdateSupplierNationkey();
    }
    const CalibrationResult result = CalibrateTableCost(
        maintainer, /*table_index=*/1, sizes, CalibratorOptions{3});
    std::vector<std::string> row = {config.label};
    for (const CostSample& sample : result.samples) {
      row.push_back(ReportTable::Num(sample.median_ms, 3));
    }
    row.push_back(ReportTable::Num(result.fit.slope, 5));
    row.push_back(ReportTable::Num(result.fit.intercept, 3));
    table.AddRow(std::move(row));
  }
  table.PrintAligned(std::cout);
  std::cout << "\nExpected: 'full' has the smallest slope (the batching-"
               "friendly shape); dropping either optimization steepens "
               "the curve.\n";
}

}  // namespace
}  // namespace abivm

int main(int argc, char** argv) {
  abivm::Run(argc, argv);
  return 0;
}
