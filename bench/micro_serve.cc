// Closed-loop multithreaded load generator for the serving subsystem:
// concurrent stale readers, coalescing fresh readers, and ingest
// producers against one ViewServer. Emits BENCH_serve.json; scripts/
// compare_serve_baseline.py guards throughput (floor) and p99 latency
// (ceiling) against the checked-in bench/baselines/BENCH_serve.json,
// plus the structural coalescing invariant (flushes <= fresh reads).
//
//   ./micro_serve [--sf=0.002] [--out=BENCH_serve.json] [--smoke=1]

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "core/online.h"
#include "cost/cost_function.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "serve/view_server.h"
#include "tpc/tpc_gen.h"
#include "tpc/views.h"

namespace abivm {
namespace {

struct Args {
  double scale_factor = 0.002;
  std::string out = "BENCH_serve.json";
  bool smoke = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--sf=", 5) == 0) {
      args.scale_factor = std::atof(a + 5);
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      args.out = a + 6;
    } else if (std::strncmp(a, "--smoke=", 8) == 0) {
      args.smoke = std::atoi(a + 8) != 0;
    }
  }
  return args;
}

struct ScenarioResult {
  std::string name;
  size_t stale_readers = 0;
  size_t fresh_readers = 0;
  size_t producers = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  double wall_ms = 0.0;
  double reads_per_sec = 0.0;
  double stale_p50_ms = 0.0;
  double stale_p99_ms = 0.0;
  double stale_p999_ms = 0.0;
  double fresh_p50_ms = 0.0;
  double fresh_p99_ms = 0.0;
  double fresh_p999_ms = 0.0;
  uint64_t flushes = 0;
  uint64_t fresh_served = 0;
  uint64_t publishes = 0;
};

serve::WriteOp MakeSupplycostUpdate(uint64_t seed) {
  return [seed](Database& db) -> Status {
    Rng rng(seed);
    Table& partsupp = db.table(kPartSupp);
    const RowId id = partsupp.SampleLiveRow(rng);
    Row row = partsupp.RowAt(id).row;
    const size_t cost_col = partsupp.schema().ColumnIndex("ps_supplycost");
    row[cost_col] = Value(rng.UniformDouble(1.0, 1000.0));
    auto result = db.TryApplyUpdate(partsupp, id, std::move(row));
    return result.ok() ? Status::Ok() : result.status();
  };
}

std::unique_ptr<serve::ViewServer> MakeServer(double scale_factor) {
  auto db = std::make_unique<Database>();
  TpcGenOptions options;
  options.scale_factor = scale_factor;
  GenerateTpcDatabase(db.get(), options);
  CreatePaperIndexes(db.get());
  auto server = std::make_unique<serve::ViewServer>(std::move(db),
                                                    serve::ServeOptions{});
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.002, 0.01),
      std::make_shared<LinearCost>(0.01, 0.40),
      std::make_shared<LinearCost>(1e-6, 0.0),
      std::make_shared<LinearCost>(1e-6, 0.0)};
  server->AddView(MakePaperMinView(), std::make_unique<OnlinePolicy>(),
                  CostModel(std::move(fns)));
  return server;
}

ScenarioResult RunScenario(const std::string& name, double scale_factor,
                           size_t stale_readers, size_t stale_iters,
                           size_t fresh_readers, size_t fresh_iters,
                           size_t producers, size_t ops_per_producer) {
  auto server = MakeServer(scale_factor);
  server->Start();

  obs::LatencyHistogram stale_lat;
  obs::LatencyHistogram fresh_lat;
  std::vector<std::thread> threads;

  Stopwatch wall;
  for (size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (size_t i = 0; i < ops_per_producer; ++i) {
        (void)server->Ingest(
            MakeSupplycostUpdate(p * 1'000'000 + i));
      }
    });
  }
  for (size_t r = 0; r < stale_readers; ++r) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < stale_iters; ++i) {
        Stopwatch sw;
        auto snap = server->ReadStale(0);
        stale_lat.Record(sw.ElapsedMs());
        if (snap == nullptr) std::abort();
      }
    });
  }
  for (size_t r = 0; r < fresh_readers; ++r) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < fresh_iters; ++i) {
        Stopwatch sw;
        auto fresh = server->ReadFresh(0);
        fresh_lat.Record(sw.ElapsedMs());
        if (!fresh.ok()) std::abort();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms = wall.ElapsedMs();
  server->Stop();

  ScenarioResult result;
  result.name = name;
  result.stale_readers = stale_readers;
  result.fresh_readers = fresh_readers;
  result.producers = producers;
  result.reads = stale_lat.count() + fresh_lat.count();
  result.writes = producers * ops_per_producer;
  result.wall_ms = wall_ms;
  result.reads_per_sec =
      wall_ms > 0.0 ? static_cast<double>(result.reads) / (wall_ms / 1e3)
                    : 0.0;
  result.stale_p50_ms = stale_lat.Quantile(0.5);
  result.stale_p99_ms = stale_lat.Quantile(0.99);
  result.stale_p999_ms = stale_lat.Quantile(0.999);
  result.fresh_p50_ms = fresh_lat.Quantile(0.5);
  result.fresh_p99_ms = fresh_lat.Quantile(0.99);
  result.fresh_p999_ms = fresh_lat.Quantile(0.999);
  result.flushes = server->metrics().counter("serve.flushes").value();
  result.fresh_served =
      server->metrics().counter("serve.fresh_served").value();
  result.publishes = server->metrics().counter("serve.publishes").value();
  return result;
}

int Main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  // Smoke mode (ctest / sanitizer runs): same shape, tiny counts.
  const size_t scale = args.smoke ? 1 : 10;

  std::vector<ScenarioResult> results;
  results.push_back(RunScenario("stale_heavy", args.scale_factor,
                                /*stale_readers=*/4,
                                /*stale_iters=*/500 * scale,
                                /*fresh_readers=*/0, /*fresh_iters=*/0,
                                /*producers=*/1,
                                /*ops_per_producer=*/50 * scale));
  results.push_back(RunScenario("fresh_coalesce", args.scale_factor,
                                /*stale_readers=*/0, /*stale_iters=*/0,
                                /*fresh_readers=*/4,
                                /*fresh_iters=*/30 * scale,
                                /*producers=*/1,
                                /*ops_per_producer=*/50 * scale));
  results.push_back(RunScenario("mixed", args.scale_factor,
                                /*stale_readers=*/2,
                                /*stale_iters=*/300 * scale,
                                /*fresh_readers=*/2,
                                /*fresh_iters=*/20 * scale,
                                /*producers=*/2,
                                /*ops_per_producer=*/30 * scale));

  std::ofstream os(args.out);
  {
    obs::JsonWriter writer(os);
    writer.BeginObject();
    writer.Key("context");
    writer.BeginObject();
    writer.Key("scale_factor");
    writer.Number(args.scale_factor);
    writer.Key("smoke");
    writer.Bool(args.smoke);
    writer.Key("hardware_threads");
    writer.Number(static_cast<uint64_t>(
        std::thread::hardware_concurrency()));
    writer.EndObject();
    writer.Key("scenarios");
    writer.BeginArray();
    for (const ScenarioResult& r : results) {
      writer.BeginObject();
      writer.Key("name");
      writer.String(r.name);
      writer.Key("stale_readers");
      writer.Number(static_cast<uint64_t>(r.stale_readers));
      writer.Key("fresh_readers");
      writer.Number(static_cast<uint64_t>(r.fresh_readers));
      writer.Key("producers");
      writer.Number(static_cast<uint64_t>(r.producers));
      writer.Key("reads");
      writer.Number(r.reads);
      writer.Key("writes");
      writer.Number(r.writes);
      writer.Key("wall_ms");
      writer.Number(r.wall_ms);
      writer.Key("reads_per_sec");
      writer.Number(r.reads_per_sec);
      writer.Key("stale_p50_ms");
      writer.Number(r.stale_p50_ms);
      writer.Key("stale_p99_ms");
      writer.Number(r.stale_p99_ms);
      writer.Key("stale_p999_ms");
      writer.Number(r.stale_p999_ms);
      writer.Key("fresh_p50_ms");
      writer.Number(r.fresh_p50_ms);
      writer.Key("fresh_p99_ms");
      writer.Number(r.fresh_p99_ms);
      writer.Key("fresh_p999_ms");
      writer.Number(r.fresh_p999_ms);
      writer.Key("flushes");
      writer.Number(r.flushes);
      writer.Key("fresh_served");
      writer.Number(r.fresh_served);
      writer.Key("publishes");
      writer.Number(r.publishes);
      writer.EndObject();
    }
    writer.EndArray();
    writer.EndObject();
  }
  std::fprintf(stderr, "micro_serve: wrote %s (%zu scenarios)\n",
               args.out.c_str(), results.size());
  return 0;
}

}  // namespace
}  // namespace abivm

int main(int argc, char** argv) { return abivm::Main(argc, argv); }
