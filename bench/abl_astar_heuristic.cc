// Ablation: A* heuristic strength.
//
// Compares node expansions and wall time for three search configurations
// on the same instances:
//   dijkstra    -- h = 0;
//   safe        -- our admissible heuristic (default);
//   paper_exact -- the paper's literal floor(R/b_i)*f_i(b_i) term (safe
//                  here because the costs are linear).
// All three must return the same optimal cost on linear instances.
//
// The 3 x |T| searches are independent and run as one parallel sweep
// (--threads=N); per-search A* counters (expansions, relaxations,
// re-expansions, frontier peak) land in BENCH_abl_astar_metrics.json.

#include <cmath>
#include <deque>
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "core/astar.h"
#include "sim/report.h"
#include "sim/sweep.h"

namespace abivm {
namespace {

ProblemInstance MakeInstance(TimeStep horizon) {
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0)};
  return ProblemInstance{CostModel(std::move(fns)),
                         ArrivalSequence::Uniform({1, 1}, horizon), 15.0};
}

void Run(int argc, char** argv) {
  const SweepOptions sweep = bench::SweepFromFlags(argc, argv);
  std::cout << "=== A* heuristic ablation (2 linear tables, uniform "
               "arrivals, C = 15) ===\n\n";

  const TimeStep horizons[] = {100, 200, 400, 800, 1600};
  std::deque<ProblemInstance> instances;
  std::vector<SweepJob> jobs;
  for (TimeStep horizon : horizons) {
    const ProblemInstance& instance =
        instances.emplace_back(MakeInstance(horizon));
    const std::string scenario = "T=" + std::to_string(horizon);
    jobs.push_back(MakePlanJob(scenario, "dijkstra", instance,
                               AStarOptions{.use_heuristic = false}));
    jobs.push_back(MakePlanJob(scenario, "safe", instance));
    jobs.push_back(MakePlanJob(scenario, "paper_exact", instance,
                               AStarOptions{.paper_exact_heuristic = true}));
  }
  const std::vector<SweepJobResult> results =
      bench::RunReportedSweep(jobs, sweep);

  ReportTable table({"T", "dijkstra_nodes", "safe_nodes", "paper_nodes",
                     "dijkstra_ms", "safe_ms", "paper_ms", "cost"});
  for (size_t i = 0; i + 2 < results.size(); i += 3) {
    const SweepJobResult& dijkstra = results[i];
    const SweepJobResult& safe = results[i + 1];
    const SweepJobResult& paper = results[i + 2];
    ABIVM_CHECK_LE(std::abs(dijkstra.total_cost - safe.total_cost), 1e-6);
    ABIVM_CHECK_LE(std::abs(paper.total_cost - safe.total_cost), 1e-6);
    table.AddRow(
        {std::to_string(horizons[i / 3]),
         std::to_string(bench::CounterOr(dijkstra, "astar.nodes_expanded")),
         std::to_string(bench::CounterOr(safe, "astar.nodes_expanded")),
         std::to_string(bench::CounterOr(paper, "astar.nodes_expanded")),
         ReportTable::Num(dijkstra.wall_ms, 2),
         ReportTable::Num(safe.wall_ms, 2),
         ReportTable::Num(paper.wall_ms, 2),
         ReportTable::Num(safe.total_cost, 2)});
  }
  table.PrintAligned(std::cout);
  bench::WriteBenchMetrics("abl_astar", results);
  std::cout << "\nExpected: informed searches expand no more nodes than "
               "Dijkstra; all configurations agree on the optimal cost.\n";
}

}  // namespace
}  // namespace abivm

int main(int argc, char** argv) {
  abivm::Run(argc, argv);
  return 0;
}
