// Ablation: A* heuristic strength.
//
// Compares node expansions and wall time for three search configurations
// on the same instances:
//   dijkstra    -- h = 0;
//   safe        -- our admissible heuristic (default);
//   paper_exact -- the paper's literal floor(R/b_i)*f_i(b_i) term (safe
//                  here because the costs are linear).
// All three must return the same optimal cost on linear instances.

#include <cmath>
#include <iostream>
#include <memory>

#include "common/stopwatch.h"
#include "core/astar.h"
#include "sim/report.h"

namespace abivm {
namespace {

ProblemInstance MakeInstance(TimeStep horizon) {
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0)};
  return ProblemInstance{CostModel(std::move(fns)),
                         ArrivalSequence::Uniform({1, 1}, horizon), 15.0};
}

void Run() {
  std::cout << "=== A* heuristic ablation (2 linear tables, uniform "
               "arrivals, C = 15) ===\n\n";
  ReportTable table({"T", "dijkstra_nodes", "safe_nodes", "paper_nodes",
                     "dijkstra_ms", "safe_ms", "paper_ms", "cost"});
  for (TimeStep horizon : {100, 200, 400, 800, 1600}) {
    const ProblemInstance instance = MakeInstance(horizon);

    Stopwatch w1;
    const PlanSearchResult dijkstra = FindOptimalLgmPlan(
        instance, AStarOptions{.use_heuristic = false});
    const double t1 = w1.ElapsedMs();

    Stopwatch w2;
    const PlanSearchResult safe = FindOptimalLgmPlan(instance);
    const double t2 = w2.ElapsedMs();

    Stopwatch w3;
    const PlanSearchResult paper = FindOptimalLgmPlan(
        instance, AStarOptions{.paper_exact_heuristic = true});
    const double t3 = w3.ElapsedMs();

    ABIVM_CHECK_LE(std::abs(dijkstra.cost - safe.cost), 1e-6);
    ABIVM_CHECK_LE(std::abs(paper.cost - safe.cost), 1e-6);
    table.AddRow({std::to_string(horizon),
                  std::to_string(dijkstra.nodes_expanded),
                  std::to_string(safe.nodes_expanded),
                  std::to_string(paper.nodes_expanded),
                  ReportTable::Num(t1, 2), ReportTable::Num(t2, 2),
                  ReportTable::Num(t3, 2),
                  ReportTable::Num(safe.cost, 2)});
  }
  table.PrintAligned(std::cout);
  std::cout << "\nExpected: informed searches expand no more nodes than "
               "Dijkstra; all configurations agree on the optimal cost.\n";
}

}  // namespace
}  // namespace abivm

int main() {
  abivm::Run();
  return 0;
}
