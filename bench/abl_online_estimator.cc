// Ablation: ONLINE's arrival-rate estimator.
//
// The paper attributes ONLINE's losses on unstable streams to TimeToFull
// prediction error. We sweep the EWMA weight of the estimator on stable
// and unstable streams (Section 5's arrival model) and report cost
// relative to OPT_LGM.
//
// Each (stream, alpha) cell plus the per-stream OPT_LGM reference is an
// independent sweep job (--threads=N); metrics land in
// BENCH_abl_online_metrics.json.

#include <deque>
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "core/astar.h"
#include "core/online.h"
#include "sim/report.h"
#include "sim/sweep.h"
#include "tpc/arrivals_gen.h"

namespace abivm {
namespace {

void Run(int argc, char** argv) {
  const SweepOptions sweep = bench::SweepFromFlags(argc, argv);
  std::cout << "=== ONLINE estimator ablation: EWMA alpha sweep "
               "(cost / OPT_LGM) ===\n\n";
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0)};
  const CostModel model(std::move(fns));
  const double budget = 20.0;
  const TimeStep horizon = 1000;

  struct Stream {
    const char* label;
    double p;
    double sigma;
  };
  const Stream streams[] = {
      {"FS (p=0.9,s=1)", 0.9, 1.0}, {"FU (p=0.9,s=5)", 0.9, 5.0}};
  const double alphas[] = {0.05, 0.1, 0.2, 0.5, 1.0};
  constexpr size_t kJobsPerStream = 1 + std::size(alphas);

  std::deque<ProblemInstance> instances;
  std::vector<SweepJob> jobs;
  for (const Stream& stream : streams) {
    Rng rng(77);
    const ArrivalSequence arrivals = MakePaperNonUniformArrivals(
        2, horizon, stream.p, 1.0, stream.sigma, rng);
    const ProblemInstance& instance =
        instances.emplace_back(ProblemInstance{model, arrivals, budget});
    jobs.push_back(MakePlanJob(stream.label, "OPT_LGM", instance));
    for (double alpha : alphas) {
      jobs.push_back(MakeSimulateJob(
          stream.label, "a=" + ReportTable::Num(alpha, 2), instance,
          [alpha] {
            OnlineOptions options;
            options.rate_ewma_alpha = alpha;
            return std::make_unique<OnlinePolicy>(options);
          },
          {.record_steps = false}));
    }
  }
  const std::vector<SweepJobResult> results =
      bench::RunReportedSweep(jobs, sweep);

  std::vector<std::string> header = {"stream"};
  for (double a : alphas) header.push_back("a=" + ReportTable::Num(a, 2));
  ReportTable table(header);
  for (size_t i = 0; i + kJobsPerStream - 1 < results.size();
       i += kJobsPerStream) {
    const double opt_cost = results[i].total_cost;
    std::vector<std::string> row = {results[i].scenario};
    for (size_t j = 1; j < kJobsPerStream; ++j) {
      row.push_back(
          ReportTable::Num(results[i + j].total_cost / opt_cost, 4));
    }
    table.AddRow(std::move(row));
  }
  table.PrintAligned(std::cout);
  bench::WriteBenchMetrics("abl_online", results);
  std::cout << "\nExpected: ratios near 1 on the stable stream for all "
               "alphas; the unstable stream is more sensitive to the "
               "estimator (the paper's explanation for Figure 7's FU "
               "gap).\n";
}

}  // namespace
}  // namespace abivm

int main(int argc, char** argv) {
  abivm::Run(argc, argv);
  return 0;
}
