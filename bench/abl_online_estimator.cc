// Ablation: ONLINE's arrival-rate estimator.
//
// The paper attributes ONLINE's losses on unstable streams to TimeToFull
// prediction error. We sweep the EWMA weight of the estimator on stable
// and unstable streams (Section 5's arrival model) and report cost
// relative to OPT_LGM.

#include <iostream>
#include <memory>

#include "core/astar.h"
#include "core/online.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "tpc/arrivals_gen.h"

namespace abivm {
namespace {

void Run() {
  std::cout << "=== ONLINE estimator ablation: EWMA alpha sweep "
               "(cost / OPT_LGM) ===\n\n";
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0)};
  const CostModel model(std::move(fns));
  const double budget = 20.0;
  const TimeStep horizon = 1000;

  struct Stream {
    const char* label;
    double p;
    double sigma;
  };
  const Stream streams[] = {
      {"FS (p=0.9,s=1)", 0.9, 1.0}, {"FU (p=0.9,s=5)", 0.9, 5.0}};
  const double alphas[] = {0.05, 0.1, 0.2, 0.5, 1.0};

  std::vector<std::string> header = {"stream"};
  for (double a : alphas) header.push_back("a=" + ReportTable::Num(a, 2));
  ReportTable table(header);

  for (const Stream& stream : streams) {
    Rng rng(77);
    const ArrivalSequence arrivals = MakePaperNonUniformArrivals(
        2, horizon, stream.p, 1.0, stream.sigma, rng);
    const ProblemInstance instance{model, arrivals, budget};
    const PlanSearchResult optimal = FindOptimalLgmPlan(instance);

    std::vector<std::string> row = {stream.label};
    for (double alpha : alphas) {
      OnlineOptions options;
      options.rate_ewma_alpha = alpha;
      OnlinePolicy online(options);
      const double cost =
          Simulate(instance, online, {.record_steps = false}).total_cost;
      row.push_back(ReportTable::Num(cost / optimal.cost, 4));
    }
    table.AddRow(std::move(row));
  }
  table.PrintAligned(std::cout);
  std::cout << "\nExpected: ratios near 1 on the stable stream for all "
               "alphas; the unstable stream is more sensitive to the "
               "estimator (the paper's explanation for Figure 7's FU "
               "gap).\n";
}

}  // namespace
}  // namespace abivm

int main() {
  abivm::Run();
  return 0;
}
