// Ablation: the receding-horizon REPLAN policy (our extension; the paper
// lists stronger online algorithms as future work) against ONLINE, NAIVE
// and the clairvoyant OPT_LGM on streams whose rates drift over time --
// the regime where a one-step amortized heuristic has the least foresight.
//
// The (stream, policy) points run as one parallel sweep (--threads=N);
// REPLAN's per-job planner counters (plans computed, deviations, A* nodes
// across replans) land in BENCH_abl_replanning_metrics.json.

#include <deque>
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "core/astar.h"
#include "core/naive.h"
#include "core/online.h"
#include "core/replan.h"
#include "sim/report.h"
#include "sim/sweep.h"
#include "tpc/arrivals_gen.h"

namespace abivm {
namespace {

// Rate-drifting stream: alternating 100-step phases of light (1, 0) and
// heavy (2, 3) arrivals.
ArrivalSequence DriftingArrivals(TimeStep horizon) {
  std::vector<StateVec> steps;
  for (TimeStep t = 0; t <= horizon; ++t) {
    const bool heavy = (t / 100) % 2 == 1;
    steps.push_back(heavy ? StateVec{2, 3} : StateVec{1, 0});
  }
  return ArrivalSequence(std::move(steps));
}

void Run(int argc, char** argv) {
  const SweepOptions sweep = bench::SweepFromFlags(argc, argv);
  std::cout << "=== REPLAN ablation: drifting arrival rates, T = 999 "
               "===\n\n";
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0)};
  const CostModel model(std::move(fns));

  struct Row {
    const char* label;
    ArrivalSequence arrivals;
  };
  Rng rng(11);
  std::vector<Row> rows;
  rows.push_back({"drifting", DriftingArrivals(999)});
  rows.push_back(
      {"bursty", MakeBurstyArrivals(2, 999, /*on=*/10, /*off=*/40, 4)});
  rows.push_back(
      {"poisson", MakePoissonArrivals({1.0, 0.7}, 999, rng)});

  std::deque<ProblemInstance> instances;
  std::vector<SweepJob> jobs;
  for (const Row& row : rows) {
    const ProblemInstance& instance = instances.emplace_back(
        ProblemInstance{model, row.arrivals, 20.0});
    jobs.push_back(MakeSimulateJob(
        row.label, "NAIVE", instance,
        [] { return std::make_unique<NaivePolicy>(); },
        {.record_steps = false}));
    jobs.push_back(MakeSimulateJob(
        row.label, "ONLINE", instance,
        [] { return std::make_unique<OnlinePolicy>(); },
        {.record_steps = false}));
    jobs.push_back(MakeSimulateJob(
        row.label, "REPLAN", instance,
        [] { return std::make_unique<ReplanningPolicy>(); },
        {.record_steps = false}));
    jobs.push_back(MakePlanJob(row.label, "OPT_LGM", instance));
  }
  const std::vector<SweepJobResult> results =
      bench::RunReportedSweep(jobs, sweep);

  ReportTable table({"stream", "NAIVE", "ONLINE", "REPLAN", "OPT_LGM",
                     "ONLINE/OPT", "REPLAN/OPT", "replans"});
  for (size_t i = 0; i + 3 < results.size(); i += 4) {
    const double online_cost = results[i + 1].total_cost;
    const double replan_cost = results[i + 2].total_cost;
    const double opt_cost = results[i + 3].total_cost;
    table.AddRow(
        {results[i].scenario, ReportTable::Num(results[i].total_cost, 1),
         ReportTable::Num(online_cost, 1),
         ReportTable::Num(replan_cost, 1), ReportTable::Num(opt_cost, 1),
         ReportTable::Num(online_cost / opt_cost, 3),
         ReportTable::Num(replan_cost / opt_cost, 3),
         std::to_string(
             bench::CounterOr(results[i + 2], "replan.plans_computed"))});
  }
  table.PrintAligned(std::cout);
  bench::WriteBenchMetrics("abl_replanning", results);
  std::cout << "\nExpected: both heuristics beat NAIVE on every stream; "
               "REPLAN's lookahead wins on smoothly drifting rates, while "
               "ONLINE's reactive rule handles on/off bursts better (rate "
               "projections mislead the planner there) -- lookahead is "
               "only as good as the forecast.\n";
}

}  // namespace
}  // namespace abivm

int main(int argc, char** argv) {
  abivm::Run(argc, argv);
  return 0;
}
