// Ablation: the receding-horizon REPLAN policy (our extension; the paper
// lists stronger online algorithms as future work) against ONLINE, NAIVE
// and the clairvoyant OPT_LGM on streams whose rates drift over time --
// the regime where a one-step amortized heuristic has the least foresight.

#include <iostream>
#include <memory>

#include "core/astar.h"
#include "core/naive.h"
#include "core/online.h"
#include "core/replan.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "tpc/arrivals_gen.h"

namespace abivm {
namespace {

// Rate-drifting stream: alternating 100-step phases of light (1, 0) and
// heavy (2, 3) arrivals.
ArrivalSequence DriftingArrivals(TimeStep horizon) {
  std::vector<StateVec> steps;
  for (TimeStep t = 0; t <= horizon; ++t) {
    const bool heavy = (t / 100) % 2 == 1;
    steps.push_back(heavy ? StateVec{2, 3} : StateVec{1, 0});
  }
  return ArrivalSequence(std::move(steps));
}

void Run() {
  std::cout << "=== REPLAN ablation: drifting arrival rates, T = 999 "
               "===\n\n";
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0)};
  const CostModel model(std::move(fns));

  ReportTable table({"stream", "NAIVE", "ONLINE", "REPLAN", "OPT_LGM",
                     "ONLINE/OPT", "REPLAN/OPT", "replans"});
  struct Row {
    const char* label;
    ArrivalSequence arrivals;
  };
  Rng rng(11);
  std::vector<Row> rows;
  rows.push_back({"drifting", DriftingArrivals(999)});
  rows.push_back(
      {"bursty", MakeBurstyArrivals(2, 999, /*on=*/10, /*off=*/40, 4)});
  rows.push_back(
      {"poisson", MakePoissonArrivals({1.0, 0.7}, 999, rng)});

  for (const Row& row : rows) {
    const ProblemInstance instance{model, row.arrivals, 20.0};
    NaivePolicy naive;
    const double naive_cost =
        Simulate(instance, naive, {.record_steps = false}).total_cost;
    OnlinePolicy online;
    const double online_cost =
        Simulate(instance, online, {.record_steps = false}).total_cost;
    ReplanningPolicy replan;
    const double replan_cost =
        Simulate(instance, replan, {.record_steps = false}).total_cost;
    const PlanSearchResult optimal = FindOptimalLgmPlan(instance);

    table.AddRow({row.label, ReportTable::Num(naive_cost, 1),
                  ReportTable::Num(online_cost, 1),
                  ReportTable::Num(replan_cost, 1),
                  ReportTable::Num(optimal.cost, 1),
                  ReportTable::Num(online_cost / optimal.cost, 3),
                  ReportTable::Num(replan_cost / optimal.cost, 3),
                  std::to_string(replan.plans_computed())});
  }
  table.PrintAligned(std::cout);
  std::cout << "\nExpected: both heuristics beat NAIVE on every stream; "
               "REPLAN's lookahead wins on smoothly drifting rates, while "
               "ONLINE's reactive rule handles on/off bursts better (rate "
               "projections mislead the planner there) -- lookahead is "
               "only as good as the forecast.\n";
}

}  // namespace
}  // namespace abivm

int main() {
  abivm::Run();
  return 0;
}
