// Figure 7: non-uniform modification arrivals.
//
// Four stream types from Section 5 -- slow/stable (SS), slow/unstable
// (SU), fast/stable (FS), fast/unstable (FU) -- generated per table with
// P{any arrival} = p and counts ~ ceil(N(mu, sigma^2)) | > 0:
//   slow p = 0.5, fast p = 0.9; stable sigma = 1, unstable sigma = 5;
//   mu = 1. Refresh at T = 1000.
// Like Figure 6, two cost configurations are reported: the paper's
// digitized Figure-1 functions and our engine-calibrated functions.
// Paper's shape to reproduce: NAIVE worst on all four streams;
// ONLINE close to OPT_LGM on stable streams, with a visible gap on
// unstable streams due to TimeToFull prediction error.
//
// All (stream, policy) points run as one parallel sweep (--threads=N,
// 0 = auto); ADAPT's T0-truncated planning happens inside its job so it
// overlaps with the other points. Metrics: BENCH_fig07_metrics.json.

#include <algorithm>
#include <deque>
#include <iostream>
#include <iterator>
#include <memory>

#include "bench/bench_util.h"
#include "core/astar.h"
#include "core/naive.h"
#include "core/online.h"
#include "core/plan_policies.h"
#include "sim/report.h"
#include "sim/sweep.h"
#include "tpc/arrivals_gen.h"

namespace abivm {
namespace {

struct Stream {
  const char* label;
  double p;
  double sigma;
};

constexpr Stream kStreams[] = {{"SS", 0.5, 1.0},
                               {"SU", 0.5, 5.0},
                               {"FS", 0.9, 1.0},
                               {"FU", 0.9, 5.0}};

/// ADAPT on a non-uniform stream: plan on the stream truncated at T0,
/// execute against the full stream. The (A*) planning runs inside the job.
SweepJob MakeAdaptJob(const std::string& scenario,
                      const ProblemInstance& instance,
                      const ProblemInstance& base) {
  SweepJob job;
  job.scenario = scenario;
  job.label = "ADAPT";
  job.run = [&instance, &base](obs::MetricRegistry& registry,
                               SweepJobResult& result) {
    AStarOptions plan_options;
    plan_options.metrics = &registry;
    AdaptPolicy adapt(FindOptimalLgmPlan(base, plan_options).plan);
    SimulatorOptions options;
    options.record_steps = false;
    options.metrics = &registry;
    const Trace trace = Simulate(instance, adapt, options);
    adapt.ExportMetrics(registry);
    result.total_cost = trace.total_cost;
    result.violations = trace.violations;
    result.action_count = trace.action_count;
  };
  return job;
}

std::vector<SweepJobResult> RunConfig(const std::string& title,
                                      const std::string& scenario_prefix,
                                      const CostModel& model, double budget,
                                      TimeStep horizon, uint64_t seed,
                                      const SweepOptions& sweep) {
  std::cout << "--- " << title << " (C = " << ReportTable::Num(budget, 2)
            << " ms, T = " << horizon << ") ---\n";

  std::deque<ProblemInstance> instances;
  std::vector<SweepJob> jobs;
  for (const Stream& stream : kStreams) {
    Rng rng(seed + static_cast<uint64_t>(stream.p * 10) +
            static_cast<uint64_t>(stream.sigma));
    const ArrivalSequence arrivals = MakePaperNonUniformArrivals(
        2, horizon, stream.p, /*mu=*/1.0, stream.sigma, rng);
    const ProblemInstance& instance =
        instances.emplace_back(ProblemInstance{model, arrivals, budget});
    // ADAPT's base: the same stream truncated at T0 = 500.
    const TimeStep t0 = std::min<TimeStep>(500, horizon);
    const ProblemInstance& base = instances.emplace_back(
        ProblemInstance{model, instance.arrivals.Truncate(t0), budget});
    const std::string scenario = scenario_prefix + "/" + stream.label;
    jobs.push_back(MakeSimulateJob(
        scenario, "NAIVE", instance,
        [] { return std::make_unique<NaivePolicy>(); },
        {.record_steps = false}));
    jobs.push_back(MakePlanJob(scenario, "OPT_LGM", instance));
    jobs.push_back(MakeAdaptJob(scenario, instance, base));
    jobs.push_back(MakeSimulateJob(
        scenario, "ONLINE", instance,
        [] { return std::make_unique<OnlinePolicy>(); },
        {.record_steps = false}));
  }
  const std::vector<SweepJobResult> results =
      bench::RunReportedSweep(jobs, sweep);

  ReportTable table({"stream", "NAIVE", "OPT_LGM", "ADAPT(T0=500)",
                     "ONLINE", "NAIVE/OPT", "ONLINE/OPT"});
  for (size_t i = 0; i + 3 < results.size(); i += 4) {
    const double naive_cost = results[i].total_cost;
    const double opt_cost = results[i + 1].total_cost;
    const double online_cost = results[i + 3].total_cost;
    table.AddRow({kStreams[i / 4].label, ReportTable::Num(naive_cost, 2),
                  ReportTable::Num(opt_cost, 2),
                  ReportTable::Num(results[i + 2].total_cost, 2),
                  ReportTable::Num(online_cost, 2),
                  ReportTable::Num(naive_cost / opt_cost, 3),
                  ReportTable::Num(online_cost / opt_cost, 3)});
  }
  table.PrintAligned(std::cout);
  std::cout << "\n";
  return results;
}

void Run(int argc, char** argv) {
  const double sf = bench::FlagOr(argc, argv, "sf", 0.02);
  const auto seed =
      static_cast<uint64_t>(bench::FlagOr(argc, argv, "seed", 42));
  const auto horizon =
      static_cast<TimeStep>(bench::FlagOr(argc, argv, "t", 1000));
  const SweepOptions sweep = bench::SweepFromFlags(argc, argv);

  std::cout << "=== Figure 7: non-uniform arrivals ===\n\n";

  std::vector<SweepJobResult> all;
  {
    std::vector<CostFunctionPtr> fns = {MakePaperFig1LinearSideCost(),
                                        MakePaperFig1ScanSideCost()};
    // The paper raises C from 12 s to 20 s between its two experiments
    // because the non-uniform streams are heavier; our digitized Figure-1
    // functions already interact non-trivially with C = 350 ms (the scan
    // side's plateau sits just above it), so we keep that constraint.
    std::vector<SweepJobResult> results = RunConfig(
        "paper-digitized cost functions", "paper",
        CostModel(std::move(fns)), kPaperFig1BudgetMs, horizon, seed,
        sweep);
    all.insert(all.end(), std::make_move_iterator(results.begin()),
               std::make_move_iterator(results.end()));
  }
  {
    bench::PaperFixture fx =
        bench::PaperFixture::Make(sf, seed, /*four_way=*/true);
    const bench::CalibratedCosts costs = bench::CalibratePaperCosts(
        fx, 600, {1, 25, 50, 100, 200, 400, 600});
    const CostModel model = bench::ModelFromCalibration(costs, 2);
    std::vector<SweepJobResult> results = RunConfig(
        "engine-calibrated cost functions (4-way MIN view, sf=" +
            ReportTable::Num(sf, 3) + ")",
        "calibrated", model, model.TotalCost({42, 42}), horizon, seed,
        sweep);
    all.insert(all.end(), std::make_move_iterator(results.begin()),
               std::make_move_iterator(results.end()));
  }
  bench::WriteBenchMetrics("fig07", all);
  std::cout << "Paper's shape: NAIVE outperformed on all four streams; "
               "ONLINE near-optimal on stable streams (SS, FS), larger "
               "gap on unstable ones (SU, FU) from TimeToFull prediction "
               "error.\n";
}

}  // namespace
}  // namespace abivm

int main(int argc, char** argv) {
  abivm::Run(argc, argv);
  return 0;
}
