// Figure 7: non-uniform modification arrivals.
//
// Four stream types from Section 5 -- slow/stable (SS), slow/unstable
// (SU), fast/stable (FS), fast/unstable (FU) -- generated per table with
// P{any arrival} = p and counts ~ ceil(N(mu, sigma^2)) | > 0:
//   slow p = 0.5, fast p = 0.9; stable sigma = 1, unstable sigma = 5;
//   mu = 1. Refresh at T = 1000.
// Like Figure 6, two cost configurations are reported: the paper's
// digitized Figure-1 functions and our engine-calibrated functions. Paper's shape to reproduce: NAIVE worst on all four streams;
// ONLINE close to OPT_LGM on stable streams, with a visible gap on
// unstable streams due to TimeToFull prediction error.

#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "core/astar.h"
#include "core/naive.h"
#include "core/online.h"
#include "core/plan_policies.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "tpc/arrivals_gen.h"

namespace abivm {
namespace {

struct Stream {
  const char* label;
  double p;
  double sigma;
};

constexpr Stream kStreams[] = {{"SS", 0.5, 1.0},
                               {"SU", 0.5, 5.0},
                               {"FS", 0.9, 1.0},
                               {"FU", 0.9, 5.0}};

void RunConfig(const std::string& title, const CostModel& model,
               double budget, TimeStep horizon, uint64_t seed) {
  std::cout << "--- " << title << " (C = " << ReportTable::Num(budget, 2)
            << " ms, T = " << horizon << ") ---\n";
  ReportTable table({"stream", "NAIVE", "OPT_LGM", "ADAPT(T0=500)",
                     "ONLINE", "NAIVE/OPT", "ONLINE/OPT"});
  for (const Stream& stream : kStreams) {
    Rng rng(seed + static_cast<uint64_t>(stream.p * 10) +
            static_cast<uint64_t>(stream.sigma));
    const ArrivalSequence arrivals = MakePaperNonUniformArrivals(
        2, horizon, stream.p, /*mu=*/1.0, stream.sigma, rng);
    const ProblemInstance instance{model, arrivals, budget};

    NaivePolicy naive;
    const double naive_cost =
        Simulate(instance, naive, {.record_steps = false}).total_cost;
    const PlanSearchResult optimal = FindOptimalLgmPlan(instance);
    // ADAPT: plan optimized on the same stream truncated at T0 = 500,
    // then executed against the full stream.
    const TimeStep t0 = std::min<TimeStep>(500, horizon);
    const ProblemInstance base{model, arrivals.Truncate(t0), budget};
    AdaptPolicy adapt(FindOptimalLgmPlan(base).plan);
    const double adapt_cost =
        Simulate(instance, adapt, {.record_steps = false}).total_cost;
    OnlinePolicy online;
    const double online_cost =
        Simulate(instance, online, {.record_steps = false}).total_cost;

    table.AddRow({stream.label, ReportTable::Num(naive_cost, 2),
                  ReportTable::Num(optimal.cost, 2),
                  ReportTable::Num(adapt_cost, 2),
                  ReportTable::Num(online_cost, 2),
                  ReportTable::Num(naive_cost / optimal.cost, 3),
                  ReportTable::Num(online_cost / optimal.cost, 3)});
  }
  table.PrintAligned(std::cout);
  std::cout << "\n";
}

void Run(int argc, char** argv) {
  const double sf = bench::FlagOr(argc, argv, "sf", 0.02);
  const auto seed =
      static_cast<uint64_t>(bench::FlagOr(argc, argv, "seed", 42));
  const auto horizon =
      static_cast<TimeStep>(bench::FlagOr(argc, argv, "t", 1000));

  std::cout << "=== Figure 7: non-uniform arrivals ===\n\n";

  {
    std::vector<CostFunctionPtr> fns = {MakePaperFig1LinearSideCost(),
                                        MakePaperFig1ScanSideCost()};
    // The paper raises C from 12 s to 20 s between its two experiments
    // because the non-uniform streams are heavier; our digitized Figure-1
    // functions already interact non-trivially with C = 350 ms (the scan
    // side's plateau sits just above it), so we keep that constraint.
    RunConfig("paper-digitized cost functions",
              CostModel(std::move(fns)), kPaperFig1BudgetMs, horizon,
              seed);
  }
  {
    bench::PaperFixture fx =
        bench::PaperFixture::Make(sf, seed, /*four_way=*/true);
    const bench::CalibratedCosts costs = bench::CalibratePaperCosts(
        fx, 600, {1, 25, 50, 100, 200, 400, 600});
    const CostModel model = bench::ModelFromCalibration(costs, 2);
    RunConfig("engine-calibrated cost functions (4-way MIN view, sf=" +
                  ReportTable::Num(sf, 3) + ")",
              model, model.TotalCost({42, 42}), horizon, seed);
  }
  std::cout << "Paper's shape: NAIVE outperformed on all four streams; "
               "ONLINE near-optimal on stable streams (SS, FS), larger "
               "gap on unstable ones (SU, FU) from TimeToFull prediction "
               "error.\n";
}

}  // namespace
}  // namespace abivm

int main(int argc, char** argv) {
  abivm::Run(argc, argv);
  return 0;
}
