// Figure 4: batch-maintenance cost of the paper's evaluation view
//
//   SELECT MIN(ps_supplycost) FROM partsupp, supplier, nation, region
//   WHERE s_suppkey = ps_suppkey AND s_nationkey = n_nationkey
//     AND n_regionkey = r_regionkey AND r_name = 'MIDDLE EAST'
//
// as a function of the update batch size, separately for PARTSUPP
// supplycost updates and SUPPLIER nationkey updates. The paper's findings
// to reproduce in shape: both curves follow linear trends; the SUPPLIER
// curve is substantially higher because its deltas must be joined against
// the much larger PARTSUPP table.

#include <iostream>

#include "bench/bench_util.h"
#include "common/check.h"
#include "sim/report.h"

namespace abivm {
namespace {

void Run(int argc, char** argv) {
  const double sf = bench::FlagOr(argc, argv, "sf", 0.01);
  const auto seed =
      static_cast<uint64_t>(bench::FlagOr(argc, argv, "seed", 42));

  std::cout << "=== Figure 4: 4-way MIN view maintenance cost vs batch "
            << "size (sf=" << sf << ", partsupp="
            << TpcPartSuppCount(sf) << " rows, supplier="
            << TpcSupplierCount(sf) << " rows) ===\n\n";

  bench::PaperFixture fx =
      bench::PaperFixture::Make(sf, seed, /*four_way=*/true);
  const std::vector<uint64_t> sizes = {1,   50,  100, 200, 300, 400,
                                       500, 600, 700, 800, 900, 1000};
  const bench::CalibratedCosts costs =
      bench::CalibratePaperCosts(fx, 1000, sizes);

  ReportTable table({"batch_size", "partsupp_updates_ms",
                     "supplier_updates_ms", "ratio_s/ps"});
  for (size_t i = 0; i < sizes.size(); ++i) {
    const double ps = costs.table0.samples[i].median_ms;
    const double s = costs.table1.samples[i].median_ms;
    table.AddRow({std::to_string(sizes[i]), ReportTable::Num(ps, 4),
                  ReportTable::Num(s, 4),
                  ReportTable::Num(ps > 0 ? s / ps : 0.0, 2)});
  }
  table.PrintAligned(std::cout);

  std::cout << "\nlinear fits:\n"
            << "  partsupp: " << costs.table0.fit.slope << "*k + "
            << costs.table0.fit.intercept
            << " (r2=" << costs.table0.fit.r_squared << ")\n"
            << "  supplier: " << costs.table1.fit.slope << "*k + "
            << costs.table1.fit.intercept
            << " (r2=" << costs.table1.fit.r_squared << ")\n";
  std::cout << "\nPaper's shape: both curves roughly linear; supplier "
               "updates cost more because they join the much larger "
               "partsupp table.\n";

  // Physical-work evidence for the asymmetry mechanism.
  std::cout << "\nwork counters at batch = 1000:\n";
  const ExecStats& ps_stats = costs.table0.samples.back().stats;
  const ExecStats& s_stats = costs.table1.samples.back().stats;
  std::cout << "  partsupp deltas: " << ps_stats.index_probes
            << " index probes, " << ps_stats.rows_scanned
            << " rows scanned\n";
  std::cout << "  supplier deltas: " << s_stats.index_probes
            << " index probes, " << s_stats.rows_scanned
            << " rows scanned (>= one full partsupp pass)\n";

  // Shape invariants (wide margins; see fig01 for the two-way variant):
  // partsupp deltas ride indexes only, supplier deltas must pay at least
  // one full partsupp pass, and the supplier curve dominates at scale.
  ABIVM_CHECK_MSG(ps_stats.rows_scanned == 0,
                  "partsupp deltas stopped using the index-only path");
  ABIVM_CHECK_MSG(
      s_stats.rows_scanned >= fx.db->table(kPartSupp).live_row_count(),
      "supplier deltas no longer pay the scan-side partsupp pass");
  // The wall-clock dominance margin needs a realistically-sized partsupp
  // (the smoke run's --sf=0.002 table is too small for the scan intercept
  // to dominate); the work-counter checks above hold at any scale.
  if (fx.db->table(kPartSupp).live_row_count() >= 5000) {
    ABIVM_CHECK_MSG(costs.table1.samples[1].median_ms >
                        2.0 * costs.table0.samples[1].median_ms,
                    "supplier batches no longer dominate partsupp batches");
    std::cout << "[shape-check] index-only partsupp path, scan-side "
                 "supplier path: OK\n";
  } else {
    std::cout << "[shape-check] index-only partsupp path, scan-side "
                 "supplier path: OK (dominance margin skipped at smoke "
                 "scale)\n";
  }
}

}  // namespace
}  // namespace abivm

int main(int argc, char** argv) {
  abivm::Run(argc, argv);
  return 0;
}
