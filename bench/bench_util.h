// Shared fixture code for the figure-reproduction benches: builds the TPC
// database + paper view, drives modification streams, and calibrates cost
// functions from the live engine (measure -> fit -> simulate, exactly the
// paper's methodology).

#ifndef ABIVM_BENCH_BENCH_UTIL_H_
#define ABIVM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "ivm/calibrator.h"
#include "ivm/maintainer.h"
#include "sim/engine_runner.h"
#include "sim/sweep.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm::bench {

/// TPC database + the paper's MIN view (or the Figure-1 two-way join view)
/// + the paper's update mix, ready to run.
struct PaperFixture {
  std::unique_ptr<Database> db;
  std::unique_ptr<ViewMaintainer> maintainer;
  std::unique_ptr<TpcUpdater> updater;
  ModificationDriver driver;

  /// view table order: 0 = partsupp, 1 = supplier (+ nation/region for the
  /// 4-way view).
  static PaperFixture Make(double scale_factor, uint64_t seed,
                           bool four_way) {
    PaperFixture fx;
    fx.db = std::make_unique<Database>();
    TpcGenOptions options;
    options.scale_factor = scale_factor;
    options.seed = seed;
    GenerateTpcDatabase(fx.db.get(), options);
    CreatePaperIndexes(fx.db.get());
    fx.maintainer = std::make_unique<ViewMaintainer>(
        fx.db.get(), four_way ? MakePaperMinView() : MakeTwoWayJoinView());
    fx.updater = std::make_unique<TpcUpdater>(fx.db.get(), seed + 1);
    TpcUpdater* updater = fx.updater.get();
    ViewMaintainer* maintainer = fx.maintainer.get();
    fx.driver = [updater, maintainer](size_t table_index) {
      updater->ApplyPaperModification(
          maintainer->binding().def().tables[table_index]);
    };
    return fx;
  }

  size_t n() const { return maintainer->num_tables(); }
};

/// Calibrated cost functions for the view's first two base tables (the
/// modified ones in the paper's workloads).
struct CalibratedCosts {
  CalibrationResult table0;
  CalibrationResult table1;
};

/// Drives `count` pending modifications into each of the view's first two
/// base tables (without processing them) and calibrates both cost curves.
inline CalibratedCosts CalibratePaperCosts(
    PaperFixture& fx, size_t count, const std::vector<uint64_t>& batch_sizes,
    int repetitions = 3) {
  for (size_t i = 0; i < count; ++i) {
    fx.driver(0);
    fx.driver(1);
  }
  CalibratedCosts costs;
  costs.table0 = CalibrateTableCost(*fx.maintainer, 0, batch_sizes,
                                    CalibratorOptions{repetitions});
  costs.table1 = CalibrateTableCost(*fx.maintainer, 1, batch_sizes,
                                    CalibratorOptions{repetitions});
  // Leave the fixture refreshed so follow-up experiments start clean.
  fx.maintainer->RefreshAll();
  return costs;
}

/// Cost model over the view's tables: fitted linear costs for partsupp and
/// supplier; negligible placeholders for never-modified dimensions.
inline CostModel ModelFromCalibration(const CalibratedCosts& costs,
                                      size_t n) {
  std::vector<CostFunctionPtr> fns;
  fns.push_back(costs.table0.AsLinearCost());
  fns.push_back(costs.table1.AsLinearCost());
  for (size_t i = 2; i < n; ++i) {
    fns.push_back(std::make_shared<LinearCost>(1e-6, 0.0));
  }
  return CostModel(std::move(fns));
}

/// Parses "--flag=value" style numeric flags (tiny helper; benches accept
/// --sf, --seed, ... without a dependency on a flags library).
inline double FlagOr(int argc, char** argv, const std::string& name,
                     double fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      const std::string text = arg.substr(prefix.size());
      try {
        size_t consumed = 0;
        const double value = std::stod(text, &consumed);
        if (consumed == text.size()) return value;
      } catch (const std::exception&) {
      }
      std::cerr << "error: --" << name << " expects a number, got \"" << text
                << "\"\n";
      std::exit(2);
    }
  }
  return fallback;
}

/// Sweep configuration from the common --threads flag (0 = one worker per
/// hardware thread).
inline SweepOptions SweepFromFlags(int argc, char** argv) {
  SweepOptions options;
  options.threads =
      static_cast<size_t>(FlagOr(argc, argv, "threads", 0.0));
  return options;
}

/// Runs the sweep and prints one line of engine telemetry (job count,
/// worker count, wall time) so --threads comparisons are self-reporting.
inline std::vector<SweepJobResult> RunReportedSweep(
    const std::vector<SweepJob>& jobs, const SweepOptions& options) {
  const size_t workers = options.threads == 0
                             ? ThreadPool::DefaultThreads()
                             : options.threads;
  const Stopwatch watch;
  std::vector<SweepJobResult> results = RunSweep(jobs, options);
  std::printf("[sweep] %zu jobs on %zu worker thread%s in %.1f ms\n\n",
              jobs.size(), workers, workers == 1 ? "" : "s",
              watch.ElapsedMs());
  return results;
}

/// Writes per-job planner/policy metrics to BENCH_<name>_metrics.json in
/// the working directory.
inline void WriteBenchMetrics(const std::string& bench_name,
                              const std::vector<SweepJobResult>& results) {
  const std::string path = "BENCH_" + bench_name + "_metrics.json";
  std::ofstream out(path);
  WriteSweepJson(out, results);
  out << "\n";
  std::cout << "[metrics] wrote " << results.size()
            << " job records to " << path << "\n";
}

/// Counter lookup in a sweep result's metrics snapshot (fallback when the
/// job never recorded the name).
inline uint64_t CounterOr(const SweepJobResult& result,
                          const std::string& name,
                          uint64_t fallback = 0) {
  const auto it = result.metrics.counters.find(name);
  return it == result.metrics.counters.end() ? fallback : it->second;
}

}  // namespace abivm::bench

#endif  // ABIVM_BENCH_BENCH_UTIL_H_
