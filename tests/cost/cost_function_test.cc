#include "cost/cost_function.h"

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace abivm {
namespace {

TEST(LinearCostTest, BasicValues) {
  LinearCost f(0.5, 3.0);
  EXPECT_DOUBLE_EQ(f.Cost(0), 0.0);
  EXPECT_DOUBLE_EQ(f.Cost(1), 3.5);
  EXPECT_DOUBLE_EQ(f.Cost(100), 53.0);
}

TEST(LinearCostTest, MaxBatchWithinClosedForm) {
  LinearCost f(0.5, 3.0);
  EXPECT_EQ(f.MaxBatchWithin(3.4), 0u);   // f(1) = 3.5 > 3.4
  EXPECT_EQ(f.MaxBatchWithin(3.5), 1u);   // exactly one fits
  EXPECT_EQ(f.MaxBatchWithin(53.0), 100u);
  EXPECT_EQ(f.MaxBatchWithin(53.2), 100u);
  EXPECT_EQ(f.MaxBatchWithin(-1.0), 0u);
}

TEST(LinearCostTest, ZeroInterceptIsProportional) {
  LinearCost f(2.0, 0.0);
  EXPECT_DOUBLE_EQ(f.Cost(7), 14.0);
  EXPECT_EQ(f.MaxBatchWithin(14.0), 7u);
}

TEST(AffineCappedCostTest, PlateauBehaviour) {
  AffineCappedCost f(1.0, 2.0, /*cap=*/10);
  EXPECT_DOUBLE_EQ(f.Cost(0), 0.0);
  EXPECT_DOUBLE_EQ(f.Cost(5), 7.0);
  EXPECT_DOUBLE_EQ(f.Cost(10), 12.0);
  EXPECT_DOUBLE_EQ(f.Cost(11), 12.0);
  EXPECT_DOUBLE_EQ(f.Cost(1'000'000), 12.0);
  EXPECT_DOUBLE_EQ(f.plateau(), 12.0);
}

TEST(AffineCappedCostTest, MaxBatchUnboundedWhenPlateauFits) {
  AffineCappedCost f(1.0, 2.0, 10);
  EXPECT_EQ(f.MaxBatchWithin(12.0), kUnboundedBatch);
  EXPECT_EQ(f.MaxBatchWithin(11.0), 9u);
  EXPECT_EQ(f.MaxBatchWithin(2.5), 0u);  // f(1) = 3 > 2.5
}

TEST(StepCostTest, BlockJumps) {
  StepCost f(/*block=*/10, /*cost_per_block=*/4.0);
  EXPECT_DOUBLE_EQ(f.Cost(0), 0.0);
  EXPECT_DOUBLE_EQ(f.Cost(1), 4.0);
  EXPECT_DOUBLE_EQ(f.Cost(10), 4.0);
  EXPECT_DOUBLE_EQ(f.Cost(11), 8.0);
  EXPECT_DOUBLE_EQ(f.Cost(30), 12.0);
}

TEST(StepCostTest, MaxBatchRoundsToBlockBoundary) {
  StepCost f(10, 4.0);
  EXPECT_EQ(f.MaxBatchWithin(3.9), 0u);
  EXPECT_EQ(f.MaxBatchWithin(4.0), 10u);
  EXPECT_EQ(f.MaxBatchWithin(7.9), 10u);
  EXPECT_EQ(f.MaxBatchWithin(8.0), 20u);
}

TEST(StepCostTest, IsNotConcaveButIsSubadditive) {
  // The paper's point: ceil(x/B)*c is subadditive but not concave.
  StepCost f(10, 4.0);
  EXPECT_TRUE(IsSubadditive(f, 100));
  // Concavity would require f(11) - f(10) <= f(1) - f(0) scaled; exhibit
  // the non-concave jump directly.
  const double jump_late = f.Cost(11) - f.Cost(10);
  const double slope_early = (f.Cost(10) - f.Cost(1)) / 9.0;
  EXPECT_GT(jump_late, slope_early);
}

TEST(ConcaveCostTest, SqrtShape) {
  ConcaveCost f(2.0, 1.0);
  EXPECT_DOUBLE_EQ(f.Cost(0), 0.0);
  EXPECT_DOUBLE_EQ(f.Cost(1), 3.0);
  EXPECT_DOUBLE_EQ(f.Cost(4), 5.0);
  EXPECT_DOUBLE_EQ(f.Cost(100), 21.0);
}

TEST(ConcaveCostTest, GenericMaxBatchWithin) {
  ConcaveCost f(2.0, 1.0);  // f(k) = 2*sqrt(k) + 1
  // f(k) <= 9  <=>  sqrt(k) <= 4  <=>  k <= 16.
  EXPECT_EQ(f.MaxBatchWithin(9.0), 16u);
  EXPECT_EQ(f.MaxBatchWithin(2.9), 0u);
  EXPECT_EQ(f.MaxBatchWithin(3.0), 1u);
}

TEST(PiecewiseLinearCostTest, InterpolatesAndExtrapolates) {
  PiecewiseLinearCost f({{10, 5.0}, {20, 6.0}, {40, 10.0}});
  EXPECT_DOUBLE_EQ(f.Cost(0), 0.0);
  EXPECT_DOUBLE_EQ(f.Cost(5), 2.5);    // origin..(10,5)
  EXPECT_DOUBLE_EQ(f.Cost(10), 5.0);
  EXPECT_DOUBLE_EQ(f.Cost(15), 5.5);   // (10,5)..(20,6)
  EXPECT_DOUBLE_EQ(f.Cost(40), 10.0);
  EXPECT_DOUBLE_EQ(f.Cost(50), 12.0);  // extrapolate slope 0.2
}

TEST(PiecewiseLinearCostTest, SingleSampleExtrapolatesProportionally) {
  PiecewiseLinearCost f({{10, 5.0}});
  EXPECT_DOUBLE_EQ(f.Cost(5), 2.5);
  EXPECT_DOUBLE_EQ(f.Cost(20), 10.0);
}

TEST(PaperGapCostTest, MatchesSection32Definition) {
  const double eps = 0.25;
  const double c = 100.0;
  CostFunctionPtr f = MakePaperGapCost(eps, c);
  // f(x) = (eps*x/2)*C for x <= 2/eps = 8.
  for (uint64_t x = 0; x <= 8; ++x) {
    EXPECT_NEAR(f->Cost(x), eps * static_cast<double>(x) / 2.0 * c, 1e-9)
        << "x=" << x;
  }
  // f(x) = (1 + eps/2)*C above.
  EXPECT_NEAR(f->Cost(9), (1.0 + eps / 2.0) * c, 1e-9);
  EXPECT_NEAR(f->Cost(1000), (1.0 + eps / 2.0) * c, 1e-9);
}

// ---------------------------------------------------------------------------
// Property suite: every cost function in the zoo is monotone, subadditive,
// and has a MaxBatchWithin consistent with brute force.

struct ZooEntry {
  std::string label;
  CostFunctionPtr fn;
};

class CostPropertyTest : public ::testing::TestWithParam<ZooEntry> {};

TEST_P(CostPropertyTest, ZeroAtZero) {
  EXPECT_DOUBLE_EQ(GetParam().fn->Cost(0), 0.0);
}

TEST_P(CostPropertyTest, Monotone) {
  EXPECT_TRUE(IsMonotone(*GetParam().fn, 300));
}

TEST_P(CostPropertyTest, Subadditive) {
  EXPECT_TRUE(IsSubadditive(*GetParam().fn, 300));
}

TEST_P(CostPropertyTest, MaxBatchWithinAgreesWithBruteForce) {
  const CostFunction& f = *GetParam().fn;
  for (double budget : {0.1, 1.0, 3.7, 10.0, 55.5, 240.0}) {
    const uint64_t reported = f.MaxBatchWithin(budget);
    // Brute force over a window around the reported answer.
    uint64_t brute = 0;
    for (uint64_t k = 1; k <= 2000; ++k) {
      if (f.Cost(k) <= budget + 1e-9) brute = k;
    }
    if (reported == kUnboundedBatch) {
      EXPECT_EQ(brute, 2000u) << "budget=" << budget;
    } else if (reported > 2000) {
      EXPECT_EQ(brute, 2000u) << "budget=" << budget;
    } else {
      EXPECT_EQ(reported, brute) << "budget=" << budget;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, CostPropertyTest,
    ::testing::Values(
        ZooEntry{"linear_small", std::make_shared<LinearCost>(0.25, 3.0)},
        ZooEntry{"linear_no_intercept",
                 std::make_shared<LinearCost>(1.5, 0.0)},
        ZooEntry{"linear_steep", std::make_shared<LinearCost>(7.0, 40.0)},
        ZooEntry{"capped", std::make_shared<AffineCappedCost>(0.1, 5.0, 60)},
        ZooEntry{"capped_tight",
                 std::make_shared<AffineCappedCost>(2.0, 0.5, 3)},
        ZooEntry{"step_small", std::make_shared<StepCost>(7, 2.5)},
        ZooEntry{"step_large", std::make_shared<StepCost>(64, 12.0)},
        ZooEntry{"concave", std::make_shared<ConcaveCost>(3.0, 1.0)},
        ZooEntry{"concave_flat", std::make_shared<ConcaveCost>(0.5, 0.0)},
        ZooEntry{"piecewise",
                 std::make_shared<PiecewiseLinearCost>(
                     std::vector<std::pair<uint64_t, double>>{
                         {5, 4.0}, {10, 6.0}, {50, 20.0}, {100, 30.0}})},
        ZooEntry{"paper_gap", std::static_pointer_cast<const CostFunction>(
                                  MakePaperGapCost(0.5, 10.0))}),
    [](const ::testing::TestParamInfo<ZooEntry>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace abivm
