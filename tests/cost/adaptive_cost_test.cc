#include "cost/adaptive_cost.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace abivm {
namespace {

TEST(AdaptiveLinearCostTest, UsesPriorBeforeObservations) {
  AdaptiveCostOptions options;
  options.initial_a = 2.0;
  options.initial_b = 3.0;
  AdaptiveLinearCost cost(options);
  EXPECT_DOUBLE_EQ(cost.Cost(0), 0.0);
  EXPECT_DOUBLE_EQ(cost.Cost(10), 23.0);
}

TEST(AdaptiveLinearCostTest, SingleObservationFitsThroughOrigin) {
  AdaptiveLinearCost cost;
  cost.Observe(10, 50.0);
  EXPECT_NEAR(cost.a(), 5.0, 1e-9);
  EXPECT_NEAR(cost.Cost(20), 100.0, 1e-6);
}

TEST(AdaptiveLinearCostTest, ConvergesToTrueParametersFromNoisySamples) {
  AdaptiveCostOptions options;
  options.forgetting = 1.0;  // plain least squares
  AdaptiveLinearCost cost(options);
  Rng rng(5);
  const double true_a = 0.4, true_b = 12.0;
  for (int i = 0; i < 500; ++i) {
    const uint64_t k = static_cast<uint64_t>(rng.UniformInt(1, 400));
    const double noise = rng.Normal(0.0, 1.0);
    cost.Observe(k, true_a * static_cast<double>(k) + true_b + noise);
  }
  EXPECT_NEAR(cost.a(), true_a, 0.02);
  EXPECT_NEAR(cost.b(), true_b, 2.0);
  EXPECT_EQ(cost.observations(), 500u);
}

TEST(AdaptiveLinearCostTest, ForgettingTracksDrift) {
  AdaptiveLinearCost cost;  // forgetting = 0.98
  Rng rng(6);
  // Phase 1: cheap scans (b = 5).
  for (int i = 0; i < 300; ++i) {
    const uint64_t k = static_cast<uint64_t>(rng.UniformInt(1, 200));
    cost.Observe(k, 0.1 * static_cast<double>(k) + 5.0);
  }
  EXPECT_NEAR(cost.b(), 5.0, 1.0);
  // Phase 2: the table grew 4x (b = 20); the model must follow.
  for (int i = 0; i < 300; ++i) {
    const uint64_t k = static_cast<uint64_t>(rng.UniformInt(1, 200));
    cost.Observe(k, 0.1 * static_cast<double>(k) + 20.0);
  }
  EXPECT_NEAR(cost.b(), 20.0, 2.0);
  EXPECT_NEAR(cost.a(), 0.1, 0.05);
}

TEST(AdaptiveLinearCostTest, AlwaysAValidCostFunction) {
  // Feed adversarially decreasing costs; the exposed function must stay
  // monotone and subadditive (a > 0, b >= 0) throughout.
  AdaptiveLinearCost cost;
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    cost.Observe(static_cast<uint64_t>(rng.UniformInt(1, 100)),
                 rng.UniformDouble(0.0, 1.0));
    EXPECT_GT(cost.a(), 0.0) << "after obs " << i;
    EXPECT_GE(cost.b(), 0.0) << "after obs " << i;
    EXPECT_TRUE(IsMonotone(cost, 50)) << "after obs " << i;
    EXPECT_TRUE(IsSubadditive(cost, 50)) << "after obs " << i;
  }
}

TEST(AdaptiveLinearCostTest, DegenerateIdenticalBatchSizes) {
  // All observations at the same k: the 2x2 system is singular; the model
  // must still produce a sensible proportional estimate.
  AdaptiveLinearCost cost;
  for (int i = 0; i < 10; ++i) cost.Observe(50, 100.0);
  EXPECT_NEAR(cost.Cost(50), 100.0, 1e-6);
}

TEST(AdaptiveLinearCostTest, ZeroBatchObservationsIgnored) {
  AdaptiveLinearCost cost;
  cost.Observe(0, 999.0);
  EXPECT_EQ(cost.observations(), 0u);
}

TEST(AdaptiveLinearCostTest, FreezeSnapshotsTheCurrentFit) {
  AdaptiveLinearCost cost;
  cost.Observe(10, 20.0);
  cost.Observe(20, 30.0);
  const CostFunctionPtr frozen = cost.Freeze();
  const double before = frozen->Cost(100);
  cost.Observe(10, 500.0);  // drift after the snapshot
  EXPECT_DOUBLE_EQ(frozen->Cost(100), before);
  EXPECT_NE(cost.Cost(100), before);
}

TEST(AdaptiveLinearCostTest, MaxBatchWithinMatchesLinearEquivalent) {
  AdaptiveLinearCost cost;
  cost.Observe(10, 20.0);
  cost.Observe(20, 30.0);  // fit: a = 1, b = 10
  EXPECT_NEAR(cost.a(), 1.0, 1e-6);
  EXPECT_NEAR(cost.b(), 10.0, 1e-6);
  EXPECT_EQ(cost.MaxBatchWithin(30.0), 20u);
}

}  // namespace
}  // namespace abivm
