// The digitized Figure-1 cost functions must reproduce the numbers the
// paper's text states.

#include <gtest/gtest.h>

#include "cost/cost_function.h"

namespace abivm {
namespace {

TEST(PaperFig1CostsTest, LinearSideIsQuarterMillisecondPerTuple) {
  const CostFunctionPtr f = MakePaperFig1LinearSideCost();
  EXPECT_DOUBLE_EQ(f->Cost(0), 0.0);
  EXPECT_DOUBLE_EQ(f->Cost(1), 0.25);
  EXPECT_DOUBLE_EQ(f->Cost(180), 45.0);
  EXPECT_DOUBLE_EQ(f->Cost(1000), 250.0);
}

TEST(PaperFig1CostsTest, ScanSideMatchesPublishedPoints) {
  const CostFunctionPtr f = MakePaperFig1ScanSideCost();
  // "0.35 seconds every 600 dR tuples, when c_dR exceeds 0.35 seconds":
  // 600 fit within the constraint, 610 do not.
  EXPECT_LE(f->Cost(600), kPaperFig1BudgetMs);
  EXPECT_GT(f->Cost(610), kPaperFig1BudgetMs);
  EXPECT_EQ(f->MaxBatchWithin(kPaperFig1BudgetMs), 600u);
  // c(180) ~= 305 ms (NAIVE's flush point: 305 + 45 = 350).
  EXPECT_NEAR(f->Cost(180), 305.0, 1.0);
  // Flat beyond the plateau.
  EXPECT_DOUBLE_EQ(f->Cost(610), f->Cost(100000));
}

TEST(PaperFig1CostsTest, BothAreValidCostFunctions) {
  EXPECT_TRUE(IsMonotone(*MakePaperFig1LinearSideCost(), 1000));
  EXPECT_TRUE(IsSubadditive(*MakePaperFig1LinearSideCost(), 700));
  EXPECT_TRUE(IsMonotone(*MakePaperFig1ScanSideCost(), 1000));
  EXPECT_TRUE(IsSubadditive(*MakePaperFig1ScanSideCost(), 700));
}

TEST(PaperFig1CostsTest, NaiveFlushCadenceMatchesTheIntro) {
  // With 1 + 1 arrivals per step, the combined backlog exceeds C first at
  // 181 modifications per table -- the paper's "roughly every 360
  // modifications (180 in each batch)".
  const CostFunctionPtr s = MakePaperFig1LinearSideCost();
  const CostFunctionPtr r = MakePaperFig1ScanSideCost();
  uint64_t k = 0;
  while (s->Cost(k) + r->Cost(k) <= kPaperFig1BudgetMs) ++k;
  EXPECT_NEAR(static_cast<double>(k), 180.0, 2.0);
}

}  // namespace
}  // namespace abivm
