#include "ivm/view_state.h"

#include <gtest/gtest.h>

namespace abivm {
namespace {

Row Key(const std::string& k) { return {Value(k)}; }

TEST(ViewStateTest, SpjBagSemantics) {
  ViewState state;
  const Row row = {Value(int64_t{1}), Value("x")};
  state.Apply(row, Value(), 1);
  state.Apply(row, Value(), 1);
  EXPECT_EQ(state.RowMultiplicity(row), 2);
  state.Apply(row, Value(), -1);
  EXPECT_EQ(state.RowMultiplicity(row), 1);
  state.Apply(row, Value(), -1);
  EXPECT_EQ(state.RowMultiplicity(row), 0);
  EXPECT_EQ(state.NumKeys(), 0u);
}

TEST(ViewStateTest, CountAggregate) {
  ViewState state(AggKind::kCount);
  state.Apply(Key("a"), Value(), 1);
  state.Apply(Key("a"), Value(), 1);
  state.Apply(Key("b"), Value(), 1);
  EXPECT_EQ(state.GroupContributors(Key("a")), 2);
  EXPECT_EQ(state.GroupContributors(Key("b")), 1);
  EXPECT_EQ(state.GroupContributors(Key("zzz")), 0);
}

TEST(ViewStateTest, SumAggregate) {
  ViewState state(AggKind::kSum);
  state.Apply(Key("a"), Value(2.5), 1);
  state.Apply(Key("a"), Value(4.0), 1);
  state.Apply(Key("a"), Value(2.5), -1);
  ASSERT_TRUE(state.GroupSum(Key("a")).has_value());
  EXPECT_DOUBLE_EQ(*state.GroupSum(Key("a")), 4.0);
}

TEST(ViewStateTest, SumOfIntColumn) {
  ViewState state(AggKind::kSum);
  state.Apply(Key("a"), Value(int64_t{10}), 1);
  state.Apply(Key("a"), Value(int64_t{5}), 1);
  state.Apply(Key("a"), Value(int64_t{3}), -1);  // one contributor replaced
  EXPECT_DOUBLE_EQ(*state.GroupSum(Key("a")), 12.0);
  EXPECT_EQ(state.GroupContributors(Key("a")), 1);
}

TEST(ViewStateTest, SumGroupVanishesWithLastContributor) {
  ViewState state(AggKind::kSum);
  state.Apply(Key("a"), Value(int64_t{10}), 1);
  state.Apply(Key("a"), Value(int64_t{10}), -1);
  EXPECT_FALSE(state.GroupSum(Key("a")).has_value());
  EXPECT_EQ(state.NumKeys(), 0u);
}

TEST(ViewStateTest, MinSurvivesDeletionOfCurrentMin) {
  // The crux of MIN maintenance: deleting the minimum must surface the
  // runner-up, which requires the multiset (not just the min value).
  ViewState state(AggKind::kMin);
  state.Apply(Row{}, Value(5.0), 1);
  state.Apply(Row{}, Value(2.0), 1);
  state.Apply(Row{}, Value(8.0), 1);
  EXPECT_EQ(*state.ScalarMin(), Value(2.0));
  state.Apply(Row{}, Value(2.0), -1);
  EXPECT_EQ(*state.ScalarMin(), Value(5.0));
  state.Apply(Row{}, Value(5.0), -1);
  EXPECT_EQ(*state.ScalarMin(), Value(8.0));
}

TEST(ViewStateTest, MinWithDuplicateValues) {
  ViewState state(AggKind::kMin);
  state.Apply(Row{}, Value(2.0), 1);
  state.Apply(Row{}, Value(2.0), 1);
  state.Apply(Row{}, Value(2.0), -1);
  // One copy of the minimum remains.
  EXPECT_EQ(*state.ScalarMin(), Value(2.0));
}

TEST(ViewStateTest, MaxAggregate) {
  ViewState state(AggKind::kMax);
  state.Apply(Key("g"), Value(int64_t{5}), 1);
  state.Apply(Key("g"), Value(int64_t{9}), 1);
  EXPECT_EQ(*state.GroupMax(Key("g")), Value(int64_t{9}));
  state.Apply(Key("g"), Value(int64_t{9}), -1);
  EXPECT_EQ(*state.GroupMax(Key("g")), Value(int64_t{5}));
}

TEST(ViewStateTest, EmptyGroupReportsNullopt) {
  ViewState state(AggKind::kMin);
  EXPECT_FALSE(state.ScalarMin().has_value());
  state.Apply(Row{}, Value(1.0), 1);
  state.Apply(Row{}, Value(1.0), -1);
  EXPECT_FALSE(state.ScalarMin().has_value());
  EXPECT_EQ(state.NumKeys(), 0u);
}

TEST(ViewStateTest, SameContentsDetectsDifferences) {
  ViewState a(AggKind::kMin);
  ViewState b(AggKind::kMin);
  a.Apply(Key("g"), Value(1.0), 1);
  b.Apply(Key("g"), Value(1.0), 1);
  EXPECT_TRUE(a.SameContents(b));
  b.Apply(Key("g"), Value(3.0), 1);
  EXPECT_FALSE(a.SameContents(b));
  a.Apply(Key("g"), Value(3.0), 1);
  EXPECT_TRUE(a.SameContents(b));
}

TEST(ViewStateTest, CopyIsIndependent) {
  ViewState a(AggKind::kSum);
  a.Apply(Key("g"), Value(1.0), 1);
  ViewState copy = a;
  copy.Apply(Key("g"), Value(5.0), 1);
  EXPECT_DOUBLE_EQ(*a.GroupSum(Key("g")), 1.0);
  EXPECT_DOUBLE_EQ(*copy.GroupSum(Key("g")), 6.0);
}

}  // namespace
}  // namespace abivm
