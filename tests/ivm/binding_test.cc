#include "ivm/binding.h"

#include <gtest/gtest.h>

#include "tpc/tpc_gen.h"
#include "tpc/views.h"

namespace abivm {
namespace {

struct Fixture {
  Database db;
  Fixture() {
    TpcGenOptions options;
    options.scale_factor = 0.001;
    GenerateTpcDatabase(&db, options);
  }
};

TEST(ViewBindingTest, PaperViewPipelinesAreConnected) {
  Fixture fx;
  ViewBinding binding(&fx.db, MakePaperMinView());
  ASSERT_EQ(binding.num_tables(), 4u);
  EXPECT_EQ(binding.TableIndex(kPartSupp), 0u);
  EXPECT_EQ(binding.TableIndex(kRegion), 3u);

  // Every delta pipeline joins the three other tables.
  for (size_t i = 0; i < 4; ++i) {
    const BoundPipeline& p = binding.delta_pipeline(i);
    EXPECT_EQ(p.leading_index, i);
    EXPECT_EQ(p.steps.size(), 3u);
  }
}

TEST(ViewBindingTest, PartsuppPipelineJoinsSupplierFirst) {
  Fixture fx;
  ViewBinding binding(&fx.db, MakePaperMinView());
  const BoundPipeline& p = binding.delta_pipeline(0);  // partsupp deltas
  EXPECT_EQ(p.steps[0].table->name(), kSupplier);
  EXPECT_EQ(p.steps[1].table->name(), kNation);
  EXPECT_EQ(p.steps[2].table->name(), kRegion);
  // Early projection keeps only ps_suppkey (join key) and ps_supplycost
  // (the aggregate input) from partsupp, in that order.
  EXPECT_EQ(p.initial_projection, (std::vector<size_t>{1, 3}));
  // The join key is physical position 0 after the projection; the
  // supplier join key is column 0 of supplier.
  EXPECT_EQ(p.steps[0].left_column, 0u);
  EXPECT_EQ(p.steps[0].right_column, 0u);
  // The supplier step only materializes s_nationkey (column 3), which the
  // nation join needs.
  EXPECT_EQ(p.steps[0].right_keep, (std::vector<size_t>{3}));
}

TEST(ViewBindingTest, PredicateBindsToRegionStep) {
  Fixture fx;
  ViewBinding binding(&fx.db, MakePaperMinView());
  const BoundPipeline& p = binding.delta_pipeline(0);
  EXPECT_TRUE(p.leading_predicates.empty());
  EXPECT_TRUE(p.steps[0].predicates.empty());
  EXPECT_TRUE(p.steps[1].predicates.empty());
  ASSERT_EQ(p.steps[2].predicates.size(), 1u);
  EXPECT_EQ(p.steps[2].predicates[0].constant, Value("MIDDLE EAST"));
  // The region step keeps only r_name (column 1) for the predicate, and
  // projects it away afterwards.
  EXPECT_EQ(p.steps[2].right_keep, (std::vector<size_t>{1}));
  EXPECT_FALSE(p.steps[2].post_projection.empty());
}

TEST(ViewBindingTest, RegionLedPipelinePutsPredicateFirst) {
  Fixture fx;
  ViewBinding binding(&fx.db, MakePaperMinView());
  const BoundPipeline& p =
      binding.delta_pipeline(binding.TableIndex(kRegion));
  ASSERT_EQ(p.leading_predicates.size(), 1u);
  EXPECT_EQ(p.leading_predicates[0].op, CompareOp::kEq);
  // Join order from region: nation, then supplier, then partsupp.
  EXPECT_EQ(p.steps[0].table->name(), kNation);
  EXPECT_EQ(p.steps[1].table->name(), kSupplier);
  EXPECT_EQ(p.steps[2].table->name(), kPartSupp);
}

TEST(ViewBindingTest, AggregateColumnResolved) {
  Fixture fx;
  ViewBinding binding(&fx.db, MakePaperMinView());
  const BoundPipeline& p = binding.delta_pipeline(0);
  ASSERT_TRUE(p.has_aggregate_column);
  // After the final projection, ps_supplycost is the only surviving
  // column.
  EXPECT_EQ(p.aggregate_column, 0u);
  EXPECT_TRUE(p.key_columns.empty());  // scalar aggregate
}

TEST(ViewBindingTest, SpjOutputColumnsResolved) {
  Fixture fx;
  ViewBinding binding(&fx.db, MakeTwoWayJoinView());
  const BoundPipeline& p = binding.delta_pipeline(0);
  ASSERT_EQ(p.key_columns.size(), 4u);
  EXPECT_FALSE(p.has_aggregate_column);
}

TEST(ViewBindingTest, DisconnectedJoinGraphIsRejected) {
  Fixture fx;
  ViewDef def;
  def.name = "broken";
  def.tables = {kPartSupp, kRegion};  // no join condition at all
  def.output_columns = {{kPartSupp, "ps_partkey"}};
  EXPECT_DEATH(ViewBinding(&fx.db, def), "not connected");
}

TEST(ViewBindingTest, UnknownTableIsRejected) {
  Fixture fx;
  ViewDef def;
  def.name = "broken";
  def.tables = {"nonexistent"};
  def.output_columns = {{"nonexistent", "c"}};
  EXPECT_DEATH(ViewBinding(&fx.db, def), "no table named");
}

}  // namespace
}  // namespace abivm
