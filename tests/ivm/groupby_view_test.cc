// GROUP BY aggregate views and multi-condition joins maintained under
// asymmetric batches, checked against the recompute oracle.

#include <gtest/gtest.h>

#include "common/random.h"
#include "ivm/maintainer.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

struct SalesFixture {
  Database db;
  TpcUpdater updater{&db, 5};

  SalesFixture() {
    TpcGenOptions options;
    options.scale_factor = 0.001;
    options.include_sales_pipeline = true;
    GenerateTpcDatabase(&db, options);
    db.table(kCustomer).CreateHashIndex("c_custkey");
  }
};

TEST(GroupByViewTest, SumBySegmentMatchesOracleInitially) {
  SalesFixture fx;
  ViewMaintainer maintainer(&fx.db, MakeSalesBySegmentView());
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
  // Five market segments exist and every order lands in one of them.
  EXPECT_LE(maintainer.state().NumKeys(), 5u);
  EXPECT_GE(maintainer.state().NumKeys(), 1u);
}

TEST(GroupByViewTest, OrderInsertsMoveTheRightGroup) {
  SalesFixture fx;
  ViewMaintainer maintainer(&fx.db, MakeSalesBySegmentView());
  const auto before = maintainer.state().Snapshot();

  for (int i = 0; i < 40; ++i) fx.updater.InsertOrder();
  maintainer.RefreshAll();
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));

  // Total order count across groups grew by exactly 40.
  int64_t before_total = 0;
  for (const auto& [key, group] : before) before_total += group.count;
  int64_t after_total = 0;
  for (const auto& [key, group] : maintainer.state().Snapshot()) {
    after_total += group.count;
  }
  EXPECT_EQ(after_total, before_total + 40);
}

TEST(GroupByViewTest, CustomerSegmentUpdatesMoveOrdersBetweenGroups) {
  SalesFixture fx;
  ViewMaintainer maintainer(&fx.db, MakeSalesBySegmentView());
  for (int i = 0; i < 25; ++i) fx.updater.UpdateCustomerSegment();
  // Asymmetric processing: orders table untouched, customer deltas only.
  const size_t cust = maintainer.binding().TableIndex(kCustomer);
  maintainer.ProcessBatch(cust, 10);
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
  maintainer.RefreshAll();
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
}

TEST(GroupByViewTest, MixedWorkloadRandomInterleavings) {
  Rng rng(99);
  SalesFixture fx;
  ViewMaintainer maintainer(&fx.db, MakeSalesBySegmentView());
  TpcUpdater updater(&fx.db, 321);
  for (int round = 0; round < 10; ++round) {
    const int64_t inserts = rng.UniformInt(0, 6);
    const int64_t seg_updates = rng.UniformInt(0, 3);
    for (int64_t i = 0; i < inserts; ++i) updater.InsertOrder();
    for (int64_t i = 0; i < seg_updates; ++i) {
      updater.UpdateCustomerSegment();
    }
    for (size_t table = 0; table < 2; ++table) {
      const size_t pending = maintainer.PendingCount(table);
      if (pending == 0 || !rng.Bernoulli(0.6)) continue;
      maintainer.ProcessBatch(
          table, static_cast<size_t>(
                     rng.UniformInt(1, static_cast<int64_t>(pending))));
    }
    ASSERT_TRUE(maintainer.state().SameContents(
        maintainer.RecomputeAtWatermarks()))
        << "round " << round;
  }
}

// A view whose two tables are connected by TWO join conditions; the
// second must be enforced as a residual equality.
TEST(ResidualEqualityTest, MultiConditionJoinMaintainedCorrectly) {
  Database db;
  Table& left = db.CreateTable(
      "left", Schema({{"a", ValueType::kInt64},
                      {"b", ValueType::kInt64},
                      {"payload", ValueType::kDouble}}));
  Table& right = db.CreateTable(
      "right", Schema({{"a", ValueType::kInt64},
                       {"b", ValueType::kInt64},
                       {"weight", ValueType::kDouble}}));
  Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    db.BulkLoad(left, {Value(rng.UniformInt(0, 5)),
                       Value(rng.UniformInt(0, 5)),
                       Value(rng.UniformDouble(0, 10))});
    db.BulkLoad(right, {Value(rng.UniformInt(0, 5)),
                        Value(rng.UniformInt(0, 5)),
                        Value(rng.UniformDouble(0, 10))});
  }

  ViewDef def;
  def.name = "double_join";
  def.tables = {"left", "right"};
  def.joins = {{{"left", "a"}, {"right", "a"}},
               {{"left", "b"}, {"right", "b"}}};
  def.aggregate = AggregateDef{AggKind::kSum, {"right", "weight"}};
  ViewMaintainer maintainer(&db, def);
  ASSERT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));

  // Verify the residual condition actually restricts the result: a
  // single-condition variant must differ (with this seed the (a) join
  // has strictly more matches than the (a AND b) join).
  ViewDef loose = def;
  loose.name = "single_join";
  loose.joins = {{{"left", "a"}, {"right", "a"}}};
  ViewMaintainer loose_maintainer(&db, loose);
  EXPECT_GT(loose_maintainer.state().ScalarCount(),
            maintainer.state().ScalarCount());

  // Incremental maintenance under updates on both sides.
  for (int i = 0; i < 30; ++i) {
    Table& t = i % 2 == 0 ? left : right;
    const RowId id = t.SampleLiveRow(rng);
    Row row = t.RowAt(id).row;
    row[static_cast<size_t>(rng.UniformInt(0, 1))] =
        Value(rng.UniformInt(0, 5));
    db.ApplyUpdate(t, id, std::move(row));
  }
  maintainer.ProcessBatch(0, 7);
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
  maintainer.RefreshAll();
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
}

}  // namespace
}  // namespace abivm
