#include "ivm/sql_parser.h"

#include <gtest/gtest.h>

#include "ivm/maintainer.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

struct Fixture {
  Database db;
  Fixture() {
    TpcGenOptions options;
    options.scale_factor = 0.001;
    options.include_sales_pipeline = true;
    GenerateTpcDatabase(&db, options);
    CreatePaperIndexes(&db);
  }
};

constexpr const char* kPaperSql =
    "SELECT MIN(ps_supplycost) "
    "FROM partsupp, supplier, nation, region "
    "WHERE s_suppkey = ps_suppkey AND s_nationkey = n_nationkey "
    "AND n_regionkey = r_regionkey AND r_name = 'MIDDLE EAST'";

TEST(SqlParserTest, ParsesThePaperView) {
  Fixture fx;
  const Result<ViewDef> parsed = ParseViewSql(fx.db, "paper_view",
                                              kPaperSql);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ViewDef& def = parsed.value();
  EXPECT_EQ(def.tables,
            (std::vector<std::string>{"partsupp", "supplier", "nation",
                                      "region"}));
  EXPECT_EQ(def.joins.size(), 3u);
  ASSERT_EQ(def.predicates.size(), 1u);
  EXPECT_EQ(def.predicates[0].column.table, "region");
  EXPECT_EQ(def.predicates[0].constant, Value("MIDDLE EAST"));
  ASSERT_TRUE(def.aggregate.has_value());
  EXPECT_EQ(def.aggregate->kind, AggKind::kMin);
  EXPECT_EQ(def.aggregate->column.table, "partsupp");
  EXPECT_EQ(def.aggregate->column.column, "ps_supplycost");
  EXPECT_TRUE(def.group_by.empty());
}

TEST(SqlParserTest, ParsedPaperViewBehavesLikeTheHandWrittenOne) {
  Fixture fx;
  const Result<ViewDef> parsed =
      ParseViewSql(fx.db, "paper_view", kPaperSql);
  ASSERT_TRUE(parsed.ok());
  ViewMaintainer from_sql(&fx.db, parsed.value());
  ViewMaintainer hand_written(&fx.db, MakePaperMinView());
  EXPECT_TRUE(from_sql.state().SameContents(hand_written.state()));

  TpcUpdater updater(&fx.db, 12);
  for (int i = 0; i < 15; ++i) updater.UpdatePartSuppSupplycost();
  for (int i = 0; i < 5; ++i) updater.UpdateSupplierNationkey();
  from_sql.RefreshAll();
  hand_written.RefreshAll();
  EXPECT_TRUE(from_sql.state().SameContents(hand_written.state()));
}

TEST(SqlParserTest, GroupByAggregateWithQualifiedColumns) {
  Fixture fx;
  const Result<ViewDef> parsed = ParseViewSql(
      fx.db, "sales",
      "SELECT customer.c_mktsegment, SUM(orders.o_totalprice) "
      "FROM orders, customer WHERE o_custkey = c_custkey "
      "GROUP BY customer.c_mktsegment");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ViewDef& def = parsed.value();
  ASSERT_TRUE(def.aggregate.has_value());
  EXPECT_EQ(def.aggregate->kind, AggKind::kSum);
  ASSERT_EQ(def.group_by.size(), 1u);
  EXPECT_EQ(def.group_by[0].column, "c_mktsegment");
  // Usable end to end.
  ViewMaintainer maintainer(&fx.db, def);
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
}

TEST(SqlParserTest, SpjProjectionView) {
  Fixture fx;
  const Result<ViewDef> parsed = ParseViewSql(
      fx.db, "spj",
      "SELECT ps_partkey, ps_suppkey, ps_supplycost, p_retailprice "
      "FROM partsupp, part WHERE p_partkey = ps_partkey");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed.value().is_aggregate());
  EXPECT_EQ(parsed.value().output_columns.size(), 4u);
}

TEST(SqlParserTest, NumericLiteralsAndOperators) {
  Fixture fx;
  const Result<ViewDef> parsed = ParseViewSql(
      fx.db, "cheap",
      "SELECT COUNT(*) FROM partsupp "
      "WHERE ps_supplycost <= 500.5 AND ps_availqty > 10 "
      "AND ps_availqty <> 42");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ViewDef& def = parsed.value();
  ASSERT_EQ(def.predicates.size(), 3u);
  EXPECT_EQ(def.predicates[0].op, CompareOp::kLe);
  EXPECT_EQ(def.predicates[0].constant, Value(500.5));
  EXPECT_EQ(def.predicates[1].op, CompareOp::kGt);
  EXPECT_EQ(def.predicates[1].constant, Value(int64_t{10}));
  EXPECT_EQ(def.predicates[2].op, CompareOp::kNe);
  ASSERT_TRUE(def.aggregate.has_value());
  EXPECT_EQ(def.aggregate->kind, AggKind::kCount);

  // COUNT(*) view works end to end against the oracle.
  ViewMaintainer maintainer(&fx.db, def);
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
  EXPECT_GT(maintainer.state().ScalarCount(), 0);
}

TEST(SqlParserTest, CaseInsensitiveKeywords) {
  Fixture fx;
  const Result<ViewDef> parsed = ParseViewSql(
      fx.db, "v",
      "select min(ps_supplycost) from partsupp, supplier "
      "where s_suppkey = ps_suppkey");
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST(SqlParserTest, ErrorMessages) {
  Fixture fx;
  auto expect_error = [&](const std::string& sql,
                          const std::string& fragment) {
    const Result<ViewDef> parsed = ParseViewSql(fx.db, "v", sql);
    ASSERT_FALSE(parsed.ok()) << sql;
    EXPECT_NE(parsed.status().message().find(fragment), std::string::npos)
        << "message: " << parsed.status().message();
  };
  expect_error("FROM partsupp", "expected 'select'");
  expect_error("SELECT ps_partkey FROM", "expected a table name");
  expect_error("SELECT nope FROM partsupp", "not found in any FROM table");
  expect_error("SELECT ps_partkey FROM no_such_table", "unknown table");
  expect_error(
      "SELECT s_suppkey FROM supplier, partsupp "
      "WHERE s_suppkey < ps_suppkey",
      "only equality joins");
  expect_error("SELECT ps_partkey FROM partsupp WHERE ps_partkey = 'x",
               "unterminated string");
  expect_error(
      "SELECT MIN(ps_supplycost), MAX(ps_supplycost) FROM partsupp",
      "at most one aggregate");
  expect_error("SELECT ps_partkey FROM partsupp GROUP BY ps_partkey",
               "GROUP BY requires an aggregate");
  expect_error(
      "SELECT ps_suppkey, MIN(ps_supplycost) FROM partsupp "
      "GROUP BY ps_partkey",
      "must match");
  expect_error("SELECT ps_partkey FROM partsupp extra", "trailing input");
  // Ambiguous unqualified column: both supplier and customer have one
  // named the same? Use nationkey-style collision via s_nationkey vs ...
  // partsupp/part share no names, but customer and supplier both have
  // columns named differently; construct ambiguity with 'ps_partkey'
  // appearing in partsupp AND part? It does not. Use two tables sharing
  // 'p_partkey': none. So test qualified-miss instead:
  expect_error("SELECT partsupp.nope FROM partsupp", "has no column");
  expect_error("SELECT region.r_name FROM partsupp", "not in the FROM");
}

TEST(SqlParserTest, OutOfRangeLiteralsAreErrorsNotCrashes) {
  // These used to throw std::out_of_range from std::stoll / std::stod
  // (an uncaught-exception abort); they must surface as parse errors.
  Fixture fx;
  auto expect_error = [&](const std::string& sql,
                          const std::string& fragment) {
    const Result<ViewDef> parsed = ParseViewSql(fx.db, "v", sql);
    ASSERT_FALSE(parsed.ok()) << sql;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().message().find(fragment), std::string::npos)
        << "message: " << parsed.status().message();
  };
  expect_error(
      "SELECT ps_partkey FROM partsupp "
      "WHERE ps_partkey = 99999999999999999999999999999999",
      "out of range");
  // ~10^400: overflows double (the lexer has no exponent syntax, so the
  // overflow must come as a long plain-decimal literal).
  expect_error("SELECT ps_partkey FROM partsupp WHERE ps_supplycost < " +
                   std::string(400, '9') + ".0",
               "not representable");

  // Extreme-but-valid literals still parse exactly.
  const Result<ViewDef> ok = ParseViewSql(
      fx.db, "v",
      "SELECT ps_partkey FROM partsupp "
      "WHERE ps_partkey < 9223372036854775807");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ASSERT_EQ(ok.value().predicates.size(), 1u);
  EXPECT_EQ(ok.value().predicates[0].constant,
            Value(int64_t{9223372036854775807LL}));
}

}  // namespace
}  // namespace abivm
