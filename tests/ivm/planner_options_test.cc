// The planner toggles (join reorder, projection pushdown) must never
// change WHAT the view contains -- only how much work maintenance does.

#include <gtest/gtest.h>

#include "ivm/maintainer.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

class PlannerOptionsTest
    : public ::testing::TestWithParam<BindingOptions> {};

TEST_P(PlannerOptionsTest, SameViewContentUnderAnyConfiguration) {
  Database db;
  TpcGenOptions gen;
  gen.scale_factor = 0.001;
  GenerateTpcDatabase(&db, gen);
  CreatePaperIndexes(&db);

  ViewMaintainer reference(&db, MakePaperMinView());  // defaults
  ViewMaintainer variant(&db, MakePaperMinView(), GetParam());
  EXPECT_TRUE(variant.state().SameContents(reference.state()));

  TpcUpdater updater(&db, 3);
  for (int i = 0; i < 30; ++i) updater.UpdatePartSuppSupplycost();
  for (int i = 0; i < 10; ++i) updater.UpdateSupplierNationkey();

  // Same asymmetric schedule on both.
  reference.ProcessBatch(0, 17);
  variant.ProcessBatch(0, 17);
  reference.ProcessBatch(1, 4);
  variant.ProcessBatch(1, 4);
  EXPECT_TRUE(variant.state().SameContents(reference.state()));
  EXPECT_TRUE(variant.state().SameContents(
      variant.RecomputeAtWatermarks()));

  reference.RefreshAll();
  variant.RefreshAll();
  EXPECT_TRUE(variant.state().SameContents(reference.state()));
}

TEST_P(PlannerOptionsTest, SpjViewContentUnderAnyConfiguration) {
  Database db;
  TpcGenOptions gen;
  gen.scale_factor = 0.001;
  GenerateTpcDatabase(&db, gen);
  CreatePaperIndexes(&db);
  ViewMaintainer reference(&db, MakeTwoWayJoinView());
  ViewMaintainer variant(&db, MakeTwoWayJoinView(), GetParam());
  TpcUpdater updater(&db, 8);
  for (int i = 0; i < 20; ++i) updater.UpdatePartSuppSupplycost();
  for (int i = 0; i < 6; ++i) updater.UpdatePartRetailprice();
  reference.RefreshAll();
  variant.RefreshAll();
  EXPECT_TRUE(variant.state().SameContents(reference.state()));
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, PlannerOptionsTest,
    ::testing::Values(BindingOptions{true, true},
                      BindingOptions{false, true},
                      BindingOptions{true, false},
                      BindingOptions{false, false}),
    [](const ::testing::TestParamInfo<BindingOptions>& info) {
      std::string name;
      name += info.param.reorder_joins ? "reorder" : "noreorder";
      name += "_";
      name += info.param.projection_pushdown ? "pushdown" : "nopushdown";
      return name;
    });

}  // namespace
}  // namespace abivm
