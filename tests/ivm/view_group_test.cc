#include "ivm/view_group.h"

#include <gtest/gtest.h>

#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

struct Fixture {
  Database db;
  TpcUpdater updater{&db, 6};

  Fixture() {
    TpcGenOptions options;
    options.scale_factor = 0.001;
    GenerateTpcDatabase(&db, options);
    CreatePaperIndexes(&db);
  }
};

TEST(ViewGroupTest, IndependentWatermarksPerView) {
  Fixture fx;
  ViewGroup group(&fx.db);
  ViewMaintainer& min_view = group.AddView(MakePaperMinView());
  ViewMaintainer& join_view = group.AddView(MakeTwoWayJoinView());
  EXPECT_EQ(group.size(), 2u);
  EXPECT_TRUE(group.AllConsistent());

  // Partsupp updates are pending for BOTH views; each processes at its
  // own pace.
  for (int i = 0; i < 20; ++i) fx.updater.UpdatePartSuppSupplycost();
  EXPECT_EQ(min_view.PendingCount(0), 20u);
  EXPECT_EQ(join_view.PendingCount(0), 20u);

  min_view.ProcessBatch(0, 15);
  EXPECT_EQ(min_view.PendingCount(0), 5u);
  EXPECT_EQ(join_view.PendingCount(0), 20u);  // untouched
  EXPECT_FALSE(group.AllConsistent());

  EXPECT_TRUE(min_view.state().SameContents(
      min_view.RecomputeAtWatermarks()));
  EXPECT_TRUE(join_view.state().SameContents(
      join_view.RecomputeAtWatermarks()));

  group.RefreshAll();
  EXPECT_TRUE(group.AllConsistent());
}

TEST(ViewGroupTest, FindViewByName) {
  Fixture fx;
  ViewGroup group(&fx.db);
  group.AddView(MakePaperMinView());
  EXPECT_NE(group.FindView("min_supplycost_middle_east"), nullptr);
  EXPECT_EQ(group.FindView("nonexistent"), nullptr);
}

TEST(ViewGroupTest, VacuumRespectsTheLaggard) {
  Fixture fx;
  ViewGroup group(&fx.db);
  ViewMaintainer& fast = group.AddView(MakePaperMinView());
  ViewMaintainer& slow = group.AddView(MakeTwoWayJoinView());

  for (int i = 0; i < 30; ++i) fx.updater.UpdatePartSuppSupplycost();
  fast.ProcessBatch(0, 30);
  slow.ProcessBatch(0, 10);  // lags behind

  // Vacuum must keep the history the slow view still needs.
  group.VacuumConsumed();
  const DeltaLog& log = fx.db.table(kPartSupp).delta_log();
  EXPECT_EQ(log.first_retained(), slow.watermark_position(0));

  // The slow view can still process its remaining deltas correctly.
  slow.ProcessBatch(0, 20);
  EXPECT_TRUE(
      slow.state().SameContents(slow.RecomputeAtWatermarks()));
  EXPECT_TRUE(
      fast.state().SameContents(fast.RecomputeAtWatermarks()));

  // Now everything is consumed; vacuum can trim to the head.
  group.VacuumConsumed();
  EXPECT_EQ(log.first_retained(), log.size());
}

TEST(ViewGroupTest, UnreferencedTablesVacuumFully) {
  Fixture fx;
  ViewGroup group(&fx.db);
  group.AddView(MakeTwoWayJoinView());  // partsupp + part only
  for (int i = 0; i < 5; ++i) fx.updater.UpdateSupplierNationkey();
  group.VacuumConsumed();
  const DeltaLog& supplier_log = fx.db.table(kSupplier).delta_log();
  EXPECT_EQ(supplier_log.first_retained(), supplier_log.size());
}

TEST(ViewGroupTest, ViewAddedLaterStartsConsistent) {
  Fixture fx;
  ViewGroup group(&fx.db);
  group.AddView(MakePaperMinView());
  for (int i = 0; i < 10; ++i) fx.updater.UpdatePartSuppSupplycost();
  // A new subscription arrives mid-stream: it materializes from the
  // CURRENT database state with nothing pending.
  ViewMaintainer& late = group.AddView(MakeTwoWayJoinView());
  EXPECT_TRUE(late.IsConsistent());
  EXPECT_TRUE(late.state().SameContents(late.RecomputeAtWatermarks()));
  // The earlier view still has its backlog.
  EXPECT_EQ(group.view(0).PendingCount(0), 10u);
}

}  // namespace
}  // namespace abivm
