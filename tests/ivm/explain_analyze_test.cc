#include <gtest/gtest.h>

#include "cost/cost_function.h"
#include "ivm/explain.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

struct Fixture {
  Database db;
  TpcUpdater updater{&db, 13};

  Fixture() {
    TpcGenOptions options;
    options.scale_factor = 0.002;
    GenerateTpcDatabase(&db, options);
    CreatePaperIndexes(&db);
  }
};

TEST(ExplainAnalyzeTest, IndexJoinPipelineShowsMeasuredProbes) {
  Fixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  for (int i = 0; i < 32; ++i) fx.updater.UpdatePartSuppSupplycost();

  const ExplainAnalyzeResult result =
      ExplainAnalyzePipeline(maintainer, /*table_index=*/0, /*k=*/32);
  // Dry run: nothing moved.
  EXPECT_EQ(maintainer.PendingCount(0), 32u);
  EXPECT_FALSE(maintainer.profiling_requested());

  EXPECT_NE(result.text.find("EXPLAIN ANALYZE delta(partsupp), k=32"),
            std::string::npos);
  EXPECT_NE(result.text.find("INDEX JOIN supplier"), std::string::npos);
  EXPECT_NE(result.text.find("est:"), std::string::npos);
  EXPECT_NE(result.text.find("meas:"), std::string::npos);
  EXPECT_NE(result.text.find("probes~"), std::string::npos);
  EXPECT_NE(result.text.find("TOTAL"), std::string::npos);
  // Partsupp deltas probe indexes all the way -- no scan estimate.
  EXPECT_EQ(result.text.find("scan~"), std::string::npos);
  // The per-stage slices really sum to the batch totals, and the probe
  // work is batch-proportional (32 updates = 64 delta rows per join).
  EXPECT_TRUE(result.batch.profile.TotalStats() == result.batch.stats);
  EXPECT_GT(result.batch.stats.index_probes, 0u);
  EXPECT_EQ(result.batch.stats.rows_scanned, 0u);
}

TEST(ExplainAnalyzeTest, HashScanPipelineShowsCoTableScanEstimate) {
  Fixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  for (int i = 0; i < 8; ++i) fx.updater.UpdateSupplierNationkey();

  const size_t supplier = maintainer.binding().TableIndex(kSupplier);
  const ExplainAnalyzeResult result =
      ExplainAnalyzePipeline(maintainer, supplier, /*k=*/8);
  EXPECT_NE(result.text.find("HASH+SCAN partsupp"), std::string::npos);
  // The estimate names the flat co-table scan plus the batch-sized build.
  EXPECT_NE(result.text.find("scan~"), std::string::npos);
  EXPECT_NE(result.text.find("build~"), std::string::npos);
  // The measured scan really paid |partsupp|.
  EXPECT_GE(result.batch.stats.rows_scanned,
            fx.db.table(kPartSupp).live_row_count());
  EXPECT_TRUE(result.batch.profile.TotalStats() == result.batch.stats);
}

TEST(ExplainAnalyzeTest, ModelLineComparesEstimatedToMeasured) {
  Fixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  for (int i = 0; i < 16; ++i) fx.updater.UpdatePartSuppSupplycost();

  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.25, 0.0),
      std::make_shared<LinearCost>(0.1, 5.0),
      std::make_shared<LinearCost>(0.1, 1.0),
      std::make_shared<LinearCost>(0.1, 1.0)};
  const CostModel model(std::move(fns));
  const ExplainAnalyzeResult result =
      ExplainAnalyzePipeline(maintainer, 0, 16, &model);
  EXPECT_DOUBLE_EQ(result.estimated_model_cost, 0.25 * 16);
  EXPECT_NE(result.text.find("model: f_partsupp(16) = 4.000"),
            std::string::npos);
}

TEST(ExplainAnalyzeTest, RestoresCallerProfilingChoice) {
  Fixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  for (int i = 0; i < 4; ++i) fx.updater.UpdatePartSuppSupplycost();
  maintainer.EnableProfiling(true);
  ExplainAnalyzePipeline(maintainer, 0, 4);
  EXPECT_TRUE(maintainer.profiling_requested());
  maintainer.EnableProfiling(false);
  ExplainAnalyzePipeline(maintainer, 0, 4);
  EXPECT_FALSE(maintainer.profiling_requested());
}

}  // namespace
}  // namespace abivm
