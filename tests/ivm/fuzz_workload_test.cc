// Fuzz-style workload test: random mixes of inserts, deletes, and updates
// across all four base tables of the paper's MIN view, processed in random
// asymmetric batch interleavings, continuously checked against the
// recompute oracle. This exercises every delta path (insert-only,
// delete-only, update as delete+insert) and the MIN multiset under churn.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ivm/maintainer.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

TEST(FuzzWorkloadTest, MixedModificationKindsMatchOracle) {
  Rng rng(0xF00D);
  for (int trial = 0; trial < 4; ++trial) {
    Database db;
    TpcGenOptions options;
    options.scale_factor = 0.001;
    options.seed = 100 + static_cast<uint64_t>(trial);
    GenerateTpcDatabase(&db, options);
    CreatePaperIndexes(&db);
    ViewMaintainer maintainer(&db, MakePaperMinView());
    TpcUpdater updater(&db, 500 + static_cast<uint64_t>(trial));

    for (int round = 0; round < 15; ++round) {
      // Random burst mixing all modification kinds.
      const int64_t ops = rng.UniformInt(1, 12);
      for (int64_t i = 0; i < ops; ++i) {
        switch (rng.UniformInt(0, 4)) {
          case 0:
            updater.UpdatePartSuppSupplycost();
            break;
          case 1:
            updater.InsertPartSupp();
            break;
          case 2:
            // Never drain the table completely.
            if (db.table(kPartSupp).live_row_count() > 100) {
              updater.DeletePartSupp();
            }
            break;
          case 3:
            updater.UpdateSupplierNationkey();
            break;
          default:
            updater.UpdatePartSuppSupplycost();
            break;
        }
      }
      // Random asymmetric processing.
      for (size_t table = 0; table < maintainer.num_tables(); ++table) {
        const size_t pending = maintainer.PendingCount(table);
        if (pending == 0 || !rng.Bernoulli(0.65)) continue;
        maintainer.ProcessBatch(
            table, static_cast<size_t>(
                       rng.UniformInt(1, static_cast<int64_t>(pending))));
      }
      // Occasional garbage collection mid-stream.
      if (rng.Bernoulli(0.3)) maintainer.VacuumConsumed();
      ASSERT_TRUE(maintainer.state().SameContents(
          maintainer.RecomputeAtWatermarks()))
          << "trial " << trial << " round " << round;
    }
    maintainer.RefreshAll();
    ASSERT_TRUE(maintainer.state().SameContents(
        maintainer.RecomputeAtWatermarks()))
        << "trial " << trial;
  }
}

TEST(FuzzWorkloadTest, InsertsCanLowerTheMinDeletesRaiseIt) {
  Database db;
  TpcGenOptions options;
  options.scale_factor = 0.001;
  GenerateTpcDatabase(&db, options);
  CreatePaperIndexes(&db);
  ViewMaintainer maintainer(&db, MakePaperMinView());
  if (maintainer.state().ScalarCount() == 0) {
    GTEST_SKIP() << "no Middle East suppliers at this seed";
  }

  // Insert a partsupp row with an extremely low cost supplied by a
  // Middle East supplier (find one via the nation catalog).
  Table& supplier = db.table(kSupplier);
  Table& nation = db.table(kNation);
  std::set<int64_t> me_nations;
  nation.ScanAt(0, [&](RowId, const Row& row) {
    if (row[2].AsInt64() == 4) me_nations.insert(row[0].AsInt64());
  });
  int64_t me_suppkey = -1;
  supplier.ScanAt(db.current_version(), [&](RowId, const Row& row) {
    if (me_suppkey == -1 && me_nations.count(row[3].AsInt64())) {
      me_suppkey = row[0].AsInt64();
    }
  });
  ASSERT_NE(me_suppkey, -1);

  Table& partsupp = db.table(kPartSupp);
  db.ApplyInsert(partsupp, {Value(int64_t{1}), Value(me_suppkey),
                            Value(int64_t{1}), Value(0.0001),
                            Value("cheap")});
  maintainer.RefreshAll();
  ASSERT_TRUE(maintainer.state().ScalarMin().has_value());
  EXPECT_DOUBLE_EQ(maintainer.state().ScalarMin()->AsDouble(), 0.0001);

  // Deleting it again restores a higher minimum.
  std::vector<RowId> cheap;
  partsupp.ScanAt(db.current_version(), [&](RowId id, const Row& row) {
    if (row[3] == Value(0.0001)) cheap.push_back(id);
  });
  ASSERT_EQ(cheap.size(), 1u);
  db.ApplyDelete(partsupp, cheap[0]);
  maintainer.RefreshAll();
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
  if (maintainer.state().ScalarMin().has_value()) {
    EXPECT_GT(maintainer.state().ScalarMin()->AsDouble(), 0.0001);
  }
}

}  // namespace
}  // namespace abivm
