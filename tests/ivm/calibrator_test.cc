#include "ivm/calibrator.h"

#include <gtest/gtest.h>

#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

struct Fixture {
  Database db;
  TpcUpdater updater{&db, 3};

  Fixture() {
    TpcGenOptions options;
    options.scale_factor = 0.002;  // 20 suppliers, 1600 partsupps
    GenerateTpcDatabase(&db, options);
    CreatePaperIndexes(&db);
  }
};

TEST(CalibratorTest, ProducesMonotoneSamplesAndValidCostFunctions) {
  Fixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  for (int i = 0; i < 200; ++i) fx.updater.UpdatePartSuppSupplycost();

  const CalibrationResult result = CalibrateTableCost(
      maintainer, /*table_index=*/0, {1, 25, 50, 100, 200},
      CalibratorOptions{.repetitions = 3});
  ASSERT_EQ(result.samples.size(), 5u);
  // Watermarks untouched (all runs were dry).
  EXPECT_EQ(maintainer.PendingCount(0), 200u);

  const CostFunctionPtr linear = result.AsLinearCost();
  const CostFunctionPtr table_driven = result.AsTableDrivenCost();
  EXPECT_TRUE(IsMonotone(*table_driven, 250));
  EXPECT_GT(linear->Cost(100), 0.0);
  // More work for bigger batches (probes scale with batch size).
  EXPECT_GT(result.samples.back().stats.index_probes,
            result.samples.front().stats.index_probes);
}

TEST(CalibratorTest, SupplierBatchesScanPartsupp) {
  Fixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  for (int i = 0; i < 20; ++i) fx.updater.UpdateSupplierNationkey();

  const CalibrationResult result = CalibrateTableCost(
      maintainer, /*table_index=*/1, {1, 10, 20},
      CalibratorOptions{.repetitions = 3});
  // Every supplier batch scans partsupp at least once: the scan count is
  // (nearly) flat in the batch size -- the paper's "amortizable" shape.
  const uint64_t scans_small = result.samples.front().stats.rows_scanned;
  const uint64_t scans_large = result.samples.back().stats.rows_scanned;
  EXPECT_GE(scans_small, fx.db.table(kPartSupp).live_row_count());
  EXPECT_EQ(scans_small, scans_large);
}

TEST(CalibratorTest, DominantOperatorAttributesSupplierCostToScan) {
  Fixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  for (int i = 0; i < 20; ++i) fx.updater.UpdateSupplierNationkey();

  const CalibrationResult result = CalibrateTableCost(
      maintainer, /*table_index=*/1, {1, 10, 20},
      CalibratorOptions{.repetitions = 3});
  // Every sample carries a per-operator profile whose slices sum to its
  // whole-run counters, and the calibrator restores the profiling flag.
  for (const CostSample& sample : result.samples) {
    ASSERT_FALSE(sample.profile.empty());
    EXPECT_TRUE(sample.profile.TotalStats() == sample.stats);
  }
  EXPECT_FALSE(maintainer.profiling_enabled());
  // A supplier batch pays for the partsupp scan, whatever the batch
  // size -- exactly what makes f_supplier flat. The attribution names it.
  const OperatorCostShare dominant = result.DominantOperator();
  EXPECT_EQ(dominant.op, "HASH+SCAN partsupp");
  EXPECT_GT(dominant.wall_ms, 0.0);
  EXPECT_GT(dominant.share, 0.5);
  EXPECT_LE(dominant.share, 1.0);
}

TEST(CalibratorTest, SingleSampleFallback) {
  Fixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  for (int i = 0; i < 5; ++i) fx.updater.UpdatePartSuppSupplycost();
  const CalibrationResult result =
      CalibrateTableCost(maintainer, 0, {5}, CalibratorOptions{});
  ASSERT_EQ(result.samples.size(), 1u);
  EXPECT_GE(result.fit.slope, 0.0);
}

}  // namespace
}  // namespace abivm
