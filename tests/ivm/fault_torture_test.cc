// Fault torture: every registered failpoint site armed in turn against a
// fuzz workload, asserting the atomicity invariant (a failed operation
// leaves storage / view state / watermarks exactly as before), plus a
// seeded random fault schedule that must still converge to a consistent
// view once the faults clear. Runs under the `fault` ctest label so the
// sanitizer presets can target it.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "fault/failpoint.h"
#include "fault/sites.h"
#include "ivm/maintainer.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

using fault::ScopedFailpoint;

struct Fixture {
  Database db;
  std::unique_ptr<ViewMaintainer> maintainer;
  std::unique_ptr<TpcUpdater> updater;

  explicit Fixture(uint64_t seed = 7) {
    TpcGenOptions options;
    options.scale_factor = 0.001;
    options.seed = seed;
    GenerateTpcDatabase(&db, options);
    CreatePaperIndexes(&db);
    maintainer = std::make_unique<ViewMaintainer>(&db, MakePaperMinView());
    updater = std::make_unique<TpcUpdater>(&db, seed + 1);
  }

  // A burst of modifications on the two mutable base tables.
  void MakePending(Rng& rng, int count) {
    for (int i = 0; i < count; ++i) {
      switch (rng.UniformInt(0, 3)) {
        case 0:
          updater->UpdatePartSuppSupplycost();
          break;
        case 1:
          updater->InsertPartSupp();
          break;
        case 2:
          updater->UpdateSupplierNationkey();
          break;
        default:
          if (db.table(kPartSupp).live_row_count() > 100) {
            updater->DeletePartSupp();
          } else {
            updater->UpdatePartSuppSupplycost();
          }
          break;
      }
    }
  }
};

// Storage-level sites: a failed TryApply* must leave the table, the delta
// log, and the database version untouched; the retry then applies.
TEST(FaultTortureTest, StorageApplySitesAreAtomic) {
  Fixture fx;
  Table& partsupp = fx.db.table(kPartSupp);
  const Row fresh_row = {Value(int64_t{1}), Value(int64_t{1}),
                         Value(int64_t{424242}), Value(9.99),
                         Value("torture")};

  struct Snapshot {
    size_t live_rows, log_size;
    Version version;
  };
  const auto snap = [&] {
    return Snapshot{partsupp.live_row_count(), partsupp.delta_log().size(),
                    fx.db.current_version()};
  };
  const auto expect_unchanged = [&](const Snapshot& before,
                                    const char* what) {
    const Snapshot after = snap();
    EXPECT_EQ(after.live_rows, before.live_rows) << what;
    EXPECT_EQ(after.log_size, before.log_size) << what;
    EXPECT_EQ(after.version, before.version) << what;
  };

  // Insert.
  RowId inserted = 0;
  {
    const Snapshot before = snap();
    ScopedFailpoint guard =
        ScopedFailpoint::Once(fault::kFpStorageApplyInsert);
    EXPECT_FALSE(fx.db.TryApplyInsert(partsupp, fresh_row).ok());
    expect_unchanged(before, "failed insert");
    const Result<RowId> retry = fx.db.TryApplyInsert(partsupp, fresh_row);
    ASSERT_TRUE(retry.ok());
    inserted = retry.value();
    EXPECT_EQ(partsupp.live_row_count(), before.live_rows + 1);
    EXPECT_EQ(partsupp.delta_log().size(), before.log_size + 1);
  }
  // Update.
  RowId updated = 0;
  {
    const Snapshot before = snap();
    ScopedFailpoint guard =
        ScopedFailpoint::Once(fault::kFpStorageApplyUpdate);
    EXPECT_FALSE(fx.db.TryApplyUpdate(partsupp, inserted, fresh_row).ok());
    expect_unchanged(before, "failed update");
    const Result<RowId> retry =
        fx.db.TryApplyUpdate(partsupp, inserted, fresh_row);
    ASSERT_TRUE(retry.ok());
    updated = retry.value();
    EXPECT_EQ(partsupp.live_row_count(), before.live_rows);
    EXPECT_EQ(partsupp.delta_log().size(), before.log_size + 1);
  }
  // Delete.
  {
    const Snapshot before = snap();
    ScopedFailpoint guard =
        ScopedFailpoint::Once(fault::kFpStorageApplyDelete);
    EXPECT_FALSE(fx.db.TryApplyDelete(partsupp, updated).ok());
    expect_unchanged(before, "failed delete");
    ASSERT_TRUE(fx.db.TryApplyDelete(partsupp, updated).ok());
    EXPECT_EQ(partsupp.live_row_count(), before.live_rows - 1);
  }
  // The view was not maintained through any of this; a refresh still
  // converges and matches the oracle.
  ASSERT_TRUE(fx.maintainer->RefreshAllChecked().ok());
  EXPECT_TRUE(fx.maintainer->state().SameContents(
      fx.maintainer->RecomputeAtWatermarks()));
}

// Batch-maintenance sites: with each site armed to always fire, a failed
// ProcessBatchChecked must leave view state, watermark positions, and
// snapshot versions exactly as before; once the site is disarmed, the
// identical batch succeeds and the oracle matches.
TEST(FaultTortureTest, EverySiteLeavesBatchMaintenanceAtomic) {
  Fixture fx;
  ViewMaintainer& m = *fx.maintainer;
  Rng rng(0xBEEF);
  std::set<std::string> fired;

  for (const char* site : fault::kAllFailpointSites) {
    fx.MakePending(rng, 8);
    {
      ScopedFailpoint guard = ScopedFailpoint::Always(site);
      for (size_t table = 0; table < m.num_tables(); ++table) {
        const size_t pending = m.PendingCount(table);
        if (pending == 0) continue;
        const ViewState before_state = m.state();
        const size_t before_pos = m.watermark_position(table);
        const Version before_ver = m.watermark_version(table);
        BatchResult result;
        const Status status =
            m.ProcessBatchChecked(table, pending, &result);
        if (status.ok()) continue;  // site not on this table's delta path
        fired.insert(site);
        EXPECT_EQ(status.code(), StatusCode::kInternal) << site;
        EXPECT_EQ(m.watermark_position(table), before_pos) << site;
        EXPECT_EQ(m.watermark_version(table), before_ver) << site;
        EXPECT_TRUE(m.state().SameContents(before_state))
            << "state mutated by failed batch at " << site;
      }
    }
    // Fault cleared: the identical work must now commit.
    ASSERT_TRUE(m.RefreshAllChecked().ok()) << site;
    ASSERT_TRUE(m.IsConsistent()) << site;
    ASSERT_TRUE(m.state().SameContents(m.RecomputeAtWatermarks())) << site;
  }

  // The batch path must actually cross these sites (a vacuous pass would
  // mean the wiring regressed).
  EXPECT_TRUE(fired.count(fault::kFpStorageDeltaLogRead));
  EXPECT_TRUE(fired.count(fault::kFpIvmApplyState));
  EXPECT_TRUE(fired.count(fault::kFpIvmCommit));
  EXPECT_TRUE(fired.count(fault::kFpExecIndexJoin) ||
              fired.count(fault::kFpExecHashJoin))
      << "no join site fired";
}

// Dry-run batches stage against scratch state; a fault must not leak
// watermark movement either.
TEST(FaultTortureTest, DryRunFaultIsAtomicToo) {
  Fixture fx;
  ViewMaintainer& m = *fx.maintainer;
  Rng rng(0xD12);
  fx.MakePending(rng, 6);
  for (size_t table = 0; table < m.num_tables(); ++table) {
    const size_t pending = m.PendingCount(table);
    if (pending == 0) continue;
    ScopedFailpoint guard =
        ScopedFailpoint::Always(fault::kFpIvmApplyState);
    const size_t before_pos = m.watermark_position(table);
    BatchResult result;
    EXPECT_FALSE(
        m.ProcessBatchChecked(table, pending, &result, /*dry_run=*/true)
            .ok());
    EXPECT_EQ(m.watermark_position(table), before_pos);
    EXPECT_EQ(m.PendingCount(table), pending);
  }
  ASSERT_TRUE(m.RefreshAllChecked().ok());
  EXPECT_TRUE(m.state().SameContents(m.RecomputeAtWatermarks()));
}

// The recompute oracle itself is guarded: an armed scan site fails the
// Status-returning variant instead of crashing.
TEST(FaultTortureTest, ScanFaultFailsRecomputeChecked) {
  Fixture fx;
  ScopedFailpoint guard = ScopedFailpoint::Always(fault::kFpExecScan);
  const Result<ViewState> recompute =
      fx.maintainer->RecomputeAtWatermarksChecked();
  ASSERT_FALSE(recompute.ok());
  EXPECT_EQ(recompute.status().code(), StatusCode::kInternal);
}

// Seeded random fault schedule over a fuzz workload: ProcessBatchChecked
// calls fail nondeterministically (from the workload's point of view, but
// reproducibly from the seed), every failure is atomic, and once the
// faults clear the view converges and matches the oracle.
TEST(FaultTortureTest, RandomFaultScheduleEventuallyConverges) {
  Fixture fx;
  ViewMaintainer& m = *fx.maintainer;
  Rng rng(0xFA111);
  uint64_t failures = 0;
  uint64_t successes = 0;
  {
    // Arm the whole ProcessBatch delta path with independent seeded
    // Bernoulli schedules.
    std::vector<ScopedFailpoint> guards;
    guards.push_back(ScopedFailpoint::Probability(
        fault::kFpStorageDeltaLogRead, 0.15, 11));
    guards.push_back(
        ScopedFailpoint::Probability(fault::kFpExecIndexJoin, 0.10, 22));
    guards.push_back(
        ScopedFailpoint::Probability(fault::kFpExecHashJoin, 0.10, 33));
    guards.push_back(
        ScopedFailpoint::Probability(fault::kFpIvmApplyState, 0.15, 44));
    guards.push_back(
        ScopedFailpoint::Probability(fault::kFpIvmCommit, 0.15, 55));

    for (int round = 0; round < 25; ++round) {
      fx.MakePending(rng, static_cast<int>(rng.UniformInt(1, 6)));
      for (size_t table = 0; table < m.num_tables(); ++table) {
        const size_t pending = m.PendingCount(table);
        if (pending == 0 || !rng.Bernoulli(0.7)) continue;
        const size_t k = static_cast<size_t>(
            rng.UniformInt(1, static_cast<int64_t>(pending)));
        const size_t before_pos = m.watermark_position(table);
        const Version before_ver = m.watermark_version(table);
        BatchResult result;
        const Status status = m.ProcessBatchChecked(table, k, &result);
        if (status.ok()) {
          ++successes;
          EXPECT_EQ(m.watermark_position(table), before_pos + k);
        } else {
          ++failures;
          ASSERT_EQ(m.watermark_position(table), before_pos);
          ASSERT_EQ(m.watermark_version(table), before_ver);
        }
      }
    }
  }
  // The schedule must actually exercise both outcomes.
  EXPECT_GT(failures, 0u);
  EXPECT_GT(successes, 0u);
  // Faults cleared: retrying the residue converges.
  ASSERT_TRUE(m.RefreshAllChecked().ok());
  ASSERT_TRUE(m.IsConsistent());
  EXPECT_TRUE(m.state().SameContents(m.RecomputeAtWatermarks()));
}

}  // namespace
}  // namespace abivm
