#include "ivm/explain.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/astar.h"
#include "tpc/tpc_gen.h"
#include "tpc/views.h"

namespace abivm {
namespace {

struct Fixture {
  Database db;
  Fixture() {
    TpcGenOptions options;
    options.scale_factor = 0.001;
    GenerateTpcDatabase(&db, options);
    CreatePaperIndexes(&db);
  }
};

TEST(ExplainPipelineTest, ShowsStrategiesAndFilters) {
  Fixture fx;
  ViewBinding binding(&fx.db, MakePaperMinView());

  const std::string partsupp = ExplainPipeline(binding, 0);
  // Partsupp deltas probe indexes all the way.
  EXPECT_NE(partsupp.find("delta(partsupp)"), std::string::npos);
  EXPECT_NE(partsupp.find("INDEX JOIN supplier"), std::string::npos);
  EXPECT_NE(partsupp.find("INDEX JOIN region"), std::string::npos);
  EXPECT_EQ(partsupp.find("HASH+SCAN"), std::string::npos);
  EXPECT_NE(partsupp.find("r_name = \"MIDDLE EAST\""), std::string::npos);
  EXPECT_NE(partsupp.find("=> MIN(ps_supplycost)"), std::string::npos);

  // Supplier deltas must hash-scan partsupp (no index on ps_suppkey) and,
  // thanks to the join-order heuristic, visit nation/region first.
  const std::string supplier =
      ExplainPipeline(binding, binding.TableIndex(kSupplier));
  EXPECT_NE(supplier.find("HASH+SCAN partsupp"), std::string::npos);
  EXPECT_LT(supplier.find("INDEX JOIN nation"),
            supplier.find("HASH+SCAN partsupp"));
}

TEST(ExplainPipelineTest, StrategyFollowsIndexesAtCallTime) {
  Fixture fx;
  ViewBinding binding(&fx.db, MakePaperMinView());
  const std::string before =
      ExplainPipeline(binding, binding.TableIndex(kSupplier));
  EXPECT_NE(before.find("HASH+SCAN partsupp"), std::string::npos);
  fx.db.table(kPartSupp).CreateHashIndex("ps_suppkey");
  const std::string after =
      ExplainPipeline(binding, binding.TableIndex(kSupplier));
  EXPECT_NE(after.find("INDEX JOIN partsupp"), std::string::npos);
}

TEST(ExplainViewTest, CoversEveryPipeline) {
  Fixture fx;
  ViewBinding binding(&fx.db, MakePaperMinView());
  const std::string text = ExplainView(binding);
  for (const char* table : {"partsupp", "supplier", "nation", "region"}) {
    EXPECT_NE(text.find("pipeline for delta(" + std::string(table) + ")"),
              std::string::npos);
  }
}

TEST(ExplainPlanTest, ListsActionsAndTotals) {
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(1.0, 0.0),
      std::make_shared<LinearCost>(1.0, 0.0)};
  const ProblemInstance instance{CostModel(std::move(fns)),
                                 ArrivalSequence::Uniform({1, 1}, 9), 5.0};
  const PlanSearchResult optimal = FindOptimalLgmPlan(instance);
  const std::string text = ExplainPlan(instance, optimal.plan);
  EXPECT_NE(text.find("plan over [0, 9]"), std::string::npos);
  EXPECT_NE(text.find("total cost:"), std::string::npos);
  // Every action time appears.
  for (const auto& [t, amounts] : optimal.plan.actions()) {
    EXPECT_NE(text.find("t=     " + std::to_string(t)),
              std::string::npos)
        << text;
  }
}

TEST(ExplainPipelineTest, SpjProjection) {
  Fixture fx;
  ViewBinding binding(&fx.db, MakeTwoWayJoinView());
  const std::string text = ExplainPipeline(binding, 0);
  EXPECT_NE(text.find("PROJECT ps_partkey, ps_suppkey, ps_supplycost, "
                      "p_retailprice"),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace abivm
