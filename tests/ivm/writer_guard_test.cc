// The single-writer discipline, made checkable: a ViewMaintainer is
// owned by the thread that constructed it (or the last thread a
// synchronized BindWriterToCurrentThread handed it to); mutating entry
// points from any other thread must CHECK-fail fast instead of racing
// the pooled workspace.

#include <thread>

#include <gtest/gtest.h>

#include "ivm/maintainer.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

struct Fixture {
  Database db;
  TpcUpdater updater{&db, 11};

  Fixture() {
    TpcGenOptions options;
    options.scale_factor = 0.001;
    GenerateTpcDatabase(&db, options);
    CreatePaperIndexes(&db);
  }
};

TEST(WriterGuardTest, ConstructingThreadIsTheWriter) {
  Fixture fx;
  ViewMaintainer m(&fx.db, MakePaperMinView());
  EXPECT_TRUE(m.BoundToCurrentThread());
  fx.updater.UpdatePartSuppSupplycost();
  BatchResult result;
  EXPECT_TRUE(m.ProcessBatchChecked(0, 1, &result).ok());
}

TEST(WriterGuardTest, SynchronizedHandoffRebindsTheWriter) {
  Fixture fx;
  ViewMaintainer m(&fx.db, MakePaperMinView());
  for (int i = 0; i < 5; ++i) fx.updater.UpdatePartSuppSupplycost();
  // Thread creation is the synchronization; the new owner binds first.
  std::thread worker([&m] {
    m.BindWriterToCurrentThread();
    EXPECT_TRUE(m.BoundToCurrentThread());
    m.RefreshAll();
    EXPECT_TRUE(
        m.state().SameContents(m.RecomputeAtWatermarks()));
  });
  worker.join();
  // Joining synchronizes the handoff back.
  EXPECT_FALSE(m.BoundToCurrentThread());
  m.BindWriterToCurrentThread();
  EXPECT_TRUE(m.IsConsistent());
}

#ifndef ABIVM_DISABLE_THREAD_ASSERTS

TEST(WriterGuardDeathTest, ForeignThreadMutationDies) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Fixture fx;
  ViewMaintainer m(&fx.db, MakePaperMinView());
  fx.updater.UpdatePartSuppSupplycost();
  EXPECT_DEATH(
      {
        std::thread intruder([&m] { m.RefreshAll(); });
        intruder.join();
      },
      "not its bound writer");
}

TEST(WriterGuardDeathTest, ForeignThreadOracleDies) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Fixture fx;
  ViewMaintainer m(&fx.db, MakePaperMinView());
  // RecomputeAtWatermarks is logically const but reuses the pooled
  // pipeline workspace, so it carries the writer assertion too.
  EXPECT_DEATH(
      {
        std::thread intruder([&m] { m.RecomputeAtWatermarks(); });
        intruder.join();
      },
      "not its bound writer");
}

#endif  // ABIVM_DISABLE_THREAD_ASSERTS

}  // namespace
}  // namespace abivm
