#include "ivm/maintainer.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

// Tiny TPC database: 10 suppliers, 200 parts, 800 partsupps.
struct PaperViewFixture {
  Database db;
  TpcUpdater updater{&db, 7};

  PaperViewFixture() {
    TpcGenOptions options;
    options.scale_factor = 0.001;
    options.seed = 11;
    GenerateTpcDatabase(&db, options);
    CreatePaperIndexes(&db);
  }
};

TEST(ViewMaintainerTest, InitialStateMatchesRecompute) {
  PaperViewFixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  EXPECT_TRUE(maintainer.IsConsistent());
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
  // The scalar MIN exists (some supplier is in the Middle East with 10
  // suppliers over 25 nations this holds for seed 11; if not, the check
  // below still defines behaviour).
  EXPECT_EQ(maintainer.PendingVec(), (StateVec{0, 0, 0, 0}));
}

TEST(ViewMaintainerTest, PendingCountsFollowModifications) {
  PaperViewFixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  fx.updater.UpdatePartSuppSupplycost();
  fx.updater.UpdatePartSuppSupplycost();
  fx.updater.UpdateSupplierNationkey();
  EXPECT_EQ(maintainer.PendingCount(0), 2u);  // partsupp
  EXPECT_EQ(maintainer.PendingCount(1), 1u);  // supplier
  EXPECT_FALSE(maintainer.IsConsistent());
}

TEST(ViewMaintainerTest, ProcessingBatchesMatchesRecomputeOracle) {
  PaperViewFixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  for (int i = 0; i < 30; ++i) fx.updater.UpdatePartSuppSupplycost();
  for (int i = 0; i < 10; ++i) fx.updater.UpdateSupplierNationkey();

  // Process asymmetric batches, verifying the watermark-snapshot
  // invariant after every step.
  maintainer.ProcessBatch(0, 12);
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
  maintainer.ProcessBatch(1, 3);
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
  maintainer.ProcessBatch(0, 18);
  maintainer.ProcessBatch(1, 7);
  EXPECT_TRUE(maintainer.IsConsistent());
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
}

TEST(ViewMaintainerTest, StaleWatermarkIgnoresNewerCoTableChanges) {
  // State-bug regression: processing a partsupp delta must join against
  // supplier AS OF supplier's watermark, even when supplier has newer
  // unprocessed changes.
  PaperViewFixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  // Move every supplier out of the Middle East WITHOUT processing it.
  Table& supplier = fx.db.table(kSupplier);
  const size_t nk = supplier.schema().ColumnIndex("s_nationkey");
  std::vector<RowId> live;
  supplier.ScanAt(fx.db.current_version(),
                  [&](RowId id, const Row&) { live.push_back(id); });
  for (RowId id : live) {
    Row row = supplier.RowAt(id).row;
    row[nk] = Value(int64_t{0});  // ALGERIA (AFRICA)
    fx.db.ApplyUpdate(supplier, id, std::move(row));
  }
  // Now update one partsupp row and process ONLY that delta. The join
  // must see the ORIGINAL supplier nations (watermark), so the view keeps
  // behaving as if the Middle East suppliers still exist.
  const ViewState before = maintainer.state();
  fx.updater.UpdatePartSuppSupplycost();
  maintainer.ProcessBatch(0, 1);
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
  // The group count can only have changed by the one partsupp update, not
  // collapsed to empty (which a state-bug join against the new supplier
  // table would cause if any contributing row were touched).
  if (before.ScalarCount() > 0) {
    EXPECT_GE(maintainer.state().ScalarCount(), before.ScalarCount() - 1);
  }
  // Processing everything converges to the true current state.
  maintainer.RefreshAll();
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
  EXPECT_EQ(maintainer.state().ScalarCount(), 0);  // no ME suppliers left
}

TEST(ViewMaintainerTest, DryRunLeavesStateAndWatermarksUntouched) {
  PaperViewFixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  for (int i = 0; i < 20; ++i) fx.updater.UpdatePartSuppSupplycost();
  const ViewState before = maintainer.state();
  const BatchResult result = maintainer.ProcessBatch(0, 15, /*dry_run=*/true);
  EXPECT_EQ(result.processed, 15u);
  EXPECT_EQ(result.delta_rows_in, 30u);  // updates contribute +/- rows
  EXPECT_EQ(maintainer.PendingCount(0), 20u);
  EXPECT_TRUE(maintainer.state().SameContents(before));
  // A real run afterwards still matches the oracle.
  maintainer.ProcessBatch(0, 20);
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
}

TEST(ViewMaintainerTest, JoinStrategySelectionMatchesIndexLayout) {
  PaperViewFixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  for (int i = 0; i < 5; ++i) {
    fx.updater.UpdatePartSuppSupplycost();
    fx.updater.UpdateSupplierNationkey();
  }
  // Partsupp deltas probe the supplier/nation/region indexes: no scans.
  const BatchResult ps = maintainer.ProcessBatch(0, 5, /*dry_run=*/true);
  EXPECT_GT(ps.stats.index_probes, 0u);
  EXPECT_EQ(ps.stats.rows_scanned, 0u);
  // Supplier deltas must scan partsupp (no index on ps_suppkey).
  const BatchResult s = maintainer.ProcessBatch(1, 5, /*dry_run=*/true);
  EXPECT_GE(s.stats.rows_scanned, fx.db.table(kPartSupp).live_row_count());
}

TEST(ViewMaintainerTest, RandomInterleavingsAlwaysMatchOracle) {
  // The headline property test: any interleaving of asymmetric batches
  // keeps the watermark-snapshot invariant, and full refresh equals a
  // from-scratch recompute of the current database.
  Rng rng(20250705);
  for (int trial = 0; trial < 8; ++trial) {
    PaperViewFixture fx;
    ViewMaintainer maintainer(&fx.db, MakePaperMinView());
    TpcUpdater updater(&fx.db, 1000 + static_cast<uint64_t>(trial));
    for (int round = 0; round < 12; ++round) {
      // Random burst of modifications.
      const int64_t ps_mods = rng.UniformInt(0, 8);
      const int64_t s_mods = rng.UniformInt(0, 4);
      for (int64_t i = 0; i < ps_mods; ++i) {
        updater.UpdatePartSuppSupplycost();
      }
      for (int64_t i = 0; i < s_mods; ++i) {
        updater.UpdateSupplierNationkey();
      }
      // Random partial processing.
      for (size_t table = 0; table < 2; ++table) {
        const size_t pending = maintainer.PendingCount(table);
        if (pending == 0 || !rng.Bernoulli(0.7)) continue;
        const size_t k = static_cast<size_t>(
            rng.UniformInt(1, static_cast<int64_t>(pending)));
        maintainer.ProcessBatch(table, k);
      }
      ASSERT_TRUE(maintainer.state().SameContents(
          maintainer.RecomputeAtWatermarks()))
          << "trial " << trial << " round " << round;
    }
    maintainer.RefreshAll();
    ASSERT_TRUE(maintainer.IsConsistent());
    ASSERT_TRUE(maintainer.state().SameContents(
        maintainer.RecomputeAtWatermarks()))
        << "trial " << trial;
  }
}

TEST(ViewMaintainerTest, CrossTableProcessingOrderCommutes) {
  // Processing (partsupp batch, then supplier batch) must land in exactly
  // the same state as the reverse order -- both reach the same watermark
  // vector, and the invariant ties the state to the watermarks alone.
  PaperViewFixture fx;
  ViewMaintainer a(&fx.db, MakePaperMinView());
  ViewMaintainer b(&fx.db, MakePaperMinView());
  for (int i = 0; i < 20; ++i) fx.updater.UpdatePartSuppSupplycost();
  for (int i = 0; i < 8; ++i) fx.updater.UpdateSupplierNationkey();

  a.ProcessBatch(0, 12);
  a.ProcessBatch(1, 5);
  b.ProcessBatch(1, 5);
  b.ProcessBatch(0, 12);
  EXPECT_TRUE(a.state().SameContents(b.state()));

  // And splitting one batch into two halves is equivalent to one batch.
  ViewMaintainer c(&fx.db, MakePaperMinView());
  ViewMaintainer d(&fx.db, MakePaperMinView());
  for (int i = 0; i < 10; ++i) fx.updater.UpdatePartSuppSupplycost();
  c.ProcessBatch(0, 10);
  d.ProcessBatch(0, 4);
  d.ProcessBatch(0, 6);
  EXPECT_TRUE(c.state().SameContents(d.state()));
}

TEST(ViewMaintainerTest, SpjViewMaintenanceMatchesOracle) {
  PaperViewFixture fx;
  ViewMaintainer maintainer(&fx.db, MakeTwoWayJoinView());
  for (int i = 0; i < 25; ++i) fx.updater.UpdatePartSuppSupplycost();
  for (int i = 0; i < 8; ++i) fx.updater.UpdatePartRetailprice();
  maintainer.ProcessBatch(1, 5);
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
  maintainer.ProcessBatch(0, 25);
  maintainer.ProcessBatch(1, 3);
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
  maintainer.RefreshAll();
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
}

TEST(ViewMaintainerTest, InsertAndDeleteModifications) {
  // Beyond the paper's update-only mix: raw inserts/deletes into partsupp.
  PaperViewFixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  Table& partsupp = fx.db.table(kPartSupp);
  // Insert a record with an impossibly low supplycost for a Middle East
  // supplier (find one via nation/current data); use supplier of row 0.
  Rng rng(5);
  const RowId any = partsupp.SampleLiveRow(rng);
  Row fresh = partsupp.RowAt(any).row;
  fresh[partsupp.schema().ColumnIndex("ps_supplycost")] = Value(0.001);
  fx.db.ApplyInsert(partsupp, fresh);
  maintainer.RefreshAll();
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));

  // Delete it again; the MIN must recover.
  const ViewState with_low = maintainer.state();
  std::vector<RowId> candidates;
  partsupp.ScanAt(fx.db.current_version(), [&](RowId id, const Row& row) {
    if (row[partsupp.schema().ColumnIndex("ps_supplycost")] ==
        Value(0.001)) {
      candidates.push_back(id);
    }
  });
  ASSERT_EQ(candidates.size(), 1u);
  fx.db.ApplyDelete(partsupp, candidates[0]);
  maintainer.RefreshAll();
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
  if (with_low.ScalarMin().has_value() &&
      maintainer.state().ScalarMin().has_value()) {
    EXPECT_GE(*maintainer.state().ScalarMin(), *with_low.ScalarMin());
  }
}

TEST(ViewMaintainerTest, ProfileSlicesSumExactlyToBatchStats) {
  PaperViewFixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  for (int i = 0; i < 40; ++i) fx.updater.UpdatePartSuppSupplycost();
  for (int i = 0; i < 10; ++i) fx.updater.UpdateSupplierNationkey();
  maintainer.EnableProfiling(true);
  for (size_t table : {0u, 1u}) {
    const BatchResult result =
        maintainer.ProcessBatch(table, maintainer.PendingCount(table));
    ASSERT_FALSE(result.profile.empty());
    EXPECT_EQ(result.profile.pipeline,
              "delta(" + maintainer.binding().def().tables[table] + ")");
    // One stage per pipeline step plus the leading filter/project block;
    // the breakdown reproduces the whole-run counters EXACTLY.
    EXPECT_EQ(result.profile.stages.size(),
              maintainer.binding().delta_pipeline(table).steps.size() + 1);
    EXPECT_TRUE(result.profile.TotalStats() == result.stats);
    // Stage walls are sub-intervals of the batch (which also covers
    // net-extract and state application).
    EXPECT_LE(result.profile.TotalWallMs(), result.wall_ms);
  }
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
}

TEST(ViewMaintainerTest, ProfiledAndUnprofiledRunsChargeSameCounters) {
  PaperViewFixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  for (int i = 0; i < 25; ++i) fx.updater.UpdatePartSuppSupplycost();
  // Dry runs over the same pending window: the profiled path must charge
  // the identical whole-run counters as the unobserved fast path.
  const BatchResult plain = maintainer.ProcessBatch(0, 25, /*dry_run=*/true);
  EXPECT_TRUE(plain.profile.empty());
  maintainer.EnableProfiling(true);
  const BatchResult profiled =
      maintainer.ProcessBatch(0, 25, /*dry_run=*/true);
  EXPECT_TRUE(profiled.stats == plain.stats);
  EXPECT_EQ(profiled.view_updates, plain.view_updates);
}

TEST(ViewMaintainerTest, MetricsRegistryRecordsPerStageTimers) {
  PaperViewFixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  for (int i = 0; i < 10; ++i) fx.updater.UpdatePartSuppSupplycost();
  obs::MetricRegistry registry;
  maintainer.SetMetrics(&registry);
  EXPECT_TRUE(maintainer.profiling_enabled());  // implied by the registry
  maintainer.ProcessBatch(0, 10);
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  // The leading stage always runs; its interned timer must have fired.
  const auto it = snapshot.timers.find("ivm.op.partsupp.s0.prepare");
  ASSERT_NE(it, snapshot.timers.end());
  EXPECT_GT(it->second.count, 0u);
  // Detaching restores the unobserved fast path.
  maintainer.SetMetrics(nullptr);
  EXPECT_FALSE(maintainer.profiling_enabled());
}

TEST(ViewMaintainerTest, RecomputeProfileLeadsWithScanStage) {
  PaperViewFixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  PipelineProfile profile;
  Result<ViewState> fresh = maintainer.RecomputeAtWatermarksChecked(&profile);
  ASSERT_TRUE(fresh.ok());
  ASSERT_FALSE(profile.empty());
  EXPECT_EQ(profile.pipeline, "recompute");
  EXPECT_EQ(profile.stages.front().slug.rfind("scan.", 0), 0u);
  EXPECT_GT(profile.stages.front().rows_out, 0u);
  EXPECT_GT(profile.TotalStats().rows_scanned, 0u);
}

TEST(ViewMaintainerTest, WarmWorkspaceStopsGrowing) {
  PaperViewFixture fx;
  ViewMaintainer maintainer(&fx.db, MakePaperMinView());
  // Warm up on batches of the workload's size...
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) fx.updater.UpdatePartSuppSupplycost();
    maintainer.ProcessBatch(0, 8);
  }
  const uint64_t grow_after_warmup = maintainer.workspace().grow_events();
  // ...then the steady state must allocate nothing: grow_events() is flat
  // over arbitrarily many same-shaped batches.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 8; ++i) fx.updater.UpdatePartSuppSupplycost();
    maintainer.ProcessBatch(0, 8);
  }
  EXPECT_EQ(maintainer.workspace().grow_events(), grow_after_warmup);
  EXPECT_GT(maintainer.workspace().reuses(), 0u);
  EXPECT_GT(maintainer.workspace().arena_bytes_peak(), 0u);
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
}

TEST(ViewMaintainerTest, ParallelProbeMatchesSequential) {
  PaperViewFixture seq_fx;
  PaperViewFixture par_fx;  // same seeds => identical database + workload
  ViewMaintainer seq(&seq_fx.db, MakePaperMinView());
  ViewMaintainer par(&par_fx.db, MakePaperMinView());
  ThreadPool pool(3);
  par.EnableParallelProbe(&pool, /*partitions=*/3, /*min_rows=*/0);
  for (int i = 0; i < 12; ++i) {
    seq_fx.updater.UpdateSupplierNationkey();
    par_fx.updater.UpdateSupplierNationkey();
    seq_fx.updater.UpdatePartSuppSupplycost();
    par_fx.updater.UpdatePartSuppSupplycost();
  }
  for (size_t table = 0; table < seq.num_tables(); ++table) {
    ASSERT_EQ(seq.PendingCount(table), par.PendingCount(table));
    while (seq.PendingCount(table) > 0) {
      const size_t k = std::min<size_t>(5, seq.PendingCount(table));
      const BatchResult a = seq.ProcessBatch(table, k);
      const BatchResult b = par.ProcessBatch(table, k);
      EXPECT_TRUE(a.stats == b.stats) << "table " << table;
      EXPECT_EQ(a.view_updates, b.view_updates);
    }
  }
  EXPECT_TRUE(par.state().SameContents(seq.state()));
  EXPECT_TRUE(par.state().SameContents(par.RecomputeAtWatermarks()));
  // Toggling the probe off returns to the sequential path in place.
  par.DisableParallelProbe();
  par_fx.updater.UpdateSupplierNationkey();
  par.RefreshAll();
  EXPECT_TRUE(par.state().SameContents(par.RecomputeAtWatermarks()));
}

}  // namespace
}  // namespace abivm
