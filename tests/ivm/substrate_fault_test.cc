// Fault tests for the substrate hot path (ctest -L fault): the
// flat-index growth failpoint must fire exactly at the growth edge and
// leave the apply atomic, the partitioned-probe failpoint must cancel a
// batch cleanly, and the partitioned scan-side probe must be
// thread-count invariant -- including while the new sites are armed on a
// seeded probability schedule.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "fault/failpoint.h"
#include "fault/sites.h"
#include "ivm/maintainer.h"
#include "storage/database.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

using fault::ScopedFailpoint;

// The flat-index growth site: armed, it must reject exactly the apply
// that would rehash an index -- BEFORE any mutation -- and let every
// pre-edge apply through untouched.
TEST(SubstrateFaultTest, FlatIndexGrowFailpointFiresExactlyAtGrowthEdge) {
  Database db;
  Table& t = db.CreateTable(
      "t", Schema({{"k", ValueType::kInt64}, {"v", ValueType::kString}}));
  db.BulkLoad(t, {Value(int64_t{0}), Value("seed")});
  t.CreateHashIndex("k");
  const Table::FlatIndex* index = t.IndexOn(0);
  ASSERT_NE(index, nullptr);

  int64_t next_key = 1;
  for (int round = 0; round < 3; ++round) {
    const size_t buckets_before = index->bucket_count();
    {
      ScopedFailpoint guard =
          ScopedFailpoint::Always(fault::kFpFlatIndexGrow);
      // Below the edge the armed site is not crossed: inserts succeed and
      // the bucket array never moves.
      while (!t.IndexGrowthPending()) {
        ASSERT_TRUE(
            db.TryApplyInsert(t, {Value(next_key), Value("x")}).ok());
        ++next_key;
        ASSERT_EQ(index->bucket_count(), buckets_before);
      }
      // At the edge the injected fault must fail the apply atomically:
      // no row, no delta-log entry, no version bump, no rehash.
      const size_t live_before = t.live_row_count();
      const size_t log_before = t.delta_log().size();
      const Version ver_before = db.current_version();
      const Result<RowId> failed =
          db.TryApplyInsert(t, {Value(next_key), Value("x")});
      ASSERT_FALSE(failed.ok());
      EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
      EXPECT_EQ(t.live_row_count(), live_before);
      EXPECT_EQ(t.delta_log().size(), log_before);
      EXPECT_EQ(db.current_version(), ver_before);
      EXPECT_EQ(index->bucket_count(), buckets_before);
      EXPECT_GT(guard.point().triggers(), 0u);
    }
    // Disarmed, the identical apply succeeds and the index grows.
    ASSERT_TRUE(db.TryApplyInsert(t, {Value(next_key), Value("x")}).ok());
    ++next_key;
    EXPECT_GT(index->bucket_count(), buckets_before);
  }

  // The index still answers correctly after the fault/growth churn.
  size_t hits = 0;
  t.IndexLookup(0, Value(next_key - 1), db.current_version(),
                [&](RowId, const Row&) { ++hits; });
  EXPECT_EQ(hits, 1u);
}

struct TpcFixture {
  Database db;
  std::unique_ptr<ViewMaintainer> maintainer;
  std::unique_ptr<TpcUpdater> updater;

  explicit TpcFixture(uint64_t seed = 7) {
    TpcGenOptions options;
    options.scale_factor = 0.001;
    options.seed = seed;
    GenerateTpcDatabase(&db, options);
    CreatePaperIndexes(&db);
    maintainer = std::make_unique<ViewMaintainer>(&db, MakePaperMinView());
    updater = std::make_unique<TpcUpdater>(&db, seed + 1);
  }

  void MakePending(int count) {
    for (int i = 0; i < count; ++i) {
      updater->UpdateSupplierNationkey();
      updater->UpdatePartSuppSupplycost();
    }
  }
};

// An armed partitioned-probe site cancels the whole batch on the caller
// thread before any work is dispatched: the failure is atomic and the
// retry (site disarmed) converges to the oracle.
TEST(SubstrateFaultTest, PartitionedProbeFailpointIsAtomic) {
  TpcFixture fx;
  ViewMaintainer& m = *fx.maintainer;
  ThreadPool pool(2);
  m.EnableParallelProbe(&pool, /*partitions=*/2, /*min_rows=*/0);
  fx.MakePending(6);

  // Supplier deltas (table 1) join the unindexed partsupp: that is the
  // hash-join strategy, so the partitioned path is taken.
  const size_t pending = m.PendingCount(1);
  ASSERT_GT(pending, 0u);
  {
    ScopedFailpoint guard =
        ScopedFailpoint::Always(fault::kFpPartitionedProbe);
    const ViewState before_state = m.state();
    const size_t before_pos = m.watermark_position(1);
    BatchResult result;
    const Status status = m.ProcessBatchChecked(1, pending, &result);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_EQ(m.watermark_position(1), before_pos);
    EXPECT_TRUE(m.state().SameContents(before_state));
    EXPECT_GT(guard.point().triggers(), 0u);
  }
  ASSERT_TRUE(m.RefreshAllChecked().ok());
  ASSERT_TRUE(m.IsConsistent());
  EXPECT_TRUE(m.state().SameContents(m.RecomputeAtWatermarks()));
}

// Thread-count invariance: a sequential maintainer and a partitioned one
// fed the identical workload must agree batch for batch -- same operator
// counters, same view state -- at every thread count, even while the new
// sites are armed on a seeded probability schedule (failed attempts are
// atomic, so the caller just retries).
TEST(SubstrateFaultTest, PartitionedProbeIsThreadCountInvariant) {
  for (const size_t threads : {1u, 2u, 4u}) {
    TpcFixture seq_fx(11);
    TpcFixture par_fx(11);  // identical seed => identical workload
    ViewMaintainer& seq = *seq_fx.maintainer;
    ViewMaintainer& par = *par_fx.maintainer;
    ThreadPool pool(threads);
    par.EnableParallelProbe(&pool, /*partitions=*/threads,
                            /*min_rows=*/0);
    seq_fx.MakePending(8);
    par_fx.MakePending(8);

    {
      ScopedFailpoint grow_guard = ScopedFailpoint::Probability(
          fault::kFpFlatIndexGrow, 0.3, /*seed=*/threads);
      ScopedFailpoint probe_guard = ScopedFailpoint::Probability(
          fault::kFpPartitionedProbe, 0.3, /*seed=*/100 + threads);
      for (size_t table = 0; table < seq.num_tables(); ++table) {
        ASSERT_EQ(seq.PendingCount(table), par.PendingCount(table));
        while (seq.PendingCount(table) > 0) {
          const size_t k = std::min<size_t>(3, seq.PendingCount(table));
          BatchResult seq_result;
          BatchResult par_result;
          Status seq_status;
          Status par_status;
          int attempts = 0;
          do {
            seq_status = seq.ProcessBatchChecked(table, k, &seq_result);
            ASSERT_LT(++attempts, 100);
          } while (!seq_status.ok());
          attempts = 0;
          do {
            par_status = par.ProcessBatchChecked(table, k, &par_result);
            ASSERT_LT(++attempts, 100);
          } while (!par_status.ok());
          EXPECT_EQ(seq_result.stats, par_result.stats)
              << "threads=" << threads << " table=" << table;
          EXPECT_EQ(seq_result.view_updates, par_result.view_updates);
          EXPECT_EQ(seq_result.delta_rows_in, par_result.delta_rows_in);
        }
      }
    }
    ASSERT_TRUE(seq.IsConsistent());
    ASSERT_TRUE(par.IsConsistent());
    EXPECT_TRUE(par.state().SameContents(seq.state()))
        << "threads=" << threads;
    EXPECT_TRUE(par.state().SameContents(par.RecomputeAtWatermarks()))
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace abivm
