// AVG aggregate views (extension beyond the paper's MIN view).

#include <gtest/gtest.h>

#include "ivm/maintainer.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

TEST(AvgViewStateTest, AverageTracksSumAndCount) {
  ViewState state(AggKind::kAvg);
  const Row key = {Value("g")};
  EXPECT_FALSE(state.GroupAvg(key).has_value());
  state.Apply(key, Value(10.0), 1);
  state.Apply(key, Value(20.0), 1);
  EXPECT_DOUBLE_EQ(*state.GroupAvg(key), 15.0);
  state.Apply(key, Value(10.0), -1);
  EXPECT_DOUBLE_EQ(*state.GroupAvg(key), 20.0);
  state.Apply(key, Value(20.0), -1);
  EXPECT_FALSE(state.GroupAvg(key).has_value());
}

TEST(AvgViewTest, MaintainedAvgMatchesOracle) {
  Database db;
  TpcGenOptions gen;
  gen.scale_factor = 0.001;
  GenerateTpcDatabase(&db, gen);
  CreatePaperIndexes(&db);

  // AVG(ps_supplycost) per region name over the paper's 4-way join
  // (dropping the MIDDLE EAST filter so all groups appear).
  ViewDef def;
  def.name = "avg_supplycost_by_region";
  def.tables = {kPartSupp, kSupplier, kNation, kRegion};
  def.joins = {
      {{kSupplier, "s_suppkey"}, {kPartSupp, "ps_suppkey"}},
      {{kSupplier, "s_nationkey"}, {kNation, "n_nationkey"}},
      {{kNation, "n_regionkey"}, {kRegion, "r_regionkey"}},
  };
  def.group_by = {{kRegion, "r_name"}};
  def.aggregate = AggregateDef{AggKind::kAvg, {kPartSupp, "ps_supplycost"}};

  ViewMaintainer maintainer(&db, def);
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
  // With only 10 suppliers over 25 nations not every region necessarily
  // has a supplier; at least one group must exist, at most five.
  EXPECT_GE(maintainer.state().NumKeys(), 1u);
  EXPECT_LE(maintainer.state().NumKeys(), 5u);

  TpcUpdater updater(&db, 21);
  for (int i = 0; i < 40; ++i) updater.UpdatePartSuppSupplycost();
  for (int i = 0; i < 10; ++i) updater.UpdateSupplierNationkey();
  maintainer.ProcessBatch(0, 25);
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
  maintainer.RefreshAll();
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));

  // The average sits inside the generated cost range.
  const auto avg = maintainer.state().GroupAvg({Value("MIDDLE EAST")});
  if (avg.has_value()) {
    EXPECT_GT(*avg, 1.0);
    EXPECT_LT(*avg, 1000.0);
  }
}

}  // namespace
}  // namespace abivm
