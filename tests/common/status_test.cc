#include "common/status.h"

#include <gtest/gtest.h>

namespace abivm {
namespace {

TEST(StatusTest, OkByDefault) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorFactories) {
  const Status invalid = Status::InvalidArgument("bad input");
  EXPECT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(invalid.message(), "bad input");
  EXPECT_EQ(invalid.ToString(), "InvalidArgument: bad input");

  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(ResultTest, HoldsValue) {
  const Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  const Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ImplicitConversionFromValueAndStatus) {
  auto make = [](bool ok) -> Result<std::string> {
    if (ok) return std::string("fine");
    return Status::Internal("boom");
  };
  EXPECT_TRUE(make(true).ok());
  EXPECT_FALSE(make(false).ok());
}

TEST(ResultTest, AccessingErrorValueDies) {
  const Result<int> result(Status::Internal("boom"));
  EXPECT_DEATH((void)result.value(), "boom");
}

}  // namespace
}  // namespace abivm
