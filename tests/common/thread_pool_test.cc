#include "common/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/pool_gauges.h"

namespace abivm {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
  pool.Wait();  // no pending work: returns immediately
}

TEST(ThreadPoolTest, SingleThreadPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // destructor must finish all 20 before joining
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&pool, &count] {
    count.fetch_add(1);
    for (int i = 0; i < 5; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 6);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

TEST(ThreadPoolTest, SaturationObservablesTrackTaskLifecycle) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.active_workers(), 0u);
  EXPECT_EQ(pool.tasks_submitted(), 0u);

  // Park both workers so further submissions visibly queue.
  std::atomic<int> parked{0};
  std::atomic<bool> release{false};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&parked, &release] {
      parked.fetch_add(1);
      while (!release.load()) {
      }
    });
  }
  while (parked.load() < 2) {
  }
  EXPECT_EQ(pool.active_workers(), 2u);
  EXPECT_EQ(pool.queue_depth(), 0u);

  for (int i = 0; i < 5; ++i) {
    pool.Submit([] {});
  }
  EXPECT_EQ(pool.queue_depth(), 5u);
  EXPECT_EQ(pool.tasks_submitted(), 7u);

  release.store(true);
  pool.Wait();
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.active_workers(), 0u);
  EXPECT_EQ(pool.tasks_submitted(), 7u);
}

TEST(ThreadPoolTest, GaugeBridgeExportsSaturationMetrics) {
  ThreadPool pool(3);
  obs::MetricRegistry registry;
  obs::ThreadPoolGauges gauges(&pool, &registry, "pool");
  for (int i = 0; i < 4; ++i) {
    pool.Submit([] {});
  }
  pool.Wait();
  gauges.Sample();
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.gauges.at("pool.threads"), 3);
  EXPECT_EQ(snap.gauges.at("pool.queue_depth"), 0);
  EXPECT_EQ(snap.gauges.at("pool.active_workers"), 0);
  EXPECT_EQ(snap.counters.at("pool.tasks_submitted"), 4u);
}

}  // namespace
}  // namespace abivm
