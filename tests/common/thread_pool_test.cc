#include "common/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace abivm {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
  pool.Wait();  // no pending work: returns immediately
}

TEST(ThreadPoolTest, SingleThreadPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // destructor must finish all 20 before joining
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&pool, &count] {
    count.fetch_add(1);
    for (int i = 0; i < 5; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 6);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

}  // namespace
}  // namespace abivm
