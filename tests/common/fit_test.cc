#include "common/fit.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace abivm {
namespace {

TEST(FitLinearTest, ExactLineIsRecovered) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.5 * x + 7.0);
  const LinearFit fit = FitLinear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinearTest, NoisyLine) {
  Rng rng(3);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.UniformDouble(0, 100);
    xs.push_back(x);
    ys.push_back(0.5 * x + 10 + rng.Normal(0, 1));
  }
  const LinearFit fit = FitLinear(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 0.02);
  EXPECT_NEAR(fit.intercept, 10.0, 1.0);
  EXPECT_GT(fit.r_squared, 0.95);
}

TEST(FitLinearTest, ConstantYHasPerfectR2) {
  const LinearFit fit = FitLinear({1, 2, 3}, {4, 4, 4});
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(FitLinearTest, DegenerateInputsDie) {
  EXPECT_DEATH(FitLinear({1}, {2}), "");                 // too few points
  EXPECT_DEATH(FitLinear({1, 1}, {2, 3}), "distinct");   // same x
  EXPECT_DEATH(FitLinear({1, 2}, {1}), "");              // size mismatch
}

TEST(MedianTest, OddAndEvenCounts) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median({5}), 5.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({2, 2, 2, 2}), 2.0);
}

}  // namespace
}  // namespace abivm
