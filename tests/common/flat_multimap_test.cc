// FlatMultiMap oracle tests: the flat open-addressing index must return
// byte-identical multiset results to the std::unordered_multimap it
// replaced, across randomized inserts and per-pair erases, while honoring
// the capacity-pooling contracts (Clear keeps capacity, ReserveKeys
// pre-sizes, WouldGrowOnInsert is the exact growth edge).

#include "common/flat_multimap.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/value.h"

namespace abivm {
namespace {

using Map = FlatMultiMap<Value, uint64_t, ValueHash>;
using Oracle = std::unordered_multimap<Value, uint64_t, ValueHash>;

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<uint64_t> FlatValues(const Map& map, const Value& key) {
  std::vector<uint64_t> out;
  map.ForEachValue(key, [&](const uint64_t& v) { out.push_back(v); });
  return out;
}

std::vector<uint64_t> OracleValues(const Oracle& oracle, const Value& key) {
  std::vector<uint64_t> out;
  const auto range = oracle.equal_range(key);
  for (auto it = range.first; it != range.second; ++it) {
    out.push_back(it->second);
  }
  return out;
}

void ExpectSameMultisets(const Map& map, const Oracle& oracle,
                         int64_t key_domain) {
  ASSERT_EQ(map.size(), oracle.size());
  for (int64_t k = 0; k < key_domain; ++k) {
    const Value key(k);
    EXPECT_EQ(Sorted(FlatValues(map, key)),
              Sorted(OracleValues(oracle, key)))
        << "key " << k;
  }
  // ForEachPair visits exactly the live pairs (erased slots are skipped).
  size_t visited = 0;
  map.ForEachPair([&](const Value& k, const uint64_t& v) {
    ++visited;
    const std::vector<uint64_t> vals = OracleValues(oracle, k);
    EXPECT_NE(std::find(vals.begin(), vals.end(), v), vals.end());
  });
  EXPECT_EQ(visited, oracle.size());
}

TEST(FlatMultiMapTest, RandomizedOracle) {
  Map map;
  Oracle oracle;
  Rng rng(20260809);
  // A small key domain forces long duplicate chains, bucket collisions,
  // tombstone reuse, and several rehashes over the run.
  constexpr int64_t kKeys = 37;
  uint64_t next_value = 0;
  for (int step = 0; step < 20000; ++step) {
    const int64_t k = rng.UniformInt(0, kKeys - 1);
    const Value key(k);
    if (rng.UniformInt(0, 99) < 60 || oracle.empty()) {
      map.Insert(key, next_value);
      oracle.emplace(key, next_value);
      ++next_value;
    } else {
      const std::vector<uint64_t> vals = OracleValues(oracle, key);
      if (vals.empty()) {
        // Erasing an absent pair must be a no-op that reports false.
        EXPECT_FALSE(map.EraseOne(key, next_value + 1));
      } else {
        const uint64_t victim = vals[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(vals.size()) - 1))];
        EXPECT_TRUE(map.EraseOne(key, victim));
        auto range = oracle.equal_range(key);
        for (auto it = range.first; it != range.second; ++it) {
          if (it->second == victim) {
            oracle.erase(it);
            break;
          }
        }
      }
    }
    if (step % 997 == 0) ExpectSameMultisets(map, oracle, kKeys);
  }
  ExpectSameMultisets(map, oracle, kKeys);
}

TEST(FlatMultiMapTest, EqualRangeIsReverseInsertionOrder) {
  // The documented (unspecified-by-contract but deterministic) order:
  // duplicate chains prepend, so a key's values come back newest-first.
  Map map;
  for (uint64_t v = 0; v < 5; ++v) map.Insert(Value(int64_t{7}), v);
  EXPECT_EQ(FlatValues(map, Value(int64_t{7})),
            (std::vector<uint64_t>{4, 3, 2, 1, 0}));
}

TEST(FlatMultiMapTest, HashedEntryPointsMatchPlainOnes) {
  Map map;
  const Value key(int64_t{42});
  const uint64_t hash = map.HashOf(key);
  map.InsertHashed(hash, key, 1);
  map.Insert(key, 2);
  std::vector<uint64_t> got;
  map.ForEachValueHashed(hash, key,
                         [&](const uint64_t& v) { got.push_back(v); });
  EXPECT_EQ(Sorted(got), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(Sorted(got), Sorted(FlatValues(map, key)));
}

TEST(FlatMultiMapTest, ClearKeepsCapacityAndRefillAllocatesNothing) {
  Map map;
  for (int64_t k = 0; k < 1000; ++k) {
    map.Insert(Value(k), static_cast<uint64_t>(k));
  }
  const size_t buckets = map.bucket_count();
  const size_t bytes = map.capacity_bytes();
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.distinct_keys(), 0u);
  EXPECT_EQ(map.bucket_count(), buckets);
  EXPECT_EQ(map.capacity_bytes(), bytes);
  EXPECT_TRUE(FlatValues(map, Value(int64_t{3})).empty());
  for (int64_t k = 0; k < 1000; ++k) {
    map.Insert(Value(k), static_cast<uint64_t>(k + 5));
  }
  // Refilling to the previous population reuses the pooled arrays.
  EXPECT_EQ(map.bucket_count(), buckets);
  EXPECT_EQ(map.capacity_bytes(), bytes);
  EXPECT_EQ(FlatValues(map, Value(int64_t{3})),
            (std::vector<uint64_t>{8}));
}

TEST(FlatMultiMapTest, ReserveKeysAvoidsRehash) {
  Map map;
  map.ReserveKeys(100);
  const size_t buckets = map.bucket_count();
  EXPECT_GT(buckets, 0u);
  for (int64_t k = 0; k < 100; ++k) {
    EXPECT_FALSE(map.WouldGrowOnInsert()) << k;
    map.Insert(Value(k), static_cast<uint64_t>(k));
    ASSERT_EQ(map.bucket_count(), buckets);
  }
}

TEST(FlatMultiMapTest, WouldGrowOnInsertIsTheExactGrowthEdge) {
  Map map;
  EXPECT_TRUE(map.WouldGrowOnInsert());  // first insert allocates
  int64_t k = 0;
  for (int round = 0; round < 4; ++round) {
    // Inserts below the flag never move the bucket array; the first
    // insert at the flag grows it.
    const size_t before = map.bucket_count();
    while (!map.WouldGrowOnInsert()) {
      map.Insert(Value(k), static_cast<uint64_t>(k));
      ++k;
      ASSERT_EQ(map.bucket_count(), before);
    }
    map.Insert(Value(k), static_cast<uint64_t>(k));
    ++k;
    EXPECT_GT(map.bucket_count(), before);
  }
}

TEST(FlatMultiMapTest, TombstoneChurnRebuildsAtSameSize) {
  Map map;
  for (int64_t k = 0; k < 3; ++k) {
    map.Insert(Value(k), static_cast<uint64_t>(k));
  }
  const size_t buckets = map.bucket_count();
  // Insert-then-erase a fresh key each round: tombstones pile up and
  // periodically force a rebuild, but with only 3 live keys the rebuild
  // must purge at the SAME bucket count, never double.
  for (int64_t round = 0; round < 5000; ++round) {
    const Value key(int64_t{100} + round);
    map.Insert(key, 7);
    EXPECT_TRUE(map.EraseOne(key, 7));
  }
  EXPECT_EQ(map.bucket_count(), buckets);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.distinct_keys(), 3u);
  EXPECT_EQ(FlatValues(map, Value(int64_t{1})),
            (std::vector<uint64_t>{1}));
}

}  // namespace
}  // namespace abivm
