#include "common/float_compare.h"

#include <gtest/gtest.h>

namespace abivm {
namespace {

TEST(FloatCompareTest, ExactBoundaryIsWithin) {
  EXPECT_TRUE(CostWithinBudget(10.0, 10.0));
  EXPECT_FALSE(CostExceedsBudget(10.0, 10.0));
}

TEST(FloatCompareTest, RoundingNoiseAtTheBoundaryIsWithin) {
  // Sums of per-table costs that mathematically equal the budget can land
  // a few ulps above it; those must still count as within.
  const double budget = 0.3;
  const double cost = 0.1 + 0.2;  // 0.30000000000000004
  ASSERT_GT(cost, budget);        // the raw comparison disagrees...
  EXPECT_TRUE(CostWithinBudget(cost, budget));  // ...the tolerant one not
}

TEST(FloatCompareTest, ClearExcessIsDetected) {
  EXPECT_TRUE(CostExceedsBudget(10.001, 10.0));
  EXPECT_FALSE(CostWithinBudget(10.001, 10.0));
  EXPECT_TRUE(CostExceedsBudget(1e-3, 0.0));
}

TEST(FloatCompareTest, ToleranceScalesWithMagnitude) {
  // At magnitude 1e12 the absolute epsilon alone would be far below one
  // ulp; the relative term keeps boundary sums within.
  const double budget = 1e12;
  const double cost = budget * (1.0 + 1e-12);
  EXPECT_TRUE(CostWithinBudget(cost, budget));
  EXPECT_TRUE(CostExceedsBudget(budget * 1.001, budget));
}

TEST(FloatCompareTest, PredicatesAreExactComplements) {
  const double values[] = {0.0, 1e-12, 0.1 + 0.2, 0.3, 10.0, 1e12};
  for (double cost : values) {
    for (double budget : values) {
      EXPECT_NE(CostWithinBudget(cost, budget),
                CostExceedsBudget(cost, budget));
    }
  }
}

}  // namespace
}  // namespace abivm
