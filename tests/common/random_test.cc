#include "common/random.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace abivm {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123), c(124);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    any_diff = any_diff || va != c.Next();
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntStaysInRangeAndCoversIt) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(8);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformDoubleMoments) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(variance), 2.0, 0.1);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(12);
  auto sample_mean = [&](double lambda) {
    uint64_t total = 0;
    for (int i = 0; i < 20000; ++i) total += rng.Poisson(lambda);
    return static_cast<double>(total) / 20000.0;
  };
  EXPECT_NEAR(sample_mean(0.5), 0.5, 0.05);
  EXPECT_NEAR(sample_mean(3.0), 3.0, 0.1);
  EXPECT_NEAR(sample_mean(100.0), 100.0, 1.0);  // normal-approx branch
  EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(RngTest, AlphaString) {
  Rng rng(13);
  const std::string s = rng.AlphaString(32);
  EXPECT_EQ(s.size(), 32u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
  EXPECT_TRUE(rng.AlphaString(0).empty());
}

TEST(SplitMix64Test, AdvancesStateAndMixes) {
  uint64_t state = 1;
  const uint64_t first = SplitMix64(state);
  const uint64_t second = SplitMix64(state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 1u);
}

}  // namespace
}  // namespace abivm
