#include "tpc/tpc_gen.h"

#include <set>

#include <gtest/gtest.h>

#include "tpc/update_stream.h"

namespace abivm {
namespace {

TEST(TpcGenTest, RowCountsMatchScaleFactor) {
  Database db;
  TpcGenOptions options;
  options.scale_factor = 0.001;
  GenerateTpcDatabase(&db, options);
  EXPECT_EQ(db.table(kRegion).live_row_count(), 5u);
  EXPECT_EQ(db.table(kNation).live_row_count(), 25u);
  EXPECT_EQ(db.table(kSupplier).live_row_count(), 10u);
  EXPECT_EQ(db.table(kPart).live_row_count(), 200u);
  EXPECT_EQ(db.table(kPartSupp).live_row_count(), 800u);
  EXPECT_FALSE(db.HasTable(kCustomer));
}

TEST(TpcGenTest, CountHelpers) {
  EXPECT_EQ(TpcSupplierCount(1.0), 10'000u);
  EXPECT_EQ(TpcPartCount(1.0), 200'000u);
  EXPECT_EQ(TpcPartSuppCount(1.0), 800'000u);
  EXPECT_EQ(TpcCustomerCount(0.01), 1'500u);
  EXPECT_EQ(TpcSupplierCount(0.00001), 1u);  // minimum of one row
}

TEST(TpcGenTest, MiddleEastHasExactlyFiveNations) {
  Database db;
  TpcGenOptions options;
  options.scale_factor = 0.001;
  GenerateTpcDatabase(&db, options);

  const Table& region = db.table(kRegion);
  int64_t middle_east_key = -1;
  region.ScanAt(0, [&](RowId, const Row& row) {
    if (row[1] == Value("MIDDLE EAST")) middle_east_key = row[0].AsInt64();
  });
  ASSERT_NE(middle_east_key, -1);

  std::set<std::string> me_nations;
  db.table(kNation).ScanAt(0, [&](RowId, const Row& row) {
    if (row[2].AsInt64() == middle_east_key) {
      me_nations.insert(row[1].AsString());
    }
  });
  EXPECT_EQ(me_nations, (std::set<std::string>{"EGYPT", "IRAN", "IRAQ",
                                               "JORDAN", "SAUDI ARABIA"}));
}

TEST(TpcGenTest, ForeignKeysResolve) {
  Database db;
  TpcGenOptions options;
  options.scale_factor = 0.001;
  GenerateTpcDatabase(&db, options);

  std::set<int64_t> suppkeys;
  db.table(kSupplier).ScanAt(0, [&](RowId, const Row& row) {
    suppkeys.insert(row[0].AsInt64());
  });
  std::set<int64_t> partkeys;
  db.table(kPart).ScanAt(0, [&](RowId, const Row& row) {
    partkeys.insert(row[0].AsInt64());
  });
  db.table(kPartSupp).ScanAt(0, [&](RowId, const Row& row) {
    EXPECT_TRUE(partkeys.count(row[0].AsInt64()));
    EXPECT_TRUE(suppkeys.count(row[1].AsInt64()));
  });
  db.table(kSupplier).ScanAt(0, [&](RowId, const Row& row) {
    const int64_t nk = row[3].AsInt64();
    EXPECT_GE(nk, 0);
    EXPECT_LE(nk, 24);
  });
}

TEST(TpcGenTest, DeterministicForSameSeed) {
  auto fingerprint = [](uint64_t seed) {
    Database db;
    TpcGenOptions options;
    options.scale_factor = 0.001;
    options.seed = seed;
    GenerateTpcDatabase(&db, options);
    uint64_t h = 0;
    db.table(kPartSupp).ScanAt(0, [&](RowId, const Row& row) {
      for (const Value& v : row) h ^= v.Hash();
    });
    return h;
  };
  EXPECT_EQ(fingerprint(7), fingerprint(7));
  EXPECT_NE(fingerprint(7), fingerprint(8));
}

TEST(TpcGenTest, SalesPipelineGeneratedWhenRequested) {
  Database db;
  TpcGenOptions options;
  options.scale_factor = 0.0005;
  options.include_sales_pipeline = true;
  GenerateTpcDatabase(&db, options);
  EXPECT_EQ(db.table(kCustomer).live_row_count(), 75u);
  EXPECT_EQ(db.table(kOrders).live_row_count(), 750u);
  EXPECT_GE(db.table(kLineItem).live_row_count(), 750u);
}

TEST(TpcUpdaterTest, PaperModificationsTouchTheRightColumns) {
  Database db;
  TpcGenOptions options;
  options.scale_factor = 0.001;
  GenerateTpcDatabase(&db, options);
  TpcUpdater updater(&db, 17);

  updater.UpdatePartSuppSupplycost();
  updater.UpdateSupplierNationkey();

  const DeltaLog& ps_log = db.table(kPartSupp).delta_log();
  ASSERT_EQ(ps_log.size(), 1u);
  const Modification& ps_mod = ps_log.At(0);
  EXPECT_EQ(ps_mod.kind, ModKind::kUpdate);
  // Keys unchanged, supplycost changed.
  EXPECT_EQ(ps_mod.old_row[0], ps_mod.new_row[0]);
  EXPECT_EQ(ps_mod.old_row[1], ps_mod.new_row[1]);
  EXPECT_NE(ps_mod.old_row[3], ps_mod.new_row[3]);

  const DeltaLog& s_log = db.table(kSupplier).delta_log();
  ASSERT_EQ(s_log.size(), 1u);
  const Modification& s_mod = s_log.At(0);
  EXPECT_EQ(s_mod.kind, ModKind::kUpdate);
  EXPECT_EQ(s_mod.old_row[0], s_mod.new_row[0]);

  updater.ApplyPaperModification(kPartSupp);
  EXPECT_EQ(ps_log.size(), 2u);
}

}  // namespace
}  // namespace abivm
