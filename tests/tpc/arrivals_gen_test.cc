#include "tpc/arrivals_gen.h"

#include <cmath>

#include <gtest/gtest.h>

namespace abivm {
namespace {

TEST(PaperNonUniformArrivalsTest, RespectsArrivalProbability) {
  Rng rng(1);
  const ArrivalSequence slow =
      MakePaperNonUniformArrivals(2, 9999, /*p=*/0.5, /*mu=*/1.0,
                                  /*sigma=*/1.0, rng);
  const ArrivalSequence fast =
      MakePaperNonUniformArrivals(2, 9999, /*p=*/0.9, 1.0, 1.0, rng);

  auto active_fraction = [](const ArrivalSequence& seq, size_t i) {
    int64_t active = 0;
    for (TimeStep t = 0; t <= seq.horizon(); ++t) {
      if (seq.At(t)[i] > 0) ++active;
    }
    return static_cast<double>(active) /
           static_cast<double>(seq.horizon() + 1);
  };
  EXPECT_NEAR(active_fraction(slow, 0), 0.5, 0.03);
  EXPECT_NEAR(active_fraction(fast, 0), 0.9, 0.03);
  EXPECT_NEAR(active_fraction(fast, 1), 0.9, 0.03);
}

TEST(PaperNonUniformArrivalsTest, UnstableStreamsHaveLargerBursts) {
  Rng rng(2);
  const ArrivalSequence stable =
      MakePaperNonUniformArrivals(1, 4999, 0.9, 1.0, /*sigma=*/1.0, rng);
  const ArrivalSequence unstable =
      MakePaperNonUniformArrivals(1, 4999, 0.9, 1.0, /*sigma=*/5.0, rng);
  EXPECT_GT(unstable.MaxStepArrival(0), stable.MaxStepArrival(0));
}

TEST(PaperNonUniformArrivalsTest, CountsArePositiveWhenActive) {
  Rng rng(3);
  const ArrivalSequence seq =
      MakePaperNonUniformArrivals(1, 999, 1.0, 1.0, 5.0, rng);
  for (TimeStep t = 0; t <= seq.horizon(); ++t) {
    EXPECT_GE(seq.At(t)[0], 1u);  // p = 1: every step has d >= 1
  }
}

TEST(PoissonArrivalsTest, MeanTracksRate) {
  Rng rng(4);
  const ArrivalSequence seq = MakePoissonArrivals({2.0, 0.5}, 9999, rng);
  EXPECT_NEAR(static_cast<double>(seq.Total(0)) / 10000.0, 2.0, 0.1);
  EXPECT_NEAR(static_cast<double>(seq.Total(1)) / 10000.0, 0.5, 0.05);
}

TEST(BurstyArrivalsTest, OnOffPattern) {
  const ArrivalSequence seq = MakeBurstyArrivals(1, 19, /*on=*/3, /*off=*/2,
                                                 /*rate_on=*/4);
  // Period 5: steps 0,1,2 on; 3,4 off.
  EXPECT_EQ(seq.At(0)[0], 4u);
  EXPECT_EQ(seq.At(2)[0], 4u);
  EXPECT_EQ(seq.At(3)[0], 0u);
  EXPECT_EQ(seq.At(4)[0], 0u);
  EXPECT_EQ(seq.At(5)[0], 4u);
  EXPECT_EQ(seq.Total(0), 4u * 12u);  // 4 full periods * 3 on-steps
}

}  // namespace
}  // namespace abivm
