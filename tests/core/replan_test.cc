#include "core/replan.h"

#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/astar.h"
#include "core/naive.h"
#include "sim/simulator.h"
#include "tests/core/test_instances.h"
#include "tpc/arrivals_gen.h"

namespace abivm {
namespace {

using abivm::testing::RandomInstance;

ProblemInstance TwoTableInstance(ArrivalSequence arrivals) {
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0)};
  return ProblemInstance{CostModel(std::move(fns)), std::move(arrivals),
                         15.0};
}

TEST(ReplanningPolicyTest, ValidOnUniformArrivals) {
  const ProblemInstance instance =
      TwoTableInstance(ArrivalSequence::Uniform({1, 1}, 399));
  ReplanningPolicy policy;
  const Trace trace = Simulate(instance, policy, {.strict = true});
  EXPECT_EQ(trace.violations, 0u);
  EXPECT_GE(policy.plans_computed(), 399u / 50u);
  EXPECT_TRUE(ValidatePlan(instance, trace.AsPlan(2, 399)).ok());
}

TEST(ReplanningPolicyTest, NearOptimalOnUniformArrivals) {
  // With a perfect rate estimate (uniform stream), the receding-horizon
  // plans should land close to the clairvoyant optimum.
  const ProblemInstance instance =
      TwoTableInstance(ArrivalSequence::Uniform({1, 1}, 599));
  ReplanningPolicy policy;
  const Trace trace = Simulate(instance, policy, {.strict = true});
  const PlanSearchResult optimal = FindOptimalLgmPlan(instance);
  EXPECT_LE(trace.total_cost, 1.25 * optimal.cost);
  EXPECT_GE(trace.total_cost, optimal.cost - 1e-9);
}

TEST(ReplanningPolicyTest, ValidOnRandomInstances) {
  Rng rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    const ProblemInstance instance = RandomInstance(rng);
    ReplanOptions options;
    options.replan_period = 3;
    options.plan_horizon = 8;
    ReplanningPolicy policy(options);
    const Trace trace = Simulate(instance, policy);
    EXPECT_EQ(trace.violations, 0u) << "trial " << trial;
    EXPECT_TRUE(ValidatePlan(instance,
                             trace.AsPlan(instance.n(), instance.horizon()))
                    .ok())
        << "trial " << trial;
  }
}

TEST(ReplanningPolicyTest, SurvivesBurstyStreamsViaFallback) {
  // Rate projections are badly wrong on on/off bursts; the policy must
  // still never violate the constraint.
  const ArrivalSequence arrivals =
      MakeBurstyArrivals(2, 499, /*on=*/5, /*off=*/45, /*rate_on=*/8);
  const ProblemInstance instance = TwoTableInstance(arrivals);
  ReplanningPolicy policy;
  const Trace trace = Simulate(instance, policy, {.strict = true});
  EXPECT_EQ(trace.violations, 0u);
  NaivePolicy naive;
  const Trace naive_trace = Simulate(instance, naive);
  // Sanity: lookahead should not be catastrophically worse than NAIVE.
  EXPECT_LE(trace.total_cost, 1.5 * naive_trace.total_cost);
}

TEST(ReplanningPolicyTest, ResetClearsState) {
  const ProblemInstance instance =
      TwoTableInstance(ArrivalSequence::Uniform({1, 1}, 99));
  ReplanningPolicy policy;
  (void)Simulate(instance, policy, {.strict = true});
  const uint64_t first_run_plans = policy.plans_computed();
  (void)Simulate(instance, policy, {.strict = true});
  EXPECT_EQ(policy.plans_computed(), first_run_plans);  // re-counted fresh
}

TEST(ReplanningPolicyTest, QuietFirstStepDoesNotSeedZeroRates) {
  // Regression: seeding the EWMA from a quiet first step marked the
  // estimator initialized at all-zero rates, so later arrivals were
  // blended in one alpha-step at a time instead of seeding directly.
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0)};
  const CostModel model(std::move(fns));
  ReplanningPolicy policy;
  policy.Reset(model, 15.0);

  // Quiet warm-up: the estimator must stay unseeded, not locked at zero.
  (void)policy.Act(0, {0, 0}, {0, 0});
  (void)policy.Act(1, {0, 0}, {0, 0});
  EXPECT_EQ(policy.arrival_rates(), (std::vector<double>{0.0, 0.0}));

  // First nonzero arrivals seed the rates EXACTLY (not alpha * value).
  (void)policy.Act(2, {4, 2}, {4, 2});
  EXPECT_EQ(policy.arrival_rates(), (std::vector<double>{4.0, 2.0}));

  // From then on the ordinary EWMA update applies (alpha defaults 0.2).
  (void)policy.Act(3, {4, 2}, {0, 0});
  EXPECT_EQ(policy.arrival_rates(), (std::vector<double>{3.2, 1.6}));
}

TEST(ReplanningPolicyTest, ResetRebindsModelReference) {
  // The policy holds the cost model by pointer; Reset must rebind it, and
  // a model that lives across the run is all the policy may assume.
  std::vector<CostFunctionPtr> cheap_fns = {
      std::make_shared<LinearCost>(0.1, 0.2),
      std::make_shared<LinearCost>(0.1, 0.2)};
  std::vector<CostFunctionPtr> dear_fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0)};
  const ArrivalSequence arrivals = ArrivalSequence::Uniform({1, 1}, 149);
  const ProblemInstance cheap{CostModel(std::move(cheap_fns)), arrivals,
                              15.0};
  const ProblemInstance dear{CostModel(std::move(dear_fns)), arrivals,
                             15.0};
  ReplanningPolicy policy;
  const Trace cheap_trace = Simulate(cheap, policy, {.strict = true});
  const Trace dear_trace = Simulate(dear, policy, {.strict = true});
  // Distinct models must drive distinct (here: differently priced) runs;
  // a stale binding would reproduce the first run's costs.
  EXPECT_NE(cheap_trace.total_cost, dear_trace.total_cost);
  EXPECT_EQ(dear_trace.violations, 0u);
}

TEST(ReplanningPolicyTest, PlanIndexStaysInRangeAtHorizonBoundary) {
  // Boundary audit pin: with replan_period == plan_horizon, the plan's
  // last usable index is reached exactly when the period clause forces a
  // replan, so ActionAt is only ever indexed in [0, horizon). This is the
  // tightest configuration the constructor admits; it must neither crash
  // nor read past the plan.
  ReplanOptions options;
  options.replan_period = 4;
  options.plan_horizon = 4;
  const ProblemInstance instance =
      TwoTableInstance(ArrivalSequence::Uniform({1, 1}, 99));
  ReplanningPolicy policy(options);
  const Trace trace = Simulate(instance, policy, {.strict = true});
  EXPECT_EQ(trace.violations, 0u);
  EXPECT_TRUE(ValidatePlan(instance, trace.AsPlan(2, 99)).ok());
  // The period clause must have fired on schedule: one plan per window.
  EXPECT_GE(policy.plans_computed(), 99u / 4u);
}

TEST(ReplanningPolicyTest, HoldsWorkspaceAcrossReplansAndResets) {
  const ProblemInstance instance =
      TwoTableInstance(ArrivalSequence::Uniform({1, 1}, 199));
  ReplanningPolicy policy;
  (void)Simulate(instance, policy, {.strict = true});
  const uint64_t searches_after_first = policy.planner_workspace().searches();
  ASSERT_GE(policy.plans_computed(), 2u);
  // Every replan after the first reused the same workspace.
  EXPECT_EQ(policy.planner_workspace().reuses(), searches_after_first - 1);
  // Reset() keeps the pooled capacity: the second run continues the
  // workspace's search count instead of starting a fresh one.
  (void)Simulate(instance, policy, {.strict = true});
  EXPECT_EQ(policy.planner_workspace().searches(),
            2 * searches_after_first);
}

// The snapshot must carry the OPEN PLAN (and its epoch), not just the
// EWMA rates: a restored policy keeps executing the saved plan's
// remaining actions instead of replanning from scratch -- bit-identical
// decisions even when the split lands mid-plan-window.
TEST(ReplanningPolicyTest, StateSnapshotRoundTripsMidPlan) {
  Rng rng(4242);
  for (int trial = 0; trial < 15; ++trial) {
    const ProblemInstance instance = RandomInstance(rng);
    ReplanningPolicy original;
    ASSERT_TRUE(original.SupportsStateSnapshot());
    original.Reset(instance.cost_model, instance.budget);
    StateVec state = ZeroVec(instance.n());
    // Split at an odd offset so some trials save mid-plan-window.
    const TimeStep split = instance.horizon() / 2 + (trial % 3);
    for (TimeStep t = 0; t < split && t <= instance.horizon(); ++t) {
      state = AddVec(state, instance.arrivals.At(t));
      state = SubVec(state, original.Act(t, state, instance.arrivals.At(t)));
    }

    ReplanningPolicy restored;
    restored.Reset(instance.cost_model, instance.budget);
    ASSERT_TRUE(restored.RestoreState(original.SaveState()).ok())
        << "trial " << trial;

    for (TimeStep t = split; t <= instance.horizon(); ++t) {
      state = AddVec(state, instance.arrivals.At(t));
      const StateVec a = original.Act(t, state, instance.arrivals.At(t));
      const StateVec b = restored.Act(t, state, instance.arrivals.At(t));
      ASSERT_EQ(a, b) << "trial " << trial << " step " << t;
      state = SubVec(state, a);
    }
  }
}

TEST(ReplanningPolicyTest, SaveStateIsEmptyBeforeResetAndRestoreValidates) {
  ReplanningPolicy policy;
  EXPECT_TRUE(policy.SaveState().empty());
  const ProblemInstance instance =
      TwoTableInstance(ArrivalSequence::Uniform({1, 1}, 9));
  policy.Reset(instance.cost_model, instance.budget);
  EXPECT_FALSE(policy.RestoreState("").ok());
  EXPECT_FALSE(policy.RestoreState("not a blob").ok());
  // Truncated real blob: every prefix must be rejected, never crash.
  (void)policy.Act(0, {1, 1}, {1, 1});
  const std::string blob = policy.SaveState();
  for (size_t len = 0; len < blob.size(); ++len) {
    EXPECT_FALSE(
        policy.RestoreState(std::string_view(blob.data(), len)).ok())
        << "prefix length " << len;
  }
  // The untruncated blob restores cleanly.
  EXPECT_TRUE(policy.RestoreState(blob).ok());
}

}  // namespace
}  // namespace abivm
