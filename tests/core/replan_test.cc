#include "core/replan.h"

#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/astar.h"
#include "core/naive.h"
#include "sim/simulator.h"
#include "tests/core/test_instances.h"
#include "tpc/arrivals_gen.h"

namespace abivm {
namespace {

using abivm::testing::RandomInstance;

ProblemInstance TwoTableInstance(ArrivalSequence arrivals) {
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0)};
  return ProblemInstance{CostModel(std::move(fns)), std::move(arrivals),
                         15.0};
}

TEST(ReplanningPolicyTest, ValidOnUniformArrivals) {
  const ProblemInstance instance =
      TwoTableInstance(ArrivalSequence::Uniform({1, 1}, 399));
  ReplanningPolicy policy;
  const Trace trace = Simulate(instance, policy, {.strict = true});
  EXPECT_EQ(trace.violations, 0u);
  EXPECT_GE(policy.plans_computed(), 399u / 50u);
  EXPECT_TRUE(ValidatePlan(instance, trace.AsPlan(2, 399)).ok());
}

TEST(ReplanningPolicyTest, NearOptimalOnUniformArrivals) {
  // With a perfect rate estimate (uniform stream), the receding-horizon
  // plans should land close to the clairvoyant optimum.
  const ProblemInstance instance =
      TwoTableInstance(ArrivalSequence::Uniform({1, 1}, 599));
  ReplanningPolicy policy;
  const Trace trace = Simulate(instance, policy, {.strict = true});
  const PlanSearchResult optimal = FindOptimalLgmPlan(instance);
  EXPECT_LE(trace.total_cost, 1.25 * optimal.cost);
  EXPECT_GE(trace.total_cost, optimal.cost - 1e-9);
}

TEST(ReplanningPolicyTest, ValidOnRandomInstances) {
  Rng rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    const ProblemInstance instance = RandomInstance(rng);
    ReplanOptions options;
    options.replan_period = 3;
    options.plan_horizon = 8;
    ReplanningPolicy policy(options);
    const Trace trace = Simulate(instance, policy);
    EXPECT_EQ(trace.violations, 0u) << "trial " << trial;
    EXPECT_TRUE(ValidatePlan(instance,
                             trace.AsPlan(instance.n(), instance.horizon()))
                    .ok())
        << "trial " << trial;
  }
}

TEST(ReplanningPolicyTest, SurvivesBurstyStreamsViaFallback) {
  // Rate projections are badly wrong on on/off bursts; the policy must
  // still never violate the constraint.
  const ArrivalSequence arrivals =
      MakeBurstyArrivals(2, 499, /*on=*/5, /*off=*/45, /*rate_on=*/8);
  const ProblemInstance instance = TwoTableInstance(arrivals);
  ReplanningPolicy policy;
  const Trace trace = Simulate(instance, policy, {.strict = true});
  EXPECT_EQ(trace.violations, 0u);
  NaivePolicy naive;
  const Trace naive_trace = Simulate(instance, naive);
  // Sanity: lookahead should not be catastrophically worse than NAIVE.
  EXPECT_LE(trace.total_cost, 1.5 * naive_trace.total_cost);
}

TEST(ReplanningPolicyTest, ResetClearsState) {
  const ProblemInstance instance =
      TwoTableInstance(ArrivalSequence::Uniform({1, 1}, 99));
  ReplanningPolicy policy;
  (void)Simulate(instance, policy, {.strict = true});
  const uint64_t first_run_plans = policy.plans_computed();
  (void)Simulate(instance, policy, {.strict = true});
  EXPECT_EQ(policy.plans_computed(), first_run_plans);  // re-counted fresh
}

}  // namespace
}  // namespace abivm
