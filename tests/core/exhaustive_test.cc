#include "core/exhaustive.h"

#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/astar.h"
#include "tests/core/test_instances.h"

namespace abivm {
namespace {

using abivm::testing::InstanceShape;
using abivm::testing::RandomInstance;

TEST(ExhaustiveLgmPlanTest, SingleTableClosedForm) {
  // f(k) = k, C = 5, 1 arrival/step, T = 11: forced flush at 6, refresh
  // with 6 -- any LGM plan costs exactly 12 here.
  std::vector<CostFunctionPtr> fns = {std::make_shared<LinearCost>(1.0, 0.0)};
  const ProblemInstance instance{CostModel(std::move(fns)),
                                 ArrivalSequence::Uniform({1}, 11), 5.0};
  const MaintenancePlan plan = ExhaustiveLgmPlan(instance);
  EXPECT_TRUE(ValidatePlan(instance, plan).ok());
  EXPECT_TRUE(IsLgm(instance, plan));
  EXPECT_DOUBLE_EQ(plan.TotalCost(instance.cost_model), 12.0);
}

TEST(ExhaustiveOptimalPlanTest, NeverWorseThanLgmOracle) {
  Rng rng(2024);
  InstanceShape shape;
  shape.max_n = 2;
  shape.min_t = 2;
  shape.max_t = 5;
  shape.max_step_arrival = 2;
  shape.min_budget = 1.0;
  shape.max_budget = 8.0;
  for (int trial = 0; trial < 40; ++trial) {
    const ProblemInstance instance = RandomInstance(rng, shape);
    const MaintenancePlan lgm = ExhaustiveLgmPlan(instance);
    const MaintenancePlan opt = ExhaustiveOptimalPlan(instance);
    EXPECT_TRUE(ValidatePlan(instance, lgm).ok()) << "trial " << trial;
    EXPECT_TRUE(ValidatePlan(instance, opt).ok()) << "trial " << trial;
    EXPECT_TRUE(IsLgm(instance, lgm)) << "trial " << trial;
    EXPECT_TRUE(IsLazy(instance, opt)) << "trial " << trial;
    EXPECT_LE(opt.TotalCost(instance.cost_model),
              lgm.TotalCost(instance.cost_model) + 1e-9)
        << "trial " << trial;
  }
}

TEST(ExhaustiveOptimalPlanTest, CanBeatLgmOnTheGapInstance) {
  // On the Section 3.2 instance the optimal lazy plan takes non-greedy
  // partial actions that no LGM plan can take.
  std::vector<CostFunctionPtr> fns = {MakePaperGapCost(0.5, 10.0)};
  const ProblemInstance instance{CostModel(std::move(fns)),
                                 ArrivalSequence::Uniform({5}, 5), 10.0};
  const MaintenancePlan lgm = ExhaustiveLgmPlan(instance);
  const MaintenancePlan opt = ExhaustiveOptimalPlan(instance);
  EXPECT_LT(opt.TotalCost(instance.cost_model),
            lgm.TotalCost(instance.cost_model));
  EXPECT_FALSE(IsGreedy(instance, opt));  // the win requires partial flush
}

TEST(PaperExactHeuristicTest, OptimalOnLinearInstances) {
  // The literal Section-4.1 heuristic is admissible for star-shaped
  // (e.g. linear) costs; with node re-opening the search stays optimal.
  Rng rng(31);
  InstanceShape shape;
  shape.linear_only = true;
  for (int trial = 0; trial < 60; ++trial) {
    const ProblemInstance instance = RandomInstance(rng, shape);
    const PlanSearchResult safe = FindOptimalLgmPlan(instance);
    const PlanSearchResult paper = FindOptimalLgmPlan(
        instance, AStarOptions{.paper_exact_heuristic = true});
    EXPECT_NEAR(safe.cost, paper.cost, 1e-9) << "trial " << trial;
  }
}

TEST(PaperExactHeuristicTest, ContinuousTermDominatesFloorTerm) {
  // Sanity on the repaired heuristic's search effort: it must never
  // expand more nodes than the floor-term variant on linear instances
  // (it dominates pointwise and is consistent).
  Rng rng(32);
  InstanceShape shape;
  shape.linear_only = true;
  shape.min_t = 8;
  shape.max_t = 16;
  uint64_t safe_total = 0;
  uint64_t paper_total = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const ProblemInstance instance = RandomInstance(rng, shape);
    safe_total += FindOptimalLgmPlan(instance).nodes_expanded;
    paper_total +=
        FindOptimalLgmPlan(instance,
                           AStarOptions{.paper_exact_heuristic = true})
            .nodes_expanded;
  }
  EXPECT_LE(safe_total, paper_total);
}

}  // namespace
}  // namespace abivm
