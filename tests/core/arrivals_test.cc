#include "core/arrivals.h"

#include <gtest/gtest.h>

namespace abivm {
namespace {

ArrivalSequence MakeSequence() {
  // t:      0  1  2  3
  // table0: 1  0  2  3
  // table1: 0  5  0  1
  return ArrivalSequence({{1, 0}, {0, 5}, {2, 0}, {3, 1}});
}

TEST(ArrivalSequenceTest, BasicAccessors) {
  const ArrivalSequence seq = MakeSequence();
  EXPECT_EQ(seq.n(), 2u);
  EXPECT_EQ(seq.horizon(), 3);
  EXPECT_EQ(seq.At(0), (StateVec{1, 0}));
  EXPECT_EQ(seq.At(3), (StateVec{3, 1}));
}

TEST(ArrivalSequenceTest, RangeSums) {
  const ArrivalSequence seq = MakeSequence();
  EXPECT_EQ(seq.RangeSum(0, 3, 0), 6u);
  EXPECT_EQ(seq.RangeSum(0, 3, 1), 6u);
  EXPECT_EQ(seq.RangeSum(1, 2, 0), 2u);
  EXPECT_EQ(seq.RangeSum(1, 2, 1), 5u);
  EXPECT_EQ(seq.RangeSum(2, 2, 0), 2u);
  EXPECT_EQ(seq.RangeSum(3, 1, 0), 0u);  // empty range
  EXPECT_EQ(seq.RangeSumVec(1, 3), (StateVec{5, 6}));
}

TEST(ArrivalSequenceTest, NegativeLowerBoundClampsToZero) {
  const ArrivalSequence seq = MakeSequence();
  // The A* source sits at t = -1 and asks for ranges starting at 0.
  EXPECT_EQ(seq.RangeSum(-1, 3, 0), 6u);
  EXPECT_EQ(seq.RangeSumVec(-5, 0), (StateVec{1, 0}));
}

TEST(ArrivalSequenceTest, MaxStepArrivalAndTotals) {
  const ArrivalSequence seq = MakeSequence();
  EXPECT_EQ(seq.MaxStepArrival(0), 3u);
  EXPECT_EQ(seq.MaxStepArrival(1), 5u);
  EXPECT_EQ(seq.Total(0), 6u);
  EXPECT_EQ(seq.Total(1), 6u);
}

TEST(ArrivalSequenceTest, Uniform) {
  const ArrivalSequence seq = ArrivalSequence::Uniform({2, 1}, 9);
  EXPECT_EQ(seq.horizon(), 9);
  EXPECT_EQ(seq.Total(0), 20u);
  EXPECT_EQ(seq.Total(1), 10u);
  EXPECT_EQ(seq.MaxStepArrival(0), 2u);
}

TEST(ArrivalSequenceTest, RepeatToCycles) {
  const ArrivalSequence seq = MakeSequence();
  const ArrivalSequence repeated = seq.RepeatTo(9);
  EXPECT_EQ(repeated.horizon(), 9);
  for (TimeStep t = 0; t <= 9; ++t) {
    EXPECT_EQ(repeated.At(t), seq.At(t % 4)) << "t=" << t;
  }
}

TEST(ArrivalSequenceTest, RepeatToShorterTruncates) {
  const ArrivalSequence seq = MakeSequence();
  const ArrivalSequence shorter = seq.RepeatTo(1);
  EXPECT_EQ(shorter.horizon(), 1);
  EXPECT_EQ(shorter.At(1), seq.At(1));
}

TEST(ArrivalSequenceTest, Truncate) {
  const ArrivalSequence seq = MakeSequence();
  const ArrivalSequence t2 = seq.Truncate(2);
  EXPECT_EQ(t2.horizon(), 2);
  EXPECT_EQ(t2.Total(0), 3u);
  EXPECT_EQ(t2.Total(1), 5u);
}

}  // namespace
}  // namespace abivm
