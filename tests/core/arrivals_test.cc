#include "core/arrivals.h"

#include <gtest/gtest.h>

namespace abivm {
namespace {

ArrivalSequence MakeSequence() {
  // t:      0  1  2  3
  // table0: 1  0  2  3
  // table1: 0  5  0  1
  return ArrivalSequence({{1, 0}, {0, 5}, {2, 0}, {3, 1}});
}

TEST(ArrivalSequenceTest, BasicAccessors) {
  const ArrivalSequence seq = MakeSequence();
  EXPECT_EQ(seq.n(), 2u);
  EXPECT_EQ(seq.horizon(), 3);
  EXPECT_EQ(seq.At(0), (StateVec{1, 0}));
  EXPECT_EQ(seq.At(3), (StateVec{3, 1}));
}

TEST(ArrivalSequenceTest, RangeSums) {
  const ArrivalSequence seq = MakeSequence();
  EXPECT_EQ(seq.RangeSum(0, 3, 0), 6u);
  EXPECT_EQ(seq.RangeSum(0, 3, 1), 6u);
  EXPECT_EQ(seq.RangeSum(1, 2, 0), 2u);
  EXPECT_EQ(seq.RangeSum(1, 2, 1), 5u);
  EXPECT_EQ(seq.RangeSum(2, 2, 0), 2u);
  EXPECT_EQ(seq.RangeSum(3, 1, 0), 0u);  // empty range
  EXPECT_EQ(seq.RangeSumVec(1, 3), (StateVec{5, 6}));
}

TEST(ArrivalSequenceTest, NegativeLowerBoundClampsToZero) {
  const ArrivalSequence seq = MakeSequence();
  // The A* source sits at t = -1 and asks for ranges starting at 0.
  EXPECT_EQ(seq.RangeSum(-1, 3, 0), 6u);
  EXPECT_EQ(seq.RangeSumVec(-5, 0), (StateVec{1, 0}));
}

TEST(ArrivalSequenceTest, MaxStepArrivalAndTotals) {
  const ArrivalSequence seq = MakeSequence();
  EXPECT_EQ(seq.MaxStepArrival(0), 3u);
  EXPECT_EQ(seq.MaxStepArrival(1), 5u);
  EXPECT_EQ(seq.Total(0), 6u);
  EXPECT_EQ(seq.Total(1), 6u);
}

TEST(ArrivalSequenceTest, Uniform) {
  const ArrivalSequence seq = ArrivalSequence::Uniform({2, 1}, 9);
  EXPECT_EQ(seq.horizon(), 9);
  EXPECT_EQ(seq.Total(0), 20u);
  EXPECT_EQ(seq.Total(1), 10u);
  EXPECT_EQ(seq.MaxStepArrival(0), 2u);
}

TEST(ArrivalSequenceTest, RepeatToCycles) {
  const ArrivalSequence seq = MakeSequence();
  const ArrivalSequence repeated = seq.RepeatTo(9);
  EXPECT_EQ(repeated.horizon(), 9);
  for (TimeStep t = 0; t <= 9; ++t) {
    EXPECT_EQ(repeated.At(t), seq.At(t % 4)) << "t=" << t;
  }
}

TEST(ArrivalSequenceTest, RepeatToShorterTruncates) {
  const ArrivalSequence seq = MakeSequence();
  const ArrivalSequence shorter = seq.RepeatTo(1);
  EXPECT_EQ(shorter.horizon(), 1);
  EXPECT_EQ(shorter.At(1), seq.At(1));
}

TEST(ArrivalSequenceTest, Truncate) {
  const ArrivalSequence seq = MakeSequence();
  const ArrivalSequence t2 = seq.Truncate(2);
  EXPECT_EQ(t2.horizon(), 2);
  EXPECT_EQ(t2.Total(0), 3u);
  EXPECT_EQ(t2.Total(1), 5u);
}

TEST(ArrivalSequenceTest, RangeSumVecIntoMatchesAndReusesBuffer) {
  const ArrivalSequence seq = MakeSequence();
  StateVec scratch{99, 99, 99};  // wrong size on purpose: must be resized
  seq.RangeSumVecInto(1, 3, scratch);
  EXPECT_EQ(scratch, seq.RangeSumVec(1, 3));
  const Count* data = scratch.data();
  // Subsequent queries of the same width reuse the buffer's storage.
  seq.RangeSumVecInto(0, 2, scratch);
  EXPECT_EQ(scratch, seq.RangeSumVec(0, 2));
  EXPECT_EQ(scratch.data(), data);
  // Empty and clamped ranges behave like the allocating variant.
  seq.RangeSumVecInto(3, 1, scratch);
  EXPECT_EQ(scratch, (StateVec{0, 0}));
  seq.RangeSumVecInto(-5, 0, scratch);
  EXPECT_EQ(scratch, (StateVec{1, 0}));
}

TEST(ArrivalSequenceTest, PrefixThroughRows) {
  const ArrivalSequence seq = MakeSequence();
  EXPECT_EQ(seq.PrefixThrough(-1), (StateVec{0, 0}));
  EXPECT_EQ(seq.PrefixThrough(0), (StateVec{1, 0}));
  EXPECT_EQ(seq.PrefixThrough(2), (StateVec{3, 5}));
  EXPECT_EQ(seq.PrefixThrough(3), (StateVec{6, 6}));
  // Differencing two rows reproduces any range sum.
  for (TimeStep t1 = 0; t1 <= 3; ++t1) {
    for (TimeStep t2 = t1; t2 <= 3; ++t2) {
      for (size_t i = 0; i < seq.n(); ++i) {
        EXPECT_EQ(seq.PrefixThrough(t2)[i] - seq.PrefixThrough(t1 - 1)[i],
                  seq.RangeSum(t1, t2, i))
            << "t1=" << t1 << " t2=" << t2 << " i=" << i;
      }
    }
  }
}

TEST(ArrivalSequenceTest, HorizonZeroSequence) {
  // A single-step sequence (T = 0) is the smallest legal input; every
  // accessor must handle it.
  const ArrivalSequence seq({{4, 7}});
  EXPECT_EQ(seq.horizon(), 0);
  EXPECT_EQ(seq.Total(0), 4u);
  EXPECT_EQ(seq.RangeSumVec(0, 0), (StateVec{4, 7}));
  EXPECT_EQ(seq.RangeSumVec(1, 0), (StateVec{0, 0}));
  EXPECT_EQ(seq.PrefixThrough(-1), (StateVec{0, 0}));
  EXPECT_EQ(seq.PrefixThrough(0), (StateVec{4, 7}));
}

TEST(ArrivalSequenceTest, RepeatToSingleStep) {
  // Repeating a one-step sequence gives uniform arrivals.
  const ArrivalSequence seq({{2, 3}});
  const ArrivalSequence repeated = seq.RepeatTo(5);
  EXPECT_EQ(repeated.horizon(), 5);
  for (TimeStep t = 0; t <= 5; ++t) {
    EXPECT_EQ(repeated.At(t), (StateVec{2, 3})) << "t=" << t;
  }
  EXPECT_EQ(repeated.Total(0), 12u);
}

TEST(ArrivalSequenceTest, RepeatToSameHorizonIsIdentity) {
  const ArrivalSequence seq = MakeSequence();
  const ArrivalSequence same = seq.RepeatTo(seq.horizon());
  EXPECT_EQ(same.horizon(), seq.horizon());
  for (TimeStep t = 0; t <= seq.horizon(); ++t) {
    EXPECT_EQ(same.At(t), seq.At(t)) << "t=" << t;
  }
}

TEST(ArrivalSequenceTest, TruncateEdgeCases) {
  const ArrivalSequence seq = MakeSequence();
  // Truncate to the full length: a verbatim copy.
  const ArrivalSequence full = seq.Truncate(seq.horizon());
  EXPECT_EQ(full.horizon(), seq.horizon());
  for (TimeStep t = 0; t <= seq.horizon(); ++t) {
    EXPECT_EQ(full.At(t), seq.At(t)) << "t=" << t;
  }
  EXPECT_EQ(full.MaxStepArrival(1), seq.MaxStepArrival(1));
  // Truncate to a single step (T = 0).
  const ArrivalSequence first = seq.Truncate(0);
  EXPECT_EQ(first.horizon(), 0);
  EXPECT_EQ(first.At(0), seq.At(0));
  EXPECT_EQ(first.Total(1), 0u);
  EXPECT_EQ(first.MaxStepArrival(0), 1u);
}

}  // namespace
}  // namespace abivm
