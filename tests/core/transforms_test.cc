#include "core/transforms.h"

#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/core/test_instances.h"

namespace abivm {
namespace {

using abivm::testing::InstanceShape;
using abivm::testing::RandomInstance;
using abivm::testing::RandomValidPlan;

TEST(MakeLazyPlanTest, DefersVoluntaryActions) {
  // One table, f(k) = k, C = 5, one arrival per step, T = 6. A plan that
  // flushes at every step is valid but eager; the lazy version waits until
  // the state holds 6 modifications (f = 6 > 5).
  std::vector<CostFunctionPtr> fns = {std::make_shared<LinearCost>(1.0, 0.0)};
  const ProblemInstance instance{CostModel(std::move(fns)),
                                 ArrivalSequence::Uniform({1}, 6), 5.0};
  MaintenancePlan eager(1, 6);
  for (TimeStep t = 0; t <= 6; ++t) eager.SetAction(t, {1});
  ASSERT_TRUE(ValidatePlan(instance, eager).ok());

  const MaintenancePlan lazy = MakeLazyPlan(instance, eager);
  ASSERT_TRUE(ValidatePlan(instance, lazy).ok());
  EXPECT_TRUE(IsLazy(instance, lazy));
  // First forced action at t = 5 (pre-state 6 > 5), final refresh at 6.
  EXPECT_EQ(lazy.actions().size(), 2u);
  EXPECT_EQ(lazy.ActionAt(5), (StateVec{6}));
  EXPECT_EQ(lazy.ActionAt(6), (StateVec{1}));
}

TEST(MakeLazyPlanTest, RandomizedPreservesValidityAndNeverCostsMore) {
  Rng rng(123);
  for (int trial = 0; trial < 300; ++trial) {
    const ProblemInstance instance = RandomInstance(rng);
    const MaintenancePlan plan = RandomValidPlan(instance, rng);
    ASSERT_TRUE(ValidatePlan(instance, plan).ok()) << "trial " << trial;

    const MaintenancePlan lazy = MakeLazyPlan(instance, plan);
    EXPECT_TRUE(ValidatePlan(instance, lazy).ok()) << "trial " << trial;
    EXPECT_TRUE(IsLazy(instance, lazy)) << "trial " << trial;
    EXPECT_LE(lazy.TotalCost(instance.cost_model),
              plan.TotalCost(instance.cost_model) + 1e-9)
        << "trial " << trial;
  }
}

TEST(MakeLgmPlanTest, RandomizedProducesValidLgmWithinTwiceTheCost) {
  Rng rng(456);
  for (int trial = 0; trial < 300; ++trial) {
    const ProblemInstance instance = RandomInstance(rng);
    const MaintenancePlan plan = RandomValidPlan(instance, rng);
    ASSERT_TRUE(ValidatePlan(instance, plan).ok()) << "trial " << trial;

    const MaintenancePlan lgm = MakeLgmPlan(instance, plan);
    EXPECT_TRUE(ValidatePlan(instance, lgm).ok()) << "trial " << trial;
    EXPECT_TRUE(IsLgm(instance, lgm)) << "trial " << trial;
    // Theorem 1's construction bound: f(Q) <= 2 f(P).
    EXPECT_LE(lgm.TotalCost(instance.cost_model),
              2.0 * plan.TotalCost(instance.cost_model) + 1e-9)
        << "trial " << trial;
  }
}

TEST(MakeLgmPlanTest, LinearCostsDoNotIncreasePerTableActionCounts) {
  // The key step of Theorem 2: |Q(i)| <= |P(i)| for every table i.
  Rng rng(789);
  InstanceShape shape;
  shape.linear_only = true;
  for (int trial = 0; trial < 300; ++trial) {
    const ProblemInstance instance = RandomInstance(rng, shape);
    const MaintenancePlan plan = RandomValidPlan(instance, rng);
    const MaintenancePlan lgm = MakeLgmPlan(instance, plan);
    ASSERT_TRUE(ValidatePlan(instance, lgm).ok());
    for (size_t i = 0; i < instance.n(); ++i) {
      EXPECT_LE(lgm.ActionCountForTable(i), plan.ActionCountForTable(i))
          << "trial " << trial << " table " << i;
    }
  }
}

TEST(MakeLgmPlanTest, IdempotentOnLgmInput) {
  // Applying MakeLgmPlan to an LGM plan keeps cost unchanged-or-better.
  Rng rng(321);
  for (int trial = 0; trial < 100; ++trial) {
    const ProblemInstance instance = RandomInstance(rng);
    const MaintenancePlan plan = RandomValidPlan(instance, rng);
    const MaintenancePlan lgm = MakeLgmPlan(instance, plan);
    const MaintenancePlan again = MakeLgmPlan(instance, lgm);
    EXPECT_TRUE(IsLgm(instance, again));
    EXPECT_LE(again.TotalCost(instance.cost_model),
              2.0 * lgm.TotalCost(instance.cost_model) + 1e-9);
  }
}

}  // namespace
}  // namespace abivm
