#include "core/astar.h"

#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/exhaustive.h"
#include "core/transforms.h"
#include "tests/core/test_instances.h"

namespace abivm {
namespace {

using abivm::testing::InstanceShape;
using abivm::testing::RandomInstance;
using abivm::testing::RandomValidPlan;

TEST(AStarTest, TrivialSingleTableInstance) {
  // f(k) = k, C = 5, one arrival per step, T = 11. Forced flush every time
  // the backlog reaches 6; the optimal LGM plan flushes at t = 5 and the
  // refresh at 11 handles the rest: cost 6 + 6 = 12 (every modification is
  // paid exactly once with a = 1, b = 0).
  std::vector<CostFunctionPtr> fns = {std::make_shared<LinearCost>(1.0, 0.0)};
  const ProblemInstance instance{CostModel(std::move(fns)),
                                 ArrivalSequence::Uniform({1}, 11), 5.0};
  const PlanSearchResult result = FindOptimalLgmPlan(instance);
  EXPECT_TRUE(ValidatePlan(instance, result.plan).ok());
  EXPECT_TRUE(IsLgm(instance, result.plan));
  EXPECT_DOUBLE_EQ(result.cost, 12.0);
  EXPECT_DOUBLE_EQ(result.plan.TotalCost(instance.cost_model), result.cost);
}

TEST(AStarTest, ExploitsAsymmetryLikeThePaperIntroExample) {
  // Table 0 ("R"): high setup cost, tiny per-item cost -- batching pays.
  // Table 1 ("S"): pure per-item cost -- batching pointless.
  // With C chosen tight, the optimal plan flushes S eagerly and batches R.
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.01, 10.0),  // R: c(k) ~ 10 + 0.01k
      std::make_shared<LinearCost>(1.0, 0.0)};   // S: c(k) = k
  const ProblemInstance instance{CostModel(std::move(fns)),
                                 ArrivalSequence::Uniform({1, 1}, 40), 14.0};
  const PlanSearchResult result = FindOptimalLgmPlan(instance);
  ASSERT_TRUE(ValidatePlan(instance, result.plan).ok());
  EXPECT_TRUE(IsLgm(instance, result.plan));
  // The plan must act on table 1 strictly more often than on table 0:
  // that is the asymmetric behaviour the paper advocates.
  EXPECT_GT(result.plan.ActionCountForTable(1),
            result.plan.ActionCountForTable(0));
}

TEST(AStarTest, MatchesExhaustiveLgmSearchOnRandomInstances) {
  Rng rng(1111);
  for (int trial = 0; trial < 150; ++trial) {
    const ProblemInstance instance = RandomInstance(rng);
    const PlanSearchResult astar = FindOptimalLgmPlan(instance);
    ASSERT_TRUE(ValidatePlan(instance, astar.plan).ok()) << "trial " << trial;
    ASSERT_TRUE(IsLgm(instance, astar.plan)) << "trial " << trial;

    const MaintenancePlan exhaustive = ExhaustiveLgmPlan(instance);
    ASSERT_TRUE(ValidatePlan(instance, exhaustive).ok()) << "trial " << trial;
    EXPECT_NEAR(astar.cost, exhaustive.TotalCost(instance.cost_model), 1e-9)
        << "trial " << trial;
  }
}

TEST(AStarTest, DijkstraAblationFindsSameCostWithMoreExpansions) {
  Rng rng(2222);
  uint64_t astar_total = 0;
  uint64_t dijkstra_total = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const ProblemInstance instance = RandomInstance(rng);
    const PlanSearchResult with_h = FindOptimalLgmPlan(instance);
    const PlanSearchResult without_h =
        FindOptimalLgmPlan(instance, AStarOptions{.use_heuristic = false});
    EXPECT_NEAR(with_h.cost, without_h.cost, 1e-9) << "trial " << trial;
    astar_total += with_h.nodes_expanded;
    dijkstra_total += without_h.nodes_expanded;
  }
  // The heuristic must never make the search larger in aggregate.
  EXPECT_LE(astar_total, dijkstra_total);
}

TEST(AStarTest, OptimalForLinearCostsAgainstFullOracle) {
  // Theorem 2: with linear cost functions the best LGM plan is globally
  // optimal. Compare against the all-valid-lazy-plans oracle on tiny
  // instances.
  Rng rng(3333);
  InstanceShape shape;
  shape.linear_only = true;
  shape.max_n = 2;
  shape.min_t = 2;
  shape.max_t = 6;
  shape.max_step_arrival = 2;
  shape.min_budget = 1.0;
  shape.max_budget = 8.0;
  for (int trial = 0; trial < 60; ++trial) {
    const ProblemInstance instance = RandomInstance(rng, shape);
    const PlanSearchResult astar = FindOptimalLgmPlan(instance);
    const MaintenancePlan oracle = ExhaustiveOptimalPlan(instance);
    ASSERT_TRUE(ValidatePlan(instance, oracle).ok());
    EXPECT_NEAR(astar.cost, oracle.TotalCost(instance.cost_model), 1e-9)
        << "trial " << trial;
  }
}

TEST(AStarTest, WithinTwiceOptimalForGeneralCosts) {
  // Theorem 1: OPT_LGM <= 2 OPT for any monotone subadditive costs.
  Rng rng(4444);
  InstanceShape shape;
  shape.max_n = 2;
  shape.min_t = 2;
  shape.max_t = 5;
  shape.max_step_arrival = 2;
  shape.min_budget = 1.0;
  shape.max_budget = 8.0;
  for (int trial = 0; trial < 40; ++trial) {
    const ProblemInstance instance = RandomInstance(rng, shape);
    const PlanSearchResult astar = FindOptimalLgmPlan(instance);
    const MaintenancePlan oracle = ExhaustiveOptimalPlan(instance);
    const double opt = oracle.TotalCost(instance.cost_model);
    EXPECT_GE(astar.cost, opt - 1e-9) << "trial " << trial;
    EXPECT_LE(astar.cost, 2.0 * opt + 1e-9) << "trial " << trial;
  }
}

TEST(AStarTest, PaperGapInstanceShowsNearlyTwiceOptimal) {
  // Section 3.2 tightness example with eps = 0.5 and m = 3: OPT_LGM =
  // (2 + eps) m C, OPT <= (1 + eps) m C. Our A* must land exactly on the
  // LGM cost and the oracle must beat it by the predicted ratio.
  const double eps = 0.5;
  const double c = 10.0;
  const TimeStep horizon = 5;  // T = 2m - 1, m = 3
  std::vector<CostFunctionPtr> fns = {MakePaperGapCost(eps, c)};
  const Count per_step = static_cast<Count>(2.0 / eps) + 1;  // 5
  const ProblemInstance instance{
      CostModel(std::move(fns)),
      ArrivalSequence::Uniform({per_step}, horizon), c};

  const PlanSearchResult astar = FindOptimalLgmPlan(instance);
  // LGM is forced to pay f(5) = (1 + eps/2) C at every one of the 6 steps.
  EXPECT_NEAR(astar.cost, 6.0 * (1.0 + eps / 2.0) * c, 1e-9);

  const MaintenancePlan oracle = ExhaustiveOptimalPlan(instance);
  const double opt = oracle.TotalCost(instance.cost_model);
  // The clever plan costs (1 + eps) C per two steps: 3 (f(1) + f(9)) where
  // f(9) = (1 + eps/2) C is capped -- compute the exact bound instead of
  // trusting the paper's algebra blindly.
  EXPECT_LE(opt, 3.0 * (instance.cost_model.Cost(0, 1) +
                        instance.cost_model.Cost(0, 9)) +
                     1e-9);
  EXPECT_GT(astar.cost / opt, 1.3);  // strictly worse than optimal
  EXPECT_LE(astar.cost / opt, 2.0 + 1e-9);
}

TEST(AStarTest, NeverFullInstanceHasSingleRefreshAction) {
  std::vector<CostFunctionPtr> fns = {std::make_shared<LinearCost>(0.1, 0.0)};
  const ProblemInstance instance{CostModel(std::move(fns)),
                                 ArrivalSequence::Uniform({1}, 10), 100.0};
  const PlanSearchResult result = FindOptimalLgmPlan(instance);
  EXPECT_EQ(result.plan.actions().size(), 1u);
  EXPECT_EQ(result.plan.ActionAt(10), (StateVec{11}));
  EXPECT_NEAR(result.cost, 1.1, 1e-9);
}

// Regression: nodes_generated used to be bumped on every relaxation
// attempt, so edges into already-interned nodes inflated it; it now counts
// distinct interned nodes, with relaxation attempts reported separately.
TEST(AStarTest, SearchCountersAreHonest) {
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0)};
  const ProblemInstance instance{CostModel(std::move(fns)),
                                 ArrivalSequence::Uniform({1, 1}, 100),
                                 15.0};
  const PlanSearchResult result = FindOptimalLgmPlan(instance);
  // This graph has many edges converging on shared states, so the two
  // counts must actually differ (equality was the bug).
  EXPECT_LT(result.nodes_generated, result.relaxations);
  // Structural invariants of the corrected accounting.
  EXPECT_GT(result.nodes_generated, 0u);
  EXPECT_LE(result.nodes_expanded, result.nodes_generated +
                                       result.reexpansions);
  EXPECT_LE(result.edges_improved, result.relaxations);
  // Every interned node except the source arrived via an improving edge.
  EXPECT_LE(result.nodes_generated, result.edges_improved + 1);
  EXPECT_GE(result.frontier_peak, 1u);
  EXPECT_GE(result.wall_ms, 0.0);
}

TEST(AStarTest, PublishesCountersIntoMetricRegistry) {
  std::vector<CostFunctionPtr> fns = {std::make_shared<LinearCost>(1.0, 0.0)};
  const ProblemInstance instance{CostModel(std::move(fns)),
                                 ArrivalSequence::Uniform({1}, 11), 5.0};
  obs::MetricRegistry registry;
  AStarOptions options;
  options.metrics = &registry;
  const PlanSearchResult result = FindOptimalLgmPlan(instance, options);
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("astar.searches"), 1u);
  EXPECT_EQ(snapshot.counters.at("astar.nodes_expanded"),
            result.nodes_expanded);
  EXPECT_EQ(snapshot.counters.at("astar.nodes_generated"),
            result.nodes_generated);
  EXPECT_EQ(snapshot.counters.at("astar.relaxations"), result.relaxations);
  EXPECT_EQ(snapshot.counters.at("astar.frontier_peak"),
            result.frontier_peak);
  EXPECT_EQ(snapshot.timers.at("astar.search_ms").count, 1u);
}

// The closed set may only fire when the heuristic is consistent; when it
// does, the search must be equivalent to the re-open variant. Closed-set
// "on" vs "off" is exact-cost-identical across a broad seeded corpus for
// BOTH heuristic modes: under the default (consistent) heuristic the
// closed set is active and must not change the answer; under the paper
// (inconsistent) heuristic it must silently deactivate, making the two
// runs literally the same search.
TEST(AStarTest, ClosedSetMatchesReopenSearchOnCorpus) {
  Rng rng(5150);
  int closed_set_active_count = 0;
  for (int trial = 0; trial < 220; ++trial) {
    const ProblemInstance instance = RandomInstance(rng);
    for (const bool paper_mode : {false, true}) {
      AStarOptions on;
      on.paper_exact_heuristic = paper_mode;
      on.use_closed_set = true;
      AStarOptions off = on;
      off.use_closed_set = false;

      const PlanSearchResult with_cs = FindOptimalLgmPlan(instance, on);
      const PlanSearchResult without_cs = FindOptimalLgmPlan(instance, off);

      // Exact equality on purpose: the closed set only skips work that a
      // correct search never needed, so the found optimum (a sum of the
      // same action costs in the same order) is bit-identical.
      EXPECT_EQ(with_cs.cost, without_cs.cost)
          << "trial " << trial << " paper_mode " << paper_mode;

      if (paper_mode) {
        // Inconsistent heuristic: the gate must refuse the closed set.
        EXPECT_FALSE(with_cs.used_closed_set) << "trial " << trial;
      } else {
        EXPECT_TRUE(with_cs.used_closed_set) << "trial " << trial;
        EXPECT_EQ(with_cs.reexpansions, 0u) << "trial " << trial;
        ++closed_set_active_count;
      }
      EXPECT_FALSE(without_cs.used_closed_set) << "trial " << trial;
    }
  }
  EXPECT_EQ(closed_set_active_count, 220);
}

// With the closed set active, a settled node is never re-queued, so every
// expansion is of a distinct node: expanded <= generated with no
// reexpansion slack needed.
TEST(AStarTest, ClosedSetNeverReexpandsOnDefaultHeuristic) {
  Rng rng(6001);
  for (int trial = 0; trial < 60; ++trial) {
    const ProblemInstance instance = RandomInstance(rng);
    const PlanSearchResult result = FindOptimalLgmPlan(instance);
    ASSERT_TRUE(result.used_closed_set) << "trial " << trial;
    EXPECT_EQ(result.reexpansions, 0u) << "trial " << trial;
    EXPECT_LE(result.nodes_expanded, result.nodes_generated)
        << "trial " << trial;
  }
}

TEST(AStarTest, ZeroArrivalsCostNothing) {
  std::vector<CostFunctionPtr> fns = {std::make_shared<LinearCost>(1.0, 1.0)};
  const ProblemInstance instance{CostModel(std::move(fns)),
                                 ArrivalSequence::Uniform({0}, 10), 5.0};
  const PlanSearchResult result = FindOptimalLgmPlan(instance);
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
}

}  // namespace
}  // namespace abivm
