// PlannerWorkspace reuse: searches on a warm workspace must be
// bit-identical to fresh-workspace searches over the whole randomized
// corpus -- the workspace pools capacity only, never logical state.

#include "core/astar_workspace.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/astar.h"
#include "tests/core/test_instances.h"

namespace abivm {
namespace {

using abivm::testing::RandomInstance;

void ExpectBitIdentical(const PlanSearchResult& fresh,
                        const PlanSearchResult& reused) {
  // Exact double equality on purpose: reuse must not perturb one bit of
  // the search (same interned node ids, same relaxation order, same
  // floating-point accumulation order).
  EXPECT_EQ(fresh.cost, reused.cost);
  EXPECT_EQ(fresh.plan.actions(), reused.plan.actions());
  EXPECT_EQ(fresh.nodes_expanded, reused.nodes_expanded);
  EXPECT_EQ(fresh.nodes_generated, reused.nodes_generated);
  EXPECT_EQ(fresh.relaxations, reused.relaxations);
  EXPECT_EQ(fresh.edges_improved, reused.edges_improved);
  EXPECT_EQ(fresh.reexpansions, reused.reexpansions);
  EXPECT_EQ(fresh.heuristic_evals, reused.heuristic_evals);
  EXPECT_EQ(fresh.frontier_peak, reused.frontier_peak);
  EXPECT_EQ(fresh.used_closed_set, reused.used_closed_set);
}

TEST(PlannerWorkspaceTest, CorpusFreshVsReusedBitIdentical) {
  // One workspace carried across the whole randomized corpus: by the
  // time an instance runs warm, the arenas hold leftovers from dozens of
  // differently-shaped searches -- the strongest aliasing test we can
  // run. Every result must match a scratch-workspace search exactly.
  Rng rng(2026);
  PlannerWorkspace warm;
  for (int trial = 0; trial < 120; ++trial) {
    SCOPED_TRACE(trial);
    const ProblemInstance instance = RandomInstance(rng);
    const PlanSearchResult fresh = FindOptimalLgmPlan(instance);
    const PlanSearchResult reused = FindOptimalLgmPlan(instance, {}, warm);
    ExpectBitIdentical(fresh, reused);
  }
  EXPECT_EQ(warm.searches(), 120u);
  EXPECT_EQ(warm.reuses(), 119u);
}

TEST(PlannerWorkspaceTest, DijkstraAndClosedSetVariantsAlsoBitIdentical) {
  // Reuse must hold for every search configuration, not just the default
  // (the ablation benches re-run the same instances under h = 0 and with
  // the closed set disabled).
  Rng rng(31);
  PlannerWorkspace warm;
  for (int trial = 0; trial < 30; ++trial) {
    SCOPED_TRACE(trial);
    const ProblemInstance instance = RandomInstance(rng);
    for (const AStarOptions options :
         {AStarOptions{.use_heuristic = false},
          AStarOptions{.use_closed_set = false}}) {
      const PlanSearchResult fresh = FindOptimalLgmPlan(instance, options);
      const PlanSearchResult reused =
          FindOptimalLgmPlan(instance, options, warm);
      ExpectBitIdentical(fresh, reused);
    }
  }
}

TEST(PlannerWorkspaceTest, WarmRepeatsStopGrowing) {
  // Repeating the same instance on one workspace: the first search grows
  // every buffer; repeats must find all capacity in place. grow_events is
  // the deterministic "no allocations on the warm path" signal the
  // replanning bench tier guards.
  Rng rng(7);
  const ProblemInstance instance = RandomInstance(rng);
  PlannerWorkspace ws;
  (void)FindOptimalLgmPlan(instance, {}, ws);
  EXPECT_EQ(ws.searches(), 1u);
  EXPECT_EQ(ws.grow_events(), 1u);
  EXPECT_GT(ws.arena_bytes_peak(), 0u);

  const size_t peak_after_first = ws.arena_bytes_peak();
  for (int rep = 0; rep < 5; ++rep) {
    (void)FindOptimalLgmPlan(instance, {}, ws);
  }
  EXPECT_EQ(ws.searches(), 6u);
  EXPECT_EQ(ws.reuses(), 5u);
  EXPECT_EQ(ws.grow_events(), 1u);  // nothing grew after the first search
  EXPECT_EQ(ws.arena_bytes_peak(), peak_after_first);
}

TEST(PlannerWorkspaceTest, HeterogeneousShapesReuseSafely) {
  // Shrinking then growing the instance shape exercises both directions
  // of capacity reuse (stale arena tails, oversized intern table).
  std::vector<CostFunctionPtr> small_fns = {
      std::make_shared<LinearCost>(0.3, 0.5)};
  std::vector<CostFunctionPtr> big_fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0),
      std::make_shared<LinearCost>(0.4, 1.0)};
  const ProblemInstance small{CostModel(std::move(small_fns)),
                              ArrivalSequence::Uniform({2}, 6), 4.0};
  const ProblemInstance big{CostModel(std::move(big_fns)),
                            ArrivalSequence::Uniform({1, 1, 2}, 40), 18.0};

  PlannerWorkspace ws;
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE(round);
    ExpectBitIdentical(FindOptimalLgmPlan(big),
                       FindOptimalLgmPlan(big, {}, ws));
    ExpectBitIdentical(FindOptimalLgmPlan(small),
                       FindOptimalLgmPlan(small, {}, ws));
  }
  EXPECT_EQ(ws.searches(), 6u);
}

TEST(PlannerWorkspaceTest, ReuseCountersExportThroughMetrics) {
  Rng rng(99);
  const ProblemInstance instance = RandomInstance(rng);
  PlannerWorkspace ws;

  obs::MetricRegistry cold;
  (void)FindOptimalLgmPlan(instance, {.metrics = &cold}, ws);
  // The first search is no reuse; the counter must not appear at all
  // (sweep bit-identity across thread counts depends on the exact key
  // set, not just values).
  EXPECT_EQ(cold.Snapshot().counters.count("astar.workspace_reuses"), 0u);
  EXPECT_EQ(cold.Snapshot().counters.at("astar.arena_bytes_peak"),
            ws.arena_bytes_peak());

  obs::MetricRegistry warm;
  (void)FindOptimalLgmPlan(instance, {.metrics = &warm}, ws);
  (void)FindOptimalLgmPlan(instance, {.metrics = &warm}, ws);
  EXPECT_EQ(warm.Snapshot().counters.at("astar.workspace_reuses"), 2u);
  EXPECT_EQ(warm.Snapshot().counters.at("astar.arena_bytes_peak"),
            ws.arena_bytes_peak());
}

TEST(PlannerWorkspaceTest, ScratchOverloadMatchesWorkspaceOverload) {
  // The 2-arg convenience overload is defined as "3-arg with a scratch
  // workspace"; pin that equivalence directly.
  Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    SCOPED_TRACE(trial);
    const ProblemInstance instance = RandomInstance(rng);
    PlannerWorkspace scratch;
    ExpectBitIdentical(FindOptimalLgmPlan(instance),
                       FindOptimalLgmPlan(instance, {}, scratch));
  }
}

}  // namespace
}  // namespace abivm
