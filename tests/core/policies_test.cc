// Tests for NAIVE, PERIODIC, ONLINE, PrecomputedPlanPolicy and ADAPT,
// driven through the simulator.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/astar.h"
#include "core/naive.h"
#include "core/online.h"
#include "core/plan_policies.h"
#include "sim/simulator.h"
#include "tests/core/test_instances.h"

namespace abivm {
namespace {

using abivm::testing::InstanceShape;
using abivm::testing::RandomInstance;

ProblemInstance SimpleInstance(double budget = 5.0, TimeStep horizon = 9) {
  std::vector<CostFunctionPtr> fns = {std::make_shared<LinearCost>(1.0, 0.0),
                                      std::make_shared<LinearCost>(1.0, 0.0)};
  return ProblemInstance{CostModel(std::move(fns)),
                         ArrivalSequence::Uniform({1, 1}, horizon), budget};
}

TEST(NaivePolicyTest, FlushesEverythingWhenFull) {
  const ProblemInstance instance = SimpleInstance();
  NaivePolicy naive;
  const Trace trace = Simulate(instance, naive, {.strict = true});
  EXPECT_EQ(trace.violations, 0u);
  // Pre-state grows to (3,3) at t = 2: cost 6 > 5, flush all; repeats
  // every 3 steps; final refresh at t = 9 with (1,1).
  const MaintenancePlan plan = trace.AsPlan(2, 9);
  ASSERT_TRUE(ValidatePlan(instance, plan).ok());
  EXPECT_EQ(plan.ActionAt(2), (StateVec{3, 3}));
  EXPECT_EQ(plan.ActionAt(5), (StateVec{3, 3}));
  EXPECT_EQ(plan.ActionAt(8), (StateVec{3, 3}));
  EXPECT_EQ(plan.ActionAt(9), (StateVec{1, 1}));
  EXPECT_DOUBLE_EQ(trace.total_cost, 20.0);
}

TEST(NaivePolicyTest, AlwaysValidOnRandomInstances) {
  Rng rng(99);
  NaivePolicy naive;
  for (int trial = 0; trial < 100; ++trial) {
    const ProblemInstance instance = RandomInstance(rng);
    const Trace trace = Simulate(instance, naive);
    EXPECT_EQ(trace.violations, 0u) << "trial " << trial;
    EXPECT_TRUE(
        ValidatePlan(instance,
                     trace.AsPlan(instance.n(), instance.horizon()))
            .ok())
        << "trial " << trial;
  }
}

TEST(PeriodicPolicyTest, FlushesOnScheduleAndStaysValid) {
  const ProblemInstance instance = SimpleInstance(/*budget=*/100.0);
  PeriodicPolicy periodic(4);
  const Trace trace = Simulate(instance, periodic, {.strict = true});
  const MaintenancePlan plan = trace.AsPlan(2, 9);
  ASSERT_TRUE(ValidatePlan(instance, plan).ok());
  EXPECT_EQ(plan.ActionAt(3), (StateVec{4, 4}));
  EXPECT_EQ(plan.ActionAt(7), (StateVec{4, 4}));
  EXPECT_EQ(plan.ActionAt(9), (StateVec{2, 2}));
}

TEST(OnlinePolicyTest, ProducesValidLgmBehaviourOnRandomInstances) {
  Rng rng(555);
  OnlinePolicy online;
  for (int trial = 0; trial < 100; ++trial) {
    const ProblemInstance instance = RandomInstance(rng);
    const Trace trace = Simulate(instance, online);
    EXPECT_EQ(trace.violations, 0u) << "trial " << trial;
    const MaintenancePlan plan =
        trace.AsPlan(instance.n(), instance.horizon());
    EXPECT_TRUE(ValidatePlan(instance, plan).ok()) << "trial " << trial;
    // ONLINE acts only at full states with greedy+minimal actions, so the
    // realized plan must be LGM.
    EXPECT_TRUE(IsLgm(instance, plan)) << "trial " << trial;
  }
}

TEST(OnlinePolicyTest, TimeToFullTracksUniformRate) {
  const ProblemInstance instance = SimpleInstance(/*budget=*/10.0);
  OnlinePolicy online;
  online.Reset(instance.cost_model, instance.budget);
  // Feed a few uniform steps so the EWMA converges to (1,1).
  StateVec state = ZeroVec(2);
  for (TimeStep t = 0; t < 3; ++t) {
    state = AddVec(state, {1, 1});
    (void)online.Act(t, state, {1, 1});
  }
  // From an empty state at rate (1,1), cost 2*tau > 10 first at tau = 6.
  EXPECT_EQ(online.TimeToFull(ZeroVec(2)), 6);
  // From state (4,4) (cost 8), one more step reaches 10 (not > 10), two
  // reach 12: tau = 2.
  EXPECT_EQ(online.TimeToFull({4, 4}), 2);
}

// Regression: the projection used floor(tau * rate), which for fractional
// EWMA rates under-projects growth by up to a whole arrival per table and
// inflated TimeToFull (here: floor predicts 4 steps, the rounded
// expectation 2), biasing H(q) toward cheap actions.
TEST(OnlinePolicyTest, TimeToFullIsUnbiasedForFractionalRates) {
  std::vector<CostFunctionPtr> fns = {std::make_shared<LinearCost>(1.0, 0.0)};
  const CostModel model(std::move(fns));
  OnlineOptions options;
  options.rate_ewma_alpha = 0.5;
  OnlinePolicy online(options);
  online.Reset(model, /*budget=*/0.5);
  // Rate decays 1.0 -> 0.5 -> 0.25 through two zero-arrival steps.
  (void)online.Act(0, {1}, {1});
  (void)online.Act(1, {0}, {0});
  (void)online.Act(2, {0}, {0});
  ASSERT_DOUBLE_EQ(online.estimated_rates()[0], 0.25);
  // One arrival makes the state full (cost 1 > 0.5). Expected arrivals
  // 0.25 * tau round to 1 first at tau = 2; flooring would need tau = 4.
  EXPECT_EQ(online.TimeToFull(ZeroVec(1)), 2);
}

TEST(OnlinePolicyTest, ZeroRatePredictionSaturates) {
  const ProblemInstance instance = SimpleInstance();
  OnlineOptions options;
  options.max_time_to_full = 1000;
  OnlinePolicy online(options);
  online.Reset(instance.cost_model, instance.budget);
  (void)online.Act(0, {0, 0}, {0, 0});
  EXPECT_EQ(online.TimeToFull(ZeroVec(2)), 1000);
}

TEST(OnlinePolicyTest, PrefersFlushingTheCheapLinearTable) {
  // Asymmetric setup mirroring the paper's example: table 0 has a large
  // setup cost (batch!), table 1 is pure per-item (flush eagerly).
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.01, 10.0),
      std::make_shared<LinearCost>(1.0, 0.0)};
  const ProblemInstance instance{CostModel(std::move(fns)),
                                 ArrivalSequence::Uniform({1, 1}, 60), 14.0};
  OnlinePolicy online;
  const Trace trace = Simulate(instance, online, {.strict = true});
  const MaintenancePlan plan = trace.AsPlan(2, 60);
  EXPECT_GT(plan.ActionCountForTable(1), plan.ActionCountForTable(0));
}

TEST(PolicyLowerBoundTest, NoLgmPolicyBeatsTheOptimalLgmPlan) {
  // NAIVE and ONLINE both realize LGM plans, so their cost can never be
  // below OPT_LGM; randomized sanity across instance shapes.
  Rng rng(31415);
  for (int trial = 0; trial < 60; ++trial) {
    const ProblemInstance instance = RandomInstance(rng);
    const PlanSearchResult optimal = FindOptimalLgmPlan(instance);

    NaivePolicy naive;
    const double naive_cost =
        Simulate(instance, naive, {.record_steps = false}).total_cost;
    OnlinePolicy online;
    const double online_cost =
        Simulate(instance, online, {.record_steps = false}).total_cost;

    EXPECT_GE(naive_cost, optimal.cost - 1e-9) << "trial " << trial;
    EXPECT_GE(online_cost, optimal.cost - 1e-9) << "trial " << trial;
  }
}

TEST(PolicyLowerBoundTest, OnlineNeverLosesToNaiveOnPaperShapedCosts) {
  // Not a theorem in general, but must hold under the paper's published
  // Figure-1 cost shapes across many arrival seeds (the headline claim).
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    std::vector<StateVec> steps;
    for (TimeStep t = 0; t <= 700; ++t) {
      steps.push_back({static_cast<Count>(rng.UniformInt(0, 2)),
                       static_cast<Count>(rng.UniformInt(0, 2))});
    }
    std::vector<CostFunctionPtr> fns = {MakePaperFig1LinearSideCost(),
                                        MakePaperFig1ScanSideCost()};
    const ProblemInstance instance{CostModel(std::move(fns)),
                                   ArrivalSequence(std::move(steps)),
                                   kPaperFig1BudgetMs};
    NaivePolicy naive;
    OnlinePolicy online;
    const double naive_cost =
        Simulate(instance, naive, {.record_steps = false}).total_cost;
    const double online_cost =
        Simulate(instance, online, {.record_steps = false}).total_cost;
    EXPECT_LE(online_cost, naive_cost + 1e-9) << "seed " << seed;
  }
}

TEST(PrecomputedPlanPolicyTest, ReplaysOptimalPlanExactly) {
  const ProblemInstance instance = SimpleInstance();
  const PlanSearchResult optimal = FindOptimalLgmPlan(instance);
  PrecomputedPlanPolicy policy(optimal.plan, "OPT_LGM");
  const Trace trace = Simulate(instance, policy, {.strict = true});
  EXPECT_NEAR(trace.total_cost, optimal.cost, 1e-9);
  EXPECT_EQ(policy.deviations(), 0u);
}

TEST(PrecomputedPlanPolicyTest, FallsBackWhenArrivalsDeviate) {
  // Plan computed for a light stream, executed against a heavy one.
  const ProblemInstance light = SimpleInstance();
  const PlanSearchResult optimal = FindOptimalLgmPlan(light);

  std::vector<CostFunctionPtr> fns = {std::make_shared<LinearCost>(1.0, 0.0),
                                      std::make_shared<LinearCost>(1.0, 0.0)};
  const ProblemInstance heavy{CostModel(std::move(fns)),
                              ArrivalSequence::Uniform({3, 3}, 9), 5.0};
  PrecomputedPlanPolicy policy(optimal.plan, "STALE_PLAN");
  const Trace trace = Simulate(heavy, policy);
  EXPECT_EQ(trace.violations, 0u);  // fallback kept the run valid
  EXPECT_GT(policy.deviations(), 0u);
  EXPECT_TRUE(
      ValidatePlan(heavy, trace.AsPlan(2, 9)).ok());
}

TEST(AdaptPolicyTest, EqualsPlanWhenTEqualsT0) {
  const ProblemInstance instance = SimpleInstance(5.0, 9);
  const PlanSearchResult optimal = FindOptimalLgmPlan(instance);
  AdaptPolicy adapt(optimal.plan);
  const Trace trace = Simulate(instance, adapt, {.strict = true});
  EXPECT_NEAR(trace.total_cost, optimal.cost, 1e-9);
}

TEST(AdaptPolicyTest, Theorem4BoundWhenTLessThanT0) {
  // Linear costs; uniform arrivals; T0 = 29, refresh at every T < T0:
  // cost(ADAPT) <= OPT_T + sum_i b_i.
  std::vector<CostFunctionPtr> fns = {std::make_shared<LinearCost>(0.5, 2.0),
                                      std::make_shared<LinearCost>(1.0, 1.0)};
  CostModel model(fns);
  const double budget = 8.0;
  const double sum_b = 3.0;

  const ProblemInstance full{model, ArrivalSequence::Uniform({1, 1}, 29),
                             budget};
  const PlanSearchResult q_t0 = FindOptimalLgmPlan(full);

  for (TimeStep t = 3; t < 29; t += 4) {
    const ProblemInstance shorter{
        model, full.arrivals.Truncate(t), budget};
    AdaptPolicy adapt(q_t0.plan);
    const Trace trace = Simulate(shorter, adapt, {.strict = true});
    const PlanSearchResult opt_t = FindOptimalLgmPlan(shorter);
    EXPECT_LE(trace.total_cost, opt_t.cost + sum_b + 1e-9) << "T=" << t;
    EXPECT_GE(trace.total_cost, opt_t.cost - 1e-9) << "T=" << t;
  }
}

TEST(AdaptPolicyTest, Theorem4BoundWhenTGreaterThanT0) {
  // cost(ADAPT) <= OPT_T + ceil(T/T0) * sum_i b_i with periodic arrivals.
  std::vector<CostFunctionPtr> fns = {std::make_shared<LinearCost>(0.5, 2.0),
                                      std::make_shared<LinearCost>(1.0, 1.0)};
  CostModel model(fns);
  const double budget = 8.0;
  const double sum_b = 3.0;
  const TimeStep t0 = 9;

  const ProblemInstance base{model, ArrivalSequence::Uniform({1, 1}, t0),
                             budget};
  const PlanSearchResult q_t0 = FindOptimalLgmPlan(base);

  for (TimeStep t : {19, 29, 37, 53}) {
    const ProblemInstance longer{
        model, base.arrivals.RepeatTo(t), budget};
    AdaptPolicy adapt(q_t0.plan);
    const Trace trace = Simulate(longer, adapt, {.strict = true});
    const PlanSearchResult opt_t = FindOptimalLgmPlan(longer);
    const double slack =
        std::ceil(static_cast<double>(t) / static_cast<double>(t0)) * sum_b;
    EXPECT_LE(trace.total_cost, opt_t.cost + slack + 1e-9) << "T=" << t;
    EXPECT_GE(trace.total_cost, opt_t.cost - 1e-9) << "T=" << t;
  }
}

// The durability layer's entitlement to skip decision replay (and trim
// the WAL) rests on this: a SaveState blob restored into a freshly
// Reset policy reproduces every subsequent decision bit for bit.
TEST(OnlinePolicyTest, StateSnapshotRoundTripsMidRun) {
  Rng rng(777);
  for (int trial = 0; trial < 25; ++trial) {
    const ProblemInstance instance = RandomInstance(rng);
    OnlinePolicy original;
    ASSERT_TRUE(original.SupportsStateSnapshot());
    original.Reset(instance.cost_model, instance.budget);
    StateVec state = ZeroVec(instance.n());
    const TimeStep split = instance.horizon() / 2;
    for (TimeStep t = 0; t < split; ++t) {
      state = AddVec(state, instance.arrivals.At(t));
      state = SubVec(state, original.Act(t, state, instance.arrivals.At(t)));
    }

    OnlinePolicy restored;
    restored.Reset(instance.cost_model, instance.budget);
    ASSERT_TRUE(restored.RestoreState(original.SaveState()).ok())
        << "trial " << trial;

    for (TimeStep t = split; t <= instance.horizon(); ++t) {
      state = AddVec(state, instance.arrivals.At(t));
      const StateVec a = original.Act(t, state, instance.arrivals.At(t));
      const StateVec b = restored.Act(t, state, instance.arrivals.At(t));
      ASSERT_EQ(a, b) << "trial " << trial << " step " << t;
      state = SubVec(state, a);
    }
  }
}

TEST(OnlinePolicyTest, SaveStateIsEmptyBeforeResetAndRestoreValidates) {
  OnlinePolicy policy;
  // Pre-Reset there is no decision state: consumers must treat the
  // empty blob as "no snapshot", never embed-and-restore it.
  EXPECT_TRUE(policy.SaveState().empty());

  const ProblemInstance two = SimpleInstance();
  policy.Reset(two.cost_model, two.budget);
  EXPECT_FALSE(policy.RestoreState("").ok());
  EXPECT_FALSE(policy.RestoreState("garbage blob").ok());

  // A blob saved against a different table count must be rejected.
  std::vector<CostFunctionPtr> fns = {std::make_shared<LinearCost>(1.0, 1.0)};
  const CostModel one_table(std::move(fns));
  OnlinePolicy other;
  other.Reset(one_table, 5.0);
  (void)other.Act(0, {1}, {1});
  const Status mismatch = policy.RestoreState(other.SaveState());
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace abivm
