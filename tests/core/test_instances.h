// Shared randomized-instance and random-valid-plan generators for the core
// scheduler tests. Everything is seeded and deterministic.

#ifndef ABIVM_TESTS_CORE_TEST_INSTANCES_H_
#define ABIVM_TESTS_CORE_TEST_INSTANCES_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "core/plan.h"

namespace abivm::testing {

struct InstanceShape {
  size_t min_n = 1, max_n = 4;
  TimeStep min_t = 3, max_t = 12;
  Count max_step_arrival = 3;
  double min_budget = 2.0, max_budget = 25.0;
  bool linear_only = false;
};

/// Random cost function: linear, capped, step, or concave (or linear-only
/// when the shape demands it, for Theorem-2 style tests).
inline CostFunctionPtr RandomCostFunction(Rng& rng, bool linear_only) {
  const double a = rng.UniformDouble(0.1, 2.0);
  const double b = rng.UniformDouble(0.0, 5.0);
  const int kind = linear_only ? 0 : static_cast<int>(rng.UniformInt(0, 3));
  switch (kind) {
    case 0:
      return std::make_shared<LinearCost>(a, b);
    case 1:
      return std::make_shared<AffineCappedCost>(
          a, b, static_cast<uint64_t>(rng.UniformInt(2, 30)));
    case 2:
      return std::make_shared<StepCost>(
          static_cast<uint64_t>(rng.UniformInt(1, 6)),
          rng.UniformDouble(0.5, 4.0));
    default:
      return std::make_shared<ConcaveCost>(a, b);
  }
}

/// Random problem instance within the given shape.
inline ProblemInstance RandomInstance(Rng& rng,
                                      const InstanceShape& shape = {}) {
  const size_t n = static_cast<size_t>(
      rng.UniformInt(static_cast<int64_t>(shape.min_n),
                     static_cast<int64_t>(shape.max_n)));
  const TimeStep horizon = rng.UniformInt(shape.min_t, shape.max_t);

  std::vector<CostFunctionPtr> fns;
  fns.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    fns.push_back(RandomCostFunction(rng, shape.linear_only));
  }

  std::vector<StateVec> steps;
  steps.reserve(static_cast<size_t>(horizon) + 1);
  for (TimeStep t = 0; t <= horizon; ++t) {
    StateVec d(n);
    for (size_t i = 0; i < n; ++i) {
      d[i] = static_cast<Count>(rng.UniformInt(
          0, static_cast<int64_t>(shape.max_step_arrival)));
    }
    steps.push_back(std::move(d));
  }

  return ProblemInstance{
      CostModel(std::move(fns)),
      ArrivalSequence(std::move(steps)),
      rng.UniformDouble(shape.min_budget, shape.max_budget)};
}

/// A random *valid* plan: acts whenever forced (and sometimes when not),
/// choosing arbitrary sub-vector amounts -- typically neither lazy nor
/// greedy nor minimal, which is exactly what the transform tests need.
inline MaintenancePlan RandomValidPlan(const ProblemInstance& instance,
                                       Rng& rng) {
  const size_t n = instance.n();
  const TimeStep horizon = instance.horizon();
  MaintenancePlan plan(n, horizon);

  StateVec state = ZeroVec(n);
  for (TimeStep t = 0; t <= horizon; ++t) {
    state = AddVec(state, instance.arrivals.At(t));
    StateVec action = ZeroVec(n);
    if (t == horizon) {
      action = state;
    } else {
      const bool forced =
          instance.cost_model.IsFull(state, instance.budget);
      const bool voluntary = rng.Bernoulli(0.3);
      if (forced || voluntary) {
        // Start from a random sub-vector...
        for (size_t i = 0; i < n; ++i) {
          action[i] = static_cast<Count>(
              rng.UniformInt(0, static_cast<int64_t>(state[i])));
        }
        // ...and, if the leftover is still over budget, raise components
        // to full flushes in random order until it fits.
        std::vector<size_t> order(n);
        for (size_t i = 0; i < n; ++i) order[i] = i;
        for (size_t i = n; i > 1; --i) {
          std::swap(order[i - 1], order[static_cast<size_t>(rng.UniformInt(
                                      0, static_cast<int64_t>(i) - 1))]);
        }
        for (size_t i : order) {
          if (!instance.cost_model.IsFull(SubVec(state, action),
                                          instance.budget)) {
            break;
          }
          action[i] = state[i];
        }
      }
    }
    if (!IsZeroVec(action)) {
      plan.SetAction(t, action);
      state = SubVec(state, action);
    }
  }
  return plan;
}

}  // namespace abivm::testing

#endif  // ABIVM_TESTS_CORE_TEST_INSTANCES_H_
