// Odds and ends: string renderings, vector helpers, determinism, and
// defensive-execution corners not covered elsewhere.

#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/astar.h"
#include "core/online.h"
#include "core/plan_policies.h"
#include "core/types.h"
#include "sim/simulator.h"
#include "tests/core/test_instances.h"
#include "tpc/arrivals_gen.h"

namespace abivm {
namespace {

TEST(TypesTest, VecToString) {
  EXPECT_EQ(VecToString({3, 0, 12}), "(3, 0, 12)");
  EXPECT_EQ(VecToString({}), "()");
}

TEST(TypesTest, VectorHelpers) {
  EXPECT_EQ(AddVec({1, 2}, {3, 4}), (StateVec{4, 6}));
  EXPECT_EQ(SubVec({5, 5}, {2, 0}), (StateVec{3, 5}));
  EXPECT_TRUE(FitsWithin({1, 2}, {1, 3}));
  EXPECT_FALSE(FitsWithin({2, 2}, {1, 3}));
  EXPECT_TRUE(IsZeroVec({0, 0, 0}));
  EXPECT_FALSE(IsZeroVec({0, 1}));
  EXPECT_EQ(ZeroVec(3), (StateVec{0, 0, 0}));
}

TEST(TypesTest, InPlaceVectorHelpers) {
  StateVec out{9, 9, 9};  // wrong size: must be resized, not trusted
  AddVecInto({1, 2}, {3, 4}, out);
  EXPECT_EQ(out, (StateVec{4, 6}));
  SubVecInto({5, 5}, {2, 0}, out);
  EXPECT_EQ(out, (StateVec{3, 5}));
  // Aliasing with an input is allowed: out = out - b.
  SubVecInto(out, {1, 1}, out);
  EXPECT_EQ(out, (StateVec{2, 4}));
  // Same-width reuse keeps the buffer's storage.
  const Count* data = out.data();
  AddVecInto({7, 7}, {0, 1}, out);
  EXPECT_EQ(out, (StateVec{7, 8}));
  EXPECT_EQ(out.data(), data);
}

TEST(MaintenancePlanTest, ToStringListsActions) {
  MaintenancePlan plan(2, 10);
  plan.SetAction(3, {2, 0});
  plan.SetAction(7, {0, 4});
  const std::string text = plan.ToString();
  EXPECT_NE(text.find("3:(2, 0)"), std::string::npos);
  EXPECT_NE(text.find("7:(0, 4)"), std::string::npos);
  EXPECT_NE(text.find("T=10"), std::string::npos);
}

TEST(DeterminismTest, PlannersAndPoliciesAreReproducible) {
  Rng rng(2718);
  for (int trial = 0; trial < 20; ++trial) {
    const ProblemInstance instance =
        abivm::testing::RandomInstance(rng);
    const PlanSearchResult a = FindOptimalLgmPlan(instance);
    const PlanSearchResult b = FindOptimalLgmPlan(instance);
    EXPECT_EQ(a.plan.ToString(), b.plan.ToString());
    EXPECT_EQ(a.nodes_expanded, b.nodes_expanded);

    OnlinePolicy p1, p2;
    const Trace t1 = Simulate(instance, p1, {.record_steps = false});
    const Trace t2 = Simulate(instance, p2, {.record_steps = false});
    EXPECT_DOUBLE_EQ(t1.total_cost, t2.total_cost);
  }
}

TEST(AdaptPolicyTest, CountsDeviationsOnMismatchedStream) {
  // Plan computed for 1+1 uniform arrivals, executed against a heavier
  // Poisson stream: the policy must stay valid and report deviations.
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.5, 1.0),
      std::make_shared<LinearCost>(0.5, 1.0)};
  CostModel model(fns);
  const ProblemInstance planned{
      model, ArrivalSequence::Uniform({1, 1}, 99), 8.0};
  const PlanSearchResult plan = FindOptimalLgmPlan(planned);

  Rng rng(5);
  const ProblemInstance actual{
      model, MakePoissonArrivals({3.0, 3.0}, 99, rng), 8.0};
  AdaptPolicy adapt(plan.plan);
  const Trace trace = Simulate(actual, adapt);
  EXPECT_EQ(trace.violations, 0u);
  EXPECT_GT(adapt.deviations(), 0u);
  EXPECT_TRUE(
      ValidatePlan(actual, trace.AsPlan(2, 99)).ok());
}

TEST(OnlinePolicyTest, ActBeforeResetDies) {
  OnlinePolicy policy;
  EXPECT_DEATH((void)policy.Act(0, {1}, {1}), "not Reset");
}

TEST(SimulatorTest, StrictModeDiesOnViolation) {
  std::vector<CostFunctionPtr> fns = {std::make_shared<LinearCost>(1.0, 0.0)};
  const ProblemInstance instance{CostModel(std::move(fns)),
                                 ArrivalSequence::Uniform({2}, 5), 3.0};
  class Lazy final : public Policy {
   public:
    void Reset(const CostModel&, double) override {}
    StateVec Act(TimeStep, const StateVec& pre, const StateVec&) override {
      return ZeroVec(pre.size());
    }
    std::string name() const override { return "LAZY"; }
  } lazy;
  EXPECT_DEATH((void)Simulate(instance, lazy, {.strict = true}),
               "violated the response-time constraint");
}

}  // namespace
}  // namespace abivm
