#include "core/plan.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/types.h"

namespace abivm {
namespace {

// Two tables, both linear with cost k + 1 (a = 1, b = 1); budget 5.
ProblemInstance MakeInstance() {
  std::vector<CostFunctionPtr> fns = {std::make_shared<LinearCost>(1.0, 1.0),
                                      std::make_shared<LinearCost>(1.0, 1.0)};
  // One modification per table per step, T = 4.
  return ProblemInstance{CostModel(std::move(fns)),
                         ArrivalSequence::Uniform({1, 1}, 4), 5.0};
}

TEST(MaintenancePlanTest, SparseActionStorage) {
  MaintenancePlan plan(2, 10);
  EXPECT_EQ(plan.ActionAt(3), ZeroVec(2));
  plan.SetAction(3, {2, 0});
  plan.SetAction(7, {0, 4});
  EXPECT_EQ(plan.ActionAt(3), (StateVec{2, 0}));
  EXPECT_EQ(plan.actions().size(), 2u);
  plan.SetAction(3, {0, 0});  // zero vector removes the entry
  EXPECT_EQ(plan.actions().size(), 1u);
  EXPECT_EQ(plan.ActionAt(3), ZeroVec(2));
}

TEST(MaintenancePlanTest, ActionCountForTable) {
  MaintenancePlan plan(2, 10);
  plan.SetAction(1, {2, 2});
  plan.SetAction(4, {1, 0});
  plan.SetAction(9, {0, 3});
  EXPECT_EQ(plan.ActionCountForTable(0), 2u);
  EXPECT_EQ(plan.ActionCountForTable(1), 2u);
}

TEST(MaintenancePlanTest, TotalCost) {
  const ProblemInstance instance = MakeInstance();
  MaintenancePlan plan(2, 4);
  plan.SetAction(2, {3, 0});  // f = 3 + 1
  plan.SetAction(4, {2, 5});  // f = (2+1) + (5+1)
  EXPECT_DOUBLE_EQ(plan.TotalCost(instance.cost_model), 13.0);
}

TEST(ValidatePlanTest, AcceptsAValidPlan) {
  const ProblemInstance instance = MakeInstance();
  // Pre-states grow by (1,1) per step: f(s_t) = (t+2) + (t+2).
  // Full when 2t + 4 > 5, i.e. from t = 1. Flush everything at t = 1 and 3,
  // then the final refresh at 4.
  MaintenancePlan plan(2, 4);
  plan.SetAction(1, {2, 2});
  plan.SetAction(3, {2, 2});
  plan.SetAction(4, {1, 1});
  EXPECT_TRUE(ValidatePlan(instance, plan).ok());
}

TEST(ValidatePlanTest, RejectsOverdraw) {
  const ProblemInstance instance = MakeInstance();
  MaintenancePlan plan(2, 4);
  plan.SetAction(0, {2, 0});  // only 1 accumulated
  const Status status = ValidatePlan(instance, plan);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ValidatePlanTest, RejectsFullPostActionState) {
  const ProblemInstance instance = MakeInstance();
  MaintenancePlan plan(2, 4);
  // Never act before T: by t = 1 the state (2,2) costs 6 > 5.
  plan.SetAction(4, {5, 5});
  const Status status = ValidatePlan(instance, plan);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ValidatePlanTest, RejectsNonEmptyFinalState) {
  const ProblemInstance instance = MakeInstance();
  MaintenancePlan plan(2, 4);
  plan.SetAction(1, {2, 2});
  plan.SetAction(3, {2, 2});
  // Missing the final refresh of (1,1).
  const Status status = ValidatePlan(instance, plan);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ValidatePlanTest, RejectsDimensionMismatch) {
  const ProblemInstance instance = MakeInstance();
  MaintenancePlan plan(3, 4);
  EXPECT_FALSE(ValidatePlan(instance, plan).ok());
  MaintenancePlan wrong_horizon(2, 5);
  EXPECT_FALSE(ValidatePlan(instance, wrong_horizon).ok());
}

TEST(TrajectoryTest, PreAndPostStates) {
  const ProblemInstance instance = MakeInstance();
  MaintenancePlan plan(2, 4);
  plan.SetAction(1, {2, 2});
  plan.SetAction(3, {2, 2});
  plan.SetAction(4, {1, 1});
  const PlanTrajectory traj = ComputeTrajectory(instance.arrivals, plan);
  EXPECT_EQ(traj.pre[0], (StateVec{1, 1}));
  EXPECT_EQ(traj.post[0], (StateVec{1, 1}));
  EXPECT_EQ(traj.pre[1], (StateVec{2, 2}));
  EXPECT_EQ(traj.post[1], (StateVec{0, 0}));
  EXPECT_EQ(traj.pre[4], (StateVec{1, 1}));
  EXPECT_EQ(traj.post[4], (StateVec{0, 0}));
}

TEST(PlanPredicatesTest, LazyGreedyMinimal) {
  const ProblemInstance instance = MakeInstance();
  MaintenancePlan plan(2, 4);
  plan.SetAction(1, {2, 2});
  plan.SetAction(3, {2, 2});
  plan.SetAction(4, {1, 1});
  EXPECT_TRUE(IsLazy(instance, plan));
  EXPECT_TRUE(IsGreedy(instance, plan));
  // Flushing both tables is NOT minimal here: flushing just one leaves
  // residue cost 3 <= 5.
  EXPECT_FALSE(IsMinimal(instance, plan));
  EXPECT_FALSE(IsLgm(instance, plan));
}

TEST(PlanPredicatesTest, MinimalAsymmetricPlanIsLgm) {
  const ProblemInstance instance = MakeInstance();
  // Alternate which table gets flushed; each flush of one table leaves the
  // other's residue under budget, and dropping the flush breaks it.
  MaintenancePlan plan(2, 4);
  plan.SetAction(1, {2, 0});  // pre (2,2) full; residue (0,2) costs 3
  plan.SetAction(2, {0, 3});  // pre (1,3) full; residue (1,0) costs 2
  // t = 3: pre (2,1) costs exactly 5 -- not full, lazily skip.
  plan.SetAction(4, {3, 2});
  ASSERT_TRUE(ValidatePlan(instance, plan).ok());
  EXPECT_TRUE(IsLazy(instance, plan));
  EXPECT_TRUE(IsGreedy(instance, plan));
  EXPECT_TRUE(IsMinimal(instance, plan));
  EXPECT_TRUE(IsLgm(instance, plan));
}

TEST(PlanPredicatesTest, NonLazyDetected) {
  const ProblemInstance instance = MakeInstance();
  MaintenancePlan plan(2, 4);
  plan.SetAction(0, {1, 1});  // state (1,1) costs 4 <= 5: not forced
  plan.SetAction(2, {2, 0});
  plan.SetAction(3, {0, 3});
  plan.SetAction(4, {2, 1});
  ASSERT_TRUE(ValidatePlan(instance, plan).ok());
  EXPECT_FALSE(IsLazy(instance, plan));
}

TEST(PlanPredicatesTest, NonGreedyDetected) {
  const ProblemInstance instance = MakeInstance();
  MaintenancePlan plan(2, 4);
  plan.SetAction(1, {1, 1});  // partial: leaves 1 in each table
  plan.SetAction(2, {2, 0});
  plan.SetAction(3, {0, 3});
  plan.SetAction(4, {2, 1});
  ASSERT_TRUE(ValidatePlan(instance, plan).ok());
  EXPECT_FALSE(IsGreedy(instance, plan));
}

}  // namespace
}  // namespace abivm
