#include "core/actions.h"

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/plan.h"
#include "tests/core/test_instances.h"

namespace abivm {
namespace {

CostModel TwoLinearTables(double a0, double b0, double a1, double b1) {
  std::vector<CostFunctionPtr> fns = {std::make_shared<LinearCost>(a0, b0),
                                      std::make_shared<LinearCost>(a1, b1)};
  return CostModel(std::move(fns));
}

TEST(EnumerateMinimalGreedyActionsTest, SingleTableFlushesEverything) {
  std::vector<CostFunctionPtr> fns = {std::make_shared<LinearCost>(1.0, 0.0)};
  CostModel model(std::move(fns));
  const StateVec pre = {7};  // f = 7 > 5
  const auto actions = EnumerateMinimalGreedyActions(model, 5.0, pre);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0], (StateVec{7}));
}

TEST(EnumerateMinimalGreedyActionsTest, EitherTableSufficesGivesTwoOptions) {
  CostModel model = TwoLinearTables(1.0, 0.0, 1.0, 0.0);
  const StateVec pre = {4, 4};  // f = 8 > 5; flushing either leaves 4 <= 5
  const auto actions = EnumerateMinimalGreedyActions(model, 5.0, pre);
  ASSERT_EQ(actions.size(), 2u);
  std::set<StateVec> got(actions.begin(), actions.end());
  EXPECT_TRUE(got.count(StateVec{4, 0}));
  EXPECT_TRUE(got.count(StateVec{0, 4}));
}

TEST(EnumerateMinimalGreedyActionsTest, OnlyBigTableSuffices) {
  CostModel model = TwoLinearTables(1.0, 0.0, 1.0, 0.0);
  const StateVec pre = {10, 2};  // f = 12; flushing table1 leaves 10 > 5
  const auto actions = EnumerateMinimalGreedyActions(model, 5.0, pre);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0], (StateVec{10, 0}));
}

TEST(EnumerateMinimalGreedyActionsTest, BothTablesRequired) {
  CostModel model = TwoLinearTables(1.0, 0.0, 1.0, 0.0);
  const StateVec pre = {10, 8};  // any single flush leaves > 5
  const auto actions = EnumerateMinimalGreedyActions(model, 5.0, pre);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0], (StateVec{10, 8}));
}

TEST(EnumerateMinimalGreedyActionsTest, EmptyTablesNeverTouched) {
  CostModel model = TwoLinearTables(1.0, 0.0, 1.0, 0.0);
  const StateVec pre = {10, 0};
  const auto actions = EnumerateMinimalGreedyActions(model, 5.0, pre);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0], (StateVec{10, 0}));
}

// Every enumerated action must be greedy, valid, and minimal; and the
// enumeration must find every subset that qualifies (cross-checked with a
// direct subset filter).
TEST(EnumerateMinimalGreedyActionsTest, RandomizedAgainstDirectFilter) {
  Rng rng(20260705);
  for (int trial = 0; trial < 200; ++trial) {
    const ProblemInstance instance =
        abivm::testing::RandomInstance(rng);
    const size_t n = instance.n();
    // Build a random full state.
    StateVec pre(n);
    for (size_t i = 0; i < n; ++i) {
      pre[i] = static_cast<Count>(rng.UniformInt(0, 12));
    }
    if (!instance.cost_model.IsFull(pre, instance.budget)) continue;

    const auto actions = EnumerateMinimalGreedyActions(
        instance.cost_model, instance.budget, pre);

    // Direct filter over all subsets.
    std::set<StateVec> expected;
    const size_t subsets = size_t{1} << n;
    for (size_t mask = 1; mask < subsets; ++mask) {
      StateVec action = ZeroVec(n);
      bool touches_empty = false;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (size_t{1} << i)) {
          if (pre[i] == 0) touches_empty = true;
          action[i] = pre[i];
        }
      }
      if (touches_empty) continue;  // equivalent to a smaller mask
      if (IsZeroVec(action)) continue;
      if (instance.cost_model.TotalCost(SubVec(pre, action)) >
          instance.budget) {
        continue;
      }
      bool minimal = true;
      for (size_t i = 0; i < n && minimal; ++i) {
        if (action[i] == 0) continue;
        StateVec reduced = action;
        reduced[i] = 0;
        if (instance.cost_model.TotalCost(SubVec(pre, reduced)) <=
            instance.budget) {
          minimal = false;
        }
      }
      if (minimal) expected.insert(action);
    }
    const std::set<StateVec> got(actions.begin(), actions.end());
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

TEST(MinimizeActionTest, DropsUnneededExpensiveComponents) {
  CostModel model = TwoLinearTables(1.0, 0.0, 1.0, 0.0);
  const StateVec pre = {4, 4};
  // Flushing both is valid but not minimal; either single flush works and
  // MinimizeAction drops the more expensive flush first (table costs are
  // equal here, so it drops the lower index by tie-break).
  const StateVec minimized =
      MinimizeAction(model, 5.0, pre, /*action=*/{4, 4});
  EXPECT_EQ(minimized, (StateVec{0, 4}));
}

TEST(MinimizeActionTest, KeepsForcedComponents) {
  CostModel model = TwoLinearTables(1.0, 0.0, 1.0, 0.0);
  const StateVec pre = {10, 8};
  const StateVec minimized = MinimizeAction(model, 5.0, pre, {10, 8});
  EXPECT_EQ(minimized, (StateVec{10, 8}));
}

TEST(MinimizeActionTest, ResultIsAlwaysMinimalAndValid) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const ProblemInstance instance =
        abivm::testing::RandomInstance(rng);
    const size_t n = instance.n();
    StateVec pre(n);
    for (size_t i = 0; i < n; ++i) {
      pre[i] = static_cast<Count>(rng.UniformInt(0, 12));
    }
    // Input: flush everything (always valid).
    const StateVec minimized =
        MinimizeAction(instance.cost_model, instance.budget, pre, pre);
    // Valid.
    EXPECT_LE(instance.cost_model.TotalCost(SubVec(pre, minimized)),
              instance.budget);
    // Minimal: no non-zero component can be dropped.
    for (size_t i = 0; i < n; ++i) {
      if (minimized[i] == 0) continue;
      StateVec reduced = minimized;
      reduced[i] = 0;
      EXPECT_GT(instance.cost_model.TotalCost(SubVec(pre, reduced)),
                instance.budget)
          << "trial " << trial << " component " << i;
    }
  }
}

// Regression: validity used a raw `residue > budget` comparison while
// CostModel::IsFull is epsilon-tolerant, so a residue that mathematically
// equals the budget (but lands a few ulps above it, e.g. 0.1 + 0.2 vs
// 0.3) was rejected here yet accepted by IsFull -- the enumeration then
// skipped a minimal action and returned a strictly larger one.
TEST(EnumerateMinimalGreedyActionsTest, BoundaryResidueAgreesWithIsFull) {
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.1, 0.0),
      std::make_shared<LinearCost>(0.2, 0.0),
      std::make_shared<LinearCost>(10.0, 0.0)};
  CostModel model(std::move(fns));
  const double budget = 0.3;
  const StateVec pre = {1, 1, 1};  // f = 10.3 > 0.3: full
  // Flushing only table2 leaves 0.1 + 0.2, which is 0.30000000000000004
  // in binary -- within budget for IsFull, so it must be valid (and then
  // the unique minimal action) here too.
  ASSERT_FALSE(model.IsFull(StateVec{1, 1, 0}, budget));
  const auto actions = EnumerateMinimalGreedyActions(model, budget, pre);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0], (StateVec{0, 0, 1}));
}

// The allocation-lean Into variant must be observationally identical to
// the allocating one -- same actions, same order -- while reusing its
// output buffers across calls, and its optional action_costs output must
// be bit-identical to TotalCost of each action.
TEST(EnumerateMinimalGreedyActionsTest, IntoVariantMatchesAndReusesBuffers) {
  Rng rng(909);
  std::vector<StateVec> scratch;
  std::vector<double> costs;
  int checked = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const ProblemInstance instance = abivm::testing::RandomInstance(rng);
    const size_t n = instance.n();
    StateVec pre(n);
    for (size_t i = 0; i < n; ++i) {
      pre[i] = static_cast<Count>(rng.UniformInt(0, 12));
    }
    if (!instance.cost_model.IsFull(pre, instance.budget)) continue;
    ++checked;

    const std::vector<StateVec> allocated = EnumerateMinimalGreedyActions(
        instance.cost_model, instance.budget, pre);
    const size_t count = EnumerateMinimalGreedyActionsInto(
        instance.cost_model, instance.budget, pre, scratch, &costs);

    ASSERT_EQ(count, allocated.size()) << "trial " << trial;
    for (size_t a = 0; a < count; ++a) {
      EXPECT_EQ(scratch[a], allocated[a]) << "trial " << trial;
      // Exact double equality on purpose: the A* hot path substitutes
      // these costs for TotalCost calls, which is only sound bitwise.
      EXPECT_EQ(costs[a], instance.cost_model.TotalCost(allocated[a]))
          << "trial " << trial << " action " << a;
    }
    // The buffers only grow; entries past `count` are stale scratch.
    EXPECT_GE(scratch.size(), count);
    EXPECT_GE(costs.size(), count);
  }
  EXPECT_GT(checked, 50);  // the corpus actually exercised the comparison
}

TEST(CheapestMinimalGreedyActionTest, PrefersCheapFlush) {
  // Table 0 is expensive to flush, table 1 cheap; flushing either works.
  CostModel model = TwoLinearTables(10.0, 0.0, 1.0, 0.0);
  // pre = (1, 4): f = 10 + 4 = 14 > 10. Flushing table0 leaves 4 <= 10;
  // flushing table1 leaves 10 <= 10. Cheapest action is flushing table1
  // (cost 4) rather than table0 (cost 10).
  const StateVec action = CheapestMinimalGreedyAction(model, 10.0, {1, 4});
  EXPECT_EQ(action, (StateVec{0, 4}));
}

}  // namespace
}  // namespace abivm
