// Garbage collection of superseded row versions and consumed delta-log
// prefixes.

#include <gtest/gtest.h>

#include "ivm/maintainer.h"
#include "storage/database.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

Schema TwoColSchema() {
  return Schema({{"k", ValueType::kInt64}, {"v", ValueType::kString}});
}

TEST(DeltaLogTrimTest, PositionsSurviveTrimming) {
  DeltaLog log;
  for (int64_t i = 0; i < 10; ++i) {
    log.Append(Modification{static_cast<Version>(i + 1), ModKind::kInsert,
                            {}, {Value(i)}});
  }
  EXPECT_EQ(log.size(), 10u);
  log.TrimBefore(4);
  EXPECT_EQ(log.size(), 10u);           // positions unchanged
  EXPECT_EQ(log.first_retained(), 4u);
  EXPECT_EQ(log.At(4).new_row[0], Value(int64_t{4}));
  EXPECT_EQ(log.At(9).new_row[0], Value(int64_t{9}));
  // Trimming backwards or to the same point is a no-op.
  log.TrimBefore(2);
  EXPECT_EQ(log.first_retained(), 4u);
  log.TrimBefore(10);
  EXPECT_EQ(log.first_retained(), 10u);
  EXPECT_EQ(log.size(), 10u);
}

TEST(VacuumTest, ReclaimsOnlyInvisibleVersions) {
  Table t("t", TwoColSchema());
  const RowId a = t.Insert({Value(int64_t{1}), Value("a")}, 1);
  const RowId b = t.Insert({Value(int64_t{2}), Value("b")}, 1);
  t.Delete(a, 3);
  const RowId c = t.Update(b, {Value(int64_t{2}), Value("b2")}, 5);

  // Safe version 4: row a (deleted at 3) is reclaimable; the old b
  // version (deleted at 5) is still visible at 4 and must survive.
  EXPECT_EQ(t.VacuumBefore(4), 1u);
  EXPECT_EQ(t.vacuum_horizon(), 4u);
  EXPECT_TRUE(t.RowAt(a).row.empty());
  EXPECT_FALSE(t.RowAt(b).row.empty());

  // Snapshot 4 still sees the pre-update b.
  int rows = 0;
  t.ScanAt(4, [&](RowId, const Row& row) {
    ++rows;
    EXPECT_EQ(row[1].AsString(), "b");
  });
  EXPECT_EQ(rows, 1);

  // Vacuuming further reclaims the old b version.
  EXPECT_EQ(t.VacuumBefore(5), 1u);
  EXPECT_TRUE(t.RowAt(b).row.empty());
  rows = 0;
  t.ScanAt(5, [&](RowId, const Row& row) {
    ++rows;
    EXPECT_EQ(row[1].AsString(), "b2");
  });
  EXPECT_EQ(rows, 1);
  EXPECT_FALSE(t.RowAt(c).row.empty());
  // Re-vacuuming at the same version is a no-op.
  EXPECT_EQ(t.VacuumBefore(5), 0u);
}

TEST(VacuumTest, IndexEntriesOfVacuumedRowsAreRemoved) {
  Table t("t", TwoColSchema());
  t.CreateHashIndex("k");
  const RowId a = t.Insert({Value(int64_t{7}), Value("a")}, 1);
  t.Insert({Value(int64_t{7}), Value("b")}, 1);
  t.Delete(a, 2);
  t.VacuumBefore(3);
  int hits = 0;
  t.IndexLookup(0, Value(int64_t{7}), 3, [&](RowId, const Row& row) {
    ++hits;
    EXPECT_EQ(row[1].AsString(), "b");
  });
  EXPECT_EQ(hits, 1);
}

TEST(VacuumTest, ReadingVacuumedSnapshotsIsRejected) {
  Table t("t", TwoColSchema());
  t.Insert({Value(int64_t{1}), Value("a")}, 1);
  t.VacuumBefore(5);
  EXPECT_DEATH(t.ScanAt(4, [](RowId, const Row&) {}), "vacuumed");
}

TEST(VacuumTest, MaintainerVacuumKeepsViewCorrect) {
  Database db;
  TpcGenOptions options;
  options.scale_factor = 0.001;
  GenerateTpcDatabase(&db, options);
  CreatePaperIndexes(&db);
  ViewMaintainer maintainer(&db, MakePaperMinView());
  TpcUpdater updater(&db, 13);

  size_t total_reclaimed = 0;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 20; ++i) updater.UpdatePartSuppSupplycost();
    for (int i = 0; i < 5; ++i) updater.UpdateSupplierNationkey();
    // Asymmetric partial processing, then vacuum what is consumed.
    maintainer.ProcessBatch(0, 12);
    maintainer.ProcessBatch(1, 3);
    total_reclaimed += maintainer.VacuumConsumed();
    ASSERT_TRUE(maintainer.state().SameContents(
        maintainer.RecomputeAtWatermarks()))
        << "round " << round;
  }
  EXPECT_GT(total_reclaimed, 0u);
  maintainer.RefreshAll();
  maintainer.VacuumConsumed();
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
  // Delta logs trimmed to the heads.
  EXPECT_EQ(db.table(kPartSupp).delta_log().first_retained(),
            db.table(kPartSupp).delta_log().size());
}

}  // namespace
}  // namespace abivm
