// Garbage collection of superseded row versions and consumed delta-log
// prefixes.

#include <algorithm>

#include <gtest/gtest.h>

#include "fault/failpoint.h"
#include "fault/sites.h"
#include "ivm/maintainer.h"
#include "storage/database.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

Schema TwoColSchema() {
  return Schema({{"k", ValueType::kInt64}, {"v", ValueType::kString}});
}

TEST(DeltaLogTrimTest, PositionsSurviveTrimming) {
  DeltaLog log;
  for (int64_t i = 0; i < 10; ++i) {
    log.Append(Modification{static_cast<Version>(i + 1), ModKind::kInsert,
                            {}, {Value(i)}});
  }
  EXPECT_EQ(log.size(), 10u);
  log.TrimBefore(4);
  EXPECT_EQ(log.size(), 10u);           // positions unchanged
  EXPECT_EQ(log.first_retained(), 4u);
  EXPECT_EQ(log.At(4).new_row[0], Value(int64_t{4}));
  EXPECT_EQ(log.At(9).new_row[0], Value(int64_t{9}));
  // Trimming backwards or to the same point is a no-op.
  log.TrimBefore(2);
  EXPECT_EQ(log.first_retained(), 4u);
  log.TrimBefore(10);
  EXPECT_EQ(log.first_retained(), 10u);
  EXPECT_EQ(log.size(), 10u);
}

TEST(VacuumTest, ReclaimsOnlyInvisibleVersions) {
  Table t("t", TwoColSchema());
  const RowId a = t.Insert({Value(int64_t{1}), Value("a")}, 1);
  const RowId b = t.Insert({Value(int64_t{2}), Value("b")}, 1);
  t.Delete(a, 3);
  const RowId c = t.Update(b, {Value(int64_t{2}), Value("b2")}, 5);

  // Safe version 4: row a (deleted at 3) is reclaimable; the old b
  // version (deleted at 5) is still visible at 4 and must survive.
  EXPECT_EQ(t.VacuumBefore(4), 1u);
  EXPECT_EQ(t.vacuum_horizon(), 4u);
  EXPECT_TRUE(t.RowAt(a).row.empty());
  EXPECT_FALSE(t.RowAt(b).row.empty());

  // Snapshot 4 still sees the pre-update b.
  int rows = 0;
  t.ScanAt(4, [&](RowId, const Row& row) {
    ++rows;
    EXPECT_EQ(row[1].AsString(), "b");
  });
  EXPECT_EQ(rows, 1);

  // Vacuuming further reclaims the old b version.
  EXPECT_EQ(t.VacuumBefore(5), 1u);
  EXPECT_TRUE(t.RowAt(b).row.empty());
  rows = 0;
  t.ScanAt(5, [&](RowId, const Row& row) {
    ++rows;
    EXPECT_EQ(row[1].AsString(), "b2");
  });
  EXPECT_EQ(rows, 1);
  EXPECT_FALSE(t.RowAt(c).row.empty());
  // Re-vacuuming at the same version is a no-op.
  EXPECT_EQ(t.VacuumBefore(5), 0u);
}

TEST(VacuumTest, IndexEntriesOfVacuumedRowsAreRemoved) {
  Table t("t", TwoColSchema());
  t.CreateHashIndex("k");
  const RowId a = t.Insert({Value(int64_t{7}), Value("a")}, 1);
  t.Insert({Value(int64_t{7}), Value("b")}, 1);
  t.Delete(a, 2);
  t.VacuumBefore(3);
  int hits = 0;
  t.IndexLookup(0, Value(int64_t{7}), 3, [&](RowId, const Row& row) {
    ++hits;
    EXPECT_EQ(row[1].AsString(), "b");
  });
  EXPECT_EQ(hits, 1);
}

TEST(VacuumTest, ReadingVacuumedSnapshotsIsRejected) {
  Table t("t", TwoColSchema());
  t.Insert({Value(int64_t{1}), Value("a")}, 1);
  t.VacuumBefore(5);
  EXPECT_DEATH(t.ScanAt(4, [](RowId, const Row&) {}), "vacuumed");
}

TEST(VacuumTest, MaintainerVacuumKeepsViewCorrect) {
  Database db;
  TpcGenOptions options;
  options.scale_factor = 0.001;
  GenerateTpcDatabase(&db, options);
  CreatePaperIndexes(&db);
  ViewMaintainer maintainer(&db, MakePaperMinView());
  TpcUpdater updater(&db, 13);

  size_t total_reclaimed = 0;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 20; ++i) updater.UpdatePartSuppSupplycost();
    for (int i = 0; i < 5; ++i) updater.UpdateSupplierNationkey();
    // Asymmetric partial processing, then vacuum what is consumed.
    maintainer.ProcessBatch(0, 12);
    maintainer.ProcessBatch(1, 3);
    total_reclaimed += maintainer.VacuumConsumed();
    ASSERT_TRUE(maintainer.state().SameContents(
        maintainer.RecomputeAtWatermarks()))
        << "round " << round;
  }
  EXPECT_GT(total_reclaimed, 0u);
  maintainer.RefreshAll();
  maintainer.VacuumConsumed();
  EXPECT_TRUE(maintainer.state().SameContents(
      maintainer.RecomputeAtWatermarks()));
  // Delta logs trimmed to the heads.
  EXPECT_EQ(db.table(kPartSupp).delta_log().first_retained(),
            db.table(kPartSupp).delta_log().size());
}

// Shared fixture for the engine-driven GC tests: TPC database with the
// paper view partially maintained, so watermarks sit strictly between
// the initial materialization and the current version.
struct GcFixture {
  Database db;
  std::unique_ptr<ViewMaintainer> maintainer;

  GcFixture() {
    TpcGenOptions options;
    options.scale_factor = 0.001;
    GenerateTpcDatabase(&db, options);
    CreatePaperIndexes(&db);
    maintainer = std::make_unique<ViewMaintainer>(&db, MakePaperMinView());
    TpcUpdater updater(&db, 21);
    for (int i = 0; i < 20; ++i) updater.UpdatePartSuppSupplycost();
    for (int i = 0; i < 6; ++i) updater.UpdateSupplierNationkey();
    maintainer->ProcessBatch(0, 14);
    maintainer->ProcessBatch(1, 4);
  }
};

TEST(VacuumTest, EngineCapVacuumsExactlyToTheFrontierBoundary) {
  GcFixture fx;
  ViewMaintainer& m = *fx.maintainer;

  // A cap strictly below the partsupp watermark: its horizon must land
  // on the cap, not the watermark; tables whose watermark is below the
  // cap clamp to their watermark instead.
  const Version cap = std::min(m.watermark_version(0),
                               m.watermark_version(1)) - 1;
  ASSERT_GT(cap, 0u);
  size_t rows = 0;
  size_t entries = 0;
  ASSERT_TRUE(m.VacuumConsumedBelow(cap, &rows, &entries).ok());
  EXPECT_GT(rows, 0u);
  EXPECT_GT(entries, 0u);
  for (size_t i = 0; i < m.num_tables(); ++i) {
    const Table& t = m.binding().base_table(i);
    EXPECT_EQ(t.vacuum_horizon(),
              std::min(m.watermark_version(i), cap)) << "table " << i;
    // The horizon snapshot itself stays readable...
    t.ScanAt(t.vacuum_horizon(), [](RowId, const Row&) {});
  }
  // ... and anything below it is gone (partsupp's horizon == cap).
  EXPECT_DEATH(m.binding().base_table(0).ScanAt(
                   cap - 1, [](RowId, const Row&) {}),
               "vacuumed");

  // Raising the cap past every watermark clamps to the watermarks; the
  // view is untouched either way.
  ASSERT_TRUE(m.VacuumConsumedBelow(fx.db.current_version() + 100, &rows,
                                    &entries).ok());
  for (size_t i = 0; i < m.num_tables(); ++i) {
    EXPECT_EQ(m.binding().base_table(i).vacuum_horizon(),
              m.watermark_version(i)) << "table " << i;
  }
  EXPECT_TRUE(m.state().SameContents(m.RecomputeAtWatermarks()));
}

TEST(VacuumTest, FaultedVacuumLeavesEveryTableConsistent) {
  GcFixture fx;
  ViewMaintainer& m = *fx.maintainer;
  const Version cap = fx.db.current_version();

  // Crash the pass between table 0 and table 1: partsupp has already
  // been vacuumed, supplier and the rest must be untouched.
  {
    fault::ScopedFailpoint fp =
        fault::ScopedFailpoint::Once(fault::kFpGcVacuum, /*skip_hits=*/1);
    size_t rows = 0;
    size_t entries = 0;
    EXPECT_FALSE(m.VacuumConsumedBelow(cap, &rows, &entries).ok());
  }
  EXPECT_EQ(m.binding().base_table(0).vacuum_horizon(),
            std::min(m.watermark_version(0), cap));
  EXPECT_EQ(m.binding().base_table(1).vacuum_horizon(), 0u);

  // Every table -- vacuumed or not -- is still internally consistent:
  // live positions resolve to live rows and the watermark snapshot scans.
  for (size_t i = 0; i < m.num_tables(); ++i) {
    const Table& t = m.binding().base_table(i);
    EXPECT_LE(t.vacuum_horizon(), m.watermark_version(i)) << "table " << i;
    for (RowId id : t.live_ids()) {
      EXPECT_FALSE(t.RowAt(id).row.empty()) << "table " << i;
    }
    EXPECT_LE(t.live_row_count(), t.physical_row_count());
    size_t scanned = 0;
    t.ScanAt(m.watermark_version(i), [&](RowId, const Row&) { ++scanned; });
    EXPECT_EQ(scanned, t.live_row_count()) << "table " << i;
  }

  // The partially-vacuumed supplier index still resolves every live row
  // to itself (s_suppkey is unique).
  const Table& supplier = fx.db.table(kSupplier);
  const Version sw = m.watermark_version(m.binding().TableIndex(kSupplier));
  size_t scanned = 0;
  size_t probed = 0;
  supplier.ScanAt(sw, [&](RowId, const Row& row) {
    ++scanned;
    supplier.IndexLookup(0, row[0], sw, [&](RowId, const Row& hit) {
      if (hit[0] == row[0]) ++probed;
    });
  });
  EXPECT_EQ(probed, scanned);
  EXPECT_GT(scanned, 0u);

  // The view never moves on a failed vacuum, and the retry completes
  // the pass.
  ASSERT_TRUE(m.state().SameContents(m.RecomputeAtWatermarks()));
  size_t rows = 0;
  size_t entries = 0;
  ASSERT_TRUE(m.VacuumConsumedBelow(cap, &rows, &entries).ok());
  for (size_t i = 0; i < m.num_tables(); ++i) {
    EXPECT_EQ(m.binding().base_table(i).vacuum_horizon(),
              std::min(m.watermark_version(i), cap)) << "table " << i;
  }
  EXPECT_TRUE(m.state().SameContents(m.RecomputeAtWatermarks()));
}

}  // namespace
}  // namespace abivm
