#include "storage/value.h"

#include <gtest/gtest.h>

#include "storage/schema.h"

namespace abivm {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  const Value i(int64_t{42});
  const Value d(3.5);
  const Value s("hello");
  EXPECT_EQ(i.type(), ValueType::kInt64);
  EXPECT_EQ(d.type(), ValueType::kDouble);
  EXPECT_EQ(s.type(), ValueType::kString);
  EXPECT_EQ(i.AsInt64(), 42);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 3.5);
  EXPECT_EQ(s.AsString(), "hello");
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value(int64_t{7}), Value(int64_t{7}));
  EXPECT_NE(Value(int64_t{7}), Value(int64_t{8}));
  EXPECT_LT(Value(int64_t{7}), Value(int64_t{8}));
  EXPECT_LT(Value(1.5), Value(2.5));
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_GE(Value("b"), Value("a"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{123}).Hash(), Value(int64_t{123}).Hash());
  EXPECT_EQ(Value("xyz").Hash(), Value("xyz").Hash());
  EXPECT_EQ(Value(2.25).Hash(), Value(2.25).Hash());
  // Negative and positive zero are equal doubles and must hash equally.
  EXPECT_EQ(Value(0.0).Hash(), Value(-0.0).Hash());
  // Not a strict requirement, but catch degenerate constant hashing.
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(int64_t{2}).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{5}).ToString(), "5");
  EXPECT_EQ(Value("hi").ToString(), "\"hi\"");
  EXPECT_EQ(RowToString({Value(int64_t{1}), Value("a")}), "[1, \"a\"]");
}

TEST(RowHashTest, EqualRowsHashEqually) {
  const Row a = {Value(int64_t{1}), Value("x"), Value(2.0)};
  const Row b = {Value(int64_t{1}), Value("x"), Value(2.0)};
  const Row c = {Value(int64_t{2}), Value("x"), Value(2.0)};
  EXPECT_EQ(RowHash{}(a), RowHash{}(b));
  EXPECT_NE(RowHash{}(a), RowHash{}(c));
}

TEST(SchemaTest, ColumnLookup) {
  const Schema schema({{"id", ValueType::kInt64},
                       {"name", ValueType::kString},
                       {"price", ValueType::kDouble}});
  EXPECT_EQ(schema.num_columns(), 3u);
  EXPECT_EQ(schema.ColumnIndex("id"), 0u);
  EXPECT_EQ(schema.ColumnIndex("price"), 2u);
  EXPECT_EQ(schema.column(1).name, "name");
}

TEST(SchemaTest, RowMatches) {
  const Schema schema({{"id", ValueType::kInt64},
                       {"name", ValueType::kString}});
  EXPECT_TRUE(schema.RowMatches({Value(int64_t{1}), Value("a")}));
  EXPECT_FALSE(schema.RowMatches({Value(int64_t{1})}));
  EXPECT_FALSE(schema.RowMatches({Value("a"), Value(int64_t{1})}));
}

}  // namespace
}  // namespace abivm
