#include "storage/table.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/database.h"

namespace abivm {
namespace {

Schema TwoColSchema() {
  return Schema({{"k", ValueType::kInt64}, {"v", ValueType::kString}});
}

Row MakeRow(int64_t k, const std::string& v) {
  return {Value(k), Value(v)};
}

TEST(TableTest, InsertAndVisibility) {
  Table t("t", TwoColSchema());
  const RowId id = t.Insert(MakeRow(1, "a"), /*version=*/3);
  EXPECT_FALSE(t.VisibleAt(id, 2));
  EXPECT_TRUE(t.VisibleAt(id, 3));
  EXPECT_TRUE(t.VisibleAt(id, 100));
}

TEST(TableTest, DeleteEndsVisibility) {
  Table t("t", TwoColSchema());
  const RowId id = t.Insert(MakeRow(1, "a"), 1);
  t.Delete(id, 5);
  EXPECT_TRUE(t.VisibleAt(id, 1));
  EXPECT_TRUE(t.VisibleAt(id, 4));
  EXPECT_FALSE(t.VisibleAt(id, 5));
  EXPECT_FALSE(t.VisibleAt(id, 50));
}

TEST(TableTest, UpdateIsDeletePlusInsert) {
  Table t("t", TwoColSchema());
  const RowId old_id = t.Insert(MakeRow(1, "a"), 1);
  const RowId new_id = t.Update(old_id, MakeRow(1, "b"), 7);
  EXPECT_NE(old_id, new_id);
  // Snapshot 6 sees the old value; snapshot 7 the new one.
  EXPECT_TRUE(t.VisibleAt(old_id, 6));
  EXPECT_FALSE(t.VisibleAt(new_id, 6));
  EXPECT_FALSE(t.VisibleAt(old_id, 7));
  EXPECT_TRUE(t.VisibleAt(new_id, 7));
  EXPECT_EQ(t.RowAt(new_id).row[1].AsString(), "b");
}

TEST(TableTest, ScanAtRespectsVersions) {
  Table t("t", TwoColSchema());
  t.Insert(MakeRow(1, "a"), 1);
  const RowId b = t.Insert(MakeRow(2, "b"), 2);
  t.Insert(MakeRow(3, "c"), 4);
  t.Delete(b, 3);

  auto keys_at = [&](Version v) {
    std::set<int64_t> keys;
    t.ScanAt(v, [&](RowId, const Row& row) {
      keys.insert(row[0].AsInt64());
    });
    return keys;
  };
  EXPECT_EQ(keys_at(0), (std::set<int64_t>{}));
  EXPECT_EQ(keys_at(1), (std::set<int64_t>{1}));
  EXPECT_EQ(keys_at(2), (std::set<int64_t>{1, 2}));
  EXPECT_EQ(keys_at(3), (std::set<int64_t>{1}));
  EXPECT_EQ(keys_at(4), (std::set<int64_t>{1, 3}));
}

TEST(TableTest, HashIndexVersionAwareLookup) {
  Table t("t", TwoColSchema());
  t.CreateHashIndex("k");
  const RowId a = t.Insert(MakeRow(7, "a"), 1);
  t.Insert(MakeRow(7, "b"), 2);
  t.Insert(MakeRow(8, "c"), 2);
  t.Delete(a, 3);

  auto lookup = [&](int64_t key, Version v) {
    std::set<std::string> vals;
    t.IndexLookup(0, Value(key), v, [&](RowId, const Row& row) {
      vals.insert(row[1].AsString());
    });
    return vals;
  };
  EXPECT_EQ(lookup(7, 1), (std::set<std::string>{"a"}));
  EXPECT_EQ(lookup(7, 2), (std::set<std::string>{"a", "b"}));
  EXPECT_EQ(lookup(7, 3), (std::set<std::string>{"b"}));
  EXPECT_EQ(lookup(8, 1), (std::set<std::string>{}));
  EXPECT_EQ(lookup(8, 2), (std::set<std::string>{"c"}));
}

TEST(TableTest, IndexCreatedAfterRowsCoversExistingRows) {
  Table t("t", TwoColSchema());
  t.Insert(MakeRow(5, "x"), 1);
  t.CreateHashIndex("k");
  int hits = 0;
  t.IndexLookup(0, Value(int64_t{5}), 1, [&](RowId, const Row&) { ++hits; });
  EXPECT_EQ(hits, 1);
  EXPECT_TRUE(t.HasIndexOn(0));
  EXPECT_FALSE(t.HasIndexOn(1));
}

TEST(TableTest, LiveRowSampling) {
  Table t("t", TwoColSchema());
  std::vector<RowId> ids;
  for (int64_t k = 0; k < 10; ++k) {
    ids.push_back(t.Insert(MakeRow(k, "v"), 1));
  }
  t.Delete(ids[3], 2);
  t.Delete(ids[7], 2);
  EXPECT_EQ(t.live_row_count(), 8u);

  Rng rng(9);
  std::set<RowId> sampled;
  for (int trial = 0; trial < 200; ++trial) {
    const RowId id = t.SampleLiveRow(rng);
    EXPECT_EQ(t.RowAt(id).delete_version, kNeverDeleted);
    sampled.insert(id);
  }
  EXPECT_EQ(sampled.size(), 8u);  // every live row eventually sampled
}

TEST(DatabaseTest, VersionClockAndDeltaLog) {
  Database db;
  Table& t = db.CreateTable("t", TwoColSchema());
  db.BulkLoad(t, MakeRow(1, "a"));
  EXPECT_EQ(db.current_version(), 0u);
  EXPECT_EQ(t.delta_log().size(), 0u);  // bulk load is not logged

  const RowId id = db.ApplyInsert(t, MakeRow(2, "b"));
  EXPECT_EQ(db.current_version(), 1u);
  db.ApplyUpdate(t, id, MakeRow(2, "b2"));
  EXPECT_EQ(db.current_version(), 2u);
  db.ApplyDelete(t, 0);  // the bulk-loaded row
  EXPECT_EQ(db.current_version(), 3u);

  ASSERT_EQ(t.delta_log().size(), 3u);
  const Modification& ins = t.delta_log().At(0);
  EXPECT_EQ(ins.kind, ModKind::kInsert);
  EXPECT_EQ(ins.version, 1u);
  EXPECT_EQ(ins.new_row[1].AsString(), "b");

  const Modification& upd = t.delta_log().At(1);
  EXPECT_EQ(upd.kind, ModKind::kUpdate);
  EXPECT_EQ(upd.old_row[1].AsString(), "b");
  EXPECT_EQ(upd.new_row[1].AsString(), "b2");

  const Modification& del = t.delta_log().At(2);
  EXPECT_EQ(del.kind, ModKind::kDelete);
  EXPECT_EQ(del.old_row[1].AsString(), "a");
}

// Randomized oracle for the flat hash index: at every version, an index
// lookup must return exactly the rows a full visible scan finds for that
// key -- across inserts, updates, deletes, index creation after rows,
// and version GC (VacuumBefore).
TEST(TableTest, IndexMatchesScanOracleAcrossMutationsAndVacuum) {
  Table t("t", TwoColSchema());
  Rng rng(0x5EED);
  constexpr int64_t kKeys = 9;  // few keys -> long duplicate chains
  std::vector<RowId> live;
  Version version = 1;

  const auto check_all_keys = [&](Version v) {
    for (int64_t k = 0; k < kKeys; ++k) {
      std::multiset<std::string> via_scan;
      t.ScanAt(v, [&](RowId, const Row& row) {
        if (row[0].AsInt64() == k) via_scan.insert(row[1].AsString());
      });
      std::multiset<std::string> via_index;
      t.IndexLookup(0, Value(k), v, [&](RowId, const Row& row) {
        via_index.insert(row[1].AsString());
      });
      ASSERT_EQ(via_index, via_scan) << "key " << k << " at v" << v;
    }
  };

  // Seed rows BEFORE the index exists: CreateHashIndex must cover them.
  for (int i = 0; i < 40; ++i) {
    live.push_back(t.Insert(
        MakeRow(rng.UniformInt(0, kKeys - 1), "seed" + std::to_string(i)),
        version++));
  }
  t.CreateHashIndex("k");
  check_all_keys(version - 1);

  for (int step = 0; step < 600; ++step) {
    switch (rng.UniformInt(0, 3)) {
      case 0:
      case 1:
        live.push_back(t.Insert(MakeRow(rng.UniformInt(0, kKeys - 1),
                                        "s" + std::to_string(step)),
                                version++));
        break;
      case 2:
        if (!live.empty()) {
          const size_t pick = static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(live.size()) - 1));
          const RowId id = live[pick];
          live[pick] = t.Update(id,
                                MakeRow(rng.UniformInt(0, kKeys - 1),
                                        "u" + std::to_string(step)),
                                version++);
        }
        break;
      default:
        if (live.size() > 5) {
          const size_t pick = static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(live.size()) - 1));
          t.Delete(live[pick], version++);
          live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
        }
        break;
    }
    if (step % 53 == 0) check_all_keys(version - 1);
  }
  check_all_keys(version - 1);

  // Version GC: reclaiming dead versions must unindex exactly the
  // vacuumed rows and leave current-snapshot answers untouched.
  const Version safe = version - 1;
  const size_t reclaimed = t.VacuumBefore(safe);
  EXPECT_GT(reclaimed, 0u);
  check_all_keys(safe);
  EXPECT_EQ(t.live_row_count(), live.size());
}

// ScanRangeAt partitions: contiguous ranges concatenated in order must
// reproduce the full scan exactly (the partitioned probe's foundation).
TEST(TableTest, ScanRangeConcatenationEqualsFullScan) {
  Table t("t", TwoColSchema());
  std::vector<RowId> ids;
  for (int64_t k = 0; k < 23; ++k) {
    ids.push_back(t.Insert(MakeRow(k, "v" + std::to_string(k)), 1));
  }
  for (int64_t k = 0; k < 23; k += 3) t.Delete(ids[static_cast<size_t>(k)], 2);

  std::vector<RowId> full;
  t.ScanAt(2, [&](RowId id, const Row&) { full.push_back(id); });

  for (const size_t parts : {1u, 2u, 4u, 7u, 30u}) {
    std::vector<RowId> pieced;
    const size_t phys = t.physical_row_count();
    const size_t chunk = (phys + parts - 1) / parts;
    for (size_t p = 0; p < parts; ++p) {
      const RowId begin = static_cast<RowId>(p * chunk);
      const RowId end =
          static_cast<RowId>(std::min(phys, (p + 1) * chunk));
      if (begin >= end) continue;
      t.ScanRangeAt(2, begin, end,
                    [&](RowId id, const Row&) { pieced.push_back(id); });
    }
    EXPECT_EQ(pieced, full) << parts << " partitions";
  }
}

TEST(DatabaseTest, TableCatalog) {
  Database db;
  db.CreateTable("a", TwoColSchema());
  db.CreateTable("b", TwoColSchema());
  EXPECT_TRUE(db.HasTable("a"));
  EXPECT_FALSE(db.HasTable("c"));
  EXPECT_EQ(db.table("b").name(), "b");
  EXPECT_EQ(db.tables().size(), 2u);
}

}  // namespace
}  // namespace abivm
