#include "storage/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace abivm {
namespace {

Schema MixedSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"name", ValueType::kString},
                 {"price", ValueType::kDouble}});
}

TEST(CsvEscapeTest, QuotingRules) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvTest, WriteThenLoadRoundTrips) {
  Database db;
  Table& source = db.CreateTable("source", MixedSchema());
  db.BulkLoad(source, {Value(int64_t{1}), Value("alpha"), Value(1.5)});
  db.BulkLoad(source, {Value(int64_t{2}), Value("with,comma"),
                       Value(2.25)});
  db.BulkLoad(source, {Value(int64_t{3}), Value("q\"uote"),
                       Value(0.333333333333333314829616256247)});

  std::ostringstream out;
  WriteTableCsv(source, 0, out);

  Table& target = db.CreateTable("target", MixedSchema());
  std::istringstream in(out.str());
  const Result<size_t> loaded = LoadTableCsv(&db, &target, in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 3u);

  // Contents identical (same scan order: insertion order).
  std::vector<Row> source_rows, target_rows;
  source.ScanAt(0, [&](RowId, const Row& r) { source_rows.push_back(r); });
  target.ScanAt(0, [&](RowId, const Row& r) { target_rows.push_back(r); });
  ASSERT_EQ(source_rows.size(), target_rows.size());
  for (size_t i = 0; i < source_rows.size(); ++i) {
    EXPECT_EQ(source_rows[i], target_rows[i]) << "row " << i;
  }
}

TEST(CsvTest, WriteRespectsSnapshotVersion) {
  Database db;
  Table& t = db.CreateTable("t", MixedSchema());
  db.BulkLoad(t, {Value(int64_t{1}), Value("old"), Value(1.0)});
  db.ApplyUpdate(t, 0, {Value(int64_t{1}), Value("new"), Value(1.0)});

  std::ostringstream v0, v1;
  WriteTableCsv(t, 0, v0);
  WriteTableCsv(t, db.current_version(), v1);
  EXPECT_NE(v0.str().find("old"), std::string::npos);
  EXPECT_NE(v1.str().find("new"), std::string::npos);
  EXPECT_EQ(v1.str().find("old"), std::string::npos);
}

TEST(CsvTest, HeaderValidation) {
  Database db;
  Table& t = db.CreateTable("t", MixedSchema());
  {
    std::istringstream in("wrong,header,names\n1,a,2.0\n");
    const Result<size_t> r = LoadTableCsv(&db, &t, in);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("does not match"),
              std::string::npos);
  }
  {
    std::istringstream in("id,name\n");
    EXPECT_FALSE(LoadTableCsv(&db, &t, in).ok());  // arity mismatch
  }
  {
    std::istringstream in("");
    EXPECT_FALSE(LoadTableCsv(&db, &t, in).ok());  // empty
  }
}

TEST(CsvTest, CellTypeValidation) {
  Database db;
  Table& t = db.CreateTable("t", MixedSchema());
  std::istringstream in("id,name,price\nnot_an_int,a,2.0\n");
  const Result<size_t> r = LoadTableCsv(&db, &t, in);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("bad int64"), std::string::npos);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, QuotedFieldsWithNewlinesAndBlankLines) {
  Database db;
  Table& t = db.CreateTable("t", MixedSchema());
  std::istringstream in(
      "id,name,price\n"
      "1,\"multi\nline\",2.0\n"
      "\n"
      "2,plain,3.5\n");
  const Result<size_t> r = LoadTableCsv(&db, &t, in);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 2u);
  std::vector<Row> rows;
  t.ScanAt(0, [&](RowId, const Row& row) { rows.push_back(row); });
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1].AsString(), "multi\nline");
}

TEST(CsvTest, MalformedQuoting) {
  Database db;
  Table& t = db.CreateTable("t", MixedSchema());
  std::istringstream in("id,name,price\n1,\"unterminated,2.0\n");
  EXPECT_FALSE(LoadTableCsv(&db, &t, in).ok());
}

TEST(CsvTest, TrailingCharactersAfterClosingQuoteAreMalformed) {
  Database db;
  Table& t = db.CreateTable("t", MixedSchema());
  {
    // "abc"def must be rejected, not silently concatenated to "abcdef".
    std::istringstream in("id,name,price\n1,\"abc\"def,2.0\n");
    const Result<size_t> r = LoadTableCsv(&db, &t, in);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("malformed"), std::string::npos);
    EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
  }
  {
    // Same for an empty quoted field with a tail.
    std::istringstream in("id,name,price\n1,\"\"x,2.0\n");
    EXPECT_FALSE(LoadTableCsv(&db, &t, in).ok());
  }
  {
    // And for a re-opened quote after a completed quoted field.
    std::istringstream in("id,name,price\n1,\"a\"\"b\"extra,2.0\n");
    EXPECT_FALSE(LoadTableCsv(&db, &t, in).ok());
  }
  EXPECT_EQ(t.live_row_count(), 0u);
  {
    // The legal shapes still parse: escaped quotes, a quoted field
    // followed immediately by the separator, and a quoted final field.
    std::istringstream in("id,name,price\n1,\"a\"\"b\",2.0\n2,\"c\",3.0\n");
    const Result<size_t> r = LoadTableCsv(&db, &t, in);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(*r, 2u);
    std::vector<Row> rows;
    t.ScanAt(0, [&](RowId, const Row& row) { rows.push_back(row); });
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0][1].AsString(), "a\"b");
    EXPECT_EQ(rows[1][1].AsString(), "c");
  }
}

TEST(CsvTest, NumericCellsOutOfRangeAreErrorsNotCrashes) {
  Database db;
  Table& t = db.CreateTable("t", MixedSchema());
  {
    // Way past int64 range: must come back as a Status, not abort.
    std::istringstream in(
        "id,name,price\n99999999999999999999999999,a,2.0\n");
    const Result<size_t> r = LoadTableCsv(&db, &t, in);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find("bad int64"), std::string::npos);
  }
  {
    // Double overflow (1e999 -> ERANGE in strtod).
    std::istringstream in("id,name,price\n1,a,1e999\n");
    const Result<size_t> r = LoadTableCsv(&db, &t, in);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("bad double"), std::string::npos);
  }
  {
    // Trailing garbage after a valid prefix.
    std::istringstream in("id,name,price\n12x,a,2.0\n");
    EXPECT_FALSE(LoadTableCsv(&db, &t, in).ok());
  }
}

TEST(CsvTest, FailedLoadKeepsEarlierValidRows) {
  // Row-by-row bulk load: a malformed record aborts the load with the
  // already-validated prefix applied (callers see the row count only on
  // full success, so partial loads are detectable via the error).
  Database db;
  Table& t = db.CreateTable("t", MixedSchema());
  std::istringstream in(
      "id,name,price\n1,a,2.0\nbogus_int,b,3.0\n");
  EXPECT_FALSE(LoadTableCsv(&db, &t, in).ok());
  EXPECT_EQ(t.live_row_count(), 1u);
}

}  // namespace
}  // namespace abivm
