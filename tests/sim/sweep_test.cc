#include "sim/sweep.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/astar.h"
#include "core/naive.h"
#include "core/online.h"
#include "core/replan.h"
#include "fault/failpoint.h"
#include "fault/sites.h"
#include "sim/engine_runner.h"
#include "sim/sweep_values.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

ProblemInstance MakeInstance(TimeStep horizon, double budget) {
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0)};
  return ProblemInstance{CostModel(std::move(fns)),
                         ArrivalSequence::Uniform({1, 1}, horizon), budget};
}

std::vector<SweepJob> MakeJobs(const std::vector<ProblemInstance>& instances) {
  std::vector<SweepJob> jobs;
  for (size_t i = 0; i < instances.size(); ++i) {
    const ProblemInstance& instance = instances[i];
    const std::string scenario = "instance" + std::to_string(i);
    jobs.push_back(MakeSimulateJob(
        scenario, "NAIVE", instance,
        [] { return std::make_unique<NaivePolicy>(); },
        {.record_steps = false}));
    jobs.push_back(MakeSimulateJob(
        scenario, "ONLINE", instance,
        [] { return std::make_unique<OnlinePolicy>(); },
        {.record_steps = false}));
    jobs.push_back(MakeSimulateJob(
        scenario, "REPLAN", instance,
        [] { return std::make_unique<ReplanningPolicy>(); },
        {.record_steps = false}));
    jobs.push_back(MakePlanJob(scenario, "OPT_LGM", instance));
  }
  return jobs;
}

TEST(SweepTest, ResultsComeBackInJobOrder) {
  const std::vector<ProblemInstance> instances = {MakeInstance(40, 15.0),
                                                  MakeInstance(60, 20.0)};
  const std::vector<SweepJob> jobs = MakeJobs(instances);
  const std::vector<SweepJobResult> results =
      RunSweep(jobs, SweepOptions{.threads = 4});
  ASSERT_EQ(results.size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(results[i].scenario, jobs[i].scenario);
    EXPECT_EQ(results[i].label, jobs[i].label);
  }
}

TEST(SweepTest, ParallelMatchesSequentialBitForBit) {
  std::vector<ProblemInstance> instances;
  for (TimeStep horizon : {30, 50, 80, 120}) {
    instances.push_back(MakeInstance(horizon, 18.0));
  }
  // Fresh job vectors per sweep: plan jobs own a PlannerWorkspace, so
  // re-running ONE vector would make the second sweep report warm-start
  // counters (astar.workspace_reuses). That behavior is covered by
  // RerunningPlanJobReusesWorkspaceBitIdentically below; this test
  // isolates the thread-count-invariance claim.
  const std::vector<SweepJob> jobs_seq = MakeJobs(instances);
  const std::vector<SweepJob> jobs_par = MakeJobs(instances);

  const std::vector<SweepJobResult> sequential =
      RunSweep(jobs_seq, SweepOptions{.threads = 1});
  const std::vector<SweepJobResult> parallel =
      RunSweep(jobs_par, SweepOptions{.threads = 8});

  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    SCOPED_TRACE(sequential[i].scenario + "/" + sequential[i].label);
    // Exact double equality on purpose: the jobs share no mutable state,
    // so thread count must not perturb a single bit of the results.
    EXPECT_EQ(sequential[i].total_cost, parallel[i].total_cost);
    EXPECT_EQ(sequential[i].violations, parallel[i].violations);
    EXPECT_EQ(sequential[i].action_count, parallel[i].action_count);
    EXPECT_EQ(sequential[i].values, parallel[i].values);
    // Event counters (planner nodes, policy decisions) are deterministic
    // too; only wall-clock timers may differ between runs.
    EXPECT_EQ(sequential[i].metrics.counters, parallel[i].metrics.counters);
  }
}

TEST(SweepTest, RerunningPlanJobReusesWorkspaceBitIdentically) {
  // A plan job's closure owns its PlannerWorkspace, so running the SAME
  // job vector twice warms the arenas: the second sweep must report the
  // reuse truthfully while every search-shaped counter stays bit-equal.
  std::vector<ProblemInstance> instances;
  for (TimeStep horizon : {30, 50, 80}) {
    instances.push_back(MakeInstance(horizon, 18.0));
  }
  std::vector<SweepJob> jobs;
  for (size_t i = 0; i < instances.size(); ++i) {
    jobs.push_back(MakePlanJob("instance" + std::to_string(i), "OPT_LGM",
                               instances[i]));
  }

  const std::vector<SweepJobResult> cold =
      RunSweep(jobs, SweepOptions{.threads = 1});
  const std::vector<SweepJobResult> warm =
      RunSweep(jobs, SweepOptions{.threads = 2});

  ASSERT_EQ(cold.size(), warm.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    SCOPED_TRACE(cold[i].scenario);
    EXPECT_EQ(cold[i].total_cost, warm[i].total_cost);
    EXPECT_EQ(cold[i].action_count, warm[i].action_count);
    for (const char* key :
         {"astar.nodes_expanded", "astar.nodes_generated",
          "astar.relaxations", "astar.frontier_peak",
          "astar.arena_bytes_peak"}) {
      SCOPED_TRACE(key);
      EXPECT_EQ(cold[i].metrics.counters.at(key),
                warm[i].metrics.counters.at(key));
    }
    // The cold sweep ran each workspace's first search; the warm sweep
    // its second.
    EXPECT_EQ(cold[i].metrics.counters.count("astar.workspace_reuses"), 0u);
    EXPECT_EQ(warm[i].metrics.counters.at("astar.workspace_reuses"), 1u);
  }
}

TEST(SweepTest, SimulateJobExportsPolicyAndSimMetrics) {
  const std::vector<ProblemInstance> instances = {MakeInstance(50, 15.0)};
  const SweepJob job = MakeSimulateJob(
      "s", "ONLINE", instances[0],
      [] { return std::make_unique<OnlinePolicy>(); },
      {.record_steps = false});
  const std::vector<SweepJobResult> results =
      RunSweep({job}, SweepOptions{.threads = 1});
  ASSERT_EQ(results.size(), 1u);
  const SweepJobResult& result = results[0];
  EXPECT_EQ(result.metrics.counters.at("sim.steps"), 51u);
  EXPECT_EQ(result.metrics.counters.at("sim.actions"), result.action_count);
  EXPECT_GT(result.metrics.counters.at("online.actions_taken"), 0u);
  EXPECT_EQ(result.metrics.timers.at("sim.policy_act_ms").count, 50u);
  EXPECT_GT(result.wall_ms, 0.0);
}

TEST(SweepTest, PlanJobMatchesDirectSearch) {
  const ProblemInstance instance = MakeInstance(80, 15.0);
  const PlanSearchResult direct = FindOptimalLgmPlan(instance);
  const std::vector<SweepJobResult> results = RunSweep(
      {MakePlanJob("s", "OPT_LGM", instance)}, SweepOptions{.threads = 2});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].total_cost, direct.cost);
  EXPECT_EQ(results[0].metrics.counters.at("astar.nodes_expanded"),
            direct.nodes_expanded);
  EXPECT_EQ(results[0].metrics.counters.at("astar.nodes_generated"),
            direct.nodes_generated);
}

TEST(SweepTest, DispatchesLongestExpectedCostFirst) {
  // With one worker thread, execution order equals dispatch order, so the
  // start sequence observes the scheduler directly. Costs are submitted
  // shuffled; dispatch must be by descending expected_cost.
  const std::vector<double> costs = {3.0, 9.0, 1.0, 7.0, 5.0};
  std::vector<size_t> started;  // safe unsynchronized: threads = 1
  std::vector<SweepJob> jobs;
  for (size_t i = 0; i < costs.size(); ++i) {
    SweepJob job;
    job.scenario = "order";
    job.label = "job" + std::to_string(i);
    job.expected_cost = costs[i];
    job.run = [&started, i](obs::MetricRegistry&, SweepJobResult&) {
      started.push_back(i);
    };
    jobs.push_back(std::move(job));
  }
  const std::vector<SweepJobResult> results =
      RunSweep(jobs, SweepOptions{.threads = 1});
  EXPECT_EQ(started, (std::vector<size_t>{1, 3, 4, 0, 2}));
  // Results still come back in submission order.
  ASSERT_EQ(results.size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(results[i].label, jobs[i].label);
  }
}

TEST(SweepTest, EqualCostDispatchKeepsSubmissionOrder) {
  // All-default expected_cost (0.0, "unknown") must not reorder anything:
  // stable_sort leaves equal keys in submission order.
  std::vector<size_t> started;
  std::vector<SweepJob> jobs;
  for (size_t i = 0; i < 6; ++i) {
    SweepJob job;
    job.scenario = "stable";
    job.label = "job" + std::to_string(i);
    job.run = [&started, i](obs::MetricRegistry&, SweepJobResult&) {
      started.push_back(i);
    };
    jobs.push_back(std::move(job));
  }
  RunSweep(jobs, SweepOptions{.threads = 1});
  EXPECT_EQ(started, (std::vector<size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(SweepTest, MakeJobHelpersSetExpectedCostFromHorizon) {
  const ProblemInstance shorter = MakeInstance(40, 15.0);
  const ProblemInstance longer = MakeInstance(120, 15.0);
  const SweepJob sim_short = MakeSimulateJob(
      "s", "NAIVE", shorter, [] { return std::make_unique<NaivePolicy>(); });
  const SweepJob sim_long = MakeSimulateJob(
      "s", "NAIVE", longer, [] { return std::make_unique<NaivePolicy>(); });
  const SweepJob plan_long = MakePlanJob("s", "OPT_LGM", longer);
  EXPECT_LT(sim_short.expected_cost, sim_long.expected_cost);
  EXPECT_EQ(sim_long.expected_cost, plan_long.expected_cost);
  EXPECT_GT(sim_short.expected_cost, 0.0);
}

// A sweep job that runs the REAL engine with seeded fault injection armed
// inside the job closure. Failpoint registries are thread-local, so each
// worker thread arms (and tears down) its own sites -- the property that
// keeps fault-injected sweeps bit-identical across thread counts.
SweepJob MakeEngineFaultJob(std::string scenario, uint64_t seed) {
  SweepJob job;
  job.scenario = std::move(scenario);
  job.label = "ENGINE_FAULT seed=" + std::to_string(seed);
  job.run = [seed](obs::MetricRegistry& metrics, SweepJobResult& result) {
    // Worker threads are reused across jobs: start from clean counters.
    fault::FailpointRegistry::ThreadLocal().ResetAllCounters();

    Database db;
    TpcGenOptions gen;
    gen.scale_factor = 0.001;
    gen.seed = seed;
    GenerateTpcDatabase(&db, gen);
    CreatePaperIndexes(&db);
    ViewMaintainer maintainer(&db, MakePaperMinView());
    TpcUpdater updater(&db, seed + 1);
    const ModificationDriver driver = [&](size_t table_index) {
      if (table_index == 0) {
        updater.UpdatePartSuppSupplycost();
      } else {
        updater.UpdateSupplierNationkey();
      }
    };

    std::vector<CostFunctionPtr> fns = {
        std::make_shared<LinearCost>(0.3, 0.5),
        std::make_shared<LinearCost>(0.2, 6.0),
        std::make_shared<LinearCost>(0.1, 0.1),
        std::make_shared<LinearCost>(0.1, 0.1)};
    const CostModel model{std::move(fns)};
    const ArrivalSequence arrivals =
        ArrivalSequence::Uniform({1, 1, 0, 0}, 19);

    fault::ScopedFailpoint commit = fault::ScopedFailpoint::Probability(
        fault::kFpIvmCommit, 0.3, seed * 2 + 1);
    fault::ScopedFailpoint log_read = fault::ScopedFailpoint::Probability(
        fault::kFpStorageDeltaLogRead, 0.1, seed * 2 + 2);

    EngineRunnerOptions options;
    options.record_steps = false;
    options.retry.max_attempts = 3;
    options.metrics = &metrics;
    OnlinePolicy policy;
    const EngineTrace trace = RunOnEngine(maintainer, arrivals, model, 15.0,
                                          policy, driver, options);
    fault::FailpointRegistry::ThreadLocal().ExportMetrics(metrics);

    result.total_cost = trace.total_model_cost;
    result.violations = trace.violations;
    result.action_count = trace.action_count;
    sweep_values::kFailures.Set(result, static_cast<double>(trace.failures));
    sweep_values::kRetries.Set(result, static_cast<double>(trace.retries));
    sweep_values::kDegradedSteps.Set(
        result, static_cast<double>(trace.degraded_steps));
    sweep_values::kBackoffMs.Set(result, trace.total_backoff_ms);
    sweep_values::kEndedConsistent.Set(result,
                                       trace.ended_consistent ? 1.0 : 0.0);
  };
  return job;
}

TEST(SweepTest, FaultInjectedEngineSweepIsThreadCountInvariant) {
  std::vector<SweepJob> jobs;
  for (uint64_t seed : {101u, 202u, 303u, 404u}) {
    jobs.push_back(MakeEngineFaultJob("fault_sweep", seed));
  }

  const std::vector<SweepJobResult> sequential =
      RunSweep(jobs, SweepOptions{.threads = 1});
  const std::vector<SweepJobResult> parallel =
      RunSweep(jobs, SweepOptions{.threads = 4});

  ASSERT_EQ(sequential.size(), parallel.size());
  uint64_t total_failures = 0;
  for (size_t i = 0; i < sequential.size(); ++i) {
    SCOPED_TRACE(sequential[i].label);
    // Bit-identical decisions, failure schedules, and counters: arming
    // happens on the worker thread's own registry, so concurrency cannot
    // perturb a single injected fault.
    EXPECT_EQ(sequential[i].total_cost, parallel[i].total_cost);
    EXPECT_EQ(sequential[i].violations, parallel[i].violations);
    EXPECT_EQ(sequential[i].action_count, parallel[i].action_count);
    EXPECT_EQ(sequential[i].values, parallel[i].values);
    EXPECT_EQ(sequential[i].metrics.counters, parallel[i].metrics.counters);
    total_failures +=
        static_cast<uint64_t>(sweep_values::kFailures.Get(sequential[i]));
  }
  // The schedule must actually inject failures, or the test is vacuous.
  EXPECT_GT(total_failures, 0u);
}

TEST(SweepTest, EmptyJobListIsFine) {
  const std::vector<SweepJobResult> results =
      RunSweep({}, SweepOptions{.threads = 3});
  EXPECT_TRUE(results.empty());
}

}  // namespace
}  // namespace abivm
