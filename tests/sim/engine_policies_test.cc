// Additional engine-runner coverage: the REPLAN and PERIODIC policies on
// the real engine, aggregate-only traces, and vacuum interleaved with a
// live policy run.

#include <memory>

#include <gtest/gtest.h>

#include "core/naive.h"
#include "core/replan.h"
#include "sim/engine_runner.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

struct Fixture {
  Database db;
  std::unique_ptr<ViewMaintainer> maintainer;
  std::unique_ptr<TpcUpdater> updater;
  ModificationDriver driver;

  Fixture() {
    TpcGenOptions options;
    options.scale_factor = 0.001;
    GenerateTpcDatabase(&db, options);
    CreatePaperIndexes(&db);
    maintainer = std::make_unique<ViewMaintainer>(&db, MakePaperMinView());
    updater = std::make_unique<TpcUpdater>(&db, 44);
    driver = [this](size_t i) {
      if (i == 0) {
        updater->UpdatePartSuppSupplycost();
      } else {
        updater->UpdateSupplierNationkey();
      }
    };
  }
};

CostModel Model() {
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0),
      std::make_shared<LinearCost>(1e-6, 0.0),
      std::make_shared<LinearCost>(1e-6, 0.0)};
  return CostModel(std::move(fns));
}

ArrivalSequence Arrivals(TimeStep horizon) {
  return ArrivalSequence::Uniform({1, 1, 0, 0}, horizon);
}

TEST(EnginePoliciesTest, ReplanningPolicyOnRealEngine) {
  Fixture fx;
  ReplanOptions options;
  options.replan_period = 20;
  options.plan_horizon = 60;
  ReplanningPolicy policy(options);
  const EngineTrace trace = RunOnEngine(
      *fx.maintainer, Arrivals(99), Model(), 15.0, policy, fx.driver);
  EXPECT_EQ(trace.violations, 0u);
  EXPECT_GE(policy.plans_computed(), 5u);
  EXPECT_TRUE(fx.maintainer->IsConsistent());
  EXPECT_TRUE(fx.maintainer->state().SameContents(
      fx.maintainer->RecomputeAtWatermarks()));
}

TEST(EnginePoliciesTest, PeriodicPolicyOnRealEngine) {
  Fixture fx;
  PeriodicPolicy policy(10);
  const EngineTrace trace = RunOnEngine(
      *fx.maintainer, Arrivals(59), Model(), 50.0, policy, fx.driver);
  EXPECT_EQ(trace.violations, 0u);
  // Flushes every 10 steps plus the final refresh: 6 actions.
  EXPECT_EQ(trace.action_count, 6u);
}

TEST(EnginePoliciesTest, LeanTraceKeepsAggregatesOnly) {
  Fixture fx;
  NaivePolicy policy;
  const EngineTrace trace =
      RunOnEngine(*fx.maintainer, Arrivals(39), Model(), 15.0, policy,
                  fx.driver, {.record_steps = false});
  EXPECT_TRUE(trace.steps.empty());
  EXPECT_GT(trace.total_model_cost, 0.0);
  EXPECT_GT(trace.total_actual_ms, 0.0);
}

TEST(EnginePoliciesTest, VacuumDuringPolicyRunKeepsViewCorrect) {
  Fixture fx;
  NaivePolicy policy;
  policy.Reset(Model(), 15.0);
  // Hand-rolled loop so vacuum can interleave with policy decisions.
  for (TimeStep t = 0; t < 80; ++t) {
    fx.driver(0);
    fx.driver(1);
    const StateVec pending = fx.maintainer->PendingVec();
    const StateVec action = policy.Act(t, pending, {1, 1, 0, 0});
    for (size_t i = 0; i < action.size(); ++i) {
      if (action[i] > 0) {
        fx.maintainer->ProcessBatch(i, static_cast<size_t>(action[i]));
      }
    }
    if (t % 13 == 0) fx.maintainer->VacuumConsumed();
  }
  fx.maintainer->RefreshAll();
  EXPECT_TRUE(fx.maintainer->state().SameContents(
      fx.maintainer->RecomputeAtWatermarks()));
}

}  // namespace
}  // namespace abivm
