// Engine-runner failure semantics under injected faults: retry with
// deterministic simulated backoff, graceful degradation on persistent
// failure, and bit-identical traces for identical seeds + armed sites.
// Runs under the `fault` ctest label.

#include <memory>

#include <gtest/gtest.h>

#include "core/naive.h"
#include "core/online.h"
#include "fault/failpoint.h"
#include "fault/sites.h"
#include "sim/engine_runner.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

using fault::ScopedFailpoint;

struct Fixture {
  Database db;
  std::unique_ptr<ViewMaintainer> maintainer;
  std::unique_ptr<TpcUpdater> updater;
  ModificationDriver driver;

  Fixture() {
    TpcGenOptions options;
    options.scale_factor = 0.001;
    GenerateTpcDatabase(&db, options);
    CreatePaperIndexes(&db);
    maintainer = std::make_unique<ViewMaintainer>(&db, MakePaperMinView());
    updater = std::make_unique<TpcUpdater>(&db, 99);
    driver = [this](size_t table_index) {
      if (table_index == 0) {
        updater->UpdatePartSuppSupplycost();
      } else if (table_index == 1) {
        updater->UpdateSupplierNationkey();
      } else {
        ABIVM_CHECK_MSG(false, "no modifications for table " << table_index);
      }
    };
  }
};

CostModel PaperLikeModel() {
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0),
      std::make_shared<LinearCost>(0.1, 0.1),
      std::make_shared<LinearCost>(0.1, 0.1)};
  return CostModel(std::move(fns));
}

TEST(EngineFaultTest, OneShotFaultIsRetriedTransparently) {
  Fixture fx;
  const ArrivalSequence arrivals =
      ArrivalSequence::Uniform({1, 1, 0, 0}, 19);
  ScopedFailpoint guard = ScopedFailpoint::Once(fault::kFpIvmCommit);

  NaivePolicy policy;
  const EngineTrace trace =
      RunOnEngine(*fx.maintainer, arrivals, PaperLikeModel(), 15.0, policy,
                  fx.driver);

  EXPECT_EQ(trace.failures, 1u);
  EXPECT_EQ(trace.retries, 1u);
  EXPECT_EQ(trace.degraded_steps, 0u);
  EXPECT_TRUE(trace.ended_consistent);
  // First retry is charged the base backoff.
  EXPECT_DOUBLE_EQ(trace.total_backoff_ms, 1.0);
  // The one failed attempt is accounted as attempted (not committed)
  // work; nothing was abandoned -- the retry committed everything, so
  // the committed model cost is the full plan cost.
  EXPECT_EQ(trace.attempted_batches, 1u);
  EXPECT_DOUBLE_EQ(trace.abandoned_model_cost, 0.0);
  EXPECT_TRUE(fx.maintainer->IsConsistent());
  EXPECT_TRUE(fx.maintainer->state().SameContents(
      fx.maintainer->RecomputeAtWatermarks()));
}

TEST(EngineFaultTest, PersistentFaultDegradesGracefully) {
  Fixture fx;
  // One step (the forced final refresh) over a single modified table.
  const ArrivalSequence arrivals = ArrivalSequence::Uniform({1, 0, 0, 0}, 0);
  ScopedFailpoint guard = ScopedFailpoint::Always(fault::kFpIvmCommit);

  EngineRunnerOptions options;
  options.retry.max_attempts = 5;
  options.retry.backoff_base_ms = 1.0;
  options.retry.backoff_multiplier = 2.0;
  options.retry.backoff_cap_ms = 8.0;

  NaivePolicy policy;
  const EngineTrace trace =
      RunOnEngine(*fx.maintainer, arrivals, PaperLikeModel(), 15.0, policy,
                  fx.driver, options);

  // The single batch was tried max_attempts times, then abandoned; its
  // residue stays pending and the run reports the inconsistency instead
  // of crashing.
  ASSERT_EQ(trace.steps.size(), 1u);
  EXPECT_EQ(trace.failures, 5u);
  EXPECT_EQ(trace.retries, 4u);
  EXPECT_EQ(trace.degraded_steps, 1u);
  EXPECT_TRUE(trace.steps[0].degraded);
  // Backoff sequence 1, 2, 4, then capped at 8: the cap binds.
  EXPECT_DOUBLE_EQ(trace.total_backoff_ms, 1.0 + 2.0 + 4.0 + 8.0);
  // The degraded batch never committed: its modelled cost f_0(1) =
  // 0.3 * 1 + 0.5 is charged to abandoned_model_cost, NOT to the
  // committed total -- the run spent nothing it can show for.
  EXPECT_DOUBLE_EQ(trace.total_model_cost, 0.0);
  EXPECT_DOUBLE_EQ(trace.abandoned_model_cost, 0.8);
  EXPECT_DOUBLE_EQ(trace.steps[0].model_cost, 0.0);
  EXPECT_DOUBLE_EQ(trace.steps[0].abandoned_model_cost, 0.8);
  // The five attempts each burned real pipeline work before the commit
  // fault; it is visible as attempted (discarded) work.
  EXPECT_EQ(trace.attempted_batches, 5u);
  EXPECT_GT(trace.attempted_exec_stats.index_probes, 0u);
  EXPECT_GT(trace.total_attempted_ms, 0.0);
  EXPECT_GT(trace.steps[0].attempted_ms, 0.0);
  EXPECT_TRUE(trace.steps[0].attempted_stats ==
              trace.attempted_exec_stats);
  EXPECT_FALSE(trace.ended_consistent);
  EXPECT_FALSE(fx.maintainer->IsConsistent());
  EXPECT_EQ(fx.maintainer->PendingCount(0), 1u);

  // A failed run never corrupted the view: clearing the fault and
  // retrying the residue converges.
  fault::FailpointRegistry::ThreadLocal().DisarmAll();
  ASSERT_TRUE(fx.maintainer->RefreshAllChecked().ok());
  EXPECT_TRUE(fx.maintainer->state().SameContents(
      fx.maintainer->RecomputeAtWatermarks()));
}

TEST(EngineFaultTest, DegradedResidueIsReplannedNextStep) {
  Fixture fx;
  const ArrivalSequence arrivals =
      ArrivalSequence::Uniform({1, 1, 0, 0}, 14);
  // Commit fails often enough that some step exhausts two attempts.
  ScopedFailpoint guard =
      ScopedFailpoint::Probability(fault::kFpIvmCommit, 0.6, 1234);
  EngineRunnerOptions options;
  options.retry.max_attempts = 2;

  OnlinePolicy policy;
  const EngineTrace trace =
      RunOnEngine(*fx.maintainer, arrivals, PaperLikeModel(), 15.0, policy,
                  fx.driver, options);

  EXPECT_GT(trace.failures, 0u);
  // Residue abandoned at step t stays pending: the recorded pre_state of
  // a later step must carry it forward (pending never shrinks without a
  // successful batch).
  for (size_t s = 0; s + 1 < trace.steps.size(); ++s) {
    const EngineStepRecord& cur = trace.steps[s];
    const EngineStepRecord& next = trace.steps[s + 1];
    for (size_t i = 0; i < cur.pre_state.size(); ++i) {
      Count processed = cur.action[i];
      if (cur.degraded) {
        // Some of the acted-on residue may have been abandoned.
        processed = 0;
      }
      EXPECT_GE(next.pre_state[i] + processed,
                cur.pre_state[i] - cur.action[i])
          << "step " << s << " table " << i;
    }
  }
  // Whatever happened during the run, the view itself is uncorrupted:
  // its state matches the oracle at its own watermarks.
  fault::FailpointRegistry::ThreadLocal().DisarmAll();
  EXPECT_TRUE(fx.maintainer->state().SameContents(
      fx.maintainer->RecomputeAtWatermarks()));
  ASSERT_TRUE(fx.maintainer->RefreshAllChecked().ok());
  EXPECT_TRUE(fx.maintainer->IsConsistent());
}

// Same seed + same armed failpoints => bit-identical decision/failure
// traces, run after run (wall-clock timing fields excluded).
TEST(EngineFaultTest, FaultedRunsAreSeedDeterministic) {
  const auto run = [] {
    Fixture fx;
    const ArrivalSequence arrivals =
        ArrivalSequence::Uniform({1, 1, 0, 0}, 24);
    ScopedFailpoint commit =
        ScopedFailpoint::Probability(fault::kFpIvmCommit, 0.35, 777);
    ScopedFailpoint join =
        ScopedFailpoint::Probability(fault::kFpExecIndexJoin, 0.10, 778);
    EngineRunnerOptions options;
    options.retry.max_attempts = 3;
    OnlinePolicy policy;
    return RunOnEngine(*fx.maintainer, arrivals, PaperLikeModel(), 15.0,
                       policy, fx.driver, options);
  };

  const EngineTrace a = run();
  const EngineTrace b = run();

  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.degraded_steps, b.degraded_steps);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.action_count, b.action_count);
  EXPECT_EQ(a.ended_consistent, b.ended_consistent);
  EXPECT_DOUBLE_EQ(a.total_backoff_ms, b.total_backoff_ms);
  EXPECT_DOUBLE_EQ(a.total_model_cost, b.total_model_cost);
  EXPECT_EQ(a.exec_stats.rows_scanned, b.exec_stats.rows_scanned);
  EXPECT_EQ(a.exec_stats.output_rows, b.exec_stats.output_rows);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t s = 0; s < a.steps.size(); ++s) {
    EXPECT_EQ(a.steps[s].action, b.steps[s].action) << "t=" << s;
    EXPECT_EQ(a.steps[s].pre_state, b.steps[s].pre_state) << "t=" << s;
    EXPECT_EQ(a.steps[s].failures, b.steps[s].failures) << "t=" << s;
    EXPECT_EQ(a.steps[s].retries, b.steps[s].retries) << "t=" << s;
    EXPECT_EQ(a.steps[s].degraded, b.steps[s].degraded) << "t=" << s;
    EXPECT_DOUBLE_EQ(a.steps[s].backoff_ms, b.steps[s].backoff_ms)
        << "t=" << s;
  }
  // The schedule must actually contain failures for this to mean much.
  EXPECT_GT(a.failures, 0u);
}

TEST(EngineFaultTest, BudgetAwareRetryAbandonsEarly) {
  Fixture fx;
  // One step (the forced final refresh) over a single modified table:
  // the batch's modelled cost is f_0(1) = 0.3 * 1 + 0.5 = 0.8.
  const ArrivalSequence arrivals = ArrivalSequence::Uniform({1, 0, 0, 0}, 0);
  ScopedFailpoint guard = ScopedFailpoint::Always(fault::kFpIvmCommit);

  obs::MetricRegistry metrics;
  EngineRunnerOptions options;
  options.metrics = &metrics;
  options.retry.max_attempts = 50;  // far beyond what the budget allows
  options.retry.budget_aware = true;

  NaivePolicy policy;
  const EngineTrace trace = RunOnEngine(*fx.maintainer, arrivals,
                                        PaperLikeModel(), /*budget=*/2.0,
                                        policy, fx.driver, options);

  // Attempted model cost runs 0.8, 1.6, 2.4, ...; the rule fires as soon
  // as it EXCEEDS the step bound C = 2.0, i.e. after the third failure --
  // not after 50 attempts.
  EXPECT_EQ(trace.failures, 3u);
  EXPECT_EQ(trace.retries, 2u);
  EXPECT_EQ(trace.degraded_steps, 1u);
  EXPECT_EQ(trace.retry_budget_abandons, 1u);
  ASSERT_EQ(trace.steps.size(), 1u);
  EXPECT_EQ(trace.steps[0].retry_budget_abandons, 1u);
  EXPECT_DOUBLE_EQ(trace.total_backoff_ms, 1.0 + 2.0);
  EXPECT_DOUBLE_EQ(trace.abandoned_model_cost, 0.8);
  EXPECT_FALSE(trace.ended_consistent);
  EXPECT_EQ(metrics.Snapshot().counters.at("engine.retry_budget_abandons"),
            1u);

  // The abandoned residue is recoverable once the fault clears.
  fault::FailpointRegistry::ThreadLocal().DisarmAll();
  ASSERT_TRUE(fx.maintainer->RefreshAllChecked().ok());
  EXPECT_TRUE(fx.maintainer->state().SameContents(
      fx.maintainer->RecomputeAtWatermarks()));
}

TEST(EngineFaultTest, BudgetAwareRuleToleratesExactBudgetSpend) {
  Fixture fx;
  const ArrivalSequence arrivals = ArrivalSequence::Uniform({1, 0, 0, 0}, 0);
  ScopedFailpoint guard = ScopedFailpoint::Always(fault::kFpIvmCommit);

  EngineRunnerOptions options;
  options.retry.max_attempts = 50;
  options.retry.budget_aware = true;

  NaivePolicy policy;
  // Budget equals one attempt's modelled cost exactly: the rule fires on
  // EXCEEDS, not reaches (same epsilon-tolerant comparison as fullness),
  // so the first failure at 0.8 == C does not abandon; the second does.
  const EngineTrace trace = RunOnEngine(*fx.maintainer, arrivals,
                                        PaperLikeModel(), /*budget=*/0.8,
                                        policy, fx.driver, options);
  EXPECT_EQ(trace.failures, 2u);
  EXPECT_EQ(trace.retries, 1u);
  EXPECT_EQ(trace.retry_budget_abandons, 1u);
}

TEST(EngineFaultTest, BudgetAwareOffPreservesMaxAttemptsBehavior) {
  Fixture fx;
  const ArrivalSequence arrivals = ArrivalSequence::Uniform({1, 0, 0, 0}, 0);
  ScopedFailpoint guard = ScopedFailpoint::Always(fault::kFpIvmCommit);

  EngineRunnerOptions options;
  options.retry.max_attempts = 6;  // budget_aware defaults to false

  NaivePolicy policy;
  const EngineTrace trace = RunOnEngine(*fx.maintainer, arrivals,
                                        PaperLikeModel(), /*budget=*/2.0,
                                        policy, fx.driver, options);
  // With the rule off, the runner retries all the way to max_attempts
  // even though the attempted model cost blew past the budget.
  EXPECT_EQ(trace.failures, 6u);
  EXPECT_EQ(trace.retries, 5u);
  EXPECT_EQ(trace.retry_budget_abandons, 0u);
  EXPECT_EQ(trace.degraded_steps, 1u);
}

TEST(EngineFaultTest, FaultCountersExportThroughMetrics) {
  Fixture fx;
  const ArrivalSequence arrivals =
      ArrivalSequence::Uniform({1, 1, 0, 0}, 9);
  ScopedFailpoint guard = ScopedFailpoint::Once(fault::kFpIvmCommit);

  obs::MetricRegistry metrics;
  EngineRunnerOptions options;
  options.metrics = &metrics;
  NaivePolicy policy;
  const EngineTrace trace =
      RunOnEngine(*fx.maintainer, arrivals, PaperLikeModel(), 15.0, policy,
                  fx.driver, options);
  fault::FailpointRegistry::ThreadLocal().ExportMetrics(metrics);

  const obs::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters.at("engine.failures"), trace.failures);
  EXPECT_EQ(snap.counters.at("engine.retries"), trace.retries);
  EXPECT_EQ(snap.counters.at("engine.degraded_steps"), 0u);
  // Attempted (discarded) work exports under its own counters, so retry
  // cost stays visible next to the committed engine.* numbers.
  EXPECT_EQ(snap.counters.at("engine.attempted_batches"), 1u);
  EXPECT_EQ(snap.counters.at("engine.attempted_index_probes"),
            trace.attempted_exec_stats.index_probes);
  EXPECT_EQ(snap.counters.at("engine.attempted_rows_scanned"),
            trace.attempted_exec_stats.rows_scanned);
  EXPECT_EQ(snap.timers.at("engine.attempted_batch_ms").count, 1u);
  EXPECT_EQ(snap.counters.at(std::string("fault.triggers.") +
                             fault::kFpIvmCommit),
            1u);
  EXPECT_GE(snap.counters.at(std::string("fault.hits.") +
                             fault::kFpIvmCommit),
            1u);
}

}  // namespace
}  // namespace abivm
