#include "sim/report.h"

#include <sstream>

#include <gtest/gtest.h>

namespace abivm {
namespace {

TEST(ReportTableTest, AlignedOutputContainsAllCells) {
  ReportTable table({"T", "NAIVE", "ONLINE"});
  table.AddRow({"100", "12.5", "7.25"});
  table.AddRow({"1000", "125.0", "70.5"});
  std::ostringstream oss;
  table.PrintAligned(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("NAIVE"), std::string::npos);
  EXPECT_NE(out.find("125.0"), std::string::npos);
  EXPECT_NE(out.find("7.25"), std::string::npos);
}

TEST(ReportTableTest, CsvOutput) {
  ReportTable table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream oss;
  table.PrintCsv(oss);
  EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(ReportTableTest, NumFormatsPrecision) {
  EXPECT_EQ(ReportTable::Num(1.23456, 2), "1.23");
  EXPECT_EQ(ReportTable::Num(10.0, 0), "10");
}

}  // namespace
}  // namespace abivm
