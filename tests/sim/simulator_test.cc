#include "sim/simulator.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/naive.h"

namespace abivm {
namespace {

ProblemInstance MakeInstance(double budget) {
  std::vector<CostFunctionPtr> fns = {std::make_shared<LinearCost>(1.0, 0.0)};
  return ProblemInstance{CostModel(std::move(fns)),
                         ArrivalSequence::Uniform({2}, 5), budget};
}

// A policy that never acts; only the forced refresh at T runs.
class DoNothingPolicy final : public Policy {
 public:
  void Reset(const CostModel&, double) override {}
  StateVec Act(TimeStep, const StateVec& pre_state,
               const StateVec&) override {
    return ZeroVec(pre_state.size());
  }
  std::string name() const override { return "NOOP"; }
};

TEST(SimulatorTest, ForcesFinalRefresh) {
  const ProblemInstance instance = MakeInstance(/*budget=*/100.0);
  DoNothingPolicy noop;
  const Trace trace = Simulate(instance, noop, {.strict = true});
  EXPECT_EQ(trace.violations, 0u);
  EXPECT_EQ(trace.action_count, 1u);
  EXPECT_DOUBLE_EQ(trace.total_cost, 12.0);  // 6 steps * 2 arrivals
  EXPECT_EQ(trace.steps.back().action, (StateVec{12}));
  EXPECT_EQ(trace.steps.back().post_state, (StateVec{0}));
}

TEST(SimulatorTest, RecordsViolationsInNonStrictMode) {
  const ProblemInstance instance = MakeInstance(/*budget=*/3.0);
  DoNothingPolicy noop;
  const Trace trace = Simulate(instance, noop);
  // Backlog 2,4,6,8,10 at t=0..4; full (> 3) from t = 1 through 4.
  EXPECT_EQ(trace.violations, 4u);
}

TEST(SimulatorTest, StepRecordsAreInternallyConsistent) {
  const ProblemInstance instance = MakeInstance(/*budget=*/5.0);
  NaivePolicy naive;
  const Trace trace = Simulate(instance, naive, {.strict = true});
  ASSERT_EQ(trace.steps.size(), 6u);
  StateVec state = ZeroVec(1);
  double total = 0.0;
  for (const StepRecord& step : trace.steps) {
    EXPECT_EQ(step.pre_state, AddVec(state, step.arrivals));
    EXPECT_EQ(step.post_state, SubVec(step.pre_state, step.action));
    EXPECT_DOUBLE_EQ(step.action_cost,
                     instance.cost_model.TotalCost(step.action));
    total += step.action_cost;
    state = step.post_state;
  }
  EXPECT_DOUBLE_EQ(total, trace.total_cost);
}

TEST(SimulatorTest, RecordStepsFalseKeepsAggregatesOnly) {
  const ProblemInstance instance = MakeInstance(/*budget=*/5.0);
  NaivePolicy naive;
  const Trace lean =
      Simulate(instance, naive, {.strict = true, .record_steps = false});
  const Trace full = Simulate(instance, naive, {.strict = true});
  EXPECT_TRUE(lean.steps.empty());
  EXPECT_DOUBLE_EQ(lean.total_cost, full.total_cost);
  EXPECT_EQ(lean.action_count, full.action_count);
}

TEST(TraceTest, AsPlanRoundTripsThroughValidation) {
  const ProblemInstance instance = MakeInstance(/*budget=*/5.0);
  NaivePolicy naive;
  const Trace trace = Simulate(instance, naive, {.strict = true});
  const MaintenancePlan plan = trace.AsPlan(1, 5);
  EXPECT_TRUE(ValidatePlan(instance, plan).ok());
  EXPECT_NEAR(plan.TotalCost(instance.cost_model), trace.total_cost, 1e-9);
}

}  // namespace
}  // namespace abivm
