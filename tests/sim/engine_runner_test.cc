// Integration: the real-engine runner and the cost-model simulator must
// take identical decisions (actions depend only on the modelled state),
// and the engine must keep the view correct throughout.

#include "sim/engine_runner.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/astar.h"
#include "core/naive.h"
#include "core/online.h"
#include "core/plan_policies.h"
#include "sim/simulator.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

struct Fixture {
  Database db;
  std::unique_ptr<ViewMaintainer> maintainer;
  std::unique_ptr<TpcUpdater> updater;
  ModificationDriver driver;

  Fixture() {
    TpcGenOptions options;
    options.scale_factor = 0.001;
    GenerateTpcDatabase(&db, options);
    CreatePaperIndexes(&db);
    maintainer = std::make_unique<ViewMaintainer>(&db, MakePaperMinView());
    updater = std::make_unique<TpcUpdater>(&db, 99);
    driver = [this](size_t table_index) {
      // View table order: 0 = partsupp, 1 = supplier.
      if (table_index == 0) {
        updater->UpdatePartSuppSupplycost();
      } else if (table_index == 1) {
        updater->UpdateSupplierNationkey();
      } else {
        ABIVM_CHECK_MSG(false, "no modifications for table " << table_index);
      }
    };
  }
};

// Modelled costs: partsupp cheap linear, supplier expensive with setup.
CostModel PaperLikeModel() {
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.3, 0.5),   // partsupp
      std::make_shared<LinearCost>(0.2, 6.0),   // supplier
      std::make_shared<LinearCost>(0.1, 0.1),   // nation (never modified)
      std::make_shared<LinearCost>(0.1, 0.1)};  // region (never modified)
  return CostModel(std::move(fns));
}

ArrivalSequence PaperArrivals(TimeStep horizon) {
  return ArrivalSequence::Uniform({1, 1, 0, 0}, horizon);
}

TEST(EngineRunnerTest, NaiveActionsMatchSimulatorExactly) {
  Fixture fx;
  const ProblemInstance instance{PaperLikeModel(), PaperArrivals(39), 15.0};

  NaivePolicy sim_policy;
  const Trace sim = Simulate(instance, sim_policy, {.strict = true});

  NaivePolicy engine_policy;
  const EngineTrace engine =
      RunOnEngine(*fx.maintainer, instance.arrivals, instance.cost_model,
                  instance.budget, engine_policy, fx.driver);

  ASSERT_EQ(engine.steps.size(), sim.steps.size());
  for (size_t s = 0; s < sim.steps.size(); ++s) {
    EXPECT_EQ(engine.steps[s].action, sim.steps[s].action) << "t=" << s;
    EXPECT_EQ(engine.steps[s].pre_state, sim.steps[s].pre_state);
  }
  EXPECT_DOUBLE_EQ(engine.total_model_cost, sim.total_cost);
  EXPECT_EQ(engine.violations, 0u);
  EXPECT_GT(engine.total_actual_ms, 0.0);
}

TEST(EngineRunnerTest, OnlineOnEngineKeepsViewCorrect) {
  Fixture fx;
  const ProblemInstance instance{PaperLikeModel(), PaperArrivals(59), 15.0};
  OnlinePolicy policy;
  const EngineTrace trace =
      RunOnEngine(*fx.maintainer, instance.arrivals, instance.cost_model,
                  instance.budget, policy, fx.driver);
  EXPECT_EQ(trace.violations, 0u);
  EXPECT_TRUE(fx.maintainer->IsConsistent());
  EXPECT_TRUE(fx.maintainer->state().SameContents(
      fx.maintainer->RecomputeAtWatermarks()));
}

TEST(EngineRunnerTest, OptimalPlanExecutesOnEngine) {
  Fixture fx;
  const ProblemInstance instance{PaperLikeModel(), PaperArrivals(29), 15.0};
  const PlanSearchResult optimal = FindOptimalLgmPlan(instance);
  PrecomputedPlanPolicy policy(optimal.plan, "OPT_LGM");
  const EngineTrace trace =
      RunOnEngine(*fx.maintainer, instance.arrivals, instance.cost_model,
                  instance.budget, policy, fx.driver);
  EXPECT_EQ(policy.deviations(), 0u);
  EXPECT_NEAR(trace.total_model_cost, optimal.cost, 1e-9);
  EXPECT_TRUE(fx.maintainer->IsConsistent());
}

TEST(EngineRunnerTest, CleanRunHasNoAttemptedOrAbandonedWork) {
  Fixture fx;
  const ProblemInstance instance{PaperLikeModel(), PaperArrivals(39), 15.0};
  NaivePolicy policy;
  const EngineTrace trace =
      RunOnEngine(*fx.maintainer, instance.arrivals, instance.cost_model,
                  instance.budget, policy, fx.driver);
  EXPECT_EQ(trace.attempted_batches, 0u);
  EXPECT_DOUBLE_EQ(trace.abandoned_model_cost, 0.0);
  EXPECT_DOUBLE_EQ(trace.total_attempted_ms, 0.0);
  EXPECT_TRUE(trace.attempted_exec_stats == ExecStats{});
  // Per-step stats sum to the whole-run committed totals.
  ExecStats from_steps;
  double model_from_steps = 0.0;
  for (const EngineStepRecord& step : trace.steps) {
    from_steps += step.stats;
    model_from_steps += step.model_cost;
    EXPECT_TRUE(step.attempted_stats == ExecStats{});
    EXPECT_DOUBLE_EQ(step.abandoned_model_cost, 0.0);
  }
  EXPECT_TRUE(from_steps == trace.exec_stats);
  EXPECT_DOUBLE_EQ(model_from_steps, trace.total_model_cost);
}

TEST(EngineRunnerTest, MetricsRunExportsOperatorProfiles) {
  Fixture fx;
  const ProblemInstance instance{PaperLikeModel(), PaperArrivals(39), 15.0};
  OnlinePolicy policy;
  obs::MetricRegistry registry;
  EngineRunnerOptions options;
  options.metrics = &registry;
  const EngineTrace trace =
      RunOnEngine(*fx.maintainer, instance.arrivals, instance.cost_model,
                  instance.budget, policy, fx.driver, options);
  // The registry attachment is scoped to the run.
  EXPECT_EQ(fx.maintainer->metrics(), nullptr);
  EXPECT_FALSE(fx.maintainer->profiling_enabled());
  // Per-operator totals cover exactly the committed work.
  ASSERT_FALSE(trace.operator_profiles.empty());
  ExecStats from_profiles;
  for (const PipelineProfile& profile : trace.operator_profiles) {
    from_profiles += profile.TotalStats();
  }
  EXPECT_TRUE(from_profiles == trace.exec_stats);
  // Interned per-stage timers fired, and the committed counters are out.
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  const auto timer = snapshot.timers.find("ivm.op.partsupp.s0.prepare");
  ASSERT_NE(timer, snapshot.timers.end());
  EXPECT_GT(timer->second.count, 0u);
  EXPECT_EQ(snapshot.counters.at("engine.output_rows"),
            trace.exec_stats.output_rows);
  const auto attempted = snapshot.counters.find("engine.attempted_batches");
  EXPECT_TRUE(attempted == snapshot.counters.end() ||
              attempted->second == 0u);
}

TEST(EngineRunnerTest, AsymmetricPolicyBeatsNaiveOnActualWork) {
  // On the real engine, ONLINE's asymmetric batching should do less
  // physical work than NAIVE for the same workload: NAIVE flushes the
  // supplier delta (a full partsupp scan) every time the constraint
  // trips, ONLINE keeps batching it.
  Fixture naive_fx;
  Fixture online_fx;
  const ProblemInstance instance{PaperLikeModel(), PaperArrivals(79), 15.0};

  NaivePolicy naive;
  const EngineTrace naive_trace =
      RunOnEngine(*naive_fx.maintainer, instance.arrivals,
                  instance.cost_model, instance.budget, naive, naive_fx.driver);
  OnlinePolicy online;
  const EngineTrace online_trace =
      RunOnEngine(*online_fx.maintainer, instance.arrivals,
                  instance.cost_model, instance.budget, online,
                  online_fx.driver);

  EXPECT_LT(online_trace.total_model_cost, naive_trace.total_model_cost);
}

}  // namespace
}  // namespace abivm
