// Concurrency torture for the serving subsystem, designed to run under
// TSan and ASan (scripts/check.sh runs `ctest -L serve` under both):
//
//   * Concurrent producers + stale/fresh readers against the single
//     maintenance writer. Every published snapshot is checked against
//     the recompute oracle ON the maintenance thread (the publish hook
//     runs at publication, when the maintainer's watermarks equal the
//     snapshot's). Readers re-digest every snapshot they hold -- a torn
//     or mutated read would break the digest -- and check per-reader
//     epoch monotonicity.
//
//   * Each serve.* failpoint armed in turn (on the thread that owns its
//     registry) under concurrent load: fresh reads may fail, stale
//     reads must keep serving valid epochs, and after disarming the
//     server must serve fresh again -- degradation, never corruption.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/online.h"
#include "cost/cost_function.h"
#include "fault/failpoint.h"
#include "fault/sites.h"
#include "serve/view_server.h"
#include "tpc/tpc_gen.h"
#include "tpc/views.h"

namespace abivm {
namespace {

using serve::ServeOptions;
using serve::SnapshotPtr;
using serve::ViewServer;
using serve::ViewSnapshot;
using serve::WriteOp;

std::unique_ptr<Database> MakeTpcDatabase() {
  auto db = std::make_unique<Database>();
  TpcGenOptions options;
  options.scale_factor = 0.001;
  GenerateTpcDatabase(db.get(), options);
  CreatePaperIndexes(db.get());
  return db;
}

CostModel PaperCostModel() {
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.002, 0.01),
      std::make_shared<LinearCost>(0.01, 0.40),
      std::make_shared<LinearCost>(1e-6, 0.0),
      std::make_shared<LinearCost>(1e-6, 0.0)};
  return CostModel(std::move(fns));
}

CostModel TwoWayCostModel() {
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.002, 0.01),
      std::make_shared<LinearCost>(0.01, 0.40)};
  return CostModel(std::move(fns));
}

// Seed-deterministic single-row updates (see serve_test.cc).
WriteOp MakeSupplycostUpdate(uint64_t seed) {
  return [seed](Database& db) -> Status {
    Rng rng(seed);
    Table& partsupp = db.table(kPartSupp);
    const RowId id = partsupp.SampleLiveRow(rng);
    Row row = partsupp.RowAt(id).row;
    const size_t cost_col = partsupp.schema().ColumnIndex("ps_supplycost");
    row[cost_col] = Value(rng.UniformDouble(1.0, 1000.0));
    auto result = db.TryApplyUpdate(partsupp, id, std::move(row));
    return result.ok() ? Status::Ok() : result.status();
  };
}

WriteOp MakeNationkeyUpdate(uint64_t seed) {
  return [seed](Database& db) -> Status {
    Rng rng(seed);
    Table& supplier = db.table(kSupplier);
    const RowId id = supplier.SampleLiveRow(rng);
    Row row = supplier.RowAt(id).row;
    const size_t nation_col = supplier.schema().ColumnIndex("s_nationkey");
    row[nation_col] = Value(rng.UniformInt(0, 24));
    auto result = db.TryApplyUpdate(supplier, id, std::move(row));
    return result.ok() ? Status::Ok() : result.status();
  };
}

TEST(ServeTortureTest, ConcurrentReadersNeverSeeTornOrStaleWrongViews) {
  constexpr int kProducers = 2;
  constexpr int kOpsPerProducer = 60;
  constexpr int kReaders = 4;
  constexpr int kReadsPerReader = 40;

  auto server = std::make_unique<ViewServer>(MakeTpcDatabase(),
                                             ServeOptions{});
  const size_t min_view = server->AddView(
      MakePaperMinView(), std::make_unique<OnlinePolicy>(), PaperCostModel());
  const size_t join_view = server->AddView(MakeTwoWayJoinView(),
                                           std::make_unique<OnlinePolicy>(),
                                           TwoWayCostModel());

  // Oracle at the publication site: the hook runs on the maintenance
  // thread the instant a snapshot is published, when the maintainer's
  // watermarks are exactly the snapshot's frontier.
  std::atomic<uint64_t> oracle_checks{0};
  server->SetPublishHook([&](size_t view, const ViewSnapshot& snap,
                             const ViewMaintainer& m) {
    auto oracle = m.RecomputeAtWatermarksChecked();
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    EXPECT_TRUE(snap.state.SameContents(oracle.value()))
        << "view " << view << " epoch " << snap.epoch
        << " diverges from the recompute oracle at its own frontier";
    EXPECT_EQ(snap.digest, serve::DigestViewState(snap.state));
    oracle_checks.fetch_add(1);
  });
  server->Start();

  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> threads;

  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kOpsPerProducer; ++i) {
        const uint64_t seed =
            10'000 + static_cast<uint64_t>(p) * 1000 + i;
        const WriteOp op = (p % 2 == 0) ? MakeSupplycostUpdate(seed)
                                        : MakeNationkeyUpdate(seed);
        ASSERT_TRUE(server->Ingest(op).ok());
      }
    });
  }

  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      std::vector<uint64_t> last_epoch(server->num_views(), 0);
      for (int i = 0; i < kReadsPerReader && !stop_readers.load(); ++i) {
        const size_t view = (i % 2 == 0) ? min_view : join_view;
        SnapshotPtr snap;
        if ((i + r) % 4 == 0) {
          auto fresh = server->ReadFresh(view);
          ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
          snap = fresh.value();
        } else {
          snap = server->ReadStale(view);
        }
        ASSERT_NE(snap, nullptr);
        // Torn-read detector: the digest was computed at publication;
        // recomputing it over what this reader holds must agree.
        EXPECT_EQ(snap->digest, serve::DigestViewState(snap->state));
        // Epochs never run backwards for any single reader.
        EXPECT_GE(snap->epoch, last_epoch[view]);
        last_epoch[view] = snap->epoch;
      }
    });
  }

  for (std::thread& t : threads) t.join();
  stop_readers.store(true);

  // Final fresh read: everything ingested is visible.
  auto final_fresh = server->ReadFresh(min_view);
  ASSERT_TRUE(final_fresh.ok());
  server->Stop();
  EXPECT_TRUE(server->view_maintainer(min_view).IsConsistent());
  EXPECT_TRUE(server->view_maintainer(join_view).IsConsistent());
  EXPECT_EQ(final_fresh.value()->positions[0],
            server->view_maintainer(min_view).watermark_position(0));
  EXPECT_GT(oracle_checks.load(), 0u);
}

TEST(ServeTortureTest, EachServeFailpointDegradesGracefully) {
  for (const char* site : fault::kServeFailpointSites) {
    SCOPED_TRACE(site);
    const bool producer_side =
        std::string(site) == fault::kFpServeEnqueue;

    auto server = std::make_unique<ViewServer>(MakeTpcDatabase(),
                                               ServeOptions{});
    server->AddView(MakePaperMinView(), std::make_unique<OnlinePolicy>(),
                    PaperCostModel());
    server->Start();

    if (!producer_side) {
      ASSERT_TRUE(server
                      ->RunOnMaintenanceThread([site] {
                        fault::FailpointRegistry::ThreadLocal()
                            .Get(site)
                            .ArmProbability(0.4, 42);
                      })
                      .ok());
    }

    std::atomic<int> ingest_ok{0};
    std::atomic<int> fresh_ok{0};
    std::atomic<int> fresh_failed{0};
    std::vector<std::thread> threads;

    threads.emplace_back([&] {
      // Producer; owns the serve.enqueue arming when it is the site
      // under test (failpoint registries are thread-local).
      std::unique_ptr<fault::ScopedFailpoint> fp;
      if (producer_side) {
        fp = std::make_unique<fault::ScopedFailpoint>(
            fault::ScopedFailpoint::Probability(site, 0.4, 42));
      }
      for (int i = 0; i < 50; ++i) {
        if (server->Ingest(MakeSupplycostUpdate(20'000 + i)).ok()) {
          ingest_ok.fetch_add(1);
        }
      }
    });

    for (int r = 0; r < 3; ++r) {
      threads.emplace_back([&] {
        for (int i = 0; i < 15; ++i) {
          // Stale reads MUST always serve a valid epoch, faults or not.
          SnapshotPtr stale = server->ReadStale(0);
          ASSERT_NE(stale, nullptr);
          EXPECT_EQ(stale->digest, serve::DigestViewState(stale->state));
          // Fresh reads may fail while the flush path is under fault
          // injection; they must fail with an error, not corruption.
          auto fresh = server->ReadFresh(0);
          if (fresh.ok()) {
            EXPECT_EQ(fresh.value()->digest,
                      serve::DigestViewState(fresh.value()->state));
            fresh_ok.fetch_add(1);
          } else {
            fresh_failed.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();

    if (!producer_side) {
      ASSERT_TRUE(server
                      ->RunOnMaintenanceThread([site] {
                        auto& fp =
                            fault::FailpointRegistry::ThreadLocal().Get(
                                site);
                        fp.Disarm();
                        fp.ResetCounters();
                      })
                      .ok());
    }
    // Disarmed, the server serves fresh again -- degradation was
    // transient and nothing corrupted.
    auto recovered = server->ReadFresh(0);
    EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(recovered.value()->digest,
              serve::DigestViewState(recovered.value()->state));
    EXPECT_GT(ingest_ok.load(), 0);
    server->Stop();
    EXPECT_TRUE(server->view_maintainer(0).state().SameContents(
        server->view_maintainer(0).RecomputeAtWatermarks()));
  }
}

}  // namespace
}  // namespace abivm
