// Functional coverage of the serving subsystem: bounded-staleness and
// fresh reads, ReadFresh coalescing (k concurrent readers -> ONE flush,
// counter-verified), ingest backpressure in both modes, and graceful
// degradation under each serve.* failpoint.

#include "serve/view_server.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/online.h"
#include "cost/cost_function.h"
#include "fault/failpoint.h"
#include "fault/sites.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

using serve::BackpressureMode;
using serve::ServeOptions;
using serve::SnapshotPtr;
using serve::ViewServer;
using serve::ViewSnapshot;
using serve::WriteOp;

std::unique_ptr<Database> MakeTpcDatabase() {
  auto db = std::make_unique<Database>();
  TpcGenOptions options;
  options.scale_factor = 0.001;
  GenerateTpcDatabase(db.get(), options);
  CreatePaperIndexes(db.get());
  return db;
}

// The paper view's cost model (cheap indexed partsupp deltas, expensive
// scan-side supplier deltas, static dimensions).
CostModel PaperCostModel() {
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.002, 0.01),
      std::make_shared<LinearCost>(0.01, 0.40),
      std::make_shared<LinearCost>(1e-6, 0.0),
      std::make_shared<LinearCost>(1e-6, 0.0)};
  return CostModel(std::move(fns));
}

// A deterministic ingest op: updates one random live PARTSUPP row's
// supplycost, with all randomness derived from `seed` and the database
// state at apply time -- the same op sequence applied in the same order
// to an identical database produces an identical database.
WriteOp MakeSupplycostUpdate(uint64_t seed) {
  return [seed](Database& db) -> Status {
    Rng rng(seed);
    Table& partsupp = db.table(kPartSupp);
    const RowId id = partsupp.SampleLiveRow(rng);
    Row row = partsupp.RowAt(id).row;
    const size_t cost_col = partsupp.schema().ColumnIndex("ps_supplycost");
    row[cost_col] = Value(rng.UniformDouble(1.0, 1000.0));
    auto result = db.TryApplyUpdate(partsupp, id, std::move(row));
    return result.ok() ? Status::Ok() : result.status();
  };
}

std::unique_ptr<ViewServer> MakeServer(ServeOptions options) {
  auto server = std::make_unique<ViewServer>(MakeTpcDatabase(), options);
  server->AddView(MakePaperMinView(), std::make_unique<OnlinePolicy>(),
                  PaperCostModel());
  return server;
}

uint64_t CounterValue(ViewServer& server, const std::string& name) {
  return server.metrics().counter(name).value();
}

TEST(ViewServerTest, StaleReadServesInitialEpochAfterStart) {
  auto server = MakeServer(ServeOptions{});
  server->Start();
  SnapshotPtr snap = server->ReadStale(0);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch, 1u);
  EXPECT_EQ(snap->digest, serve::DigestViewState(snap->state));
  // The initial frontier: nothing consumed, all versions at bulk load.
  for (size_t pos : snap->positions) EXPECT_EQ(pos, 0u);
  server->Stop();
}

TEST(ViewServerTest, FreshReadMatchesSequentialReference) {
  constexpr int kOps = 40;
  auto server = MakeServer(ServeOptions{});
  server->Start();
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(server->Ingest(MakeSupplycostUpdate(1000 + i)).ok());
  }
  auto fresh = server->ReadFresh(0);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  const SnapshotPtr snap = fresh.value();
  EXPECT_EQ(snap->digest, serve::DigestViewState(snap->state));
  server->Stop();

  // Post-stop, the watermark frontier of the fresh snapshot must sit at
  // the head of every delta log (all 40 ops flushed).
  const ViewMaintainer& m = server->view_maintainer(0);
  EXPECT_TRUE(m.IsConsistent());
  EXPECT_EQ(snap->positions[0], kOps);

  // A sequential reference run over an identical database: same ops, in
  // ingest order, then a from-scratch view. Ops are applied FIFO by the
  // single maintenance thread, so the end states must agree exactly.
  auto ref_db = MakeTpcDatabase();
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(MakeSupplycostUpdate(1000 + i)(*ref_db).ok());
  }
  ViewMaintainer reference(ref_db.get(), MakePaperMinView());
  EXPECT_TRUE(snap->state.SameContents(reference.state()));
}

TEST(ViewServerTest, ConcurrentFreshReadsCoalesceIntoOneFlush) {
  constexpr int kReaders = 8;
  auto server = MakeServer(ServeOptions{});
  server->Start();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(server->Ingest(MakeSupplycostUpdate(2000 + i)).ok());
  }
  const uint64_t flushes_before = CounterValue(*server, "serve.flushes");

  // Park the maintenance thread in a control op so every reader can
  // queue a ticket before any flush runs.
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::thread blocker([&] {
    ASSERT_TRUE(server
                    ->RunOnMaintenanceThread([&] {
                      entered.store(true);
                      while (!release.load()) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                      }
                    })
                    .ok());
  });
  while (!entered.load()) std::this_thread::yield();

  std::vector<std::thread> readers;
  std::atomic<int> served{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      auto fresh = server->ReadFresh(0);
      ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
      EXPECT_EQ(fresh.value()->digest,
                serve::DigestViewState(fresh.value()->state));
      served.fetch_add(1);
    });
  }
  while (server->fresh_pending() < kReaders) std::this_thread::yield();

  release.store(true);
  blocker.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(served.load(), kReaders);

  // The group-refresh guarantee: one flush covered all k readers.
  EXPECT_EQ(CounterValue(*server, "serve.flushes"), flushes_before + 1);
  EXPECT_GE(CounterValue(*server, "serve.fresh_served"),
            static_cast<uint64_t>(kReaders));
  server->Stop();
}

TEST(ViewServerTest, RejectBackpressureBouncesAtHighWatermark) {
  ServeOptions options;
  options.ingest_high_watermark = 4;
  options.backpressure = BackpressureMode::kReject;
  auto server = MakeServer(options);
  server->Start();

  // Park the loop so drained ops cannot make room.
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::thread blocker([&] {
    ASSERT_TRUE(server
                    ->RunOnMaintenanceThread([&] {
                      entered.store(true);
                      while (!release.load()) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                      }
                    })
                    .ok());
  });
  while (!entered.load()) std::this_thread::yield();

  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(server->Ingest(MakeSupplycostUpdate(3000 + i)).ok());
  }
  const Status rejected = server->Ingest(MakeSupplycostUpdate(3999));
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_GE(CounterValue(*server, "serve.ingest_rejected"), 1u);

  release.store(true);
  blocker.join();
  // Room opens once the loop drains; ingest works again.
  Status retried = server->Ingest(MakeSupplycostUpdate(3999));
  for (int spin = 0; !retried.ok() && spin < 1000; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    retried = server->Ingest(MakeSupplycostUpdate(3999));
  }
  EXPECT_TRUE(retried.ok());
  server->Stop();
}

TEST(ViewServerTest, BlockBackpressureStallsProducerUntilDrain) {
  ServeOptions options;
  options.ingest_high_watermark = 2;
  options.backpressure = BackpressureMode::kBlock;
  auto server = MakeServer(options);
  server->Start();

  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::thread blocker([&] {
    ASSERT_TRUE(server
                    ->RunOnMaintenanceThread([&] {
                      entered.store(true);
                      while (!release.load()) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                      }
                    })
                    .ok());
  });
  while (!entered.load()) std::this_thread::yield();

  EXPECT_TRUE(server->Ingest(MakeSupplycostUpdate(4000)).ok());
  EXPECT_TRUE(server->Ingest(MakeSupplycostUpdate(4001)).ok());

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(server->Ingest(MakeSupplycostUpdate(4002)).ok());
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pushed.load());  // still blocked at the watermark

  release.store(true);  // loop drains, room opens, producer completes
  producer.join();
  blocker.join();
  EXPECT_TRUE(pushed.load());
  server->Stop();
}

TEST(ViewServerTest, StopWakesBlockedProducerWithUnavailable) {
  ServeOptions options;
  options.ingest_high_watermark = 1;
  options.backpressure = BackpressureMode::kBlock;
  auto server = MakeServer(options);
  server->Start();

  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::thread blocker([&] {
    server->RunOnMaintenanceThread([&] {
      entered.store(true);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  });
  while (!entered.load()) std::this_thread::yield();

  ASSERT_TRUE(server->Ingest(MakeSupplycostUpdate(5000)).ok());
  std::atomic<bool> done{false};
  Status blocked_status = Status::Ok();
  std::thread producer([&] {
    blocked_status = server->Ingest(MakeSupplycostUpdate(5001));
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true);
  server->Stop();  // closes the queue; the blocked producer must wake
  producer.join();
  blocker.join();
  EXPECT_TRUE(done.load());
  // The producer either squeezed in before Close (ok, op then dropped
  // at shutdown) or was bounced with Unavailable -- never hangs.
  if (!blocked_status.ok()) {
    EXPECT_EQ(blocked_status.code(), StatusCode::kUnavailable);
  }
}

TEST(ViewServerTest, EnqueueFailpointFailsAdmissionOnly) {
  auto server = MakeServer(ServeOptions{});
  server->Start();
  {
    auto fp = fault::ScopedFailpoint::Once(fault::kFpServeEnqueue);
    const Status injected = server->Ingest(MakeSupplycostUpdate(6000));
    EXPECT_FALSE(injected.ok());
  }
  // Disarmed: admission works, and serving was never disturbed.
  EXPECT_TRUE(server->Ingest(MakeSupplycostUpdate(6001)).ok());
  auto fresh = server->ReadFresh(0);
  ASSERT_TRUE(fresh.ok());
  server->Stop();
}

TEST(ViewServerTest, FlushFailpointFailsFreshButStaleKeepsServing) {
  auto server = MakeServer(ServeOptions{});
  server->Start();
  ASSERT_TRUE(server->Ingest(MakeSupplycostUpdate(7000)).ok());

  // Arm serve.flush on the maintenance thread (registries are
  // thread-local -- arming here would be a no-op).
  ASSERT_TRUE(server
                  ->RunOnMaintenanceThread([] {
                    fault::FailpointRegistry::ThreadLocal()
                        .Get(fault::kFpServeFlush)
                        .ArmAlways();
                  })
                  .ok());
  auto broken = server->ReadFresh(0);
  EXPECT_FALSE(broken.ok());
  EXPECT_GE(CounterValue(*server, "serve.flush_failures"), 1u);

  // Degradation contract: stale reads still serve a valid epoch.
  SnapshotPtr stale = server->ReadStale(0);
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->digest, serve::DigestViewState(stale->state));

  ASSERT_TRUE(server
                  ->RunOnMaintenanceThread([] {
                    auto& fp = fault::FailpointRegistry::ThreadLocal().Get(
                        fault::kFpServeFlush);
                    fp.Disarm();
                    fp.ResetCounters();
                  })
                  .ok());
  auto recovered = server->ReadFresh(0);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
  server->Stop();
}

TEST(ViewServerTest, PublishFailpointKeepsStaleEpochUntilNextPublish) {
  auto server = MakeServer(ServeOptions{});
  server->Start();
  const SnapshotPtr before = server->ReadStale(0);
  ASSERT_TRUE(server->Ingest(MakeSupplycostUpdate(8000)).ok());

  ASSERT_TRUE(server
                  ->RunOnMaintenanceThread([] {
                    fault::FailpointRegistry::ThreadLocal()
                        .Get(fault::kFpServePublish)
                        .ArmOnce();
                  })
                  .ok());
  // The flush refreshes the view but its publication is injected to
  // fail, so the fresh read reports the error...
  auto broken = server->ReadFresh(0);
  EXPECT_FALSE(broken.ok());
  // ...and the stale epoch is simply the previous one, intact.
  const SnapshotPtr stale = server->ReadStale(0);
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->epoch, before->epoch);

  // The failpoint was one-shot: the next fresh read publishes fine.
  auto recovered = server->ReadFresh(0);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_GT(recovered.value()->epoch, before->epoch);
  server->Stop();
}

TEST(ViewServerTest, ReadFreshAfterStopIsUnavailable) {
  auto server = MakeServer(ServeOptions{});
  server->Start();
  server->Stop();
  auto after = server->ReadFresh(0);
  EXPECT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
  // Stale reads still work after stop (last published epoch).
  EXPECT_NE(server->ReadStale(0), nullptr);
}

}  // namespace
}  // namespace abivm
