#include "exec/operators.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "storage/database.h"

namespace abivm {
namespace {

// A small star: fact(k, dim_key, payload) and dim(dim_key, label).
struct Fixture {
  Database db;
  Table* fact;
  Table* dim;

  Fixture() {
    fact = &db.CreateTable("fact", Schema({{"k", ValueType::kInt64},
                                           {"dk", ValueType::kInt64},
                                           {"p", ValueType::kDouble}}));
    dim = &db.CreateTable("dim", Schema({{"dk", ValueType::kInt64},
                                         {"label", ValueType::kString}}));
    for (int64_t d = 0; d < 3; ++d) {
      db.BulkLoad(*dim, {Value(d), Value("dim" + std::to_string(d))});
    }
    for (int64_t k = 0; k < 10; ++k) {
      db.BulkLoad(*fact,
                  {Value(k), Value(k % 3), Value(static_cast<double>(k))});
    }
  }
};

TEST(ScanToBatchTest, MaterializesSnapshot) {
  Fixture fx;
  ExecStats stats;
  const DeltaBatch batch = ScanToBatch(*fx.fact, 0, &stats).value();
  EXPECT_EQ(batch.size(), 10u);
  EXPECT_EQ(stats.rows_scanned, 10u);
  for (const DeltaRow& row : batch) EXPECT_EQ(row.mult, 1);
}

TEST(ScanToBatchTest, OldSnapshotExcludesNewRows) {
  Fixture fx;
  fx.db.ApplyInsert(*fx.fact, {Value(int64_t{99}), Value(int64_t{0}),
                               Value(1.0)});
  EXPECT_EQ(ScanToBatch(*fx.fact, 0, nullptr).value().size(), 10u);
  EXPECT_EQ(ScanToBatch(*fx.fact, fx.db.current_version(), nullptr).value().size(),
            11u);
}

TEST(JoinBatchWithTableTest, HashJoinWithoutIndex) {
  Fixture fx;
  // Two delta rows, one matching dim key 1 (+), one key 2 (-).
  DeltaBatch input = {
      DeltaRow{{Value(int64_t{100}), Value(int64_t{1}), Value(5.0)}, 1},
      DeltaRow{{Value(int64_t{101}), Value(int64_t{2}), Value(6.0)}, -1}};
  ExecStats stats;
  const DeltaBatch out =
      JoinBatchWithTable(input, /*left_col=*/1, *fx.dim,
                         /*right_col=*/0, /*right_keep=*/{0, 1},
                         /*version=*/0, &stats)
          .value();
  ASSERT_EQ(out.size(), 2u);
  // No index on dim -> hash join built over input + full scan of dim.
  EXPECT_EQ(stats.hash_build_rows, 2u);
  EXPECT_EQ(stats.rows_scanned, 3u);
  EXPECT_EQ(stats.index_probes, 0u);
  // Output rows are input ++ dim columns with multiplicity preserved.
  for (const DeltaRow& row : out) {
    ASSERT_EQ(row.row.size(), 5u);
    if (row.row[1].AsInt64() == 1) {
      EXPECT_EQ(row.mult, 1);
      EXPECT_EQ(row.row[4].AsString(), "dim1");
    } else {
      EXPECT_EQ(row.mult, -1);
      EXPECT_EQ(row.row[4].AsString(), "dim2");
    }
  }
}

TEST(JoinBatchWithTableTest, IndexJoinWhenIndexExists) {
  Fixture fx;
  fx.dim->CreateHashIndex("dk");
  DeltaBatch input = {
      DeltaRow{{Value(int64_t{100}), Value(int64_t{1}), Value(5.0)}, 1}};
  ExecStats stats;
  const DeltaBatch out =
      JoinBatchWithTable(input, 1, *fx.dim, 0, {0, 1}, 0, &stats).value();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.index_probes, 1u);
  EXPECT_EQ(stats.rows_scanned, 0u);  // no scan at all
  EXPECT_EQ(stats.hash_build_rows, 0u);
}

TEST(JoinBatchWithTableTest, JoinSeesCoTableAtRequestedVersion) {
  Fixture fx;
  // Update dim1's label at version 1; a join at version 0 must see the old
  // label, a join at version 1 the new one (state-bug protection).
  RowId dim1 = 0;
  fx.dim->ScanAt(0, [&](RowId id, const Row& row) {
    if (row[0].AsInt64() == 1) dim1 = id;
  });
  fx.db.ApplyUpdate(*fx.dim, dim1,
                    {Value(int64_t{1}), Value("dim1-new")});

  DeltaBatch input = {
      DeltaRow{{Value(int64_t{100}), Value(int64_t{1}), Value(5.0)}, 1}};
  const DeltaBatch old_snap = JoinBatchWithTable(
      input, 1, *fx.dim, 0, {0, 1}, /*version=*/0, nullptr).value();
  const DeltaBatch new_snap = JoinBatchWithTable(
      input, 1, *fx.dim, 0, {0, 1}, fx.db.current_version(), nullptr)
                                  .value();
  ASSERT_EQ(old_snap.size(), 1u);
  ASSERT_EQ(new_snap.size(), 1u);
  EXPECT_EQ(old_snap[0].row[4].AsString(), "dim1");
  EXPECT_EQ(new_snap[0].row[4].AsString(), "dim1-new");
}

TEST(JoinBatchWithTableTest, MultiplicityOfDuplicateKeys) {
  Fixture fx;
  // fact has rows with dk = 1 at k = 1, 4, 7: joining a dim delta against
  // fact must fan out to all three.
  DeltaBatch input = {DeltaRow{{Value(int64_t{1}), Value("dim1")}, -1}};
  const DeltaBatch out = JoinBatchWithTable(input, 0, *fx.fact,
                                            /*right_col=*/1, {0, 1, 2}, 0,
                                            nullptr)
                             .value();
  EXPECT_EQ(out.size(), 3u);
  for (const DeltaRow& row : out) EXPECT_EQ(row.mult, -1);
}

TEST(JoinBatchWithTableTest, EmptyInputShortCircuits) {
  Fixture fx;
  ExecStats stats;
  EXPECT_TRUE(
      JoinBatchWithTable({}, 0, *fx.dim, 0, {0}, 0, &stats).value().empty());
  EXPECT_EQ(stats.rows_scanned, 0u);
}

TEST(JoinBatchWithTableTest, RightKeepProjectsColumns) {
  Fixture fx;
  DeltaBatch input = {
      DeltaRow{{Value(int64_t{100}), Value(int64_t{1}), Value(5.0)}, 1}};
  // Keep only the label column of dim.
  const DeltaBatch out =
      JoinBatchWithTable(input, 1, *fx.dim, 0, {1}, 0, nullptr).value();
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].row.size(), 4u);
  EXPECT_EQ(out[0].row[3].AsString(), "dim1");
  // Keeping nothing is legal too (semi-join shape).
  const DeltaBatch semi =
      JoinBatchWithTable(input, 1, *fx.dim, 0, {}, 0, nullptr).value();
  ASSERT_EQ(semi.size(), 1u);
  EXPECT_EQ(semi[0].row.size(), 3u);
}

TEST(FilterBatchTest, AllOperators) {
  DeltaBatch input;
  for (int64_t k = 0; k < 5; ++k) {
    input.push_back(DeltaRow{{Value(k)}, 1});
  }
  EXPECT_EQ(FilterBatch(input, 0, CompareOp::kEq, Value(int64_t{2})).size(),
            1u);
  EXPECT_EQ(FilterBatch(input, 0, CompareOp::kNe, Value(int64_t{2})).size(),
            4u);
  EXPECT_EQ(FilterBatch(input, 0, CompareOp::kLt, Value(int64_t{2})).size(),
            2u);
  EXPECT_EQ(FilterBatch(input, 0, CompareOp::kLe, Value(int64_t{2})).size(),
            3u);
  EXPECT_EQ(FilterBatch(input, 0, CompareOp::kGt, Value(int64_t{2})).size(),
            2u);
  EXPECT_EQ(FilterBatch(input, 0, CompareOp::kGe, Value(int64_t{2})).size(),
            3u);
}

TEST(FilterBatchTest, AttributesExaminedRowsToStats) {
  DeltaBatch input;
  for (int64_t k = 0; k < 5; ++k) {
    input.push_back(DeltaRow{{Value(k)}, 1});
  }
  ExecStats stats;
  FilterBatch(input, 0, CompareOp::kLt, Value(int64_t{2}), &stats);
  // Filtering charges every EXAMINED row, not just survivors.
  EXPECT_EQ(stats.rows_filtered, 5u);
  EXPECT_EQ(stats.rows_scanned, 0u);
  // A second filter accumulates; a null sink stays the fast path.
  FilterBatch(input, 0, CompareOp::kGe, Value(int64_t{2}), &stats);
  EXPECT_EQ(stats.rows_filtered, 10u);
  FilterBatch(input, 0, CompareOp::kEq, Value(int64_t{2}), nullptr);
  EXPECT_EQ(stats.rows_filtered, 10u);
}

TEST(ProjectBatchTest, AttributesProjectedRowsToStats) {
  DeltaBatch input = {
      DeltaRow{{Value(int64_t{1}), Value("a"), Value(2.0)}, -1},
      DeltaRow{{Value(int64_t{2}), Value("b"), Value(3.0)}, 1}};
  ExecStats stats;
  ProjectBatch(input, {2, 0}, &stats);
  EXPECT_EQ(stats.rows_projected, 2u);
  ProjectBatch(input, {0}, &stats);
  EXPECT_EQ(stats.rows_projected, 4u);
}

TEST(ProjectBatchTest, ReordersColumns) {
  DeltaBatch input = {
      DeltaRow{{Value(int64_t{1}), Value("a"), Value(2.0)}, -1}};
  const DeltaBatch out = ProjectBatch(input, {2, 0});
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].row.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].row[0].AsDouble(), 2.0);
  EXPECT_EQ(out[0].row[1].AsInt64(), 1);
  EXPECT_EQ(out[0].mult, -1);
}

}  // namespace
}  // namespace abivm
