#include "exec/stats.h"

#include <gtest/gtest.h>

#include "storage/database.h"

namespace abivm {
namespace {

struct Fixture {
  Database db;
  Table* t;

  Fixture() {
    t = &db.CreateTable("t", Schema({{"k", ValueType::kInt64},
                                     {"s", ValueType::kString}}));
    // k = 0..99 (uniform), s cycles over 4 labels.
    static constexpr const char* kLabels[4] = {"a", "b", "c", "d"};
    for (int64_t k = 0; k < 100; ++k) {
      db.BulkLoad(*t, {Value(k), Value(std::string(kLabels[k % 4]))});
    }
  }
};

TEST(ColumnStatsTest, CountsAndBounds) {
  Fixture fx;
  const ColumnStats k_stats = ComputeColumnStats(*fx.t, 0, 0);
  EXPECT_EQ(k_stats.row_count, 100u);
  EXPECT_EQ(k_stats.distinct_count, 100u);
  EXPECT_EQ(*k_stats.min, Value(int64_t{0}));
  EXPECT_EQ(*k_stats.max, Value(int64_t{99}));

  const ColumnStats s_stats = ComputeColumnStats(*fx.t, 1, 0);
  EXPECT_EQ(s_stats.distinct_count, 4u);
  EXPECT_EQ(*s_stats.min, Value("a"));
  EXPECT_EQ(*s_stats.max, Value("d"));
}

TEST(ColumnStatsTest, RespectsSnapshotVersion) {
  Fixture fx;
  fx.db.ApplyInsert(*fx.t, {Value(int64_t{500}), Value("zzz")});
  EXPECT_EQ(ComputeColumnStats(*fx.t, 0, 0).row_count, 100u);
  const ColumnStats now =
      ComputeColumnStats(*fx.t, 0, fx.db.current_version());
  EXPECT_EQ(now.row_count, 101u);
  EXPECT_EQ(*now.max, Value(int64_t{500}));
}

TEST(ColumnStatsTest, EmptyTable) {
  Database db;
  Table& t = db.CreateTable("e", Schema({{"k", ValueType::kInt64}}));
  const ColumnStats stats = ComputeColumnStats(t, 0, 0);
  EXPECT_EQ(stats.row_count, 0u);
  EXPECT_FALSE(stats.min.has_value());
  EXPECT_DOUBLE_EQ(
      EstimateSelectivity(stats, CompareOp::kEq, Value(int64_t{1})), 0.0);
}

TEST(SelectivityTest, EqualityUsesDistinctCount) {
  Fixture fx;
  const ColumnStats s_stats = ComputeColumnStats(*fx.t, 1, 0);
  EXPECT_DOUBLE_EQ(EstimateSelectivity(s_stats, CompareOp::kEq, Value("b")),
                   0.25);
  // Out-of-range constants match nothing.
  EXPECT_DOUBLE_EQ(EstimateSelectivity(s_stats, CompareOp::kEq, Value("z")),
                   0.0);
  EXPECT_NEAR(EstimateSelectivity(s_stats, CompareOp::kNe, Value("b")),
              0.75, 1e-12);
}

TEST(SelectivityTest, NumericRangeInterpolation) {
  Fixture fx;
  const ColumnStats k_stats = ComputeColumnStats(*fx.t, 0, 0);
  // k < 25 over [0, 99] ~ 25%.
  EXPECT_NEAR(EstimateSelectivity(k_stats, CompareOp::kLt,
                                  Value(int64_t{25})),
              0.2525, 0.01);
  EXPECT_NEAR(EstimateSelectivity(k_stats, CompareOp::kGe,
                                  Value(int64_t{25})),
              0.7475, 0.01);
  // Below the minimum / above the maximum clamp to 0 / 1.
  EXPECT_DOUBLE_EQ(EstimateSelectivity(k_stats, CompareOp::kLt,
                                       Value(int64_t{-5})),
                   0.0);
  EXPECT_DOUBLE_EQ(EstimateSelectivity(k_stats, CompareOp::kLt,
                                       Value(int64_t{1000})),
                   1.0);
}

TEST(SelectivityTest, StringRangeFallsBackToDefault) {
  Fixture fx;
  const ColumnStats s_stats = ComputeColumnStats(*fx.t, 1, 0);
  EXPECT_NEAR(EstimateSelectivity(s_stats, CompareOp::kLt, Value("c")),
              1.0 / 3.0, 1e-12);
}

TEST(SelectivityTest, SinglePointColumn) {
  Database db;
  Table& t = db.CreateTable("p", Schema({{"k", ValueType::kInt64}}));
  for (int i = 0; i < 5; ++i) db.BulkLoad(t, {Value(int64_t{7})});
  const ColumnStats stats = ComputeColumnStats(t, 0, 0);
  EXPECT_DOUBLE_EQ(
      EstimateSelectivity(stats, CompareOp::kLe, Value(int64_t{7})), 1.0);
  EXPECT_DOUBLE_EQ(
      EstimateSelectivity(stats, CompareOp::kLt, Value(int64_t{7})), 0.0);
  EXPECT_DOUBLE_EQ(
      EstimateSelectivity(stats, CompareOp::kEq, Value(int64_t{7})), 1.0);
}

}  // namespace
}  // namespace abivm
