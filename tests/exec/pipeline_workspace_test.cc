// PipelineWorkspace tests: the pooled *Into ops must match the one-shot
// operators (and a brute-force reference join) row for row; a warm
// workspace must stop growing; and the partitioned scan-side probe must
// be BIT-IDENTICAL to the sequential path at every partition and thread
// count (partition-order concatenation == sequential scan order).

#include "exec/pipeline_workspace.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "exec/operators.h"
#include "storage/database.h"

namespace abivm {
namespace {

// Same star as operators_test: fact(k, dk, p) and dim(dk, label).
struct Fixture {
  Database db;
  Table* fact;
  Table* dim;

  Fixture() {
    fact = &db.CreateTable("fact", Schema({{"k", ValueType::kInt64},
                                           {"dk", ValueType::kInt64},
                                           {"p", ValueType::kDouble}}));
    dim = &db.CreateTable("dim", Schema({{"dk", ValueType::kInt64},
                                         {"label", ValueType::kString}}));
    for (int64_t d = 0; d < 3; ++d) {
      db.BulkLoad(*dim, {Value(d), Value("dim" + std::to_string(d))});
    }
    for (int64_t k = 0; k < 10; ++k) {
      db.BulkLoad(*fact,
                  {Value(k), Value(k % 3), Value(static_cast<double>(k))});
    }
  }
};

bool SameRow(const DeltaRow& a, const DeltaRow& b) {
  if (a.mult != b.mult || a.row.size() != b.row.size()) return false;
  for (size_t i = 0; i < a.row.size(); ++i) {
    if (!(a.row[i] == b.row[i])) return false;
  }
  return true;
}

void ExpectSameSequence(const PooledBatch& got, const DeltaBatch& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_TRUE(SameRow(got[i], want[i])) << "row " << i;
  }
}

void ExpectSameMultiset(const PooledBatch& got, DeltaBatch want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    const auto it =
        std::find_if(want.begin(), want.end(),
                     [&](const DeltaRow& w) { return SameRow(got[i], w); });
    ASSERT_NE(it, want.end()) << "unmatched output row " << i;
    want.erase(it);
  }
}

// Brute-force reference join: per input row, full visible scan of the
// co-table. Order-free oracle for both join strategies.
DeltaBatch ReferenceJoin(const DeltaBatch& input, size_t left_col,
                         const Table& table, size_t right_col,
                         const std::vector<size_t>& right_keep,
                         Version version) {
  DeltaBatch out;
  for (const DeltaRow& delta : input) {
    table.ScanAt(version, [&](RowId, const Row& row) {
      if (!(row[right_col] == delta.row[left_col])) return;
      DeltaRow joined{delta.row, delta.mult};
      for (size_t c : right_keep) joined.row.push_back(row[c]);
      out.push_back(std::move(joined));
    });
  }
  return out;
}

DeltaBatch MakeInput() {
  DeltaBatch input;
  for (int64_t i = 0; i < 6; ++i) {
    input.push_back(
        DeltaRow{{Value(int64_t{100} + i), Value(i % 4), Value(0.5 * i)},
                 i % 2 == 0 ? 1 : -1});
  }
  return input;  // dk 3 matches nothing: some rows must drop out
}

TEST(JoinBatchIntoTest, HashStrategyMatchesOneShotAndReference) {
  Fixture fx;
  const DeltaBatch input = MakeInput();
  ExecStats one_shot_stats;
  const DeltaBatch one_shot =
      JoinBatchWithTable(input, 1, *fx.fact, 1, {0, 2}, 0, &one_shot_stats)
          .value();

  PipelineWorkspace ws;
  PooledBatch out;
  ExecStats stats;
  ASSERT_TRUE(
      JoinBatchInto(input.data(), input.size(), 1, *fx.fact, 1, {0, 2}, 0,
                    ws, &out, &stats)
          .ok());
  ExpectSameSequence(out, one_shot);
  EXPECT_EQ(stats, one_shot_stats);
  EXPECT_EQ(stats.hash_build_rows, input.size());
  ExpectSameMultiset(out,
                     ReferenceJoin(input, 1, *fx.fact, 1, {0, 2}, 0));
}

TEST(JoinBatchIntoTest, IndexStrategyMatchesOneShotAndReference) {
  Fixture fx;
  fx.dim->CreateHashIndex("dk");
  const DeltaBatch input = MakeInput();
  ExecStats one_shot_stats;
  const DeltaBatch one_shot =
      JoinBatchWithTable(input, 1, *fx.dim, 0, {1}, 0, &one_shot_stats)
          .value();

  PipelineWorkspace ws;
  PooledBatch out;
  ExecStats stats;
  ASSERT_TRUE(JoinBatchInto(input.data(), input.size(), 1, *fx.dim, 0, {1},
                            0, ws, &out, &stats)
                  .ok());
  ExpectSameSequence(out, one_shot);
  EXPECT_EQ(stats, one_shot_stats);
  EXPECT_EQ(stats.index_probes, input.size());
  EXPECT_EQ(stats.rows_scanned, 0u);
  ExpectSameMultiset(out, ReferenceJoin(input, 1, *fx.dim, 0, {1}, 0));
}

TEST(JoinBatchIntoTest, WarmWorkspaceStopsGrowing) {
  Fixture fx;
  const DeltaBatch input = MakeInput();
  PipelineWorkspace ws;
  PooledBatch out;
  for (int i = 0; i < 3; ++i) {
    ws.BeginBatch();
    ExecStats stats;
    ASSERT_TRUE(JoinBatchInto(input.data(), input.size(), 1, *fx.fact, 1,
                              {0, 2}, 0, ws, &out, &stats)
                    .ok());
    ws.FinishBatch();
  }
  const uint64_t grow_after_warmup = ws.grow_events();
  const size_t peak = ws.arena_bytes_peak();
  for (int i = 0; i < 10; ++i) {
    ws.BeginBatch();
    ExecStats stats;
    ASSERT_TRUE(JoinBatchInto(input.data(), input.size(), 1, *fx.fact, 1,
                              {0, 2}, 0, ws, &out, &stats)
                    .ok());
    ws.FinishBatch();
  }
  EXPECT_EQ(ws.grow_events(), grow_after_warmup);
  EXPECT_EQ(ws.arena_bytes_peak(), peak);
  EXPECT_EQ(ws.batches(), 13u);
  EXPECT_EQ(ws.reuses(), 12u);
}

TEST(JoinBatchIntoTest, PartitionedProbeIsBitIdenticalToSequential) {
  Fixture fx;
  const DeltaBatch input = MakeInput();

  PipelineWorkspace seq_ws;
  PooledBatch seq_out;
  ExecStats seq_stats;
  ASSERT_TRUE(JoinBatchInto(input.data(), input.size(), 1, *fx.fact, 1,
                            {0, 2}, 0, seq_ws, &seq_out, &seq_stats)
                  .ok());
  DeltaBatch seq;
  seq_out.ReleaseTo(&seq);

  // More partitions than rows, more threads than partitions, and every
  // count in between: the output sequence and the counters never change.
  for (const size_t partitions : {1u, 2u, 3u, 5u, 16u}) {
    for (const size_t threads : {1u, 3u}) {
      ThreadPool pool(threads);
      PipelineWorkspace ws;
      ws.EnableParallelProbe(&pool, partitions, /*min_rows=*/0);
      PooledBatch out;
      ExecStats stats;
      ASSERT_TRUE(JoinBatchInto(input.data(), input.size(), 1, *fx.fact, 1,
                                {0, 2}, 0, ws, &out, &stats)
                      .ok())
          << partitions << "x" << threads;
      ExpectSameSequence(out, seq);
      EXPECT_EQ(stats, seq_stats) << partitions << "x" << threads;
    }
  }
}

TEST(JoinBatchIntoTest, MinRowsGateKeepsSmallTablesSequential) {
  Fixture fx;
  const DeltaBatch input = MakeInput();
  ThreadPool pool(2);
  PipelineWorkspace ws;
  // fact has 10 physical rows < min_rows: the gate must keep the probe
  // sequential (observable through the armed-failpoint test in
  // tests/exec/substrate_fault_test.cc; here we pin output + counters).
  ws.EnableParallelProbe(&pool, 2, /*min_rows=*/1000000);
  PooledBatch out;
  ExecStats stats;
  ASSERT_TRUE(JoinBatchInto(input.data(), input.size(), 1, *fx.fact, 1,
                            {0, 2}, 0, ws, &out, &stats)
                  .ok());
  ExpectSameMultiset(out, ReferenceJoin(input, 1, *fx.fact, 1, {0, 2}, 0));
}

TEST(ScanToBatchIntoTest, MatchesOneShotAndCountsScannedRows) {
  Fixture fx;
  ExecStats one_shot_stats;
  const DeltaBatch one_shot =
      ScanToBatch(*fx.fact, 0, &one_shot_stats).value();

  PooledBatch out;
  ExecStats stats;
  ASSERT_TRUE(ScanToBatchInto(*fx.fact, 0, &out, &stats).ok());
  ExpectSameSequence(out, one_shot);
  EXPECT_EQ(stats.rows_scanned, fx.fact->live_row_count());
  EXPECT_EQ(stats, one_shot_stats);
}

TEST(FilterBatchInPlaceTest, MatchesOneShotAndChargesExaminedRows) {
  Fixture fx;
  const DeltaBatch scanned = ScanToBatch(*fx.fact, 0, nullptr).value();
  ExecStats one_shot_stats;
  const DeltaBatch one_shot = FilterBatch(scanned, 0, CompareOp::kLt,
                                          Value(int64_t{4}),
                                          &one_shot_stats);

  PooledBatch batch;
  ASSERT_TRUE(ScanToBatchInto(*fx.fact, 0, &batch, nullptr).ok());
  ExecStats stats;
  FilterBatchInPlace(&batch, 0, CompareOp::kLt, Value(int64_t{4}), &stats);
  ExpectSameMultiset(batch, one_shot);
  EXPECT_EQ(stats.rows_filtered, scanned.size());
  EXPECT_EQ(stats, one_shot_stats);
}

TEST(ProjectBatchInPlaceTest, HandlesDuplicateAndReorderedColumns) {
  Fixture fx;
  const DeltaBatch scanned = ScanToBatch(*fx.fact, 0, nullptr).value();
  // Duplicated source column: naive in-place moves would clobber the
  // second read of column 0.
  const std::vector<size_t> columns = {2, 0, 0};
  ExecStats one_shot_stats;
  const DeltaBatch one_shot =
      ProjectBatch(scanned, columns, &one_shot_stats);

  PipelineWorkspace ws;
  PooledBatch batch;
  ASSERT_TRUE(ScanToBatchInto(*fx.fact, 0, &batch, nullptr).ok());
  ExecStats stats;
  ProjectBatchInPlace(&batch, columns, ws, &stats);
  ExpectSameSequence(batch, one_shot);
  EXPECT_EQ(stats, one_shot_stats);
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(batch[i].row.size(), 3u);
    EXPECT_TRUE(batch[i].row[1] == batch[i].row[2]);
  }
}

TEST(PooledBatchTest, ReleaseToEmptiesThePool) {
  PooledBatch batch;
  AssignRow(batch.Append(1), {Value(int64_t{1})});
  AssignRow(batch.Append(-1), {Value(int64_t{2})});
  batch.TruncateTo(1);
  DeltaBatch released;
  batch.ReleaseTo(&released);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].row[0].AsInt64(), 1);
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_EQ(batch.capacity_bytes(), 0u);
}

}  // namespace
}  // namespace abivm
