// Kill-and-restart torture: crash the durable engine run at every
// cataloged durability failpoint site (several trigger offsets each),
// recover from disk alone, and prove the tentpole invariant:
//
//   1. the recovered view is bit-identical to Recompute at the recovered
//      watermarks, and
//   2. the resumed run's stitched trace equals the uninterrupted run's
//      deterministic trace exactly, ending in the same final view.
//
// Runs under the `recovery` and `fault` ctest labels.

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/manager.h"
#include "ckpt/recovery.h"
#include "core/online.h"
#include "fault/failpoint.h"
#include "fault/sites.h"
#include "sim/engine_runner.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

using fault::ScopedFailpoint;

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "abivm_torture_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

struct Fixture {
  Database db;
  std::unique_ptr<ViewMaintainer> maintainer;
  std::unique_ptr<TpcUpdater> updater;
  ModificationDriver driver;

  Fixture() {
    TpcGenOptions options;
    options.scale_factor = 0.001;
    GenerateTpcDatabase(&db, options);
    CreatePaperIndexes(&db);
    maintainer = std::make_unique<ViewMaintainer>(&db, MakePaperMinView());
    updater = std::make_unique<TpcUpdater>(&db, 99);
    driver = [this](size_t table_index) {
      if (table_index == 0) {
        updater->UpdatePartSuppSupplycost();
      } else if (table_index == 1) {
        updater->UpdateSupplierNationkey();
      } else {
        ABIVM_CHECK_MSG(false, "no modifications for table " << table_index);
      }
    };
  }
};

CostModel PaperLikeModel() {
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0),
      std::make_shared<LinearCost>(0.1, 0.1),
      std::make_shared<LinearCost>(0.1, 0.1)};
  return CostModel(std::move(fns));
}

ArrivalSequence TortureArrivals() {
  return ArrivalSequence::Uniform({2, 1, 0, 0}, 19);
}

constexpr double kBudget = 15.0;

// The uninterrupted run every crashed-and-resumed run must reproduce.
// Durability is OFF here on purpose: the comparison also proves the
// durability hooks never perturb a decision.
struct Reference {
  Fixture fx;
  EngineTrace trace;

  Reference() {
    OnlinePolicy policy;
    trace = RunOnEngine(*fx.maintainer, TortureArrivals(), PaperLikeModel(),
                        kBudget, policy, fx.driver);
  }
};

// One crash/recover/resume cycle. Arms `site` to trigger once after
// `skip` armed hits (arming happens AFTER DurabilityManager::Start, so
// the seq-0 checkpoint is never the victim), asserts the run aborted,
// then recovers from the on-disk state alone and resumes to the horizon.
// With `policy_snapshots` the doomed AND resumed runs save the policy's
// decision state into every image, so the manager trims WAL segments
// below each image and recovery crosses the trimmed-WAL boundary
// (RestoreState instead of decision replay). Returns true when the
// recovery entered the crashed step mid-way.
bool CrashRecoverResume(const Reference& ref, const char* site,
                        uint64_t skip, bool policy_snapshots = false) {
  SCOPED_TRACE(std::string(site) + " skip=" + std::to_string(skip) +
               (policy_snapshots ? " snapshots" : ""));
  const ArrivalSequence arrivals = TortureArrivals();
  const CostModel model = PaperLikeModel();
  const std::string dir =
      TestDir(std::string(site) + "_" + std::to_string(skip) +
              (policy_snapshots ? "_snap" : ""));

  // --- The doomed run. Everything in this scope dies with the "crash";
  // only `dir` survives.
  {
    Fixture fx;
    OnlinePolicy policy;
    ckpt::DurabilityOptions durability;
    if (policy_snapshots) {
      durability.save_policy = [&policy] { return policy.SaveState(); };
    }
    auto mgr = ckpt::DurabilityManager::Start(
        dir, &fx.db, fx.maintainer.get(),
        [&] { return fx.updater->SaveState(); }, durability);
    EXPECT_TRUE(mgr.ok()) << mgr.status().ToString();
    if (!mgr.ok()) return false;
    ScopedFailpoint guard = ScopedFailpoint::Once(site, skip);
    EngineRunnerOptions options;
    options.durability = (*mgr).get();
    const EngineTrace crashed = RunOnEngine(
        *fx.maintainer, arrivals, model, kBudget, policy, fx.driver,
        options);
    EXPECT_TRUE(crashed.aborted)
        << "site never fired -- lower the skip count";
    if (!crashed.aborted) return false;
  }
  fault::FailpointRegistry::ThreadLocal().DisarmAll();

  // --- Recover from disk. Invariant 1: the recovered view must be
  // bit-identical to a from-scratch Recompute at the recovered
  // watermarks.
  OnlinePolicy policy;
  auto rec = ckpt::RecoverFromDir(dir, MakePaperMinView(), model, kBudget,
                                  &policy);
  EXPECT_TRUE(rec.ok()) << rec.status().ToString();
  if (!rec.ok()) return false;
  ckpt::RecoveredRun& run = *rec;
  EXPECT_TRUE(run.maintainer->state().SameContents(
      run.maintainer->RecomputeAtWatermarks()));

  // --- Resume: restore the driver, reattach durability, run to the
  // horizon. Invariant 2: prefix + resumed == uninterrupted, and the
  // final views agree.
  TpcUpdater updater(run.db.get(), /*seed=*/0);  // state overwritten below
  updater.RestoreState(run.driver_blob);
  ModificationDriver driver = [&](size_t table_index) {
    if (table_index == 0) {
      updater.UpdatePartSuppSupplycost();
    } else {
      updater.UpdateSupplierNationkey();
    }
  };
  ckpt::DurabilityOptions durability;
  if (policy_snapshots) {
    durability.save_policy = [&policy] { return policy.SaveState(); };
  }
  auto mgr = ckpt::DurabilityManager::Resume(
      dir, run.db.get(), run.maintainer.get(),
      [&] { return updater.SaveState(); }, run.handle, durability);
  EXPECT_TRUE(mgr.ok()) << mgr.status().ToString();
  if (!mgr.ok()) return false;
  EngineRunnerOptions options;
  options.durability = (*mgr).get();
  options.resume = &run.resume;
  const EngineTrace resumed = RunOnEngine(*run.maintainer, arrivals, model,
                                          kBudget, policy, driver, options);
  EXPECT_FALSE(resumed.aborted) << resumed.abort_reason;
  EXPECT_TRUE(resumed.ended_consistent);

  const EngineTrace stitched = ckpt::StitchTrace(run.trace_prefix, resumed);
  std::string why;
  EXPECT_TRUE(ckpt::DeterministicTraceEquals(stitched, ref.trace, &why))
      << why;
  EXPECT_TRUE(run.maintainer->state().SameContents(ref.fx.maintainer->state()));
  return run.resume.mid_step;
}

TEST(CrashTortureTest, CheckpointWriteProtocolSites) {
  const Reference ref;
  // Each checkpoint publish issues two durable writes (image, manifest);
  // skips 0..2 crash the step-7 publish at either write and the step-15
  // publish at its first.
  for (const char* site :
       {fault::kFpCkptWrite, fault::kFpCkptFsync, fault::kFpCkptRename}) {
    for (const uint64_t skip : {uint64_t{0}, uint64_t{1}, uint64_t{2}}) {
      CrashRecoverResume(ref, site, skip);
    }
  }
  // The manifest swap fires once per publish: skip 1 is the step-15
  // publish, after the step-7 checkpoint (and its GC pass) succeeded.
  CrashRecoverResume(ref, fault::kFpCkptManifest, 0);
  CrashRecoverResume(ref, fault::kFpCkptManifest, 1);
}

TEST(CrashTortureTest, WalAppendCrashesAtEveryRecordPosition) {
  const Reference ref;
  // Appends interleave as plan / commits / end per step, so sweeping the
  // skip offset crashes before a step (plan lost), mid-step (plan
  // durable, some commits durable, end lost), and between steps.
  bool saw_mid_step = false;
  for (const uint64_t skip : std::vector<uint64_t>{0, 1, 2, 3, 4, 5, 6, 7,
                                                   11, 17, 23}) {
    saw_mid_step |= CrashRecoverResume(ref, fault::kFpLogAppend, skip);
  }
  // The sweep must have exercised the mid-step resume path (plan with no
  // matching end at the WAL tail).
  EXPECT_TRUE(saw_mid_step);
}

TEST(CrashTortureTest, DeltaPublishCrashLeavesChainIntact) {
  const Reference ref;
  // Cadence 8 over 20 steps: seq 0 is full, the step-7 and step-15
  // publishes are deltas chained onto it, so `ckpt.delta` fires once per
  // publish -- skip 0 crashes the first link, skip 1 the second (after
  // the first delta, and with snapshots its WAL trim, succeeded).
  for (const uint64_t skip : {uint64_t{0}, uint64_t{1}}) {
    CrashRecoverResume(ref, fault::kFpCkptDelta, skip);
    CrashRecoverResume(ref, fault::kFpCkptDelta, skip,
                       /*policy_snapshots=*/true);
  }
}

TEST(CrashTortureTest, WalTrimCrashMidTrim) {
  const Reference ref;
  // Trimming only happens below policy-carrying images: each trimming
  // publish fires `wal.trim` once per segment it deletes (one here).
  // Skip 0 dies before the step-7 trim unlinks anything (image live, WAL
  // intact); skip 1 dies at the step-15 trim after the first completed,
  // so recovery reads a WAL that STARTS at segment 2 -- the
  // resume-after-trim boundary.
  for (const uint64_t skip : {uint64_t{0}, uint64_t{1}}) {
    CrashRecoverResume(ref, fault::kFpWalTrim, skip,
                       /*policy_snapshots=*/true);
  }
}

TEST(CrashTortureTest, WalAppendCrashesWithTrimmedWal) {
  const Reference ref;
  // The log-append sweep again, but with snapshots + trimming on: late
  // offsets die AFTER the step-7 trim, so the recovery replays a WAL
  // whose oldest segment is not segment 1 and must seed decisions from
  // the image's policy blob rather than step-0 replay.
  bool saw_mid_step = false;
  for (const uint64_t skip : std::vector<uint64_t>{5, 11, 17, 23}) {
    saw_mid_step |= CrashRecoverResume(ref, fault::kFpLogAppend, skip,
                                       /*policy_snapshots=*/true);
  }
  EXPECT_TRUE(saw_mid_step);
}

TEST(CrashTortureTest, GcVacuumCrashMidPass) {
  const Reference ref;
  // The vacuum pass fires the site once per maintained table (4 here):
  // skips 0/1/3 crash the step-7 pass at different tables, skip 5 the
  // step-15 pass after the first completed fully.
  for (const uint64_t skip :
       {uint64_t{0}, uint64_t{1}, uint64_t{3}, uint64_t{5}}) {
    CrashRecoverResume(ref, fault::kFpGcVacuum, skip);
  }
}

TEST(CrashTortureTest, RecoveryReplayFaultIsRetryable) {
  // A clean durable run...
  const std::string dir = TestDir("recovery_replay");
  const ArrivalSequence arrivals = TortureArrivals();
  const CostModel model = PaperLikeModel();
  Fixture fx;
  auto mgr = ckpt::DurabilityManager::Start(
      dir, &fx.db, fx.maintainer.get(),
      [&] { return fx.updater->SaveState(); });
  ASSERT_TRUE(mgr.ok());
  EngineRunnerOptions options;
  options.durability = (*mgr).get();
  OnlinePolicy policy;
  const EngineTrace live = RunOnEngine(*fx.maintainer, arrivals, model,
                                       kBudget, policy, fx.driver, options);
  ASSERT_FALSE(live.aborted);

  // ...whose recovery dies mid-replay. Recovery writes nothing, so the
  // retry starts from the same on-disk state and succeeds.
  {
    ScopedFailpoint guard = ScopedFailpoint::Once(fault::kFpRecoveryReplay,
                                                  /*skip_hits=*/5);
    OnlinePolicy p;
    auto failed = ckpt::RecoverFromDir(dir, MakePaperMinView(), model,
                                       kBudget, &p);
    ASSERT_FALSE(failed.ok());
  }
  OnlinePolicy p2;
  auto rec = ckpt::RecoverFromDir(dir, MakePaperMinView(), model, kBudget,
                                  &p2);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ((*rec).resume.first_step, arrivals.horizon() + 1);
  EXPECT_TRUE((*rec).maintainer->state().SameContents(fx.maintainer->state()));

  const EngineTrace stitched = ckpt::StitchTrace((*rec).trace_prefix, {});
  std::string why;
  EXPECT_TRUE(ckpt::DeterministicTraceEquals(stitched, live, &why)) << why;
}

// Two crashes in one lifetime: the resumed run crashes again at a
// different site, and the second recovery still converges on the
// reference.
TEST(CrashTortureTest, SurvivesADoubleCrash) {
  const Reference ref;
  const ArrivalSequence arrivals = TortureArrivals();
  const CostModel model = PaperLikeModel();
  const std::string dir = TestDir("double_crash");

  {  // Crash #1: WAL append dies early in the run.
    Fixture fx;
    auto mgr = ckpt::DurabilityManager::Start(
        dir, &fx.db, fx.maintainer.get(),
        [&] { return fx.updater->SaveState(); });
    ASSERT_TRUE(mgr.ok());
    ScopedFailpoint guard = ScopedFailpoint::Once(fault::kFpLogAppend, 6);
    EngineRunnerOptions options;
    options.durability = (*mgr).get();
    OnlinePolicy policy;
    ASSERT_TRUE(RunOnEngine(*fx.maintainer, arrivals, model, kBudget,
                            policy, fx.driver, options)
                    .aborted);
  }
  fault::FailpointRegistry::ThreadLocal().DisarmAll();

  std::vector<EngineStepRecord> first_prefix;
  {  // Recover #1, resume, crash #2 at a checkpoint publish.
    OnlinePolicy policy;
    auto rec = ckpt::RecoverFromDir(dir, MakePaperMinView(), model, kBudget,
                                    &policy);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    first_prefix = (*rec).trace_prefix;
    TpcUpdater updater((*rec).db.get(), 0);
    updater.RestoreState((*rec).driver_blob);
    ModificationDriver driver = [&](size_t i) {
      i == 0 ? updater.UpdatePartSuppSupplycost()
             : updater.UpdateSupplierNationkey();
    };
    auto mgr = ckpt::DurabilityManager::Resume(
        dir, (*rec).db.get(), (*rec).maintainer.get(),
        [&] { return updater.SaveState(); }, (*rec).handle);
    ASSERT_TRUE(mgr.ok());
    ScopedFailpoint guard = ScopedFailpoint::Once(fault::kFpCkptManifest, 1);
    EngineRunnerOptions options;
    options.durability = (*mgr).get();
    options.resume = &(*rec).resume;
    ASSERT_TRUE(RunOnEngine(*(*rec).maintainer, arrivals, model, kBudget,
                            policy, driver, options)
                    .aborted);
  }
  fault::FailpointRegistry::ThreadLocal().DisarmAll();

  // Recover #2 and run out clean.
  OnlinePolicy policy;
  auto rec = ckpt::RecoverFromDir(dir, MakePaperMinView(), model, kBudget,
                                  &policy);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  TpcUpdater updater((*rec).db.get(), 0);
  updater.RestoreState((*rec).driver_blob);
  ModificationDriver driver = [&](size_t i) {
    i == 0 ? updater.UpdatePartSuppSupplycost()
           : updater.UpdateSupplierNationkey();
  };
  auto mgr = ckpt::DurabilityManager::Resume(
      dir, (*rec).db.get(), (*rec).maintainer.get(),
      [&] { return updater.SaveState(); }, (*rec).handle);
  ASSERT_TRUE(mgr.ok());
  EngineRunnerOptions options;
  options.durability = (*mgr).get();
  options.resume = &(*rec).resume;
  const EngineTrace resumed = RunOnEngine(*(*rec).maintainer, arrivals,
                                          model, kBudget, policy, driver,
                                          options);
  ASSERT_FALSE(resumed.aborted) << resumed.abort_reason;

  // The second recovery's prefix already contains the WHOLE history
  // (WAL records are never trimmed), so it alone stitches against the
  // resumed tail.
  const EngineTrace stitched = ckpt::StitchTrace((*rec).trace_prefix,
                                                 resumed);
  std::string why;
  EXPECT_TRUE(ckpt::DeterministicTraceEquals(stitched, ref.trace, &why))
      << why;
  EXPECT_TRUE(
      (*rec).maintainer->state().SameContents(ref.fx.maintainer->state()));
  // And the first prefix is a prefix of the second.
  ASSERT_LE(first_prefix.size(), (*rec).trace_prefix.size());
}

}  // namespace
}  // namespace abivm
