// Durability building blocks: WAL framing and torn-tail handling, the
// checkpoint image round trip, the manifest publication protocol under
// injected faults, and the fault-free durable-run -> recover cycle.
// Runs under the `recovery` ctest label.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "ckpt/manager.h"
#include "ckpt/posix_io.h"
#include "ckpt/recovery.h"
#include "ckpt/serde.h"
#include "ckpt/wal.h"
#include "core/naive.h"
#include "core/online.h"
#include "fault/failpoint.h"
#include "fault/sites.h"
#include "sim/engine_runner.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

using fault::ScopedFailpoint;

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "abivm_ckpt_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

struct Fixture {
  Database db;
  std::unique_ptr<ViewMaintainer> maintainer;
  std::unique_ptr<TpcUpdater> updater;
  ModificationDriver driver;

  Fixture() {
    TpcGenOptions options;
    options.scale_factor = 0.001;
    GenerateTpcDatabase(&db, options);
    CreatePaperIndexes(&db);
    maintainer = std::make_unique<ViewMaintainer>(&db, MakePaperMinView());
    updater = std::make_unique<TpcUpdater>(&db, 99);
    driver = [this](size_t table_index) {
      if (table_index == 0) {
        updater->UpdatePartSuppSupplycost();
      } else if (table_index == 1) {
        updater->UpdateSupplierNationkey();
      } else {
        ABIVM_CHECK_MSG(false, "no modifications for table " << table_index);
      }
    };
  }
};

CostModel PaperLikeModel() {
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0),
      std::make_shared<LinearCost>(0.1, 0.1),
      std::make_shared<LinearCost>(0.1, 0.1)};
  return CostModel(std::move(fns));
}

TEST(SerdeTest, ChecksumIsStableAndSensitive) {
  EXPECT_EQ(ckpt::Checksum("abc"), ckpt::Checksum("abc"));
  EXPECT_NE(ckpt::Checksum("abc"), ckpt::Checksum("abd"));
  EXPECT_NE(ckpt::Checksum(""), ckpt::Checksum(std::string_view("\0", 1)));
}

TEST(WalTest, RoundTripsAllRecordTypes) {
  const std::string dir = TestDir("wal_roundtrip");
  ASSERT_TRUE(ckpt::EnsureDir(dir).ok());
  const std::string path = dir + "/wal.log";

  ckpt::WalStepPlan plan;
  plan.t = 3;
  plan.forced = false;
  plan.arrivals = {2, 1, 0, 0};
  plan.pre_state = {5, 1, 0, 0};
  plan.action = {4, 0, 0, 0};
  plan.driver_blob = std::string("blob\0with\377bytes", 15);
  AppliedModification mod;
  mod.table_index = 1;
  mod.version = 42;
  mod.kind = ModKind::kUpdate;
  mod.deleted_id = 7;
  mod.inserted_id = 19;
  mod.old_row = {Value(int64_t{1}), Value("old")};
  mod.new_row = {Value(int64_t{1}), Value(2.5)};
  plan.mods.push_back(mod);

  ckpt::WalBatchCommit batch;
  batch.t = 3;
  batch.table = 0;
  batch.k = 4;
  batch.processed = 4;
  batch.delta_rows_in = 8;
  batch.view_updates = 6;
  batch.stats.rows_scanned = 100;
  batch.stats.index_probes = 8;
  batch.stats.output_rows = 6;

  ckpt::WalStepEnd end;
  end.t = 3;
  end.model_cost = 1.7;
  end.abandoned_model_cost = 0.25;
  end.backoff_ms = 3.0;
  end.stats = batch.stats;
  end.failures = 2;
  end.retries = 2;
  end.degraded = false;
  end.violation = true;

  {
    ckpt::WalWriter writer;
    ASSERT_TRUE(writer.Open(path, 0).ok());
    ASSERT_TRUE(writer.Append(ckpt::WalRecord(plan)).ok());
    ASSERT_TRUE(writer.Append(ckpt::WalRecord(batch)).ok());
    ASSERT_TRUE(writer.Append(ckpt::WalRecord(end)).ok());
    EXPECT_EQ(writer.records_appended(), 3u);
  }

  Result<ckpt::WalContents> read = ckpt::ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_FALSE((*read).torn_tail);
  EXPECT_EQ((*read).valid_bytes, std::filesystem::file_size(path));
  ASSERT_EQ((*read).records.size(), 3u);

  const auto& p = std::get<ckpt::WalStepPlan>((*read).records[0]);
  EXPECT_EQ(p.t, 3);
  EXPECT_FALSE(p.forced);
  EXPECT_EQ(p.arrivals, plan.arrivals);
  EXPECT_EQ(p.pre_state, plan.pre_state);
  EXPECT_EQ(p.action, plan.action);
  EXPECT_EQ(p.driver_blob, plan.driver_blob);
  ASSERT_EQ(p.mods.size(), 1u);
  EXPECT_EQ(p.mods[0].table_index, 1u);
  EXPECT_EQ(p.mods[0].version, 42u);
  EXPECT_EQ(p.mods[0].kind, ModKind::kUpdate);
  EXPECT_EQ(p.mods[0].deleted_id, 7u);
  EXPECT_EQ(p.mods[0].inserted_id, 19u);
  EXPECT_EQ(p.mods[0].old_row, mod.old_row);
  EXPECT_EQ(p.mods[0].new_row, mod.new_row);

  const auto& b = std::get<ckpt::WalBatchCommit>((*read).records[1]);
  EXPECT_EQ(b.table, 0u);
  EXPECT_EQ(b.k, 4u);
  EXPECT_TRUE(b.stats == batch.stats);

  const auto& e = std::get<ckpt::WalStepEnd>((*read).records[2]);
  EXPECT_EQ(e.model_cost, 1.7);
  EXPECT_EQ(e.abandoned_model_cost, 0.25);
  EXPECT_EQ(e.failures, 2u);
  EXPECT_TRUE(e.violation);
}

TEST(WalTest, TornTailIsReportedAndTruncatedOnReopen) {
  const std::string dir = TestDir("wal_torn");
  ASSERT_TRUE(ckpt::EnsureDir(dir).ok());
  const std::string path = dir + "/wal.log";
  {
    ckpt::WalWriter writer;
    ASSERT_TRUE(writer.Open(path, 0).ok());
    ckpt::WalStepEnd end;
    end.t = 0;
    ASSERT_TRUE(writer.Append(ckpt::WalRecord(end)).ok());
    end.t = 1;
    ASSERT_TRUE(writer.Append(ckpt::WalRecord(end)).ok());
  }
  const size_t intact = std::filesystem::file_size(path);
  {
    // A crash mid-append leaves a short frame: only part of a length
    // prefix plus garbage.
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write("\x40\x00\x00\x00gar", 7);
  }

  Result<ckpt::WalContents> read = ckpt::ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE((*read).torn_tail);
  EXPECT_EQ((*read).valid_bytes, intact);
  ASSERT_EQ((*read).records.size(), 2u);
  EXPECT_EQ(std::get<ckpt::WalStepEnd>((*read).records[1]).t, 1);

  // Reopening at the valid prefix (what DurabilityManager::Resume does)
  // cuts the tail for good.
  ckpt::WalWriter writer;
  ASSERT_TRUE(writer.Open(path, intact).ok());
  EXPECT_EQ(std::filesystem::file_size(path), intact);
  Result<ckpt::WalContents> reread = ckpt::ReadWal(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_FALSE((*reread).torn_tail);
}

TEST(WalTest, MissingFileIsAnEmptyLog) {
  Result<ckpt::WalContents> read =
      ckpt::ReadWal(TestDir("wal_missing") + "/wal.log");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE((*read).records.empty());
  EXPECT_EQ((*read).valid_bytes, 0u);
  EXPECT_FALSE((*read).torn_tail);
}

// The checkpoint image reproduces the database EXACTLY: every physical
// slot (including vacuumed ones), the live-sampling order, the retained
// delta-log suffix, the version clock, and index behaviour.
TEST(CheckpointTest, ImageRoundTripsTheDatabase) {
  Fixture fx;
  // Work up a non-trivial state: arrivals, asymmetric partial
  // processing, and a vacuum pass so horizons and trimmed logs are all
  // non-default.
  for (int i = 0; i < 30; ++i) fx.updater->UpdatePartSuppSupplycost();
  for (int i = 0; i < 8; ++i) fx.updater->UpdateSupplierNationkey();
  fx.maintainer->ProcessBatch(0, 17);
  fx.maintainer->ProcessBatch(1, 3);
  fx.maintainer->VacuumConsumed();

  const ckpt::CheckpointImage image = ckpt::CaptureCheckpoint(
      fx.db, *fx.maintainer, /*seq=*/5, /*next_step=*/12, "driverstate");
  const std::string payload = ckpt::SerializeCheckpoint(image);
  Result<ckpt::CheckpointImage> parsed = ckpt::ParseCheckpoint(payload);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ((*parsed).seq, 5u);
  EXPECT_EQ((*parsed).next_step, 12);
  EXPECT_EQ((*parsed).driver_blob, "driverstate");
  EXPECT_EQ((*parsed).db_version, fx.db.current_version());

  Database restored;
  ASSERT_TRUE(ckpt::InstallDatabaseImage(*parsed, &restored).ok());
  EXPECT_EQ(restored.current_version(), fx.db.current_version());
  ASSERT_EQ(restored.tables().size(), fx.db.tables().size());
  for (size_t i = 0; i < fx.db.tables().size(); ++i) {
    const Table& want = *fx.db.tables()[i];
    const Table& got = *restored.tables()[i];
    SCOPED_TRACE(want.name());
    EXPECT_EQ(got.name(), want.name());
    EXPECT_EQ(got.physical_row_count(), want.physical_row_count());
    EXPECT_EQ(got.live_row_count(), want.live_row_count());
    EXPECT_EQ(got.vacuum_horizon(), want.vacuum_horizon());
    EXPECT_EQ(got.live_ids(), want.live_ids());
    EXPECT_EQ(got.delta_log().size(), want.delta_log().size());
    EXPECT_EQ(got.delta_log().first_retained(),
              want.delta_log().first_retained());
    for (size_t p = want.delta_log().first_retained();
         p < want.delta_log().size(); ++p) {
      const Modification& wm = want.delta_log().At(p);
      const Modification& gm = got.delta_log().At(p);
      EXPECT_EQ(gm.version, wm.version);
      EXPECT_EQ(gm.kind, wm.kind);
      EXPECT_EQ(gm.old_row, wm.old_row);
      EXPECT_EQ(gm.new_row, wm.new_row);
    }
    // Every physical slot matches bit-for-bit, vacuumed or not.
    for (RowId id = 0; id < want.physical_row_count(); ++id) {
      const VersionedRow& wr = want.RowAt(id);
      const VersionedRow& gr = got.RowAt(id);
      ASSERT_EQ(gr.row, wr.row) << "row " << id;
      ASSERT_EQ(gr.insert_version, wr.insert_version) << "row " << id;
      ASSERT_EQ(gr.delete_version, wr.delete_version) << "row " << id;
    }
  }
  // Index behaviour survives: probe the supplier suppkey index at the
  // current snapshot on both databases and compare hit sets.
  const Table& want_sup = fx.db.table(kSupplier);
  const Table& got_sup = restored.table(kSupplier);
  const Version v = fx.db.current_version();
  const size_t col = want_sup.schema().ColumnIndex("s_suppkey");
  size_t want_hits = 0;
  size_t got_hits = 0;
  want_sup.ScanAt(v, [&](RowId id, const Row& row) {
    want_sup.IndexLookup(col, row[col], v, [&](RowId wid, const Row&) {
      want_hits += wid == id ? 1 : 0;
    });
    got_sup.IndexLookup(col, row[col], v, [&](RowId gid, const Row&) {
      got_hits += gid == id ? 1 : 0;
    });
  });
  EXPECT_GT(want_hits, 0u);
  EXPECT_EQ(got_hits, want_hits);
}

TEST(CheckpointTest, PublishCrashLeavesPreviousManifestIntact) {
  Fixture fx;
  const std::string dir = TestDir("manifest_crash");
  ASSERT_TRUE(ckpt::EnsureDir(dir).ok());
  const ckpt::CheckpointImage image0 =
      ckpt::CaptureCheckpoint(fx.db, *fx.maintainer, 0, 0, "d0");
  ASSERT_TRUE(ckpt::PublishCheckpoint(dir, image0).ok());

  fx.updater->UpdatePartSuppSupplycost();
  fx.maintainer->RefreshAll();
  ckpt::CheckpointImage image1 =
      ckpt::CaptureCheckpoint(fx.db, *fx.maintainer, 1, 4, "d1");

  // Crash at every stage of the publication protocol: the previous
  // manifest/image pair must stay live and readable.
  for (const char* site :
       {fault::kFpCkptWrite, fault::kFpCkptFsync, fault::kFpCkptRename,
        fault::kFpCkptManifest}) {
    SCOPED_TRACE(site);
    ScopedFailpoint guard = ScopedFailpoint::Once(site);
    EXPECT_FALSE(ckpt::PublishCheckpoint(dir, image1).ok());
    Result<ckpt::Manifest> manifest = ckpt::ReadManifest(dir);
    ASSERT_TRUE(manifest.ok());
    EXPECT_EQ((*manifest).seq, 0u);
    ASSERT_EQ((*manifest).chain.size(), 1u);
    Result<std::string> payload =
        ckpt::ReadFile(dir + "/" + (*manifest).chain.front().file);
    ASSERT_TRUE(payload.ok());
    EXPECT_EQ(ckpt::Checksum(*payload),
              (*manifest).chain.front().checksum);
  }

  // With the faults gone the publish goes through and supersedes seq 0.
  ASSERT_TRUE(ckpt::PublishCheckpoint(dir, image1).ok());
  Result<ckpt::Manifest> manifest = ckpt::ReadManifest(dir);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ((*manifest).seq, 1u);
  // The superseded image is gone (best-effort unlink after the swap).
  EXPECT_FALSE(ckpt::FileExists(dir + "/" + ckpt::CheckpointFileName(0)));
}

// Fault-free durable run: every step logged, checkpoints on cadence, GC
// riding the cycle -- and a recovery of the finished run reproduces the
// live trace and the live view exactly.
TEST(DurableRunTest, CleanRunRecoversToFinalState) {
  const ArrivalSequence arrivals = ArrivalSequence::Uniform({2, 1, 0, 0}, 19);
  const CostModel model = PaperLikeModel();
  const double budget = 15.0;
  const std::string dir = TestDir("clean_run");

  Fixture fx;
  obs::MetricRegistry metrics;
  auto mgr = ckpt::DurabilityManager::Start(
      dir, &fx.db, fx.maintainer.get(),
      [&] { return fx.updater->SaveState(); }, {}, &metrics);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();

  EngineRunnerOptions options;
  options.durability = (*mgr).get();
  OnlinePolicy policy;
  const EngineTrace live =
      RunOnEngine(*fx.maintainer, arrivals, model, budget, policy,
                  fx.driver, options);
  ASSERT_FALSE(live.aborted) << live.abort_reason;
  EXPECT_TRUE(live.ended_consistent);

  // Cadence 8 over 20 steps: seq-0 plus checkpoints after steps 7 and 15.
  EXPECT_EQ((*mgr)->checkpoints_published(), 3u);
  EXPECT_GT((*mgr)->gc_passes(), 0u);
  EXPECT_GT((*mgr)->gc_rows_reclaimed(), 0u);
  const obs::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters.at("ckpt.checkpoints"), 3u);
  EXPECT_GT(snap.counters.at("ckpt.bytes_written"), 0u);
  EXPECT_GT(snap.counters.at("ckpt.wal_records"), 0u);
  EXPECT_GT(snap.counters.at("gc.passes"), 0u);
  EXPECT_GT(snap.counters.at("gc.rows_reclaimed"), 0u);

  // GC actually moved the vacuum horizon, and the safe-version argument
  // held: the horizon never passed the checkpointed version clock.
  EXPECT_GT(fx.db.table(kPartSupp).vacuum_horizon(), 0u);
  EXPECT_LE(fx.db.table(kPartSupp).vacuum_horizon(),
            fx.db.current_version());

  // Recover the COMPLETED run: nothing left to execute, and both the
  // trace and the view reproduce the live run's.
  obs::MetricRegistry rec_metrics;
  ckpt::RecoveryOptions rec_options;
  rec_options.metrics = &rec_metrics;
  OnlinePolicy policy2;
  auto rec = ckpt::RecoverFromDir(dir, MakePaperMinView(), model, budget,
                                  &policy2, rec_options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ckpt::RecoveredRun& run = *rec;
  EXPECT_FALSE(run.resume.mid_step);
  EXPECT_EQ(run.resume.first_step, arrivals.horizon() + 1);
  EXPECT_EQ(run.db->current_version(), fx.db.current_version());

  // Bit-identical maintenance state: recovered == recompute oracle at
  // the recovered watermarks, and == the live maintainer.
  EXPECT_TRUE(run.maintainer->state().SameContents(
      run.maintainer->RecomputeAtWatermarks()));
  EXPECT_TRUE(run.maintainer->state().SameContents(fx.maintainer->state()));
  for (size_t i = 0; i < run.maintainer->num_tables(); ++i) {
    EXPECT_EQ(run.maintainer->watermark_position(i),
              fx.maintainer->watermark_position(i));
    EXPECT_EQ(run.maintainer->watermark_version(i),
              fx.maintainer->watermark_version(i));
  }

  const EngineTrace stitched = ckpt::StitchTrace(run.trace_prefix, {});
  std::string why;
  EXPECT_TRUE(ckpt::DeterministicTraceEquals(stitched, live, &why)) << why;

  EXPECT_GT(rec_metrics.Snapshot().counters.at("recovery.replayed_records"),
            0u);
  EXPECT_GT(rec_metrics.Snapshot().counters.at("recovery.replayed_batches"),
            0u);
}

// Checkpoints are strictly off the hot path: a run with durability
// disabled takes zero ckpt.* counters and installs no listener cost
// beyond one branch per apply (guarded here by API shape, measured by
// the micro benches).
TEST(DurableRunTest, RecoveryRejectsCorruptCheckpoint) {
  const std::string dir = TestDir("corrupt_ckpt");
  Fixture fx;
  auto mgr = ckpt::DurabilityManager::Start(
      dir, &fx.db, fx.maintainer.get(),
      [&] { return fx.updater->SaveState(); });
  ASSERT_TRUE(mgr.ok());
  Result<ckpt::Manifest> manifest = ckpt::ReadManifest(dir);
  ASSERT_TRUE(manifest.ok());

  // Flip a byte in the image: the manifest checksum must catch it.
  const std::string path = dir + "/" + (*manifest).chain.front().file;
  Result<std::string> payload = ckpt::ReadFile(path);
  ASSERT_TRUE(payload.ok());
  std::string tampered = *payload;
  tampered[tampered.size() / 2] ^= 0x01;
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(tampered.data(), static_cast<std::streamsize>(tampered.size()));
  }
  OnlinePolicy policy;
  auto rec = ckpt::RecoverFromDir(dir, MakePaperMinView(), PaperLikeModel(),
                                  15.0, &policy);
  ASSERT_FALSE(rec.ok());
  EXPECT_NE(rec.status().ToString().find("checksum"), std::string::npos);
}

TEST(DurableRunTest, RecoveringAnEmptyDirFailsCleanly) {
  OnlinePolicy policy;
  auto rec = ckpt::RecoverFromDir(TestDir("no_such_run"), MakePaperMinView(),
                                  PaperLikeModel(), 15.0, &policy);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kNotFound);
}

// Regression: a publish that fails at ANY protocol stage must leave no
// artifact behind -- neither the target nor a stale `path.tmp` for later
// sweeps to trip over (the write stage fails before the temp exists; the
// fsync and rename stages must unlink it on the way out).
TEST(PosixIoTest, FailedDurableWriteLeavesNoTmpBehind) {
  const std::string dir = TestDir("posix_tmp");
  ASSERT_TRUE(ckpt::EnsureDir(dir).ok());
  const std::string path = dir + "/artifact.bin";
  for (const char* site :
       {fault::kFpCkptWrite, fault::kFpCkptFsync, fault::kFpCkptRename}) {
    SCOPED_TRACE(site);
    ScopedFailpoint guard = ScopedFailpoint::Once(site);
    EXPECT_FALSE(ckpt::WriteFileDurable(path, "payload").ok());
    EXPECT_FALSE(ckpt::FileExists(path + ".tmp"));
    EXPECT_FALSE(ckpt::FileExists(path));
  }
  // With the faults gone the same publish succeeds and self-cleans.
  ASSERT_TRUE(ckpt::WriteFileDurable(path, "payload").ok());
  EXPECT_FALSE(ckpt::FileExists(path + ".tmp"));
  Result<std::string> back = ckpt::ReadFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "payload");
}

// Damage with committed records after it is CORRUPTION, not a torn
// tail: truncating at the break would silently drop durable history, so
// the read must fail loudly instead.
TEST(WalTest, MidLogCorruptionIsRejectedNotTruncated) {
  const std::string dir = TestDir("wal_midlog");
  ASSERT_TRUE(ckpt::EnsureDir(dir).ok());
  const std::string path = dir + "/wal.log";
  {
    ckpt::WalWriter writer;
    ASSERT_TRUE(writer.Open(path, 0).ok());
    for (TimeStep t = 0; t < 3; ++t) {
      ckpt::WalStepEnd end;
      end.t = t;
      end.model_cost = 1.0 + static_cast<double>(t);
      ASSERT_TRUE(writer.Append(ckpt::WalRecord(end)).ok());
    }
  }
  Result<std::string> bytes = ckpt::ReadFile(path);
  ASSERT_TRUE(bytes.ok());

  const auto rewrite = [&](std::string damaged) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(damaged.data(), static_cast<std::streamsize>(damaged.size()));
  };

  // Flip a payload byte of the FIRST record (the 12-byte frame header
  // ends at offset 12): two intact records follow the break.
  std::string mid = *bytes;
  mid[13] ^= 0x01;
  rewrite(mid);
  Result<ckpt::WalContents> read = ckpt::ReadWal(path);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().ToString().find("refusing to truncate"),
            std::string::npos);

  // The SAME damage in the last record is an ordinary torn tail: the
  // intact prefix survives and the break is truncatable.
  std::string tail = *bytes;
  tail[tail.size() - 2] ^= 0x01;
  rewrite(tail);
  Result<ckpt::WalContents> torn = ckpt::ReadWal(path);
  ASSERT_TRUE(torn.ok()) << torn.status().ToString();
  EXPECT_TRUE((*torn).torn_tail);
  ASSERT_EQ((*torn).records.size(), 2u);
  EXPECT_EQ(std::get<ckpt::WalStepEnd>((*torn).records[1]).t, 1);
}

// The incremental-image oracle: folding a captured delta onto its base
// must reproduce, BYTE FOR BYTE, the full image a non-incremental
// capture takes at the same moment -- across inserts, deletes, partial
// batch processing, vacuum, index creation, and a second chained link.
TEST(CheckpointTest, DeltaChainFoldsToFullImageByteExactly) {
  Fixture fx;
  // Non-trivial base: churn + partial processing before the full image.
  for (int i = 0; i < 12; ++i) fx.updater->UpdatePartSuppSupplycost();
  for (int i = 0; i < 4; ++i) fx.updater->UpdateSupplierNationkey();
  fx.maintainer->ProcessBatch(0, 7);
  const ckpt::CheckpointImage base =
      ckpt::CaptureCheckpoint(fx.db, *fx.maintainer, /*seq=*/0,
                              /*next_step=*/0, "d0");
  for (const auto& table : fx.db.tables()) table->BeginCheckpointTracking();
  fx.maintainer->BeginViewDirtyTracking();

  // Window 1: more churn, asymmetric processing, a vacuum pass (slot
  // payloads reclaimed), and a NEW index on a previously unindexed
  // column.
  for (int i = 0; i < 15; ++i) fx.updater->UpdatePartSuppSupplycost();
  for (int i = 0; i < 6; ++i) fx.updater->UpdateSupplierNationkey();
  fx.maintainer->ProcessBatch(0, 11);
  fx.maintainer->ProcessBatch(1, 3);
  fx.maintainer->VacuumConsumed();
  fx.db.table(kPartSupp).CreateHashIndex("ps_partkey");

  ckpt::CheckpointDelta d1 = ckpt::CaptureCheckpointDelta(
      fx.db, *fx.maintainer, /*seq=*/1, /*base_seq=*/0, /*next_step=*/0,
      "d1");
  // The delta itself must survive its own serde round trip.
  Result<ckpt::CheckpointDelta> reparsed =
      ckpt::ParseCheckpointDelta(ckpt::SerializeCheckpointDelta(d1));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();

  const ckpt::CheckpointImage full1 =
      ckpt::CaptureCheckpoint(fx.db, *fx.maintainer, 1, 0, "d1");
  Result<ckpt::CheckpointImage> folded1 =
      ckpt::FoldCheckpointDelta(base, *reparsed);
  ASSERT_TRUE(folded1.ok()) << folded1.status().ToString();
  EXPECT_EQ(ckpt::SerializeCheckpoint(*folded1),
            ckpt::SerializeCheckpoint(full1));

  // Window 2 chains onto the FOLDED image, exactly as recovery does.
  for (const auto& table : fx.db.tables()) table->BeginCheckpointTracking();
  fx.maintainer->BeginViewDirtyTracking();
  for (int i = 0; i < 9; ++i) fx.updater->UpdatePartSuppSupplycost();
  fx.maintainer->RefreshAll();
  fx.maintainer->VacuumConsumed();
  const ckpt::CheckpointDelta d2 = ckpt::CaptureCheckpointDelta(
      fx.db, *fx.maintainer, /*seq=*/2, /*base_seq=*/1, /*next_step=*/0,
      "d2");
  const ckpt::CheckpointImage full2 =
      ckpt::CaptureCheckpoint(fx.db, *fx.maintainer, 2, 0, "d2");
  Result<ckpt::CheckpointImage> folded2 =
      ckpt::FoldCheckpointDelta(*folded1, d2);
  ASSERT_TRUE(folded2.ok()) << folded2.status().ToString();
  EXPECT_EQ(ckpt::SerializeCheckpoint(*folded2),
            ckpt::SerializeCheckpoint(full2));

  // Mis-linked folds are rejected, never silently applied: d2 chains
  // onto seq 1, not onto the seq-0 base.
  EXPECT_FALSE(ckpt::FoldCheckpointDelta(base, d2).ok());
}

// A crash between a manifest swap and its reclaim pass orphans the
// superseded files; the next Start in that directory must sweep them
// (counted via ckpt.orphans_reclaimed), not leak them forever.
TEST(DurableRunTest, OrphanedArtifactsAreSweptOnStart) {
  const std::string dir = TestDir("orphan_start");
  {
    Fixture fx;
    auto mgr = ckpt::DurabilityManager::Start(
        dir, &fx.db, fx.maintainer.get(),
        [&] { return fx.updater->SaveState(); });
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  }
  // What a crash mid-publish could leave: a checkpoint file no manifest
  // reaches and a stale temp from an interrupted durable write.
  const std::string orphan_ckpt = dir + "/" + ckpt::CheckpointFileName(99);
  const std::string stale_tmp = dir + "/stale.tmp";
  for (const std::string& junk : {orphan_ckpt, stale_tmp}) {
    std::ofstream f(junk, std::ios::binary);
    f << "junk";
  }

  Fixture fx2;
  obs::MetricRegistry metrics;
  auto mgr = ckpt::DurabilityManager::Start(
      dir, &fx2.db, fx2.maintainer.get(),
      [&] { return fx2.updater->SaveState(); }, {}, &metrics);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_EQ((*mgr)->orphans_reclaimed(), 2u);
  EXPECT_EQ(metrics.Snapshot().counters.at("ckpt.orphans_reclaimed"), 2u);
  EXPECT_FALSE(ckpt::FileExists(orphan_ckpt));
  EXPECT_FALSE(ckpt::FileExists(stale_tmp));
}

TEST(DurableRunTest, OrphanedArtifactsAreSweptOnResume) {
  const ArrivalSequence arrivals = ArrivalSequence::Uniform({2, 1, 0, 0}, 19);
  const CostModel model = PaperLikeModel();
  const std::string dir = TestDir("orphan_resume");
  Fixture fx;
  auto mgr = ckpt::DurabilityManager::Start(
      dir, &fx.db, fx.maintainer.get(),
      [&] { return fx.updater->SaveState(); });
  ASSERT_TRUE(mgr.ok());
  EngineRunnerOptions options;
  options.durability = (*mgr).get();
  OnlinePolicy policy;
  ASSERT_FALSE(RunOnEngine(*fx.maintainer, arrivals, model, 15.0, policy,
                           fx.driver, options)
                   .aborted);

  const std::string orphan_ckpt = dir + "/" + ckpt::CheckpointFileName(99);
  const std::string stale_tmp = dir + "/stale.tmp";
  for (const std::string& junk : {orphan_ckpt, stale_tmp}) {
    std::ofstream f(junk, std::ios::binary);
    f << "junk";
  }

  OnlinePolicy policy2;
  auto rec = ckpt::RecoverFromDir(dir, MakePaperMinView(), model, 15.0,
                                  &policy2);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  TpcUpdater updater((*rec).db.get(), 0);
  updater.RestoreState((*rec).driver_blob);
  auto resumed = ckpt::DurabilityManager::Resume(
      dir, (*rec).db.get(), (*rec).maintainer.get(),
      [&] { return updater.SaveState(); }, (*rec).handle);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ((*resumed)->orphans_reclaimed(), 2u);
  EXPECT_FALSE(ckpt::FileExists(orphan_ckpt));
  EXPECT_FALSE(ckpt::FileExists(stale_tmp));
}

// checkpoint_every = 1 with policy snapshots: the aggressive end of the
// knob space. Every step publishes (mostly deltas, chain rebased every
// 4 files) and trims the WAL below the image, so WAL disk usage stays
// bounded by ONE step -- and recovery still reproduces the run from the
// image chain + policy blob alone.
TEST(DurableRunTest, PerStepCheckpointsKeepWalBoundedAndRecover) {
  const ArrivalSequence arrivals = ArrivalSequence::Uniform({2, 1, 0, 0}, 19);
  const CostModel model = PaperLikeModel();
  const double budget = 15.0;
  const std::string dir = TestDir("per_step_ckpt");

  Fixture fx;
  OnlinePolicy policy;
  ckpt::DurabilityOptions durability;
  durability.checkpoint_every = 1;
  durability.save_policy = [&policy] { return policy.SaveState(); };
  auto mgr = ckpt::DurabilityManager::Start(
      dir, &fx.db, fx.maintainer.get(),
      [&] { return fx.updater->SaveState(); }, durability);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EngineRunnerOptions options;
  options.durability = (*mgr).get();
  const EngineTrace live = RunOnEngine(*fx.maintainer, arrivals, model,
                                       budget, policy, fx.driver, options);
  ASSERT_FALSE(live.aborted) << live.abort_reason;

  // Seq-0 plus one image per step; full images at seq 0, 4, 8, ... when
  // the 4-file chain rebases, deltas everywhere between.
  EXPECT_EQ((*mgr)->checkpoints_published(), 21u);
  EXPECT_EQ((*mgr)->deltas_published(), 15u);
  EXPECT_GT((*mgr)->wal_bytes_trimmed(), 0u);

  // The WAL on disk is bounded by one checkpoint cycle: after the final
  // trim only the freshly rotated segment (plus at most the one being
  // written) remains of the 20 segments the run went through.
  Result<std::vector<std::string>> names = ckpt::ListDir(dir);
  ASSERT_TRUE(names.ok());
  size_t wal_files = 0;
  for (const std::string& name : *names) {
    wal_files += ckpt::ParseWalSegmentIndex(name) != 0 ? 1 : 0;
  }
  EXPECT_LE(wal_files, 2u);

  // Recovery of the finished run: the image's trace prefix alone covers
  // every step (the WAL below it is gone) and stitches to the live run.
  OnlinePolicy policy2;
  auto rec = ckpt::RecoverFromDir(dir, MakePaperMinView(), model, budget,
                                  &policy2);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_FALSE((*rec).resume.mid_step);
  EXPECT_EQ((*rec).resume.first_step, arrivals.horizon() + 1);
  ASSERT_EQ((*rec).trace_prefix.size(),
            static_cast<size_t>(arrivals.horizon() + 1));
  EXPECT_TRUE((*rec).maintainer->state().SameContents(
      fx.maintainer->state()));
  const EngineTrace stitched = ckpt::StitchTrace((*rec).trace_prefix, {});
  std::string why;
  EXPECT_TRUE(ckpt::DeterministicTraceEquals(stitched, live, &why)) << why;
}

// checkpoint_every = 0: only the seq-0 image exists, nothing is ever
// trimmed, and recovery replays the ENTIRE run from the WAL.
TEST(DurableRunTest, DisabledCadenceRecoversViaFullWalReplay) {
  const ArrivalSequence arrivals = ArrivalSequence::Uniform({2, 1, 0, 0}, 19);
  const CostModel model = PaperLikeModel();
  const std::string dir = TestDir("no_cadence");

  Fixture fx;
  OnlinePolicy policy;
  ckpt::DurabilityOptions durability;
  durability.checkpoint_every = 0;
  durability.save_policy = [&policy] { return policy.SaveState(); };
  auto mgr = ckpt::DurabilityManager::Start(
      dir, &fx.db, fx.maintainer.get(),
      [&] { return fx.updater->SaveState(); }, durability);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EngineRunnerOptions options;
  options.durability = (*mgr).get();
  const EngineTrace live = RunOnEngine(*fx.maintainer, arrivals, model,
                                       15.0, policy, fx.driver, options);
  ASSERT_FALSE(live.aborted) << live.abort_reason;
  EXPECT_EQ((*mgr)->checkpoints_published(), 1u);
  EXPECT_EQ((*mgr)->deltas_published(), 0u);
  EXPECT_EQ((*mgr)->wal_bytes_trimmed(), 0u);

  obs::MetricRegistry rec_metrics;
  ckpt::RecoveryOptions rec_options;
  rec_options.metrics = &rec_metrics;
  OnlinePolicy policy2;
  auto rec = ckpt::RecoverFromDir(dir, MakePaperMinView(), model, 15.0,
                                  &policy2, rec_options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ((*rec).resume.first_step, arrivals.horizon() + 1);
  EXPECT_TRUE((*rec).maintainer->state().SameContents(
      fx.maintainer->state()));
  const EngineTrace stitched = ckpt::StitchTrace((*rec).trace_prefix, {});
  std::string why;
  EXPECT_TRUE(ckpt::DeterministicTraceEquals(stitched, live, &why)) << why;
  // Every step came from WAL replay, none from an image prefix.
  EXPECT_GT(rec_metrics.Snapshot().counters.at("recovery.replayed_records"),
            0u);
}

}  // namespace
}  // namespace abivm
