// Durability building blocks: WAL framing and torn-tail handling, the
// checkpoint image round trip, the manifest publication protocol under
// injected faults, and the fault-free durable-run -> recover cycle.
// Runs under the `recovery` ctest label.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "ckpt/manager.h"
#include "ckpt/recovery.h"
#include "ckpt/serde.h"
#include "ckpt/wal.h"
#include "core/naive.h"
#include "core/online.h"
#include "fault/failpoint.h"
#include "fault/sites.h"
#include "sim/engine_runner.h"
#include "tpc/tpc_gen.h"
#include "tpc/update_stream.h"
#include "tpc/views.h"

namespace abivm {
namespace {

using fault::ScopedFailpoint;

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "abivm_ckpt_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

struct Fixture {
  Database db;
  std::unique_ptr<ViewMaintainer> maintainer;
  std::unique_ptr<TpcUpdater> updater;
  ModificationDriver driver;

  Fixture() {
    TpcGenOptions options;
    options.scale_factor = 0.001;
    GenerateTpcDatabase(&db, options);
    CreatePaperIndexes(&db);
    maintainer = std::make_unique<ViewMaintainer>(&db, MakePaperMinView());
    updater = std::make_unique<TpcUpdater>(&db, 99);
    driver = [this](size_t table_index) {
      if (table_index == 0) {
        updater->UpdatePartSuppSupplycost();
      } else if (table_index == 1) {
        updater->UpdateSupplierNationkey();
      } else {
        ABIVM_CHECK_MSG(false, "no modifications for table " << table_index);
      }
    };
  }
};

CostModel PaperLikeModel() {
  std::vector<CostFunctionPtr> fns = {
      std::make_shared<LinearCost>(0.3, 0.5),
      std::make_shared<LinearCost>(0.2, 6.0),
      std::make_shared<LinearCost>(0.1, 0.1),
      std::make_shared<LinearCost>(0.1, 0.1)};
  return CostModel(std::move(fns));
}

TEST(SerdeTest, ChecksumIsStableAndSensitive) {
  EXPECT_EQ(ckpt::Checksum("abc"), ckpt::Checksum("abc"));
  EXPECT_NE(ckpt::Checksum("abc"), ckpt::Checksum("abd"));
  EXPECT_NE(ckpt::Checksum(""), ckpt::Checksum(std::string_view("\0", 1)));
}

TEST(WalTest, RoundTripsAllRecordTypes) {
  const std::string dir = TestDir("wal_roundtrip");
  ASSERT_TRUE(ckpt::EnsureDir(dir).ok());
  const std::string path = dir + "/wal.log";

  ckpt::WalStepPlan plan;
  plan.t = 3;
  plan.forced = false;
  plan.arrivals = {2, 1, 0, 0};
  plan.pre_state = {5, 1, 0, 0};
  plan.action = {4, 0, 0, 0};
  plan.driver_blob = std::string("blob\0with\377bytes", 15);
  AppliedModification mod;
  mod.table_index = 1;
  mod.version = 42;
  mod.kind = ModKind::kUpdate;
  mod.deleted_id = 7;
  mod.inserted_id = 19;
  mod.old_row = {Value(int64_t{1}), Value("old")};
  mod.new_row = {Value(int64_t{1}), Value(2.5)};
  plan.mods.push_back(mod);

  ckpt::WalBatchCommit batch;
  batch.t = 3;
  batch.table = 0;
  batch.k = 4;
  batch.processed = 4;
  batch.delta_rows_in = 8;
  batch.view_updates = 6;
  batch.stats.rows_scanned = 100;
  batch.stats.index_probes = 8;
  batch.stats.output_rows = 6;

  ckpt::WalStepEnd end;
  end.t = 3;
  end.model_cost = 1.7;
  end.abandoned_model_cost = 0.25;
  end.backoff_ms = 3.0;
  end.stats = batch.stats;
  end.failures = 2;
  end.retries = 2;
  end.degraded = false;
  end.violation = true;

  {
    ckpt::WalWriter writer;
    ASSERT_TRUE(writer.Open(path, 0).ok());
    ASSERT_TRUE(writer.Append(ckpt::WalRecord(plan)).ok());
    ASSERT_TRUE(writer.Append(ckpt::WalRecord(batch)).ok());
    ASSERT_TRUE(writer.Append(ckpt::WalRecord(end)).ok());
    EXPECT_EQ(writer.records_appended(), 3u);
  }

  Result<ckpt::WalContents> read = ckpt::ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_FALSE((*read).torn_tail);
  EXPECT_EQ((*read).valid_bytes, std::filesystem::file_size(path));
  ASSERT_EQ((*read).records.size(), 3u);

  const auto& p = std::get<ckpt::WalStepPlan>((*read).records[0]);
  EXPECT_EQ(p.t, 3);
  EXPECT_FALSE(p.forced);
  EXPECT_EQ(p.arrivals, plan.arrivals);
  EXPECT_EQ(p.pre_state, plan.pre_state);
  EXPECT_EQ(p.action, plan.action);
  EXPECT_EQ(p.driver_blob, plan.driver_blob);
  ASSERT_EQ(p.mods.size(), 1u);
  EXPECT_EQ(p.mods[0].table_index, 1u);
  EXPECT_EQ(p.mods[0].version, 42u);
  EXPECT_EQ(p.mods[0].kind, ModKind::kUpdate);
  EXPECT_EQ(p.mods[0].deleted_id, 7u);
  EXPECT_EQ(p.mods[0].inserted_id, 19u);
  EXPECT_EQ(p.mods[0].old_row, mod.old_row);
  EXPECT_EQ(p.mods[0].new_row, mod.new_row);

  const auto& b = std::get<ckpt::WalBatchCommit>((*read).records[1]);
  EXPECT_EQ(b.table, 0u);
  EXPECT_EQ(b.k, 4u);
  EXPECT_TRUE(b.stats == batch.stats);

  const auto& e = std::get<ckpt::WalStepEnd>((*read).records[2]);
  EXPECT_EQ(e.model_cost, 1.7);
  EXPECT_EQ(e.abandoned_model_cost, 0.25);
  EXPECT_EQ(e.failures, 2u);
  EXPECT_TRUE(e.violation);
}

TEST(WalTest, TornTailIsReportedAndTruncatedOnReopen) {
  const std::string dir = TestDir("wal_torn");
  ASSERT_TRUE(ckpt::EnsureDir(dir).ok());
  const std::string path = dir + "/wal.log";
  {
    ckpt::WalWriter writer;
    ASSERT_TRUE(writer.Open(path, 0).ok());
    ckpt::WalStepEnd end;
    end.t = 0;
    ASSERT_TRUE(writer.Append(ckpt::WalRecord(end)).ok());
    end.t = 1;
    ASSERT_TRUE(writer.Append(ckpt::WalRecord(end)).ok());
  }
  const size_t intact = std::filesystem::file_size(path);
  {
    // A crash mid-append leaves a short frame: only part of a length
    // prefix plus garbage.
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write("\x40\x00\x00\x00gar", 7);
  }

  Result<ckpt::WalContents> read = ckpt::ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE((*read).torn_tail);
  EXPECT_EQ((*read).valid_bytes, intact);
  ASSERT_EQ((*read).records.size(), 2u);
  EXPECT_EQ(std::get<ckpt::WalStepEnd>((*read).records[1]).t, 1);

  // Reopening at the valid prefix (what DurabilityManager::Resume does)
  // cuts the tail for good.
  ckpt::WalWriter writer;
  ASSERT_TRUE(writer.Open(path, intact).ok());
  EXPECT_EQ(std::filesystem::file_size(path), intact);
  Result<ckpt::WalContents> reread = ckpt::ReadWal(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_FALSE((*reread).torn_tail);
}

TEST(WalTest, MissingFileIsAnEmptyLog) {
  Result<ckpt::WalContents> read =
      ckpt::ReadWal(TestDir("wal_missing") + "/wal.log");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE((*read).records.empty());
  EXPECT_EQ((*read).valid_bytes, 0u);
  EXPECT_FALSE((*read).torn_tail);
}

// The checkpoint image reproduces the database EXACTLY: every physical
// slot (including vacuumed ones), the live-sampling order, the retained
// delta-log suffix, the version clock, and index behaviour.
TEST(CheckpointTest, ImageRoundTripsTheDatabase) {
  Fixture fx;
  // Work up a non-trivial state: arrivals, asymmetric partial
  // processing, and a vacuum pass so horizons and trimmed logs are all
  // non-default.
  for (int i = 0; i < 30; ++i) fx.updater->UpdatePartSuppSupplycost();
  for (int i = 0; i < 8; ++i) fx.updater->UpdateSupplierNationkey();
  fx.maintainer->ProcessBatch(0, 17);
  fx.maintainer->ProcessBatch(1, 3);
  fx.maintainer->VacuumConsumed();

  const ckpt::CheckpointImage image = ckpt::CaptureCheckpoint(
      fx.db, *fx.maintainer, /*seq=*/5, /*next_step=*/12, "driverstate");
  const std::string payload = ckpt::SerializeCheckpoint(image);
  Result<ckpt::CheckpointImage> parsed = ckpt::ParseCheckpoint(payload);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ((*parsed).seq, 5u);
  EXPECT_EQ((*parsed).next_step, 12);
  EXPECT_EQ((*parsed).driver_blob, "driverstate");
  EXPECT_EQ((*parsed).db_version, fx.db.current_version());

  Database restored;
  ASSERT_TRUE(ckpt::InstallDatabaseImage(*parsed, &restored).ok());
  EXPECT_EQ(restored.current_version(), fx.db.current_version());
  ASSERT_EQ(restored.tables().size(), fx.db.tables().size());
  for (size_t i = 0; i < fx.db.tables().size(); ++i) {
    const Table& want = *fx.db.tables()[i];
    const Table& got = *restored.tables()[i];
    SCOPED_TRACE(want.name());
    EXPECT_EQ(got.name(), want.name());
    EXPECT_EQ(got.physical_row_count(), want.physical_row_count());
    EXPECT_EQ(got.live_row_count(), want.live_row_count());
    EXPECT_EQ(got.vacuum_horizon(), want.vacuum_horizon());
    EXPECT_EQ(got.live_ids(), want.live_ids());
    EXPECT_EQ(got.delta_log().size(), want.delta_log().size());
    EXPECT_EQ(got.delta_log().first_retained(),
              want.delta_log().first_retained());
    for (size_t p = want.delta_log().first_retained();
         p < want.delta_log().size(); ++p) {
      const Modification& wm = want.delta_log().At(p);
      const Modification& gm = got.delta_log().At(p);
      EXPECT_EQ(gm.version, wm.version);
      EXPECT_EQ(gm.kind, wm.kind);
      EXPECT_EQ(gm.old_row, wm.old_row);
      EXPECT_EQ(gm.new_row, wm.new_row);
    }
    // Every physical slot matches bit-for-bit, vacuumed or not.
    for (RowId id = 0; id < want.physical_row_count(); ++id) {
      const VersionedRow& wr = want.RowAt(id);
      const VersionedRow& gr = got.RowAt(id);
      ASSERT_EQ(gr.row, wr.row) << "row " << id;
      ASSERT_EQ(gr.insert_version, wr.insert_version) << "row " << id;
      ASSERT_EQ(gr.delete_version, wr.delete_version) << "row " << id;
    }
  }
  // Index behaviour survives: probe the supplier suppkey index at the
  // current snapshot on both databases and compare hit sets.
  const Table& want_sup = fx.db.table(kSupplier);
  const Table& got_sup = restored.table(kSupplier);
  const Version v = fx.db.current_version();
  const size_t col = want_sup.schema().ColumnIndex("s_suppkey");
  size_t want_hits = 0;
  size_t got_hits = 0;
  want_sup.ScanAt(v, [&](RowId id, const Row& row) {
    want_sup.IndexLookup(col, row[col], v, [&](RowId wid, const Row&) {
      want_hits += wid == id ? 1 : 0;
    });
    got_sup.IndexLookup(col, row[col], v, [&](RowId gid, const Row&) {
      got_hits += gid == id ? 1 : 0;
    });
  });
  EXPECT_GT(want_hits, 0u);
  EXPECT_EQ(got_hits, want_hits);
}

TEST(CheckpointTest, PublishCrashLeavesPreviousManifestIntact) {
  Fixture fx;
  const std::string dir = TestDir("manifest_crash");
  ASSERT_TRUE(ckpt::EnsureDir(dir).ok());
  const ckpt::CheckpointImage image0 =
      ckpt::CaptureCheckpoint(fx.db, *fx.maintainer, 0, 0, "d0");
  ASSERT_TRUE(ckpt::PublishCheckpoint(dir, image0).ok());

  fx.updater->UpdatePartSuppSupplycost();
  fx.maintainer->RefreshAll();
  ckpt::CheckpointImage image1 =
      ckpt::CaptureCheckpoint(fx.db, *fx.maintainer, 1, 4, "d1");

  // Crash at every stage of the publication protocol: the previous
  // manifest/image pair must stay live and readable.
  for (const char* site :
       {fault::kFpCkptWrite, fault::kFpCkptFsync, fault::kFpCkptRename,
        fault::kFpCkptManifest}) {
    SCOPED_TRACE(site);
    ScopedFailpoint guard = ScopedFailpoint::Once(site);
    EXPECT_FALSE(ckpt::PublishCheckpoint(dir, image1).ok());
    Result<ckpt::Manifest> manifest = ckpt::ReadManifest(dir);
    ASSERT_TRUE(manifest.ok());
    EXPECT_EQ((*manifest).seq, 0u);
    Result<std::string> payload =
        ckpt::ReadFile(dir + "/" + (*manifest).checkpoint_file);
    ASSERT_TRUE(payload.ok());
    EXPECT_EQ(ckpt::Checksum(*payload), (*manifest).checkpoint_checksum);
  }

  // With the faults gone the publish goes through and supersedes seq 0.
  ASSERT_TRUE(ckpt::PublishCheckpoint(dir, image1).ok());
  Result<ckpt::Manifest> manifest = ckpt::ReadManifest(dir);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ((*manifest).seq, 1u);
  // The superseded image is gone (best-effort unlink after the swap).
  EXPECT_FALSE(ckpt::FileExists(dir + "/" + ckpt::CheckpointFileName(0)));
}

// Fault-free durable run: every step logged, checkpoints on cadence, GC
// riding the cycle -- and a recovery of the finished run reproduces the
// live trace and the live view exactly.
TEST(DurableRunTest, CleanRunRecoversToFinalState) {
  const ArrivalSequence arrivals = ArrivalSequence::Uniform({2, 1, 0, 0}, 19);
  const CostModel model = PaperLikeModel();
  const double budget = 15.0;
  const std::string dir = TestDir("clean_run");

  Fixture fx;
  obs::MetricRegistry metrics;
  auto mgr = ckpt::DurabilityManager::Start(
      dir, &fx.db, fx.maintainer.get(),
      [&] { return fx.updater->SaveState(); }, {}, &metrics);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();

  EngineRunnerOptions options;
  options.durability = (*mgr).get();
  OnlinePolicy policy;
  const EngineTrace live =
      RunOnEngine(*fx.maintainer, arrivals, model, budget, policy,
                  fx.driver, options);
  ASSERT_FALSE(live.aborted) << live.abort_reason;
  EXPECT_TRUE(live.ended_consistent);

  // Cadence 8 over 20 steps: seq-0 plus checkpoints after steps 7 and 15.
  EXPECT_EQ((*mgr)->checkpoints_published(), 3u);
  EXPECT_GT((*mgr)->gc_passes(), 0u);
  EXPECT_GT((*mgr)->gc_rows_reclaimed(), 0u);
  const obs::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters.at("ckpt.checkpoints"), 3u);
  EXPECT_GT(snap.counters.at("ckpt.bytes_written"), 0u);
  EXPECT_GT(snap.counters.at("ckpt.wal_records"), 0u);
  EXPECT_GT(snap.counters.at("gc.passes"), 0u);
  EXPECT_GT(snap.counters.at("gc.rows_reclaimed"), 0u);

  // GC actually moved the vacuum horizon, and the safe-version argument
  // held: the horizon never passed the checkpointed version clock.
  EXPECT_GT(fx.db.table(kPartSupp).vacuum_horizon(), 0u);
  EXPECT_LE(fx.db.table(kPartSupp).vacuum_horizon(),
            fx.db.current_version());

  // Recover the COMPLETED run: nothing left to execute, and both the
  // trace and the view reproduce the live run's.
  obs::MetricRegistry rec_metrics;
  ckpt::RecoveryOptions rec_options;
  rec_options.metrics = &rec_metrics;
  OnlinePolicy policy2;
  auto rec = ckpt::RecoverFromDir(dir, MakePaperMinView(), model, budget,
                                  &policy2, rec_options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ckpt::RecoveredRun& run = *rec;
  EXPECT_FALSE(run.resume.mid_step);
  EXPECT_EQ(run.resume.first_step, arrivals.horizon() + 1);
  EXPECT_EQ(run.db->current_version(), fx.db.current_version());

  // Bit-identical maintenance state: recovered == recompute oracle at
  // the recovered watermarks, and == the live maintainer.
  EXPECT_TRUE(run.maintainer->state().SameContents(
      run.maintainer->RecomputeAtWatermarks()));
  EXPECT_TRUE(run.maintainer->state().SameContents(fx.maintainer->state()));
  for (size_t i = 0; i < run.maintainer->num_tables(); ++i) {
    EXPECT_EQ(run.maintainer->watermark_position(i),
              fx.maintainer->watermark_position(i));
    EXPECT_EQ(run.maintainer->watermark_version(i),
              fx.maintainer->watermark_version(i));
  }

  const EngineTrace stitched = ckpt::StitchTrace(run.trace_prefix, {});
  std::string why;
  EXPECT_TRUE(ckpt::DeterministicTraceEquals(stitched, live, &why)) << why;

  EXPECT_GT(rec_metrics.Snapshot().counters.at("recovery.replayed_records"),
            0u);
  EXPECT_GT(rec_metrics.Snapshot().counters.at("recovery.replayed_batches"),
            0u);
}

// Checkpoints are strictly off the hot path: a run with durability
// disabled takes zero ckpt.* counters and installs no listener cost
// beyond one branch per apply (guarded here by API shape, measured by
// the micro benches).
TEST(DurableRunTest, RecoveryRejectsCorruptCheckpoint) {
  const std::string dir = TestDir("corrupt_ckpt");
  Fixture fx;
  auto mgr = ckpt::DurabilityManager::Start(
      dir, &fx.db, fx.maintainer.get(),
      [&] { return fx.updater->SaveState(); });
  ASSERT_TRUE(mgr.ok());
  Result<ckpt::Manifest> manifest = ckpt::ReadManifest(dir);
  ASSERT_TRUE(manifest.ok());

  // Flip a byte in the image: the manifest checksum must catch it.
  const std::string path = dir + "/" + (*manifest).checkpoint_file;
  Result<std::string> payload = ckpt::ReadFile(path);
  ASSERT_TRUE(payload.ok());
  std::string tampered = *payload;
  tampered[tampered.size() / 2] ^= 0x01;
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(tampered.data(), static_cast<std::streamsize>(tampered.size()));
  }
  OnlinePolicy policy;
  auto rec = ckpt::RecoverFromDir(dir, MakePaperMinView(), PaperLikeModel(),
                                  15.0, &policy);
  ASSERT_FALSE(rec.ok());
  EXPECT_NE(rec.status().ToString().find("checksum"), std::string::npos);
}

TEST(DurableRunTest, RecoveringAnEmptyDirFailsCleanly) {
  OnlinePolicy policy;
  auto rec = ckpt::RecoverFromDir(TestDir("no_such_run"), MakePaperMinView(),
                                  PaperLikeModel(), 15.0, &policy);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace abivm
