#include "obs/json.h"

#include <cmath>
#include <functional>
#include <sstream>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"

namespace abivm::obs {
namespace {

std::string Compact(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream os;
  JsonWriter writer(os, /*indent=*/0);
  body(writer);
  return os.str();
}

TEST(JsonWriterTest, ObjectWithFields) {
  const std::string out = Compact([](JsonWriter& w) {
    w.BeginObject();
    w.Field("name", "fig06");
    w.Field("cost", 1.5);
    w.Field("jobs", static_cast<uint64_t>(3));
    w.Field("ok", true);
    w.EndObject();
  });
  EXPECT_EQ(out, R"({"name":"fig06","cost":1.5,"jobs":3,"ok":true})");
}

TEST(JsonWriterTest, NestedArrays) {
  const std::string out = Compact([](JsonWriter& w) {
    w.BeginArray();
    w.Number(1.0);
    w.BeginArray();
    w.Number(static_cast<int64_t>(-2));
    w.EndArray();
    w.Null();
    w.EndArray();
  });
  EXPECT_EQ(out, "[1,[-2],null]");
}

TEST(JsonWriterTest, EscapesStrings) {
  const std::string out = Compact([](JsonWriter& w) {
    w.String("a\"b\\c\n\t\x01");
  });
  EXPECT_EQ(out, R"("a\"b\\c\n\t\u0001")");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  const std::string out = Compact([](JsonWriter& w) {
    w.BeginArray();
    w.Number(std::nan(""));
    w.Number(INFINITY);
    w.EndArray();
  });
  EXPECT_EQ(out, "[null,null]");
}

TEST(JsonWriterTest, NumbersRoundTrip) {
  const std::string out = Compact([](JsonWriter& w) {
    w.Number(0.1);
  });
  EXPECT_EQ(std::stod(out), 0.1);
}

TEST(JsonWriterTest, PrettyPrintsWithIndent) {
  std::ostringstream os;
  {
    JsonWriter w(os, 2);
    w.BeginObject();
    w.Field("a", static_cast<uint64_t>(1));
    w.EndObject();
  }
  EXPECT_EQ(os.str(), "{\n  \"a\": 1\n}");
}

TEST(SnapshotJsonTest, SerializesAllSections) {
  MetricRegistry registry;
  registry.counter("astar.nodes_expanded").Add(42);
  registry.timer("astar.search_ms").Record(1.5);
  registry.histogram("sim.action_cost").Record(3.0);

  std::ostringstream os;
  JsonWriter writer(os, 0);
  WriteSnapshotJson(writer, registry.Snapshot());
  const std::string out = os.str();
  EXPECT_NE(out.find(R"("astar.nodes_expanded":42)"), std::string::npos);
  EXPECT_NE(out.find(R"("astar.search_ms":{"count":1,"total_ms":1.5)"),
            std::string::npos);
  EXPECT_NE(out.find(R"("sim.action_cost")"), std::string::npos);
  EXPECT_NE(out.find(R"("buckets":[{"le":4,"count":1}])"),
            std::string::npos);
}

TEST(SnapshotJsonTest, EmptySnapshotIsEmptyObject) {
  std::ostringstream os;
  JsonWriter writer(os, 0);
  WriteSnapshotJson(writer, MetricsSnapshot{});
  EXPECT_EQ(os.str(), "{}");
}

}  // namespace
}  // namespace abivm::obs
