#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace abivm::obs {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(0.99), 0.0);
}

TEST(LatencyHistogramTest, CountSumMinMaxAreExact) {
  LatencyHistogram h;
  h.Record(0.5);
  h.Record(2.0);
  h.Record(8.25);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.75);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 8.25);
}

TEST(LatencyHistogramTest, QuantilesWithinRelativeErrorBound) {
  // Uniform samples over [1, 1000] ms: every quantile estimate must sit
  // within the log-linear bucketing's relative error (1/kSubBuckets)
  // of the exact order statistic.
  LatencyHistogram h;
  std::vector<double> samples;
  Rng rng(7);
  for (int i = 0; i < 20'000; ++i) {
    const double v = rng.UniformDouble(1.0, 1000.0);
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  const double rel = 1.0 / LatencyHistogram::kSubBuckets;
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    const double exact = samples[rank - 1];
    const double estimate = h.Quantile(q);
    EXPECT_NEAR(estimate, exact, exact * rel)
        << "q=" << q << " exact=" << exact << " est=" << estimate;
  }
  // Extremes clamp to the observed range.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.max());
}

TEST(LatencyHistogramTest, TinyAndHugeSamplesClampIntoRange) {
  LatencyHistogram h;
  h.Record(0.0);           // below 1 ns resolution
  h.Record(1e-9);          // below 1 ns resolution
  h.Record(1e12);          // way past the top bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
  // Quantiles stay finite and within [min, max].
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, 1e12);
}

TEST(LatencyHistogramTest, ConcurrentRecordLosesNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(1.0 + static_cast<double>((t * kPerThread + i) % 100));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads * kPerThread));
  const double p50 = h.Quantile(0.5);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, h.max());
}

TEST(LatencyHistogramTest, BucketBoundsAreMonotone) {
  double prev = 0.0;
  for (size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    const double bound = LatencyHistogram::BucketUpperBound(b);
    EXPECT_GT(bound, prev) << "bucket " << b;
    prev = bound;
  }
}

TEST(GaugeTest, SetAndAddTrackLevels) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.Set(42);
  EXPECT_EQ(g.value(), 42);
  g.Add(-10);
  EXPECT_EQ(g.value(), 32);
  g.Set(-5);  // gauges may go negative (they are levels, not counts)
  EXPECT_EQ(g.value(), -5);
}

TEST(RegistryLatencyTest, SnapshotComputesQuantiles) {
  MetricRegistry registry;
  LatencyHistogram& lat = registry.latency("serve.read_fresh_ms");
  registry.gauge("serve.queue_depth").Set(7);
  for (int i = 1; i <= 100; ++i) lat.Record(static_cast<double>(i));

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.latencies.count("serve.read_fresh_ms"), 1u);
  const auto& stat = snap.latencies.at("serve.read_fresh_ms");
  EXPECT_EQ(stat.count, 100u);
  EXPECT_DOUBLE_EQ(stat.min, 1.0);
  EXPECT_DOUBLE_EQ(stat.max, 100.0);
  EXPECT_NEAR(stat.p50, 50.0, 50.0 / LatencyHistogram::kSubBuckets);
  EXPECT_NEAR(stat.p99, 99.0, 99.0 / LatencyHistogram::kSubBuckets);
  EXPECT_GE(stat.p999, stat.p99);
  ASSERT_EQ(snap.gauges.count("serve.queue_depth"), 1u);
  EXPECT_EQ(snap.gauges.at("serve.queue_depth"), 7);

  // JSON export carries both new sections.
  std::ostringstream os;
  {
    JsonWriter writer(os);
    WriteSnapshotJson(writer, snap);
  }
  const std::string json = os.str();
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"latencies\""), std::string::npos);
  EXPECT_NE(json.find("serve.read_fresh_ms"), std::string::npos);
}

}  // namespace
}  // namespace abivm::obs
