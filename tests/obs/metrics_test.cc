#include "obs/metrics.h"

#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fault/failpoint.h"
#include "obs/export.h"
#include "obs/span.h"

namespace abivm::obs {
namespace {

TEST(CounterTest, AddsAndRaises) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(4);
  EXPECT_EQ(c.value(), 5u);
  c.RaiseTo(3);  // below current: no-op
  EXPECT_EQ(c.value(), 5u);
  c.RaiseTo(17);
  EXPECT_EQ(c.value(), 17u);
}

TEST(TimerTest, TracksCountTotalAndMax) {
  Timer t;
  t.Record(2.0);
  t.Record(5.0);
  t.Record(1.0);
  EXPECT_EQ(t.count(), 3u);
  EXPECT_DOUBLE_EQ(t.total_ms(), 8.0);
  EXPECT_DOUBLE_EQ(t.max_ms(), 5.0);
}

TEST(HistogramTest, PowerOfTwoBuckets) {
  Histogram h;
  h.Record(0.5);   // bucket 0 (<= 1)
  h.Record(1.0);   // bucket 0 (edge)
  h.Record(2.0);   // bucket 1 ((1, 2])
  h.Record(3.0);   // bucket 2 ((2, 4])
  h.Record(4.0);   // bucket 2 (edge)
  h.Record(100.0); // bucket 7 ((64, 128])
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 110.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(7), 1u);
  EXPECT_EQ(h.bucket(3), 0u);
}

TEST(MetricRegistryTest, InterningIsStable) {
  MetricRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.Add(2);
  EXPECT_EQ(registry.counter("x").value(), 2u);
  // Different kinds may share a name without clashing.
  registry.timer("x").Record(1.0);
  EXPECT_EQ(registry.timer("x").count(), 1u);
}

TEST(MetricRegistryTest, SnapshotCopiesEverything) {
  MetricRegistry registry;
  registry.counter("jobs").Add(3);
  registry.timer("run_ms").Record(2.5);
  registry.histogram("cost").Record(3.0);

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_FALSE(snapshot.empty());
  EXPECT_EQ(snapshot.counters.at("jobs"), 3u);
  EXPECT_EQ(snapshot.timers.at("run_ms").count, 1u);
  EXPECT_DOUBLE_EQ(snapshot.timers.at("run_ms").total_ms, 2.5);
  const auto& hist = snapshot.histograms.at("cost");
  EXPECT_EQ(hist.count, 1u);
  EXPECT_DOUBLE_EQ(hist.sum, 3.0);
  // Only non-empty buckets survive, as (upper_bound, count) pairs.
  ASSERT_EQ(hist.buckets.size(), 1u);
  EXPECT_DOUBLE_EQ(hist.buckets[0].first, 4.0);
  EXPECT_EQ(hist.buckets[0].second, 1u);
}

TEST(MetricRegistryTest, ConcurrentRecordingIsLossless) {
  MetricRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&registry] {
      for (int j = 0; j < kIncrements; ++j) {
        registry.counter("shared").Add();
        registry.histogram("h").Record(1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("shared").value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(registry.histogram("h").count(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(ScopedSpanTest, RecordsOnceAndIgnoresNullRegistry) {
  MetricRegistry registry;
  { ScopedSpan span(&registry, "section"); }
  EXPECT_EQ(registry.timer("section").count(), 1u);
  EXPECT_GE(registry.timer("section").total_ms(), 0.0);
  { ScopedSpan span(nullptr, "section"); }  // must not crash or record
  EXPECT_EQ(registry.timer("section").count(), 1u);
}

TEST(MetricRegistryTest, FailpointCountersFlowIntoJsonSnapshot) {
  // Fault-injection counters export through the same registry/snapshot
  // pipeline as every other metric.
  fault::FailpointRegistry failpoints;
  fault::Failpoint& fp = failpoints.Get("ivm.commit");
  fp.ArmOnce(/*skip_hits=*/1);
  (void)fp.Check();  // hit, skipped
  (void)fp.Check();  // hit, triggered

  MetricRegistry registry;
  registry.counter("engine.retries").Add(3);
  registry.counter("engine.degraded_steps").Add(0);
  failpoints.ExportMetrics(registry);

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("fault.hits.ivm.commit"), 2u);
  EXPECT_EQ(snap.counters.at("fault.triggers.ivm.commit"), 1u);
  EXPECT_EQ(snap.counters.at("engine.retries"), 3u);

  std::ostringstream os;
  JsonWriter writer(os, /*indent=*/0);
  WriteSnapshotJson(writer, snap);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"fault.hits.ivm.commit\":2"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"fault.triggers.ivm.commit\":1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"engine.degraded_steps\":0"), std::string::npos)
      << json;
}

}  // namespace
}  // namespace abivm::obs
