#include "fault/failpoint.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fault/sites.h"

namespace abivm::fault {
namespace {

TEST(FailpointTest, DisarmedIsOkAndCountsNothing) {
  FailpointRegistry registry;
  Failpoint& fp = registry.Get("test.site");
  EXPECT_FALSE(fp.armed());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(fp.Check().ok());
  EXPECT_EQ(fp.hits(), 0u);
  EXPECT_EQ(fp.triggers(), 0u);
}

TEST(FailpointTest, ArmOnceFiresOnFirstHitThenDisarms) {
  FailpointRegistry registry;
  Failpoint& fp = registry.Get("test.site");
  fp.ArmOnce();
  const Status status = fp.Check();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("test.site"), std::string::npos);
  EXPECT_FALSE(fp.armed());
  EXPECT_TRUE(fp.Check().ok());  // one-shot: subsequent hits pass
  EXPECT_EQ(fp.hits(), 1u);      // disarmed hits are not counted
  EXPECT_EQ(fp.triggers(), 1u);
}

TEST(FailpointTest, ArmOnceSkipsTheFirstNHits) {
  FailpointRegistry registry;
  Failpoint& fp = registry.Get("test.site");
  fp.ArmOnce(/*skip_hits=*/2);
  EXPECT_TRUE(fp.Check().ok());
  EXPECT_TRUE(fp.Check().ok());
  EXPECT_FALSE(fp.Check().ok());  // third hit fires
  EXPECT_EQ(fp.hits(), 3u);
  EXPECT_EQ(fp.triggers(), 1u);
}

TEST(FailpointTest, ArmAlwaysFiresUntilDisarmed) {
  FailpointRegistry registry;
  Failpoint& fp = registry.Get("test.site");
  fp.ArmAlways();
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(fp.Check().ok());
  fp.Disarm();
  EXPECT_TRUE(fp.Check().ok());
  EXPECT_EQ(fp.hits(), 4u);
  EXPECT_EQ(fp.triggers(), 4u);
}

TEST(FailpointTest, ProbabilityScheduleIsSeedDeterministic) {
  FailpointRegistry registry;
  Failpoint& a = registry.Get("test.a");
  Failpoint& b = registry.Get("test.b");
  a.ArmProbability(0.5, /*seed=*/1234);
  b.ArmProbability(0.5, /*seed=*/1234);
  uint64_t fired = 0;
  for (int i = 0; i < 200; ++i) {
    const bool fa = !a.Check().ok();
    const bool fb = !b.Check().ok();
    EXPECT_EQ(fa, fb) << "same seed must give the same schedule at hit "
                      << i;
    fired += fa ? 1u : 0u;
  }
  // p=0.5 over 200 draws: both outcomes must occur.
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, 200u);
  EXPECT_EQ(a.triggers(), fired);
}

TEST(FailpointTest, ProbabilityExtremesAreExact) {
  FailpointRegistry registry;
  Failpoint& never = registry.Get("test.never");
  Failpoint& always = registry.Get("test.always");
  never.ArmProbability(0.0, 7);
  always.ArmProbability(1.0, 7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(never.Check().ok());
    EXPECT_FALSE(always.Check().ok());
  }
}

TEST(FailpointRegistryTest, GetInternsByName) {
  FailpointRegistry registry;
  Failpoint& first = registry.Get("site.x");
  Failpoint& again = registry.Get("site.x");
  EXPECT_EQ(&first, &again);
  registry.Get("site.y");
  EXPECT_EQ(registry.RegisteredNames(),
            (std::vector<std::string>{"site.x", "site.y"}));
}

TEST(FailpointRegistryTest, DisarmAllAndResetAllCounters) {
  FailpointRegistry registry;
  Failpoint& a = registry.Get("a");
  Failpoint& b = registry.Get("b");
  a.ArmAlways();
  b.ArmOnce();
  (void)a.Check();
  registry.DisarmAll();
  EXPECT_FALSE(a.armed());
  EXPECT_FALSE(b.armed());
  EXPECT_EQ(a.hits(), 1u);
  registry.ResetAllCounters();
  EXPECT_EQ(a.hits(), 0u);
  EXPECT_EQ(a.triggers(), 0u);
}

TEST(FailpointRegistryTest, ThreadLocalRegistriesAreIndependent) {
  // Arming a site on this thread must not be visible to another thread's
  // registry -- the property that keeps parallel sweeps deterministic.
  ScopedFailpoint guard = ScopedFailpoint::Always(kFpExecScan);
  EXPECT_TRUE(
      FailpointRegistry::ThreadLocal().Get(kFpExecScan).armed());
  bool other_thread_armed = true;
  std::thread worker([&] {
    other_thread_armed =
        FailpointRegistry::ThreadLocal().Get(kFpExecScan).armed();
  });
  worker.join();
  EXPECT_FALSE(other_thread_armed);
}

TEST(FailpointRegistryTest, ExportMetricsWritesNonZeroCounters) {
  FailpointRegistry registry;
  Failpoint& fired = registry.Get("fp.fired");
  Failpoint& idle = registry.Get("fp.idle");
  fired.ArmOnce(/*skip_hits=*/1);
  (void)fired.Check();
  (void)fired.Check();
  (void)idle.Check();  // disarmed: no counts

  obs::MetricRegistry metrics;
  registry.ExportMetrics(metrics);
  const obs::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters.at("fault.hits.fp.fired"), 2u);
  EXPECT_EQ(snap.counters.at("fault.triggers.fp.fired"), 1u);
  EXPECT_EQ(snap.counters.count("fault.hits.fp.idle"), 0u);
}

TEST(ScopedFailpointTest, DisarmsAndClearsCountersOnScopeExit) {
  Failpoint& fp = FailpointRegistry::ThreadLocal().Get("scoped.site");
  {
    ScopedFailpoint guard = ScopedFailpoint::Always("scoped.site");
    EXPECT_FALSE(fp.Check().ok());
    EXPECT_EQ(fp.hits(), 1u);
  }
  EXPECT_FALSE(fp.armed());
  EXPECT_EQ(fp.hits(), 0u);
  EXPECT_EQ(fp.triggers(), 0u);
}

TEST(FailpointMacroTest, ReturnsInjectedStatusFromEnclosingFunction) {
  auto guarded = []() -> Status {
    ABIVM_FAULT_POINT("macro.site");
    return Status::Ok();
  };
  EXPECT_TRUE(guarded().ok());
  {
    ScopedFailpoint guard = ScopedFailpoint::Once("macro.site");
    const Status status = guarded();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInternal);
  }
  EXPECT_TRUE(guarded().ok());
}

}  // namespace
}  // namespace abivm::fault
