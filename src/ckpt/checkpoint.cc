#include "ckpt/checkpoint.h"

#include <algorithm>
#include <unordered_set>

#include "ckpt/posix_io.h"
#include "ckpt/record_serde.h"
#include "ckpt/serde.h"
#include "fault/failpoint.h"
#include "fault/sites.h"

namespace abivm::ckpt {

namespace {

constexpr uint64_t kCheckpointMagic = 0x41424956434b5054ULL;  // "ABIVCKPT"
// Format 2: adds the policy-state blob and the completed-trace prefix.
constexpr uint32_t kCheckpointFormat = 2;
constexpr uint64_t kCheckpointDeltaMagic =
    0x4142495644454c54ULL;  // "ABIVDELT"
constexpr uint32_t kCheckpointDeltaFormat = 1;
constexpr uint64_t kManifestMagic = 0x414249564d414e46ULL;  // "ABIVMANF"

void PutModification(std::string* out, const Modification& m) {
  PutU64(out, m.version);
  PutU8(out, static_cast<uint8_t>(m.kind));
  PutRow(out, m.old_row);
  PutRow(out, m.new_row);
}

Status GetModification(ByteReader* in, Modification* m) {
  ABIVM_RETURN_NOT_OK(in->GetU64(&m->version));
  uint8_t kind = 0;
  ABIVM_RETURN_NOT_OK(in->GetU8(&kind));
  if (kind > static_cast<uint8_t>(ModKind::kUpdate)) {
    return Status::InvalidArgument("bad ModKind tag " +
                                   std::to_string(kind));
  }
  m->kind = static_cast<ModKind>(kind);
  ABIVM_RETURN_NOT_OK(in->GetRow(&m->old_row));
  ABIVM_RETURN_NOT_OK(in->GetRow(&m->new_row));
  return Status::Ok();
}

void PutVersionedRow(std::string* out, const VersionedRow& slot) {
  PutRow(out, slot.row);
  PutU64(out, slot.insert_version);
  PutU64(out, slot.delete_version);
}

Status GetVersionedRow(ByteReader* in, VersionedRow* slot) {
  ABIVM_RETURN_NOT_OK(in->GetRow(&slot->row));
  ABIVM_RETURN_NOT_OK(in->GetU64(&slot->insert_version));
  ABIVM_RETURN_NOT_OK(in->GetU64(&slot->delete_version));
  return Status::Ok();
}

void PutGroupState(std::string* out, const GroupState& group) {
  PutI64(out, group.count);
  PutDouble(out, group.sum);
  PutU64(out, group.values.size());
  for (const auto& [value, count] : group.values) {
    PutValue(out, value);
    PutI64(out, count);
  }
}

Status GetGroupState(ByteReader* in, GroupState* group) {
  ABIVM_RETURN_NOT_OK(in->GetI64(&group->count));
  ABIVM_RETURN_NOT_OK(in->GetDouble(&group->sum));
  uint64_t nvalues = 0;
  ABIVM_RETURN_NOT_OK(in->GetU64(&nvalues));
  for (uint64_t v = 0; v < nvalues; ++v) {
    Value value;
    int64_t count = 0;
    ABIVM_RETURN_NOT_OK(in->GetValue(&value));
    ABIVM_RETURN_NOT_OK(in->GetI64(&count));
    group->values.emplace(std::move(value), count);
  }
  return Status::Ok();
}

}  // namespace

CheckpointImage CaptureCheckpoint(const Database& db,
                                  const ViewMaintainer& maintainer,
                                  uint64_t seq, TimeStep next_step,
                                  std::string driver_blob) {
  CheckpointImage image;
  image.seq = seq;
  image.db_version = db.current_version();
  image.next_step = next_step;
  image.driver_blob = std::move(driver_blob);
  for (const auto& table : db.tables()) {
    TableImage ti;
    ti.name = table->name();
    for (size_t c = 0; c < table->schema().num_columns(); ++c) {
      ti.columns.push_back(table->schema().column(c));
    }
    ti.slots.reserve(table->physical_row_count());
    for (RowId id = 0; id < table->physical_row_count(); ++id) {
      ti.slots.push_back(table->RowAt(id));
    }
    ti.live_ids = table->live_ids();
    ti.vacuum_horizon = table->vacuum_horizon();
    const DeltaLog& log = table->delta_log();
    ti.delta_base_offset = log.first_retained();
    ti.delta_mods.reserve(log.size() - log.first_retained());
    for (size_t p = log.first_retained(); p < log.size(); ++p) {
      ti.delta_mods.push_back(log.At(p));
    }
    for (size_t column : table->IndexedColumns()) {
      ti.indexed_columns.push_back(table->schema().column(column).name);
    }
    image.tables.push_back(std::move(ti));
  }
  for (size_t i = 0; i < maintainer.num_tables(); ++i) {
    image.positions.push_back(maintainer.watermark_position(i));
    image.versions.push_back(maintainer.watermark_version(i));
  }
  image.view_is_aggregate = maintainer.state().is_aggregate();
  image.view_groups = maintainer.state().Snapshot();
  return image;
}

std::string SerializeCheckpoint(const CheckpointImage& image) {
  std::string out;
  PutU64(&out, kCheckpointMagic);
  PutU32(&out, kCheckpointFormat);
  PutU64(&out, image.seq);
  PutU64(&out, image.db_version);
  PutI64(&out, image.next_step);
  PutString(&out, image.driver_blob);
  PutU64(&out, image.tables.size());
  for (const TableImage& ti : image.tables) {
    PutString(&out, ti.name);
    PutU64(&out, ti.columns.size());
    for (const Column& col : ti.columns) {
      PutString(&out, col.name);
      PutU8(&out, static_cast<uint8_t>(col.type));
    }
    PutU64(&out, ti.slots.size());
    for (const VersionedRow& slot : ti.slots) {
      PutRow(&out, slot.row);
      PutU64(&out, slot.insert_version);
      PutU64(&out, slot.delete_version);
    }
    PutU64(&out, ti.live_ids.size());
    for (RowId id : ti.live_ids) PutU64(&out, id);
    PutU64(&out, ti.vacuum_horizon);
    PutU64(&out, ti.delta_base_offset);
    PutU64(&out, ti.delta_mods.size());
    for (const Modification& m : ti.delta_mods) PutModification(&out, m);
    PutU64(&out, ti.indexed_columns.size());
    for (const std::string& name : ti.indexed_columns) {
      PutString(&out, name);
    }
  }
  PutU64(&out, image.positions.size());
  for (size_t p : image.positions) PutU64(&out, p);
  PutU64(&out, image.versions.size());
  for (Version v : image.versions) PutU64(&out, v);
  PutU8(&out, image.view_is_aggregate ? 1 : 0);
  PutU64(&out, image.view_groups.size());
  for (const auto& [key, group] : image.view_groups) {
    PutRow(&out, key);
    PutI64(&out, group.count);
    PutDouble(&out, group.sum);
    PutU64(&out, group.values.size());
    for (const auto& [value, count] : group.values) {
      PutValue(&out, value);
      PutI64(&out, count);
    }
  }
  PutU8(&out, image.has_policy_blob ? 1 : 0);
  PutString(&out, image.policy_blob);
  PutU64(&out, image.trace_steps.size());
  for (const EngineStepRecord& r : image.trace_steps) {
    PutTraceStep(&out, r);
  }
  return out;
}

Result<CheckpointImage> ParseCheckpoint(std::string_view data) {
  ByteReader in(data);
  uint64_t magic = 0;
  uint32_t format = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&magic));
  if (magic != kCheckpointMagic) {
    return Status::InvalidArgument("not a checkpoint image (bad magic)");
  }
  ABIVM_RETURN_NOT_OK(in.GetU32(&format));
  if (format != kCheckpointFormat) {
    return Status::InvalidArgument("unsupported checkpoint format " +
                                   std::to_string(format));
  }
  CheckpointImage image;
  ABIVM_RETURN_NOT_OK(in.GetU64(&image.seq));
  ABIVM_RETURN_NOT_OK(in.GetU64(&image.db_version));
  ABIVM_RETURN_NOT_OK(in.GetI64(&image.next_step));
  ABIVM_RETURN_NOT_OK(in.GetString(&image.driver_blob));
  uint64_t num_tables = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&num_tables));
  for (uint64_t ti_idx = 0; ti_idx < num_tables; ++ti_idx) {
    TableImage ti;
    ABIVM_RETURN_NOT_OK(in.GetString(&ti.name));
    uint64_t ncols = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&ncols));
    for (uint64_t c = 0; c < ncols; ++c) {
      Column col;
      ABIVM_RETURN_NOT_OK(in.GetString(&col.name));
      uint8_t type = 0;
      ABIVM_RETURN_NOT_OK(in.GetU8(&type));
      if (type > static_cast<uint8_t>(ValueType::kString)) {
        return Status::InvalidArgument("bad column type tag " +
                                       std::to_string(type));
      }
      col.type = static_cast<ValueType>(type);
      ti.columns.push_back(std::move(col));
    }
    uint64_t nslots = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&nslots));
    ti.slots.resize(static_cast<size_t>(nslots));
    for (auto& slot : ti.slots) {
      ABIVM_RETURN_NOT_OK(in.GetRow(&slot.row));
      ABIVM_RETURN_NOT_OK(in.GetU64(&slot.insert_version));
      ABIVM_RETURN_NOT_OK(in.GetU64(&slot.delete_version));
    }
    uint64_t nlive = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&nlive));
    ti.live_ids.resize(static_cast<size_t>(nlive));
    for (auto& id : ti.live_ids) ABIVM_RETURN_NOT_OK(in.GetU64(&id));
    ABIVM_RETURN_NOT_OK(in.GetU64(&ti.vacuum_horizon));
    uint64_t base = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&base));
    ti.delta_base_offset = static_cast<size_t>(base);
    uint64_t nmods = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&nmods));
    ti.delta_mods.resize(static_cast<size_t>(nmods));
    for (auto& m : ti.delta_mods) {
      ABIVM_RETURN_NOT_OK(GetModification(&in, &m));
    }
    uint64_t nindexed = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&nindexed));
    ti.indexed_columns.resize(static_cast<size_t>(nindexed));
    for (auto& name : ti.indexed_columns) {
      ABIVM_RETURN_NOT_OK(in.GetString(&name));
    }
    image.tables.push_back(std::move(ti));
  }
  uint64_t npos = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&npos));
  image.positions.resize(static_cast<size_t>(npos));
  for (auto& p : image.positions) {
    uint64_t v = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&v));
    p = static_cast<size_t>(v);
  }
  uint64_t nver = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&nver));
  image.versions.resize(static_cast<size_t>(nver));
  for (auto& v : image.versions) ABIVM_RETURN_NOT_OK(in.GetU64(&v));
  uint8_t is_aggregate = 0;
  ABIVM_RETURN_NOT_OK(in.GetU8(&is_aggregate));
  image.view_is_aggregate = is_aggregate != 0;
  uint64_t ngroups = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&ngroups));
  for (uint64_t g = 0; g < ngroups; ++g) {
    Row key;
    GroupState group;
    ABIVM_RETURN_NOT_OK(in.GetRow(&key));
    ABIVM_RETURN_NOT_OK(in.GetI64(&group.count));
    ABIVM_RETURN_NOT_OK(in.GetDouble(&group.sum));
    uint64_t nvalues = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&nvalues));
    for (uint64_t v = 0; v < nvalues; ++v) {
      Value value;
      int64_t count = 0;
      ABIVM_RETURN_NOT_OK(in.GetValue(&value));
      ABIVM_RETURN_NOT_OK(in.GetI64(&count));
      group.values.emplace(std::move(value), count);
    }
    image.view_groups.emplace(std::move(key), std::move(group));
  }
  uint8_t has_policy_blob = 0;
  ABIVM_RETURN_NOT_OK(in.GetU8(&has_policy_blob));
  image.has_policy_blob = has_policy_blob != 0;
  ABIVM_RETURN_NOT_OK(in.GetString(&image.policy_blob));
  uint64_t ntrace = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&ntrace));
  image.trace_steps.resize(static_cast<size_t>(ntrace));
  for (auto& r : image.trace_steps) {
    ABIVM_RETURN_NOT_OK(GetTraceStep(&in, &r));
  }
  ABIVM_RETURN_NOT_OK(in.ExpectEnd());
  return image;
}

CheckpointDelta CaptureCheckpointDelta(const Database& db,
                                       const ViewMaintainer& maintainer,
                                       uint64_t seq, uint64_t base_seq,
                                       TimeStep next_step,
                                       std::string driver_blob) {
  CheckpointDelta delta;
  delta.seq = seq;
  delta.base_seq = base_seq;
  delta.db_version = db.current_version();
  delta.next_step = next_step;
  delta.driver_blob = std::move(driver_blob);
  for (const auto& table : db.tables()) {
    const TableCheckpointMark& mark = table->checkpoint_mark();
    TableImageDelta td;
    td.name = table->name();
    td.base_slot_count = mark.slot_count;
    td.new_slots.reserve(table->physical_row_count() - mark.slot_count);
    for (RowId id = mark.slot_count; id < table->physical_row_count();
         ++id) {
      td.new_slots.push_back(table->RowAt(id));
    }
    td.tombstoned.reserve(mark.tombstoned.size());
    for (RowId id : mark.tombstoned) {
      td.tombstoned.emplace_back(id, table->RowAt(id).delete_version);
    }
    td.vacuumed = mark.vacuumed;
    td.vacuum_horizon = table->vacuum_horizon();
    const DeltaLog& log = table->delta_log();
    td.delta_base_offset = log.first_retained();
    // Modifications appended since the mark, minus any the GC already
    // trimmed (trim can overtake the mark on an aggressive vacuum).
    td.first_new_mod_position =
        std::max(mark.log_head, log.first_retained());
    td.new_mods.reserve(log.size() - td.first_new_mod_position);
    for (size_t p = td.first_new_mod_position; p < log.size(); ++p) {
      td.new_mods.push_back(log.At(p));
    }
    std::vector<size_t> new_indexed = mark.new_indexed_columns;
    std::sort(new_indexed.begin(), new_indexed.end());
    for (size_t column : new_indexed) {
      td.new_indexed_columns.push_back(
          table->schema().column(column).name);
    }
    delta.tables.push_back(std::move(td));
  }
  for (size_t i = 0; i < maintainer.num_tables(); ++i) {
    delta.positions.push_back(maintainer.watermark_position(i));
    delta.versions.push_back(maintainer.watermark_version(i));
  }
  const ViewState& view = maintainer.state();
  std::vector<Row> dirty(view.dirty_keys().begin(),
                         view.dirty_keys().end());
  std::sort(dirty.begin(), dirty.end());
  for (Row& key : dirty) {
    const GroupState* group = view.GroupOrNull(key);
    if (group != nullptr) {
      delta.changed_groups.emplace_back(std::move(key), *group);
    } else {
      delta.removed_groups.push_back(std::move(key));
    }
  }
  return delta;
}

std::string SerializeCheckpointDelta(const CheckpointDelta& delta) {
  std::string out;
  PutU64(&out, kCheckpointDeltaMagic);
  PutU32(&out, kCheckpointDeltaFormat);
  PutU64(&out, delta.seq);
  PutU64(&out, delta.base_seq);
  PutU64(&out, delta.db_version);
  PutI64(&out, delta.next_step);
  PutString(&out, delta.driver_blob);
  PutU8(&out, delta.has_policy_blob ? 1 : 0);
  PutString(&out, delta.policy_blob);
  PutU64(&out, delta.tables.size());
  for (const TableImageDelta& td : delta.tables) {
    PutString(&out, td.name);
    PutU64(&out, td.base_slot_count);
    PutU64(&out, td.new_slots.size());
    for (const VersionedRow& slot : td.new_slots) {
      PutVersionedRow(&out, slot);
    }
    PutU64(&out, td.tombstoned.size());
    for (const auto& [id, version] : td.tombstoned) {
      PutU64(&out, id);
      PutU64(&out, version);
    }
    PutU64(&out, td.vacuumed.size());
    for (RowId id : td.vacuumed) PutU64(&out, id);
    PutU64(&out, td.vacuum_horizon);
    PutU64(&out, td.delta_base_offset);
    PutU64(&out, td.first_new_mod_position);
    PutU64(&out, td.new_mods.size());
    for (const Modification& m : td.new_mods) PutModification(&out, m);
    PutU64(&out, td.new_indexed_columns.size());
    for (const std::string& name : td.new_indexed_columns) {
      PutString(&out, name);
    }
  }
  PutU64(&out, delta.positions.size());
  for (size_t p : delta.positions) PutU64(&out, p);
  PutU64(&out, delta.versions.size());
  for (Version v : delta.versions) PutU64(&out, v);
  PutU64(&out, delta.changed_groups.size());
  for (const auto& [key, group] : delta.changed_groups) {
    PutRow(&out, key);
    PutGroupState(&out, group);
  }
  PutU64(&out, delta.removed_groups.size());
  for (const Row& key : delta.removed_groups) PutRow(&out, key);
  PutU64(&out, delta.new_trace_steps.size());
  for (const EngineStepRecord& r : delta.new_trace_steps) {
    PutTraceStep(&out, r);
  }
  return out;
}

Result<CheckpointDelta> ParseCheckpointDelta(std::string_view data) {
  ByteReader in(data);
  uint64_t magic = 0;
  uint32_t format = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&magic));
  if (magic != kCheckpointDeltaMagic) {
    return Status::InvalidArgument("not a checkpoint delta (bad magic)");
  }
  ABIVM_RETURN_NOT_OK(in.GetU32(&format));
  if (format != kCheckpointDeltaFormat) {
    return Status::InvalidArgument(
        "unsupported checkpoint-delta format " + std::to_string(format));
  }
  CheckpointDelta delta;
  ABIVM_RETURN_NOT_OK(in.GetU64(&delta.seq));
  ABIVM_RETURN_NOT_OK(in.GetU64(&delta.base_seq));
  ABIVM_RETURN_NOT_OK(in.GetU64(&delta.db_version));
  ABIVM_RETURN_NOT_OK(in.GetI64(&delta.next_step));
  ABIVM_RETURN_NOT_OK(in.GetString(&delta.driver_blob));
  uint8_t has_policy_blob = 0;
  ABIVM_RETURN_NOT_OK(in.GetU8(&has_policy_blob));
  delta.has_policy_blob = has_policy_blob != 0;
  ABIVM_RETURN_NOT_OK(in.GetString(&delta.policy_blob));
  uint64_t num_tables = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&num_tables));
  for (uint64_t t = 0; t < num_tables; ++t) {
    TableImageDelta td;
    ABIVM_RETURN_NOT_OK(in.GetString(&td.name));
    uint64_t base_slots = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&base_slots));
    td.base_slot_count = static_cast<size_t>(base_slots);
    uint64_t nslots = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&nslots));
    td.new_slots.resize(static_cast<size_t>(nslots));
    for (auto& slot : td.new_slots) {
      ABIVM_RETURN_NOT_OK(GetVersionedRow(&in, &slot));
    }
    uint64_t ntomb = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&ntomb));
    td.tombstoned.resize(static_cast<size_t>(ntomb));
    for (auto& [id, version] : td.tombstoned) {
      ABIVM_RETURN_NOT_OK(in.GetU64(&id));
      ABIVM_RETURN_NOT_OK(in.GetU64(&version));
    }
    uint64_t nvac = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&nvac));
    td.vacuumed.resize(static_cast<size_t>(nvac));
    for (auto& id : td.vacuumed) ABIVM_RETURN_NOT_OK(in.GetU64(&id));
    ABIVM_RETURN_NOT_OK(in.GetU64(&td.vacuum_horizon));
    uint64_t base = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&base));
    td.delta_base_offset = static_cast<size_t>(base);
    uint64_t first_new = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&first_new));
    td.first_new_mod_position = static_cast<size_t>(first_new);
    uint64_t nmods = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&nmods));
    td.new_mods.resize(static_cast<size_t>(nmods));
    for (auto& m : td.new_mods) {
      ABIVM_RETURN_NOT_OK(GetModification(&in, &m));
    }
    uint64_t nindexed = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&nindexed));
    td.new_indexed_columns.resize(static_cast<size_t>(nindexed));
    for (auto& name : td.new_indexed_columns) {
      ABIVM_RETURN_NOT_OK(in.GetString(&name));
    }
    delta.tables.push_back(std::move(td));
  }
  uint64_t npos = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&npos));
  delta.positions.resize(static_cast<size_t>(npos));
  for (auto& p : delta.positions) {
    uint64_t v = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&v));
    p = static_cast<size_t>(v);
  }
  uint64_t nver = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&nver));
  delta.versions.resize(static_cast<size_t>(nver));
  for (auto& v : delta.versions) ABIVM_RETURN_NOT_OK(in.GetU64(&v));
  uint64_t nchanged = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&nchanged));
  for (uint64_t g = 0; g < nchanged; ++g) {
    Row key;
    GroupState group;
    ABIVM_RETURN_NOT_OK(in.GetRow(&key));
    ABIVM_RETURN_NOT_OK(GetGroupState(&in, &group));
    delta.changed_groups.emplace_back(std::move(key), std::move(group));
  }
  uint64_t nremoved = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&nremoved));
  delta.removed_groups.resize(static_cast<size_t>(nremoved));
  for (auto& key : delta.removed_groups) {
    ABIVM_RETURN_NOT_OK(in.GetRow(&key));
  }
  uint64_t ntrace = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&ntrace));
  delta.new_trace_steps.resize(static_cast<size_t>(ntrace));
  for (auto& r : delta.new_trace_steps) {
    ABIVM_RETURN_NOT_OK(GetTraceStep(&in, &r));
  }
  ABIVM_RETURN_NOT_OK(in.ExpectEnd());
  return delta;
}

namespace {

/// Replays the post-base insert/tombstone events onto the base image's
/// live order. The live set is a swap-remove vector, so reproducing the
/// exact ordering (which SampleLiveRow draws from by position) requires
/// replaying the events in the order they happened: ascending version,
/// and within a version -- only an Update pairs a delete with an insert
/// at one version -- the delete first, exactly as Table::Update issues
/// them.
Status ReplayLiveOrder(const TableImageDelta& td, TableImage* ti) {
  struct Event {
    Version version = 0;
    bool is_push = false;  // false = swap-remove; sorts before push
    RowId id = 0;
  };
  std::vector<Event> events;
  for (size_t j = 0; j < td.new_slots.size(); ++j) {
    const RowId id = td.base_slot_count + j;
    const VersionedRow& slot = td.new_slots[j];
    events.push_back(Event{slot.insert_version, true, id});
    if (slot.delete_version != kNeverDeleted) {
      events.push_back(Event{slot.delete_version, false, id});
    }
  }
  for (const auto& [id, version] : td.tombstoned) {
    events.push_back(Event{version, false, id});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              if (a.version != b.version) return a.version < b.version;
              return a.is_push < b.is_push;
            });
  constexpr size_t kNotLive = static_cast<size_t>(-1);
  std::vector<size_t> pos(ti->slots.size(), kNotLive);
  for (size_t p = 0; p < ti->live_ids.size(); ++p) {
    pos[ti->live_ids[p]] = p;
  }
  for (const Event& e : events) {
    if (e.is_push) {
      if (pos[e.id] != kNotLive) {
        return Status::InvalidArgument("delta re-inserts live row " +
                                       std::to_string(e.id) + " of " +
                                       ti->name);
      }
      pos[e.id] = ti->live_ids.size();
      ti->live_ids.push_back(e.id);
    } else {
      const size_t p = pos[e.id];
      if (p == kNotLive) {
        return Status::InvalidArgument("delta removes non-live row " +
                                       std::to_string(e.id) + " of " +
                                       ti->name);
      }
      const RowId last = ti->live_ids.back();
      ti->live_ids[p] = last;
      pos[last] = p;
      ti->live_ids.pop_back();
      pos[e.id] = kNotLive;
    }
  }
  return Status::Ok();
}

Status FoldTableDelta(const TableImage& bt, const TableImageDelta& td,
                      TableImage* ti) {
  if (td.name != bt.name) {
    return Status::InvalidArgument("delta table " + td.name +
                                   " does not match base table " +
                                   bt.name);
  }
  if (td.base_slot_count != bt.slots.size()) {
    return Status::InvalidArgument(
        "delta for " + td.name + " chains onto " +
        std::to_string(td.base_slot_count) + " slots, base has " +
        std::to_string(bt.slots.size()));
  }
  ti->name = bt.name;
  ti->columns = bt.columns;
  ti->slots = bt.slots;
  ti->slots.insert(ti->slots.end(), td.new_slots.begin(),
                   td.new_slots.end());
  for (const auto& [id, version] : td.tombstoned) {
    if (id >= td.base_slot_count) {
      return Status::InvalidArgument(
          "delta tombstone of post-base slot " + std::to_string(id));
    }
    VersionedRow& slot = ti->slots[id];
    if (slot.delete_version != kNeverDeleted ||
        version == kNeverDeleted || version < slot.insert_version) {
      return Status::InvalidArgument(
          "inconsistent delta tombstone of slot " + std::to_string(id) +
          " of " + td.name);
    }
    slot.delete_version = version;
  }
  ti->live_ids = bt.live_ids;
  ABIVM_RETURN_NOT_OK(ReplayLiveOrder(td, ti));
  for (const RowId id : td.vacuumed) {
    if (id >= td.base_slot_count ||
        ti->slots[id].delete_version == kNeverDeleted ||
        ti->slots[id].row.empty()) {
      return Status::InvalidArgument("inconsistent delta vacuum of slot " +
                                     std::to_string(id) + " of " +
                                     td.name);
    }
    Row().swap(ti->slots[id].row);
  }
  if (td.vacuum_horizon < bt.vacuum_horizon) {
    return Status::InvalidArgument("delta vacuum horizon moved backward");
  }
  ti->vacuum_horizon = td.vacuum_horizon;
  // Delta log: the base's retained suffix minus anything trimmed since,
  // plus the appended modifications.
  const size_t base_end = bt.delta_base_offset + bt.delta_mods.size();
  if (td.delta_base_offset < bt.delta_base_offset ||
      td.first_new_mod_position < td.delta_base_offset) {
    return Status::InvalidArgument("delta log window moved backward for " +
                                   td.name);
  }
  ti->delta_base_offset = td.delta_base_offset;
  for (size_t p = td.delta_base_offset; p < td.first_new_mod_position;
       ++p) {
    if (p < bt.delta_base_offset || p >= base_end) {
      return Status::InvalidArgument(
          "delta log window of " + td.name +
          " keeps position " + std::to_string(p) +
          " the base does not retain");
    }
    ti->delta_mods.push_back(bt.delta_mods[p - bt.delta_base_offset]);
  }
  ti->delta_mods.insert(ti->delta_mods.end(), td.new_mods.begin(),
                        td.new_mods.end());
  // Index catalog: merge and re-sort by column position so the fold is
  // byte-equal to a full capture (IndexedColumns reports ascending).
  std::vector<std::string> merged = bt.indexed_columns;
  merged.insert(merged.end(), td.new_indexed_columns.begin(),
                td.new_indexed_columns.end());
  std::vector<std::pair<size_t, std::string>> by_column;
  for (std::string& name : merged) {
    size_t column = bt.columns.size();
    for (size_t c = 0; c < bt.columns.size(); ++c) {
      if (bt.columns[c].name == name) {
        column = c;
        break;
      }
    }
    if (column == bt.columns.size()) {
      return Status::InvalidArgument("delta indexes unknown column " +
                                     name + " of " + td.name);
    }
    by_column.emplace_back(column, std::move(name));
  }
  std::sort(by_column.begin(), by_column.end());
  for (size_t i = 1; i < by_column.size(); ++i) {
    if (by_column[i].first == by_column[i - 1].first) {
      return Status::InvalidArgument("delta re-indexes column " +
                                     by_column[i].second + " of " +
                                     td.name);
    }
  }
  for (auto& [column, name] : by_column) {
    ti->indexed_columns.push_back(std::move(name));
  }
  return Status::Ok();
}

}  // namespace

Result<CheckpointImage> FoldCheckpointDelta(const CheckpointImage& base,
                                            const CheckpointDelta& delta) {
  if (delta.base_seq != base.seq) {
    return Status::InvalidArgument(
        "delta seq " + std::to_string(delta.seq) + " chains onto " +
        std::to_string(delta.base_seq) + ", base image is " +
        std::to_string(base.seq));
  }
  if (delta.db_version < base.db_version ||
      delta.next_step < base.next_step) {
    return Status::InvalidArgument("delta moves the clock backward");
  }
  if (delta.tables.size() != base.tables.size()) {
    return Status::InvalidArgument("delta has " +
                                   std::to_string(delta.tables.size()) +
                                   " tables, base has " +
                                   std::to_string(base.tables.size()));
  }
  if (static_cast<TimeStep>(base.trace_steps.size()) != base.next_step ||
      base.next_step +
              static_cast<TimeStep>(delta.new_trace_steps.size()) !=
          delta.next_step) {
    return Status::InvalidArgument("delta trace does not cover steps [" +
                                   std::to_string(base.next_step) + ", " +
                                   std::to_string(delta.next_step) + ")");
  }
  CheckpointImage out;
  out.seq = delta.seq;
  out.db_version = delta.db_version;
  out.next_step = delta.next_step;
  out.driver_blob = delta.driver_blob;
  out.has_policy_blob = delta.has_policy_blob;
  out.policy_blob = delta.policy_blob;
  for (size_t i = 0; i < base.tables.size(); ++i) {
    TableImage ti;
    ABIVM_RETURN_NOT_OK(
        FoldTableDelta(base.tables[i], delta.tables[i], &ti));
    out.tables.push_back(std::move(ti));
  }
  out.positions = delta.positions;
  out.versions = delta.versions;
  out.view_is_aggregate = base.view_is_aggregate;
  out.view_groups = base.view_groups;
  for (const Row& key : delta.removed_groups) {
    out.view_groups.erase(key);
  }
  for (const auto& [key, group] : delta.changed_groups) {
    out.view_groups.insert_or_assign(key, group);
  }
  out.trace_steps = base.trace_steps;
  out.trace_steps.insert(out.trace_steps.end(),
                         delta.new_trace_steps.begin(),
                         delta.new_trace_steps.end());
  return out;
}

Status InstallDatabaseImage(const CheckpointImage& image, Database* db) {
  ABIVM_CHECK(db != nullptr);
  if (!db->tables().empty() || db->current_version() != 0) {
    return Status::FailedPrecondition(
        "checkpoint images install into an empty database");
  }
  for (const TableImage& ti : image.tables) {
    Table& table = db->CreateTable(ti.name, Schema(ti.columns));
    for (const VersionedRow& slot : ti.slots) {
      table.RestoreRowSlot(slot.row, slot.insert_version,
                           slot.delete_version);
    }
    table.RestoreLiveOrder(ti.live_ids);
    table.RestoreVacuumHorizon(ti.vacuum_horizon);
    table.delta_log().RestoreBaseOffset(ti.delta_base_offset);
    for (const Modification& m : ti.delta_mods) {
      table.delta_log().Append(m);
    }
    // Index rebuild AFTER the slots: RowId-ascending insertion reproduces
    // the per-key chain order organic inserts produced.
    for (const std::string& column : ti.indexed_columns) {
      table.CreateHashIndex(column);
    }
  }
  db->RestoreVersion(image.db_version);
  return Status::Ok();
}

std::string CheckpointFileName(uint64_t seq) {
  return "ckpt-" + std::to_string(seq) + ".bin";
}

namespace {

std::string SerializeManifest(const Manifest& manifest) {
  std::string body;
  PutU64(&body, kManifestMagic);
  PutU64(&body, manifest.seq);
  PutU64(&body, manifest.chain.size());
  for (const ManifestEntry& entry : manifest.chain) {
    PutString(&body, entry.file);
    PutU64(&body, entry.checksum);
    PutU8(&body, entry.is_delta ? 1 : 0);
  }
  PutU64(&body, Checksum(body));
  return body;
}

Result<Manifest> ParseManifest(std::string_view data) {
  if (data.size() < 8) {
    return Status::InvalidArgument("manifest too short");
  }
  const std::string_view body = data.substr(0, data.size() - 8);
  ByteReader tail(data.substr(data.size() - 8));
  uint64_t stored = 0;
  ABIVM_RETURN_NOT_OK(tail.GetU64(&stored));
  if (Checksum(body) != stored) {
    return Status::InvalidArgument("manifest checksum mismatch");
  }
  ByteReader in(body);
  uint64_t magic = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&magic));
  if (magic != kManifestMagic) {
    return Status::InvalidArgument("not a manifest (bad magic)");
  }
  Manifest manifest;
  ABIVM_RETURN_NOT_OK(in.GetU64(&manifest.seq));
  uint64_t chain_len = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&chain_len));
  for (uint64_t i = 0; i < chain_len; ++i) {
    ManifestEntry entry;
    ABIVM_RETURN_NOT_OK(in.GetString(&entry.file));
    ABIVM_RETURN_NOT_OK(in.GetU64(&entry.checksum));
    uint8_t is_delta = 0;
    ABIVM_RETURN_NOT_OK(in.GetU8(&is_delta));
    entry.is_delta = is_delta != 0;
    manifest.chain.push_back(std::move(entry));
  }
  ABIVM_RETURN_NOT_OK(in.ExpectEnd());
  if (manifest.chain.empty()) {
    return Status::InvalidArgument("manifest names an empty chain");
  }
  if (manifest.chain.front().is_delta) {
    return Status::InvalidArgument(
        "manifest chain does not start with a full image");
  }
  for (size_t i = 1; i < manifest.chain.size(); ++i) {
    if (!manifest.chain[i].is_delta) {
      return Status::InvalidArgument(
          "manifest chain holds a full image after the base");
    }
  }
  return manifest;
}

/// Publishes `manifest` (fires `ckpt.manifest` first), then reclaims
/// everything the new manifest no longer reaches -- the common tail of
/// both publish paths.
Status SwapManifestAndReclaim(const std::string& dir,
                              const Manifest& manifest) {
  ABIVM_FAULT_POINT(fault::kFpCkptManifest);
  ABIVM_RETURN_NOT_OK(
      WriteFileDurable(dir + "/MANIFEST", SerializeManifest(manifest)));
  // Superseded files are unreachable once the swap is durable. Reclaim
  // is best effort -- a crash right here leaks nothing permanently,
  // because Start/Resume sweep again.
  ReclaimUnreachable(dir, manifest);
  return Status::Ok();
}

}  // namespace

Status PublishCheckpoint(const std::string& dir,
                         const CheckpointImage& image,
                         uint64_t* bytes_written, Manifest* manifest_out) {
  const std::string payload = SerializeCheckpoint(image);
  const std::string file = CheckpointFileName(image.seq);
  ABIVM_RETURN_NOT_OK(WriteFileDurable(dir + "/" + file, payload));
  Manifest manifest;
  manifest.seq = image.seq;
  manifest.chain.push_back(ManifestEntry{file, Checksum(payload), false});
  ABIVM_RETURN_NOT_OK(SwapManifestAndReclaim(dir, manifest));
  if (bytes_written != nullptr) *bytes_written = payload.size();
  if (manifest_out != nullptr) *manifest_out = std::move(manifest);
  return Status::Ok();
}

Status PublishCheckpointDelta(const std::string& dir,
                              const CheckpointDelta& delta,
                              const Manifest& current,
                              uint64_t* bytes_written,
                              Manifest* manifest_out) {
  if (current.chain.empty() || current.seq != delta.base_seq) {
    return Status::FailedPrecondition(
        "delta seq " + std::to_string(delta.seq) + " chains onto " +
        std::to_string(delta.base_seq) + ", published manifest is at " +
        std::to_string(current.seq));
  }
  ABIVM_FAULT_POINT(fault::kFpCkptDelta);
  const std::string payload = SerializeCheckpointDelta(delta);
  const std::string file = CheckpointFileName(delta.seq);
  ABIVM_RETURN_NOT_OK(WriteFileDurable(dir + "/" + file, payload));
  Manifest manifest = current;
  manifest.seq = delta.seq;
  manifest.chain.push_back(ManifestEntry{file, Checksum(payload), true});
  ABIVM_RETURN_NOT_OK(SwapManifestAndReclaim(dir, manifest));
  if (bytes_written != nullptr) *bytes_written = payload.size();
  if (manifest_out != nullptr) *manifest_out = std::move(manifest);
  return Status::Ok();
}

Result<Manifest> ReadManifest(const std::string& dir) {
  Result<std::string> data = ReadFile(dir + "/MANIFEST");
  if (!data.ok()) return data.status();
  return ParseManifest(*data);
}

Result<uint64_t> ReclaimUnreachable(const std::string& dir,
                                    const Manifest& manifest) {
  Result<std::vector<std::string>> names = ListDir(dir);
  if (!names.ok()) return names.status();
  std::unordered_set<std::string> reachable;
  for (const ManifestEntry& entry : manifest.chain) {
    reachable.insert(entry.file);
  }
  const auto has_suffix = [](const std::string& s, std::string_view suf) {
    return s.size() >= suf.size() &&
           s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
  };
  uint64_t reclaimed = 0;
  for (const std::string& name : *names) {
    const bool is_image =
        name.rfind("ckpt-", 0) == 0 && has_suffix(name, ".bin");
    const bool is_stale_tmp = has_suffix(name, ".tmp");
    if (!is_image && !is_stale_tmp) continue;  // never WAL or MANIFEST
    if (reachable.count(name) != 0) continue;
    RemoveFileIfExists(dir + "/" + name);
    ++reclaimed;
  }
  return reclaimed;
}

}  // namespace abivm::ckpt
