#include "ckpt/checkpoint.h"

#include "ckpt/posix_io.h"
#include "ckpt/serde.h"
#include "fault/failpoint.h"
#include "fault/sites.h"

namespace abivm::ckpt {

namespace {

constexpr uint64_t kCheckpointMagic = 0x41424956434b5054ULL;  // "ABIVCKPT"
constexpr uint32_t kCheckpointFormat = 1;
constexpr uint64_t kManifestMagic = 0x414249564d414e46ULL;  // "ABIVMANF"

void PutModification(std::string* out, const Modification& m) {
  PutU64(out, m.version);
  PutU8(out, static_cast<uint8_t>(m.kind));
  PutRow(out, m.old_row);
  PutRow(out, m.new_row);
}

Status GetModification(ByteReader* in, Modification* m) {
  ABIVM_RETURN_NOT_OK(in->GetU64(&m->version));
  uint8_t kind = 0;
  ABIVM_RETURN_NOT_OK(in->GetU8(&kind));
  if (kind > static_cast<uint8_t>(ModKind::kUpdate)) {
    return Status::InvalidArgument("bad ModKind tag " +
                                   std::to_string(kind));
  }
  m->kind = static_cast<ModKind>(kind);
  ABIVM_RETURN_NOT_OK(in->GetRow(&m->old_row));
  ABIVM_RETURN_NOT_OK(in->GetRow(&m->new_row));
  return Status::Ok();
}

}  // namespace

CheckpointImage CaptureCheckpoint(const Database& db,
                                  const ViewMaintainer& maintainer,
                                  uint64_t seq, TimeStep next_step,
                                  std::string driver_blob) {
  CheckpointImage image;
  image.seq = seq;
  image.db_version = db.current_version();
  image.next_step = next_step;
  image.driver_blob = std::move(driver_blob);
  for (const auto& table : db.tables()) {
    TableImage ti;
    ti.name = table->name();
    for (size_t c = 0; c < table->schema().num_columns(); ++c) {
      ti.columns.push_back(table->schema().column(c));
    }
    ti.slots.reserve(table->physical_row_count());
    for (RowId id = 0; id < table->physical_row_count(); ++id) {
      ti.slots.push_back(table->RowAt(id));
    }
    ti.live_ids = table->live_ids();
    ti.vacuum_horizon = table->vacuum_horizon();
    const DeltaLog& log = table->delta_log();
    ti.delta_base_offset = log.first_retained();
    ti.delta_mods.reserve(log.size() - log.first_retained());
    for (size_t p = log.first_retained(); p < log.size(); ++p) {
      ti.delta_mods.push_back(log.At(p));
    }
    for (size_t column : table->IndexedColumns()) {
      ti.indexed_columns.push_back(table->schema().column(column).name);
    }
    image.tables.push_back(std::move(ti));
  }
  for (size_t i = 0; i < maintainer.num_tables(); ++i) {
    image.positions.push_back(maintainer.watermark_position(i));
    image.versions.push_back(maintainer.watermark_version(i));
  }
  image.view_is_aggregate = maintainer.state().is_aggregate();
  image.view_groups = maintainer.state().Snapshot();
  return image;
}

std::string SerializeCheckpoint(const CheckpointImage& image) {
  std::string out;
  PutU64(&out, kCheckpointMagic);
  PutU32(&out, kCheckpointFormat);
  PutU64(&out, image.seq);
  PutU64(&out, image.db_version);
  PutI64(&out, image.next_step);
  PutString(&out, image.driver_blob);
  PutU64(&out, image.tables.size());
  for (const TableImage& ti : image.tables) {
    PutString(&out, ti.name);
    PutU64(&out, ti.columns.size());
    for (const Column& col : ti.columns) {
      PutString(&out, col.name);
      PutU8(&out, static_cast<uint8_t>(col.type));
    }
    PutU64(&out, ti.slots.size());
    for (const VersionedRow& slot : ti.slots) {
      PutRow(&out, slot.row);
      PutU64(&out, slot.insert_version);
      PutU64(&out, slot.delete_version);
    }
    PutU64(&out, ti.live_ids.size());
    for (RowId id : ti.live_ids) PutU64(&out, id);
    PutU64(&out, ti.vacuum_horizon);
    PutU64(&out, ti.delta_base_offset);
    PutU64(&out, ti.delta_mods.size());
    for (const Modification& m : ti.delta_mods) PutModification(&out, m);
    PutU64(&out, ti.indexed_columns.size());
    for (const std::string& name : ti.indexed_columns) {
      PutString(&out, name);
    }
  }
  PutU64(&out, image.positions.size());
  for (size_t p : image.positions) PutU64(&out, p);
  PutU64(&out, image.versions.size());
  for (Version v : image.versions) PutU64(&out, v);
  PutU8(&out, image.view_is_aggregate ? 1 : 0);
  PutU64(&out, image.view_groups.size());
  for (const auto& [key, group] : image.view_groups) {
    PutRow(&out, key);
    PutI64(&out, group.count);
    PutDouble(&out, group.sum);
    PutU64(&out, group.values.size());
    for (const auto& [value, count] : group.values) {
      PutValue(&out, value);
      PutI64(&out, count);
    }
  }
  return out;
}

Result<CheckpointImage> ParseCheckpoint(std::string_view data) {
  ByteReader in(data);
  uint64_t magic = 0;
  uint32_t format = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&magic));
  if (magic != kCheckpointMagic) {
    return Status::InvalidArgument("not a checkpoint image (bad magic)");
  }
  ABIVM_RETURN_NOT_OK(in.GetU32(&format));
  if (format != kCheckpointFormat) {
    return Status::InvalidArgument("unsupported checkpoint format " +
                                   std::to_string(format));
  }
  CheckpointImage image;
  ABIVM_RETURN_NOT_OK(in.GetU64(&image.seq));
  ABIVM_RETURN_NOT_OK(in.GetU64(&image.db_version));
  ABIVM_RETURN_NOT_OK(in.GetI64(&image.next_step));
  ABIVM_RETURN_NOT_OK(in.GetString(&image.driver_blob));
  uint64_t num_tables = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&num_tables));
  for (uint64_t ti_idx = 0; ti_idx < num_tables; ++ti_idx) {
    TableImage ti;
    ABIVM_RETURN_NOT_OK(in.GetString(&ti.name));
    uint64_t ncols = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&ncols));
    for (uint64_t c = 0; c < ncols; ++c) {
      Column col;
      ABIVM_RETURN_NOT_OK(in.GetString(&col.name));
      uint8_t type = 0;
      ABIVM_RETURN_NOT_OK(in.GetU8(&type));
      if (type > static_cast<uint8_t>(ValueType::kString)) {
        return Status::InvalidArgument("bad column type tag " +
                                       std::to_string(type));
      }
      col.type = static_cast<ValueType>(type);
      ti.columns.push_back(std::move(col));
    }
    uint64_t nslots = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&nslots));
    ti.slots.resize(static_cast<size_t>(nslots));
    for (auto& slot : ti.slots) {
      ABIVM_RETURN_NOT_OK(in.GetRow(&slot.row));
      ABIVM_RETURN_NOT_OK(in.GetU64(&slot.insert_version));
      ABIVM_RETURN_NOT_OK(in.GetU64(&slot.delete_version));
    }
    uint64_t nlive = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&nlive));
    ti.live_ids.resize(static_cast<size_t>(nlive));
    for (auto& id : ti.live_ids) ABIVM_RETURN_NOT_OK(in.GetU64(&id));
    ABIVM_RETURN_NOT_OK(in.GetU64(&ti.vacuum_horizon));
    uint64_t base = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&base));
    ti.delta_base_offset = static_cast<size_t>(base);
    uint64_t nmods = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&nmods));
    ti.delta_mods.resize(static_cast<size_t>(nmods));
    for (auto& m : ti.delta_mods) {
      ABIVM_RETURN_NOT_OK(GetModification(&in, &m));
    }
    uint64_t nindexed = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&nindexed));
    ti.indexed_columns.resize(static_cast<size_t>(nindexed));
    for (auto& name : ti.indexed_columns) {
      ABIVM_RETURN_NOT_OK(in.GetString(&name));
    }
    image.tables.push_back(std::move(ti));
  }
  uint64_t npos = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&npos));
  image.positions.resize(static_cast<size_t>(npos));
  for (auto& p : image.positions) {
    uint64_t v = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&v));
    p = static_cast<size_t>(v);
  }
  uint64_t nver = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&nver));
  image.versions.resize(static_cast<size_t>(nver));
  for (auto& v : image.versions) ABIVM_RETURN_NOT_OK(in.GetU64(&v));
  uint8_t is_aggregate = 0;
  ABIVM_RETURN_NOT_OK(in.GetU8(&is_aggregate));
  image.view_is_aggregate = is_aggregate != 0;
  uint64_t ngroups = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&ngroups));
  for (uint64_t g = 0; g < ngroups; ++g) {
    Row key;
    GroupState group;
    ABIVM_RETURN_NOT_OK(in.GetRow(&key));
    ABIVM_RETURN_NOT_OK(in.GetI64(&group.count));
    ABIVM_RETURN_NOT_OK(in.GetDouble(&group.sum));
    uint64_t nvalues = 0;
    ABIVM_RETURN_NOT_OK(in.GetU64(&nvalues));
    for (uint64_t v = 0; v < nvalues; ++v) {
      Value value;
      int64_t count = 0;
      ABIVM_RETURN_NOT_OK(in.GetValue(&value));
      ABIVM_RETURN_NOT_OK(in.GetI64(&count));
      group.values.emplace(std::move(value), count);
    }
    image.view_groups.emplace(std::move(key), std::move(group));
  }
  ABIVM_RETURN_NOT_OK(in.ExpectEnd());
  return image;
}

Status InstallDatabaseImage(const CheckpointImage& image, Database* db) {
  ABIVM_CHECK(db != nullptr);
  if (!db->tables().empty() || db->current_version() != 0) {
    return Status::FailedPrecondition(
        "checkpoint images install into an empty database");
  }
  for (const TableImage& ti : image.tables) {
    Table& table = db->CreateTable(ti.name, Schema(ti.columns));
    for (const VersionedRow& slot : ti.slots) {
      table.RestoreRowSlot(slot.row, slot.insert_version,
                           slot.delete_version);
    }
    table.RestoreLiveOrder(ti.live_ids);
    table.RestoreVacuumHorizon(ti.vacuum_horizon);
    table.delta_log().RestoreBaseOffset(ti.delta_base_offset);
    for (const Modification& m : ti.delta_mods) {
      table.delta_log().Append(m);
    }
    // Index rebuild AFTER the slots: RowId-ascending insertion reproduces
    // the per-key chain order organic inserts produced.
    for (const std::string& column : ti.indexed_columns) {
      table.CreateHashIndex(column);
    }
  }
  db->RestoreVersion(image.db_version);
  return Status::Ok();
}

std::string CheckpointFileName(uint64_t seq) {
  return "ckpt-" + std::to_string(seq) + ".bin";
}

namespace {

std::string SerializeManifest(const Manifest& manifest) {
  std::string body;
  PutU64(&body, kManifestMagic);
  PutU64(&body, manifest.seq);
  PutString(&body, manifest.checkpoint_file);
  PutU64(&body, manifest.checkpoint_checksum);
  PutU64(&body, Checksum(body));
  return body;
}

Result<Manifest> ParseManifest(std::string_view data) {
  if (data.size() < 8) {
    return Status::InvalidArgument("manifest too short");
  }
  const std::string_view body = data.substr(0, data.size() - 8);
  ByteReader tail(data.substr(data.size() - 8));
  uint64_t stored = 0;
  ABIVM_RETURN_NOT_OK(tail.GetU64(&stored));
  if (Checksum(body) != stored) {
    return Status::InvalidArgument("manifest checksum mismatch");
  }
  ByteReader in(body);
  uint64_t magic = 0;
  ABIVM_RETURN_NOT_OK(in.GetU64(&magic));
  if (magic != kManifestMagic) {
    return Status::InvalidArgument("not a manifest (bad magic)");
  }
  Manifest manifest;
  ABIVM_RETURN_NOT_OK(in.GetU64(&manifest.seq));
  ABIVM_RETURN_NOT_OK(in.GetString(&manifest.checkpoint_file));
  ABIVM_RETURN_NOT_OK(in.GetU64(&manifest.checkpoint_checksum));
  ABIVM_RETURN_NOT_OK(in.ExpectEnd());
  return manifest;
}

}  // namespace

Status PublishCheckpoint(const std::string& dir,
                         const CheckpointImage& image,
                         uint64_t* bytes_written) {
  const std::string payload = SerializeCheckpoint(image);
  const std::string file = CheckpointFileName(image.seq);
  ABIVM_RETURN_NOT_OK(WriteFileDurable(dir + "/" + file, payload));
  Manifest manifest;
  manifest.seq = image.seq;
  manifest.checkpoint_file = file;
  manifest.checkpoint_checksum = Checksum(payload);
  ABIVM_FAULT_POINT(fault::kFpCkptManifest);
  ABIVM_RETURN_NOT_OK(
      WriteFileDurable(dir + "/MANIFEST", SerializeManifest(manifest)));
  // The superseded image is unreachable once the manifest swap is
  // durable; reclaim it (best effort -- a leftover file is harmless).
  if (image.seq > 0) {
    RemoveFileIfExists(dir + "/" + CheckpointFileName(image.seq - 1));
  }
  if (bytes_written != nullptr) *bytes_written = payload.size();
  return Status::Ok();
}

Result<Manifest> ReadManifest(const std::string& dir) {
  Result<std::string> data = ReadFile(dir + "/MANIFEST");
  if (!data.ok()) return data.status();
  return ParseManifest(*data);
}

}  // namespace abivm::ckpt
