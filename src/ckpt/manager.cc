#include "ckpt/manager.h"

#include "ckpt/posix_io.h"
#include "fault/failpoint.h"
#include "fault/sites.h"

namespace abivm::ckpt {

DurabilityManager::DurabilityManager(std::string dir, Database* db,
                                     ViewMaintainer* maintainer,
                                     SaveDriverState save_driver,
                                     DurabilityOptions options,
                                     obs::MetricRegistry* metrics)
    : dir_(std::move(dir)),
      db_(db),
      maintainer_(maintainer),
      save_driver_(std::move(save_driver)),
      options_(options),
      metrics_(metrics) {
  ABIVM_CHECK(db_ != nullptr);
  ABIVM_CHECK(maintainer_ != nullptr);
  ABIVM_CHECK(save_driver_ != nullptr);
}

DurabilityManager::~DurabilityManager() {
  db_->SetApplyListener(nullptr);
}

void DurabilityManager::InstallListener() {
  db_->SetApplyListener([this](const AppliedModification& mod) {
    pending_mods_.push_back(mod);
  });
}

void DurabilityManager::Count(const char* name, uint64_t delta) {
  if (metrics_ != nullptr) metrics_->counter(name).Add(delta);
}

std::string DurabilityManager::WalSegmentPath(uint64_t index) const {
  return dir_ + "/" + WalSegmentFileName(index);
}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Start(
    std::string dir, Database* db, ViewMaintainer* maintainer,
    SaveDriverState save_driver, DurabilityOptions options,
    obs::MetricRegistry* metrics) {
  ABIVM_RETURN_NOT_OK(EnsureDir(dir));
  std::unique_ptr<DurabilityManager> manager(
      new DurabilityManager(std::move(dir), db, maintainer,
                            std::move(save_driver), options, metrics));
  // Sweep checkpoint files a previous run's crash orphaned between its
  // manifest swap and reclaim pass (best effort: a directory with no
  // manifest has nothing reachable to preserve -- the seq-0 publish
  // below reclaims everything anyway).
  Result<Manifest> previous = ReadManifest(manager->dir_);
  if (previous.ok()) {
    Result<uint64_t> swept = ReclaimUnreachable(manager->dir_, *previous);
    if (swept.ok()) {
      manager->orphans_reclaimed_ += *swept;
      manager->Count("ckpt.orphans_reclaimed", *swept);
    }
  }
  // A fresh run starts its WAL from segment 1; stale segments of an
  // earlier run in the same directory would otherwise be replayed as
  // this run's history.
  Result<std::vector<std::string>> names = ListDir(manager->dir_);
  if (!names.ok()) return names.status();
  bool removed_stale_wal = false;
  for (const std::string& name : *names) {
    if (ParseWalSegmentIndex(name) != 0) {
      RemoveFileIfExists(manager->dir_ + "/" + name);
      removed_stale_wal = true;
    }
  }
  if (removed_stale_wal) {
    ABIVM_RETURN_NOT_OK(FsyncDir(manager->dir_));
  }
  // Seq-0 checkpoint of the initial state: recovery always has a
  // manifest to start from, whatever step the run dies on.
  ABIVM_RETURN_NOT_OK(manager->PublishAndVacuum(/*next_step=*/0));
  ABIVM_RETURN_NOT_OK(manager->wal_.Open(manager->WalSegmentPath(1),
                                         /*truncate_to=*/0));
  manager->InstallListener();
  return manager;
}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Resume(
    std::string dir, Database* db, ViewMaintainer* maintainer,
    SaveDriverState save_driver, const ResumeHandle& handle,
    DurabilityOptions options, obs::MetricRegistry* metrics) {
  std::unique_ptr<DurabilityManager> manager(
      new DurabilityManager(std::move(dir), db, maintainer,
                            std::move(save_driver), options, metrics));
  manager->next_seq_ = handle.manifest_seq + 1;
  manager->last_checkpoint_version_ = handle.checkpoint_version;
  manager->trace_steps_ = handle.trace_prefix;
  manager->last_published_trace_size_ = manager->trace_steps_.size();
  manager->wal_segment_ = handle.wal_last_segment;
  manager->wal_oldest_segment_ = handle.wal_first_segment;
  // The resumed state is AHEAD of the newest image (WAL redo applied on
  // top of it), so no churn mark exists to delta against: the next
  // publish re-baselines with a full image.
  manager->next_publish_must_be_full_ = true;
  Result<Manifest> manifest = ReadManifest(manager->dir_);
  if (!manifest.ok()) return manifest.status();
  manager->manifest_ = std::move(*manifest);
  manager->have_manifest_ = true;
  // Sweep files the pre-crash run orphaned between a manifest swap and
  // its reclaim pass.
  Result<uint64_t> swept =
      ReclaimUnreachable(manager->dir_, manager->manifest_);
  if (swept.ok()) {
    manager->orphans_reclaimed_ += *swept;
    manager->Count("ckpt.orphans_reclaimed", *swept);
  }
  ABIVM_RETURN_NOT_OK(
      manager->wal_.Open(manager->WalSegmentPath(manager->wal_segment_),
                         handle.wal_valid_bytes));
  manager->InstallListener();
  return manager;
}

Status DurabilityManager::OnStepPlanned(const EngineStepRecord& planned,
                                        bool forced) {
  WalStepPlan plan;
  plan.t = planned.t;
  plan.forced = forced;
  plan.arrivals = planned.arrivals;
  plan.pre_state = planned.pre_state;
  plan.action = planned.action;
  plan.driver_blob = save_driver_();
  plan.mods = std::move(pending_mods_);
  pending_mods_.clear();
  ABIVM_RETURN_NOT_OK(wal_.Append(WalRecord(std::move(plan))));
  Count("ckpt.wal_records", 1);
  return Status::Ok();
}

Status DurabilityManager::OnBatchCommitted(TimeStep t, size_t table,
                                           size_t k,
                                           const BatchResult& result) {
  WalBatchCommit batch;
  batch.t = t;
  batch.table = table;
  batch.k = k;
  batch.processed = result.processed;
  batch.delta_rows_in = result.delta_rows_in;
  batch.view_updates = result.view_updates;
  batch.stats = result.stats;
  ABIVM_RETURN_NOT_OK(wal_.Append(WalRecord(batch)));
  Count("ckpt.wal_records", 1);
  return Status::Ok();
}

Status DurabilityManager::OnStepEnd(const EngineStepRecord& record) {
  WalStepEnd end;
  end.t = record.t;
  end.model_cost = record.model_cost;
  end.abandoned_model_cost = record.abandoned_model_cost;
  end.backoff_ms = record.backoff_ms;
  end.stats = record.stats;
  end.attempted_stats = record.attempted_stats;
  end.failures = record.failures;
  end.retries = record.retries;
  end.retry_budget_abandons = record.retry_budget_abandons;
  end.degraded = record.degraded;
  end.violation = record.violation;
  ABIVM_RETURN_NOT_OK(wal_.Append(WalRecord(end)));
  Count("ckpt.wal_records", 1);
  ABIVM_CHECK_EQ(trace_steps_.size(), static_cast<size_t>(record.t));
  trace_steps_.push_back(record);
  if (options_.checkpoint_every > 0 &&
      (record.t + 1) % options_.checkpoint_every == 0) {
    ABIVM_RETURN_NOT_OK(PublishAndVacuum(record.t + 1));
  }
  return Status::Ok();
}

void DurabilityManager::BeginDeltaTracking() {
  if (options_.incremental) {
    for (const auto& table : db_->tables()) {
      table->BeginCheckpointTracking();
    }
    maintainer_->BeginViewDirtyTracking();
  }
  last_published_trace_size_ = trace_steps_.size();
}

Status DurabilityManager::RotateAndTrimWal() {
  // Rotate first and make the fresh segment's directory entry durable:
  // every segment at or below old_last is then strictly below the image
  // just published, and segment numbering stays monotonic however the
  // trim below is interrupted.
  const uint64_t old_last = wal_segment_;
  ++wal_segment_;
  ABIVM_RETURN_NOT_OK(wal_.Open(WalSegmentPath(wal_segment_),
                                /*truncate_to=*/0));
  ABIVM_RETURN_NOT_OK(FsyncDir(dir_));
  // Delete oldest-first with a directory fsync per unlink, so a kill at
  // any point leaves a contiguous segment suffix (ReadWalDir treats a
  // gap as lost data, not a crash).
  for (uint64_t s = wal_oldest_segment_; s <= old_last; ++s) {
    ABIVM_FAULT_POINT(fault::kFpWalTrim);
    const std::string path = WalSegmentPath(s);
    Result<uint64_t> size = FileSizeBytes(path);
    const uint64_t freed = size.ok() ? *size : 0;
    RemoveFileIfExists(path);
    ABIVM_RETURN_NOT_OK(FsyncDir(dir_));
    wal_oldest_segment_ = s + 1;
    wal_bytes_trimmed_ += freed;
    Count("ckpt.wal_bytes_trimmed", freed);
  }
  return Status::Ok();
}

Status DurabilityManager::PublishAndVacuum(TimeStep next_step) {
  ABIVM_CHECK_EQ(trace_steps_.size(), static_cast<size_t>(next_step));
  // An empty blob means the policy has no snapshot to offer yet (e.g.
  // the seq-0 publish runs before its first Reset): the image goes out
  // without one and the WAL stays untrimmed this cycle.
  std::string policy_blob;
  if (options_.save_policy != nullptr) policy_blob = options_.save_policy();
  const bool policy_snapshot = !policy_blob.empty();
  const bool publish_delta =
      options_.incremental && !next_publish_must_be_full_ &&
      have_manifest_ && manifest_.chain.size() < options_.rebase_every;
  uint64_t bytes = 0;
  Version published_version = 0;
  if (publish_delta) {
    CheckpointDelta delta =
        CaptureCheckpointDelta(*db_, *maintainer_, next_seq_,
                               manifest_.seq, next_step, save_driver_());
    if (policy_snapshot) {
      delta.has_policy_blob = true;
      delta.policy_blob = policy_blob;
    }
    delta.new_trace_steps.assign(
        trace_steps_.begin() +
            static_cast<std::ptrdiff_t>(last_published_trace_size_),
        trace_steps_.end());
    published_version = delta.db_version;
    BeginDeltaTracking();
    ABIVM_RETURN_NOT_OK(
        PublishCheckpointDelta(dir_, delta, manifest_, &bytes, &manifest_));
    ++deltas_published_;
    Count("ckpt.deltas_published", 1);
  } else {
    CheckpointImage image = CaptureCheckpoint(
        *db_, *maintainer_, next_seq_, next_step, save_driver_());
    if (policy_snapshot) {
      image.has_policy_blob = true;
      image.policy_blob = policy_blob;
    }
    image.trace_steps = trace_steps_;
    published_version = image.db_version;
    BeginDeltaTracking();
    ABIVM_RETURN_NOT_OK(PublishCheckpoint(dir_, image, &bytes, &manifest_));
    have_manifest_ = true;
  }
  next_publish_must_be_full_ = false;
  ++next_seq_;
  ++checkpoints_published_;
  last_checkpoint_version_ = published_version;
  Count("ckpt.checkpoints", 1);
  Count("ckpt.bytes_written", bytes);
  // Every WAL record below the image is obsolete once the image carries
  // the policy's decision state (recovery restores the blob instead of
  // replaying decisions from step 0); without the blob the whole WAL
  // stays required.
  if (policy_snapshot && options_.trim_wal && next_step > 0) {
    ABIVM_RETURN_NOT_OK(RotateAndTrimWal());
  }
  if (!options_.vacuum_after_checkpoint) return Status::Ok();
  // Watermark-frontier GC, riding the checkpoint cycle. Safe version per
  // table: min(its watermark, the just-published checkpoint's clock) --
  // never reclaim state a recovery redo could need to read.
  size_t reclaimed = 0;
  size_t trimmed = 0;
  ABIVM_RETURN_NOT_OK(maintainer_->VacuumConsumedBelow(
      last_checkpoint_version_, &reclaimed, &trimmed));
  ++gc_passes_;
  gc_rows_reclaimed_ += reclaimed;
  Count("gc.passes", 1);
  Count("gc.rows_reclaimed", reclaimed);
  Count("gc.log_entries_trimmed", trimmed);
  return Status::Ok();
}

}  // namespace abivm::ckpt
