#include "ckpt/manager.h"

#include "ckpt/posix_io.h"

namespace abivm::ckpt {

namespace {

std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

}  // namespace

DurabilityManager::DurabilityManager(std::string dir, Database* db,
                                     ViewMaintainer* maintainer,
                                     SaveDriverState save_driver,
                                     DurabilityOptions options,
                                     obs::MetricRegistry* metrics)
    : dir_(std::move(dir)),
      db_(db),
      maintainer_(maintainer),
      save_driver_(std::move(save_driver)),
      options_(options),
      metrics_(metrics) {
  ABIVM_CHECK(db_ != nullptr);
  ABIVM_CHECK(maintainer_ != nullptr);
  ABIVM_CHECK(save_driver_ != nullptr);
}

DurabilityManager::~DurabilityManager() {
  db_->SetApplyListener(nullptr);
}

void DurabilityManager::InstallListener() {
  db_->SetApplyListener([this](const AppliedModification& mod) {
    pending_mods_.push_back(mod);
  });
}

void DurabilityManager::Count(const char* name, uint64_t delta) {
  if (metrics_ != nullptr) metrics_->counter(name).Add(delta);
}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Start(
    std::string dir, Database* db, ViewMaintainer* maintainer,
    SaveDriverState save_driver, DurabilityOptions options,
    obs::MetricRegistry* metrics) {
  ABIVM_RETURN_NOT_OK(EnsureDir(dir));
  std::unique_ptr<DurabilityManager> manager(
      new DurabilityManager(std::move(dir), db, maintainer,
                            std::move(save_driver), options, metrics));
  // Seq-0 checkpoint of the initial state: recovery always has a
  // manifest to start from, whatever step the run dies on.
  ABIVM_RETURN_NOT_OK(manager->PublishAndVacuum(/*next_step=*/0));
  ABIVM_RETURN_NOT_OK(manager->wal_.Open(WalPath(manager->dir_),
                                         /*truncate_to=*/0));
  manager->InstallListener();
  return manager;
}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Resume(
    std::string dir, Database* db, ViewMaintainer* maintainer,
    SaveDriverState save_driver, const ResumeHandle& handle,
    DurabilityOptions options, obs::MetricRegistry* metrics) {
  std::unique_ptr<DurabilityManager> manager(
      new DurabilityManager(std::move(dir), db, maintainer,
                            std::move(save_driver), options, metrics));
  manager->next_seq_ = handle.manifest_seq + 1;
  manager->last_checkpoint_version_ = handle.checkpoint_version;
  ABIVM_RETURN_NOT_OK(
      manager->wal_.Open(WalPath(manager->dir_), handle.wal_valid_bytes));
  manager->InstallListener();
  return manager;
}

Status DurabilityManager::OnStepPlanned(const EngineStepRecord& planned,
                                        bool forced) {
  WalStepPlan plan;
  plan.t = planned.t;
  plan.forced = forced;
  plan.arrivals = planned.arrivals;
  plan.pre_state = planned.pre_state;
  plan.action = planned.action;
  plan.driver_blob = save_driver_();
  plan.mods = std::move(pending_mods_);
  pending_mods_.clear();
  ABIVM_RETURN_NOT_OK(wal_.Append(WalRecord(std::move(plan))));
  Count("ckpt.wal_records", 1);
  return Status::Ok();
}

Status DurabilityManager::OnBatchCommitted(TimeStep t, size_t table,
                                           size_t k,
                                           const BatchResult& result) {
  WalBatchCommit batch;
  batch.t = t;
  batch.table = table;
  batch.k = k;
  batch.processed = result.processed;
  batch.delta_rows_in = result.delta_rows_in;
  batch.view_updates = result.view_updates;
  batch.stats = result.stats;
  ABIVM_RETURN_NOT_OK(wal_.Append(WalRecord(batch)));
  Count("ckpt.wal_records", 1);
  return Status::Ok();
}

Status DurabilityManager::OnStepEnd(const EngineStepRecord& record) {
  WalStepEnd end;
  end.t = record.t;
  end.model_cost = record.model_cost;
  end.abandoned_model_cost = record.abandoned_model_cost;
  end.backoff_ms = record.backoff_ms;
  end.stats = record.stats;
  end.attempted_stats = record.attempted_stats;
  end.failures = record.failures;
  end.retries = record.retries;
  end.retry_budget_abandons = record.retry_budget_abandons;
  end.degraded = record.degraded;
  end.violation = record.violation;
  ABIVM_RETURN_NOT_OK(wal_.Append(WalRecord(end)));
  Count("ckpt.wal_records", 1);
  if (options_.checkpoint_every > 0 &&
      (record.t + 1) % options_.checkpoint_every == 0) {
    ABIVM_RETURN_NOT_OK(PublishAndVacuum(record.t + 1));
  }
  return Status::Ok();
}

Status DurabilityManager::PublishAndVacuum(TimeStep next_step) {
  CheckpointImage image = CaptureCheckpoint(*db_, *maintainer_, next_seq_,
                                            next_step, save_driver_());
  uint64_t bytes = 0;
  ABIVM_RETURN_NOT_OK(PublishCheckpoint(dir_, image, &bytes));
  ++next_seq_;
  ++checkpoints_published_;
  last_checkpoint_version_ = image.db_version;
  Count("ckpt.checkpoints", 1);
  Count("ckpt.bytes_written", bytes);
  if (!options_.vacuum_after_checkpoint) return Status::Ok();
  // Watermark-frontier GC, riding the checkpoint cycle. Safe version per
  // table: min(its watermark, the just-published checkpoint's clock) --
  // never reclaim state a recovery redo could need to read.
  size_t reclaimed = 0;
  size_t trimmed = 0;
  ABIVM_RETURN_NOT_OK(maintainer_->VacuumConsumedBelow(
      last_checkpoint_version_, &reclaimed, &trimmed));
  ++gc_passes_;
  gc_rows_reclaimed_ += reclaimed;
  Count("gc.passes", 1);
  Count("gc.rows_reclaimed", reclaimed);
  Count("gc.log_entries_trimmed", trimmed);
  return Status::Ok();
}

}  // namespace abivm::ckpt
