#include "ckpt/serde.h"

#include <cstring>

namespace abivm::ckpt {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out->append(buf, sizeof(buf));
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out->append(buf, sizeof(buf));
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view s) {
  PutU64(out, s.size());
  out->append(s.data(), s.size());
}

void PutValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kInt64:
      PutI64(out, v.AsInt64());
      break;
    case ValueType::kDouble:
      PutDouble(out, v.AsDouble());
      break;
    case ValueType::kString:
      PutString(out, v.AsString());
      break;
  }
}

void PutRow(std::string* out, const Row& row) {
  PutU64(out, row.size());
  for (const Value& v : row) PutValue(out, v);
}

void PutStateVec(std::string* out, const StateVec& v) {
  PutU64(out, v.size());
  for (Count c : v) PutU64(out, c);
}

Status ByteReader::Need(size_t n) const {
  if (offset_ + n > data_.size()) {
    return Status::OutOfRange("serialized image truncated at offset " +
                              std::to_string(offset_) + " (need " +
                              std::to_string(n) + " of " +
                              std::to_string(data_.size()) + " bytes)");
  }
  return Status::Ok();
}

Status ByteReader::GetU8(uint8_t* v) {
  ABIVM_RETURN_NOT_OK(Need(1));
  *v = static_cast<uint8_t>(data_[offset_++]);
  return Status::Ok();
}

Status ByteReader::GetU32(uint32_t* v) {
  ABIVM_RETURN_NOT_OK(Need(4));
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[offset_ + i]))
           << (8 * i);
  }
  offset_ += 4;
  *v = out;
  return Status::Ok();
}

Status ByteReader::GetU64(uint64_t* v) {
  ABIVM_RETURN_NOT_OK(Need(8));
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[offset_ + i]))
           << (8 * i);
  }
  offset_ += 8;
  *v = out;
  return Status::Ok();
}

Status ByteReader::GetI64(int64_t* v) {
  uint64_t raw = 0;
  ABIVM_RETURN_NOT_OK(GetU64(&raw));
  *v = static_cast<int64_t>(raw);
  return Status::Ok();
}

Status ByteReader::GetDouble(double* v) {
  uint64_t bits = 0;
  ABIVM_RETURN_NOT_OK(GetU64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::Ok();
}

Status ByteReader::GetString(std::string* s) {
  uint64_t len = 0;
  ABIVM_RETURN_NOT_OK(GetU64(&len));
  ABIVM_RETURN_NOT_OK(Need(static_cast<size_t>(len)));
  s->assign(data_.data() + offset_, static_cast<size_t>(len));
  offset_ += static_cast<size_t>(len);
  return Status::Ok();
}

Status ByteReader::GetValue(Value* v) {
  uint8_t tag = 0;
  ABIVM_RETURN_NOT_OK(GetU8(&tag));
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kInt64: {
      int64_t x = 0;
      ABIVM_RETURN_NOT_OK(GetI64(&x));
      *v = Value(x);
      return Status::Ok();
    }
    case ValueType::kDouble: {
      double x = 0;
      ABIVM_RETURN_NOT_OK(GetDouble(&x));
      *v = Value(x);
      return Status::Ok();
    }
    case ValueType::kString: {
      std::string x;
      ABIVM_RETURN_NOT_OK(GetString(&x));
      *v = Value(std::move(x));
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("bad Value type tag " +
                                 std::to_string(tag));
}

Status ByteReader::GetRow(Row* row) {
  uint64_t n = 0;
  ABIVM_RETURN_NOT_OK(GetU64(&n));
  row->clear();
  row->reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    Value v;
    ABIVM_RETURN_NOT_OK(GetValue(&v));
    row->push_back(std::move(v));
  }
  return Status::Ok();
}

Status ByteReader::GetStateVec(StateVec* v) {
  uint64_t n = 0;
  ABIVM_RETURN_NOT_OK(GetU64(&n));
  v->clear();
  v->reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t c = 0;
    ABIVM_RETURN_NOT_OK(GetU64(&c));
    v->push_back(c);
  }
  return Status::Ok();
}

Status ByteReader::ExpectEnd() const {
  if (!AtEnd()) {
    return Status::InvalidArgument(
        "serialized image has " + std::to_string(data_.size() - offset_) +
        " trailing bytes");
  }
  return Status::Ok();
}

uint64_t Checksum(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace abivm::ckpt
