// RecoverFromDir: rebuilds a crashed engine run from its durability
// directory -- the MANIFEST-designated checkpoint chain plus the WAL --
// and computes exactly where the resumed run picks up.
//
// Replay rules (see DESIGN.md section 5i):
//   * The checkpoint chain (full base image folded under each chained
//     delta) restores the database and maintainer to the state as of
//     `next_step` (every step < next_step fully applied). The image
//     also carries the completed trace prefix for those steps.
//   * The WAL segments are then scanned from the oldest record on.
//     kStepPlan records replay the policy's decision sequence (skipping
//     forced steps) against a freshly Reset policy -- the replayed
//     action must equal the logged one, which deterministically
//     rebuilds stateful policies without serializing their internals.
//     When the image carries a policy blob, the policy is instead
//     restored from it and only decisions >= next_step are replayed --
//     which is what makes a WAL trimmed below the image sufficient.
//     For steps >= next_step the plan's modifications are re-applied
//     through the normal TryApply* path (RowIds and versions must
//     reproduce exactly) and each logged kBatchCommit is re-executed
//     with ProcessBatchChecked (its BatchResult integrity fields must
//     match the log).
//   * A kStepPlan with no matching kStepEnd at the tail means the crash
//     hit mid-step: the resumed run re-enters that step, skipping the
//     batches whose commits are on disk.
//   * A torn trailing record is expected crash damage: it is ignored
//     here and truncated when DurabilityManager::Resume reopens the WAL.
//
// Recovery itself writes NOTHING to disk, so a failed or fault-injected
// recovery (recovery.replay) can simply be retried.

#ifndef ABIVM_CKPT_RECOVERY_H_
#define ABIVM_CKPT_RECOVERY_H_

#include <memory>
#include <string>
#include <vector>

#include "ckpt/manager.h"
#include "core/cost_model.h"
#include "core/policy.h"
#include "ivm/view_def.h"
#include "obs/metrics.h"
#include "sim/engine_runner.h"

namespace abivm::ckpt {

struct RecoveryOptions {
  /// Planner toggles for re-binding the view (must match the original
  /// run's).
  BindingOptions binding;
  /// Optional sink for `recovery.*` counters.
  obs::MetricRegistry* metrics = nullptr;
};

struct RecoveredRun {
  std::unique_ptr<Database> db;
  std::unique_ptr<ViewMaintainer> maintainer;
  /// Driver state to restore (e.g. TpcUpdater::RestoreState) before the
  /// resumed run executes its first step.
  std::string driver_blob;
  /// Every step the crashed run completed, rebuilt from the WAL --
  /// stitch with the resumed run's trace via StitchTrace.
  std::vector<EngineStepRecord> trace_prefix;
  /// Where RunOnEngine picks up (EngineRunnerOptions::resume).
  EngineResumeState resume;
  /// For DurabilityManager::Resume.
  ResumeHandle handle;
};

/// Rebuilds the run from `dir`. `def` must be the original run's view
/// definition and `model`/`budget` its cost model and budget; `policy`
/// (optional) is Reset and replayed to the crash point. Carries the
/// `recovery.replay` failpoint per WAL record.
Result<RecoveredRun> RecoverFromDir(const std::string& dir, ViewDef def,
                                    const CostModel& model, double budget,
                                    Policy* policy,
                                    RecoveryOptions options = {});

/// Prefix (recovered) + resumed trace, with every total re-derived from
/// the concatenated step records in step order -- the same in-order
/// accumulation a live run performs, so doubles match bit-for-bit.
/// Wall-clock totals cover only what was actually measured;
/// operator_profiles are not reconstructable and are taken from the
/// resumed trace alone.
EngineTrace StitchTrace(const std::vector<EngineStepRecord>& prefix,
                        const EngineTrace& resumed);

/// Step-by-step equality on everything deterministic (t, arrivals,
/// states, actions, bit-exact model costs, ExecStats, failure/degrade
/// accounting, violations) -- wall-clock fields are ignored. On
/// mismatch, `*why` (optional) receives a description.
bool DeterministicTraceEquals(const EngineTrace& a, const EngineTrace& b,
                              std::string* why = nullptr);

}  // namespace abivm::ckpt

#endif  // ABIVM_CKPT_RECOVERY_H_
