// Binary serialization primitives for the durability layer: fixed-width
// little-endian integers, raw-bit doubles, length-prefixed strings, and
// the storage vocabulary (Value / Row / StateVec) built on top of them.
//
// Doubles are serialized as their raw 64-bit pattern, NOT via decimal
// text: a recovered maintainer must carry the exact sums its incremental
// history produced (a recompute would round in a different order), and a
// recovered trace record must compare bit-equal to the live one.

#ifndef ABIVM_CKPT_SERDE_H_
#define ABIVM_CKPT_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/types.h"
#include "storage/value.h"

namespace abivm::ckpt {

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutDouble(std::string* out, double v);
void PutString(std::string* out, std::string_view s);
void PutValue(std::string* out, const Value& v);
void PutRow(std::string* out, const Row& row);
void PutStateVec(std::string* out, const StateVec& v);

/// Bounds-checked sequential reader over a serialized buffer. Every
/// getter returns OutOfRange past the end and InvalidArgument on a
/// malformed tag -- a truncated or corrupt image surfaces as a Status,
/// never as UB.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetI64(int64_t* v);
  Status GetDouble(double* v);
  Status GetString(std::string* s);
  Status GetValue(Value* v);
  Status GetRow(Row* row);
  Status GetStateVec(StateVec* v);

  size_t offset() const { return offset_; }
  bool AtEnd() const { return offset_ == data_.size(); }
  /// InvalidArgument unless the whole buffer was consumed.
  Status ExpectEnd() const;

 private:
  Status Need(size_t n) const;

  std::string_view data_;
  size_t offset_ = 0;
};

/// FNV-1a 64-bit checksum, used by the WAL and checkpoint images to
/// detect torn writes and corruption.
uint64_t Checksum(std::string_view data);

}  // namespace abivm::ckpt

#endif  // ABIVM_CKPT_SERDE_H_
