// DurabilityManager: the ckpt layer's implementation of the engine
// runner's EngineDurabilityHooks.
//
// Lifecycle of a durable run:
//   Start()  -- publishes the seq-0 checkpoint of the initial
//               (consistent) state, opens a fresh WAL, and installs the
//               Database apply listener that captures every logged
//               modification with its RowIds.
//   hooks    -- OnStepPlanned appends a kStepPlan record carrying the
//               buffered modifications and the driver-state blob;
//               OnBatchCommitted appends a kBatchCommit; OnStepEnd
//               appends a kStepEnd, then -- on the checkpoint cadence --
//               publishes a fresh checkpoint and runs the
//               watermark-frontier vacuum pass.
//   Resume() -- after RecoverFromDir: reopens the WAL at the valid
//               prefix (cutting any torn tail) and continues the
//               checkpoint sequence.
//
// Any failed durability step surfaces as a non-OK hook return, which
// aborts the run dead (EngineTrace::aborted) -- the crash model the
// kill-and-restart torture tests drive.

#ifndef ABIVM_CKPT_MANAGER_H_
#define ABIVM_CKPT_MANAGER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/wal.h"
#include "obs/metrics.h"
#include "sim/engine_runner.h"

namespace abivm::ckpt {

struct DurabilityOptions {
  /// Publish a checkpoint every this many completed steps of simulated
  /// time (0 disables periodic checkpoints; only seq 0 is written).
  TimeStep checkpoint_every = 8;
  /// Run the watermark-frontier vacuum pass after each published
  /// checkpoint: per maintained table, dead row versions strictly below
  /// min(its watermark version, the checkpoint's version clock) are
  /// reclaimed and the consumed delta-log prefix trimmed. The cap at the
  /// checkpoint version is what keeps recovery's redo replayable -- it
  /// joins co-tables at the CHECKPOINTED watermark snapshots.
  bool vacuum_after_checkpoint = true;
  /// Publish incremental (delta) checkpoints between full images, so
  /// steady-state checkpoint bytes are proportional to churn, not to
  /// table size. Full images still rebase the chain (see rebase_every),
  /// and the first image of a run / after a resume is always full.
  bool incremental = true;
  /// Rebase with a full image once the chain holds this many files (one
  /// full base + rebase_every-1 deltas). <= 1 makes every image full.
  uint64_t rebase_every = 4;
  /// Snapshots the policy's complete decision state
  /// (Policy::SaveState) into each image. Set it only for policies with
  /// SupportsStateSnapshot(): its presence is what entitles the manager
  /// to trim WAL segments below the newest image (recovery restores the
  /// blob instead of replaying every decision from step 0). Null = no
  /// snapshot; the WAL is never trimmed.
  std::function<std::string()> save_policy;
  /// Delete WAL segments made obsolete by a policy-carrying image
  /// (no-op without save_policy). Keeps WAL disk usage bounded by one
  /// checkpoint cycle instead of the whole run.
  bool trim_wal = true;
};

/// How a resumed manager reattaches to the on-disk state; produced by
/// RecoverFromDir.
struct ResumeHandle {
  /// Sequence of the manifest the recovery loaded (Resume continues at
  /// seq + 1).
  uint64_t manifest_seq = 0;
  /// Version clock of the loaded checkpoint (GC cap until the next one).
  Version checkpoint_version = 0;
  /// Valid prefix of the NEWEST WAL segment in bytes; Resume truncates
  /// any torn tail.
  size_t wal_valid_bytes = 0;
  /// Oldest and newest WAL segment indices on disk (trim keeps the range
  /// contiguous); Resume reopens the newest and trims from the oldest.
  uint64_t wal_first_segment = 1;
  uint64_t wal_last_segment = 1;
  /// Every step the crashed run completed (image prefix + WAL-derived
  /// tail); Resume seeds its accumulated trace from it so the next
  /// published image carries the complete [0, next_step) prefix.
  std::vector<EngineStepRecord> trace_prefix;
};

class DurabilityManager final : public EngineDurabilityHooks {
 public:
  /// Snapshots the driver's opaque resume state (e.g. its PRNG words).
  using SaveDriverState = std::function<std::string()>;

  /// Fresh run over a consistent maintainer: creates `dir`, publishes
  /// the seq-0 checkpoint, opens an empty WAL, installs the apply
  /// listener. The database, maintainer, and metrics must outlive the
  /// manager.
  static Result<std::unique_ptr<DurabilityManager>> Start(
      std::string dir, Database* db, ViewMaintainer* maintainer,
      SaveDriverState save_driver, DurabilityOptions options = {},
      obs::MetricRegistry* metrics = nullptr);

  /// Reattach after RecoverFromDir (which produced `handle`).
  static Result<std::unique_ptr<DurabilityManager>> Resume(
      std::string dir, Database* db, ViewMaintainer* maintainer,
      SaveDriverState save_driver, const ResumeHandle& handle,
      DurabilityOptions options = {},
      obs::MetricRegistry* metrics = nullptr);

  ~DurabilityManager() override;
  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  Status OnStepPlanned(const EngineStepRecord& planned,
                       bool forced) override;
  Status OnBatchCommitted(TimeStep t, size_t table, size_t k,
                          const BatchResult& result) override;
  Status OnStepEnd(const EngineStepRecord& record) override;

  uint64_t checkpoints_published() const { return checkpoints_published_; }
  /// Sequence the NEXT checkpoint will get.
  uint64_t next_seq() const { return next_seq_; }
  uint64_t wal_records_appended() const {
    return wal_.records_appended();
  }
  uint64_t gc_rows_reclaimed() const { return gc_rows_reclaimed_; }
  uint64_t gc_passes() const { return gc_passes_; }
  /// Of checkpoints_published(), how many were incremental deltas.
  uint64_t deltas_published() const { return deltas_published_; }
  /// Bytes of WAL segments deleted below policy-carrying images.
  uint64_t wal_bytes_trimmed() const { return wal_bytes_trimmed_; }
  /// Superseded checkpoint files swept on start/resume (files a crash
  /// orphaned between a manifest swap and its reclaim pass).
  uint64_t orphans_reclaimed() const { return orphans_reclaimed_; }

 private:
  DurabilityManager(std::string dir, Database* db,
                    ViewMaintainer* maintainer, SaveDriverState save_driver,
                    DurabilityOptions options,
                    obs::MetricRegistry* metrics);

  void InstallListener();
  Status PublishAndVacuum(TimeStep next_step);
  /// Restarts storage/view dirty tracking and records the published
  /// trace watermark -- the baseline the next delta captures against.
  void BeginDeltaTracking();
  /// Rotates to a fresh WAL segment and deletes every older one,
  /// counting the freed bytes. Only called below a policy-carrying
  /// image (next_step > 0).
  Status RotateAndTrimWal();
  void Count(const char* name, uint64_t delta);

  std::string WalSegmentPath(uint64_t index) const;

  std::string dir_;
  Database* db_;
  ViewMaintainer* maintainer_;
  SaveDriverState save_driver_;
  DurabilityOptions options_;
  obs::MetricRegistry* metrics_;
  WalWriter wal_;
  /// Modifications applied since the last kStepPlan record (captured by
  /// the Database listener).
  std::vector<AppliedModification> pending_mods_;
  uint64_t next_seq_ = 0;
  Version last_checkpoint_version_ = 0;
  uint64_t checkpoints_published_ = 0;
  uint64_t gc_rows_reclaimed_ = 0;
  uint64_t gc_passes_ = 0;
  /// Completed-step records accumulated this run (seeded from the
  /// resume handle), published as each image's trace prefix.
  std::vector<EngineStepRecord> trace_steps_;
  /// trace_steps_.size() at the last publish (delta trace baseline).
  size_t last_published_trace_size_ = 0;
  /// The published chain, mirrored in memory for delta chaining.
  Manifest manifest_;
  bool have_manifest_ = false;
  /// Seq 0 and the first publish after Resume must be full: resumed
  /// state is ahead of the last image (WAL redo), so no mark exists to
  /// delta against.
  bool next_publish_must_be_full_ = true;
  uint64_t wal_segment_ = 1;
  uint64_t wal_oldest_segment_ = 1;
  uint64_t deltas_published_ = 0;
  uint64_t wal_bytes_trimmed_ = 0;
  uint64_t orphans_reclaimed_ = 0;
};

}  // namespace abivm::ckpt

#endif  // ABIVM_CKPT_MANAGER_H_
