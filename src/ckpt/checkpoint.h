// Checkpoint image: a complete, self-describing snapshot of an engine
// run's durable state -- every table's exact physical layout (all row
// slots including vacuumed ones, the live-sampling order, the retained
// delta-log suffix, vacuum horizon, index catalog), the global version
// clock, the maintainer's watermarks and view content (raw-bit doubles),
// the next step to execute, and the opaque driver-state blob.
//
// Publication protocol: the image is written durably under a
// sequence-numbered name (ckpt-<seq>.bin), then the MANIFEST -- which
// names the current image and its checksum -- is atomically swapped.
// Recovery trusts only what the MANIFEST points at; a crash anywhere in
// the protocol leaves the previous manifest/image pair intact.

#ifndef ABIVM_CKPT_CHECKPOINT_H_
#define ABIVM_CKPT_CHECKPOINT_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "ivm/maintainer.h"
#include "storage/database.h"

namespace abivm::ckpt {

/// One table's exact physical state.
struct TableImage {
  std::string name;
  std::vector<Column> columns;
  /// Every physical slot in RowId order; vacuumed slots have an empty
  /// payload row.
  std::vector<VersionedRow> slots;
  /// Live RowIds in sampling order (the swap-remove history).
  std::vector<RowId> live_ids;
  Version vacuum_horizon = 0;
  size_t delta_base_offset = 0;
  /// Retained delta-log suffix at positions [delta_base_offset, ...).
  std::vector<Modification> delta_mods;
  /// Indexed columns, by name.
  std::vector<std::string> indexed_columns;
};

struct CheckpointImage {
  uint64_t seq = 0;
  Version db_version = 0;
  /// First step the resumed run has NOT fully executed.
  TimeStep next_step = 0;
  std::string driver_blob;
  std::vector<TableImage> tables;
  /// Maintainer watermarks, in the maintainer's base-table order.
  std::vector<size_t> positions;
  std::vector<Version> versions;
  /// View content with its exact incremental-history doubles.
  bool view_is_aggregate = false;
  std::map<Row, GroupState> view_groups;
};

/// Snapshots the live objects into an image (pure read).
CheckpointImage CaptureCheckpoint(const Database& db,
                                  const ViewMaintainer& maintainer,
                                  uint64_t seq, TimeStep next_step,
                                  std::string driver_blob);

std::string SerializeCheckpoint(const CheckpointImage& image);
Result<CheckpointImage> ParseCheckpoint(std::string_view data);

/// Rebuilds the database portion of an image into an EMPTY Database:
/// tables (slots, live order, vacuum horizon, delta log, indexes) and
/// the version clock. The maintainer portion is installed by the
/// recovery (it owns the ViewDef needed to re-bind).
Status InstallDatabaseImage(const CheckpointImage& image, Database* db);

struct Manifest {
  uint64_t seq = 0;
  std::string checkpoint_file;
  uint64_t checkpoint_checksum = 0;
};

/// File name of the image with this sequence number.
std::string CheckpointFileName(uint64_t seq);

/// Serializes + durably publishes the image and swaps the manifest;
/// carries the `ckpt.manifest` failpoint before the swap (the image
/// write carries `ckpt.write`/`ckpt.fsync`/`ckpt.rename` itself). On
/// success `*bytes_written` (optional) receives the image size.
Status PublishCheckpoint(const std::string& dir,
                         const CheckpointImage& image,
                         uint64_t* bytes_written = nullptr);

/// Reads the manifest; NotFound when the directory was never published.
Result<Manifest> ReadManifest(const std::string& dir);

}  // namespace abivm::ckpt

#endif  // ABIVM_CKPT_CHECKPOINT_H_
