// Checkpoint image: a complete, self-describing snapshot of an engine
// run's durable state -- every table's exact physical layout (all row
// slots including vacuumed ones, the live-sampling order, the retained
// delta-log suffix, vacuum horizon, index catalog), the global version
// clock, the maintainer's watermarks and view content (raw-bit doubles),
// the next step to execute, and the opaque driver-state blob.
//
// Incremental images: after a full image, subsequent checkpoints may be
// DELTAS -- only the churn since the previous image (new row slots,
// tombstones and vacuums of pre-existing slots, appended delta-log
// modifications, changed view groups), captured from the storage layer's
// per-table dirty tracking. A delta chains onto the image before it;
// FoldCheckpointDelta reproduces, byte for byte, the full image a
// non-incremental capture would have written at the same seq. Periodic
// full images rebase the chain so recovery cost stays bounded.
//
// Publication protocol: the image (full or delta, both named
// ckpt-<seq>.bin) is written durably, then the MANIFEST -- which names
// the whole chain (full base first, deltas ascending) with per-file
// checksums -- is atomically swapped. Recovery trusts only what the
// MANIFEST points at; a crash anywhere in the protocol leaves the
// previous manifest/chain intact. Files no longer reachable from the
// manifest are reclaimed after every swap and swept again on
// start/resume (a crash between swap and reclaim must not leak them
// forever).

#ifndef ABIVM_CKPT_CHECKPOINT_H_
#define ABIVM_CKPT_CHECKPOINT_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "ivm/maintainer.h"
#include "sim/engine_runner.h"
#include "storage/database.h"

namespace abivm::ckpt {

/// One table's exact physical state.
struct TableImage {
  std::string name;
  std::vector<Column> columns;
  /// Every physical slot in RowId order; vacuumed slots have an empty
  /// payload row.
  std::vector<VersionedRow> slots;
  /// Live RowIds in sampling order (the swap-remove history).
  std::vector<RowId> live_ids;
  Version vacuum_horizon = 0;
  size_t delta_base_offset = 0;
  /// Retained delta-log suffix at positions [delta_base_offset, ...).
  std::vector<Modification> delta_mods;
  /// Indexed columns, by name.
  std::vector<std::string> indexed_columns;
};

struct CheckpointImage {
  uint64_t seq = 0;
  Version db_version = 0;
  /// First step the resumed run has NOT fully executed.
  TimeStep next_step = 0;
  std::string driver_blob;
  std::vector<TableImage> tables;
  /// Maintainer watermarks, in the maintainer's base-table order.
  std::vector<size_t> positions;
  std::vector<Version> versions;
  /// View content with its exact incremental-history doubles.
  bool view_is_aggregate = false;
  std::map<Row, GroupState> view_groups;
  /// Policy decision-state blob (Policy::SaveState), when the run's
  /// policy supports snapshots. Its presence is what entitles the
  /// durability manager to trim the WAL below this image: without it,
  /// recovery must replay every logged decision from step 0.
  bool has_policy_blob = false;
  std::string policy_blob;
  /// Completed trace prefix: one record per step in [0, next_step),
  /// WITHOUT wall-clock fields (excluded from every determinism
  /// promise). Carried so trimming the WAL below the image does not
  /// lose the stitched end-to-end trace.
  std::vector<EngineStepRecord> trace_steps;
};

/// Snapshots the live objects into an image (pure read).
CheckpointImage CaptureCheckpoint(const Database& db,
                                  const ViewMaintainer& maintainer,
                                  uint64_t seq, TimeStep next_step,
                                  std::string driver_blob);

std::string SerializeCheckpoint(const CheckpointImage& image);
Result<CheckpointImage> ParseCheckpoint(std::string_view data);

/// Rebuilds the database portion of an image into an EMPTY Database:
/// tables (slots, live order, vacuum horizon, delta log, indexes) and
/// the version clock. The maintainer portion is installed by the
/// recovery (it owns the ViewDef needed to re-bind).
Status InstallDatabaseImage(const CheckpointImage& image, Database* db);

/// One table's churn since the base image. Slots with id >=
/// base_slot_count are serialized whole (their final state, including
/// tombstoned/vacuumed); pre-existing slots only record the events that
/// touched them.
struct TableImageDelta {
  std::string name;
  /// Physical slot count of the base image (new slots start here).
  size_t base_slot_count = 0;
  /// Slots allocated since the base, in RowId order.
  std::vector<VersionedRow> new_slots;
  /// Pre-existing slots tombstoned since the base: (id, delete_version)
  /// in tombstone order.
  std::vector<std::pair<RowId, Version>> tombstoned;
  /// Pre-existing slots whose payloads were vacuumed since the base.
  std::vector<RowId> vacuumed;
  Version vacuum_horizon = 0;
  /// Retained delta-log window after this delta: the new first_retained
  /// position plus the modifications appended since the base (at
  /// positions [first_new_mod_position, ...)).
  size_t delta_base_offset = 0;
  size_t first_new_mod_position = 0;
  std::vector<Modification> new_mods;
  /// Columns indexed since the base, by name.
  std::vector<std::string> new_indexed_columns;
};

/// A chained checkpoint: everything that changed since the image at
/// base_seq. Folding it onto that image reproduces the full image a
/// non-incremental capture would have written at seq, byte for byte.
struct CheckpointDelta {
  uint64_t seq = 0;
  uint64_t base_seq = 0;
  Version db_version = 0;
  TimeStep next_step = 0;
  std::string driver_blob;
  bool has_policy_blob = false;
  std::string policy_blob;
  std::vector<TableImageDelta> tables;
  std::vector<size_t> positions;
  std::vector<Version> versions;
  /// View groups that changed since the base (their full new state) and
  /// keys that vanished, both sorted by key for deterministic bytes. A
  /// key created and erased between images appears in removed_groups
  /// even though the base lacks it; folding tolerates that.
  std::vector<std::pair<Row, GroupState>> changed_groups;
  std::vector<Row> removed_groups;
  /// Trace records for steps [base.next_step, next_step).
  std::vector<EngineStepRecord> new_trace_steps;
};

/// Snapshots the churn since the last published image into a delta,
/// reading each table's checkpoint_mark() and the view's dirty keys.
/// Requires BeginCheckpointTracking / BeginViewDirtyTracking to have
/// been called at the previous publish. The caller (durability manager)
/// fills policy blob and new_trace_steps afterwards, as it does for
/// full images.
CheckpointDelta CaptureCheckpointDelta(const Database& db,
                                       const ViewMaintainer& maintainer,
                                       uint64_t seq, uint64_t base_seq,
                                       TimeStep next_step,
                                       std::string driver_blob);

std::string SerializeCheckpointDelta(const CheckpointDelta& delta);
Result<CheckpointDelta> ParseCheckpointDelta(std::string_view data);

/// Applies `delta` to the full image it chains onto, producing the full
/// image at delta.seq. InvalidArgument when the delta does not link to
/// `base` (wrong base_seq, unknown table, inconsistent log window).
Result<CheckpointImage> FoldCheckpointDelta(const CheckpointImage& base,
                                            const CheckpointDelta& delta);

/// One file of a checkpoint chain.
struct ManifestEntry {
  std::string file;
  uint64_t checksum = 0;
  bool is_delta = false;
};

/// The published chain: a full base image first, then deltas ascending.
/// `seq` is the newest entry's sequence number.
struct Manifest {
  uint64_t seq = 0;
  std::vector<ManifestEntry> chain;
};

/// File name of the image with this sequence number (full images and
/// deltas share the pattern; the manifest records which is which).
std::string CheckpointFileName(uint64_t seq);

/// Serializes + durably publishes a FULL image and swaps the manifest
/// to a single-entry chain; carries the `ckpt.manifest` failpoint
/// before the swap (the image write carries `ckpt.write`/`ckpt.fsync`/
/// `ckpt.rename` itself). Afterwards reclaims every checkpoint file the
/// new manifest no longer reaches. On success `*bytes_written`
/// (optional) receives the image size and `*manifest_out` (optional)
/// the published manifest.
Status PublishCheckpoint(const std::string& dir,
                         const CheckpointImage& image,
                         uint64_t* bytes_written = nullptr,
                         Manifest* manifest_out = nullptr);

/// Serializes + durably publishes a DELTA chained onto the manifest's
/// current newest entry, swapping the manifest to current.chain + the
/// new file. Carries `ckpt.delta` on entry and `ckpt.manifest` before
/// the swap. Reclaims unreachable files afterwards, like
/// PublishCheckpoint.
Status PublishCheckpointDelta(const std::string& dir,
                              const CheckpointDelta& delta,
                              const Manifest& current,
                              uint64_t* bytes_written = nullptr,
                              Manifest* manifest_out = nullptr);

/// Reads the manifest; NotFound when the directory was never published.
Result<Manifest> ReadManifest(const std::string& dir);

/// Removes checkpoint artifacts (ckpt-*.bin and stray *.tmp files) not
/// named by `manifest`, returning how many were reclaimed. Never
/// touches MANIFEST or WAL segments. Run after every manifest swap and
/// again on start/resume: a crash between swap and reclaim would
/// otherwise orphan superseded files forever.
Result<uint64_t> ReclaimUnreachable(const std::string& dir,
                                    const Manifest& manifest);

}  // namespace abivm::ckpt

#endif  // ABIVM_CKPT_CHECKPOINT_H_
