#include "ckpt/wal.h"

#include <algorithm>
#include <cstdio>

#include "ckpt/record_serde.h"
#include "ckpt/serde.h"
#include "fault/failpoint.h"
#include "fault/sites.h"

namespace abivm::ckpt {

namespace {

enum : uint8_t {
  kTagStepPlan = 1,
  kTagBatchCommit = 2,
  kTagStepEnd = 3,
};

void PutMod(std::string* out, const AppliedModification& m) {
  PutU64(out, m.table_index);
  PutU64(out, m.version);
  PutU8(out, static_cast<uint8_t>(m.kind));
  PutU64(out, m.deleted_id);
  PutU64(out, m.inserted_id);
  PutRow(out, m.old_row);
  PutRow(out, m.new_row);
}

Status GetMod(ByteReader* in, AppliedModification* m) {
  uint64_t table_index = 0;
  ABIVM_RETURN_NOT_OK(in->GetU64(&table_index));
  m->table_index = static_cast<size_t>(table_index);
  ABIVM_RETURN_NOT_OK(in->GetU64(&m->version));
  uint8_t kind = 0;
  ABIVM_RETURN_NOT_OK(in->GetU8(&kind));
  if (kind > static_cast<uint8_t>(ModKind::kUpdate)) {
    return Status::InvalidArgument("bad ModKind tag " +
                                   std::to_string(kind));
  }
  m->kind = static_cast<ModKind>(kind);
  ABIVM_RETURN_NOT_OK(in->GetU64(&m->deleted_id));
  ABIVM_RETURN_NOT_OK(in->GetU64(&m->inserted_id));
  ABIVM_RETURN_NOT_OK(in->GetRow(&m->old_row));
  ABIVM_RETURN_NOT_OK(in->GetRow(&m->new_row));
  return Status::Ok();
}

void SerializeRecord(const WalRecord& record, std::string* out) {
  if (const auto* plan = std::get_if<WalStepPlan>(&record)) {
    PutU8(out, kTagStepPlan);
    PutI64(out, plan->t);
    PutU8(out, plan->forced ? 1 : 0);
    PutStateVec(out, plan->arrivals);
    PutStateVec(out, plan->pre_state);
    PutStateVec(out, plan->action);
    PutString(out, plan->driver_blob);
    PutU64(out, plan->mods.size());
    for (const AppliedModification& m : plan->mods) PutMod(out, m);
  } else if (const auto* batch = std::get_if<WalBatchCommit>(&record)) {
    PutU8(out, kTagBatchCommit);
    PutI64(out, batch->t);
    PutU64(out, batch->table);
    PutU64(out, batch->k);
    PutU64(out, batch->processed);
    PutU64(out, batch->delta_rows_in);
    PutU64(out, batch->view_updates);
    PutExecStats(out, batch->stats);
  } else {
    const auto& end = std::get<WalStepEnd>(record);
    PutU8(out, kTagStepEnd);
    PutI64(out, end.t);
    PutDouble(out, end.model_cost);
    PutDouble(out, end.abandoned_model_cost);
    PutDouble(out, end.backoff_ms);
    PutExecStats(out, end.stats);
    PutExecStats(out, end.attempted_stats);
    PutU64(out, end.failures);
    PutU64(out, end.retries);
    PutU64(out, end.retry_budget_abandons);
    PutU8(out, end.degraded ? 1 : 0);
    PutU8(out, end.violation ? 1 : 0);
  }
}

Status ParseRecord(std::string_view payload, WalRecord* record) {
  ByteReader in(payload);
  uint8_t tag = 0;
  ABIVM_RETURN_NOT_OK(in.GetU8(&tag));
  switch (tag) {
    case kTagStepPlan: {
      WalStepPlan plan;
      ABIVM_RETURN_NOT_OK(in.GetI64(&plan.t));
      uint8_t forced = 0;
      ABIVM_RETURN_NOT_OK(in.GetU8(&forced));
      plan.forced = forced != 0;
      ABIVM_RETURN_NOT_OK(in.GetStateVec(&plan.arrivals));
      ABIVM_RETURN_NOT_OK(in.GetStateVec(&plan.pre_state));
      ABIVM_RETURN_NOT_OK(in.GetStateVec(&plan.action));
      ABIVM_RETURN_NOT_OK(in.GetString(&plan.driver_blob));
      uint64_t n = 0;
      ABIVM_RETURN_NOT_OK(in.GetU64(&n));
      plan.mods.resize(static_cast<size_t>(n));
      for (auto& m : plan.mods) ABIVM_RETURN_NOT_OK(GetMod(&in, &m));
      ABIVM_RETURN_NOT_OK(in.ExpectEnd());
      *record = std::move(plan);
      return Status::Ok();
    }
    case kTagBatchCommit: {
      WalBatchCommit batch;
      ABIVM_RETURN_NOT_OK(in.GetI64(&batch.t));
      ABIVM_RETURN_NOT_OK(in.GetU64(&batch.table));
      ABIVM_RETURN_NOT_OK(in.GetU64(&batch.k));
      ABIVM_RETURN_NOT_OK(in.GetU64(&batch.processed));
      ABIVM_RETURN_NOT_OK(in.GetU64(&batch.delta_rows_in));
      ABIVM_RETURN_NOT_OK(in.GetU64(&batch.view_updates));
      ABIVM_RETURN_NOT_OK(GetExecStats(&in, &batch.stats));
      ABIVM_RETURN_NOT_OK(in.ExpectEnd());
      *record = batch;
      return Status::Ok();
    }
    case kTagStepEnd: {
      WalStepEnd end;
      ABIVM_RETURN_NOT_OK(in.GetI64(&end.t));
      ABIVM_RETURN_NOT_OK(in.GetDouble(&end.model_cost));
      ABIVM_RETURN_NOT_OK(in.GetDouble(&end.abandoned_model_cost));
      ABIVM_RETURN_NOT_OK(in.GetDouble(&end.backoff_ms));
      ABIVM_RETURN_NOT_OK(GetExecStats(&in, &end.stats));
      ABIVM_RETURN_NOT_OK(GetExecStats(&in, &end.attempted_stats));
      ABIVM_RETURN_NOT_OK(in.GetU64(&end.failures));
      ABIVM_RETURN_NOT_OK(in.GetU64(&end.retries));
      ABIVM_RETURN_NOT_OK(in.GetU64(&end.retry_budget_abandons));
      uint8_t degraded = 0;
      uint8_t violation = 0;
      ABIVM_RETURN_NOT_OK(in.GetU8(&degraded));
      ABIVM_RETURN_NOT_OK(in.GetU8(&violation));
      end.degraded = degraded != 0;
      end.violation = violation != 0;
      ABIVM_RETURN_NOT_OK(in.ExpectEnd());
      *record = end;
      return Status::Ok();
    }
    default:
      return Status::InvalidArgument("bad WAL record tag " +
                                     std::to_string(tag));
  }
}

}  // namespace

Status WalWriter::Open(const std::string& path, size_t truncate_to) {
  return file_.Open(path, truncate_to);
}

Status WalWriter::Append(const WalRecord& record) {
  ABIVM_FAULT_POINT(fault::kFpLogAppend);
  frame_.clear();
  std::string payload;
  SerializeRecord(record, &payload);
  PutU32(&frame_, static_cast<uint32_t>(payload.size()));
  PutU64(&frame_, Checksum(payload));
  frame_.append(payload);
  ABIVM_RETURN_NOT_OK(file_.Append(frame_));
  ABIVM_RETURN_NOT_OK(file_.Sync());
  ++records_appended_;
  bytes_appended_ += frame_.size();
  return Status::Ok();
}

namespace {

constexpr size_t kFrameHeader = 4 + 8;

/// True when an intact frame (plausible length, matching checksum,
/// parseable payload) starts at `offset`.
bool IntactFrameAt(const std::string& bytes, size_t offset) {
  if (offset + kFrameHeader > bytes.size()) return false;
  ByteReader header(std::string_view(bytes.data() + offset, kFrameHeader));
  uint32_t len = 0;
  uint64_t checksum = 0;
  if (!header.GetU32(&len).ok()) return false;
  if (!header.GetU64(&checksum).ok()) return false;
  if (offset + kFrameHeader + len > bytes.size()) return false;
  const std::string_view payload(bytes.data() + offset + kFrameHeader,
                                 len);
  if (Checksum(payload) != checksum) return false;
  WalRecord record;
  return ParseRecord(payload, &record).ok();
}

/// Scans every byte offset past a broken frame for a later intact one.
/// A 64-bit checksum plus a full record parse makes a false positive on
/// random damage vanishingly unlikely; offsets whose length field
/// overruns the file are rejected in O(1), so the scan is near-linear.
bool IntactFrameFollows(const std::string& bytes, size_t broken_offset) {
  for (size_t probe = broken_offset + 1;
       probe + kFrameHeader <= bytes.size(); ++probe) {
    if (IntactFrameAt(bytes, probe)) return true;
  }
  return false;
}

}  // namespace

Result<WalContents> ReadWal(const std::string& path) {
  WalContents out;
  Result<std::string> data = ReadFile(path);
  if (!data.ok()) {
    if (data.status().code() == StatusCode::kNotFound) return out;
    return data.status();
  }
  const std::string& bytes = *data;
  size_t offset = 0;
  while (offset + kFrameHeader <= bytes.size()) {
    ByteReader header(
        std::string_view(bytes.data() + offset, kFrameHeader));
    uint32_t len = 0;
    uint64_t checksum = 0;
    ABIVM_RETURN_NOT_OK(header.GetU32(&len));
    ABIVM_RETURN_NOT_OK(header.GetU64(&checksum));
    const bool torn_payload = offset + kFrameHeader + len > bytes.size();
    bool bad_checksum = false;
    if (!torn_payload) {
      const std::string_view payload(bytes.data() + offset + kFrameHeader,
                                     len);
      bad_checksum = Checksum(payload) != checksum;
      if (!bad_checksum) {
        WalRecord record;
        ABIVM_RETURN_NOT_OK(ParseRecord(payload, &record));
        out.records.push_back(std::move(record));
        offset += kFrameHeader + len;
        continue;
      }
    }
    // Broken frame at `offset`: a torn tail only if NOTHING intact
    // follows. An intact frame beyond the break means committed records
    // sit past the damage -- truncating would silently lose them.
    if (IntactFrameFollows(bytes, offset)) {
      return Status::Internal(
          "WAL " + path + ": corrupt record at offset " +
          std::to_string(offset) + " with intact records after it (" +
          (torn_payload ? "torn length field" : "checksum mismatch") +
          "); refusing to truncate committed records");
    }
    break;
  }
  out.valid_bytes = offset;
  out.torn_tail = offset < bytes.size();
  return out;
}

std::string WalSegmentFileName(uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.log",
                static_cast<unsigned long long>(index));
  return buf;
}

uint64_t ParseWalSegmentIndex(const std::string& name) {
  constexpr std::string_view kPrefix = "wal-";
  constexpr std::string_view kSuffix = ".log";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return 0;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return 0;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                   kSuffix) != 0) {
    return 0;
  }
  uint64_t index = 0;
  for (size_t i = kPrefix.size(); i < name.size() - kSuffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    index = index * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return index;
}

Result<WalDirContents> ReadWalDir(const std::string& dir) {
  WalDirContents out;
  Result<std::vector<std::string>> names = ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<uint64_t> segments;
  for (const std::string& name : *names) {
    const uint64_t index = ParseWalSegmentIndex(name);
    if (index > 0) segments.push_back(index);
  }
  std::sort(segments.begin(), segments.end());
  if (segments.empty()) return out;
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1] != segments[i] + 1) {
      return Status::Internal(
          "WAL segment gap in " + dir + ": segment " +
          std::to_string(segments[i] + 1) + " missing between " +
          std::to_string(segments[i]) + " and " +
          std::to_string(segments[i + 1]));
    }
  }
  for (size_t i = 0; i < segments.size(); ++i) {
    const std::string path = dir + "/" + WalSegmentFileName(segments[i]);
    Result<WalContents> contents = ReadWal(path);
    if (!contents.ok()) return contents.status();
    const bool last = i + 1 == segments.size();
    if (!last && (*contents).torn_tail) {
      // Only the newest segment may end mid-frame: rotation closed the
      // older ones at record boundaries, so damage here is corruption.
      return Status::Internal("WAL segment " + path +
                              " is damaged but is not the newest "
                              "segment; refusing to truncate");
    }
    for (WalRecord& record : (*contents).records) {
      out.records.push_back(std::move(record));
    }
    if (last) {
      out.last_segment = segments[i];
      out.last_segment_valid_bytes = (*contents).valid_bytes;
      out.torn_tail = (*contents).torn_tail;
    }
    ++out.segments_read;
  }
  return out;
}

}  // namespace abivm::ckpt
