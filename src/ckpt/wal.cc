#include "ckpt/wal.h"

#include "ckpt/serde.h"
#include "fault/failpoint.h"
#include "fault/sites.h"

namespace abivm::ckpt {

namespace {

enum : uint8_t {
  kTagStepPlan = 1,
  kTagBatchCommit = 2,
  kTagStepEnd = 3,
};

void PutExecStats(std::string* out, const ExecStats& s) {
  PutU64(out, s.rows_scanned);
  PutU64(out, s.index_probes);
  PutU64(out, s.hash_build_rows);
  PutU64(out, s.output_rows);
  PutU64(out, s.rows_filtered);
  PutU64(out, s.rows_projected);
}

Status GetExecStats(ByteReader* in, ExecStats* s) {
  ABIVM_RETURN_NOT_OK(in->GetU64(&s->rows_scanned));
  ABIVM_RETURN_NOT_OK(in->GetU64(&s->index_probes));
  ABIVM_RETURN_NOT_OK(in->GetU64(&s->hash_build_rows));
  ABIVM_RETURN_NOT_OK(in->GetU64(&s->output_rows));
  ABIVM_RETURN_NOT_OK(in->GetU64(&s->rows_filtered));
  ABIVM_RETURN_NOT_OK(in->GetU64(&s->rows_projected));
  return Status::Ok();
}

void PutMod(std::string* out, const AppliedModification& m) {
  PutU64(out, m.table_index);
  PutU64(out, m.version);
  PutU8(out, static_cast<uint8_t>(m.kind));
  PutU64(out, m.deleted_id);
  PutU64(out, m.inserted_id);
  PutRow(out, m.old_row);
  PutRow(out, m.new_row);
}

Status GetMod(ByteReader* in, AppliedModification* m) {
  uint64_t table_index = 0;
  ABIVM_RETURN_NOT_OK(in->GetU64(&table_index));
  m->table_index = static_cast<size_t>(table_index);
  ABIVM_RETURN_NOT_OK(in->GetU64(&m->version));
  uint8_t kind = 0;
  ABIVM_RETURN_NOT_OK(in->GetU8(&kind));
  if (kind > static_cast<uint8_t>(ModKind::kUpdate)) {
    return Status::InvalidArgument("bad ModKind tag " +
                                   std::to_string(kind));
  }
  m->kind = static_cast<ModKind>(kind);
  ABIVM_RETURN_NOT_OK(in->GetU64(&m->deleted_id));
  ABIVM_RETURN_NOT_OK(in->GetU64(&m->inserted_id));
  ABIVM_RETURN_NOT_OK(in->GetRow(&m->old_row));
  ABIVM_RETURN_NOT_OK(in->GetRow(&m->new_row));
  return Status::Ok();
}

void SerializeRecord(const WalRecord& record, std::string* out) {
  if (const auto* plan = std::get_if<WalStepPlan>(&record)) {
    PutU8(out, kTagStepPlan);
    PutI64(out, plan->t);
    PutU8(out, plan->forced ? 1 : 0);
    PutStateVec(out, plan->arrivals);
    PutStateVec(out, plan->pre_state);
    PutStateVec(out, plan->action);
    PutString(out, plan->driver_blob);
    PutU64(out, plan->mods.size());
    for (const AppliedModification& m : plan->mods) PutMod(out, m);
  } else if (const auto* batch = std::get_if<WalBatchCommit>(&record)) {
    PutU8(out, kTagBatchCommit);
    PutI64(out, batch->t);
    PutU64(out, batch->table);
    PutU64(out, batch->k);
    PutU64(out, batch->processed);
    PutU64(out, batch->delta_rows_in);
    PutU64(out, batch->view_updates);
    PutExecStats(out, batch->stats);
  } else {
    const auto& end = std::get<WalStepEnd>(record);
    PutU8(out, kTagStepEnd);
    PutI64(out, end.t);
    PutDouble(out, end.model_cost);
    PutDouble(out, end.abandoned_model_cost);
    PutDouble(out, end.backoff_ms);
    PutExecStats(out, end.stats);
    PutExecStats(out, end.attempted_stats);
    PutU64(out, end.failures);
    PutU64(out, end.retries);
    PutU64(out, end.retry_budget_abandons);
    PutU8(out, end.degraded ? 1 : 0);
    PutU8(out, end.violation ? 1 : 0);
  }
}

Status ParseRecord(std::string_view payload, WalRecord* record) {
  ByteReader in(payload);
  uint8_t tag = 0;
  ABIVM_RETURN_NOT_OK(in.GetU8(&tag));
  switch (tag) {
    case kTagStepPlan: {
      WalStepPlan plan;
      ABIVM_RETURN_NOT_OK(in.GetI64(&plan.t));
      uint8_t forced = 0;
      ABIVM_RETURN_NOT_OK(in.GetU8(&forced));
      plan.forced = forced != 0;
      ABIVM_RETURN_NOT_OK(in.GetStateVec(&plan.arrivals));
      ABIVM_RETURN_NOT_OK(in.GetStateVec(&plan.pre_state));
      ABIVM_RETURN_NOT_OK(in.GetStateVec(&plan.action));
      ABIVM_RETURN_NOT_OK(in.GetString(&plan.driver_blob));
      uint64_t n = 0;
      ABIVM_RETURN_NOT_OK(in.GetU64(&n));
      plan.mods.resize(static_cast<size_t>(n));
      for (auto& m : plan.mods) ABIVM_RETURN_NOT_OK(GetMod(&in, &m));
      ABIVM_RETURN_NOT_OK(in.ExpectEnd());
      *record = std::move(plan);
      return Status::Ok();
    }
    case kTagBatchCommit: {
      WalBatchCommit batch;
      ABIVM_RETURN_NOT_OK(in.GetI64(&batch.t));
      ABIVM_RETURN_NOT_OK(in.GetU64(&batch.table));
      ABIVM_RETURN_NOT_OK(in.GetU64(&batch.k));
      ABIVM_RETURN_NOT_OK(in.GetU64(&batch.processed));
      ABIVM_RETURN_NOT_OK(in.GetU64(&batch.delta_rows_in));
      ABIVM_RETURN_NOT_OK(in.GetU64(&batch.view_updates));
      ABIVM_RETURN_NOT_OK(GetExecStats(&in, &batch.stats));
      ABIVM_RETURN_NOT_OK(in.ExpectEnd());
      *record = batch;
      return Status::Ok();
    }
    case kTagStepEnd: {
      WalStepEnd end;
      ABIVM_RETURN_NOT_OK(in.GetI64(&end.t));
      ABIVM_RETURN_NOT_OK(in.GetDouble(&end.model_cost));
      ABIVM_RETURN_NOT_OK(in.GetDouble(&end.abandoned_model_cost));
      ABIVM_RETURN_NOT_OK(in.GetDouble(&end.backoff_ms));
      ABIVM_RETURN_NOT_OK(GetExecStats(&in, &end.stats));
      ABIVM_RETURN_NOT_OK(GetExecStats(&in, &end.attempted_stats));
      ABIVM_RETURN_NOT_OK(in.GetU64(&end.failures));
      ABIVM_RETURN_NOT_OK(in.GetU64(&end.retries));
      ABIVM_RETURN_NOT_OK(in.GetU64(&end.retry_budget_abandons));
      uint8_t degraded = 0;
      uint8_t violation = 0;
      ABIVM_RETURN_NOT_OK(in.GetU8(&degraded));
      ABIVM_RETURN_NOT_OK(in.GetU8(&violation));
      end.degraded = degraded != 0;
      end.violation = violation != 0;
      ABIVM_RETURN_NOT_OK(in.ExpectEnd());
      *record = end;
      return Status::Ok();
    }
    default:
      return Status::InvalidArgument("bad WAL record tag " +
                                     std::to_string(tag));
  }
}

}  // namespace

Status WalWriter::Open(const std::string& path, size_t truncate_to) {
  return file_.Open(path, truncate_to);
}

Status WalWriter::Append(const WalRecord& record) {
  ABIVM_FAULT_POINT(fault::kFpLogAppend);
  frame_.clear();
  std::string payload;
  SerializeRecord(record, &payload);
  PutU32(&frame_, static_cast<uint32_t>(payload.size()));
  PutU64(&frame_, Checksum(payload));
  frame_.append(payload);
  ABIVM_RETURN_NOT_OK(file_.Append(frame_));
  ABIVM_RETURN_NOT_OK(file_.Sync());
  ++records_appended_;
  bytes_appended_ += frame_.size();
  return Status::Ok();
}

Result<WalContents> ReadWal(const std::string& path) {
  WalContents out;
  Result<std::string> data = ReadFile(path);
  if (!data.ok()) {
    if (data.status().code() == StatusCode::kNotFound) return out;
    return data.status();
  }
  const std::string& bytes = *data;
  size_t offset = 0;
  constexpr size_t kHeader = 4 + 8;
  while (offset + kHeader <= bytes.size()) {
    ByteReader header(
        std::string_view(bytes.data() + offset, kHeader));
    uint32_t len = 0;
    uint64_t checksum = 0;
    ABIVM_RETURN_NOT_OK(header.GetU32(&len));
    ABIVM_RETURN_NOT_OK(header.GetU64(&checksum));
    if (offset + kHeader + len > bytes.size()) break;  // torn payload
    const std::string_view payload(bytes.data() + offset + kHeader, len);
    if (Checksum(payload) != checksum) break;  // torn / corrupt record
    WalRecord record;
    ABIVM_RETURN_NOT_OK(ParseRecord(payload, &record));
    out.records.push_back(std::move(record));
    offset += kHeader + len;
  }
  out.valid_bytes = offset;
  out.torn_tail = offset < bytes.size();
  return out;
}

}  // namespace abivm::ckpt
