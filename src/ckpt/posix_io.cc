#include "ckpt/posix_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "fault/failpoint.h"
#include "fault/sites.h"

namespace abivm::ckpt {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::Internal(op + " " + path + ": " +
                          std::strerror(errno));
}

}  // namespace

Status EnsureDir(const std::string& dir) {
  std::string prefix;
  size_t start = 0;
  while (start <= dir.size()) {
    size_t slash = dir.find('/', start);
    if (slash == std::string::npos) slash = dir.size();
    prefix = dir.substr(0, slash);
    if (!prefix.empty() && prefix != "/") {
      if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
        return Errno("mkdir", prefix);
      }
    }
    start = slash + 1;
  }
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<std::string> ReadFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no file " + path);
    return Errno("open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

namespace {

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status WriteFileDurable(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  ABIVM_FAULT_POINT(fault::kFpCkptWrite);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  Status status = WriteAll(fd, data, tmp);
  if (status.ok()) {
    // Not ABIVM_FAULT_POINT: an early return here would leak the fd.
    status = fault::FailpointRegistry::ThreadLocal()
                 .Get(fault::kFpCkptFsync)
                 .Check();
    if (status.ok() && ::fsync(fd) != 0) status = Errno("fsync", tmp);
  }
  ::close(fd);
  if (status.ok()) {
    // Not ABIVM_FAULT_POINT: the tmp file must be reclaimed on a fault.
    status = fault::FailpointRegistry::ThreadLocal()
                 .Get(fault::kFpCkptRename)
                 .Check();
  }
  if (status.ok()) {
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      status = Errno("rename", tmp);
    }
  }
  if (!status.ok()) {
    // The publish failed before the rename took effect: reclaim the temp
    // file so a failed (or fault-injected) write leaves no stale
    // `path.tmp` behind.
    ::unlink(tmp.c_str());
    return status;
  }
  const size_t slash = path.find_last_of('/');
  return FsyncDir(slash == std::string::npos ? "."
                                             : path.substr(0, slash));
}

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync dir", dir);
  return Status::Ok();
}

void RemoveFileIfExists(const std::string& path) {
  ::unlink(path.c_str());
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir", dir);
  std::vector<std::string> names;
  errno = 0;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  const int saved_errno = errno;
  ::closedir(d);
  if (saved_errno != 0) {
    errno = saved_errno;
    return Errno("readdir", dir);
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<uint64_t> FileSizeBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::NotFound("no file " + path);
    return Errno("stat", path);
  }
  return static_cast<uint64_t>(st.st_size);
}

Status AppendFile::Open(const std::string& path, size_t truncate_to) {
  Close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return Errno("open", path);
  path_ = path;
  if (truncate_to != static_cast<size_t>(-1)) {
    if (::ftruncate(fd_, static_cast<off_t>(truncate_to)) != 0) {
      const Status status = Errno("ftruncate", path);
      Close();
      return status;
    }
    if (::fsync(fd_) != 0) {
      const Status status = Errno("fsync", path);
      Close();
      return status;
    }
  }
  return Status::Ok();
}

Status AppendFile::Append(std::string_view data) {
  ABIVM_CHECK(is_open());
  return WriteAll(fd_, data, path_);
}

Status AppendFile::Sync() {
  ABIVM_CHECK(is_open());
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::Ok();
}

void AppendFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace abivm::ckpt
