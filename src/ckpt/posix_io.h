// Crash-safe file primitives for the durability layer, built directly on
// POSIX fds so every durability point is explicit (and has a failpoint).
//
// WriteFileDurable is the atomic-publish protocol every on-disk artifact
// uses: write `path.tmp`, fsync it, rename onto `path`, fsync the parent
// directory. A crash at any point leaves either the old file or the new
// one -- never a torn mix -- because rename(2) is atomic on POSIX.

#ifndef ABIVM_CKPT_POSIX_IO_H_
#define ABIVM_CKPT_POSIX_IO_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace abivm::ckpt {

/// Creates `dir` (and missing parents) if absent.
Status EnsureDir(const std::string& dir);

bool FileExists(const std::string& path);

/// Reads the whole file; NotFound when absent.
Result<std::string> ReadFile(const std::string& path);

/// Atomically publishes `data` at `path` via the temp + fsync + rename +
/// dir-fsync protocol. Carries the `ckpt.write` / `ckpt.fsync` /
/// `ckpt.rename` failpoints, each BEFORE its side effect, so an injected
/// fault models a crash that lost that step and everything after it. On
/// any failure before the rename took effect the temp file is unlinked --
/// a failed publish leaves no stale `path.tmp` behind.
Status WriteFileDurable(const std::string& path, std::string_view data);

/// Entry names in `dir` (excluding "." / ".."), sorted ascending.
Result<std::vector<std::string>> ListDir(const std::string& dir);

/// Size of `path` in bytes; NotFound when absent.
Result<uint64_t> FileSizeBytes(const std::string& path);

/// fsyncs a directory (making completed renames inside it durable).
Status FsyncDir(const std::string& dir);

/// Best-effort unlink (errors ignored; used to GC superseded artifacts).
void RemoveFileIfExists(const std::string& path);

/// An append-only fd with explicit fsync, for the WAL. Append+Sync are
/// separate so the WAL can batch one fsync per logical record.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile() { Close(); }
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Opens (creating if absent) for appending. `truncate_to` < npos
  /// first truncates the file to that many bytes -- recovery cutting a
  /// torn tail before resuming.
  Status Open(const std::string& path,
              size_t truncate_to = static_cast<size_t>(-1));
  Status Append(std::string_view data);
  Status Sync();
  void Close();
  bool is_open() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace abivm::ckpt

#endif  // ABIVM_CKPT_POSIX_IO_H_
