// Batch delta log (write-ahead log) of an engine run.
//
// Three record types mirror the three commit points of a step:
//   * kStepPlan   -- the step's arrivals were applied and its action
//                    decided: arrivals / pre_state / action, the applied
//                    base-table modifications WITH their RowIds, and the
//                    driver-state blob as of after the arrivals.
//   * kBatchCommit -- one ProcessBatchChecked call committed: (table, k)
//                    plus integrity fields the recovery redo must
//                    reproduce exactly.
//   * kStepEnd    -- the step completed; its full accounting record.
//
// Framing: [u32 payload_len][u64 fnv1a(payload)][payload], one fsync per
// record. A torn TAIL (short or checksum-failing frame with nothing
// intact after it) marks the end of the valid prefix; recovery truncates
// it before resuming. An invalid frame FOLLOWED by intact frames is not
// a tail at all -- it means committed records sit beyond the damage
// (bit rot, not a crash), and silently truncating them would lose
// acknowledged work, so ReadWal fails loudly instead.
//
// Segmentation: a durable run writes rotated segments wal-<n>.log. The
// manager rotates to a fresh segment at each checkpoint publish, which
// makes every older segment's records strictly below the image's
// next_step -- once the image also carries the policy-state blob, those
// segments are dead weight and are trimmed (deleted oldest-first, so a
// kill mid-trim always leaves a contiguous segment suffix). Runs without
// a policy snapshot keep a single segment: decision replay still needs
// every kStepPlan from step 0.

#ifndef ABIVM_CKPT_WAL_H_
#define ABIVM_CKPT_WAL_H_

#include <string>
#include <variant>
#include <vector>

#include "ckpt/posix_io.h"
#include "common/status.h"
#include "core/types.h"
#include "exec/operators.h"
#include "storage/database.h"

namespace abivm::ckpt {

struct WalStepPlan {
  TimeStep t = 0;
  /// True for the horizon's forced final refresh (the action did not
  /// come from the policy, so decision replay skips it).
  bool forced = false;
  StateVec arrivals;
  StateVec pre_state;
  StateVec action;
  /// Opaque driver state AFTER this step's arrivals were applied.
  std::string driver_blob;
  /// The arrivals as physically applied (with RowIds), in apply order.
  std::vector<AppliedModification> mods;
};

struct WalBatchCommit {
  TimeStep t = 0;
  uint64_t table = 0;
  uint64_t k = 0;
  /// Integrity fields: the redo's BatchResult must match these exactly.
  uint64_t processed = 0;
  uint64_t delta_rows_in = 0;
  uint64_t view_updates = 0;
  ExecStats stats;
};

struct WalStepEnd {
  TimeStep t = 0;
  /// Raw-bit doubles: a rebuilt trace record compares bit-equal.
  double model_cost = 0.0;
  double abandoned_model_cost = 0.0;
  double backoff_ms = 0.0;
  ExecStats stats;
  ExecStats attempted_stats;
  uint64_t failures = 0;
  uint64_t retries = 0;
  uint64_t retry_budget_abandons = 0;
  bool degraded = false;
  bool violation = false;
};

using WalRecord = std::variant<WalStepPlan, WalBatchCommit, WalStepEnd>;

/// Append-only writer; one fsync per record. Every Append carries the
/// `log.append` failpoint BEFORE any byte reaches the fd.
class WalWriter {
 public:
  /// Opens (creating if absent); `truncate_to` cuts a torn tail first.
  Status Open(const std::string& path,
              size_t truncate_to = static_cast<size_t>(-1));
  Status Append(const WalRecord& record);

  uint64_t records_appended() const { return records_appended_; }
  uint64_t bytes_appended() const { return bytes_appended_; }

 private:
  AppendFile file_;
  std::string frame_;  // reused serialization buffer
  uint64_t records_appended_ = 0;
  uint64_t bytes_appended_ = 0;
};

struct WalContents {
  std::vector<WalRecord> records;
  /// Bytes of the valid prefix (what a resuming writer truncates to).
  size_t valid_bytes = 0;
  /// True when trailing bytes after the valid prefix were discarded.
  bool torn_tail = false;
};

/// Reads every intact record; a missing file yields an empty WAL. A
/// trailing partial/corrupt frame is the expected shape of a crash and
/// is reported as `torn_tail`, not failed. An invalid frame with intact
/// frames beyond it is MID-LOG CORRUPTION: committed records would be
/// silently lost by truncation, so it is a hard error.
Result<WalContents> ReadWal(const std::string& path);

/// File name of WAL segment `index` (1-based): wal-%06u.log.
std::string WalSegmentFileName(uint64_t index);

/// Parses a WAL segment file name; returns 0 when `name` is not one.
uint64_t ParseWalSegmentIndex(const std::string& name);

struct WalDirContents {
  /// Records across all segments, in append order.
  std::vector<WalRecord> records;
  /// Index of the newest (open) segment; 1 when no segment exists yet.
  uint64_t last_segment = 1;
  /// Valid prefix of the newest segment (what Resume truncates to).
  size_t last_segment_valid_bytes = 0;
  /// True when the newest segment ended in a torn tail.
  bool torn_tail = false;
  /// Number of segment files read.
  uint64_t segments_read = 0;
};

/// Reads every WAL segment in `dir` in ascending index order. Segment
/// indices must be contiguous (trim deletes oldest-first, so a gap means
/// a lost file, not a crash); a torn tail is only legal in the NEWEST
/// segment -- damage anywhere else is mid-log corruption and fails.
Result<WalDirContents> ReadWalDir(const std::string& dir);

}  // namespace abivm::ckpt

#endif  // ABIVM_CKPT_WAL_H_
