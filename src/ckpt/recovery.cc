#include "ckpt/recovery.h"

#include <optional>

#include "ckpt/posix_io.h"
#include "ckpt/serde.h"
#include "fault/failpoint.h"
#include "fault/sites.h"

namespace abivm::ckpt {

namespace {

Status Corrupt(const std::string& what) {
  return Status::Internal("WAL replay: " + what);
}

/// Re-applies one logged modification through the normal apply path and
/// verifies the physical outcome (RowIds, version) reproduces the log.
Status RedoModification(Database* db, const AppliedModification& m) {
  if (m.table_index >= db->tables().size()) {
    return Corrupt("modification targets unknown table index " +
                   std::to_string(m.table_index));
  }
  Table& table = *db->tables()[m.table_index];
  if (db->current_version() + 1 != m.version) {
    return Corrupt("modification version " + std::to_string(m.version) +
                   " does not follow clock " +
                   std::to_string(db->current_version()));
  }
  switch (m.kind) {
    case ModKind::kInsert: {
      Result<RowId> id = db->TryApplyInsert(table, m.new_row);
      if (!id.ok()) return id.status();
      if (*id != m.inserted_id) {
        return Corrupt("insert produced row " + std::to_string(*id) +
                       ", log says " + std::to_string(m.inserted_id));
      }
      return Status::Ok();
    }
    case ModKind::kDelete:
      return db->TryApplyDelete(table, m.deleted_id);
    case ModKind::kUpdate: {
      Result<RowId> id =
          db->TryApplyUpdate(table, m.deleted_id, m.new_row);
      if (!id.ok()) return id.status();
      if (*id != m.inserted_id) {
        return Corrupt("update produced row " + std::to_string(*id) +
                       ", log says " + std::to_string(m.inserted_id));
      }
      return Status::Ok();
    }
  }
  return Corrupt("bad modification kind");
}

EngineStepRecord RecordFromPlan(const WalStepPlan& plan) {
  EngineStepRecord record;
  record.t = plan.t;
  record.arrivals = plan.arrivals;
  record.pre_state = plan.pre_state;
  record.action = plan.action;
  return record;
}

void FillRecordFromEnd(const WalStepEnd& end, EngineStepRecord* record) {
  record->model_cost = end.model_cost;
  record->abandoned_model_cost = end.abandoned_model_cost;
  record->backoff_ms = end.backoff_ms;
  record->stats = end.stats;
  record->attempted_stats = end.attempted_stats;
  record->failures = end.failures;
  record->retries = end.retries;
  record->retry_budget_abandons = end.retry_budget_abandons;
  record->degraded = end.degraded;
  record->violation = end.violation;
}

}  // namespace

Result<RecoveredRun> RecoverFromDir(const std::string& dir, ViewDef def,
                                    const CostModel& model, double budget,
                                    Policy* policy,
                                    RecoveryOptions options) {
  // 1. Manifest -> checkpoint chain (each file checksum-verified): a
  // full base image folded under every chained delta, reproducing the
  // exact full image a non-incremental capture would have written at
  // the manifest's seq.
  Result<Manifest> manifest = ReadManifest(dir);
  if (!manifest.ok()) return manifest.status();
  CheckpointImage image;
  uint64_t chain_deltas = 0;
  for (size_t i = 0; i < (*manifest).chain.size(); ++i) {
    const ManifestEntry& entry = (*manifest).chain[i];
    Result<std::string> payload = ReadFile(dir + "/" + entry.file);
    if (!payload.ok()) return payload.status();
    if (Checksum(*payload) != entry.checksum) {
      return Status::Internal("checkpoint " + entry.file +
                              " fails its manifest checksum");
    }
    if (!entry.is_delta) {
      Result<CheckpointImage> parsed = ParseCheckpoint(*payload);
      if (!parsed.ok()) return parsed.status();
      image = std::move(*parsed);
    } else {
      Result<CheckpointDelta> delta = ParseCheckpointDelta(*payload);
      if (!delta.ok()) return delta.status();
      Result<CheckpointImage> folded = FoldCheckpointDelta(image, *delta);
      if (!folded.ok()) return folded.status();
      image = std::move(*folded);
      ++chain_deltas;
    }
  }
  if (image.seq != (*manifest).seq) {
    return Status::Internal("checkpoint chain ends at seq " +
                            std::to_string(image.seq) +
                            ", manifest says " +
                            std::to_string((*manifest).seq));
  }
  if (image.trace_steps.size() != static_cast<size_t>(image.next_step)) {
    return Status::Internal(
        "checkpoint trace prefix holds " +
        std::to_string(image.trace_steps.size()) + " steps, image is at " +
        std::to_string(image.next_step));
  }

  // 2. Rebuild the database and an unmaterialized maintainer, then
  // install the checkpointed watermarks and view content.
  RecoveredRun run;
  run.db = std::make_unique<Database>();
  ABIVM_RETURN_NOT_OK(InstallDatabaseImage(image, run.db.get()));
  run.maintainer = std::make_unique<ViewMaintainer>(
      ViewMaintainer::Unmaterialized{}, run.db.get(), std::move(def),
      options.binding);
  const ViewDef& bound_def = run.maintainer->binding().def();
  if (image.view_is_aggregate != bound_def.is_aggregate()) {
    return Status::Internal(
        "checkpointed view shape does not match the supplied ViewDef");
  }
  if (image.positions.size() != run.maintainer->num_tables()) {
    return Status::Internal("checkpointed watermark count " +
                            std::to_string(image.positions.size()) +
                            " does not match the view's " +
                            std::to_string(run.maintainer->num_tables()) +
                            " base tables");
  }
  ViewState state = bound_def.is_aggregate()
                        ? ViewState(bound_def.aggregate->kind)
                        : ViewState();
  for (const auto& [key, group] : image.view_groups) {
    state.RestoreGroupForRecovery(key, group);
  }
  run.maintainer->RestoreForRecovery(image.positions, image.versions,
                                     std::move(state));
  run.driver_blob = image.driver_blob;

  // 3. WAL scan. The image's trace prefix already covers every step
  // below next_step, so WAL-derived records only extend it. Policy
  // state: with a policy blob in the image, restore it and only replay
  // (and verify) decisions from next_step on -- the entitlement that
  // lets the manager trim WAL segments below the image. Without a blob
  // the whole decision sequence is replayed from step 0, which requires
  // an untrimmed WAL. Modification and batch redo always start at
  // next_step.
  Result<WalDirContents> wal = ReadWalDir(dir);
  if (!wal.ok()) return wal.status();
  bool policy_restored = false;
  if (policy != nullptr) {
    policy->Reset(model, budget);
    if (image.has_policy_blob) {
      ABIVM_RETURN_NOT_OK(policy->RestoreState(image.policy_blob));
      policy_restored = true;
    }
  }
  run.trace_prefix = image.trace_steps;
  const size_t n = run.maintainer->num_tables();
  uint64_t replayed_mods = 0;
  uint64_t replayed_batches = 0;
  std::optional<WalStepPlan> open_plan;
  std::vector<WalBatchCommit> open_batches;
  TimeStep last_completed = image.next_step - 1;
  for (const WalRecord& record : (*wal).records) {
    ABIVM_FAULT_POINT(fault::kFpRecoveryReplay);
    if (const auto* plan = std::get_if<WalStepPlan>(&record)) {
      if (open_plan.has_value()) {
        return Corrupt("step " + std::to_string(open_plan->t) +
                       " was never closed before step " +
                       std::to_string(plan->t));
      }
      const bool replay_decision =
          !plan->forced && policy != nullptr &&
          (!policy_restored || plan->t >= image.next_step);
      if (replay_decision) {
        const StateVec replayed =
            policy->Act(plan->t, plan->pre_state, plan->arrivals);
        if (replayed != plan->action) {
          return Corrupt(
              "policy replay diverged at step " + std::to_string(plan->t) +
              ": replayed " + VecToString(replayed) + ", log says " +
              VecToString(plan->action));
        }
      }
      if (plan->t >= image.next_step) {
        for (const AppliedModification& m : plan->mods) {
          ABIVM_RETURN_NOT_OK(RedoModification(run.db.get(), m));
          ++replayed_mods;
        }
        run.driver_blob = plan->driver_blob;
      }
      open_plan = *plan;
      open_batches.clear();
    } else if (const auto* batch = std::get_if<WalBatchCommit>(&record)) {
      if (!open_plan.has_value() || batch->t != open_plan->t) {
        return Corrupt("batch commit for step " +
                       std::to_string(batch->t) + " outside its step");
      }
      if (batch->table >= n) {
        return Corrupt("batch commit targets unknown table " +
                       std::to_string(batch->table));
      }
      if (batch->t >= image.next_step) {
        BatchResult result;
        const Status redo = run.maintainer->ProcessBatchChecked(
            batch->table, static_cast<size_t>(batch->k), &result);
        if (!redo.ok()) return redo;
        if (result.processed != batch->processed ||
            result.delta_rows_in != batch->delta_rows_in ||
            result.view_updates != batch->view_updates ||
            !(result.stats == batch->stats)) {
          return Corrupt("batch redo at step " + std::to_string(batch->t) +
                         " table " + std::to_string(batch->table) +
                         " did not reproduce the logged result");
        }
        ++replayed_batches;
      }
      open_batches.push_back(*batch);
    } else {
      const auto& end = std::get<WalStepEnd>(record);
      if (!open_plan.has_value() || end.t != open_plan->t) {
        return Corrupt("step end for step " + std::to_string(end.t) +
                       " outside its step");
      }
      if (end.t >= image.next_step) {
        // Steps below next_step already sit in the image's trace prefix
        // (their WAL records survive only until the next trim).
        EngineStepRecord step = RecordFromPlan(*open_plan);
        FillRecordFromEnd(end, &step);
        run.trace_prefix.push_back(std::move(step));
      }
      last_completed = end.t;
      open_plan.reset();
      open_batches.clear();
    }
  }

  // 4. Resume point.
  if (open_plan.has_value()) {
    run.resume.first_step = open_plan->t;
    run.resume.mid_step = true;
    run.resume.partial = RecordFromPlan(*open_plan);
    run.resume.batch_committed.assign(n, 0);
    for (const WalBatchCommit& batch : open_batches) {
      run.resume.batch_committed[static_cast<size_t>(batch.table)] = 1;
      // Rebuild the committed prefix's accounting the way the live step
      // accumulated it (batches commit in table order, from zero), so
      // the stitched record is bit-identical to an uninterrupted run's.
      run.resume.partial.model_cost +=
          model.Cost(static_cast<size_t>(batch.table),
                     static_cast<Count>(batch.k));
      run.resume.partial.stats += batch.stats;
    }
  } else {
    run.resume.first_step =
        last_completed >= 0 ? last_completed + 1 : image.next_step;
    run.resume.mid_step = false;
  }

  run.handle.manifest_seq = image.seq;
  run.handle.checkpoint_version = image.db_version;
  run.handle.wal_valid_bytes = (*wal).last_segment_valid_bytes;
  run.handle.wal_last_segment = (*wal).last_segment;
  run.handle.wal_first_segment =
      (*wal).segments_read > 0
          ? (*wal).last_segment - (*wal).segments_read + 1
          : (*wal).last_segment;
  run.handle.trace_prefix = run.trace_prefix;

  if (options.metrics != nullptr) {
    options.metrics->counter("recovery.replayed_records")
        .Add((*wal).records.size());
    options.metrics->counter("recovery.replayed_mods").Add(replayed_mods);
    options.metrics->counter("recovery.replayed_batches")
        .Add(replayed_batches);
    options.metrics->counter("recovery.trace_steps")
        .Add(run.trace_prefix.size());
    options.metrics->counter("recovery.chain_deltas").Add(chain_deltas);
    if ((*wal).torn_tail) {
      options.metrics->counter("recovery.torn_tails").Add(1);
    }
  }
  return run;
}

EngineTrace StitchTrace(const std::vector<EngineStepRecord>& prefix,
                        const EngineTrace& resumed) {
  EngineTrace trace;
  trace.steps.reserve(prefix.size() + resumed.steps.size());
  trace.steps.insert(trace.steps.end(), prefix.begin(), prefix.end());
  trace.steps.insert(trace.steps.end(), resumed.steps.begin(),
                     resumed.steps.end());
  for (const EngineStepRecord& record : trace.steps) {
    trace.total_model_cost += record.model_cost;
    trace.abandoned_model_cost += record.abandoned_model_cost;
    trace.total_actual_ms += record.actual_ms;
    trace.total_attempted_ms += record.attempted_ms;
    trace.failures += record.failures;
    trace.retries += record.retries;
    trace.retry_budget_abandons += record.retry_budget_abandons;
    trace.total_backoff_ms += record.backoff_ms;
    trace.exec_stats += record.stats;
    trace.attempted_exec_stats += record.attempted_stats;
    trace.attempted_batches += record.failures;
    if (record.degraded) ++trace.degraded_steps;
    if (!IsZeroVec(record.action)) ++trace.action_count;
    if (record.violation) ++trace.violations;
  }
  trace.ended_consistent = resumed.ended_consistent;
  trace.operator_profiles = resumed.operator_profiles;
  return trace;
}

bool DeterministicTraceEquals(const EngineTrace& a, const EngineTrace& b,
                              std::string* why) {
  const auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (a.steps.size() != b.steps.size()) {
    return fail("step counts differ: " + std::to_string(a.steps.size()) +
                " vs " + std::to_string(b.steps.size()));
  }
  for (size_t i = 0; i < a.steps.size(); ++i) {
    const EngineStepRecord& x = a.steps[i];
    const EngineStepRecord& y = b.steps[i];
    const std::string at = "step " + std::to_string(x.t) + ": ";
    if (x.t != y.t) return fail(at + "t differs");
    if (x.arrivals != y.arrivals) return fail(at + "arrivals differ");
    if (x.pre_state != y.pre_state) return fail(at + "pre_state differs");
    if (x.action != y.action) return fail(at + "action differs");
    if (x.model_cost != y.model_cost) {
      return fail(at + "model_cost differs");
    }
    if (x.abandoned_model_cost != y.abandoned_model_cost) {
      return fail(at + "abandoned_model_cost differs");
    }
    if (x.backoff_ms != y.backoff_ms) {
      return fail(at + "backoff_ms differs");
    }
    if (!(x.stats == y.stats)) return fail(at + "stats differ");
    if (!(x.attempted_stats == y.attempted_stats)) {
      return fail(at + "attempted_stats differ");
    }
    if (x.failures != y.failures) return fail(at + "failures differ");
    if (x.retries != y.retries) return fail(at + "retries differ");
    if (x.retry_budget_abandons != y.retry_budget_abandons) {
      return fail(at + "retry_budget_abandons differ");
    }
    if (x.degraded != y.degraded) return fail(at + "degraded differs");
    if (x.violation != y.violation) return fail(at + "violation differs");
  }
  if (a.total_model_cost != b.total_model_cost) {
    return fail("total_model_cost differs");
  }
  if (a.abandoned_model_cost != b.abandoned_model_cost) {
    return fail("abandoned_model_cost differs");
  }
  if (a.total_backoff_ms != b.total_backoff_ms) {
    return fail("total_backoff_ms differs");
  }
  if (a.violations != b.violations) return fail("violations differ");
  if (a.action_count != b.action_count) {
    return fail("action_count differs");
  }
  if (a.failures != b.failures) return fail("failures differ");
  if (a.retries != b.retries) return fail("retries differ");
  if (a.degraded_steps != b.degraded_steps) {
    return fail("degraded_steps differ");
  }
  if (a.retry_budget_abandons != b.retry_budget_abandons) {
    return fail("retry_budget_abandons differ");
  }
  if (!(a.exec_stats == b.exec_stats)) return fail("exec_stats differ");
  if (!(a.attempted_exec_stats == b.attempted_exec_stats)) {
    return fail("attempted_exec_stats differ");
  }
  if (a.attempted_batches != b.attempted_batches) {
    return fail("attempted_batches differ");
  }
  if (a.ended_consistent != b.ended_consistent) {
    return fail("ended_consistent differs");
  }
  return true;
}

}  // namespace abivm::ckpt
