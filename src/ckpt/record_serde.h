// Shared serde for the engine-accounting records both durability
// artifacts carry: ExecStats (WAL batch/step records) and completed
// EngineStepRecords (checkpoint images store the finished-trace prefix
// so the WAL below an image can be trimmed without losing the stitched
// trace).
//
// Wall-clock fields (actual_ms / attempted_ms) are deliberately NOT
// serialized: they are excluded from every determinism promise, and
// keeping them out makes two images of identical runs byte-equal -- the
// property the delta-chain equivalence oracle checks.

#ifndef ABIVM_CKPT_RECORD_SERDE_H_
#define ABIVM_CKPT_RECORD_SERDE_H_

#include "ckpt/serde.h"
#include "exec/operators.h"
#include "sim/engine_runner.h"

namespace abivm::ckpt {

inline void PutExecStats(std::string* out, const ExecStats& s) {
  PutU64(out, s.rows_scanned);
  PutU64(out, s.index_probes);
  PutU64(out, s.hash_build_rows);
  PutU64(out, s.output_rows);
  PutU64(out, s.rows_filtered);
  PutU64(out, s.rows_projected);
}

inline Status GetExecStats(ByteReader* in, ExecStats* s) {
  ABIVM_RETURN_NOT_OK(in->GetU64(&s->rows_scanned));
  ABIVM_RETURN_NOT_OK(in->GetU64(&s->index_probes));
  ABIVM_RETURN_NOT_OK(in->GetU64(&s->hash_build_rows));
  ABIVM_RETURN_NOT_OK(in->GetU64(&s->output_rows));
  ABIVM_RETURN_NOT_OK(in->GetU64(&s->rows_filtered));
  ABIVM_RETURN_NOT_OK(in->GetU64(&s->rows_projected));
  return Status::Ok();
}

inline void PutTraceStep(std::string* out, const EngineStepRecord& r) {
  PutI64(out, r.t);
  PutStateVec(out, r.arrivals);
  PutStateVec(out, r.pre_state);
  PutStateVec(out, r.action);
  PutDouble(out, r.model_cost);
  PutDouble(out, r.abandoned_model_cost);
  PutDouble(out, r.backoff_ms);
  PutExecStats(out, r.stats);
  PutExecStats(out, r.attempted_stats);
  PutU64(out, r.failures);
  PutU64(out, r.retries);
  PutU64(out, r.retry_budget_abandons);
  PutU8(out, r.degraded ? 1 : 0);
  PutU8(out, r.violation ? 1 : 0);
}

inline Status GetTraceStep(ByteReader* in, EngineStepRecord* r) {
  ABIVM_RETURN_NOT_OK(in->GetI64(&r->t));
  ABIVM_RETURN_NOT_OK(in->GetStateVec(&r->arrivals));
  ABIVM_RETURN_NOT_OK(in->GetStateVec(&r->pre_state));
  ABIVM_RETURN_NOT_OK(in->GetStateVec(&r->action));
  ABIVM_RETURN_NOT_OK(in->GetDouble(&r->model_cost));
  ABIVM_RETURN_NOT_OK(in->GetDouble(&r->abandoned_model_cost));
  ABIVM_RETURN_NOT_OK(in->GetDouble(&r->backoff_ms));
  ABIVM_RETURN_NOT_OK(GetExecStats(in, &r->stats));
  ABIVM_RETURN_NOT_OK(GetExecStats(in, &r->attempted_stats));
  ABIVM_RETURN_NOT_OK(in->GetU64(&r->failures));
  ABIVM_RETURN_NOT_OK(in->GetU64(&r->retries));
  ABIVM_RETURN_NOT_OK(in->GetU64(&r->retry_budget_abandons));
  uint8_t degraded = 0;
  uint8_t violation = 0;
  ABIVM_RETURN_NOT_OK(in->GetU8(&degraded));
  ABIVM_RETURN_NOT_OK(in->GetU8(&violation));
  r->degraded = degraded != 0;
  r->violation = violation != 0;
  return Status::Ok();
}

}  // namespace abivm::ckpt

#endif  // ABIVM_CKPT_RECORD_SERDE_H_
