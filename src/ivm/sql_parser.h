// A small SQL front end for view definitions, covering exactly the shape
// this library maintains (and the shape the paper's evaluation view is
// written in):
//
//   SELECT MIN(ps_supplycost)
//   FROM partsupp, supplier, nation, region
//   WHERE s_suppkey = ps_suppkey AND s_nationkey = n_nationkey
//     AND n_regionkey = r_regionkey AND r_name = 'MIDDLE EAST'
//
// Supported grammar (case-insensitive keywords):
//   query      := SELECT items FROM tables [WHERE conds] [GROUP BY cols]
//   items      := item (',' item)*
//   item       := AGG '(' colref ')' | COUNT '(' '*' ')' | colref
//   AGG        := COUNT | SUM | MIN | MAX | AVG
//   tables     := ident (',' ident)*
//   conds      := cond (AND cond)*
//   cond       := colref op (colref | literal)
//   op         := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
//   colref     := [table '.'] column
//   literal    := integer | float | 'single-quoted string'
//
// Unqualified columns resolve against the FROM tables' schemas (ambiguity
// is an error). Column-to-column equality becomes a join condition;
// column-vs-literal becomes a predicate. At most one aggregate item is
// allowed (the engine's view shape); with an aggregate, the remaining
// plain items become the GROUP BY key (an explicit GROUP BY must match).

#ifndef ABIVM_IVM_SQL_PARSER_H_
#define ABIVM_IVM_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "ivm/view_def.h"
#include "storage/database.h"

namespace abivm {

/// Parses `sql` into a ViewDef named `view_name`, resolving table and
/// column names against `db`. Returns InvalidArgument with a position-
/// annotated message on syntax or resolution errors.
Result<ViewDef> ParseViewSql(const Database& db,
                             const std::string& view_name,
                             const std::string& sql);

}  // namespace abivm

#endif  // ABIVM_IVM_SQL_PARSER_H_
