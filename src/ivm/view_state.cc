#include "ivm/view_state.h"

#include <cmath>
#include <sstream>

namespace abivm {

namespace {

double NumericValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
      return static_cast<double>(v.AsInt64());
    case ValueType::kDouble:
      return v.AsDouble();
    case ValueType::kString:
      ABIVM_CHECK_MSG(false, "cannot SUM a string column");
  }
  return 0.0;
}

}  // namespace

void ViewState::Apply(const Row& key, const Value& value, int64_t mult) {
  ABIVM_CHECK_NE(mult, 0);
  if (dirty_tracking_) dirty_keys_.insert(key);
  GroupState& group = groups_[key];
  group.count += mult;
  ABIVM_CHECK_MSG(allow_negative_ || group.count >= 0,
                  "negative multiplicity for key " << RowToString(key)
                                                   << " -- delta stream "
                                                      "inconsistent");
  if (aggregate_.has_value()) {
    switch (*aggregate_) {
      case AggKind::kCount:
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        group.sum += static_cast<double>(mult) * NumericValue(value);
        break;
      case AggKind::kMin:
      case AggKind::kMax: {
        int64_t& count = group.values[value];
        count += mult;
        ABIVM_CHECK_MSG(allow_negative_ || count >= 0,
                        "negative multiplicity for value "
                            << value.ToString());
        if (count == 0) group.values.erase(value);
        break;
      }
    }
  }
  if (group.count == 0 && group.values.empty()) groups_.erase(key);
}

int64_t ViewState::RowMultiplicity(const Row& row) const {
  auto it = groups_.find(row);
  return it == groups_.end() ? 0 : it->second.count;
}

int64_t ViewState::GroupContributors(const Row& key) const {
  auto it = groups_.find(key);
  return it == groups_.end() ? 0 : it->second.count;
}

std::optional<double> ViewState::GroupSum(const Row& key) const {
  auto it = groups_.find(key);
  if (it == groups_.end()) return std::nullopt;
  return it->second.sum;
}

std::optional<double> ViewState::GroupAvg(const Row& key) const {
  auto it = groups_.find(key);
  if (it == groups_.end() || it->second.count == 0) return std::nullopt;
  return it->second.sum / static_cast<double>(it->second.count);
}

std::optional<Value> ViewState::GroupMin(const Row& key) const {
  auto it = groups_.find(key);
  if (it == groups_.end() || it->second.values.empty()) return std::nullopt;
  return it->second.values.begin()->first;
}

std::optional<Value> ViewState::GroupMax(const Row& key) const {
  auto it = groups_.find(key);
  if (it == groups_.end() || it->second.values.empty()) return std::nullopt;
  return it->second.values.rbegin()->first;
}

void ViewState::RestoreGroupForRecovery(Row key, GroupState group) {
  ABIVM_CHECK(groups_.find(key) == groups_.end());
  // Apply() never leaves a fully-empty group behind; a checkpoint image
  // must not either.
  ABIVM_CHECK(group.count != 0 || !group.values.empty());
  for (const auto& [value, count] : group.values) {
    ABIVM_CHECK_NE(count, 0);
  }
  groups_.emplace(std::move(key), std::move(group));
}

void ViewState::BeginDirtyTracking() {
  dirty_tracking_ = true;
  dirty_keys_.clear();
}

std::map<Row, GroupState> ViewState::Snapshot() const {
  return std::map<Row, GroupState>(groups_.begin(), groups_.end());
}

bool ViewState::SameContents(const ViewState& other) const {
  if (groups_.size() != other.groups_.size()) return false;
  for (const auto& [key, group] : groups_) {
    auto it = other.groups_.find(key);
    if (it == other.groups_.end()) return false;
    const GroupState& theirs = it->second;
    if (group.count != theirs.count) return false;
    if (std::abs(group.sum - theirs.sum) > 1e-6) return false;
    if (group.values != theirs.values) return false;
  }
  return true;
}

std::string ViewState::ToString() const {
  std::ostringstream oss;
  oss << (is_aggregate() ? "agg-view" : "spj-view") << "{"
      << groups_.size() << " keys}";
  return oss.str();
}

}  // namespace abivm
