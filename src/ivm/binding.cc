#include "ivm/binding.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "exec/stats.h"

namespace abivm {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kAvg:
      return "AVG";
  }
  return "?";
}

namespace {

// Intermediate pipeline representation in "full combined row" coordinates
// (every joined table contributes all its columns), before projection
// pushdown assigns physical positions.
struct FullStep {
  Table* table = nullptr;
  size_t table_index = 0;
  size_t offset = 0;      // start of this table's columns in full coords
  size_t width = 0;       // number of columns
  size_t left_full = 0;   // join key, full coords (earlier table)
  size_t right_column = 0;
  std::vector<BoundPredicate> predicates;  // full coords
  std::vector<std::pair<size_t, size_t>> residual;  // full coords
};

}  // namespace

ViewBinding::ViewBinding(Database* db, ViewDef def, BindingOptions options)
    : db_(db), def_(std::move(def)), options_(options) {
  ABIVM_CHECK(db_ != nullptr);
  ABIVM_CHECK_MSG(!def_.tables.empty(), "view needs at least one table");
  for (size_t i = 0; i < def_.tables.size(); ++i) {
    for (size_t j = i + 1; j < def_.tables.size(); ++j) {
      ABIVM_CHECK_MSG(def_.tables[i] != def_.tables[j],
                      "duplicate table " << def_.tables[i]
                                         << " (self-joins unsupported)");
    }
  }
  tables_.reserve(def_.tables.size());
  for (const std::string& name : def_.tables) {
    tables_.push_back(&db_->table(name));
  }
  if (def_.is_aggregate()) {
    ABIVM_CHECK_MSG(def_.output_columns.empty(),
                    "aggregate views use group_by, not output_columns");
  } else {
    ABIVM_CHECK_MSG(!def_.output_columns.empty(),
                    "SPJ views need output columns");
    ABIVM_CHECK_MSG(def_.group_by.empty(),
                    "group_by requires an aggregate");
  }

  delta_pipelines_.reserve(def_.tables.size());
  for (size_t i = 0; i < def_.tables.size(); ++i) {
    delta_pipelines_.push_back(BuildPipeline(i));
  }
  recompute_pipeline_ = BuildPipeline(0);
}

Table& ViewBinding::base_table(size_t i) const {
  ABIVM_CHECK_LT(i, tables_.size());
  return *tables_[i];
}

size_t ViewBinding::TableIndex(const std::string& name) const {
  for (size_t i = 0; i < def_.tables.size(); ++i) {
    if (def_.tables[i] == name) return i;
  }
  ABIVM_CHECK_MSG(false, "table " << name << " is not part of view "
                                  << def_.name);
  return 0;
}

const BoundPipeline& ViewBinding::delta_pipeline(size_t i) const {
  ABIVM_CHECK_LT(i, delta_pipelines_.size());
  return delta_pipelines_[i];
}

BoundPipeline ViewBinding::BuildPipeline(size_t leading_index) const {
  // ---------------------------------------------------------------------
  // Pass 1: choose the join order and resolve everything in full
  // combined-row coordinates.
  constexpr size_t kNotJoined = static_cast<size_t>(-1);
  std::vector<size_t> offset(def_.tables.size(), kNotJoined);
  offset[leading_index] = 0;
  const size_t leading_width =
      tables_[leading_index]->schema().num_columns();
  size_t width = leading_width;

  auto resolve = [&](const ColumnRef& ref) -> size_t {
    const size_t t = TableIndex(ref.table);
    ABIVM_CHECK_MSG(offset[t] != kNotJoined,
                    "column " << ref.table << "." << ref.column
                              << " referenced before its table joins");
    return offset[t] + tables_[t]->schema().ColumnIndex(ref.column);
  };

  auto predicates_for = [&](size_t table_index) {
    std::vector<BoundPredicate> out;
    for (const PredicateDef& p : def_.predicates) {
      if (TableIndex(p.column.table) != table_index) continue;
      out.push_back(BoundPredicate{resolve(p.column), p.op, p.constant});
    }
    return out;
  };

  std::vector<BoundPredicate> leading_predicates =
      predicates_for(leading_index);

  // Join-order heuristic: among the tables connected to the joined set,
  // attach the one with the smallest estimated post-filter cardinality
  // first (dimension tables with selective predicates shrink the delta
  // stream before it reaches the big tables). Cardinalities come from
  // column statistics and System-R selectivity estimates. Ties break by
  // definition order.
  auto candidate_rank = [&](size_t t) {
    double rows = static_cast<double>(tables_[t]->live_row_count());
    for (const PredicateDef& p : def_.predicates) {
      if (TableIndex(p.column.table) != t) continue;
      const size_t col =
          tables_[t]->schema().ColumnIndex(p.column.column);
      const ColumnStats stats = ComputeColumnStats(
          *tables_[t], col, db_->current_version());
      rows *= EstimateSelectivity(stats, p.op, p.constant);
    }
    return rows;
  };

  std::vector<FullStep> full_steps;
  std::vector<bool> used_join(def_.joins.size(), false);
  size_t joined = 1;
  while (joined < def_.tables.size()) {
    bool progress = false;
    // Collect joinable candidates and order them by rank.
    std::vector<size_t> order;
    for (size_t t = 0; t < def_.tables.size(); ++t) {
      if (offset[t] == kNotJoined) order.push_back(t);
    }
    if (options_.reorder_joins) {
      std::stable_sort(order.begin(), order.end(),
                       [&](size_t a, size_t b) {
                         return candidate_rank(a) < candidate_rank(b);
                       });
    }
    for (size_t oi = 0; oi < order.size() && !progress; ++oi) {
      const size_t t = order[oi];
      for (size_t j = 0; j < def_.joins.size(); ++j) {
        if (used_join[j]) continue;
        const JoinConditionDef& cond = def_.joins[j];
        const size_t lt = TableIndex(cond.left.table);
        const size_t rt = TableIndex(cond.right.table);
        const ColumnRef* set_side = nullptr;
        const ColumnRef* new_side = nullptr;
        if (lt == t && offset[rt] != kNotJoined) {
          set_side = &cond.right;
          new_side = &cond.left;
        } else if (rt == t && offset[lt] != kNotJoined) {
          set_side = &cond.left;
          new_side = &cond.right;
        } else {
          continue;
        }
        used_join[j] = true;
        FullStep step;
        step.table = tables_[t];
        step.table_index = t;
        step.left_full = resolve(*set_side);
        step.right_column =
            tables_[t]->schema().ColumnIndex(new_side->column);
        step.offset = width;
        step.width = tables_[t]->schema().num_columns();
        offset[t] = width;
        width += step.width;
        step.predicates = predicates_for(t);
        // Any further unused conditions whose both sides are now joined
        // become residual equalities of this step.
        for (size_t j2 = 0; j2 < def_.joins.size(); ++j2) {
          if (used_join[j2]) continue;
          const JoinConditionDef& extra = def_.joins[j2];
          if (offset[TableIndex(extra.left.table)] == kNotJoined ||
              offset[TableIndex(extra.right.table)] == kNotJoined) {
            continue;
          }
          used_join[j2] = true;
          step.residual.emplace_back(resolve(extra.left),
                                     resolve(extra.right));
        }
        full_steps.push_back(std::move(step));
        ++joined;
        progress = true;
        break;
      }
    }
    ABIVM_CHECK_MSG(progress, "join graph of view " << def_.name
                                                    << " is not connected");
  }

  const std::vector<ColumnRef>& key_refs =
      def_.is_aggregate() ? def_.group_by : def_.output_columns;
  std::vector<size_t> keys_full;
  for (const ColumnRef& ref : key_refs) keys_full.push_back(resolve(ref));
  size_t agg_full = 0;
  const bool has_agg =
      def_.is_aggregate() && def_.aggregate->kind != AggKind::kCount;
  if (has_agg) agg_full = resolve(def_.aggregate->column);

  // ---------------------------------------------------------------------
  // Pass 2 (backward): which full-coordinate columns must survive after
  // each step (projection pushdown).
  std::set<size_t> needed(keys_full.begin(), keys_full.end());
  if (has_agg) needed.insert(agg_full);
  std::vector<std::set<size_t>> needed_after(full_steps.size());
  if (options_.projection_pushdown) {
    for (size_t j = full_steps.size(); j-- > 0;) {
      needed_after[j] = needed;
      const FullStep& step = full_steps[j];
      needed.insert(step.left_full);
      for (const auto& [a, b] : step.residual) {
        needed.insert(a);
        needed.insert(b);
      }
      for (const BoundPredicate& p : step.predicates) {
        needed.insert(p.column);
      }
      // Columns provided by this step's table do not exist before it.
      needed.erase(needed.lower_bound(step.offset),
                   needed.lower_bound(step.offset + step.width));
    }
    // `needed` now holds the leading-table columns the pipeline consumes.
    for (size_t c : needed) ABIVM_CHECK_LT(c, leading_width);
  } else {
    // Ablation mode: everything available is "needed", so every join
    // materializes full rows.
    needed.clear();
    for (size_t c = 0; c < leading_width; ++c) needed.insert(c);
    size_t available = leading_width;
    for (size_t j = 0; j < full_steps.size(); ++j) {
      available += full_steps[j].width;
      for (size_t c = 0; c < available; ++c) needed_after[j].insert(c);
    }
  }

  // ---------------------------------------------------------------------
  // Pass 3 (forward): emit physical coordinates.
  BoundPipeline pipeline;
  pipeline.leading = tables_[leading_index];
  pipeline.leading_index = leading_index;
  pipeline.leading_predicates = std::move(leading_predicates);

  std::vector<size_t> layout(needed.begin(), needed.end());
  if (layout.empty()) {
    // Degenerate but legal (e.g. COUNT(*) over a single filtered table):
    // keep one column so rows remain non-empty.
    layout.push_back(0);
  }
  pipeline.initial_projection = layout;

  auto physical = [](const std::vector<size_t>& lay, size_t full) {
    auto it = std::find(lay.begin(), lay.end(), full);
    ABIVM_CHECK_MSG(it != lay.end(),
                    "internal: column " << full << " projected away");
    return static_cast<size_t>(it - lay.begin());
  };

  for (size_t j = 0; j < full_steps.size(); ++j) {
    const FullStep& full = full_steps[j];
    BoundJoinStep step;
    step.table = full.table;
    step.table_index = full.table_index;
    step.right_column = full.right_column;
    step.left_column = physical(layout, full.left_full);

    // Which of this table's columns must be appended: everything the
    // future needs plus this step's own predicates/residuals.
    std::set<size_t> required_here;
    for (size_t c : needed_after[j]) required_here.insert(c);
    for (const BoundPredicate& p : full.predicates) {
      required_here.insert(p.column);
    }
    for (const auto& [a, b] : full.residual) {
      required_here.insert(a);
      required_here.insert(b);
    }
    for (size_t c : required_here) {
      if (c >= full.offset && c < full.offset + full.width) {
        step.right_keep.push_back(c - full.offset);
      }
    }

    // Extended layout after the join.
    std::vector<size_t> extended = layout;
    for (size_t rk : step.right_keep) extended.push_back(full.offset + rk);

    for (const BoundPredicate& p : full.predicates) {
      step.predicates.push_back(
          BoundPredicate{physical(extended, p.column), p.op, p.constant});
    }
    for (const auto& [a, b] : full.residual) {
      step.residual_equalities.emplace_back(physical(extended, a),
                                            physical(extended, b));
    }

    // Post-step projection down to needed_after[j].
    std::vector<size_t> keep_positions;
    std::vector<size_t> new_layout;
    for (size_t pos = 0; pos < extended.size(); ++pos) {
      if (needed_after[j].count(extended[pos]) > 0) {
        keep_positions.push_back(pos);
        new_layout.push_back(extended[pos]);
      }
    }
    if (new_layout.empty()) {
      keep_positions.push_back(0);
      new_layout.push_back(extended[0]);
    }
    if (keep_positions.size() != extended.size()) {
      step.post_projection = keep_positions;
    }
    layout = std::move(new_layout);
    pipeline.steps.push_back(std::move(step));
  }

  for (size_t full : keys_full) {
    pipeline.key_columns.push_back(physical(layout, full));
  }
  if (has_agg) {
    pipeline.aggregate_column = physical(layout, agg_full);
    pipeline.has_aggregate_column = true;
  }
  return pipeline;
}

}  // namespace abivm
