// ViewGroup: several materialized views over one shared database -- the
// paper's publish/subscribe setting, where every subscription's content
// query is a view. Each view keeps independent per-table watermarks into
// the shared delta logs (so different subscriptions can run different
// batching policies, cf. Colby et al.'s multiple-policy work the paper
// cites); the group coordinates the one thing that must be shared:
// garbage collection, which may only reclaim history no view still needs.

#ifndef ABIVM_IVM_VIEW_GROUP_H_
#define ABIVM_IVM_VIEW_GROUP_H_

#include <memory>
#include <string>
#include <vector>

#include "ivm/maintainer.h"

namespace abivm {

class ViewGroup {
 public:
  explicit ViewGroup(Database* db);

  ViewGroup(const ViewGroup&) = delete;
  ViewGroup& operator=(const ViewGroup&) = delete;

  /// Creates and registers a maintainer for `def`. The new view starts
  /// consistent with the database's current state.
  ViewMaintainer& AddView(ViewDef def, BindingOptions options = {});

  size_t size() const { return views_.size(); }
  ViewMaintainer& view(size_t i);

  /// Maintainer of the view with the given ViewDef::name, or nullptr.
  ViewMaintainer* FindView(const std::string& name);

  /// Brings every view fully up to date (CHECK-fails on injected faults).
  void RefreshAll();

  /// Status-returning refresh: stops at the first failed batch. Views
  /// (and batches within a view) already refreshed stay refreshed; the
  /// failed view is untouched by its failed batch, so a retry resumes.
  Status RefreshAllChecked();

  bool AllConsistent() const;

  /// Garbage-collects shared history: each table is vacuumed to the
  /// MINIMUM watermark version across the views that read it, and its
  /// delta log trimmed to the minimum consumed position. Tables no view
  /// reads are vacuumed fully. Returns row versions reclaimed.
  size_t VacuumConsumed();

 private:
  Database* db_;
  std::vector<std::unique_ptr<ViewMaintainer>> views_;
};

}  // namespace abivm

#endif  // ABIVM_IVM_VIEW_GROUP_H_
