// EXPLAIN facilities: human-readable rendering of maintenance pipelines
// (which join strategy each delta stream uses and why) and of maintenance
// plans (when the scheduler acts, on what, at what cost).

// EXPLAIN ANALYZE additionally *runs* a pipeline (as a dry run) and
// renders the measured per-operator work next to the statistics-derived
// estimates, so mis-estimates and the dominant operator are visible.

#ifndef ABIVM_IVM_EXPLAIN_H_
#define ABIVM_IVM_EXPLAIN_H_

#include <string>

#include "core/cost_model.h"
#include "core/plan.h"
#include "ivm/binding.h"
#include "ivm/maintainer.h"

namespace abivm {

/// Renders the delta-propagation pipeline of base table `table_index`,
/// e.g.:
///   delta(partsupp) [keep: ps_suppkey, ps_supplycost]
///     -> INDEX JOIN supplier ON supplier.s_suppkey [keep: s_nationkey]
///     -> INDEX JOIN nation ON nation.n_nationkey [keep: n_regionkey]
///     -> INDEX JOIN region ON region.r_regionkey [filter r_name = ...]
///     => MIN(ps_supplycost)
/// The strategy shown (INDEX JOIN vs HASH+SCAN) reflects the indexes
/// present at call time.
std::string ExplainPipeline(const ViewBinding& binding, size_t table_index);

/// All delta pipelines of the view plus the recompute pipeline.
std::string ExplainView(const ViewBinding& binding);

/// Outcome of ExplainAnalyzePipeline.
struct ExplainAnalyzeResult {
  /// The dry-run batch outcome; `batch.profile` holds the per-operator
  /// breakdown and `batch.stats` the whole-run totals (the rendered
  /// per-stage rows sum to them exactly).
  BatchResult batch;
  /// f_i(k) from the cost model, when one was supplied (else 0).
  double estimated_model_cost = 0.0;
  /// The rendered report.
  std::string text;
};

/// EXPLAIN ANALYZE for the delta pipeline of base table `table_index`:
/// dry-runs the next k pending modifications with per-operator profiling
/// (watermarks and view state are untouched; the maintainer's profiling
/// flag is restored afterwards) and renders, per stage, the estimated
/// work (from column statistics at the current watermark snapshots:
/// System-R selectivities, |T|/distinct join fanout, probes ~ input rows
/// for index joins, scan ~ |T| for hash+scan) next to the MEASURED rows,
/// probes, and wall time. When `model` is non-null the report also shows
/// the calibrated f_i(k) next to the measured total wall time.
/// Requires k >= 1 and k <= PendingCount(table_index).
ExplainAnalyzeResult ExplainAnalyzePipeline(ViewMaintainer& maintainer,
                                            size_t table_index, size_t k,
                                            const CostModel* model = nullptr);

/// Renders a maintenance plan against its instance: one line per action
/// with the pre-action state, the amounts processed, the action cost and
/// the running total. CHECK-fails if the plan does not fit the instance.
std::string ExplainPlan(const ProblemInstance& instance,
                        const MaintenancePlan& plan);

}  // namespace abivm

#endif  // ABIVM_IVM_EXPLAIN_H_
