// EXPLAIN facilities: human-readable rendering of maintenance pipelines
// (which join strategy each delta stream uses and why) and of maintenance
// plans (when the scheduler acts, on what, at what cost).

#ifndef ABIVM_IVM_EXPLAIN_H_
#define ABIVM_IVM_EXPLAIN_H_

#include <string>

#include "core/plan.h"
#include "ivm/binding.h"

namespace abivm {

/// Renders the delta-propagation pipeline of base table `table_index`,
/// e.g.:
///   delta(partsupp) [keep: ps_suppkey, ps_supplycost]
///     -> INDEX JOIN supplier ON supplier.s_suppkey [keep: s_nationkey]
///     -> INDEX JOIN nation ON nation.n_nationkey [keep: n_regionkey]
///     -> INDEX JOIN region ON region.r_regionkey [filter r_name = ...]
///     => MIN(ps_supplycost)
/// The strategy shown (INDEX JOIN vs HASH+SCAN) reflects the indexes
/// present at call time.
std::string ExplainPipeline(const ViewBinding& binding, size_t table_index);

/// All delta pipelines of the view plus the recompute pipeline.
std::string ExplainView(const ViewBinding& binding);

/// Renders a maintenance plan against its instance: one line per action
/// with the pre-action state, the amounts processed, the action cost and
/// the running total. CHECK-fails if the plan does not fit the instance.
std::string ExplainPlan(const ProblemInstance& instance,
                        const MaintenancePlan& plan);

}  // namespace abivm

#endif  // ABIVM_IVM_EXPLAIN_H_
