// CostCalibrator: measures the real engine's batch-maintenance cost as a
// function of batch size (the paper's Figures 1 and 4) and fits the cost
// models the scheduler consumes (Section 2: "the cost functions can be
// provided by a database optimizer, or measured by experiments").

#ifndef ABIVM_IVM_CALIBRATOR_H_
#define ABIVM_IVM_CALIBRATOR_H_

#include <cstdint>
#include <vector>

#include "common/fit.h"
#include "cost/cost_function.h"
#include "ivm/maintainer.h"

namespace abivm {

/// One measured point of the cost curve.
struct CostSample {
  uint64_t batch_size = 0;
  double median_ms = 0.0;
  /// Operator work counters from one representative run.
  ExecStats stats;
  /// Per-operator breakdown of the representative run; its slices sum to
  /// `stats`.
  PipelineProfile profile;
};

/// The operator a calibrated cost curve is dominated by.
struct OperatorCostShare {
  /// Display label, e.g. "HASH+SCAN partsupp".
  std::string op;
  /// Stable stage key, e.g. "s1.join_partsupp".
  std::string slug;
  double wall_ms = 0.0;
  /// Fraction of the profiled pipeline wall time, in [0, 1].
  double share = 0.0;
};

struct CalibrationResult {
  std::vector<CostSample> samples;
  /// OLS fit of median_ms against batch_size.
  LinearFit fit;

  /// The stage with the largest wall-time share in the LARGEST sample
  /// (the asymptotic regime the fitted slope describes) -- i.e. which
  /// operator this table's f_i is really paying for. CHECK-fails on an
  /// empty calibration.
  OperatorCostShare DominantOperator() const;

  /// LinearCost from the fit, with slope/intercept clamped to tiny
  /// positive values so the result is a valid cost function even when the
  /// measured curve is nearly flat.
  CostFunctionPtr AsLinearCost() const;

  /// PiecewiseLinearCost interpolating the (monotonized) samples.
  CostFunctionPtr AsTableDrivenCost() const;
};

struct CalibratorOptions {
  /// Wall-clock repetitions per batch size; the median is kept.
  int repetitions = 5;
};

/// Measures dry-run ProcessBatch(table_index, k) for every k in
/// `batch_sizes` (ascending). Requires PendingCount(table_index) >= max k:
/// drive enough modifications into the database first. The maintainer's
/// watermarks are left untouched.
CalibrationResult CalibrateTableCost(ViewMaintainer& maintainer,
                                     size_t table_index,
                                     const std::vector<uint64_t>& batch_sizes,
                                     CalibratorOptions options = {});

}  // namespace abivm

#endif  // ABIVM_IVM_CALIBRATOR_H_
