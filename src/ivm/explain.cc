#include "ivm/explain.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "exec/stats.h"

namespace abivm {

namespace {

// Names the physical columns of the intermediate row as it evolves, so
// the rendering can print real column names instead of offsets.
std::vector<std::string> InitialColumns(const BoundPipeline& pipeline) {
  std::vector<std::string> names;
  for (size_t c : pipeline.initial_projection) {
    names.push_back(pipeline.leading->schema().column(c).name);
  }
  return names;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

}  // namespace

std::string ExplainPipeline(const ViewBinding& binding,
                            size_t table_index) {
  const BoundPipeline& pipeline = binding.delta_pipeline(table_index);
  const ViewDef& def = binding.def();
  std::ostringstream oss;

  oss << "delta(" << pipeline.leading->name() << ")";
  for (const BoundPredicate& p : pipeline.leading_predicates) {
    oss << " [filter " << pipeline.leading->schema().column(p.column).name
        << " " << CompareOpName(p.op) << " " << p.constant.ToString()
        << "]";
  }
  std::vector<std::string> columns = InitialColumns(pipeline);
  oss << " [keep: " << JoinNames(columns) << "]\n";

  for (const BoundJoinStep& step : pipeline.steps) {
    const bool indexed = step.table->HasIndexOn(step.right_column);
    oss << "  -> " << (indexed ? "INDEX JOIN " : "HASH+SCAN ")
        << step.table->name() << " ON " << columns[step.left_column]
        << " = " << step.table->schema().column(step.right_column).name;
    std::vector<std::string> kept;
    for (size_t c : step.right_keep) {
      kept.push_back(step.table->schema().column(c).name);
    }
    if (!kept.empty()) oss << " [keep: " << JoinNames(kept) << "]";
    // Extend the running column names, then filter/project like the
    // executor does.
    for (const std::string& name : kept) columns.push_back(name);
    for (const BoundPredicate& p : step.predicates) {
      oss << " [filter " << columns[p.column] << " " << CompareOpName(p.op)
          << " " << p.constant.ToString() << "]";
    }
    for (const auto& [a, b] : step.residual_equalities) {
      oss << " [and " << columns[a] << " = " << columns[b] << "]";
    }
    if (!step.post_projection.empty()) {
      std::vector<std::string> projected;
      for (size_t pos : step.post_projection) {
        projected.push_back(columns[pos]);
      }
      columns = std::move(projected);
    }
    oss << "\n";
  }

  oss << "  => ";
  if (def.is_aggregate()) {
    oss << AggKindName(def.aggregate->kind) << "(";
    if (pipeline.has_aggregate_column) {
      oss << columns[pipeline.aggregate_column];
    } else {
      oss << "*";
    }
    oss << ")";
    if (!pipeline.key_columns.empty()) {
      std::vector<std::string> keys;
      for (size_t c : pipeline.key_columns) keys.push_back(columns[c]);
      oss << " GROUP BY " << JoinNames(keys);
    }
  } else {
    std::vector<std::string> keys;
    for (size_t c : pipeline.key_columns) keys.push_back(columns[c]);
    oss << "PROJECT " << JoinNames(keys);
  }
  oss << "\n";
  return oss.str();
}

std::string ExplainView(const ViewBinding& binding) {
  std::ostringstream oss;
  oss << "view " << binding.def().name << " over "
      << binding.num_tables() << " tables\n";
  for (size_t i = 0; i < binding.num_tables(); ++i) {
    oss << "pipeline for delta(" << binding.def().tables[i] << "):\n"
        << ExplainPipeline(binding, i);
  }
  return oss.str();
}

namespace {

// Where an intermediate-row column physically lives, so predicate
// selectivities can be estimated from that column's base-table stats at
// the snapshot the pipeline actually reads (the table's watermark).
struct ColumnProvenance {
  const Table* table = nullptr;
  size_t column = 0;
  size_t table_index = 0;  // position in ViewDef::tables
};

double PredicateSelectivity(const ViewMaintainer& maintainer,
                            const ColumnProvenance& prov, CompareOp op,
                            const Value& constant) {
  const ColumnStats stats = ComputeColumnStats(
      *prov.table, prov.column,
      maintainer.watermark_version(prov.table_index));
  return EstimateSelectivity(stats, op, constant);
}

size_t DistinctAtWatermark(const ViewMaintainer& maintainer,
                           const ColumnProvenance& prov) {
  return ComputeColumnStats(*prov.table, prov.column,
                            maintainer.watermark_version(prov.table_index))
      .distinct_count;
}

std::string FormatEstimate(double value) {
  std::ostringstream oss;
  oss << "~" << std::fixed << std::setprecision(1) << value;
  return oss.str();
}

std::string FormatMeasured(const StageStats& stage) {
  std::ostringstream oss;
  oss << "in=" << stage.rows_in << " out=" << stage.rows_out
      << " scan=" << stage.stats.rows_scanned
      << " probe=" << stage.stats.index_probes
      << " build=" << stage.stats.hash_build_rows
      << " filt=" << stage.stats.rows_filtered
      << " proj=" << stage.stats.rows_projected << " wall=" << std::fixed
      << std::setprecision(3) << stage.wall_ms << "ms";
  return oss.str();
}

}  // namespace

ExplainAnalyzeResult ExplainAnalyzePipeline(ViewMaintainer& maintainer,
                                            size_t table_index, size_t k,
                                            const CostModel* model) {
  const ViewBinding& binding = maintainer.binding();
  ABIVM_CHECK_LT(table_index, binding.num_tables());
  ABIVM_CHECK_GE(k, size_t{1});
  ABIVM_CHECK_LE(k, maintainer.PendingCount(table_index));
  const BoundPipeline& pipeline = binding.delta_pipeline(table_index);

  ExplainAnalyzeResult out;
  // Dry-run with profiling on; restore the caller's profiling choice.
  const bool saved_profiling = maintainer.profiling_requested();
  maintainer.EnableProfiling(true);
  out.batch = maintainer.ProcessBatch(table_index, k, /*dry_run=*/true);
  maintainer.EnableProfiling(saved_profiling);
  if (model != nullptr) {
    out.estimated_model_cost = model->Cost(table_index,
                                           static_cast<Count>(k));
  }
  const std::vector<StageStats>& stages = out.batch.profile.stages;
  ABIVM_CHECK_EQ(stages.size(), pipeline.steps.size() + 1);

  // Statistics-side estimates, stage by stage, mirroring the executor's
  // column layout so predicate selectivities resolve to base columns.
  std::vector<ColumnProvenance> prov;
  for (size_t c : pipeline.initial_projection) {
    prov.push_back({pipeline.leading, c, pipeline.leading_index});
  }
  // A modification is at worst an update = one retract + one insert row.
  double est_rows = 2.0 * static_cast<double>(k);
  std::vector<std::string> estimates;
  {
    std::ostringstream oss;
    oss << "rows" << FormatEstimate(est_rows);
    for (const BoundPredicate& p : pipeline.leading_predicates) {
      est_rows *= PredicateSelectivity(
          maintainer, {pipeline.leading, p.column, pipeline.leading_index},
          p.op, p.constant);
    }
    oss << " out" << FormatEstimate(est_rows);
    estimates.push_back(oss.str());
  }
  for (const BoundJoinStep& step : pipeline.steps) {
    const ColumnStats right = ComputeColumnStats(
        *step.table, step.right_column,
        maintainer.watermark_version(step.table_index));
    const bool indexed = step.table->HasIndexOn(step.right_column);
    std::ostringstream oss;
    if (indexed) {
      oss << "probes" << FormatEstimate(est_rows);
    } else {
      oss << "scan" << FormatEstimate(static_cast<double>(right.row_count))
          << " build" << FormatEstimate(est_rows);
    }
    const double fanout =
        right.distinct_count > 0
            ? static_cast<double>(right.row_count) /
                  static_cast<double>(right.distinct_count)
            : 0.0;
    est_rows *= fanout;
    for (size_t c : step.right_keep) {
      prov.push_back({step.table, c, step.table_index});
    }
    for (const BoundPredicate& p : step.predicates) {
      est_rows *= PredicateSelectivity(maintainer, prov[p.column], p.op,
                                       p.constant);
    }
    for (const auto& [a, b] : step.residual_equalities) {
      // Column-equality selectivity: 1/max(d_a, d_b), System-R style.
      const size_t d = std::max(DistinctAtWatermark(maintainer, prov[a]),
                                DistinctAtWatermark(maintainer, prov[b]));
      est_rows *= d > 0 ? 1.0 / static_cast<double>(d) : 1.0;
    }
    if (!step.post_projection.empty()) {
      std::vector<ColumnProvenance> projected;
      for (size_t pos : step.post_projection) projected.push_back(prov[pos]);
      prov = std::move(projected);
    }
    std::ostringstream full;
    full << oss.str() << " out" << FormatEstimate(est_rows);
    estimates.push_back(full.str());
  }

  // Render: one row per stage, estimated next to measured; a TOTAL row
  // whose measured counters are the whole-run ExecStats (the per-stage
  // slices sum to it exactly).
  size_t op_width = 0;
  size_t slug_width = 0;
  size_t est_width = 0;
  for (size_t s = 0; s < stages.size(); ++s) {
    op_width = std::max(op_width, stages[s].op.size());
    slug_width = std::max(slug_width, stages[s].slug.size());
    est_width = std::max(est_width, estimates[s].size());
  }
  std::ostringstream oss;
  oss << "EXPLAIN ANALYZE " << out.batch.profile.pipeline << ", k=" << k
      << " (dry run)\n";
  for (size_t s = 0; s < stages.size(); ++s) {
    oss << "  " << std::left << std::setw(static_cast<int>(slug_width))
        << stages[s].slug << "  "
        << std::setw(static_cast<int>(op_width)) << stages[s].op << "  est: "
        << std::setw(static_cast<int>(est_width)) << estimates[s]
        << "  meas: " << FormatMeasured(stages[s]) << "\n";
  }
  const ExecStats& total = out.batch.stats;
  oss << "  TOTAL scan=" << total.rows_scanned
      << " probe=" << total.index_probes
      << " build=" << total.hash_build_rows
      << " filt=" << total.rows_filtered
      << " proj=" << total.rows_projected << " out=" << total.output_rows
      << " wall=" << std::fixed << std::setprecision(3)
      << out.batch.wall_ms << "ms\n";
  if (model != nullptr) {
    oss.unsetf(std::ios::fixed);
    oss << "  model: f_" << binding.def().tables[table_index] << "(" << k
        << ") = " << std::fixed << std::setprecision(3)
        << out.estimated_model_cost << " (estimated cost units), measured "
        << out.batch.wall_ms << "ms\n";
  }
  out.text = oss.str();
  return out;
}

std::string ExplainPlan(const ProblemInstance& instance,
                        const MaintenancePlan& plan) {
  const PlanTrajectory traj = ComputeTrajectory(instance.arrivals, plan);
  std::ostringstream oss;
  oss << "plan over [0, " << plan.horizon() << "], C = " << instance.budget
      << ", " << plan.actions().size() << " actions\n";
  double running = 0.0;
  for (const auto& [t, amounts] : plan.actions()) {
    const double cost = instance.cost_model.TotalCost(amounts);
    running += cost;
    oss << "  t=" << std::setw(6) << t << "  pre="
        << VecToString(traj.pre[static_cast<size_t>(t)]) << "  process="
        << VecToString(amounts) << "  cost=" << std::fixed
        << std::setprecision(3) << cost << "  cumulative=" << running
        << "\n";
    oss.unsetf(std::ios::fixed);
  }
  oss << "  total cost: " << running << "\n";
  return oss.str();
}

}  // namespace abivm
