#include "ivm/explain.h"

#include <iomanip>
#include <sstream>

namespace abivm {

namespace {

// Names the physical columns of the intermediate row as it evolves, so
// the rendering can print real column names instead of offsets.
std::vector<std::string> InitialColumns(const BoundPipeline& pipeline) {
  std::vector<std::string> names;
  for (size_t c : pipeline.initial_projection) {
    names.push_back(pipeline.leading->schema().column(c).name);
  }
  return names;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

}  // namespace

std::string ExplainPipeline(const ViewBinding& binding,
                            size_t table_index) {
  const BoundPipeline& pipeline = binding.delta_pipeline(table_index);
  const ViewDef& def = binding.def();
  std::ostringstream oss;

  oss << "delta(" << pipeline.leading->name() << ")";
  for (const BoundPredicate& p : pipeline.leading_predicates) {
    oss << " [filter " << pipeline.leading->schema().column(p.column).name
        << " " << CompareOpName(p.op) << " " << p.constant.ToString()
        << "]";
  }
  std::vector<std::string> columns = InitialColumns(pipeline);
  oss << " [keep: " << JoinNames(columns) << "]\n";

  for (const BoundJoinStep& step : pipeline.steps) {
    const bool indexed = step.table->HasIndexOn(step.right_column);
    oss << "  -> " << (indexed ? "INDEX JOIN " : "HASH+SCAN ")
        << step.table->name() << " ON " << columns[step.left_column]
        << " = " << step.table->schema().column(step.right_column).name;
    std::vector<std::string> kept;
    for (size_t c : step.right_keep) {
      kept.push_back(step.table->schema().column(c).name);
    }
    if (!kept.empty()) oss << " [keep: " << JoinNames(kept) << "]";
    // Extend the running column names, then filter/project like the
    // executor does.
    for (const std::string& name : kept) columns.push_back(name);
    for (const BoundPredicate& p : step.predicates) {
      oss << " [filter " << columns[p.column] << " " << CompareOpName(p.op)
          << " " << p.constant.ToString() << "]";
    }
    for (const auto& [a, b] : step.residual_equalities) {
      oss << " [and " << columns[a] << " = " << columns[b] << "]";
    }
    if (!step.post_projection.empty()) {
      std::vector<std::string> projected;
      for (size_t pos : step.post_projection) {
        projected.push_back(columns[pos]);
      }
      columns = std::move(projected);
    }
    oss << "\n";
  }

  oss << "  => ";
  if (def.is_aggregate()) {
    oss << AggKindName(def.aggregate->kind) << "(";
    if (pipeline.has_aggregate_column) {
      oss << columns[pipeline.aggregate_column];
    } else {
      oss << "*";
    }
    oss << ")";
    if (!pipeline.key_columns.empty()) {
      std::vector<std::string> keys;
      for (size_t c : pipeline.key_columns) keys.push_back(columns[c]);
      oss << " GROUP BY " << JoinNames(keys);
    }
  } else {
    std::vector<std::string> keys;
    for (size_t c : pipeline.key_columns) keys.push_back(columns[c]);
    oss << "PROJECT " << JoinNames(keys);
  }
  oss << "\n";
  return oss.str();
}

std::string ExplainView(const ViewBinding& binding) {
  std::ostringstream oss;
  oss << "view " << binding.def().name << " over "
      << binding.num_tables() << " tables\n";
  for (size_t i = 0; i < binding.num_tables(); ++i) {
    oss << "pipeline for delta(" << binding.def().tables[i] << "):\n"
        << ExplainPipeline(binding, i);
  }
  return oss.str();
}

std::string ExplainPlan(const ProblemInstance& instance,
                        const MaintenancePlan& plan) {
  const PlanTrajectory traj = ComputeTrajectory(instance.arrivals, plan);
  std::ostringstream oss;
  oss << "plan over [0, " << plan.horizon() << "], C = " << instance.budget
      << ", " << plan.actions().size() << " actions\n";
  double running = 0.0;
  for (const auto& [t, amounts] : plan.actions()) {
    const double cost = instance.cost_model.TotalCost(amounts);
    running += cost;
    oss << "  t=" << std::setw(6) << t << "  pre="
        << VecToString(traj.pre[static_cast<size_t>(t)]) << "  process="
        << VecToString(amounts) << "  cost=" << std::fixed
        << std::setprecision(3) << cost << "  cumulative=" << running
        << "\n";
    oss.unsetf(std::ios::fixed);
  }
  oss << "  total cost: " << running << "\n";
  return oss.str();
}

}  // namespace abivm
