#include "ivm/maintainer.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "fault/failpoint.h"
#include "fault/sites.h"

namespace abivm {

namespace {

DeltaBatch ApplyBoundPredicates(DeltaBatch batch,
                                const std::vector<BoundPredicate>& preds,
                                ExecStats* stats) {
  for (const BoundPredicate& p : preds) {
    batch = FilterBatch(batch, p.column, p.op, p.constant, stats);
  }
  return batch;
}

// Stage addressing shared by the profiled pipeline loop and the timer
// interning in SetMetrics: stage 0 is the leading filter/project block,
// stage j + 1 is join step j.
std::string StageSlug(const BoundPipeline& pipeline, size_t stage) {
  if (stage == 0) return "s0.prepare";
  return "s" + std::to_string(stage) + ".join_" +
         pipeline.steps[stage - 1].table->name();
}

std::string StageOpLabel(const BoundPipeline& pipeline, size_t stage) {
  if (stage == 0) {
    return "delta(" + pipeline.leading->name() + ") filter/project";
  }
  const BoundJoinStep& step = pipeline.steps[stage - 1];
  const bool indexed = step.table->HasIndexOn(step.right_column);
  return std::string(indexed ? "INDEX JOIN " : "HASH+SCAN ") +
         step.table->name();
}

}  // namespace

ViewMaintainer::ViewMaintainer(Database* db, ViewDef def,
                               BindingOptions options)
    : db_(db),
      binding_(db, std::move(def), options),
      state_(binding_.def().is_aggregate()
                 ? ViewState(binding_.def().aggregate->kind)
                 : ViewState()) {
  positions_.resize(binding_.num_tables());
  versions_.resize(binding_.num_tables());
  for (size_t i = 0; i < binding_.num_tables(); ++i) {
    positions_[i] = binding_.base_table(i).delta_log().size();
    versions_[i] = db_->current_version();
  }
  state_ = RecomputeAtWatermarks();
}

size_t ViewMaintainer::PendingCount(size_t i) const {
  ABIVM_CHECK_LT(i, positions_.size());
  return binding_.base_table(i).delta_log().size() - positions_[i];
}

StateVec ViewMaintainer::PendingVec() const {
  StateVec out(num_tables());
  for (size_t i = 0; i < num_tables(); ++i) out[i] = PendingCount(i);
  return out;
}

Version ViewMaintainer::watermark_version(size_t i) const {
  ABIVM_CHECK_LT(i, versions_.size());
  return versions_[i];
}

size_t ViewMaintainer::watermark_position(size_t i) const {
  ABIVM_CHECK_LT(i, positions_.size());
  return positions_[i];
}

void ViewMaintainer::SetMetrics(obs::MetricRegistry* registry) {
  metrics_ = registry;
  stage_timers_.clear();
  if (registry == nullptr) return;
  stage_timers_.resize(num_tables());
  for (size_t i = 0; i < num_tables(); ++i) {
    const BoundPipeline& pipeline = binding_.delta_pipeline(i);
    const std::string base = "ivm.op." + binding_.def().tables[i] + ".";
    for (size_t s = 0; s <= pipeline.steps.size(); ++s) {
      stage_timers_[i].push_back(
          &registry->timer(base + StageSlug(pipeline, s)));
    }
  }
}

size_t ViewMaintainer::VacuumConsumed() {
  size_t reclaimed = 0;
  for (size_t i = 0; i < num_tables(); ++i) {
    Table& table = binding_.base_table(i);
    reclaimed += table.VacuumBefore(versions_[i]);
    table.delta_log().TrimBefore(positions_[i]);
  }
  return reclaimed;
}

BatchResult ViewMaintainer::ProcessBatch(size_t i, size_t k, bool dry_run) {
  BatchResult result;
  const Status status = ProcessBatchChecked(i, k, &result, dry_run);
  ABIVM_CHECK_MSG(status.ok(), status.ToString());
  return result;
}

Status ViewMaintainer::ProcessBatchChecked(size_t i, size_t k,
                                           BatchResult* result,
                                           bool dry_run) {
  ABIVM_CHECK(result != nullptr);
  *result = BatchResult{};
  if (i >= num_tables()) {
    return Status::InvalidArgument("no base table " + std::to_string(i));
  }
  if (k > PendingCount(i)) {
    return Status::OutOfRange("batch of " + std::to_string(k) +
                              " exceeds the " +
                              std::to_string(PendingCount(i)) +
                              " pending modifications of table " +
                              std::to_string(i));
  }
  result->processed = k;
  if (k == 0) return Status::Ok();

  Stopwatch watch;
  // Stamp the elapsed time on EVERY exit from here on (failpoint macros
  // return early), so failed attempts report the wall clock they burned
  // before the fault -- the engine runner charges it as attempted work.
  struct WallStamp {
    const Stopwatch& watch;
    BatchResult* result;
    ~WallStamp() { result->wall_ms = watch.ElapsedMs(); }
  } stamp{watch, result};

  const DeltaLog& log = binding_.base_table(i).delta_log();
  ABIVM_RETURN_NOT_OK(log.CheckRead(positions_[i], k));

  // Turn the next k modifications into signed delta rows.
  DeltaBatch batch;
  batch.reserve(k * 2);
  Version last_version = versions_[i];
  for (size_t m = 0; m < k; ++m) {
    const Modification& mod = log.At(positions_[i] + m);
    switch (mod.kind) {
      case ModKind::kInsert:
        batch.push_back(DeltaRow{mod.new_row, 1});
        break;
      case ModKind::kDelete:
        batch.push_back(DeltaRow{mod.old_row, -1});
        break;
      case ModKind::kUpdate:
        batch.push_back(DeltaRow{mod.old_row, -1});
        batch.push_back(DeltaRow{mod.new_row, 1});
        break;
    }
    last_version = mod.version;
  }
  result->delta_rows_in = batch.size();

  // Stage: run the delta pipeline and net-aggregate its output without
  // touching any member state. Every fallible site (delta-log read, exec
  // operators, the two ivm.* failpoints below) is crossed before the
  // commit point, so a failure anywhere leaves state_, positions_, and
  // versions_ exactly as they were.
  const bool profiled = profiling_enabled();
  Result<DeltaBatch> piped =
      RunPipeline(binding_.delta_pipeline(i), std::move(batch),
                  &result->stats, profiled ? &result->profile : nullptr);
  if (profiled) {
    result->profile.pipeline = "delta(" + binding_.def().tables[i] + ")";
    if (metrics_ != nullptr) {
      const std::vector<obs::Timer*>& timers = stage_timers_[i];
      const size_t stages =
          std::min(result->profile.stages.size(), timers.size());
      for (size_t s = 0; s < stages; ++s) {
        const StageStats& stage = result->profile.stages[s];
        // Skip stages the run never reached (empty-batch padding).
        if (stage.rows_in == 0 && stage.wall_ms == 0.0) continue;
        timers[s]->Record(stage.wall_ms);
      }
    }
  }
  if (!piped.ok()) return piped.status();
  const NetDelta net = ExtractNet(binding_.delta_pipeline(i), *piped);
  ABIVM_FAULT_POINT(fault::kFpIvmApplyState);
  if (!dry_run) ABIVM_FAULT_POINT(fault::kFpIvmCommit);

  // Commit: pure in-memory application plus the watermark advance; no
  // failpoint sites from here on, so the commit is atomic under injected
  // faults. Dry runs apply the staged deltas to an empty scratch state
  // (same asymptotic application work as the real run, no O(view)
  // clone), with negative multiplicities permitted since the base
  // content is absent.
  ViewState scratch = binding_.def().is_aggregate()
                          ? ViewState(binding_.def().aggregate->kind)
                          : ViewState();
  scratch.AllowNegativeMultiplicities();
  ViewState* target = dry_run ? &scratch : &state_;
  result->view_updates = ApplyNet(net, target);
  if (!dry_run) {
    positions_[i] += k;
    versions_[i] = last_version;
  }
  return Status::Ok();
}

void ViewMaintainer::RefreshAll() {
  const Status status = RefreshAllChecked();
  ABIVM_CHECK_MSG(status.ok(), status.ToString());
}

Status ViewMaintainer::RefreshAllChecked() {
  for (size_t i = 0; i < num_tables(); ++i) {
    const size_t pending = PendingCount(i);
    if (pending == 0) continue;
    BatchResult result;
    ABIVM_RETURN_NOT_OK(ProcessBatchChecked(i, pending, &result));
  }
  return Status::Ok();
}

bool ViewMaintainer::IsConsistent() const {
  for (size_t i = 0; i < num_tables(); ++i) {
    if (PendingCount(i) != 0) return false;
  }
  return true;
}

ViewState ViewMaintainer::RecomputeAtWatermarks() const {
  Result<ViewState> fresh = RecomputeAtWatermarksChecked();
  ABIVM_CHECK_MSG(fresh.ok(), fresh.status().ToString());
  return std::move(*fresh);
}

Result<ViewState> ViewMaintainer::RecomputeAtWatermarksChecked(
    PipelineProfile* profile) const {
  const BoundPipeline& pipeline = binding_.recompute_pipeline();
  ExecStats stats;
  ExecStats* scan_stats = &stats;
  if (profile != nullptr) {
    profile->pipeline = "recompute";
    profile->stages.clear();
    profile->stages.push_back(StageStats{});
    StageStats& scan = profile->stages.back();
    scan.op = "SCAN " + pipeline.leading->name();
    scan.slug = "scan." + pipeline.leading->name();
    scan_stats = &scan.stats;
  }
  const Stopwatch scan_watch;
  Result<DeltaBatch> batch =
      ScanToBatch(binding_.base_table(pipeline.leading_index),
                  versions_[pipeline.leading_index], scan_stats);
  if (profile != nullptr) {
    StageStats& scan = profile->stages.back();
    scan.wall_ms = scan_watch.ElapsedMs();
    scan.rows_out = batch.ok() ? (*batch).size() : 0;
    stats += scan.stats;
  }
  if (!batch.ok()) return batch.status();
  // The pipeline loop resets/refills the stage list, so run it on a local
  // profile and splice the scan stage back in front.
  PipelineProfile pipeline_profile;
  Result<DeltaBatch> piped =
      RunPipeline(pipeline, std::move(*batch), &stats,
                  profile != nullptr ? &pipeline_profile : nullptr);
  if (profile != nullptr) {
    for (StageStats& stage : pipeline_profile.stages) {
      profile->stages.push_back(std::move(stage));
    }
  }
  if (!piped.ok()) return piped.status();
  ViewState fresh = binding_.def().is_aggregate()
                        ? ViewState(binding_.def().aggregate->kind)
                        : ViewState();
  ApplyNet(ExtractNet(pipeline, *piped), &fresh);
  return fresh;
}

Result<DeltaBatch> ViewMaintainer::RunPipeline(const BoundPipeline& pipeline,
                                               DeltaBatch batch,
                                               ExecStats* stats,
                                               PipelineProfile* profile) const {
  if (profile != nullptr) {
    return RunPipelineProfiled(pipeline, std::move(batch), stats, profile);
  }
  // Unobserved fast path: no per-stage clock reads or allocations; every
  // operator accumulates straight into the whole-run counters. The
  // profiled variant below must charge the same counters (the equality is
  // test-enforced).
  batch = ApplyBoundPredicates(std::move(batch),
                               pipeline.leading_predicates, stats);
  batch = ProjectBatch(batch, pipeline.initial_projection, stats);
  for (const BoundJoinStep& step : pipeline.steps) {
    if (batch.empty()) break;
    Result<DeltaBatch> joined =
        JoinBatchWithTable(batch, step.left_column, *step.table,
                           step.right_column, step.right_keep,
                           versions_[step.table_index], stats);
    if (!joined.ok()) return joined.status();
    batch = std::move(*joined);
    for (const auto& [a, b] : step.residual_equalities) {
      if (stats != nullptr) stats->rows_filtered += batch.size();
      DeltaBatch kept;
      kept.reserve(batch.size());
      for (DeltaRow& row : batch) {
        if (row.row[a] == row.row[b]) kept.push_back(std::move(row));
      }
      batch = std::move(kept);
    }
    batch = ApplyBoundPredicates(std::move(batch), step.predicates, stats);
    if (!step.post_projection.empty()) {
      batch = ProjectBatch(batch, step.post_projection, stats);
    }
  }
  return batch;
}

Result<DeltaBatch> ViewMaintainer::RunPipelineProfiled(
    const BoundPipeline& pipeline, DeltaBatch batch, ExecStats* stats,
    PipelineProfile* profile) const {
  // Each stage accumulates into its own StageStats slice; the slices are
  // summed into `*stats` at every exit, so the per-operator breakdown and
  // the whole-run totals cannot disagree.
  profile->stages.clear();
  profile->stages.reserve(pipeline.steps.size() + 1);
  const auto flush = [&] {
    if (stats == nullptr) return;
    for (const StageStats& stage : profile->stages) *stats += stage.stats;
  };
  auto begin_stage = [&](size_t index, size_t rows_in) -> StageStats& {
    profile->stages.push_back(StageStats{});
    StageStats& stage = profile->stages.back();
    stage.op = StageOpLabel(pipeline, index);
    stage.slug = StageSlug(pipeline, index);
    stage.rows_in = rows_in;
    return stage;
  };

  {
    StageStats& stage = begin_stage(0, batch.size());
    const Stopwatch stage_watch;
    batch = ApplyBoundPredicates(std::move(batch),
                                 pipeline.leading_predicates, &stage.stats);
    batch = ProjectBatch(batch, pipeline.initial_projection, &stage.stats);
    stage.wall_ms = stage_watch.ElapsedMs();
    stage.rows_out = batch.size();
  }
  for (size_t j = 0; j < pipeline.steps.size(); ++j) {
    const BoundJoinStep& step = pipeline.steps[j];
    StageStats& stage = begin_stage(j + 1, batch.size());
    // An empty batch skips the remaining joins; the padded zero-work
    // stages keep the profile's shape stable for merging and display.
    if (batch.empty()) continue;
    const Stopwatch stage_watch;
    Result<DeltaBatch> joined =
        JoinBatchWithTable(batch, step.left_column, *step.table,
                           step.right_column, step.right_keep,
                           versions_[step.table_index], &stage.stats);
    if (!joined.ok()) {
      stage.wall_ms = stage_watch.ElapsedMs();
      flush();
      return joined.status();
    }
    batch = std::move(*joined);
    for (const auto& [a, b] : step.residual_equalities) {
      stage.stats.rows_filtered += batch.size();
      DeltaBatch kept;
      kept.reserve(batch.size());
      for (DeltaRow& row : batch) {
        if (row.row[a] == row.row[b]) kept.push_back(std::move(row));
      }
      batch = std::move(kept);
    }
    batch = ApplyBoundPredicates(std::move(batch), step.predicates,
                                 &stage.stats);
    if (!step.post_projection.empty()) {
      batch = ProjectBatch(batch, step.post_projection, &stage.stats);
    }
    stage.wall_ms = stage_watch.ElapsedMs();
    stage.rows_out = batch.size();
  }
  flush();
  return batch;
}

ViewMaintainer::NetDelta ViewMaintainer::ExtractNet(
    const BoundPipeline& pipeline, const DeltaBatch& batch) const {
  static const Value kNoValue(int64_t{0});
  // Net-aggregate the signed deltas per (group key, aggregate value)
  // before touching the state: join operators emit output in scan order,
  // so a batch can contain a removal textually before its matching
  // insertion; netting first keeps application order-independent and lets
  // ViewState enforce non-negative multiplicities strictly.
  NetDelta net;
  net.reserve(batch.size());
  for (const DeltaRow& delta : batch) {
    Row extracted;
    extracted.reserve(pipeline.key_columns.size() + 1);
    for (size_t c : pipeline.key_columns) extracted.push_back(delta.row[c]);
    extracted.push_back(pipeline.has_aggregate_column
                            ? delta.row[pipeline.aggregate_column]
                            : kNoValue);
    net[std::move(extracted)] += delta.mult;
  }
  return net;
}

size_t ViewMaintainer::ApplyNet(const NetDelta& net,
                                ViewState* target) const {
  size_t updates = 0;
  for (const auto& [extracted, mult] : net) {
    if (mult == 0) continue;
    Row key(extracted.begin(), extracted.end() - 1);
    target->Apply(key, extracted.back(), mult);
    ++updates;
  }
  return updates;
}

}  // namespace abivm
