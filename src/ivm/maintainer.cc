#include "ivm/maintainer.h"

#include "common/stopwatch.h"

namespace abivm {

namespace {

DeltaBatch ApplyBoundPredicates(DeltaBatch batch,
                                const std::vector<BoundPredicate>& preds) {
  for (const BoundPredicate& p : preds) {
    batch = FilterBatch(batch, p.column, p.op, p.constant);
  }
  return batch;
}

}  // namespace

ViewMaintainer::ViewMaintainer(Database* db, ViewDef def,
                               BindingOptions options)
    : db_(db),
      binding_(db, std::move(def), options),
      state_(binding_.def().is_aggregate()
                 ? ViewState(binding_.def().aggregate->kind)
                 : ViewState()) {
  positions_.resize(binding_.num_tables());
  versions_.resize(binding_.num_tables());
  for (size_t i = 0; i < binding_.num_tables(); ++i) {
    positions_[i] = binding_.base_table(i).delta_log().size();
    versions_[i] = db_->current_version();
  }
  state_ = RecomputeAtWatermarks();
}

size_t ViewMaintainer::PendingCount(size_t i) const {
  ABIVM_CHECK_LT(i, positions_.size());
  return binding_.base_table(i).delta_log().size() - positions_[i];
}

StateVec ViewMaintainer::PendingVec() const {
  StateVec out(num_tables());
  for (size_t i = 0; i < num_tables(); ++i) out[i] = PendingCount(i);
  return out;
}

Version ViewMaintainer::watermark_version(size_t i) const {
  ABIVM_CHECK_LT(i, versions_.size());
  return versions_[i];
}

size_t ViewMaintainer::watermark_position(size_t i) const {
  ABIVM_CHECK_LT(i, positions_.size());
  return positions_[i];
}

size_t ViewMaintainer::VacuumConsumed() {
  size_t reclaimed = 0;
  for (size_t i = 0; i < num_tables(); ++i) {
    Table& table = binding_.base_table(i);
    reclaimed += table.VacuumBefore(versions_[i]);
    table.delta_log().TrimBefore(positions_[i]);
  }
  return reclaimed;
}

BatchResult ViewMaintainer::ProcessBatch(size_t i, size_t k, bool dry_run) {
  ABIVM_CHECK_LT(i, num_tables());
  ABIVM_CHECK_LE(k, PendingCount(i));
  BatchResult result;
  result.processed = k;
  if (k == 0) return result;

  Stopwatch watch;
  const DeltaLog& log = binding_.base_table(i).delta_log();

  // Turn the next k modifications into signed delta rows.
  DeltaBatch batch;
  batch.reserve(k * 2);
  Version last_version = versions_[i];
  for (size_t m = 0; m < k; ++m) {
    const Modification& mod = log.At(positions_[i] + m);
    switch (mod.kind) {
      case ModKind::kInsert:
        batch.push_back(DeltaRow{mod.new_row, 1});
        break;
      case ModKind::kDelete:
        batch.push_back(DeltaRow{mod.old_row, -1});
        break;
      case ModKind::kUpdate:
        batch.push_back(DeltaRow{mod.old_row, -1});
        batch.push_back(DeltaRow{mod.new_row, 1});
        break;
    }
    last_version = mod.version;
  }
  result.delta_rows_in = batch.size();

  // Dry runs apply the computed deltas to an empty scratch state (same
  // asymptotic application work as the real run, no O(view) clone), with
  // negative multiplicities permitted since the base content is absent.
  ViewState scratch = binding_.def().is_aggregate()
                          ? ViewState(binding_.def().aggregate->kind)
                          : ViewState();
  scratch.AllowNegativeMultiplicities();
  ViewState* target = dry_run ? &scratch : &state_;
  result.view_updates = RunPipeline(binding_.delta_pipeline(i),
                                    std::move(batch), target, &result.stats);
  if (!dry_run) {
    positions_[i] += k;
    versions_[i] = last_version;
  }
  result.wall_ms = watch.ElapsedMs();
  return result;
}

void ViewMaintainer::RefreshAll() {
  for (size_t i = 0; i < num_tables(); ++i) {
    const size_t pending = PendingCount(i);
    if (pending > 0) ProcessBatch(i, pending);
  }
}

bool ViewMaintainer::IsConsistent() const {
  for (size_t i = 0; i < num_tables(); ++i) {
    if (PendingCount(i) != 0) return false;
  }
  return true;
}

ViewState ViewMaintainer::RecomputeAtWatermarks() const {
  const BoundPipeline& pipeline = binding_.recompute_pipeline();
  ExecStats stats;
  DeltaBatch batch = ScanToBatch(binding_.base_table(pipeline.leading_index),
                                 versions_[pipeline.leading_index], &stats);
  ViewState fresh = binding_.def().is_aggregate()
                        ? ViewState(binding_.def().aggregate->kind)
                        : ViewState();
  RunPipeline(pipeline, std::move(batch), &fresh, &stats);
  return fresh;
}

size_t ViewMaintainer::RunPipeline(const BoundPipeline& pipeline,
                                   DeltaBatch batch, ViewState* target,
                                   ExecStats* stats) const {
  // Leading predicates run against raw rows; then project down to the
  // columns the pipeline actually consumes.
  batch = ApplyBoundPredicates(std::move(batch),
                               pipeline.leading_predicates);
  batch = ProjectBatch(batch, pipeline.initial_projection);
  for (const BoundJoinStep& step : pipeline.steps) {
    if (batch.empty()) break;
    batch = JoinBatchWithTable(batch, step.left_column, *step.table,
                               step.right_column, step.right_keep,
                               versions_[step.table_index], stats);
    for (const auto& [a, b] : step.residual_equalities) {
      DeltaBatch kept;
      kept.reserve(batch.size());
      for (DeltaRow& row : batch) {
        if (row.row[a] == row.row[b]) kept.push_back(std::move(row));
      }
      batch = std::move(kept);
    }
    batch = ApplyBoundPredicates(std::move(batch), step.predicates);
    if (!step.post_projection.empty()) {
      batch = ProjectBatch(batch, step.post_projection);
    }
  }
  return ApplyToState(pipeline, batch, target);
}

size_t ViewMaintainer::ApplyToState(const BoundPipeline& pipeline,
                                    const DeltaBatch& batch,
                                    ViewState* target) const {
  static const Value kNoValue(int64_t{0});
  // Net-aggregate the signed deltas per (group key, aggregate value)
  // before touching the state: join operators emit output in scan order,
  // so a batch can contain a removal textually before its matching
  // insertion; netting first keeps application order-independent and lets
  // ViewState enforce non-negative multiplicities strictly.
  std::unordered_map<Row, int64_t, RowHash> net;
  net.reserve(batch.size());
  for (const DeltaRow& delta : batch) {
    Row extracted;
    extracted.reserve(pipeline.key_columns.size() + 1);
    for (size_t c : pipeline.key_columns) extracted.push_back(delta.row[c]);
    extracted.push_back(pipeline.has_aggregate_column
                            ? delta.row[pipeline.aggregate_column]
                            : kNoValue);
    net[std::move(extracted)] += delta.mult;
  }
  size_t updates = 0;
  for (const auto& [extracted, mult] : net) {
    if (mult == 0) continue;
    Row key(extracted.begin(), extracted.end() - 1);
    target->Apply(key, extracted.back(), mult);
    ++updates;
  }
  return updates;
}

}  // namespace abivm
