#include "ivm/maintainer.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "fault/failpoint.h"
#include "fault/sites.h"

namespace abivm {

namespace {

void ApplyBoundPredicatesInPlace(PooledBatch* batch,
                                 const std::vector<BoundPredicate>& preds,
                                 ExecStats* stats) {
  for (const BoundPredicate& p : preds) {
    FilterBatchInPlace(batch, p.column, p.op, p.constant, stats);
  }
}

// Keeps rows with row[a] == row[b], compacting in place (slot swaps, no
// Value copies). Charges rows_filtered like a FilterBatch would.
void ResidualEqualityInPlace(PooledBatch* batch, size_t a, size_t b,
                             ExecStats* stats) {
  if (stats != nullptr) stats->rows_filtered += batch->size();
  size_t w = 0;
  for (size_t i = 0; i < batch->size(); ++i) {
    DeltaRow& row = (*batch)[i];
    if (row.row[a] == row.row[b]) {
      if (w != i) {
        (*batch)[w].row.swap(row.row);
        (*batch)[w].mult = row.mult;
      }
      ++w;
    }
  }
  batch->TruncateTo(w);
}

// Stage addressing shared by the profiled pipeline loop and the timer
// interning in SetMetrics: stage 0 is the leading filter/project block,
// stage j + 1 is join step j.
std::string StageSlug(const BoundPipeline& pipeline, size_t stage) {
  if (stage == 0) return "s0.prepare";
  return "s" + std::to_string(stage) + ".join_" +
         pipeline.steps[stage - 1].table->name();
}

std::string StageOpLabel(const BoundPipeline& pipeline, size_t stage) {
  if (stage == 0) {
    return "delta(" + pipeline.leading->name() + ") filter/project";
  }
  const BoundJoinStep& step = pipeline.steps[stage - 1];
  const bool indexed = step.table->HasIndexOn(step.right_column);
  return std::string(indexed ? "INDEX JOIN " : "HASH+SCAN ") +
         step.table->name();
}

}  // namespace

ViewMaintainer::ViewMaintainer(Database* db, ViewDef def,
                               BindingOptions options)
    : db_(db),
      binding_(db, std::move(def), options),
      state_(binding_.def().is_aggregate()
                 ? ViewState(binding_.def().aggregate->kind)
                 : ViewState()) {
  positions_.resize(binding_.num_tables());
  versions_.resize(binding_.num_tables());
  for (size_t i = 0; i < binding_.num_tables(); ++i) {
    positions_[i] = binding_.base_table(i).delta_log().size();
    versions_[i] = db_->current_version();
  }
  state_ = RecomputeAtWatermarks();
}

ViewMaintainer::ViewMaintainer(Unmaterialized, Database* db, ViewDef def,
                               BindingOptions options)
    : db_(db),
      binding_(db, std::move(def), options),
      state_(binding_.def().is_aggregate()
                 ? ViewState(binding_.def().aggregate->kind)
                 : ViewState()) {
  positions_.resize(binding_.num_tables(), 0);
  versions_.resize(binding_.num_tables(), 0);
}

void ViewMaintainer::RestoreForRecovery(std::vector<size_t> positions,
                                        std::vector<Version> versions,
                                        ViewState state) {
  AssertWriter();
  ABIVM_CHECK_EQ(positions.size(), num_tables());
  ABIVM_CHECK_EQ(versions.size(), num_tables());
  ABIVM_CHECK_EQ(state.is_aggregate(), binding_.def().is_aggregate());
  for (size_t i = 0; i < num_tables(); ++i) {
    const DeltaLog& log = binding_.base_table(i).delta_log();
    ABIVM_CHECK_GE(positions[i], log.first_retained());
    ABIVM_CHECK_LE(positions[i], log.size());
    ABIVM_CHECK_LE(versions[i], db_->current_version());
  }
  positions_ = std::move(positions);
  versions_ = std::move(versions);
  state_ = std::move(state);
}

size_t ViewMaintainer::PendingCount(size_t i) const {
  ABIVM_CHECK_LT(i, positions_.size());
  return binding_.base_table(i).delta_log().size() - positions_[i];
}

StateVec ViewMaintainer::PendingVec() const {
  StateVec out(num_tables());
  for (size_t i = 0; i < num_tables(); ++i) out[i] = PendingCount(i);
  return out;
}

Version ViewMaintainer::watermark_version(size_t i) const {
  ABIVM_CHECK_LT(i, versions_.size());
  return versions_[i];
}

size_t ViewMaintainer::watermark_position(size_t i) const {
  ABIVM_CHECK_LT(i, positions_.size());
  return positions_[i];
}

void ViewMaintainer::SetMetrics(obs::MetricRegistry* registry) {
  metrics_ = registry;
  stage_timers_.clear();
  ws_reuses_counter_ = nullptr;
  ws_peak_counter_ = nullptr;
  batch_latency_ = nullptr;
  if (registry == nullptr) return;
  ws_reuses_counter_ = &registry->counter("exec.workspace_reuses");
  ws_peak_counter_ = &registry->counter("exec.arena_bytes_peak");
  batch_latency_ = &registry->latency("ivm.batch_ms");
  stage_timers_.resize(num_tables());
  for (size_t i = 0; i < num_tables(); ++i) {
    const BoundPipeline& pipeline = binding_.delta_pipeline(i);
    const std::string base = "ivm.op." + binding_.def().tables[i] + ".";
    for (size_t s = 0; s <= pipeline.steps.size(); ++s) {
      stage_timers_[i].push_back(
          &registry->timer(base + StageSlug(pipeline, s)));
    }
  }
}

void ViewMaintainer::AssertWriter() const {
#ifndef ABIVM_DISABLE_THREAD_ASSERTS
  ABIVM_CHECK_MSG(
      writer_.load(std::memory_order_relaxed) == std::this_thread::get_id(),
      "ViewMaintainer for view '" << binding_.def().name
          << "' entered from a thread that is not its bound writer; "
             "single-writer discipline requires BindWriterToCurrentThread "
             "after a synchronized handoff");
#endif
}

size_t ViewMaintainer::VacuumConsumed() {
  AssertWriter();
  size_t reclaimed = 0;
  for (size_t i = 0; i < num_tables(); ++i) {
    Table& table = binding_.base_table(i);
    reclaimed += table.VacuumBefore(versions_[i]);
    table.delta_log().TrimBefore(positions_[i]);
  }
  return reclaimed;
}

Status ViewMaintainer::VacuumConsumedBelow(Version cap,
                                           size_t* rows_reclaimed,
                                           size_t* log_entries_trimmed) {
  AssertWriter();
  size_t rows = 0;
  size_t entries = 0;
  for (size_t i = 0; i < num_tables(); ++i) {
    ABIVM_FAULT_POINT(fault::kFpGcVacuum);
    Table& table = binding_.base_table(i);
    rows += table.VacuumBefore(std::min(versions_[i], cap));
    const size_t before = table.delta_log().first_retained();
    table.delta_log().TrimBefore(positions_[i]);
    entries += table.delta_log().first_retained() - before;
  }
  if (rows_reclaimed != nullptr) *rows_reclaimed = rows;
  if (log_entries_trimmed != nullptr) *log_entries_trimmed = entries;
  return Status::Ok();
}

BatchResult ViewMaintainer::ProcessBatch(size_t i, size_t k, bool dry_run) {
  BatchResult result;
  const Status status = ProcessBatchChecked(i, k, &result, dry_run);
  ABIVM_CHECK_MSG(status.ok(), status.ToString());
  return result;
}

Status ViewMaintainer::ProcessBatchChecked(size_t i, size_t k,
                                           BatchResult* result,
                                           bool dry_run) {
  AssertWriter();
  const Status status = ProcessBatchImpl(i, k, result, dry_run);
  if (status.ok() && !dry_run && k > 0 && batch_latency_ != nullptr) {
    batch_latency_->Record(result->wall_ms);
  }
  return status;
}

Status ViewMaintainer::ProcessBatchImpl(size_t i, size_t k,
                                        BatchResult* result, bool dry_run) {
  ABIVM_CHECK(result != nullptr);
  *result = BatchResult{};
  if (i >= num_tables()) {
    return Status::InvalidArgument("no base table " + std::to_string(i));
  }
  if (k > PendingCount(i)) {
    return Status::OutOfRange("batch of " + std::to_string(k) +
                              " exceeds the " +
                              std::to_string(PendingCount(i)) +
                              " pending modifications of table " +
                              std::to_string(i));
  }
  result->processed = k;
  if (k == 0) return Status::Ok();

  Stopwatch watch;
  // Stamp the elapsed time on EVERY exit from here on (failpoint macros
  // return early), so failed attempts report the wall clock they burned
  // before the fault -- the engine runner charges it as attempted work.
  struct WallStamp {
    const Stopwatch& watch;
    BatchResult* result;
    ~WallStamp() { result->wall_ms = watch.ElapsedMs(); }
  } stamp{watch, result};

  const DeltaLog& log = binding_.base_table(i).delta_log();
  ABIVM_RETURN_NOT_OK(log.CheckRead(positions_[i], k));

  // Bracket the pooled-workspace use (FinishBatch drives the grow-event
  // accounting and counter export on every exit, including failpoints).
  ws_.BeginBatch();
  struct WorkspaceFinish {
    ViewMaintainer* m;
    ~WorkspaceFinish() {
      m->ws_.FinishBatch();
      if (m->ws_reuses_counter_ != nullptr) {
        m->ws_reuses_counter_->RaiseTo(m->ws_.reuses());
        m->ws_peak_counter_->RaiseTo(m->ws_.arena_bytes_peak());
      }
    }
  } ws_finish{this};

  // Turn the next k modifications into signed delta rows, filling pooled
  // row slots (a warm workspace re-assigns into last batch's storage).
  PooledBatch* batch = &ws_.batch_a();
  batch->Reserve(k * 2);
  Version last_version = versions_[i];
  for (size_t m = 0; m < k; ++m) {
    const Modification& mod = log.At(positions_[i] + m);
    switch (mod.kind) {
      case ModKind::kInsert:
        AssignRow(batch->Append(1), mod.new_row);
        break;
      case ModKind::kDelete:
        AssignRow(batch->Append(-1), mod.old_row);
        break;
      case ModKind::kUpdate:
        AssignRow(batch->Append(-1), mod.old_row);
        AssignRow(batch->Append(1), mod.new_row);
        break;
    }
    last_version = mod.version;
  }
  result->delta_rows_in = batch->size();

  // Stage: run the delta pipeline and net-aggregate its output without
  // touching any member state. Every fallible site (delta-log read, exec
  // operators, the two ivm.* failpoints below) is crossed before the
  // commit point, so a failure anywhere leaves state_, positions_, and
  // versions_ exactly as they were.
  const bool profiled = profiling_enabled();
  const Status piped =
      RunPipeline(binding_.delta_pipeline(i), &batch, &result->stats,
                  profiled ? &result->profile : nullptr);
  if (profiled) {
    result->profile.pipeline = "delta(" + binding_.def().tables[i] + ")";
    if (metrics_ != nullptr) {
      const std::vector<obs::Timer*>& timers = stage_timers_[i];
      const size_t stages =
          std::min(result->profile.stages.size(), timers.size());
      for (size_t s = 0; s < stages; ++s) {
        const StageStats& stage = result->profile.stages[s];
        // Skip stages the run never reached (empty-batch padding).
        if (stage.rows_in == 0 && stage.wall_ms == 0.0) continue;
        timers[s]->Record(stage.wall_ms);
      }
    }
  }
  if (!piped.ok()) return piped;
  ExtractNet(binding_.delta_pipeline(i), *batch, &net_);
  ABIVM_FAULT_POINT(fault::kFpIvmApplyState);
  if (!dry_run) ABIVM_FAULT_POINT(fault::kFpIvmCommit);

  // Commit: pure in-memory application plus the watermark advance; no
  // failpoint sites from here on, so the commit is atomic under injected
  // faults. Dry runs apply the staged deltas to an empty scratch state
  // (same asymptotic application work as the real run, no O(view)
  // clone), with negative multiplicities permitted since the base
  // content is absent.
  ViewState scratch = binding_.def().is_aggregate()
                          ? ViewState(binding_.def().aggregate->kind)
                          : ViewState();
  scratch.AllowNegativeMultiplicities();
  ViewState* target = dry_run ? &scratch : &state_;
  result->view_updates = ApplyNet(net_, target);
  if (!dry_run) {
    positions_[i] += k;
    versions_[i] = last_version;
  }
  return Status::Ok();
}

void ViewMaintainer::RefreshAll() {
  const Status status = RefreshAllChecked();
  ABIVM_CHECK_MSG(status.ok(), status.ToString());
}

Status ViewMaintainer::RefreshAllChecked() {
  for (size_t i = 0; i < num_tables(); ++i) {
    const size_t pending = PendingCount(i);
    if (pending == 0) continue;
    BatchResult result;
    ABIVM_RETURN_NOT_OK(ProcessBatchChecked(i, pending, &result));
  }
  return Status::Ok();
}

bool ViewMaintainer::IsConsistent() const {
  for (size_t i = 0; i < num_tables(); ++i) {
    if (PendingCount(i) != 0) return false;
  }
  return true;
}

ViewState ViewMaintainer::RecomputeAtWatermarks() const {
  Result<ViewState> fresh = RecomputeAtWatermarksChecked();
  ABIVM_CHECK_MSG(fresh.ok(), fresh.status().ToString());
  return std::move(*fresh);
}

Result<ViewState> ViewMaintainer::RecomputeAtWatermarksChecked(
    PipelineProfile* profile) const {
  // Logically const, but the pooled workspace below is shared mutable
  // scratch -- only the bound writer may run a recompute.
  AssertWriter();
  const BoundPipeline& pipeline = binding_.recompute_pipeline();
  ws_.BeginBatch();
  struct WorkspaceFinish {
    PipelineWorkspace& ws;
    ~WorkspaceFinish() { ws.FinishBatch(); }
  } ws_finish{ws_};
  ExecStats stats;
  ExecStats* scan_stats = &stats;
  if (profile != nullptr) {
    profile->pipeline = "recompute";
    profile->stages.clear();
    profile->stages.push_back(StageStats{});
    StageStats& scan = profile->stages.back();
    scan.op = "SCAN " + pipeline.leading->name();
    scan.slug = "scan." + pipeline.leading->name();
    scan_stats = &scan.stats;
  }
  const Stopwatch scan_watch;
  PooledBatch* batch = &ws_.batch_a();
  const Status scanned =
      ScanToBatchInto(binding_.base_table(pipeline.leading_index),
                      versions_[pipeline.leading_index], batch, scan_stats);
  if (profile != nullptr) {
    StageStats& scan = profile->stages.back();
    scan.wall_ms = scan_watch.ElapsedMs();
    scan.rows_out = scanned.ok() ? batch->size() : 0;
    stats += scan.stats;
  }
  if (!scanned.ok()) return scanned;
  // The pipeline loop resets/refills the stage list, so run it on a local
  // profile and splice the scan stage back in front.
  PipelineProfile pipeline_profile;
  const Status piped =
      RunPipeline(pipeline, &batch, &stats,
                  profile != nullptr ? &pipeline_profile : nullptr);
  if (profile != nullptr) {
    for (StageStats& stage : pipeline_profile.stages) {
      profile->stages.push_back(std::move(stage));
    }
  }
  if (!piped.ok()) return piped;
  ViewState fresh = binding_.def().is_aggregate()
                        ? ViewState(binding_.def().aggregate->kind)
                        : ViewState();
  ExtractNet(pipeline, *batch, &net_);
  ApplyNet(net_, &fresh);
  return fresh;
}

Status ViewMaintainer::RunPipeline(const BoundPipeline& pipeline,
                                   PooledBatch** cur, ExecStats* stats,
                                   PipelineProfile* profile) const {
  if (profile != nullptr) {
    return RunPipelineProfiled(pipeline, cur, stats, profile);
  }
  // Unobserved fast path: no per-stage clock reads, no per-stage
  // allocations -- filters and projections run in place on the pooled
  // batch, joins ping-pong between the workspace's two batches. The
  // profiled variant below must charge the same counters (the equality is
  // test-enforced).
  PooledBatch* batch = *cur;
  PooledBatch* other =
      batch == &ws_.batch_a() ? &ws_.batch_b() : &ws_.batch_a();
  ApplyBoundPredicatesInPlace(batch, pipeline.leading_predicates, stats);
  ProjectBatchInPlace(batch, pipeline.initial_projection, ws_, stats);
  for (const BoundJoinStep& step : pipeline.steps) {
    if (batch->empty()) break;
    const Status joined = JoinBatchInto(
        *batch, step.left_column, *step.table, step.right_column,
        step.right_keep, versions_[step.table_index], ws_, other, stats);
    if (!joined.ok()) {
      *cur = batch;
      return joined;
    }
    std::swap(batch, other);
    for (const auto& [a, b] : step.residual_equalities) {
      ResidualEqualityInPlace(batch, a, b, stats);
    }
    ApplyBoundPredicatesInPlace(batch, step.predicates, stats);
    if (!step.post_projection.empty()) {
      ProjectBatchInPlace(batch, step.post_projection, ws_, stats);
    }
  }
  *cur = batch;
  return Status::Ok();
}

Status ViewMaintainer::RunPipelineProfiled(const BoundPipeline& pipeline,
                                           PooledBatch** cur,
                                           ExecStats* stats,
                                           PipelineProfile* profile) const {
  // Each stage accumulates into its own StageStats slice; the slices are
  // summed into `*stats` at every exit, so the per-operator breakdown and
  // the whole-run totals cannot disagree.
  profile->stages.clear();
  profile->stages.reserve(pipeline.steps.size() + 1);
  PooledBatch* batch = *cur;
  PooledBatch* other =
      batch == &ws_.batch_a() ? &ws_.batch_b() : &ws_.batch_a();
  const auto flush = [&] {
    *cur = batch;
    if (stats == nullptr) return;
    for (const StageStats& stage : profile->stages) *stats += stage.stats;
  };
  auto begin_stage = [&](size_t index, size_t rows_in) -> StageStats& {
    profile->stages.push_back(StageStats{});
    StageStats& stage = profile->stages.back();
    stage.op = StageOpLabel(pipeline, index);
    stage.slug = StageSlug(pipeline, index);
    stage.rows_in = rows_in;
    return stage;
  };

  {
    StageStats& stage = begin_stage(0, batch->size());
    const Stopwatch stage_watch;
    ApplyBoundPredicatesInPlace(batch, pipeline.leading_predicates,
                                &stage.stats);
    ProjectBatchInPlace(batch, pipeline.initial_projection, ws_,
                        &stage.stats);
    stage.wall_ms = stage_watch.ElapsedMs();
    stage.rows_out = batch->size();
  }
  for (size_t j = 0; j < pipeline.steps.size(); ++j) {
    const BoundJoinStep& step = pipeline.steps[j];
    StageStats& stage = begin_stage(j + 1, batch->size());
    // An empty batch skips the remaining joins; the padded zero-work
    // stages keep the profile's shape stable for merging and display.
    if (batch->empty()) continue;
    const Stopwatch stage_watch;
    const Status joined = JoinBatchInto(
        *batch, step.left_column, *step.table, step.right_column,
        step.right_keep, versions_[step.table_index], ws_, other,
        &stage.stats);
    if (!joined.ok()) {
      stage.wall_ms = stage_watch.ElapsedMs();
      flush();
      return joined;
    }
    std::swap(batch, other);
    for (const auto& [a, b] : step.residual_equalities) {
      ResidualEqualityInPlace(batch, a, b, &stage.stats);
    }
    ApplyBoundPredicatesInPlace(batch, step.predicates, &stage.stats);
    if (!step.post_projection.empty()) {
      ProjectBatchInPlace(batch, step.post_projection, ws_, &stage.stats);
    }
    stage.wall_ms = stage_watch.ElapsedMs();
    stage.rows_out = batch->size();
  }
  flush();
  return Status::Ok();
}

void ViewMaintainer::ExtractNet(const BoundPipeline& pipeline,
                                const PooledBatch& batch,
                                NetDelta* net) const {
  static const Value kNoValue(int64_t{0});
  // Net-aggregate the signed deltas per (group key, aggregate value)
  // before touching the state: join operators emit output in scan order,
  // so a batch can contain a removal textually before its matching
  // insertion; netting first keeps application order-independent and lets
  // ViewState enforce non-negative multiplicities strictly.
  net->clear();  // keeps bucket capacity
  net->reserve(batch.size());
  Row& extracted = extract_scratch_;
  const size_t width = pipeline.key_columns.size() + 1;
  for (size_t r = 0; r < batch.size(); ++r) {
    const DeltaRow& delta = batch[r];
    extracted.resize(width);
    size_t w = 0;
    for (size_t c : pipeline.key_columns) extracted[w++] = delta.row[c];
    extracted[w] = pipeline.has_aggregate_column
                       ? delta.row[pipeline.aggregate_column]
                       : kNoValue;
    // Lookup-then-insert with the scratch row: only the first occurrence
    // of a distinct key copies it into the map.
    const auto it = net->find(extracted);
    if (it != net->end()) {
      it->second += delta.mult;
    } else {
      net->emplace(extracted, delta.mult);
    }
  }
}

size_t ViewMaintainer::ApplyNet(const NetDelta& net,
                                ViewState* target) const {
  size_t updates = 0;
  Row& key = key_scratch_;
  for (const auto& [extracted, mult] : net) {
    if (mult == 0) continue;
    key.assign(extracted.begin(), extracted.end() - 1);
    target->Apply(key, extracted.back(), mult);
    ++updates;
  }
  return updates;
}

}  // namespace abivm
