#include "ivm/view_group.h"

#include <algorithm>
#include <limits>

namespace abivm {

ViewGroup::ViewGroup(Database* db) : db_(db) {
  ABIVM_CHECK(db != nullptr);
}

ViewMaintainer& ViewGroup::AddView(ViewDef def, BindingOptions options) {
  views_.push_back(
      std::make_unique<ViewMaintainer>(db_, std::move(def), options));
  return *views_.back();
}

ViewMaintainer& ViewGroup::view(size_t i) {
  ABIVM_CHECK_LT(i, views_.size());
  return *views_[i];
}

ViewMaintainer* ViewGroup::FindView(const std::string& name) {
  for (auto& v : views_) {
    if (v->binding().def().name == name) return v.get();
  }
  return nullptr;
}

void ViewGroup::RefreshAll() {
  for (auto& v : views_) v->RefreshAll();
}

Status ViewGroup::RefreshAllChecked() {
  for (auto& v : views_) {
    ABIVM_RETURN_NOT_OK(v->RefreshAllChecked());
  }
  return Status::Ok();
}

bool ViewGroup::AllConsistent() const {
  for (const auto& v : views_) {
    if (!v->IsConsistent()) return false;
  }
  return true;
}

size_t ViewGroup::VacuumConsumed() {
  size_t reclaimed = 0;
  for (const auto& table_ptr : db_->tables()) {
    Table& table = *table_ptr;
    Version min_version = db_->current_version();
    size_t min_position = table.delta_log().size();
    for (const auto& v : views_) {
      const ViewBinding& binding = v->binding();
      for (size_t i = 0; i < binding.num_tables(); ++i) {
        if (&binding.base_table(i) != &table) continue;
        min_version = std::min(min_version, v->watermark_version(i));
        min_position = std::min(min_position, v->watermark_position(i));
      }
    }
    reclaimed += table.VacuumBefore(min_version);
    table.delta_log().TrimBefore(min_position);
  }
  return reclaimed;
}

}  // namespace abivm
