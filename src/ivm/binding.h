// Binding a ViewDef against a Database: resolves names to tables and
// column offsets, and derives one maintenance pipeline per base table (the
// join order used to propagate that table's deltas) plus the full
// recompute pipeline.
//
// Pipelines are left-deep: the intermediate row starts as a projection of
// the leading table's columns and grows by the *kept* columns of one table
// per step. Early projection is pushed down aggressively -- each step only
// materializes the columns that later joins, predicates, or the final
// extraction still need -- so join output cost is proportional to useful
// data, as in any real executor. The physical join strategy (index
// nested-loop vs hash build + scan) is chosen at execution time from index
// availability; this is the mechanism behind the paper's cost asymmetry.

#ifndef ABIVM_IVM_BINDING_H_
#define ABIVM_IVM_BINDING_H_

#include <string>
#include <vector>

#include "ivm/view_def.h"
#include "storage/database.h"

namespace abivm {

/// A predicate resolved to a physical column position. For
/// `BoundPipeline::leading_predicates` the position is a column index of
/// the leading table's raw rows (applied before the initial projection);
/// for `BoundJoinStep::predicates` it is a position in the intermediate
/// row right after the step's join.
struct BoundPredicate {
  size_t column = 0;
  CompareOp op = CompareOp::kEq;
  Value constant;
};

/// One join step of a pipeline. All positions are physical coordinates of
/// the intermediate row at the point they are used.
struct BoundJoinStep {
  Table* table = nullptr;  // the table joining in
  size_t table_index = 0;  // its position in ViewDef::tables
  /// Join key position in the incoming intermediate row.
  size_t left_column = 0;
  /// Join key column within `table`.
  size_t right_column = 0;
  /// Columns of `table` appended to the intermediate row (early
  /// projection: only what the rest of the pipeline needs).
  std::vector<size_t> right_keep;
  /// Predicates on `table`'s columns, applied right after the join.
  std::vector<BoundPredicate> predicates;
  /// Extra join conditions connecting `table` to the already-joined set
  /// (beyond the physical join key), enforced as column equalities after
  /// the join.
  std::vector<std::pair<size_t, size_t>> residual_equalities;
  /// Positions to keep after predicates (empty = keep everything).
  std::vector<size_t> post_projection;
};

/// A full maintenance pipeline: start from raw rows of `leading` (a delta
/// batch or a scan), apply `leading_predicates`, project to
/// `initial_projection`, then run the join steps in order.
struct BoundPipeline {
  Table* leading = nullptr;
  size_t leading_index = 0;
  std::vector<BoundPredicate> leading_predicates;
  /// Leading-table columns retained as the initial intermediate row.
  std::vector<size_t> initial_projection;
  std::vector<BoundJoinStep> steps;
  /// Final-intermediate-row positions of the SPJ output columns or
  /// group-by key.
  std::vector<size_t> key_columns;
  /// Final-intermediate-row position of the aggregated column (aggregate
  /// views with SUM/MIN/MAX; unused for COUNT and SPJ views).
  size_t aggregate_column = 0;
  bool has_aggregate_column = false;
};

/// Planner toggles; the defaults are what a real engine does. The
/// ablation bench (`bench/abl_engine_planner`) switches them off to show
/// their effect on the measured cost shapes.
struct BindingOptions {
  /// Order joins smallest-table-first (filtered dimensions early).
  bool reorder_joins = true;
  /// Materialize only the columns later pipeline stages need.
  bool projection_pushdown = true;
};

/// A ViewDef resolved against a concrete database.
class ViewBinding {
 public:
  /// Validates the definition (tables exist, join graph connected, columns
  /// resolve, every pipeline is constructible) and builds all pipelines.
  ViewBinding(Database* db, ViewDef def, BindingOptions options = {});

  const ViewDef& def() const { return def_; }
  size_t num_tables() const { return def_.tables.size(); }

  Table& base_table(size_t i) const;

  /// Index of a base table within the view (CHECK-fails if not part of it).
  size_t TableIndex(const std::string& name) const;

  /// Pipeline propagating deltas of base table i.
  const BoundPipeline& delta_pipeline(size_t i) const;

  /// Pipeline recomputing the view from scratch (leads with tables[0]).
  const BoundPipeline& recompute_pipeline() const {
    return recompute_pipeline_;
  }

 private:
  BoundPipeline BuildPipeline(size_t leading_index) const;

  Database* db_;
  ViewDef def_;
  BindingOptions options_;
  std::vector<Table*> tables_;
  std::vector<BoundPipeline> delta_pipelines_;
  BoundPipeline recompute_pipeline_;
};

}  // namespace abivm

#endif  // ABIVM_IVM_BINDING_H_
