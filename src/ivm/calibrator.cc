#include "ivm/calibrator.h"

#include <algorithm>

namespace abivm {

OperatorCostShare CalibrationResult::DominantOperator() const {
  ABIVM_CHECK(!samples.empty());
  // batch_sizes are ascending, so the last sample is the largest -- the
  // regime the fitted slope describes.
  const PipelineProfile& profile = samples.back().profile;
  ABIVM_CHECK_MSG(!profile.empty(),
                  "calibration samples carry no profile");
  const double total = profile.TotalWallMs();
  const StageStats* best = &profile.stages.front();
  for (const StageStats& stage : profile.stages) {
    if (stage.wall_ms > best->wall_ms) best = &stage;
  }
  OperatorCostShare share;
  share.op = best->op;
  share.slug = best->slug;
  share.wall_ms = best->wall_ms;
  share.share = total > 0.0 ? best->wall_ms / total : 0.0;
  return share;
}

CostFunctionPtr CalibrationResult::AsLinearCost() const {
  // A valid LinearCost needs a > 0 and b >= 0; measurement noise on flat
  // or tiny curves can produce slightly negative estimates.
  const double a = std::max(fit.slope, 1e-9);
  const double b = std::max(fit.intercept, 0.0);
  return std::make_shared<LinearCost>(a, b);
}

CostFunctionPtr CalibrationResult::AsTableDrivenCost() const {
  ABIVM_CHECK(!samples.empty());
  std::vector<std::pair<uint64_t, double>> points;
  points.reserve(samples.size());
  double running_max = 0.0;
  for (const CostSample& s : samples) {
    // Monotonize: measured medians can dip with noise; cost functions
    // must be non-decreasing.
    running_max = std::max(running_max, s.median_ms);
    points.emplace_back(s.batch_size, running_max);
  }
  return std::make_shared<PiecewiseLinearCost>(std::move(points));
}

CalibrationResult CalibrateTableCost(ViewMaintainer& maintainer,
                                     size_t table_index,
                                     const std::vector<uint64_t>& batch_sizes,
                                     CalibratorOptions options) {
  ABIVM_CHECK(!batch_sizes.empty());
  ABIVM_CHECK_GE(options.repetitions, 1);
  CalibrationResult result;

  // Profile every run so the result can attribute the fitted curve to
  // the dominant operator; restore the caller's profiling choice after.
  const bool saved_profiling = maintainer.profiling_requested();
  maintainer.EnableProfiling(true);
  std::vector<double> xs, ys;
  for (uint64_t k : batch_sizes) {
    ABIVM_CHECK_MSG(k >= 1, "batch sizes must be >= 1");
    ABIVM_CHECK_MSG(maintainer.PendingCount(table_index) >= k,
                    "calibration needs >= " << k
                                            << " pending modifications");
    std::vector<double> times;
    times.reserve(static_cast<size_t>(options.repetitions));
    ExecStats representative;
    PipelineProfile representative_profile;
    for (int r = 0; r < options.repetitions; ++r) {
      BatchResult batch = maintainer.ProcessBatch(
          table_index, static_cast<size_t>(k), /*dry_run=*/true);
      times.push_back(batch.wall_ms);
      representative = batch.stats;
      representative_profile = std::move(batch.profile);
    }
    CostSample sample;
    sample.batch_size = k;
    sample.median_ms = Median(times);
    sample.stats = representative;
    sample.profile = std::move(representative_profile);
    result.samples.push_back(sample);
    xs.push_back(static_cast<double>(k));
    ys.push_back(sample.median_ms);
  }
  if (xs.size() >= 2) {
    result.fit = FitLinear(xs, ys);
  } else {
    result.fit.slope = ys[0] / std::max(xs[0], 1.0);
    result.fit.intercept = 0.0;
    result.fit.r_squared = 1.0;
  }
  maintainer.EnableProfiling(saved_profiling);
  return result;
}

}  // namespace abivm
