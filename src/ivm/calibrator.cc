#include "ivm/calibrator.h"

#include <algorithm>

namespace abivm {

CostFunctionPtr CalibrationResult::AsLinearCost() const {
  // A valid LinearCost needs a > 0 and b >= 0; measurement noise on flat
  // or tiny curves can produce slightly negative estimates.
  const double a = std::max(fit.slope, 1e-9);
  const double b = std::max(fit.intercept, 0.0);
  return std::make_shared<LinearCost>(a, b);
}

CostFunctionPtr CalibrationResult::AsTableDrivenCost() const {
  ABIVM_CHECK(!samples.empty());
  std::vector<std::pair<uint64_t, double>> points;
  points.reserve(samples.size());
  double running_max = 0.0;
  for (const CostSample& s : samples) {
    // Monotonize: measured medians can dip with noise; cost functions
    // must be non-decreasing.
    running_max = std::max(running_max, s.median_ms);
    points.emplace_back(s.batch_size, running_max);
  }
  return std::make_shared<PiecewiseLinearCost>(std::move(points));
}

CalibrationResult CalibrateTableCost(ViewMaintainer& maintainer,
                                     size_t table_index,
                                     const std::vector<uint64_t>& batch_sizes,
                                     CalibratorOptions options) {
  ABIVM_CHECK(!batch_sizes.empty());
  ABIVM_CHECK_GE(options.repetitions, 1);
  CalibrationResult result;

  std::vector<double> xs, ys;
  for (uint64_t k : batch_sizes) {
    ABIVM_CHECK_MSG(k >= 1, "batch sizes must be >= 1");
    ABIVM_CHECK_MSG(maintainer.PendingCount(table_index) >= k,
                    "calibration needs >= " << k
                                            << " pending modifications");
    std::vector<double> times;
    times.reserve(static_cast<size_t>(options.repetitions));
    ExecStats representative;
    for (int r = 0; r < options.repetitions; ++r) {
      const BatchResult batch = maintainer.ProcessBatch(
          table_index, static_cast<size_t>(k), /*dry_run=*/true);
      times.push_back(batch.wall_ms);
      representative = batch.stats;
    }
    CostSample sample;
    sample.batch_size = k;
    sample.median_ms = Median(times);
    sample.stats = representative;
    result.samples.push_back(sample);
    xs.push_back(static_cast<double>(k));
    ys.push_back(sample.median_ms);
  }
  if (xs.size() >= 2) {
    result.fit = FitLinear(xs, ys);
  } else {
    result.fit.slope = ys[0] / std::max(xs[0], 1.0);
    result.fit.intercept = 0.0;
    result.fit.r_squared = 1.0;
  }
  return result;
}

}  // namespace abivm
