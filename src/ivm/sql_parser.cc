#include "ivm/sql_parser.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <vector>

namespace abivm {

namespace {

// Propagates a Status error out of a Result-returning function.
#define ABIVM_RETURN_NOT_OK_RESULT(expr)           \
  do {                                             \
    ::abivm::Status abivm_status_ = (expr);        \
    if (!abivm_status_.ok()) return abivm_status_; \
  } while (0)

// ---------------------------------------------------------------------
// Tokenizer

enum class TokenKind {
  kIdent,    // table/column names and keywords
  kInteger,
  kFloat,
  kString,   // 'quoted'
  kSymbol,   // ( ) , . = <> != < <= > >= *
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier (lower-cased), symbol, or literal body
  size_t position = 0;
};

class Tokenizer {
 public:
  explicit Tokenizer(const std::string& input) : input_(input) {}

  Status Run(std::vector<Token>* out) {
    while (true) {
      SkipWhitespace();
      if (pos_ >= input_.size()) break;
      const size_t start = pos_;
      const char c = input_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string word;
        while (pos_ < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
                input_[pos_] == '_')) {
          word.push_back(static_cast<char>(
              std::tolower(static_cast<unsigned char>(input_[pos_]))));
          ++pos_;
        }
        out->push_back(Token{TokenKind::kIdent, std::move(word), start});
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' &&
                  pos_ + 1 < input_.size() &&
                  std::isdigit(static_cast<unsigned char>(
                      input_[pos_ + 1])))) {
        std::string number;
        bool has_dot = false;
        if (c == '-') {
          number.push_back('-');
          ++pos_;
        }
        while (pos_ < input_.size() &&
               (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
                (!has_dot && input_[pos_] == '.'))) {
          if (input_[pos_] == '.') {
            // "1." followed by a non-digit is the dot operator misuse.
            if (pos_ + 1 >= input_.size() ||
                !std::isdigit(
                    static_cast<unsigned char>(input_[pos_ + 1]))) {
              break;
            }
            has_dot = true;
          }
          number.push_back(input_[pos_]);
          ++pos_;
        }
        out->push_back(Token{has_dot ? TokenKind::kFloat
                                     : TokenKind::kInteger,
                             std::move(number), start});
      } else if (c == '\'') {
        ++pos_;
        std::string body;
        while (pos_ < input_.size() && input_[pos_] != '\'') {
          body.push_back(input_[pos_]);
          ++pos_;
        }
        if (pos_ >= input_.size()) {
          return Error(start, "unterminated string literal");
        }
        ++pos_;  // closing quote
        out->push_back(Token{TokenKind::kString, std::move(body), start});
      } else {
        // Multi-char operators first.
        static constexpr const char* kTwoChar[] = {"<>", "!=", "<=", ">="};
        std::string symbol(1, c);
        for (const char* two : kTwoChar) {
          if (input_.compare(pos_, 2, two) == 0) {
            symbol = two;
            break;
          }
        }
        static constexpr char kOneChar[] = "(),.=<>*";
        if (symbol.size() == 1 &&
            std::string(kOneChar).find(c) == std::string::npos) {
          return Error(start, std::string("unexpected character '") + c +
                                  "'");
        }
        pos_ += symbol.size();
        out->push_back(Token{TokenKind::kSymbol, std::move(symbol), start});
      }
    }
    out->push_back(Token{TokenKind::kEnd, "", input_.size()});
    return Status::Ok();
  }

 private:
  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  static Status Error(size_t position, const std::string& message) {
    std::ostringstream oss;
    oss << "SQL error at offset " << position << ": " << message;
    return Status::InvalidArgument(oss.str());
  }

  const std::string& input_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Parser + resolver

struct RawColumn {
  std::string table;  // empty = unqualified
  std::string column;
  size_t position = 0;
};

struct RawItem {
  std::optional<AggKind> aggregate;  // nullopt = plain column
  bool count_star = false;
  RawColumn column;
};

struct RawCondition {
  RawColumn left;
  CompareOp op = CompareOp::kEq;
  // Exactly one of `right_column` / `literal` is set.
  std::optional<RawColumn> right_column;
  std::optional<Value> literal;
};

class Parser {
 public:
  Parser(const Database& db, std::string view_name, std::string sql)
      : db_(db), view_name_(std::move(view_name)), sql_(std::move(sql)) {}

  Result<ViewDef> Run() {
    Tokenizer tokenizer(sql_);
    ABIVM_RETURN_NOT_OK_RESULT(tokenizer.Run(&tokens_));
    ABIVM_RETURN_NOT_OK_RESULT(ParseQuery());
    return Resolve();
  }

 private:
  const Token& Peek() const { return tokens_[cursor_]; }
  const Token& Advance() { return tokens_[cursor_++]; }

  bool PeekIdent(const std::string& word) const {
    return Peek().kind == TokenKind::kIdent && Peek().text == word;
  }
  bool PeekSymbol(const std::string& symbol) const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == symbol;
  }
  bool ConsumeIdent(const std::string& word) {
    if (!PeekIdent(word)) return false;
    ++cursor_;
    return true;
  }
  bool ConsumeSymbol(const std::string& symbol) {
    if (!PeekSymbol(symbol)) return false;
    ++cursor_;
    return true;
  }

  Status Error(const std::string& message) const {
    std::ostringstream oss;
    oss << "SQL error at offset " << Peek().position << ": " << message;
    return Status::InvalidArgument(oss.str());
  }

  Status ExpectIdent(const std::string& word) {
    if (!ConsumeIdent(word)) {
      return Error("expected '" + word + "'");
    }
    return Status::Ok();
  }
  Status ExpectSymbol(const std::string& symbol) {
    if (!ConsumeSymbol(symbol)) {
      return Error("expected '" + symbol + "'");
    }
    return Status::Ok();
  }

  Status ParseColumnRef(RawColumn* out) {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected a column reference");
    }
    out->position = Peek().position;
    const std::string first = Advance().text;
    if (ConsumeSymbol(".")) {
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected a column name after '.'");
      }
      out->table = first;
      out->column = Advance().text;
    } else {
      out->column = first;
    }
    return Status::Ok();
  }

  static std::optional<AggKind> AggFromWord(const std::string& word) {
    if (word == "count") return AggKind::kCount;
    if (word == "sum") return AggKind::kSum;
    if (word == "min") return AggKind::kMin;
    if (word == "max") return AggKind::kMax;
    if (word == "avg") return AggKind::kAvg;
    return std::nullopt;
  }

  Status ParseSelectItem() {
    RawItem item;
    if (Peek().kind == TokenKind::kIdent) {
      // Aggregate only when followed by '('.
      const std::optional<AggKind> agg = AggFromWord(Peek().text);
      if (agg.has_value() && tokens_[cursor_ + 1].kind == TokenKind::kSymbol &&
          tokens_[cursor_ + 1].text == "(") {
        Advance();  // the aggregate keyword
        Advance();  // '('
        item.aggregate = agg;
        if (*agg == AggKind::kCount && ConsumeSymbol("*")) {
          item.count_star = true;
        } else {
          ABIVM_RETURN_NOT_OK(ParseColumnRef(&item.column));
        }
        ABIVM_RETURN_NOT_OK(ExpectSymbol(")"));
        items_.push_back(std::move(item));
        return Status::Ok();
      }
    }
    ABIVM_RETURN_NOT_OK(ParseColumnRef(&item.column));
    items_.push_back(std::move(item));
    return Status::Ok();
  }

  Status ParseCondition() {
    RawCondition cond;
    ABIVM_RETURN_NOT_OK(ParseColumnRef(&cond.left));
    if (Peek().kind != TokenKind::kSymbol) {
      return Error("expected a comparison operator");
    }
    const std::string op = Advance().text;
    if (op == "=") {
      cond.op = CompareOp::kEq;
    } else if (op == "<>" || op == "!=") {
      cond.op = CompareOp::kNe;
    } else if (op == "<") {
      cond.op = CompareOp::kLt;
    } else if (op == "<=") {
      cond.op = CompareOp::kLe;
    } else if (op == ">") {
      cond.op = CompareOp::kGt;
    } else if (op == ">=") {
      cond.op = CompareOp::kGe;
    } else {
      return Error("unknown operator '" + op + "'");
    }
    switch (Peek().kind) {
      case TokenKind::kIdent: {
        RawColumn right;
        ABIVM_RETURN_NOT_OK(ParseColumnRef(&right));
        cond.right_column = std::move(right);
        break;
      }
      case TokenKind::kInteger: {
        const std::string text = Advance().text;
        errno = 0;
        char* end = nullptr;
        const long long parsed = std::strtoll(text.c_str(), &end, 10);
        if (errno == ERANGE || end != text.c_str() + text.size()) {
          return Error("integer literal '" + text +
                       "' is out of range for a 64-bit value");
        }
        cond.literal = Value(static_cast<int64_t>(parsed));
        break;
      }
      case TokenKind::kFloat: {
        const std::string text = Advance().text;
        errno = 0;
        char* end = nullptr;
        const double parsed = std::strtod(text.c_str(), &end);
        if (errno == ERANGE || end != text.c_str() + text.size()) {
          return Error("float literal '" + text +
                       "' is not representable as a double");
        }
        cond.literal = Value(parsed);
        break;
      }
      case TokenKind::kString:
        cond.literal = Value(Advance().text);
        break;
      default:
        return Error("expected a column or literal after the operator");
    }
    conditions_.push_back(std::move(cond));
    return Status::Ok();
  }

  Status ParseQuery() {
    ABIVM_RETURN_NOT_OK(ExpectIdent("select"));
    do {
      ABIVM_RETURN_NOT_OK(ParseSelectItem());
    } while (ConsumeSymbol(","));

    ABIVM_RETURN_NOT_OK(ExpectIdent("from"));
    do {
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected a table name");
      }
      tables_.push_back(Advance().text);
    } while (ConsumeSymbol(","));

    if (ConsumeIdent("where")) {
      do {
        ABIVM_RETURN_NOT_OK(ParseCondition());
      } while (ConsumeIdent("and"));
    }
    if (ConsumeIdent("group")) {
      ABIVM_RETURN_NOT_OK(ExpectIdent("by"));
      do {
        RawColumn column;
        ABIVM_RETURN_NOT_OK(ParseColumnRef(&column));
        group_by_.push_back(std::move(column));
      } while (ConsumeSymbol(","));
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return Status::Ok();
  }

  // Resolves a possibly-unqualified column against the FROM tables.
  Result<ColumnRef> ResolveColumn(const RawColumn& raw) const {
    if (!raw.table.empty()) {
      bool known = false;
      for (const std::string& t : tables_) known = known || t == raw.table;
      if (!known) {
        return Status::InvalidArgument("table '" + raw.table +
                                       "' is not in the FROM clause");
      }
      if (!db_.HasTable(raw.table)) {
        return Status::InvalidArgument("unknown table '" + raw.table + "'");
      }
      const Schema& schema = db_.table(raw.table).schema();
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        if (schema.column(c).name == raw.column) {
          return ColumnRef{raw.table, raw.column};
        }
      }
      return Status::InvalidArgument("table '" + raw.table +
                                     "' has no column '" + raw.column +
                                     "'");
    }
    std::string owner;
    for (const std::string& t : tables_) {
      if (!db_.HasTable(t)) {
        return Status::InvalidArgument("unknown table '" + t + "'");
      }
      const Schema& schema = db_.table(t).schema();
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        if (schema.column(c).name == raw.column) {
          if (!owner.empty()) {
            return Status::InvalidArgument("column '" + raw.column +
                                           "' is ambiguous (in '" + owner +
                                           "' and '" + t + "')");
          }
          owner = t;
        }
      }
    }
    if (owner.empty()) {
      return Status::InvalidArgument("column '" + raw.column +
                                     "' not found in any FROM table");
    }
    return ColumnRef{owner, raw.column};
  }

  Result<ViewDef> Resolve() const {
    ViewDef def;
    def.name = view_name_;
    def.tables = tables_;

    // Conditions: column=column -> join; column-op-literal -> predicate.
    for (const RawCondition& cond : conditions_) {
      Result<ColumnRef> left = ResolveColumn(cond.left);
      if (!left.ok()) return left.status();
      if (cond.right_column.has_value()) {
        if (cond.op != CompareOp::kEq) {
          return Status::InvalidArgument(
              "only equality joins between columns are supported");
        }
        Result<ColumnRef> right = ResolveColumn(*cond.right_column);
        if (!right.ok()) return right.status();
        def.joins.push_back(JoinConditionDef{*left, *right});
      } else {
        def.predicates.push_back(
            PredicateDef{*left, cond.op, *cond.literal});
      }
    }

    // Select items: at most one aggregate; plain items become output
    // columns (SPJ) or the implied group-by key (aggregate).
    std::vector<ColumnRef> plain;
    for (const RawItem& item : items_) {
      if (item.aggregate.has_value()) {
        if (def.aggregate.has_value()) {
          return Status::InvalidArgument(
              "at most one aggregate per view is supported");
        }
        AggregateDef agg;
        agg.kind = *item.aggregate;
        if (!item.count_star) {
          Result<ColumnRef> column = ResolveColumn(item.column);
          if (!column.ok()) return column.status();
          agg.column = *column;
        } else if (agg.kind != AggKind::kCount) {
          return Status::InvalidArgument("'*' is only valid in COUNT(*)");
        }
        def.aggregate = agg;
      } else {
        Result<ColumnRef> column = ResolveColumn(item.column);
        if (!column.ok()) return column.status();
        plain.push_back(*column);
      }
    }

    if (def.aggregate.has_value()) {
      def.group_by = plain;
      if (!group_by_.empty()) {
        // An explicit GROUP BY must list exactly the plain select items.
        std::vector<ColumnRef> explicit_keys;
        for (const RawColumn& raw : group_by_) {
          Result<ColumnRef> column = ResolveColumn(raw);
          if (!column.ok()) return column.status();
          explicit_keys.push_back(*column);
        }
        if (explicit_keys.size() != plain.size()) {
          return Status::InvalidArgument(
              "GROUP BY must list exactly the non-aggregate select "
              "columns");
        }
        for (size_t i = 0; i < plain.size(); ++i) {
          if (explicit_keys[i].table != plain[i].table ||
              explicit_keys[i].column != plain[i].column) {
            return Status::InvalidArgument(
                "GROUP BY columns must match the non-aggregate select "
                "columns in order");
          }
        }
      }
    } else {
      if (!group_by_.empty()) {
        return Status::InvalidArgument(
            "GROUP BY requires an aggregate select item");
      }
      if (plain.empty()) {
        return Status::InvalidArgument("empty select list");
      }
      def.output_columns = plain;
    }
    return def;
  }

  const Database& db_;
  std::string view_name_;
  std::string sql_;
  std::vector<Token> tokens_;
  size_t cursor_ = 0;

  std::vector<RawItem> items_;
  std::vector<std::string> tables_;
  std::vector<RawCondition> conditions_;
  std::vector<RawColumn> group_by_;
};

#undef ABIVM_RETURN_NOT_OK_RESULT

}  // namespace

Result<ViewDef> ParseViewSql(const Database& db,
                             const std::string& view_name,
                             const std::string& sql) {
  return Parser(db, view_name, sql).Run();
}

}  // namespace abivm
