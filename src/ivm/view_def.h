// Logical view definitions: select-project-equijoin cores with optional
// GROUP BY aggregation (COUNT / SUM / MIN / MAX). This covers the paper's
// evaluation view -- a scalar MIN over a 4-way join with a constant
// filter -- and the general shapes its framework targets.

#ifndef ABIVM_IVM_VIEW_DEF_H_
#define ABIVM_IVM_VIEW_DEF_H_

#include <optional>
#include <string>
#include <vector>

#include "exec/expression.h"
#include "storage/value.h"

namespace abivm {

/// A column of a named base table.
struct ColumnRef {
  std::string table;
  std::string column;
};

/// Equi-join condition left.column = right.column between two base tables.
struct JoinConditionDef {
  ColumnRef left;
  ColumnRef right;
};

/// Comparison of a base-table column against a constant.
struct PredicateDef {
  ColumnRef column;
  CompareOp op;
  Value constant;
};

enum class AggKind { kCount, kSum, kMin, kMax, kAvg };

const char* AggKindName(AggKind kind);

struct AggregateDef {
  AggKind kind = AggKind::kCount;
  /// Aggregated column; ignored for kCount.
  ColumnRef column;
};

/// A materialized view definition. Two shapes:
///   * SPJ view: no `aggregate`; the content is the bag of `output_columns`
///     projections of the join result.
///   * Aggregate view: `aggregate` set; the content is one aggregate value
///     per `group_by` key (scalar when `group_by` is empty).
struct ViewDef {
  std::string name;
  /// Distinct base tables; the join graph over them must be connected.
  std::vector<std::string> tables;
  std::vector<JoinConditionDef> joins;
  std::vector<PredicateDef> predicates;

  std::vector<ColumnRef> output_columns;  // SPJ views
  std::vector<ColumnRef> group_by;        // aggregate views
  std::optional<AggregateDef> aggregate;

  bool is_aggregate() const { return aggregate.has_value(); }
};

}  // namespace abivm

#endif  // ABIVM_IVM_VIEW_DEF_H_
