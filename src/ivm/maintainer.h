// ViewMaintainer: deferred, batch-incremental maintenance of one
// materialized view with an independent watermark per base table.
//
// Invariant: the view state always equals the view evaluated over the
// snapshot vector (R_1[v_1], ..., R_n[v_n]) where v_i is the version of
// the last processed modification of table i. Processing a batch of k
// modifications of table i joins their delta rows against every co-table
// at *its own* watermark (multiversion snapshots), advancing only v_i --
// exactly the asymmetric-batching model of the paper, with the state bug
// ruled out by construction. The view is consistent ("refreshed") when
// every watermark is at its delta log's head.

#ifndef ABIVM_IVM_MAINTAINER_H_
#define ABIVM_IVM_MAINTAINER_H_

#include <atomic>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "exec/operators.h"
#include "exec/pipeline_workspace.h"
#include "exec/profile.h"
#include "ivm/binding.h"
#include "ivm/view_state.h"
#include "obs/metrics.h"

namespace abivm {

/// Outcome of one ProcessBatch call.
struct BatchResult {
  /// Modifications consumed (== requested k).
  size_t processed = 0;
  /// Signed delta rows fed into the pipeline (an update contributes 2).
  size_t delta_rows_in = 0;
  /// Signed output rows applied to the view state.
  size_t view_updates = 0;
  /// Operator work counters for the whole pipeline run. On a failed
  /// ProcessBatchChecked these hold the work done before the failure, so
  /// callers can account for attempted (then discarded) work.
  ExecStats stats;
  /// Wall-clock time of delta computation + state application; on a
  /// failed call, the time spent until the failure.
  double wall_ms = 0.0;
  /// Per-operator breakdown of the pipeline run; filled only when
  /// profiling is enabled on the maintainer (empty otherwise). The
  /// per-stage slices sum exactly to `stats`.
  PipelineProfile profile;
};

class ViewMaintainer {
 public:
  /// Binds the view and materializes its initial content from the current
  /// database state. Watermarks start at the current head of every delta
  /// log (typically empty, right after bulk load). `options` exposes the
  /// planner toggles for ablations; defaults are production behaviour.
  ViewMaintainer(Database* db, ViewDef def, BindingOptions options = {});

  /// Tag selecting the recovery constructor: binds the view but does NOT
  /// materialize (no recompute, watermarks left at zero). The maintainer
  /// is unusable until RestoreForRecovery installs a checkpointed image;
  /// src/ckpt/ is the only intended caller.
  struct Unmaterialized {};
  ViewMaintainer(Unmaterialized, Database* db, ViewDef def,
                 BindingOptions options = {});

  /// Recovery-only: installs the exact checkpointed maintenance state --
  /// per-table watermark positions/versions and the view content with its
  /// raw incremental-history doubles. Watermark positions must lie within
  /// the (restored) delta logs; versions must not exceed the database
  /// clock. Only valid on an Unmaterialized maintainer.
  void RestoreForRecovery(std::vector<size_t> positions,
                          std::vector<Version> versions, ViewState state);

  const ViewBinding& binding() const { return binding_; }
  size_t num_tables() const { return binding_.num_tables(); }

  /// Per-operator profiling: when on, every ProcessBatch fills
  /// BatchResult::profile with one StageStats per pipeline stage. Off by
  /// default -- the unobserved path does no per-stage clock reads or
  /// allocations.
  void EnableProfiling(bool on) { profiling_ = on; }
  /// The raw EnableProfiling flag (save/restore for scoped profiling).
  bool profiling_requested() const { return profiling_; }
  /// True when ProcessBatch attributes per-stage slices (profiling was
  /// requested or a metrics registry is attached).
  bool profiling_enabled() const {
    return profiling_ || metrics_ != nullptr;
  }

  /// Attaches a metrics registry: interns one obs::Timer per delta
  /// pipeline stage (named `ivm.op.<table>.<stage slug>`) up front and
  /// records each stage's wall time on every batch -- implies profiling.
  /// Pass nullptr to detach and return to the unobserved fast path.
  void SetMetrics(obs::MetricRegistry* registry);
  obs::MetricRegistry* metrics() const { return metrics_; }

  /// Opt-in parallel scan-side probe: HashJoinScan steps split the
  /// scanned co-table into `partitions` contiguous row ranges (0 = one
  /// per pool thread) on `pool` when the table has at least `min_rows`
  /// physical rows. Results are bit-identical to the sequential path at
  /// every thread and partition count. The pool must outlive the
  /// maintainer (or a DisableParallelProbe call).
  void EnableParallelProbe(
      ThreadPool* pool, size_t partitions = 0,
      size_t min_rows = PipelineWorkspace::kDefaultProbeMinRows) {
    ws_.EnableParallelProbe(pool, partitions, min_rows);
  }
  void DisableParallelProbe() { ws_.DisableParallelProbe(); }

  /// The pooled pipeline workspace (counters: reuses, grow_events,
  /// arena_bytes_peak) -- read-only; tests pin grow_events() == 0 on the
  /// warm path.
  const PipelineWorkspace& workspace() const { return ws_; }

  /// Single-writer discipline, made checkable. A maintainer is owned by
  /// exactly one thread at a time: construction binds the constructing
  /// thread as the writer, and every mutating entry point (ProcessBatch*,
  /// RefreshAll*, VacuumConsumed*, RestoreForRecovery) CHECK-fails when
  /// entered from any other thread. RecomputeAtWatermarks* is logically
  /// const but reuses the pooled pipeline workspace, so it carries the
  /// same assertion -- a mis-threaded "read-only" oracle call would race
  /// the writer's workspace, and this makes it fail fast instead.
  /// Handing the maintainer to a different thread (e.g. a serving loop's
  /// maintenance thread) is legal exactly once the handoff is externally
  /// synchronized (thread creation / join / mutex); the new owner calls
  /// BindWriterToCurrentThread() before its first use. The check is one
  /// relaxed thread-id load + compare; -DABIVM_DISABLE_THREAD_ASSERTS
  /// compiles it out.
  void BindWriterToCurrentThread() {
    writer_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }
  bool BoundToCurrentThread() const {
    return writer_.load(std::memory_order_relaxed) ==
           std::this_thread::get_id();
  }

  /// Unprocessed modifications of base table i.
  size_t PendingCount(size_t i) const;

  /// All pending counts as a scheduler state vector.
  StateVec PendingVec() const;

  /// Processes the next k pending modifications of base table i (k must
  /// not exceed PendingCount(i)). With dry_run = true the work is done
  /// against a scratch copy of the state and no watermark advances --
  /// used by cost calibration. CHECK-fails on injected faults; robust
  /// callers (the engine runner) use ProcessBatchChecked.
  BatchResult ProcessBatch(size_t i, size_t k, bool dry_run = false);

  /// Crash-consistent variant: stages all view-state mutations until the
  /// whole delta pipeline has succeeded, then commits state, watermark
  /// position, and snapshot version together. A failure -- injected at
  /// any failpoint site, or a bad argument -- leaves the view state,
  /// positions, and versions EXACTLY as before (the recompute oracle
  /// still matches), so the caller may simply retry. On success `*result`
  /// holds what ProcessBatch would have returned.
  Status ProcessBatchChecked(size_t i, size_t k, BatchResult* result,
                             bool dry_run = false);

  /// Processes everything pending, bringing the view up to date.
  /// CHECK-fails on injected faults.
  void RefreshAll();

  /// Status-returning RefreshAll. Stops at the first failed batch; the
  /// already-processed prefix stays committed (each batch is atomic), so
  /// a retry resumes where it left off.
  Status RefreshAllChecked();

  /// True iff every watermark is at its log's head.
  bool IsConsistent() const;

  const ViewState& state() const { return state_; }

  /// Starts (or restarts) dirty-key tracking on the maintained view
  /// content, for incremental checkpoint capture (ProcessBatch commits
  /// deltas to state_ in place, so ViewState::Apply sees every real
  /// mutation; dry-run scratch copies are discarded and never tracked).
  void BeginViewDirtyTracking() { state_.BeginDirtyTracking(); }

  /// Recomputes the view from scratch at the current watermark snapshot
  /// vector -- the correctness oracle for tests. CHECK-fails on injected
  /// faults (disarm failpoints before consulting the oracle).
  ViewState RecomputeAtWatermarks() const;

  /// Status-returning recompute (fails only on injected faults). When
  /// `profile` is non-null it receives the per-operator breakdown of the
  /// recompute pipeline (a leading SCAN stage plus the join steps).
  Result<ViewState> RecomputeAtWatermarksChecked(
      PipelineProfile* profile = nullptr) const;

  /// Version of the snapshot table i is maintained at.
  Version watermark_version(size_t i) const;

  /// Delta-log position of the next unprocessed modification of table i.
  size_t watermark_position(size_t i) const;

  /// Garbage-collects what this view no longer needs: every base table's
  /// row versions before its watermark and the consumed delta-log
  /// prefixes. Only safe when this maintainer is the sole consumer of the
  /// database's history (multiple views over one database must vacuum with
  /// the minimum watermark across all of them instead). Returns the
  /// number of row versions reclaimed.
  size_t VacuumConsumed();

  /// VacuumConsumed with an external safe-version cap -- the durability
  /// layer passes its last published checkpoint's version clock, so no
  /// row version or delta-log entry the on-disk image's recovery redo
  /// would need to read is ever reclaimed. Per base table i the safe
  /// version is min(watermark_version(i), cap); the consumed delta-log
  /// prefix is trimmed at watermark_position(i). Carries the `gc.vacuum`
  /// failpoint per table, fired BEFORE that table is mutated; an
  /// injected fault leaves it untouched. Outputs (optional): row
  /// versions reclaimed and delta-log entries trimmed.
  Status VacuumConsumedBelow(Version cap, size_t* rows_reclaimed,
                             size_t* log_entries_trimmed);

 private:
  // The writer-thread assertion behind the single-writer discipline (see
  // BindWriterToCurrentThread). Const because logically-const entry
  // points that touch pooled scratch assert too.
  void AssertWriter() const;

  // ProcessBatchChecked's body; the public wrapper adds the writer
  // assertion and the ivm.batch_ms latency recording on commit.
  Status ProcessBatchImpl(size_t i, size_t k, BatchResult* result,
                          bool dry_run);

  // Staged outcome of a delta pipeline: net signed multiplicity per
  // extracted (key columns ++ aggregate value) row. Applying it to the
  // view state is pure in-memory work with no failpoint sites, so the
  // commit of state + watermarks is atomic under injected faults.
  using NetDelta = std::unordered_map<Row, int64_t, RowHash>;

  // Runs `pipeline` on the batch `*cur` points at, in place on the
  // workspace's pooled batches (joins ping-pong between them; on return
  // `*cur` points at whichever batch holds the finished delta rows --
  // `*cur` must be one of ws_.batch_a()/batch_b()). With a null `profile`
  // this is the unobserved fast path (no per-stage clock reads);
  // otherwise each stage gets its own StageStats slice and the slices are
  // summed into `*stats`, so breakdown and totals cannot disagree. On
  // failure the work done so far is still in `*stats` (and the executed
  // stages in `*profile`).
  Status RunPipeline(const BoundPipeline& pipeline, PooledBatch** cur,
                     ExecStats* stats, PipelineProfile* profile) const;

  // Profiled variant of the pipeline loop (see RunPipeline).
  Status RunPipelineProfiled(const BoundPipeline& pipeline,
                             PooledBatch** cur, ExecStats* stats,
                             PipelineProfile* profile) const;

  // Net-aggregates finished rows per extracted (key, aggregate) row into
  // the pooled `*net` (cleared first; buckets and the per-key rows of
  // surviving capacity are reused -- only distinct keys allocate).
  void ExtractNet(const BoundPipeline& pipeline, const PooledBatch& batch,
                  NetDelta* net) const;

  // Applies a staged net delta to `target`; returns rows touched.
  size_t ApplyNet(const NetDelta& net, ViewState* target) const;

  Database* db_;
  ViewBinding binding_;
  ViewState state_;
  /// Per-table position in the delta log (modifications consumed).
  std::vector<size_t> positions_;
  /// Per-table snapshot version the view reflects.
  std::vector<Version> versions_;
  /// Profiling/observability (see EnableProfiling / SetMetrics).
  bool profiling_ = false;
  obs::MetricRegistry* metrics_ = nullptr;
  /// stage_timers_[i][s]: interned timer of stage s of delta pipeline i;
  /// built by SetMetrics so the per-batch path never does a name lookup.
  std::vector<std::vector<obs::Timer*>> stage_timers_;
  /// Workspace counters interned by SetMetrics (exported after every
  /// batch): `exec.workspace_reuses` / `exec.arena_bytes_peak`.
  obs::Counter* ws_reuses_counter_ = nullptr;
  obs::Counter* ws_peak_counter_ = nullptr;
  /// Per-batch ProcessBatch wall time (committed, non-dry-run batches
  /// only), interned by SetMetrics as the `ivm.batch_ms` latency
  /// histogram -- quantile-capable, unlike the per-stage timers.
  obs::LatencyHistogram* batch_latency_ = nullptr;
  /// Owning thread for the single-writer assertion; rebound by
  /// BindWriterToCurrentThread on a synchronized handoff.
  mutable std::atomic<std::thread::id> writer_{std::this_thread::get_id()};
  /// Pooled pipeline storage. Mutable: RecomputeAtWatermarks is logically
  /// const but reuses the same pooled buffers (capacity-only state).
  mutable PipelineWorkspace ws_;
  /// Pooled net-delta scratch (ExtractNet / ApplyNet).
  mutable NetDelta net_;
  mutable Row extract_scratch_;
  mutable Row key_scratch_;
};

}  // namespace abivm

#endif  // ABIVM_IVM_MAINTAINER_H_
