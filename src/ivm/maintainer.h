// ViewMaintainer: deferred, batch-incremental maintenance of one
// materialized view with an independent watermark per base table.
//
// Invariant: the view state always equals the view evaluated over the
// snapshot vector (R_1[v_1], ..., R_n[v_n]) where v_i is the version of
// the last processed modification of table i. Processing a batch of k
// modifications of table i joins their delta rows against every co-table
// at *its own* watermark (multiversion snapshots), advancing only v_i --
// exactly the asymmetric-batching model of the paper, with the state bug
// ruled out by construction. The view is consistent ("refreshed") when
// every watermark is at its delta log's head.

#ifndef ABIVM_IVM_MAINTAINER_H_
#define ABIVM_IVM_MAINTAINER_H_

#include <string>
#include <vector>

#include "core/types.h"
#include "exec/operators.h"
#include "ivm/binding.h"
#include "ivm/view_state.h"

namespace abivm {

/// Outcome of one ProcessBatch call.
struct BatchResult {
  /// Modifications consumed (== requested k).
  size_t processed = 0;
  /// Signed delta rows fed into the pipeline (an update contributes 2).
  size_t delta_rows_in = 0;
  /// Signed output rows applied to the view state.
  size_t view_updates = 0;
  /// Operator work counters for the whole pipeline run.
  ExecStats stats;
  /// Wall-clock time of delta computation + state application.
  double wall_ms = 0.0;
};

class ViewMaintainer {
 public:
  /// Binds the view and materializes its initial content from the current
  /// database state. Watermarks start at the current head of every delta
  /// log (typically empty, right after bulk load). `options` exposes the
  /// planner toggles for ablations; defaults are production behaviour.
  ViewMaintainer(Database* db, ViewDef def, BindingOptions options = {});

  const ViewBinding& binding() const { return binding_; }
  size_t num_tables() const { return binding_.num_tables(); }

  /// Unprocessed modifications of base table i.
  size_t PendingCount(size_t i) const;

  /// All pending counts as a scheduler state vector.
  StateVec PendingVec() const;

  /// Processes the next k pending modifications of base table i (k must
  /// not exceed PendingCount(i)). With dry_run = true the work is done
  /// against a scratch copy of the state and no watermark advances --
  /// used by cost calibration.
  BatchResult ProcessBatch(size_t i, size_t k, bool dry_run = false);

  /// Processes everything pending, bringing the view up to date.
  void RefreshAll();

  /// True iff every watermark is at its log's head.
  bool IsConsistent() const;

  const ViewState& state() const { return state_; }

  /// Recomputes the view from scratch at the current watermark snapshot
  /// vector -- the correctness oracle for tests.
  ViewState RecomputeAtWatermarks() const;

  /// Version of the snapshot table i is maintained at.
  Version watermark_version(size_t i) const;

  /// Delta-log position of the next unprocessed modification of table i.
  size_t watermark_position(size_t i) const;

  /// Garbage-collects what this view no longer needs: every base table's
  /// row versions before its watermark and the consumed delta-log
  /// prefixes. Only safe when this maintainer is the sole consumer of the
  /// database's history (multiple views over one database must vacuum with
  /// the minimum watermark across all of them instead). Returns the
  /// number of row versions reclaimed.
  size_t VacuumConsumed();

 private:
  // Runs `pipeline` on `batch` with co-table snapshots taken from the
  // current watermark versions, applying results to `target`.
  size_t RunPipeline(const BoundPipeline& pipeline, DeltaBatch batch,
                     ViewState* target, ExecStats* stats) const;

  // Applies extraction (key/aggregate columns) of finished rows.
  size_t ApplyToState(const BoundPipeline& pipeline,
                      const DeltaBatch& batch, ViewState* target) const;

  Database* db_;
  ViewBinding binding_;
  ViewState state_;
  /// Per-table position in the delta log (modifications consumed).
  std::vector<size_t> positions_;
  /// Per-table snapshot version the view reflects.
  std::vector<Version> versions_;
};

}  // namespace abivm

#endif  // ABIVM_IVM_MAINTAINER_H_
