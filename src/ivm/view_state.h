// Materialized view contents, maintained under signed deltas.
//
// A single representation serves both view shapes:
//   * SPJ views: a bag of output rows (key = projected row, count = bag
//     multiplicity).
//   * Aggregate views: one group state per GROUP BY key (empty key for
//     scalar aggregates). MIN/MAX keep an ordered multiset of contributing
//     values so deletions are exact without recomputation -- the standard
//     fix for MIN/MAX not being incrementally maintainable from the
//     aggregate value alone (the issue the paper's SQL scripts fight).

#ifndef ABIVM_IVM_VIEW_STATE_H_
#define ABIVM_IVM_VIEW_STATE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "ivm/view_def.h"
#include "storage/value.h"

namespace abivm {

/// Per-group accumulator.
struct GroupState {
  int64_t count = 0;
  double sum = 0.0;
  /// Ordered multiset of contributing values (MIN/MAX kinds only).
  std::map<Value, int64_t> values;
};

/// The maintained content of a materialized view. Copyable (dry-run
/// maintenance clones it).
class ViewState {
 public:
  /// SPJ view state (bag of rows).
  ViewState() : aggregate_(std::nullopt) {}
  /// Aggregate view state.
  explicit ViewState(AggKind kind) : aggregate_(kind) {}

  /// Permits negative multiplicities. Only scratch states used by dry-run
  /// maintenance (which apply deltas without the base content) need this;
  /// real view states keep the strict non-negativity invariant.
  void AllowNegativeMultiplicities() { allow_negative_ = true; }

  bool is_aggregate() const { return aggregate_.has_value(); }

  /// Applies one signed delta. For SPJ views `value` is ignored; for
  /// COUNT it is ignored too; for SUM/MIN/MAX it is the aggregated value.
  void Apply(const Row& key, const Value& value, int64_t mult);

  /// Number of distinct keys (groups / distinct output rows).
  size_t NumKeys() const { return groups_.size(); }

  /// Bag multiplicity of an SPJ output row (0 when absent).
  int64_t RowMultiplicity(const Row& row) const;

  /// Number of join rows contributing to a group (0 when absent).
  int64_t GroupContributors(const Row& key) const;

  std::optional<double> GroupSum(const Row& key) const;
  /// sum / count; nullopt for empty groups.
  std::optional<double> GroupAvg(const Row& key) const;
  std::optional<Value> GroupMin(const Row& key) const;
  std::optional<Value> GroupMax(const Row& key) const;

  /// Scalar-aggregate conveniences (empty group key).
  std::optional<Value> ScalarMin() const { return GroupMin(Row{}); }
  std::optional<Value> ScalarMax() const { return GroupMax(Row{}); }
  std::optional<double> ScalarSum() const { return GroupSum(Row{}); }
  int64_t ScalarCount() const { return GroupContributors(Row{}); }

  /// Deterministic ordered snapshot for equality checks in tests.
  std::map<Row, GroupState> Snapshot() const;

  /// Exact content equality (counts, sums within 1e-6, multisets).
  bool SameContents(const ViewState& other) const;

  /// Recovery-only (src/ckpt/): installs one group's accumulator exactly
  /// as checkpointed -- including the raw double `sum`, which an
  /// incremental maintenance history produces in a different rounding
  /// order than a fresh recompute would. The key must be absent (the
  /// state is rebuilt from empty) and the group non-degenerate.
  void RestoreGroupForRecovery(Row key, GroupState group);

  /// Starts (or restarts) checkpoint dirty tracking: subsequent Apply
  /// calls record the touched keys, so an incremental checkpoint
  /// serializes only groups that changed (or vanished) since the last
  /// image instead of the whole view. The durability layer calls this
  /// right after each publish. O(1) amortized per Apply once enabled,
  /// free otherwise.
  void BeginDirtyTracking();

  /// Keys touched by Apply since BeginDirtyTracking (a key whose group
  /// was erased still appears here -- the capture layer distinguishes
  /// changed from removed by probing GroupOrNull).
  const std::unordered_set<Row, RowHash>& dirty_keys() const {
    return dirty_keys_;
  }

  bool dirty_tracking() const { return dirty_tracking_; }

  /// The group for `key`, or nullptr when absent (checkpoint capture).
  const GroupState* GroupOrNull(const Row& key) const {
    auto it = groups_.find(key);
    return it == groups_.end() ? nullptr : &it->second;
  }

  std::string ToString() const;

 private:
  std::optional<AggKind> aggregate_;
  bool allow_negative_ = false;
  std::unordered_map<Row, GroupState, RowHash> groups_;
  bool dirty_tracking_ = false;
  std::unordered_set<Row, RowHash> dirty_keys_;
};

}  // namespace abivm

#endif  // ABIVM_IVM_VIEW_STATE_H_
