// PlannerWorkspace: the reusable search workspace behind FindOptimalLgmPlan.
//
// The A* planner keeps all per-search storage -- flat state/action arenas,
// the open-addressing intern table, the frontier heap, and the per-table
// heuristic caches + arrival suffix rows -- in one object. A one-shot call
// (FindOptimalLgmPlan without a workspace argument) builds a scratch
// workspace on the stack; repeat callers (ReplanningPolicy re-planning on
// successive projected instances, sweep plan jobs, engine runs) hold one
// across calls so every search after the first reuses the grown capacity
// instead of re-allocating it. Search results are bit-identical either
// way: the workspace only pools CAPACITY, never carries logical state from
// one search into the next (corpus-enforced by
// tests/core/astar_workspace_test.cc).
//
// Lifetime and aliasing rules (see DESIGN.md 5g):
//   * A workspace serves ONE search at a time; it is not thread-safe.
//     Concurrent searches need one workspace each (sweep jobs hold a
//     per-closure workspace for exactly this reason).
//   * Pointers/slices into the arenas (node states, action slots) are
//     invalidated whenever a search interns a node and the arena grows --
//     the same hazard as within a single search (astar.cc copies a node's
//     state to scratch before expanding it) -- and additionally by
//     Reset(), so nothing may retain an arena pointer across searches.
//   * PlanSearchResult deep-copies everything it returns, so results
//     remain valid after the workspace is reused or destroyed.

#ifndef ABIVM_CORE_ASTAR_WORKSPACE_H_
#define ABIVM_CORE_ASTAR_WORKSPACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.h"
#include "cost/cost_function.h"

namespace abivm {

namespace astar_internal {

class Search;

// Per-node search bookkeeping. A node of the LGM plan graph is a
// (time, post-action state) pair; the state vectors themselves live in a
// flat arena (`PlannerWorkspace::node_state_`, n counts per node) rather
// than in per-node heap blocks, and the incoming best action lives in a
// parallel arena slot, so growing the graph never allocates per node.
struct NodeInfo {
  double g = 0.0;
  // Cached heuristic value h(t, state): a pure function of the node, so
  // it is computed once on the node's first improving relaxation and
  // reused by every later queue push (< 0 means not yet computed).
  double h = -1.0;
  // Back-pointer for plan reconstruction: the predecessor node; the
  // action taken on the incoming optimal edge sits in the action arena.
  int32_t parent = -1;
  TimeStep action_time = -1;
  bool expanded = false;  // doubles as the closed-set membership bit
};

struct FrontierEntry {
  double f;       // g + h
  double g;       // tie-break: prefer larger g (deeper, more informed)
  int32_t node;

  bool operator>(const FrontierEntry& other) const {
    if (f != other.f) return f > other.f;
    if (g != other.g) return g < other.g;
    return node > other.node;
  }
};

}  // namespace astar_internal

/// Reusable storage for FindOptimalLgmPlan. Default-constructed empty;
/// grows on first use and keeps its capacity across searches. Movable is
/// deliberately disabled along with copy: the search holds raw pointers
/// into the arenas while running.
class PlannerWorkspace {
 public:
  PlannerWorkspace() = default;
  PlannerWorkspace(const PlannerWorkspace&) = delete;
  PlannerWorkspace& operator=(const PlannerWorkspace&) = delete;

  /// Searches run on this workspace so far.
  uint64_t searches() const { return searches_; }
  /// Searches that found warm capacity to reuse (every search after the
  /// first); exported as the `astar.workspace_reuses` counter.
  uint64_t reuses() const { return searches_ == 0 ? 0 : searches_ - 1; }
  /// Searches during which some pooled buffer's capacity grew. Once the
  /// workspace has warmed up on a family of similar instances this stays
  /// flat -- the deterministic "no allocations on the warm path" signal
  /// the replanning bench tier guards.
  uint64_t grow_events() const { return grow_events_; }
  /// High-water mark of bytes held across all pooled buffers (capacity,
  /// not size); exported as the `astar.arena_bytes_peak` counter.
  size_t arena_bytes_peak() const { return arena_bytes_peak_; }

 private:
  friend class astar_internal::Search;

  /// Capacity-based byte total over every pooled buffer.
  size_t PooledBytes() const {
    const size_t action_entries =
        actions_.capacity() * sizeof(StateVec);  // inner buffers vary
    return batch_bound_.capacity() * sizeof(Count) +
           batch_bound_cost_.capacity() * sizeof(double) +
           star_shaped_.capacity() / 8 +
           fns_.capacity() * sizeof(const CostFunction*) +
           suffix_.capacity() * sizeof(Count) +
           nodes_.capacity() * sizeof(astar_internal::NodeInfo) +
           node_t_.capacity() * sizeof(TimeStep) +
           node_hash_.capacity() * sizeof(size_t) +
           node_state_.capacity() * sizeof(Count) +
           node_action_.capacity() * sizeof(Count) +
           buckets_.capacity() * sizeof(int32_t) +
           frontier_.capacity() * sizeof(astar_internal::FrontierEntry) +
           action_costs_.capacity() * sizeof(double) + action_entries;
  }

  /// Clears logical contents for a fresh search while keeping capacity.
  /// The intern table keeps its size (slots are re-emptied, not freed):
  /// table size never affects which nodes are interned or in what order,
  /// only the probe sequences, so results stay bit-identical.
  void BeginSearch() {
    nodes_.clear();
    node_t_.clear();
    node_hash_.clear();
    node_state_.clear();
    node_action_.clear();
    if (!buckets_.empty()) buckets_.assign(buckets_.size(), -1);
    frontier_.clear();
    bytes_at_begin_ = PooledBytes();
  }

  void FinishSearch() {
    ++searches_;
    const size_t bytes = PooledBytes();
    if (bytes > bytes_at_begin_) ++grow_events_;
    if (bytes > arena_bytes_peak_) arena_bytes_peak_ = bytes;
  }

  // Per-instance heuristic terms (rewritten in full by every search).
  std::vector<Count> batch_bound_;
  std::vector<double> batch_bound_cost_;
  std::vector<bool> star_shaped_;
  std::vector<const CostFunction*> fns_;
  std::vector<Count> suffix_;  // (horizon + 2) rows of n suffix totals

  // Node storage: parallel flat arrays indexed by node id. States and
  // incoming best actions are n-count arena slices.
  std::vector<astar_internal::NodeInfo> nodes_;
  std::vector<TimeStep> node_t_;
  std::vector<size_t> node_hash_;
  std::vector<Count> node_state_;
  std::vector<Count> node_action_;
  // Open-addressing intern table over node ids (-1 = empty slot),
  // power-of-two sized, linear probing, load factor <= 0.75.
  std::vector<int32_t> buckets_;
  size_t bucket_mask_ = 0;

  // Frontier min-heap storage (std::push_heap/pop_heap over a plain
  // vector, which is exactly what std::priority_queue does underneath --
  // kept as a vector so clear() preserves capacity across searches).
  std::vector<astar_internal::FrontierEntry> frontier_;

  // Scratch buffers for the per-expansion work (key copy, pre-state
  // accumulation, successor states, enumerated actions).
  StateVec expand_state_;
  StateVec pre_state_;
  StateVec post_state_;
  std::vector<StateVec> actions_;
  std::vector<double> action_costs_;

  uint64_t searches_ = 0;
  uint64_t grow_events_ = 0;
  size_t arena_bytes_peak_ = 0;
  size_t bytes_at_begin_ = 0;
};

}  // namespace abivm

#endif  // ABIVM_CORE_ASTAR_WORKSPACE_H_
