// Maintenance plans (Definition 1) and the problem instance they are
// evaluated against: validity checking, cost, state trajectories, and the
// Lazy / Greedy / Minimal structural predicates of Section 3.

#ifndef ABIVM_CORE_PLAN_H_
#define ABIVM_CORE_PLAN_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/arrivals.h"
#include "core/cost_model.h"
#include "core/types.h"

namespace abivm {

/// One complete input to the scheduling problem (Section 2): a view over n
/// base tables with per-table cost functions, an arrival sequence over
/// [0, T] with refresh at T, and the response-time budget C.
struct ProblemInstance {
  CostModel cost_model;
  ArrivalSequence arrivals;
  double budget;  // C

  size_t n() const { return cost_model.n(); }
  TimeStep horizon() const { return arrivals.horizon(); }
};

/// A maintenance plan P = p_0 .. p_T, stored sparsely (only non-zero
/// actions). Zero vectors at unlisted steps are implicit.
class MaintenancePlan {
 public:
  MaintenancePlan(size_t n, TimeStep horizon);

  size_t n() const { return n_; }
  TimeStep horizon() const { return horizon_; }

  /// Sets p_t = amounts (replacing any previous action at t). A zero
  /// vector removes the entry.
  void SetAction(TimeStep t, StateVec amounts);

  /// p_t (zero vector if no action recorded at t).
  StateVec ActionAt(TimeStep t) const;

  /// All non-zero actions in increasing time order.
  const std::map<TimeStep, StateVec>& actions() const { return actions_; }

  /// Number of non-zero actions that touch table i (|P(i)| in the paper).
  size_t ActionCountForTable(size_t i) const;

  /// Total plan cost f(P) = sum_t f(p_t) under the given model.
  double TotalCost(const CostModel& model) const;

  std::string ToString() const;

 private:
  size_t n_;
  TimeStep horizon_;
  std::map<TimeStep, StateVec> actions_;
};

/// Per-step states induced by running a plan against an arrival sequence.
struct PlanTrajectory {
  /// pre[t] = s_t (after arrivals at t, before the action).
  std::vector<StateVec> pre;
  /// post[t] = s_{t+} (after the action at t).
  std::vector<StateVec> post;
};

/// Computes the trajectory; CHECK-fails if any action removes more than
/// accumulated (use ValidatePlan first for untrusted plans).
PlanTrajectory ComputeTrajectory(const ArrivalSequence& arrivals,
                                 const MaintenancePlan& plan);

/// Full Definition-1 validity: every action feasible (0 <= p_t <= s_t),
/// every post-action state within budget for t < T, and p_T = s_T.
Status ValidatePlan(const ProblemInstance& instance,
                    const MaintenancePlan& plan);

/// True iff every non-zero action happens at a full pre-action state
/// (Definition 2; the final refresh action at T is exempt).
bool IsLazy(const ProblemInstance& instance, const MaintenancePlan& plan);

/// True iff every action empties each delta table it touches
/// (Definition 3, greediness).
bool IsGreedy(const ProblemInstance& instance, const MaintenancePlan& plan);

/// True iff no action before T could drop one of its non-zero components
/// and still satisfy the budget (Definition 3, minimality).
bool IsMinimal(const ProblemInstance& instance, const MaintenancePlan& plan);

/// Lazy && Greedy && Minimal.
bool IsLgm(const ProblemInstance& instance, const MaintenancePlan& plan);

}  // namespace abivm

#endif  // ABIVM_CORE_PLAN_H_
