// Exhaustive reference planners used as test oracles for the search
// algorithms and for the approximation-bound experiments. Exponential in
// the worst case -- small instances only.

#ifndef ABIVM_CORE_EXHAUSTIVE_H_
#define ABIVM_CORE_EXHAUSTIVE_H_

#include "core/plan.h"

namespace abivm {

/// Memoized depth-first search over the full LGM plan graph (same graph as
/// the A* planner, independent implementation). Returns a minimum-cost LGM
/// plan; its cost must equal FindOptimalLgmPlan's.
MaintenancePlan ExhaustiveLgmPlan(const ProblemInstance& instance);

/// Memoized search over *all lazy* plans with arbitrary (not necessarily
/// greedy or minimal) valid actions. By Lemma 1 the best lazy plan is
/// globally optimal, so this computes OPT. The action space at a full state
/// s is every sub-vector q <= s with f(s - q) <= C, so this explodes very
/// quickly; use only with tiny counts.
MaintenancePlan ExhaustiveOptimalPlan(const ProblemInstance& instance);

}  // namespace abivm

#endif  // ABIVM_CORE_EXHAUSTIVE_H_
