// Policy: the runtime decision interface consumed by the simulator and by
// the real-engine runner. A policy sees time advance one step at a time
// (arrivals, then the current delta-table sizes) and decides how much to
// process. The final refresh at T is forced by the runner, not the policy.

#ifndef ABIVM_CORE_POLICY_H_
#define ABIVM_CORE_POLICY_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "core/cost_model.h"
#include "core/types.h"
#include "obs/metrics.h"

namespace abivm {

/// Interface for maintenance policies (NAIVE, ONLINE, precomputed plans,
/// ADAPT). Policies are stateful; call Reset before reuse.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Prepares the policy for a fresh run against `n` delta tables with the
  /// given cost model and response-time budget C.
  virtual void Reset(const CostModel& model, double budget) = 0;

  /// Decides the action at time t. `arrivals_now` is d_t and `pre_state`
  /// is s_t (arrivals already included). Must return a vector with
  /// component-wise amounts <= pre_state; the zero vector means no action.
  virtual StateVec Act(TimeStep t, const StateVec& pre_state,
                       const StateVec& arrivals_now) = 0;

  /// Display name for traces and experiment tables.
  virtual std::string name() const = 0;

  /// Publishes the policy's decision statistics (if any) into `registry`
  /// as `<policy>.*` counters/timers. Called by the sweep engine after a
  /// run; the default exports nothing.
  virtual void ExportMetrics(obs::MetricRegistry& registry) const {
    (void)registry;
  }

  /// Policy-state snapshots (durability layer). A policy that returns
  /// true here serializes its COMPLETE decision state in SaveState:
  /// restoring the blob into a freshly Reset policy must reproduce, bit
  /// for bit, every decision the saved policy would have made. The
  /// durability manager embeds the blob in each checkpoint image, which
  /// is what entitles it to trim the WAL below the image -- a policy
  /// without snapshot support instead needs decision replay over every
  /// logged step from 0, so its WAL is never trimmed.
  virtual bool SupportsStateSnapshot() const { return false; }

  /// Serializes the decision state (only meaningful when
  /// SupportsStateSnapshot()). An EMPTY return means "no snapshot
  /// available" -- snapshot policies return it before their first
  /// Reset, and consumers (the durability manager) must treat it as
  /// absent rather than restorable. The default returns an empty blob.
  virtual std::string SaveState() const { return {}; }

  /// Restores a SaveState blob into this policy. Call Reset(model,
  /// budget) first -- the blob carries decision state, not the problem
  /// binding. The default (non-snapshot policies) is Unimplemented.
  virtual Status RestoreState(std::string_view blob) {
    (void)blob;
    return Status::Unimplemented(name() +
                                 " does not support state snapshots");
  }
};

}  // namespace abivm

#endif  // ABIVM_CORE_POLICY_H_
