#include "core/plan_policies.h"

#include <algorithm>

#include "core/actions.h"

namespace abivm {

PrecomputedPlanPolicy::PrecomputedPlanPolicy(MaintenancePlan plan,
                                             std::string display_name)
    : plan_(std::move(plan)), display_name_(std::move(display_name)) {}

void PrecomputedPlanPolicy::Reset(const CostModel& model, double budget) {
  model_ = model;
  budget_ = budget;
  deviations_ = 0;
}

StateVec PrecomputedPlanPolicy::ScheduledAction(TimeStep t) const {
  if (t > plan_.horizon()) return ZeroVec(plan_.n());
  return plan_.ActionAt(t);
}

StateVec PrecomputedPlanPolicy::Act(TimeStep t, const StateVec& pre_state,
                                    const StateVec& /*arrivals_now*/) {
  ABIVM_CHECK_MSG(model_.has_value(), "policy not Reset()");
  StateVec action = ScheduledAction(t);
  bool clamped = false;
  for (size_t i = 0; i < action.size(); ++i) {
    if (action[i] > pre_state[i]) {
      action[i] = pre_state[i];
      clamped = true;
    }
  }
  if (model_->IsFull(SubVec(pre_state, action), budget_)) {
    // The projection the plan was computed from no longer matches reality;
    // stay valid with the cheapest minimal greedy flush.
    ++deviations_;
    return CheapestMinimalGreedyAction(*model_, budget_, pre_state);
  }
  if (clamped) ++deviations_;
  return action;
}

AdaptPolicy::AdaptPolicy(MaintenancePlan plan_for_t0)
    : PrecomputedPlanPolicy(std::move(plan_for_t0), "ADAPT"),
      period_(plan().horizon() + 1) {}

StateVec AdaptPolicy::ScheduledAction(TimeStep t) const {
  return plan().ActionAt(t % period_);
}

}  // namespace abivm
