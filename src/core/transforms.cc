#include "core/transforms.h"

#include "core/actions.h"

namespace abivm {

MaintenancePlan MakeLazyPlan(const ProblemInstance& instance,
                             const MaintenancePlan& plan) {
  ABIVM_CHECK(ValidatePlan(instance, plan).ok());
  const TimeStep horizon = instance.horizon();
  MaintenancePlan lazy(plan.n(), horizon);

  StateVec accumulated = ZeroVec(plan.n());  // actions of P not yet applied
  StateVec state = ZeroVec(plan.n());        // pre-action state under Q
  for (TimeStep t = 0; t <= horizon; ++t) {
    accumulated = AddVec(accumulated, plan.ActionAt(t));
    state = AddVec(state, instance.arrivals.At(t));
    if (instance.cost_model.IsFull(state, instance.budget) || t == horizon) {
      lazy.SetAction(t, accumulated);
      state = SubVec(state, accumulated);
      accumulated = ZeroVec(plan.n());
    }
  }
  return lazy;
}

MaintenancePlan MakeLgmPlan(const ProblemInstance& instance,
                            const MaintenancePlan& plan) {
  ABIVM_CHECK(ValidatePlan(instance, plan).ok());
  const TimeStep horizon = instance.horizon();
  const size_t n = plan.n();
  const PlanTrajectory p_traj =
      ComputeTrajectory(instance.arrivals, plan);

  MaintenancePlan lgm(n, horizon);
  StateVec state = ZeroVec(n);  // pre-action state under Q
  for (TimeStep t = 0; t < horizon; ++t) {
    state = AddVec(state, instance.arrivals.At(t));
    if (instance.cost_model.IsFull(state, instance.budget)) {
      // Flush table i iff Q has accumulated strictly more than P's
      // post-action state retains (Lines 5-9 of MAKELGMPLAN).
      const StateVec& p_post = p_traj.post[static_cast<size_t>(t)];
      StateVec greedy = ZeroVec(n);
      for (size_t i = 0; i < n; ++i) {
        if (state[i] > p_post[i]) greedy[i] = state[i];
      }
      const StateVec minimal =
          MinimizeAction(instance.cost_model, instance.budget, state, greedy);
      lgm.SetAction(t, minimal);
      state = SubVec(state, minimal);
    }
  }
  // q_T = pre-action state at T (refresh).
  state = AddVec(state, instance.arrivals.At(horizon));
  lgm.SetAction(horizon, state);
  return lgm;
}

}  // namespace abivm
