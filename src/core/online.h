// The online heuristic of Section 4.3: no knowledge of the arrival
// sequence or the refresh time. On every constraint violation it picks the
// greedy, minimal, valid action q minimizing the amortized-cost measure
//   H(q) = (F_t + f(q)) / (t + TimeToFull(s_t - q)),
// where F_t is the cost paid so far and TimeToFull predicts how long the
// post-action state can keep batching given the recent arrival rates.

#ifndef ABIVM_CORE_ONLINE_H_
#define ABIVM_CORE_ONLINE_H_

#include <optional>
#include <string>
#include <vector>

#include "core/policy.h"

namespace abivm {

/// Tuning knobs for OnlinePolicy.
struct OnlineOptions {
  /// EWMA weight of the newest observation when estimating per-table
  /// arrival rates (v_t in the paper). 1.0 = only the last step matters.
  double rate_ewma_alpha = 0.2;
  /// Cap on the TimeToFull prediction (steps); also returned when the
  /// estimated rates are all zero.
  TimeStep max_time_to_full = 1'000'000'000;
};

class OnlinePolicy final : public Policy {
 public:
  /// Decision counters for the metrics layer (reset by Reset()).
  struct Stats {
    uint64_t actions_taken = 0;
    uint64_t candidates_evaluated = 0;
    uint64_t time_to_full_calls = 0;
  };

  explicit OnlinePolicy(OnlineOptions options = {});

  void Reset(const CostModel& model, double budget) override;
  StateVec Act(TimeStep t, const StateVec& pre_state,
               const StateVec& arrivals_now) override;
  std::string name() const override { return "ONLINE"; }
  void ExportMetrics(obs::MetricRegistry& registry) const override;

  /// Complete decision state (EWMA rates, accumulated cost F_t, decision
  /// counters): a restored policy reproduces the saved one's decision
  /// sequence bit-exactly, so recovery can skip decision replay.
  bool SupportsStateSnapshot() const override { return true; }
  std::string SaveState() const override;
  Status RestoreState(std::string_view blob) override;

  /// Predicted number of steps until arrivals at the estimated rates make
  /// `state` full again (>= 1; capped), using the rounded expected
  /// arrivals round(tau * rate) per table. Exposed for tests/ablations.
  TimeStep TimeToFull(const StateVec& state) const;

  const Stats& stats() const { return stats_; }

  /// Current per-table arrival-rate estimates (EWMA of d_t).
  const std::vector<double>& estimated_rates() const { return rates_; }

  /// Total maintenance cost charged to this policy's own actions (F_t).
  double cost_so_far() const { return cost_so_far_; }

 private:
  OnlineOptions options_;
  std::optional<CostModel> model_;
  double budget_ = 0.0;
  std::vector<double> rates_;
  bool rates_initialized_ = false;
  double cost_so_far_ = 0.0;
  // Mutable: TimeToFull is a const prediction but still a counted event.
  mutable Stats stats_;
};

}  // namespace abivm

#endif  // ABIVM_CORE_ONLINE_H_
