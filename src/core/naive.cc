#include "core/naive.h"

#include <sstream>

namespace abivm {

void NaivePolicy::Reset(const CostModel& model, double budget) {
  model_ = model;
  budget_ = budget;
}

StateVec NaivePolicy::Act(TimeStep /*t*/, const StateVec& pre_state,
                          const StateVec& /*arrivals_now*/) {
  ABIVM_CHECK_MSG(model_.has_value(), "policy not Reset()");
  if (model_->IsFull(pre_state, budget_)) {
    return pre_state;  // flush everything
  }
  return ZeroVec(pre_state.size());
}

PeriodicPolicy::PeriodicPolicy(TimeStep period) : period_(period) {
  ABIVM_CHECK_GE(period, 1);
}

void PeriodicPolicy::Reset(const CostModel& model, double budget) {
  model_ = model;
  budget_ = budget;
}

StateVec PeriodicPolicy::Act(TimeStep t, const StateVec& pre_state,
                             const StateVec& /*arrivals_now*/) {
  ABIVM_CHECK_MSG(model_.has_value(), "policy not Reset()");
  if (t % period_ == period_ - 1 || model_->IsFull(pre_state, budget_)) {
    return pre_state;
  }
  return ZeroVec(pre_state.size());
}

std::string PeriodicPolicy::name() const {
  std::ostringstream oss;
  oss << "PERIODIC(" << period_ << ")";
  return oss.str();
}

}  // namespace abivm
