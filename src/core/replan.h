// ReplanningPolicy: an extension beyond the paper (its Section 7 lists
// stronger online algorithms as future work). Periodically recomputes an
// optimal LGM plan with the A* planner over a *projected* horizon built
// from estimated arrival rates, then follows it -- combining ONLINE's
// zero-advance-knowledge setting with the planner's lookahead. Between
// replans it degrades gracefully: scheduled actions are clamped to what
// actually accumulated, and a cheapest-minimal-flush fallback keeps the
// response-time constraint satisfied when reality diverges from the
// projection.
//
// The policy re-plans on many successive projected instances of the same
// shape, so it holds a PlannerWorkspace across Replan calls: every search
// after the first reuses the arenas the previous one grew (identical
// results, amortized allocation). The workspace survives Reset() too --
// capacity pooling across runs is the point; Reset() clears only the
// logical policy state.

#ifndef ABIVM_CORE_REPLAN_H_
#define ABIVM_CORE_REPLAN_H_

#include <optional>
#include <string>
#include <vector>

#include "core/astar_workspace.h"
#include "core/plan.h"
#include "core/policy.h"

namespace abivm {

struct ReplanOptions {
  /// Recompute the plan every this many steps.
  TimeStep replan_period = 50;
  /// Length of the projected horizon each plan covers. Must be at least
  /// replan_period (the tail beyond the period hedges against the next
  /// replan arriving late).
  TimeStep plan_horizon = 150;
  /// EWMA weight for the per-table arrival-rate estimate.
  double rate_ewma_alpha = 0.2;
};

class ReplanningPolicy final : public Policy {
 public:
  explicit ReplanningPolicy(ReplanOptions options = {});

  /// `model` is held by reference (not copied): it must stay alive until
  /// the next Reset or the policy's destruction. Every runner (Simulate,
  /// RunOnEngine, the sweep Make*Job closures) passes a model that
  /// outlives the run, so this only constrains callers driving the policy
  /// by hand.
  void Reset(const CostModel& model, double budget) override;
  StateVec Act(TimeStep t, const StateVec& pre_state,
               const StateVec& arrivals_now) override;
  std::string name() const override { return "REPLAN"; }
  void ExportMetrics(obs::MetricRegistry& registry) const override;

  /// Complete decision state: EWMA rates, the open plan (actions +
  /// epoch), and the effort counters. The pooled planner workspace is
  /// NOT serialized -- it is a pure performance cache with no influence
  /// on planning results, so a restored policy replans into cold arenas
  /// but emits identical actions.
  bool SupportsStateSnapshot() const override { return true; }
  std::string SaveState() const override;
  Status RestoreState(std::string_view blob) override;

  /// How many times the policy invoked the planner (for tests/benches).
  uint64_t plans_computed() const { return plans_computed_; }
  /// Steps where the projection diverged enough to need the fallback.
  uint64_t deviations() const { return deviations_; }
  /// A* nodes expanded across all replans (planning effort spent).
  uint64_t planner_nodes_expanded() const { return planner_nodes_expanded_; }
  /// Wall-clock spent inside the planner across all replans.
  double planner_wall_ms() const { return planner_wall_ms_; }
  /// Current per-table EWMA arrival-rate estimates (diagnostics/tests).
  /// All-zero until the first nonzero arrival vector seeds the estimator.
  const std::vector<double>& arrival_rates() const { return rates_; }
  /// The pooled planner workspace (reuse/arena counters for tests/obs).
  const PlannerWorkspace& planner_workspace() const { return workspace_; }

 private:
  /// Builds the projected arrival sequence: step 0 carries the current
  /// backlog (so the planner sees it as the initial pre-action state),
  /// later steps carry rate-projected integer counts via error diffusion
  /// (Bresenham-style, so a rate of 0.4/step yields 2 arrivals per 5
  /// steps instead of always 0).
  ArrivalSequence ProjectArrivals(const StateVec& backlog) const;

  void Replan(TimeStep t, const StateVec& pre_state);

  ReplanOptions options_;
  /// Non-owning; set by Reset (see lifetime note there). The cost model
  /// used to be copied per Reset, which re-ran the copy for every sweep
  /// job and engine run.
  const CostModel* model_ = nullptr;
  double budget_ = 0.0;
  std::vector<double> rates_;
  /// False until the first nonzero arrival vector seeds the EWMA: seeding
  /// from a quiet first step used to lock the estimator to an all-zero
  /// start that the EWMA then climbed out of arrival by arrival.
  bool rates_initialized_ = false;
  std::optional<MaintenancePlan> plan_;
  TimeStep plan_epoch_ = 0;  // absolute time of the plan's step 0
  uint64_t plans_computed_ = 0;
  uint64_t deviations_ = 0;
  uint64_t planner_nodes_expanded_ = 0;
  double planner_wall_ms_ = 0.0;
  PlannerWorkspace workspace_;
};

}  // namespace abivm

#endif  // ABIVM_CORE_REPLAN_H_
