#include "core/types.h"

#include <sstream>

namespace abivm {

std::string VecToString(const StateVec& v) {
  std::ostringstream oss;
  oss << "(";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << v[i];
  }
  oss << ")";
  return oss.str();
}

}  // namespace abivm
