// Baseline policies: the paper's NAIVE symmetric strategy and a periodic
// flusher used as an extra ablation baseline.

#ifndef ABIVM_CORE_NAIVE_H_
#define ABIVM_CORE_NAIVE_H_

#include <optional>
#include <string>

#include "core/policy.h"

namespace abivm {

/// NAIVE (Section 5): whenever the pre-action state is full, process ALL
/// batched modifications from every delta table. This is the traditional
/// symmetric deferred-maintenance strategy.
class NaivePolicy final : public Policy {
 public:
  void Reset(const CostModel& model, double budget) override;
  StateVec Act(TimeStep t, const StateVec& pre_state,
               const StateVec& arrivals_now) override;
  std::string name() const override { return "NAIVE"; }

 private:
  std::optional<CostModel> model_;
  double budget_ = 0.0;
};

/// Flushes everything every `period` steps regardless of state; violates
/// laziness on purpose (ablation baseline). If the state becomes full
/// between scheduled flushes it flushes early to stay valid.
class PeriodicPolicy final : public Policy {
 public:
  explicit PeriodicPolicy(TimeStep period);

  void Reset(const CostModel& model, double budget) override;
  StateVec Act(TimeStep t, const StateVec& pre_state,
               const StateVec& arrivals_now) override;
  std::string name() const override;

 private:
  TimeStep period_;
  std::optional<CostModel> model_;
  double budget_ = 0.0;
};

}  // namespace abivm

#endif  // ABIVM_CORE_NAIVE_H_
