// The modification arrival sequence d_0 .. d_T (Section 2), with prefix
// sums so planners can query range totals in O(n).

#ifndef ABIVM_CORE_ARRIVALS_H_
#define ABIVM_CORE_ARRIVALS_H_

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace abivm {

/// Immutable arrival sequence over the horizon [0, T] for n delta tables.
class ArrivalSequence {
 public:
  /// `per_step[t][i]` = number of modifications to table i arriving at t.
  /// Requires a non-empty outer vector with uniform inner dimension >= 1.
  explicit ArrivalSequence(std::vector<StateVec> per_step);

  /// Uniform arrivals: `rates[i]` modifications to table i at every step of
  /// a horizon with T+1 steps (t = 0..T). Used by the Figure 6 experiment
  /// ("one PartSupp update and one Supplier update arrive at every step").
  static ArrivalSequence Uniform(const StateVec& rates, TimeStep horizon_t);

  size_t n() const { return n_; }
  /// The refresh time T; steps are t = 0..T inclusive.
  TimeStep horizon() const { return horizon_; }

  /// d_t.
  const StateVec& At(TimeStep t) const;

  /// Sum of d_t[i] over t in [t1, t2], inclusive; empty if t1 > t2.
  Count RangeSum(TimeStep t1, TimeStep t2, size_t i) const;

  /// Component-wise RangeSum as a vector.
  StateVec RangeSumVec(TimeStep t1, TimeStep t2) const;

  /// RangeSumVec written into `out` (resized to n), reusing its storage --
  /// the planner hot path calls this with a scratch buffer to avoid
  /// per-query allocation. Bounds are clamped/checked once, then the two
  /// cumulative rows are subtracted directly.
  void RangeSumVecInto(TimeStep t1, TimeStep t2, StateVec& out) const;

  /// The prefix-sum row sum_{u=0..t} d_u, component-wise; t = -1 returns
  /// the zero row (the A* source time). The reference stays valid for the
  /// sequence's lifetime, so callers can difference two rows in place
  /// without materializing a range-sum vector.
  const StateVec& PrefixThrough(TimeStep t) const;

  /// Largest single-step arrival count for table i over the whole horizon
  /// (the m_i of the A* heuristic).
  Count MaxStepArrival(size_t i) const;

  /// Total modifications to table i over the whole horizon (K_i).
  Count Total(size_t i) const;

  /// A new sequence that repeats this one's steps cyclically to cover
  /// t = 0..new_horizon (used to build ADAPT experiment inputs).
  ArrivalSequence RepeatTo(TimeStep new_horizon) const;

  /// A truncated copy covering t = 0..new_horizon (<= horizon()).
  ArrivalSequence Truncate(TimeStep new_horizon) const;

 private:
  size_t n_;
  TimeStep horizon_;
  std::vector<StateVec> per_step_;
  // cumulative_[t+1][i] = sum of per_step_[0..t][i]; cumulative_[0] = 0.
  std::vector<StateVec> cumulative_;
  StateVec max_step_;
};

}  // namespace abivm

#endif  // ABIVM_CORE_ARRIVALS_H_
