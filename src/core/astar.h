// A* search for the optimal LGM plan (Section 4.1).
//
// The space of LGM plans is a DAG: a node is a (time, post-action state)
// pair; from each node, arrivals accumulate until the first time t2 the
// pre-action state becomes full, and each minimal greedy valid action at t2
// spawns a successor. Paths from the source (t = -1, empty state) to the
// destination (refresh at T) are exactly the LGM plans; edge weights are
// action costs. The heuristic h(x) lower-bounds the remaining cost by
// considering each delta table in isolation. NOTE: unlike the paper's
// Lemma 7 claim, the literal floor(R/b_i)*f_i(b_i) term is neither
// admissible for general subadditive costs nor consistent even for linear
// ones, so this implementation repairs/strengthens the bound (see
// astar.cc). The repaired default heuristic is *consistent* (see
// DESIGN.md, "Why the closed set is sound"), so the search keeps a closed
// set and never re-expands a settled node; the re-open-on-improvement
// loop is retained for the literal paper heuristic, which stays available
// behind AStarOptions::paper_exact_heuristic, and preserves optimality
// under any admissible heuristic.

#ifndef ABIVM_CORE_ASTAR_H_
#define ABIVM_CORE_ASTAR_H_

#include <cstdint>

#include "core/plan.h"
#include "obs/metrics.h"

namespace abivm {

class PlannerWorkspace;  // core/astar_workspace.h

/// Search statistics and the optimal plan.
struct PlanSearchResult {
  MaintenancePlan plan;
  /// Total plan cost (== OPT_LGM when the heuristic is admissible).
  double cost = 0.0;
  /// Nodes popped from the frontier and expanded (stale entries skipped).
  uint64_t nodes_expanded = 0;
  /// Distinct nodes interned into the search graph (successful interns,
  /// including source and destination). NOTE: historically this counted
  /// every relaxation attempt, inflating "generated" by edges into
  /// already-known nodes; that quantity is now `relaxations`.
  uint64_t nodes_generated = 0;
  /// Edge relaxation attempts (every successor edge examined, improving
  /// or not).
  uint64_t relaxations = 0;
  /// Relaxations that improved a node's g and (re-)queued it.
  uint64_t edges_improved = 0;
  /// Expansions of nodes that had already been expanded at a worse g.
  /// Structurally zero when the closed set is active; with the closed set
  /// disabled, the consistent default heuristic can still show a handful
  /// of ulp-level re-expansions from floating-point summation noise.
  uint64_t reexpansions = 0;
  /// True iff the search ran with the closed set (use_closed_set enabled
  /// AND the configured heuristic is consistent).
  bool used_closed_set = false;
  /// Heuristic evaluations (h is O(n * active-tables) each).
  uint64_t heuristic_evals = 0;
  /// Largest frontier (priority-queue) size observed.
  uint64_t frontier_peak = 0;
  /// Wall-clock time of the search.
  double wall_ms = 0.0;
};

struct AStarOptions {
  /// If false, runs with h = 0 (Dijkstra); used by the heuristic ablation.
  bool use_heuristic = true;
  /// If true, uses the paper's literal Section-4.1 heuristic
  /// floor(R/b_i) * f_i(b_i) for every table. That term is admissible only
  /// when per-item costs are non-increasing (linear/concave/capped
  /// functions); with e.g. StepCost it can overestimate and the search may
  /// return a suboptimal LGM plan. The default (false) uses the safe
  /// heuristic max(f_i(R), [star-shaped] floor(R/b_i) * f_i(b_i)).
  bool paper_exact_heuristic = false;
  /// If true (default), the search keeps a closed set whenever the
  /// configured heuristic is consistent (h = 0 and the safe default
  /// heuristic are; paper_exact_heuristic is not): a node is settled on
  /// first expansion and later "improvements" -- which consistency limits
  /// to floating-point summation noise of a few ulps -- are ignored, so
  /// g, parent pointers and the reported cost stay mutually consistent
  /// and reexpansions == 0 structurally. Set to false to force the
  /// re-open-on-improvement loop regardless of heuristic (used by the
  /// equivalence regression tests).
  bool use_closed_set = true;
  /// Optional metrics sink: when set, the search publishes its
  /// PlanSearchResult statistics as `astar.*` counters and an
  /// `astar.search_ms` timer into the registry on completion.
  obs::MetricRegistry* metrics = nullptr;
};

/// Finds a minimum-cost LGM plan for the instance. Requires n <=
/// kMaxEnumerationTables. Deterministic. Runs on a scratch workspace;
/// repeat callers should prefer the overload below.
PlanSearchResult FindOptimalLgmPlan(const ProblemInstance& instance,
                                    AStarOptions options = {});

/// Same search, but running on a caller-held PlannerWorkspace
/// (core/astar_workspace.h) so arenas, intern table, frontier and
/// heuristic rows grown by earlier searches are reused instead of
/// re-allocated. Results are bit-identical to the scratch overload for
/// any prior workspace history (the workspace pools capacity only;
/// corpus-enforced). The workspace must not be used by another search
/// concurrently.
PlanSearchResult FindOptimalLgmPlan(const ProblemInstance& instance,
                                    AStarOptions options,
                                    PlannerWorkspace& workspace);

}  // namespace abivm

#endif  // ABIVM_CORE_ASTAR_H_
