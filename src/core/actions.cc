#include "core/actions.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/float_compare.h"

namespace abivm {

namespace {

// Indices of delta tables with pending modifications.
std::vector<size_t> NonEmptyComponents(const StateVec& state) {
  std::vector<size_t> out;
  for (size_t i = 0; i < state.size(); ++i) {
    if (state[i] > 0) out.push_back(i);
  }
  return out;
}

}  // namespace

std::vector<StateVec> EnumerateMinimalGreedyActions(
    const CostModel& model, double budget, const StateVec& pre_state) {
  ABIVM_CHECK_MSG(model.IsFull(pre_state, budget),
                  "EnumerateMinimalGreedyActions requires a full state");
  const std::vector<size_t> candidates = NonEmptyComponents(pre_state);
  const size_t m = candidates.size();
  ABIVM_CHECK_LE(m, kMaxEnumerationTables);

  // Per-candidate flush cost f_i(s_i) and their sum. For a subset S of
  // flushed tables the residual refresh cost is total - sum_{i in S} cost_i
  // (tables outside `candidates` are empty and contribute 0).
  std::vector<double> costs(m);
  double total = 0.0;
  for (size_t j = 0; j < m; ++j) {
    costs[j] = model.Cost(candidates[j], pre_state[candidates[j]]);
    total += costs[j];
  }

  std::vector<StateVec> result;
  const uint64_t subset_count = uint64_t{1} << m;
  for (uint64_t mask = 1; mask < subset_count; ++mask) {
    double flushed = 0.0;
    for (size_t j = 0; j < m; ++j) {
      if (mask & (uint64_t{1} << j)) flushed += costs[j];
    }
    // Epsilon-tolerant comparisons (shared with CostModel::IsFull): the
    // floating-point subtraction total - flushed may differ from a direct
    // TotalCost(residual state) by a few ulps, and a strict > here could
    // classify a boundary subset differently than IsFull does.
    const double residue = total - flushed;
    if (CostExceedsBudget(residue, budget)) continue;  // not valid
    // Minimal: removing any single flushed table must break the budget.
    bool minimal = true;
    for (size_t j = 0; j < m && minimal; ++j) {
      if ((mask & (uint64_t{1} << j)) &&
          CostWithinBudget(residue + costs[j], budget)) {
        minimal = false;
      }
    }
    if (!minimal) continue;
    StateVec action = ZeroVec(pre_state.size());
    for (size_t j = 0; j < m; ++j) {
      if (mask & (uint64_t{1} << j)) {
        action[candidates[j]] = pre_state[candidates[j]];
      }
    }
    result.push_back(std::move(action));
  }
  ABIVM_CHECK_MSG(!result.empty(),
                  "full state must admit at least one minimal action");
  return result;
}

StateVec MinimizeAction(const CostModel& model, double budget,
                        const StateVec& pre_state, const StateVec& action) {
  ABIVM_CHECK_EQ(pre_state.size(), action.size());
  StateVec current = action;
  for (size_t i = 0; i < action.size(); ++i) {
    ABIVM_CHECK_MSG(action[i] == 0 || action[i] == pre_state[i],
                    "MinimizeAction requires a greedy action");
  }
  ABIVM_CHECK_MSG(
      model.TotalCost(SubVec(pre_state, current)) <= budget,
      "MinimizeAction requires a valid input action");

  // Try dropping the most expensive flushes first.
  std::vector<size_t> order;
  for (size_t i = 0; i < current.size(); ++i) {
    if (current[i] != 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double ca = model.Cost(a, current[a]);
    const double cb = model.Cost(b, current[b]);
    if (ca != cb) return ca > cb;
    return a < b;
  });
  for (size_t i : order) {
    StateVec trial = current;
    trial[i] = 0;
    if (model.TotalCost(SubVec(pre_state, trial)) <= budget) {
      current = std::move(trial);
    }
  }
  return current;
}

StateVec CheapestMinimalGreedyAction(const CostModel& model, double budget,
                                     const StateVec& pre_state) {
  const std::vector<StateVec> options =
      EnumerateMinimalGreedyActions(model, budget, pre_state);
  const StateVec* best = &options[0];
  double best_cost = model.TotalCost(options[0]);
  for (const StateVec& option : options) {
    const double cost = model.TotalCost(option);
    if (cost < best_cost) {
      best_cost = cost;
      best = &option;
    }
  }
  return *best;
}

}  // namespace abivm
