#include "core/actions.h"

#include <algorithm>
#include <array>
#include <numeric>

#include "common/check.h"
#include "common/float_compare.h"

namespace abivm {

std::vector<StateVec> EnumerateMinimalGreedyActions(
    const CostModel& model, double budget, const StateVec& pre_state) {
  std::vector<StateVec> result;
  result.resize(
      EnumerateMinimalGreedyActionsInto(model, budget, pre_state, result));
  return result;
}

size_t EnumerateMinimalGreedyActionsInto(const CostModel& model, double budget,
                                         const StateVec& pre_state,
                                         std::vector<StateVec>& out,
                                         std::vector<double>* action_costs) {
  ABIVM_CHECK_MSG(model.IsFull(pre_state, budget),
                  "EnumerateMinimalGreedyActionsInto requires a full state");
  // Indices of delta tables with pending modifications; fixed-size scratch
  // (m <= kMaxEnumerationTables) so candidate discovery never allocates.
  std::array<size_t, kMaxEnumerationTables> candidates;
  size_t m = 0;
  for (size_t i = 0; i < pre_state.size(); ++i) {
    if (pre_state[i] > 0) {
      ABIVM_CHECK_LT(m, kMaxEnumerationTables);
      candidates[m++] = i;
    }
  }

  // Per-candidate flush cost f_i(s_i) and their sum. For a subset S of
  // flushed tables the residual refresh cost is total - sum_{i in S} cost_i
  // (tables outside `candidates` are empty and contribute 0).
  std::array<double, kMaxEnumerationTables> costs;
  double total = 0.0;
  for (size_t j = 0; j < m; ++j) {
    costs[j] = model.Cost(candidates[j], pre_state[candidates[j]]);
    total += costs[j];
  }

  size_t count = 0;
  const uint64_t subset_count = uint64_t{1} << m;
  for (uint64_t mask = 1; mask < subset_count; ++mask) {
    double flushed = 0.0;
    for (size_t j = 0; j < m; ++j) {
      if (mask & (uint64_t{1} << j)) flushed += costs[j];
    }
    // Epsilon-tolerant comparisons (shared with CostModel::IsFull): the
    // floating-point subtraction total - flushed may differ from a direct
    // TotalCost(residual state) by a few ulps, and a strict > here could
    // classify a boundary subset differently than IsFull does.
    const double residue = total - flushed;
    if (CostExceedsBudget(residue, budget)) continue;  // not valid
    // Minimal: removing any single flushed table must break the budget.
    bool minimal = true;
    for (size_t j = 0; j < m && minimal; ++j) {
      if ((mask & (uint64_t{1} << j)) &&
          CostWithinBudget(residue + costs[j], budget)) {
        minimal = false;
      }
    }
    if (!minimal) continue;
    if (count == out.size()) out.emplace_back();
    if (action_costs != nullptr) {
      if (count == action_costs->size()) action_costs->emplace_back();
      (*action_costs)[count] = flushed;
    }
    StateVec& action = out[count++];
    action.assign(pre_state.size(), 0);  // reuses the entry's capacity
    for (size_t j = 0; j < m; ++j) {
      if (mask & (uint64_t{1} << j)) {
        action[candidates[j]] = pre_state[candidates[j]];
      }
    }
  }
  ABIVM_CHECK_MSG(count > 0,
                  "full state must admit at least one minimal action");
  return count;
}

StateVec MinimizeAction(const CostModel& model, double budget,
                        const StateVec& pre_state, const StateVec& action) {
  ABIVM_CHECK_EQ(pre_state.size(), action.size());
  StateVec current = action;
  for (size_t i = 0; i < action.size(); ++i) {
    ABIVM_CHECK_MSG(action[i] == 0 || action[i] == pre_state[i],
                    "MinimizeAction requires a greedy action");
  }
  ABIVM_CHECK_MSG(
      model.TotalCost(SubVec(pre_state, current)) <= budget,
      "MinimizeAction requires a valid input action");

  // Try dropping the most expensive flushes first.
  std::vector<size_t> order;
  for (size_t i = 0; i < current.size(); ++i) {
    if (current[i] != 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double ca = model.Cost(a, current[a]);
    const double cb = model.Cost(b, current[b]);
    if (ca != cb) return ca > cb;
    return a < b;
  });
  for (size_t i : order) {
    StateVec trial = current;
    trial[i] = 0;
    if (model.TotalCost(SubVec(pre_state, trial)) <= budget) {
      current = std::move(trial);
    }
  }
  return current;
}

StateVec CheapestMinimalGreedyAction(const CostModel& model, double budget,
                                     const StateVec& pre_state) {
  const std::vector<StateVec> options =
      EnumerateMinimalGreedyActions(model, budget, pre_state);
  const StateVec* best = &options[0];
  double best_cost = model.TotalCost(options[0]);
  for (const StateVec& option : options) {
    const double cost = model.TotalCost(option);
    if (cost < best_cost) {
      best_cost = cost;
      best = &option;
    }
  }
  return *best;
}

}  // namespace abivm
