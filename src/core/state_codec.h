// Minimal binary codec for policy-state snapshots (Policy::SaveState /
// RestoreState): fixed-width little-endian integers and raw-bit doubles.
// Self-contained so the core policy layer does not depend on the
// durability layer's serde (ckpt links core, not the other way around).
//
// Doubles round-trip as raw 64-bit patterns: a restored estimator must
// reproduce the exact decision sequence the saved one would have, and
// EWMA state compared or fed through further arithmetic with even one
// ulp of drift diverges.

#ifndef ABIVM_CORE_STATE_CODEC_H_
#define ABIVM_CORE_STATE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"

namespace abivm::statecodec {

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

inline void PutDouble(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

inline void PutStateVec(std::string* out, const StateVec& v) {
  PutU64(out, v.size());
  for (Count c : v) PutU64(out, c);
}

inline void PutDoubleVec(std::string* out, const std::vector<double>& v) {
  PutU64(out, v.size());
  for (double d : v) PutDouble(out, d);
}

/// Bounds-checked sequential reader; every getter returns false past the
/// end, so a truncated or foreign blob surfaces as a failed restore,
/// never as UB.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (offset_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[offset_++]);
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (offset_ + 8 > data_.size()) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(
                 static_cast<uint8_t>(data_[offset_ + i]))
             << (8 * i);
    }
    offset_ += 8;
    *v = out;
    return true;
  }

  bool GetI64(int64_t* v) {
    uint64_t u = 0;
    if (!GetU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool GetDouble(double* v) {
    uint64_t bits = 0;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool GetStateVec(StateVec* v) {
    uint64_t n = 0;
    if (!GetU64(&n)) return false;
    if (n > data_.size()) return false;  // cheap sanity bound
    v->resize(static_cast<size_t>(n));
    for (auto& c : *v) {
      if (!GetU64(&c)) return false;
    }
    return true;
  }

  bool GetDoubleVec(std::vector<double>* v) {
    uint64_t n = 0;
    if (!GetU64(&n)) return false;
    if (n > data_.size()) return false;
    v->resize(static_cast<size_t>(n));
    for (auto& d : *v) {
      if (!GetDouble(&d)) return false;
    }
    return true;
  }

  bool AtEnd() const { return offset_ == data_.size(); }

 private:
  std::string_view data_;
  size_t offset_ = 0;
};

}  // namespace abivm::statecodec

#endif  // ABIVM_CORE_STATE_CODEC_H_
