// CostModel bundles the per-table cost functions f_1..f_n and evaluates
// the shorthand f(v) = sum_i f_i(v[i]) from Section 2.

#ifndef ABIVM_CORE_COST_MODEL_H_
#define ABIVM_CORE_COST_MODEL_H_

#include <vector>

#include "cost/cost_function.h"
#include "core/types.h"

namespace abivm {

/// The vector of per-delta-table cost functions. Copyable (functions are
/// shared immutable objects).
class CostModel {
 public:
  explicit CostModel(std::vector<CostFunctionPtr> functions);

  size_t n() const { return functions_.size(); }

  /// f_i(k).
  double Cost(size_t i, Count k) const;

  /// f(v) = sum_i f_i(v[i]).
  double TotalCost(const StateVec& v) const;

  /// True iff f(state) > budget (the state is "full", forcing an action).
  bool IsFull(const StateVec& state, double budget) const;

  const CostFunction& function(size_t i) const;

 private:
  std::vector<CostFunctionPtr> functions_;
};

}  // namespace abivm

#endif  // ABIVM_CORE_COST_MODEL_H_
