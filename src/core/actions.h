// Greedy/minimal action machinery (Section 3.2): enumerating the candidate
// actions an LGM plan may take at a full pre-action state, and the
// MinimizeAction helper used by the MakeLgmPlan construction.

#ifndef ABIVM_CORE_ACTIONS_H_
#define ABIVM_CORE_ACTIONS_H_

#include <vector>

#include "core/cost_model.h"
#include "core/types.h"

namespace abivm {

/// Maximum number of delta tables supported by subset enumeration. The
/// paper's own implementation enumerates up to 2^n - 1 subsets and notes
/// "n is typically a very small constant, e.g., n <= 5".
inline constexpr size_t kMaxEnumerationTables = 20;

/// All *minimal* valid greedy actions at a full pre-action state: each
/// returned action empties some subset S of the non-empty delta tables,
/// satisfies f(pre_state - action) <= budget, and no proper subset of S
/// would. Results are deterministic (subsets in increasing bitmask order).
/// Requires f(pre_state) > budget (state actually full).
std::vector<StateVec> EnumerateMinimalGreedyActions(const CostModel& model,
                                                    double budget,
                                                    const StateVec& pre_state);

/// Allocation-lean variant for the planner hot path: writes the minimal
/// actions into `out[0 .. count)` -- reusing both the outer vector and the
/// inner StateVec storage across calls -- and returns `count`. `out` is
/// only ever grown, so after warm-up the enumeration allocates nothing;
/// entries at index >= count are stale scratch and must be ignored.
/// Results (values and order) are identical to
/// EnumerateMinimalGreedyActions.
///
/// If `action_costs` is non-null it receives f(action) for each returned
/// action (same buffer-reuse contract). The value is bit-identical to
/// CostModel::TotalCost(action): both sum the per-table flush costs in
/// ascending table order, and the zero components TotalCost also visits
/// contribute an exact IEEE +0.0 each, which cannot perturb the sum.
size_t EnumerateMinimalGreedyActionsInto(const CostModel& model, double budget,
                                         const StateVec& pre_state,
                                         std::vector<StateVec>& out,
                                         std::vector<double>* action_costs =
                                             nullptr);

/// Shrinks a greedy action (components equal to pre_state[i] or 0) to a
/// minimal one emptying a subset of the tables it empties, while keeping
/// f(pre_state - action) <= budget (the paper's MINIMIZEACTION). Components
/// are dropped greedily in decreasing order of their processing cost
/// f_i(pre_state[i]) (ties by lower index), which deterministically avoids
/// paying large costs that the budget does not force us to pay.
StateVec MinimizeAction(const CostModel& model, double budget,
                        const StateVec& pre_state, const StateVec& action);

/// The cheapest (by f(q)) minimal valid greedy action at a full state;
/// convenience for defensive fallbacks. Ties broken by enumeration order.
StateVec CheapestMinimalGreedyAction(const CostModel& model, double budget,
                                     const StateVec& pre_state);

}  // namespace abivm

#endif  // ABIVM_CORE_ACTIONS_H_
