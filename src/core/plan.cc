#include "core/plan.h"

#include <sstream>

namespace abivm {

MaintenancePlan::MaintenancePlan(size_t n, TimeStep horizon)
    : n_(n), horizon_(horizon) {
  ABIVM_CHECK_GE(n, size_t{1});
  ABIVM_CHECK_GE(horizon, 0);
}

void MaintenancePlan::SetAction(TimeStep t, StateVec amounts) {
  ABIVM_CHECK_GE(t, 0);
  ABIVM_CHECK_LE(t, horizon_);
  ABIVM_CHECK_EQ(amounts.size(), n_);
  if (IsZeroVec(amounts)) {
    actions_.erase(t);
  } else {
    actions_[t] = std::move(amounts);
  }
}

StateVec MaintenancePlan::ActionAt(TimeStep t) const {
  auto it = actions_.find(t);
  if (it == actions_.end()) return ZeroVec(n_);
  return it->second;
}

size_t MaintenancePlan::ActionCountForTable(size_t i) const {
  ABIVM_CHECK_LT(i, n_);
  size_t count = 0;
  for (const auto& [t, amounts] : actions_) {
    if (amounts[i] != 0) ++count;
  }
  return count;
}

double MaintenancePlan::TotalCost(const CostModel& model) const {
  double total = 0.0;
  for (const auto& [t, amounts] : actions_) {
    total += model.TotalCost(amounts);
  }
  return total;
}

std::string MaintenancePlan::ToString() const {
  std::ostringstream oss;
  oss << "plan[T=" << horizon_ << "]{";
  bool first = true;
  for (const auto& [t, amounts] : actions_) {
    if (!first) oss << ", ";
    oss << t << ":" << VecToString(amounts);
    first = false;
  }
  oss << "}";
  return oss.str();
}

PlanTrajectory ComputeTrajectory(const ArrivalSequence& arrivals,
                                 const MaintenancePlan& plan) {
  ABIVM_CHECK_EQ(arrivals.n(), plan.n());
  ABIVM_CHECK_EQ(arrivals.horizon(), plan.horizon());
  const TimeStep horizon = arrivals.horizon();

  PlanTrajectory traj;
  traj.pre.reserve(static_cast<size_t>(horizon) + 1);
  traj.post.reserve(static_cast<size_t>(horizon) + 1);

  StateVec state = ZeroVec(plan.n());
  for (TimeStep t = 0; t <= horizon; ++t) {
    state = AddVec(state, arrivals.At(t));
    traj.pre.push_back(state);
    const StateVec action = plan.ActionAt(t);
    ABIVM_CHECK_MSG(FitsWithin(action, state),
                    "action at t=" << t << " removes more than accumulated: "
                                   << VecToString(action) << " from "
                                   << VecToString(state));
    state = SubVec(state, action);
    traj.post.push_back(state);
  }
  return traj;
}

Status ValidatePlan(const ProblemInstance& instance,
                    const MaintenancePlan& plan) {
  if (plan.n() != instance.n()) {
    return Status::InvalidArgument("plan dimension mismatch");
  }
  if (plan.horizon() != instance.horizon()) {
    return Status::InvalidArgument("plan horizon mismatch");
  }
  const TimeStep horizon = instance.horizon();

  StateVec state = ZeroVec(plan.n());
  for (TimeStep t = 0; t <= horizon; ++t) {
    state = AddVec(state, instance.arrivals.At(t));
    const StateVec action = plan.ActionAt(t);
    if (!FitsWithin(action, state)) {
      std::ostringstream oss;
      oss << "action at t=" << t << " removes more than accumulated ("
          << VecToString(action) << " from " << VecToString(state) << ")";
      return Status::InvalidArgument(oss.str());
    }
    state = SubVec(state, action);
    if (t < horizon &&
        instance.cost_model.IsFull(state, instance.budget)) {
      std::ostringstream oss;
      oss << "post-action state at t=" << t << " is full: f("
          << VecToString(state) << ") = "
          << instance.cost_model.TotalCost(state) << " > C="
          << instance.budget;
      return Status::FailedPrecondition(oss.str());
    }
  }
  if (!IsZeroVec(state)) {
    return Status::FailedPrecondition(
        "plan does not empty all delta tables at T (p_T != s_T): residue " +
        VecToString(state));
  }
  return Status::Ok();
}

bool IsLazy(const ProblemInstance& instance, const MaintenancePlan& plan) {
  const PlanTrajectory traj = ComputeTrajectory(instance.arrivals, plan);
  for (const auto& [t, amounts] : plan.actions()) {
    if (t == instance.horizon()) continue;  // final refresh is exempt
    if (!instance.cost_model.IsFull(traj.pre[static_cast<size_t>(t)],
                                    instance.budget)) {
      return false;
    }
  }
  return true;
}

bool IsGreedy(const ProblemInstance& instance, const MaintenancePlan& plan) {
  const PlanTrajectory traj = ComputeTrajectory(instance.arrivals, plan);
  for (const auto& [t, amounts] : plan.actions()) {
    const StateVec& pre = traj.pre[static_cast<size_t>(t)];
    for (size_t i = 0; i < amounts.size(); ++i) {
      if (amounts[i] != 0 && amounts[i] != pre[i]) return false;
    }
  }
  return true;
}

bool IsMinimal(const ProblemInstance& instance,
               const MaintenancePlan& plan) {
  const PlanTrajectory traj = ComputeTrajectory(instance.arrivals, plan);
  for (const auto& [t, amounts] : plan.actions()) {
    if (t == instance.horizon()) continue;  // p_T must flush everything
    const StateVec& pre = traj.pre[static_cast<size_t>(t)];
    for (size_t i = 0; i < amounts.size(); ++i) {
      if (amounts[i] == 0) continue;
      StateVec reduced = amounts;
      reduced[i] = 0;
      if (!instance.cost_model.IsFull(SubVec(pre, reduced),
                                      instance.budget)) {
        return false;  // dropping component i still met the budget
      }
    }
  }
  return true;
}

bool IsLgm(const ProblemInstance& instance, const MaintenancePlan& plan) {
  return IsLazy(instance, plan) && IsGreedy(instance, plan) &&
         IsMinimal(instance, plan);
}

}  // namespace abivm
