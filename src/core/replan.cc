#include "core/replan.h"

#include <algorithm>
#include <cmath>

#include "core/actions.h"
#include "core/astar.h"
#include "core/state_codec.h"

namespace abivm {

ReplanningPolicy::ReplanningPolicy(ReplanOptions options)
    : options_(options) {
  ABIVM_CHECK_GE(options_.replan_period, 1);
  ABIVM_CHECK_GE(options_.plan_horizon, options_.replan_period);
  ABIVM_CHECK_GT(options_.rate_ewma_alpha, 0.0);
  ABIVM_CHECK_LE(options_.rate_ewma_alpha, 1.0);
}

void ReplanningPolicy::Reset(const CostModel& model, double budget) {
  model_ = &model;
  budget_ = budget;
  rates_.assign(model.n(), 0.0);
  rates_initialized_ = false;
  plan_.reset();
  plan_epoch_ = 0;
  plans_computed_ = 0;
  deviations_ = 0;
  planner_nodes_expanded_ = 0;
  planner_wall_ms_ = 0.0;
  // workspace_ deliberately untouched: its pooled capacity carries over
  // to the next run (that is the point of holding it here); per-search
  // logical state is cleared by the planner itself.
}

ArrivalSequence ReplanningPolicy::ProjectArrivals(
    const StateVec& backlog) const {
  const size_t n = rates_.size();
  std::vector<StateVec> steps;
  steps.reserve(static_cast<size_t>(options_.plan_horizon) + 1);
  steps.push_back(backlog);  // step 0: the already-accumulated state
  std::vector<double> error(n, 0.0);
  for (TimeStep t = 1; t <= options_.plan_horizon; ++t) {
    StateVec d(n, 0);
    for (size_t i = 0; i < n; ++i) {
      error[i] += rates_[i];
      const double whole = std::floor(error[i]);
      d[i] = static_cast<Count>(whole);
      error[i] -= whole;
    }
    steps.push_back(std::move(d));
  }
  return ArrivalSequence(std::move(steps));
}

void ReplanningPolicy::Replan(TimeStep t, const StateVec& pre_state) {
  const ProblemInstance projected{*model_, ProjectArrivals(pre_state),
                                  budget_};
  // Reuse the held workspace: successive projected instances share shape
  // (same n, same plan_horizon), so after the first replan the search
  // runs entirely in warm arenas.
  PlanSearchResult result = FindOptimalLgmPlan(projected, {}, workspace_);
  planner_nodes_expanded_ += result.nodes_expanded;
  planner_wall_ms_ += result.wall_ms;
  plan_ = std::move(result.plan);
  plan_epoch_ = t;
  ++plans_computed_;
}

void ReplanningPolicy::ExportMetrics(obs::MetricRegistry& registry) const {
  registry.counter("replan.plans_computed").Add(plans_computed_);
  registry.counter("replan.deviations").Add(deviations_);
  registry.counter("replan.planner_nodes_expanded")
      .Add(planner_nodes_expanded_);
  registry.timer("replan.planner_ms").Record(planner_wall_ms_);
  registry.counter("astar.workspace_reuses").Add(workspace_.reuses());
  registry.counter("astar.arena_bytes_peak")
      .RaiseTo(workspace_.arena_bytes_peak());
}

std::string ReplanningPolicy::SaveState() const {
  // Before Reset() there is no decision state to carry (the durability
  // manager's seq-0 publish lands here): empty = "no snapshot yet".
  if (model_ == nullptr) return std::string();
  std::string blob;
  statecodec::PutU8(&blob, 1);  // blob format version
  statecodec::PutDoubleVec(&blob, rates_);
  statecodec::PutU8(&blob, rates_initialized_ ? 1 : 0);
  statecodec::PutU8(&blob, plan_.has_value() ? 1 : 0);
  if (plan_.has_value()) {
    statecodec::PutU64(&blob, plan_->n());
    statecodec::PutI64(&blob, plan_->horizon());
    statecodec::PutU64(&blob, plan_->actions().size());
    for (const auto& [step, amounts] : plan_->actions()) {
      statecodec::PutI64(&blob, step);
      statecodec::PutStateVec(&blob, amounts);
    }
  }
  statecodec::PutI64(&blob, plan_epoch_);
  statecodec::PutU64(&blob, plans_computed_);
  statecodec::PutU64(&blob, deviations_);
  statecodec::PutU64(&blob, planner_nodes_expanded_);
  statecodec::PutDouble(&blob, planner_wall_ms_);
  return blob;
}

Status ReplanningPolicy::RestoreState(std::string_view blob) {
  ABIVM_CHECK_MSG(model_ != nullptr, "policy not Reset()");
  statecodec::Reader in(blob);
  const auto malformed = [] {
    return Status::InvalidArgument("malformed REPLAN state blob");
  };
  uint8_t version = 0;
  std::vector<double> rates;
  uint8_t initialized = 0;
  uint8_t has_plan = 0;
  if (!in.GetU8(&version) || version != 1 || !in.GetDoubleVec(&rates) ||
      !in.GetU8(&initialized) || !in.GetU8(&has_plan)) {
    return malformed();
  }
  if (rates.size() != rates_.size()) {
    return Status::InvalidArgument(
        "REPLAN state blob has " + std::to_string(rates.size()) +
        " rates, problem has " + std::to_string(rates_.size()) +
        " tables");
  }
  std::optional<MaintenancePlan> plan;
  if (has_plan != 0) {
    uint64_t n = 0;
    int64_t horizon = 0;
    uint64_t action_count = 0;
    if (!in.GetU64(&n) || !in.GetI64(&horizon) ||
        !in.GetU64(&action_count) || n != rates_.size() || horizon < 0 ||
        action_count > static_cast<uint64_t>(horizon) + 1) {
      return malformed();
    }
    plan.emplace(static_cast<size_t>(n), horizon);
    for (uint64_t i = 0; i < action_count; ++i) {
      int64_t step = 0;
      StateVec amounts;
      if (!in.GetI64(&step) || !in.GetStateVec(&amounts) || step < 0 ||
          step > horizon || amounts.size() != n) {
        return malformed();
      }
      plan->SetAction(step, std::move(amounts));
    }
  }
  int64_t plan_epoch = 0;
  uint64_t plans_computed = 0;
  uint64_t deviations = 0;
  uint64_t planner_nodes_expanded = 0;
  double planner_wall_ms = 0.0;
  if (!in.GetI64(&plan_epoch) || !in.GetU64(&plans_computed) ||
      !in.GetU64(&deviations) || !in.GetU64(&planner_nodes_expanded) ||
      !in.GetDouble(&planner_wall_ms) || !in.AtEnd()) {
    return malformed();
  }
  rates_ = std::move(rates);
  rates_initialized_ = initialized != 0;
  plan_ = std::move(plan);
  plan_epoch_ = plan_epoch;
  plans_computed_ = plans_computed;
  deviations_ = deviations;
  planner_nodes_expanded_ = planner_nodes_expanded;
  planner_wall_ms_ = planner_wall_ms;
  return Status::Ok();
}

StateVec ReplanningPolicy::Act(TimeStep t, const StateVec& pre_state,
                               const StateVec& arrivals_now) {
  ABIVM_CHECK_MSG(model_ != nullptr, "policy not Reset()");
  const bool any_arrivals =
      std::any_of(arrivals_now.begin(), arrivals_now.end(),
                  [](Count c) { return c != 0; });
  if (!rates_initialized_) {
    // Seed lazily on the first NONZERO arrival vector. Seeding from a
    // quiet first step used to mark the estimator initialized at
    // all-zero rates, so a stream with a silent warm-up projected zero
    // future arrivals and then EWMA-crawled toward the true rate one
    // alpha-step at a time.
    if (any_arrivals) {
      for (size_t i = 0; i < rates_.size(); ++i) {
        rates_[i] = static_cast<double>(arrivals_now[i]);
      }
      rates_initialized_ = true;
    }
  } else {
    const double alpha = options_.rate_ewma_alpha;
    for (size_t i = 0; i < rates_.size(); ++i) {
      rates_[i] = (1.0 - alpha) * rates_[i] +
                  alpha * static_cast<double>(arrivals_now[i]);
    }
  }

  // Replan when the window elapsed or the plan ran out. The expiry clause
  // is defensive: ProjectArrivals always builds a plan with horizon ==
  // plan_horizon and the constructor enforces plan_horizon >=
  // replan_period, so the period clause fires at or before t -
  // plan_epoch_ == plan_->horizon() and ActionAt below is only ever
  // indexed in [0, replan_period) -- in range even at the boundary step
  // t - plan_epoch_ == plan_->horizon() (pinned by the
  // PlanIndexStaysInRangeAtHorizonBoundary regression test).
  if (!plan_.has_value() || t - plan_epoch_ >= options_.replan_period ||
      t - plan_epoch_ > plan_->horizon()) {
    Replan(t, pre_state);
  }

  StateVec action = plan_->ActionAt(t - plan_epoch_);
  bool clamped = false;
  for (size_t i = 0; i < action.size(); ++i) {
    if (action[i] > pre_state[i]) {
      action[i] = pre_state[i];
      clamped = true;
    }
  }
  if (model_->IsFull(SubVec(pre_state, action), budget_)) {
    // Reality outran the projection mid-window: replan right away from
    // the true state, which by construction yields a valid action.
    Replan(t, pre_state);
    action = plan_->ActionAt(0);
    for (size_t i = 0; i < action.size(); ++i) {
      action[i] = std::min(action[i], pre_state[i]);
    }
    if (model_->IsFull(SubVec(pre_state, action), budget_)) {
      action = CheapestMinimalGreedyAction(*model_, budget_, pre_state);
    }
    ++deviations_;
  } else if (clamped) {
    ++deviations_;
  }
  return action;
}

}  // namespace abivm
