#include "core/online.h"

#include <cmath>

#include "core/actions.h"
#include "core/state_codec.h"

namespace abivm {

OnlinePolicy::OnlinePolicy(OnlineOptions options) : options_(options) {
  ABIVM_CHECK_GT(options_.rate_ewma_alpha, 0.0);
  ABIVM_CHECK_LE(options_.rate_ewma_alpha, 1.0);
  ABIVM_CHECK_GE(options_.max_time_to_full, 1);
}

void OnlinePolicy::Reset(const CostModel& model, double budget) {
  model_ = model;
  budget_ = budget;
  rates_.assign(model.n(), 0.0);
  rates_initialized_ = false;
  cost_so_far_ = 0.0;
  stats_ = {};
}

TimeStep OnlinePolicy::TimeToFull(const StateVec& state) const {
  ABIVM_CHECK_MSG(model_.has_value(), "policy not Reset()");
  ++stats_.time_to_full_calls;
  bool any_rate = false;
  for (double r : rates_) any_rate = any_rate || r > 0.0;
  if (!any_rate) return options_.max_time_to_full;

  // Project each component's expected arrivals tau * rate, rounded to the
  // nearest count. Flooring instead (the old behaviour) systematically
  // under-projects growth -- by almost a whole modification per table, a
  // ceil(1/rate)-step error for fractional EWMA rates -- so TimeToFull
  // overestimated how long the post-action state could keep batching and
  // H(q) was biased toward cheap actions. Rounding the expectation is
  // unbiased and keeps the projection monotone in tau, preserving the
  // binary-search invariant below.
  auto state_after = [&](TimeStep tau) {
    StateVec projected = state;
    for (size_t i = 0; i < projected.size(); ++i) {
      projected[i] += static_cast<Count>(
          std::llround(static_cast<double>(tau) * rates_[i]));
    }
    return projected;
  };
  if (!model_->IsFull(state_after(options_.max_time_to_full), budget_)) {
    return options_.max_time_to_full;
  }
  // Binary search the smallest tau >= 1 whose projection is full; the
  // projection grows with tau and the cost functions are monotone.
  TimeStep lo = 1, hi = options_.max_time_to_full;
  while (lo < hi) {
    const TimeStep mid = lo + (hi - lo) / 2;
    if (model_->IsFull(state_after(mid), budget_)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

StateVec OnlinePolicy::Act(TimeStep t, const StateVec& pre_state,
                           const StateVec& arrivals_now) {
  ABIVM_CHECK_MSG(model_.has_value(), "policy not Reset()");
  // Update the rate estimate with this step's arrivals.
  if (!rates_initialized_) {
    for (size_t i = 0; i < rates_.size(); ++i) {
      rates_[i] = static_cast<double>(arrivals_now[i]);
    }
    rates_initialized_ = true;
  } else {
    const double alpha = options_.rate_ewma_alpha;
    for (size_t i = 0; i < rates_.size(); ++i) {
      rates_[i] = (1.0 - alpha) * rates_[i] +
                  alpha * static_cast<double>(arrivals_now[i]);
    }
  }

  if (!model_->IsFull(pre_state, budget_)) {
    return ZeroVec(pre_state.size());
  }

  const std::vector<StateVec> options =
      EnumerateMinimalGreedyActions(*model_, budget_, pre_state);
  stats_.candidates_evaluated += options.size();
  const StateVec* best = nullptr;
  double best_h = 0.0;
  for (const StateVec& q : options) {
    const double action_cost = model_->TotalCost(q);
    const TimeStep refill = TimeToFull(SubVec(pre_state, q));
    const double h = (cost_so_far_ + action_cost) /
                     static_cast<double>(t + refill);
    if (best == nullptr || h < best_h - 1e-12) {
      best = &q;
      best_h = h;
    }
  }
  ABIVM_CHECK(best != nullptr);
  ++stats_.actions_taken;
  cost_so_far_ += model_->TotalCost(*best);
  return *best;
}

std::string OnlinePolicy::SaveState() const {
  // Before Reset() there is no decision state to carry (the durability
  // manager's seq-0 publish lands here): empty = "no snapshot yet".
  if (!model_.has_value()) return std::string();
  std::string blob;
  statecodec::PutU8(&blob, 1);  // blob format version
  statecodec::PutDoubleVec(&blob, rates_);
  statecodec::PutU8(&blob, rates_initialized_ ? 1 : 0);
  statecodec::PutDouble(&blob, cost_so_far_);
  statecodec::PutU64(&blob, stats_.actions_taken);
  statecodec::PutU64(&blob, stats_.candidates_evaluated);
  statecodec::PutU64(&blob, stats_.time_to_full_calls);
  return blob;
}

Status OnlinePolicy::RestoreState(std::string_view blob) {
  ABIVM_CHECK_MSG(model_.has_value(), "policy not Reset()");
  statecodec::Reader in(blob);
  uint8_t version = 0;
  std::vector<double> rates;
  uint8_t initialized = 0;
  double cost_so_far = 0.0;
  Stats stats;
  if (!in.GetU8(&version) || version != 1 || !in.GetDoubleVec(&rates) ||
      !in.GetU8(&initialized) || !in.GetDouble(&cost_so_far) ||
      !in.GetU64(&stats.actions_taken) ||
      !in.GetU64(&stats.candidates_evaluated) ||
      !in.GetU64(&stats.time_to_full_calls) || !in.AtEnd()) {
    return Status::InvalidArgument("malformed ONLINE state blob");
  }
  if (rates.size() != rates_.size()) {
    return Status::InvalidArgument(
        "ONLINE state blob has " + std::to_string(rates.size()) +
        " rates, problem has " + std::to_string(rates_.size()) +
        " tables");
  }
  rates_ = std::move(rates);
  rates_initialized_ = initialized != 0;
  cost_so_far_ = cost_so_far;
  stats_ = stats;
  return Status::Ok();
}

void OnlinePolicy::ExportMetrics(obs::MetricRegistry& registry) const {
  registry.counter("online.actions_taken").Add(stats_.actions_taken);
  registry.counter("online.candidates_evaluated")
      .Add(stats_.candidates_evaluated);
  registry.counter("online.time_to_full_calls")
      .Add(stats_.time_to_full_calls);
}

}  // namespace abivm
