#include "core/exhaustive.h"

#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "core/actions.h"

namespace abivm {

namespace {

struct Key {
  TimeStep t;
  StateVec state;
  bool operator==(const Key& other) const {
    return t == other.t && state == other.state;
  }
};

struct KeyHash {
  size_t operator()(const Key& key) const {
    uint64_t h = static_cast<uint64_t>(key.t) * 0x9e3779b97f4a7c15ULL + 1;
    for (Count c : key.state) {
      uint64_t x = h ^ c;
      h = SplitMix64(x);
    }
    return static_cast<size_t>(h);
  }
};

struct Choice {
  double cost = 0.0;
  // Action taken at `action_time` leading to the successor state; for
  // terminal entries action_time == horizon and the action is the final
  // refresh.
  TimeStep action_time = -1;
  StateVec action;
  bool terminal = false;
};

// Shared skeleton for both exhaustive searches; the action enumeration at a
// full pre-action state is the only difference.
class ExhaustiveSearch {
 public:
  ExhaustiveSearch(const ProblemInstance& instance, bool all_valid_actions)
      : instance_(instance), all_valid_actions_(all_valid_actions) {}

  MaintenancePlan Solve() {
    const size_t n = instance_.n();
    MaintenancePlan plan(n, instance_.horizon());
    Best(-1, ZeroVec(n));
    // Reconstruct by replaying memoized choices.
    Key cursor{-1, ZeroVec(n)};
    while (true) {
      const Choice& choice = memo_.at(cursor);
      plan.SetAction(choice.action_time, choice.action);
      if (choice.terminal) break;
      const StateVec pre =
          AddVec(cursor.state, instance_.arrivals.RangeSumVec(
                                   cursor.t + 1, choice.action_time));
      cursor = Key{choice.action_time, SubVec(pre, choice.action)};
    }
    return plan;
  }

 private:
  TimeStep FirstFullTime(TimeStep t, const StateVec& state) const {
    const TimeStep horizon = instance_.horizon();
    for (TimeStep tp = t + 1; tp <= horizon; ++tp) {
      if (instance_.cost_model.IsFull(
              AddVec(state, instance_.arrivals.RangeSumVec(t + 1, tp)),
              instance_.budget)) {
        return tp;
      }
    }
    return horizon + 1;
  }

  // All valid actions at a full pre-action state: every sub-vector q with
  // f(pre - q) <= C (which rules out q = 0 since pre is full).
  std::vector<StateVec> AllValidActions(const StateVec& pre) const {
    std::vector<StateVec> result;
    StateVec q = ZeroVec(pre.size());
    while (true) {
      if (instance_.cost_model.TotalCost(SubVec(pre, q)) <=
          instance_.budget) {
        result.push_back(q);
      }
      // Odometer increment over 0..pre[i] per component.
      size_t i = 0;
      while (i < q.size() && q[i] == pre[i]) {
        q[i] = 0;
        ++i;
      }
      if (i == q.size()) break;
      ++q[i];
    }
    ABIVM_CHECK(!result.empty());
    return result;
  }

  double Best(TimeStep t, const StateVec& state) {
    const Key key{t, state};
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second.cost;

    const TimeStep horizon = instance_.horizon();
    Choice choice;
    const TimeStep t2 = FirstFullTime(t, state);
    if (t2 >= horizon) {
      // Final refresh at T is the only remaining action.
      StateVec pre =
          AddVec(state, instance_.arrivals.RangeSumVec(t + 1, horizon));
      choice.cost = instance_.cost_model.TotalCost(pre);
      choice.action_time = horizon;
      choice.action = std::move(pre);
      choice.terminal = true;
    } else {
      const StateVec pre =
          AddVec(state, instance_.arrivals.RangeSumVec(t + 1, t2));
      const std::vector<StateVec> actions =
          all_valid_actions_
              ? AllValidActions(pre)
              : EnumerateMinimalGreedyActions(instance_.cost_model,
                                              instance_.budget, pre);
      bool first = true;
      for (const StateVec& action : actions) {
        const double cost = instance_.cost_model.TotalCost(action) +
                            Best(t2, SubVec(pre, action));
        if (first || cost < choice.cost) {
          choice.cost = cost;
          choice.action_time = t2;
          choice.action = action;
          choice.terminal = false;
          first = false;
        }
      }
    }
    return memo_.emplace(key, std::move(choice)).first->second.cost;
  }

  const ProblemInstance& instance_;
  bool all_valid_actions_;
  std::unordered_map<Key, Choice, KeyHash> memo_;
};

}  // namespace

MaintenancePlan ExhaustiveLgmPlan(const ProblemInstance& instance) {
  return ExhaustiveSearch(instance, /*all_valid_actions=*/false).Solve();
}

MaintenancePlan ExhaustiveOptimalPlan(const ProblemInstance& instance) {
  return ExhaustiveSearch(instance, /*all_valid_actions=*/true).Solve();
}

}  // namespace abivm
