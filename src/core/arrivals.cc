#include "core/arrivals.h"

#include <algorithm>
#include <sstream>

namespace abivm {

ArrivalSequence::ArrivalSequence(std::vector<StateVec> per_step)
    : per_step_(std::move(per_step)) {
  ABIVM_CHECK_MSG(!per_step_.empty(), "arrival sequence must be non-empty");
  n_ = per_step_[0].size();
  ABIVM_CHECK_GE(n_, size_t{1});
  horizon_ = static_cast<TimeStep>(per_step_.size()) - 1;

  cumulative_.reserve(per_step_.size() + 1);
  cumulative_.push_back(ZeroVec(n_));
  max_step_ = ZeroVec(n_);
  for (const StateVec& d : per_step_) {
    ABIVM_CHECK_EQ(d.size(), n_);
    cumulative_.push_back(AddVec(cumulative_.back(), d));
    for (size_t i = 0; i < n_; ++i) {
      max_step_[i] = std::max(max_step_[i], d[i]);
    }
  }
}

ArrivalSequence ArrivalSequence::Uniform(const StateVec& rates,
                                         TimeStep horizon_t) {
  ABIVM_CHECK_GE(horizon_t, 0);
  return ArrivalSequence(std::vector<StateVec>(
      static_cast<size_t>(horizon_t) + 1, rates));
}

const StateVec& ArrivalSequence::At(TimeStep t) const {
  ABIVM_CHECK_GE(t, 0);
  ABIVM_CHECK_LE(t, horizon_);
  return per_step_[static_cast<size_t>(t)];
}

Count ArrivalSequence::RangeSum(TimeStep t1, TimeStep t2, size_t i) const {
  if (t1 > t2) return 0;
  t1 = std::max<TimeStep>(t1, 0);
  ABIVM_CHECK_LE(t2, horizon_);
  ABIVM_CHECK_LT(i, n_);
  return cumulative_[static_cast<size_t>(t2) + 1][i] -
         cumulative_[static_cast<size_t>(t1)][i];
}

StateVec ArrivalSequence::RangeSumVec(TimeStep t1, TimeStep t2) const {
  StateVec out;
  RangeSumVecInto(t1, t2, out);
  return out;
}

void ArrivalSequence::RangeSumVecInto(TimeStep t1, TimeStep t2,
                                      StateVec& out) const {
  out.resize(n_);
  if (t1 > t2) {
    std::fill(out.begin(), out.end(), 0);
    return;
  }
  t1 = std::max<TimeStep>(t1, 0);
  ABIVM_CHECK_LE(t2, horizon_);
  const StateVec& hi = cumulative_[static_cast<size_t>(t2) + 1];
  const StateVec& lo = cumulative_[static_cast<size_t>(t1)];
  for (size_t i = 0; i < n_; ++i) out[i] = hi[i] - lo[i];
}

const StateVec& ArrivalSequence::PrefixThrough(TimeStep t) const {
  ABIVM_CHECK_GE(t, -1);
  ABIVM_CHECK_LE(t, horizon_);
  return cumulative_[static_cast<size_t>(t + 1)];
}

Count ArrivalSequence::MaxStepArrival(size_t i) const {
  ABIVM_CHECK_LT(i, n_);
  return max_step_[i];
}

Count ArrivalSequence::Total(size_t i) const {
  return RangeSum(0, horizon_, i);
}

ArrivalSequence ArrivalSequence::RepeatTo(TimeStep new_horizon) const {
  ABIVM_CHECK_GE(new_horizon, 0);
  std::vector<StateVec> steps;
  steps.reserve(static_cast<size_t>(new_horizon) + 1);
  const size_t period = per_step_.size();
  for (TimeStep t = 0; t <= new_horizon; ++t) {
    steps.push_back(per_step_[static_cast<size_t>(t) % period]);
  }
  return ArrivalSequence(std::move(steps));
}

ArrivalSequence ArrivalSequence::Truncate(TimeStep new_horizon) const {
  ABIVM_CHECK_GE(new_horizon, 0);
  ABIVM_CHECK_LE(new_horizon, horizon_);
  return ArrivalSequence(std::vector<StateVec>(
      per_step_.begin(),
      per_step_.begin() + static_cast<size_t>(new_horizon) + 1));
}

}  // namespace abivm
