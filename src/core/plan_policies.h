// Policies that execute precomputed plans:
//   * PrecomputedPlanPolicy replays an optimal LGM plan (OPT_LGM runs).
//   * AdaptPolicy implements Section 4.2: reuse a plan optimized for
//     horizon T0 at any actual refresh time T, cycling it when T > T0.

#ifndef ABIVM_CORE_PLAN_POLICIES_H_
#define ABIVM_CORE_PLAN_POLICIES_H_

#include <optional>
#include <string>

#include "core/plan.h"
#include "core/policy.h"

namespace abivm {

/// Replays the actions of a fixed plan, clamping each action to what has
/// actually accumulated. If the realized pre-action state would stay full
/// after the scheduled action (arrivals deviated from the projection used
/// to compute the plan), the policy falls back to the cheapest minimal
/// greedy flush and counts a deviation.
class PrecomputedPlanPolicy : public Policy {
 public:
  explicit PrecomputedPlanPolicy(MaintenancePlan plan,
                                 std::string display_name = "PLAN");

  void Reset(const CostModel& model, double budget) override;
  StateVec Act(TimeStep t, const StateVec& pre_state,
               const StateVec& arrivals_now) override;
  std::string name() const override { return display_name_; }

  /// Steps where the realized arrivals forced a divergence from the plan.
  uint64_t deviations() const { return deviations_; }

 protected:
  /// The scheduled action for (global) time t; subclasses remap time.
  virtual StateVec ScheduledAction(TimeStep t) const;

  const MaintenancePlan& plan() const { return plan_; }

 private:
  MaintenancePlan plan_;
  std::string display_name_;
  std::optional<CostModel> model_;
  double budget_ = 0.0;
  uint64_t deviations_ = 0;
};

/// ADAPT (Section 4.2): executes a plan optimized for refresh time T0
/// cyclically with period T0 + 1 (the plan's step count, so its final
/// flush at T0 re-establishes the empty state each cycle). If the actual
/// refresh T < T0, the run simply stops early and the runner's forced
/// refresh processes the remainder; if T > T0, the plan repeats, matching
/// the paper's assumption of arrivals periodic with the plan length.
class AdaptPolicy final : public PrecomputedPlanPolicy {
 public:
  explicit AdaptPolicy(MaintenancePlan plan_for_t0);

 protected:
  StateVec ScheduledAction(TimeStep t) const override;

 private:
  TimeStep period_;
};

}  // namespace abivm

#endif  // ABIVM_CORE_PLAN_POLICIES_H_
