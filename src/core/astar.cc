#include "core/astar.h"

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "common/float_compare.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/actions.h"
#include "core/astar_workspace.h"

namespace abivm {

namespace astar_internal {

// One search over a PlannerWorkspace. The workspace owns every buffer
// (node arenas, intern table, frontier heap, heuristic rows, scratch);
// the Search binds the instance/options for a single FindOptimalLgmPlan
// call and leaves the grown capacity behind for the next search.
class Search {
 public:
  Search(const ProblemInstance& instance, const AStarOptions& options,
         PlannerWorkspace& ws)
      : instance_(instance), options_(options), n_(instance.n()), ws_(ws) {
    ws_.BeginSearch();
    PrecomputeHeuristicTerms();
  }

  PlanSearchResult Run();

 private:
  // The configured heuristic is consistent for h = 0 (Dijkstra) and for
  // the safe default bound (both terms are consistent and max preserves
  // consistency; see DESIGN.md "Why the closed set is sound"). The
  // literal paper heuristic is inconsistent even for linear costs, so it
  // must keep the re-open loop.
  bool Consistent() const { return !options_.paper_exact_heuristic; }

  // b_i = m_i + max{b : f_i(b) <= C} and f_i(b_i), the paper's per-table
  // batch bound. The floor(R/b_i) * f_i(b_i) term is only a valid lower
  // bound when the per-item cost is non-increasing (see Heuristic below).
  // Also caches raw cost-function pointers and the per-table arrival
  // suffix totals suffix_[(t+1)*n + i] = sum of d_u[i] over u in
  // (t, horizon], so a heuristic evaluation indexes a precomputed row
  // instead of issuing n range-sum queries. Every cached row is rewritten
  // in full here, so nothing leaks in from the workspace's prior search.
  void PrecomputeHeuristicTerms() {
    const TimeStep horizon = instance_.horizon();
    ws_.batch_bound_.resize(n_);
    ws_.batch_bound_cost_.resize(n_);
    ws_.star_shaped_.resize(n_);
    ws_.fns_.resize(n_);
    for (size_t i = 0; i < n_; ++i) {
      const CostFunction& f = instance_.cost_model.function(i);
      ws_.fns_[i] = &f;
      ws_.star_shaped_[i] = f.CostPerItemNonIncreasing();
      const uint64_t max_batch = f.MaxBatchWithin(instance_.budget);
      if (max_batch == kUnboundedBatch) {
        ws_.batch_bound_[i] = kUnboundedBatch;
        ws_.batch_bound_cost_[i] = 0.0;
        continue;
      }
      const Count m_i = instance_.arrivals.MaxStepArrival(i);
      ws_.batch_bound_[i] = max_batch + m_i;
      ws_.batch_bound_cost_[i] =
          ws_.batch_bound_[i] == 0
              ? 0.0
              : instance_.cost_model.Cost(i, ws_.batch_bound_[i]);
    }

    // Suffix totals for every heuristic anchor time t in [-1, horizon]
    // (row index t + 1): total arrivals minus the prefix through t.
    ws_.suffix_.resize((static_cast<size_t>(horizon) + 2) * n_);
    const StateVec& total = instance_.arrivals.PrefixThrough(horizon);
    for (TimeStep t = -1; t <= horizon; ++t) {
      const StateVec& prefix = instance_.arrivals.PrefixThrough(t);
      Count* row = ws_.suffix_.data() + static_cast<size_t>(t + 1) * n_;
      for (size_t i = 0; i < n_; ++i) row[i] = total[i] - prefix[i];
    }
  }

  // h(t, s): admissible per-table lower bound on the remaining cost for
  // the R_i = s[i] + K_i modifications still to be processed.
  //
  // Deviation from the paper (documented in DESIGN.md): the paper's
  // Section 4.1 heuristic is floor(R/b_i) * f_i(b_i) alone. That term is
  // (a) only a lower bound when f_i(k)/k is non-increasing (each batch of
  // size k <= b_i then costs >= (k/b_i) f_i(b_i)) -- for subadditive but
  // non-concave functions like StepCost it can overestimate, making A*
  // return suboptimal plans -- and (b) inconsistent even for linear
  // costs (crossing a multiple of b_i drops it by f_i(b_i) while paying
  // only f_i(1)). We therefore use
  //     max(f_i(R),  [per-item non-increasing] (R/b_i) * f_i(b_i)),
  // where f_i(R) is admissible by subadditivity (any partition of R costs
  // at least f_i(R)) and consistent for the same reason, and the
  // continuous term both dominates the paper's floor term (R/b >=
  // floor(R/b)) and is consistent when f_i(k)/k is non-increasing:
  // processing a <= b_i modifications costs f_i(a) >= (a/b_i) f_i(b_i),
  // exactly the amount the term decreases. A consistent heuristic means
  // nodes never need re-expansion.
  double Heuristic(TimeStep t, const Count* state) {
    if (!options_.use_heuristic) return 0.0;
    ++result_.heuristic_evals;
    const Count* suffix_row =
        ws_.suffix_.data() + static_cast<size_t>(t + 1) * n_;
    double h = 0.0;
    for (size_t i = 0; i < n_; ++i) {
      const Count remaining = state[i] + suffix_row[i];
      if (remaining == 0) continue;
      double term = options_.paper_exact_heuristic
                        ? 0.0
                        : ws_.fns_[i]->Cost(remaining);
      if ((ws_.star_shaped_[i] || options_.paper_exact_heuristic) &&
          ws_.batch_bound_[i] != kUnboundedBatch && ws_.batch_bound_[i] > 0) {
        const double batches =
            options_.paper_exact_heuristic
                ? static_cast<double>(remaining / ws_.batch_bound_[i])
                : static_cast<double>(remaining) /
                      static_cast<double>(ws_.batch_bound_[i]);
        term = std::max(term, batches * ws_.batch_bound_cost_[i]);
      }
      h += term;
    }
    return h;
  }

  // IsFull on the pre-action state state + arrivals(t+1 .. tp) without
  // materializing a sum vector: differences the two cumulative rows
  // component-wise and early-exits once the partial cost sum already
  // exceeds the budget (valid because per-table costs are non-negative
  // and CostExceedsBudget is monotone in its cost argument).
  bool IsFullAt(const Count* state, TimeStep t, TimeStep tp) const {
    const StateVec& hi = instance_.arrivals.PrefixThrough(tp);
    const StateVec& lo = instance_.arrivals.PrefixThrough(t);
    double total = 0.0;
    for (size_t i = 0; i < n_; ++i) {
      const Count pre = state[i] + (hi[i] - lo[i]);
      total += ws_.fns_[i]->Cost(pre);
      if (CostExceedsBudget(total, instance_.budget)) return true;
    }
    return false;
  }

  // First time t' in (t, horizon] at which the pre-action state
  // state + arrivals(t+1 .. t') becomes full, or horizon + 1 if never.
  TimeStep FirstFullTime(TimeStep t, const Count* state) const {
    const TimeStep horizon = instance_.horizon();
    if (!IsFullAt(state, t, horizon)) return horizon + 1;
    TimeStep lo = t + 1, hi = horizon;
    // Invariant: IsFullAt(hi); find smallest full time.
    while (lo < hi) {
      const TimeStep mid = lo + (hi - lo) / 2;
      if (IsFullAt(state, t, mid)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  // out = state + arrivals(t+1 .. t2), via the two cumulative rows.
  void PreStateInto(const Count* state, TimeStep t, TimeStep t2,
                    StateVec& out) const {
    const StateVec& hi = instance_.arrivals.PrefixThrough(t2);
    const StateVec& lo = instance_.arrivals.PrefixThrough(t);
    out.resize(n_);
    for (size_t i = 0; i < n_; ++i) out[i] = state[i] + (hi[i] - lo[i]);
  }

  size_t HashOf(TimeStep t, const Count* state) const {
    uint64_t h = static_cast<uint64_t>(t) * 0x9e3779b97f4a7c15ULL + 1;
    for (size_t i = 0; i < n_; ++i) {
      uint64_t x = h ^ state[i];
      h = SplitMix64(x);
    }
    return static_cast<size_t>(h);
  }

  const Count* StateOf(int32_t id) const {
    return ws_.node_state_.data() + static_cast<size_t>(id) * n_;
  }

  // Doubles the open-addressing table and reinserts every node using its
  // stored hash (no state re-hashing). A reused workspace usually starts
  // with a warm table big enough for the whole search, so this only runs
  // while the workspace is still growing; the table size never changes
  // which nodes are interned or their ids, only the probe sequences.
  void Rehash() {
    const size_t new_size =
        ws_.buckets_.empty() ? 1024 : ws_.buckets_.size() * 2;
    ws_.buckets_.assign(new_size, -1);
    ws_.bucket_mask_ = new_size - 1;
    for (int32_t id = 0; id < static_cast<int32_t>(ws_.nodes_.size());
         ++id) {
      size_t b = ws_.node_hash_[static_cast<size_t>(id)] & ws_.bucket_mask_;
      while (ws_.buckets_[b] != -1) b = (b + 1) & ws_.bucket_mask_;
      ws_.buckets_[b] = id;
    }
  }

  // Interns the node (t, state): linear-probing lookup against the flat
  // arenas; on a miss the node's state is appended to the state arena and
  // an action slot is reserved, so interning performs no per-node heap
  // allocation (arena growth is amortized, and a warm workspace skips
  // even that).
  int32_t InternNode(TimeStep t, const Count* state) {
    if ((ws_.nodes_.size() + 1) * 4 > ws_.buckets_.size() * 3) Rehash();
    const size_t hash = HashOf(t, state);
    size_t b = hash & ws_.bucket_mask_;
    while (ws_.buckets_[b] != -1) {
      const int32_t id = ws_.buckets_[b];
      if (ws_.node_t_[static_cast<size_t>(id)] == t &&
          std::equal(state, state + n_, StateOf(id))) {
        return id;
      }
      b = (b + 1) & ws_.bucket_mask_;
    }
    const int32_t id = static_cast<int32_t>(ws_.nodes_.size());
    ws_.buckets_[b] = id;
    ws_.node_t_.push_back(t);
    ws_.node_hash_.push_back(hash);
    ws_.node_state_.insert(ws_.node_state_.end(), state, state + n_);
    ws_.node_action_.resize(ws_.node_action_.size() + n_);
    ws_.nodes_.emplace_back();
    ws_.nodes_.back().g = kInfinity;
    // A node is "generated" when it first enters the search graph;
    // relaxation attempts into existing nodes are counted separately
    // (result_.relaxations) so the two statistics stay honest.
    ++result_.nodes_generated;
    return id;
  }

  // Frontier ops: a min-heap over the workspace's vector, using the same
  // comparator std::priority_queue<.., std::greater<..>> would -- pop
  // order (and therefore the whole search) is unchanged, but the heap's
  // storage survives between searches.
  void FrontierPush(const FrontierEntry& entry) {
    ws_.frontier_.push_back(entry);
    std::push_heap(ws_.frontier_.begin(), ws_.frontier_.end(),
                   std::greater<FrontierEntry>());
    if (ws_.frontier_.size() > result_.frontier_peak) {
      result_.frontier_peak = ws_.frontier_.size();
    }
  }

  FrontierEntry FrontierPop() {
    std::pop_heap(ws_.frontier_.begin(), ws_.frontier_.end(),
                  std::greater<FrontierEntry>());
    const FrontierEntry top = ws_.frontier_.back();
    ws_.frontier_.pop_back();
    return top;
  }

  // Attempts to improve `to` via an edge from `from` (whose settled cost
  // is `g_from`) paying `weight` for `action`. The heuristic is evaluated
  // lazily -- only when the relaxation actually improves the node and the
  // node's h was never computed -- so non-improving edges (the majority)
  // cost no heuristic work.
  void Relax(double g_from, int32_t from, int32_t to, TimeStep action_time,
             const Count* action, double weight) {
    NodeInfo& info = ws_.nodes_[static_cast<size_t>(to)];
    const double candidate = g_from + weight;
    ++result_.relaxations;
    if (candidate >= info.g) return;
    // Closed set: a settled node is final. The consistent heuristic
    // limits any later "improvement" to floating-point summation noise
    // (different addition orders along equal-cost paths, a few ulps);
    // accepting it would desynchronize the node's recorded g from the
    // costs already propagated to its successors, so it is ignored.
    if (closed_set_active_ && info.expanded) return;
    if (info.h < 0.0) {
      info.h = Heuristic(ws_.node_t_[static_cast<size_t>(to)], StateOf(to));
    }
    ++result_.edges_improved;
    info.g = candidate;
    info.parent = from;
    info.action_time = action_time;
    std::copy(action, action + n_,
              ws_.node_action_.begin() + static_cast<size_t>(to) * n_);
    FrontierPush({candidate + info.h, candidate, to});
  }

  // Mirrors the final PlanSearchResult statistics into the caller's
  // registry (AStarOptions::metrics), if one was supplied.
  void PublishMetrics() {
    obs::MetricRegistry* metrics = options_.metrics;
    if (metrics == nullptr) return;
    metrics->counter("astar.searches").Add(1);
    metrics->counter("astar.nodes_expanded").Add(result_.nodes_expanded);
    metrics->counter("astar.nodes_generated").Add(result_.nodes_generated);
    metrics->counter("astar.relaxations").Add(result_.relaxations);
    metrics->counter("astar.edges_improved").Add(result_.edges_improved);
    metrics->counter("astar.reexpansions").Add(result_.reexpansions);
    metrics->counter("astar.heuristic_evals").Add(result_.heuristic_evals);
    metrics->counter("astar.frontier_peak").RaiseTo(result_.frontier_peak);
    metrics->timer("astar.search_ms").Record(result_.wall_ms);
    // Workspace pooling: a one-shot call runs on a scratch workspace and
    // reports no reuse; repeat callers (replanning, sweeps) accumulate
    // one reuse per search after the workspace's first.
    if (ws_.searches() > 1) {
      metrics->counter("astar.workspace_reuses").Add(1);
    }
    metrics->counter("astar.arena_bytes_peak")
        .RaiseTo(ws_.arena_bytes_peak());
  }

  static constexpr double kInfinity = 1e300;

  const ProblemInstance& instance_;
  AStarOptions options_;
  const size_t n_;
  PlannerWorkspace& ws_;
  bool closed_set_active_ = false;

  PlanSearchResult result_{MaintenancePlan(1, 0)};
};

PlanSearchResult Search::Run() {
  const Stopwatch watch;
  const TimeStep horizon = instance_.horizon();
  ABIVM_CHECK_LE(n_, kMaxEnumerationTables);

  result_ = PlanSearchResult{MaintenancePlan(n_, horizon)};
  closed_set_active_ = options_.use_closed_set && Consistent();
  result_.used_closed_set = closed_set_active_;

  const StateVec zero = ZeroVec(n_);
  const int32_t source = InternNode(-1, zero.data());
  // Destination: refresh done at T with empty state.
  const int32_t destination = InternNode(horizon, zero.data());

  ws_.nodes_[static_cast<size_t>(source)].g = 0.0;
  ws_.nodes_[static_cast<size_t>(source)].h = Heuristic(-1, zero.data());
  FrontierPush({ws_.nodes_[static_cast<size_t>(source)].h, 0.0, source});

  while (!ws_.frontier_.empty()) {
    const FrontierEntry top = FrontierPop();
    NodeInfo& info = ws_.nodes_[static_cast<size_t>(top.node)];
    if (top.g > info.g) continue;  // stale entry
    if (info.expanded) {
      // Re-expansion: only reachable with the closed set off (the paper
      // heuristic's genuine inconsistency, or ulp-level noise under the
      // default heuristic). Under the closed set, Relax never re-queues a
      // settled node and stale entries were filtered above, so reaching
      // this line would be a soundness bug.
      ABIVM_CHECK_MSG(!closed_set_active_,
                      "closed-set A* popped a settled node");
      ++result_.reexpansions;
    }
    ++result_.nodes_expanded;
    info.expanded = true;

    if (top.node == destination) {
      // Reconstruct the plan by walking back-pointers.
      result_.cost = info.g;
      int32_t cursor = destination;
      while (cursor != source) {
        const NodeInfo& step = ws_.nodes_[static_cast<size_t>(cursor)];
        const Count* action =
            ws_.node_action_.data() + static_cast<size_t>(cursor) * n_;
        if (!std::all_of(action, action + n_,
                         [](Count c) { return c == 0; })) {
          result_.plan.SetAction(step.action_time,
                                 StateVec(action, action + n_));
        }
        cursor = step.parent;
      }
      result_.wall_ms = watch.ElapsedMs();
      ws_.FinishSearch();
      PublishMetrics();
      return result_;
    }

    // Copy the node's time and state into scratch: interning successors
    // below grows the arenas and would invalidate slice pointers.
    const TimeStep t = ws_.node_t_[static_cast<size_t>(top.node)];
    ws_.expand_state_.assign(StateOf(top.node), StateOf(top.node) + n_);
    const double g_settled = info.g;  // info dangles once nodes_ grows

    const TimeStep t2 = FirstFullTime(t, ws_.expand_state_.data());
    if (t2 >= horizon) {
      // Either the state never becomes full before T, or it first fills
      // exactly at T: in both cases the only remaining LGM action is the
      // full refresh at T.
      PreStateInto(ws_.expand_state_.data(), t, horizon, ws_.pre_state_);
      const double weight = instance_.cost_model.TotalCost(ws_.pre_state_);
      Relax(g_settled, top.node, destination, horizon,
            ws_.pre_state_.data(), weight);
      continue;
    }

    PreStateInto(ws_.expand_state_.data(), t, t2, ws_.pre_state_);
    const size_t action_count = EnumerateMinimalGreedyActionsInto(
        instance_.cost_model, instance_.budget, ws_.pre_state_,
        ws_.actions_, &ws_.action_costs_);
    for (size_t a = 0; a < action_count; ++a) {
      const StateVec& action = ws_.actions_[a];
      SubVecInto(ws_.pre_state_, action, ws_.post_state_);
      const int32_t successor = InternNode(t2, ws_.post_state_.data());
      Relax(g_settled, top.node, successor, t2, action.data(),
            ws_.action_costs_[a]);
    }
  }
  ABIVM_CHECK_MSG(false, "A* frontier exhausted without reaching refresh; "
                         "the LGM graph always contains a path");
  return result_;
}

}  // namespace astar_internal

PlanSearchResult FindOptimalLgmPlan(const ProblemInstance& instance,
                                    AStarOptions options) {
  // One-shot call: scratch workspace, identical results to the reusing
  // overload (only allocation behaviour differs).
  PlannerWorkspace scratch;
  return FindOptimalLgmPlan(instance, options, scratch);
}

PlanSearchResult FindOptimalLgmPlan(const ProblemInstance& instance,
                                    AStarOptions options,
                                    PlannerWorkspace& workspace) {
  astar_internal::Search search(instance, options, workspace);
  return search.Run();
}

}  // namespace abivm
